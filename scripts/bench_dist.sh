#!/usr/bin/env bash
# Regenerates results/BENCH_dist.json from the scale-out sweep
# (bench/fig10_scaleout): 1-8 simulated GPUs x {uniform, Zipf 1.75}
# probes x {NVLink 2.0, PCI-e 4.0} topologies, work stealing on/off on
# the skewed configs. All numbers are simulated (deterministic for a
# fixed seed and any --threads), so the merged file is reproducible bit
# for bit on any machine.
#
# Usage: scripts/bench_dist.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target fig10_scaleout

TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR"/bench/fig10_scaleout --json "$TMP" > /dev/null

python3 scripts/validate_metrics.py "$TMP"

# Distill the sweep records into one summary document: one row per
# (topology, shard count, distribution, stealing) point, with the
# per-shard and per-link breakdowns carried through.
python3 - "$TMP" <<'EOF'
import json
import sys

out = {"bench": "fig10_scaleout", "sweep": []}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        params = rec["params"]
        run = rec["run"]
        out["sweep"].append({
            "topology": params["topology"],
            "num_shards": params["num_shards"],
            "zipf_exponent": params["zipf_exponent"],
            "steal": params["steal"],
            "steal_events": params["steal_events"],
            "merge_seconds": params["merge_seconds"],
            "seconds": run["seconds"],
            "qps": run["qps"],
            "probe_tuples": run["probe_tuples"],
            "result_tuples": run["result_tuples"],
            "shards": [
                {k: s[k] for k in (
                    "shard", "r_tuples", "tuples_routed",
                    "tuples_stolen_out", "tuples_stolen_in", "steals_in",
                    "windows", "matches", "busy_seconds")}
                for s in rec["shards"]
            ],
            "links": rec["links"],
        })

with open("results/BENCH_dist.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("results/BENCH_dist.json updated")
EOF
