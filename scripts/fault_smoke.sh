#!/usr/bin/env bash
# Fault-recovery smoke test: runs the recovery ablation at its fixed
# default seed and diffs the printed tables against the checked-in golden
# file. Any byte difference means the fault model's behaviour changed —
# injected fault sequence, recovery cost accounting, or the rate-0
# bit-identity invariant. Run from the repository root.
#
# Usage: scripts/fault_smoke.sh [build-dir]   # default: build
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/ablation_fault_recovery"
GOLDEN="results/ablation_fault_recovery.txt"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

if [ ! -f "$GOLDEN" ]; then
  echo "error: golden file $GOLDEN is missing — the smoke test has" \
       "nothing to diff against. Regenerate it from the repository" \
       "root with: $BENCH > $GOLDEN" >&2
  exit 1
fi

ACTUAL="$(mktemp)"
trap 'rm -f "$ACTUAL"' EXIT

"$BENCH" > "$ACTUAL"

if ! diff -u "$GOLDEN" "$ACTUAL"; then
  echo "=== fault smoke FAILED: output drifted from $GOLDEN ===" >&2
  exit 1
fi

echo "=== fault smoke passed: ablation output matches $GOLDEN ==="
