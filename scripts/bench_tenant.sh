#!/usr/bin/env bash
# Regenerates results/BENCH_tenant.json from the multi-tenant serving
# experiment (bench/fig14_tenants): the {fair, fifo} x {cache off, on}
# throughput grid, the cache match-identity verification, and the
# misbehaving-tenant p99-isolation trio. All numbers are simulated
# (deterministic for a fixed seed), so the merged file is reproducible
# bit for bit on any machine.
#
# Usage: scripts/bench_tenant.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target fig14_tenants

TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR"/bench/fig14_tenants --json "$TMP" > /dev/null

python3 scripts/validate_metrics.py "$TMP"

# Distill the cell records into one summary document and enforce the
# experiment's acceptance bars: the cache must buy aggregate throughput
# at equal shed with identical match sets, and weighted-fair scheduling
# must hold the protected tier's p99 near its rogue-free value while
# FIFO degrades it.
python3 - "$TMP" <<'EOF'
import json
import sys

out = {"bench": "fig14_tenants", "calibration": {}, "grid": [],
       "verify": {}, "rogue": [], "summary": {}}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        params = rec["params"]
        metrics = rec.get("metrics", {})
        tenants = rec.get("tenants", {})
        point = params.get("point")
        if point == "calibration":
            out["calibration"] = {
                "request_tuples": params["request_tuples"],
                "request_service_seconds":
                    metrics["serve.request_service_seconds"]["value"],
                "capacity_tuples_per_sec":
                    metrics["serve.capacity_tuples_per_sec"]["value"],
            }
            continue
        if point == "summary":
            out["summary"] = {
                "cache_qps_gain":
                    metrics["serve.cache_qps_gain"]["value"],
                "match_sets_identical":
                    metrics["serve.match_sets_identical"]["value"] == 1.0,
                "gold_p99_isolated_seconds":
                    metrics["serve.gold_p99_isolated_seconds"]["value"],
                "gold_p99_fair_rogue_seconds":
                    metrics["serve.gold_p99_fair_rogue_seconds"]["value"],
                "gold_p99_fifo_rogue_seconds":
                    metrics["serve.gold_p99_fifo_rogue_seconds"]["value"],
                "gold_p99_fair_ratio":
                    metrics["serve.gold_p99_fair_ratio"]["value"],
                "gold_p99_fifo_ratio":
                    metrics["serve.gold_p99_fifo_ratio"]["value"],
            }
            continue
        if point == "verify":
            out["verify"] = {
                "requests": params["requests"],
                "match_sets_identical":
                    metrics["serve.match_sets_identical"]["value"] == 1.0,
                "matches": metrics["serve.verify_matches"]["value"],
                "cache_hits": tenants["cache"]["hits"],
            }
            continue
        hist = metrics["serve.latency_seconds"]
        cell = {
            "scheduler": params["scheduler"],
            "cache_bytes": params["cache_bytes"],
            "rogue_extra": params["rogue_extra"],
            "arrival_rate_rps": params["arrival_rate_rps"],
            "requests_admitted":
                metrics["serve.requests_admitted"]["value"],
            "requests_shed": metrics["serve.requests_shed"]["value"],
            "achieved_requests_per_sec":
                metrics["serve.achieved_requests_per_sec"]["value"],
            "latency_seconds": {
                "p50": hist["p50"], "p99": hist["p99"],
                "count": hist["count"],
            },
            "tiers": [
                {"tier": t["tier"], "admitted": t["admitted"],
                 "shed_rate_limit": t["shed_rate_limit"],
                 "p99": t["latency"]["p99"]}
                for t in tenants["tiers"]
            ],
            "cache_hits": tenants["cache"]["hits"],
            "cache_lookups": tenants["cache"]["lookups"],
        }
        out[point].append(cell)

s = out["summary"]
fails = []
if not s["match_sets_identical"] or not out["verify"]["match_sets_identical"]:
    fails.append("cached match sets differ from the uncached run's")
if out["verify"]["cache_hits"] == 0:
    fails.append("verification cell never hit the cache")
if s["cache_qps_gain"] <= 1.0:
    fails.append(f"cache bought no throughput "
                 f"(gain {s['cache_qps_gain']:.3f}x)")
grid = {(c["scheduler"], c["cache_bytes"] > 0): c for c in out["grid"]}
if grid[("fair", False)]["requests_shed"] != \
        grid[("fair", True)]["requests_shed"]:
    fails.append("cache-on and cache-off shed rates differ: the QPS "
                 "comparison is not apples to apples")
if s["gold_p99_fair_ratio"] > 1.2:
    fails.append(f"fair scheduling failed to protect the gold tier "
                 f"(p99 ratio {s['gold_p99_fair_ratio']:.3f} > 1.2)")
if s["gold_p99_fifo_ratio"] <= 2.0:
    fails.append(f"FIFO was expected to degrade under the flood "
                 f"(p99 ratio {s['gold_p99_fifo_ratio']:.3f} <= 2.0)")
if fails:
    for f in fails:
        print(f"FAIL: {f}", file=sys.stderr)
    sys.exit(1)

with open("results/BENCH_tenant.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("results/BENCH_tenant.json updated: cache %.2fx QPS at equal shed, "
      "gold p99 %.2fx under fair vs %.2fx under FIFO" %
      (s["cache_qps_gain"], s["gold_p99_fair_ratio"],
       s["gold_p99_fifo_ratio"]))
EOF
