#!/usr/bin/env bash
# Regenerates results/BENCH_cluster.json from the multi-node sweep
# (bench/fig15_multinode): 1-8 nodes x 4 GPUs behind the two-level
# cluster planner, uniform vs Zipf 1.75 probes, InfiniBand vs 25 GbE,
# plus the kill-a-node / drain-a-node / scale-2-to-4 scenarios. The
# bench itself enforces match-set identity against every fault-free
# baseline, 1-node bit-identity with dist::ShardScheduler, and the
# >= 1.5x 4-node uniform speedup, so a nonzero exit here means a real
# regression. All numbers are simulated (deterministic for a fixed seed
# and any --threads), so the merged file is reproducible bit for bit on
# any machine.
#
# Usage: scripts/bench_multinode.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target fig15_multinode

TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR"/bench/fig15_multinode --json "$TMP" > /dev/null

python3 scripts/validate_metrics.py "$TMP"

# Distill the sweep records into one summary document: one row per
# (network, nodes, distribution, scenario) point, with the per-node and
# network-link breakdowns carried through.
python3 - "$TMP" <<'EOF'
import json
import sys

out = {"bench": "fig15_multinode", "sweep": []}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        params = rec["params"]
        run = rec["run"]
        row = {
            "network": params["network"],
            "num_nodes": params["num_nodes"],
            "gpus_per_node": params["gpus_per_node"],
            "total_shards": params["total_shards"],
            "zipf_exponent": params["zipf_exponent"],
            "scenario": params["scenario"],
            "matches_lost": params["matches_lost"],
            "matches_extra": params["matches_extra"],
            "overhead": params["overhead"],
            "rebalance_events": params["rebalance_events"],
            "moved_r_tuples": params["moved_r_tuples"],
            "migration_seconds": params["migration_seconds"],
            "seconds": run["seconds"],
            "qps": run["qps"],
            "probe_tuples": run["probe_tuples"],
            "result_tuples": run["result_tuples"],
            "nodes": [
                {k: n[k] for k in (
                    "node", "origin", "alive", "drained", "shards",
                    "r_tuples", "tuples_routed", "tuples_rerouted",
                    "matches", "steal_events", "busy_seconds")}
                for n in rec["nodes"]
            ],
            "network_links": rec["network_links"],
        }
        if "robustness" in rec:
            row["failovers"] = rec["robustness"].get("failovers", 0)
        out["sweep"].append(row)

with open("results/BENCH_cluster.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("results/BENCH_cluster.json updated")
EOF
