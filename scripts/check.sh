#!/usr/bin/env bash
# Full verification sweep: builds and tests the tree in the regular
# configuration and under sanitizers. Run from the repository root.
#
# Usage: scripts/check.sh [sanitizers...]
#   scripts/check.sh                     # Release + address,undefined
#   scripts/check.sh thread              # Release + thread sanitizer
set -euo pipefail

SANITIZERS=("$@")
if [ ${#SANITIZERS[@]} -eq 0 ]; then
  SANITIZERS=("address,undefined")
fi

run_config() {
  local dir="$1"
  shift
  echo "=== configure $dir ($*) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure
}

# Every golden / committed-results file the smokes diff or validate
# against must exist before anything builds: a missing baseline should
# be one clear error, not a confusing diff failure twenty minutes in.
require_file() {
  if [ ! -f "$1" ]; then
    echo "error: required baseline file $1 is missing — $2" >&2
    exit 1
  fi
}
require_file results/ablation_fault_recovery.txt \
  "regenerate with: build-release/bench/ablation_fault_recovery > results/ablation_fault_recovery.txt"
require_file results/BENCH_dist.json "regenerate with: scripts/bench_dist.sh"
require_file results/BENCH_serve.json "regenerate with: scripts/bench_serve.sh"
require_file results/BENCH_plan.json "regenerate with: scripts/bench_plan.sh"
require_file results/BENCH_chaos.json \
  "regenerate with: scripts/bench_chaos.sh"
require_file results/BENCH_htap.json "regenerate with: scripts/bench_htap.sh"
require_file results/BENCH_tenant.json \
  "regenerate with: scripts/bench_tenant.sh"
require_file results/BENCH_cluster.json \
  "regenerate with: scripts/bench_multinode.sh"

run_config build-release -DCMAKE_BUILD_TYPE=Release -DGPUJOIN_SANITIZE=

# Deterministic fault-recovery smoke: the ablation at its fixed seed must
# stay byte-identical to the checked-in golden table.
scripts/fault_smoke.sh build-release

# Metrics emission smoke: a small bench run with --json must produce
# records that pass the schema_version 1 validator.
METRICS_TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$METRICS_TMP"' EXIT
build-release/bench/ablation_fault_recovery --json "$METRICS_TMP" \
  > /dev/null
python3 scripts/validate_metrics.py "$METRICS_TMP"

# Serving-layer smoke: a short latency sweep must run end to end and emit
# schema-valid records (histogram metric kind included).
SERVE_TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$METRICS_TMP" "$SERVE_TMP"' EXIT
build-release/bench/serve_latency --requests 2000 --json "$SERVE_TMP" \
  > /dev/null
python3 scripts/validate_metrics.py "$SERVE_TMP"

# Sharded-engine smoke: the scale-out sweep must run end to end and its
# per-shard/per-link sections must pass the validator.
DIST_TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$METRICS_TMP" "$SERVE_TMP" "$DIST_TMP"' EXIT
build-release/bench/fig10_scaleout --s_sample $((1 << 16)) \
  --json "$DIST_TMP" > /dev/null
python3 scripts/validate_metrics.py "$DIST_TMP"

# Planner smoke: the serving layer must run under every routing mode, the
# sharded engine under adaptive routing, and the adaptive-routing bench
# end to end — each emitting schema-valid planner sections.
PLAN_TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$METRICS_TMP" "$SERVE_TMP" "$DIST_TMP" "$PLAN_TMP"' EXIT
for mode in static adaptive oracle; do
  build-release/bench/serve_latency --requests 500 --planner "$mode" \
    --json "$PLAN_TMP" > /dev/null
  python3 scripts/validate_metrics.py "$PLAN_TMP"
done
build-release/bench/fig10_scaleout --s_sample $((1 << 16)) \
  --planner adaptive --json "$PLAN_TMP" > /dev/null
python3 scripts/validate_metrics.py "$PLAN_TMP"
build-release/bench/fig11_adaptive --batches_per_phase 2 \
  --batch_tuples $((1 << 13)) --json "$PLAN_TMP" > /dev/null
python3 scripts/validate_metrics.py "$PLAN_TMP"

# Chaos smoke: kill-a-shard-mid-run must complete with a match set
# identical to the fault-free baseline (the bench exits nonzero on any
# lost or duplicated match) and emit schema-valid robustness sections.
CHAOS_TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$METRICS_TMP" "$SERVE_TMP" "$DIST_TMP" "$PLAN_TMP" "$CHAOS_TMP"' EXIT
build-release/bench/fig12_chaos --s_sample $((1 << 16)) \
  --json "$CHAOS_TMP" > /dev/null
python3 scripts/validate_metrics.py "$CHAOS_TMP"
build-release/bench/serve_latency --requests 500 --retry-cap 3 \
  --request-deadline-ms 5 --hedge-after 1 --json "$CHAOS_TMP" > /dev/null
python3 scripts/validate_metrics.py "$CHAOS_TMP"

# HTAP smoke: a tiny ingest grid must complete with zero admitted-request
# drops across epoch swaps and reads identical to the replay oracle (the
# bench exits nonzero on either violation) and emit schema-valid ingest
# sections.
HTAP_TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$METRICS_TMP" "$SERVE_TMP" "$DIST_TMP" "$PLAN_TMP" "$CHAOS_TMP" "$HTAP_TMP"' EXIT
build-release/bench/fig13_htap --requests 500 --s_sample $((1 << 16)) \
  --merge-threshold 1024 --json "$HTAP_TMP" > /dev/null
python3 scripts/validate_metrics.py "$HTAP_TMP"

# Multi-tenant smoke: the tenant grid must complete with cached match
# sets identical to the uncached run's (the bench exits nonzero on a
# mismatch or a hit-free verification), emit schema-valid tenants
# sections, and stay byte-identical across sweep thread counts.
TENANT_TMP="$(mktemp --suffix=.metrics.json)"
TENANT_TMP4="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$METRICS_TMP" "$SERVE_TMP" "$DIST_TMP" "$PLAN_TMP" "$CHAOS_TMP" "$HTAP_TMP" "$TENANT_TMP" "$TENANT_TMP4"' EXIT
build-release/bench/fig14_tenants --requests 2000 --verify-requests 500 \
  --threads 1 --json "$TENANT_TMP" > /dev/null
python3 scripts/validate_metrics.py "$TENANT_TMP"
build-release/bench/fig14_tenants --requests 2000 --verify-requests 500 \
  --threads 4 --json "$TENANT_TMP4" > /dev/null
diff "$TENANT_TMP" "$TENANT_TMP4"

# Multi-node smoke: the cluster sweep must complete with every
# scenario's match set identical to its fault-free baseline, the 1-node
# cell bit-identical to dist::ShardScheduler, and the 4-node uniform
# speedup >= 1.5x (the bench exits nonzero on any violation), emitting
# schema-valid nodes/network_links sections.
CLUSTER_TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$METRICS_TMP" "$SERVE_TMP" "$DIST_TMP" "$PLAN_TMP" "$CHAOS_TMP" "$HTAP_TMP" "$TENANT_TMP" "$TENANT_TMP4" "$CLUSTER_TMP"' EXIT
build-release/bench/fig15_multinode --s_sample $((1 << 16)) \
  --json "$CLUSTER_TMP" > /dev/null
python3 scripts/validate_metrics.py "$CLUSTER_TMP"

for san in "${SANITIZERS[@]}"; do
  # RelWithDebInfo keeps the sanitizer runs fast enough for the full
  # test suite while preserving usable stack traces.
  run_config "build-san-${san//,/}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo "-DGPUJOIN_SANITIZE=${san}"
  # The fault paths allocate, unwind and recover in ways the rest of the
  # suite doesn't, and the observer fan-out / JSON emission paths are new;
  # give them a dedicated pass under each sanitizer. The dynamic B-tree
  # and HTAP ingest tests churn node recycling and merge/swap lifecycles,
  # the kind of use-after-free surface sanitizers exist for.
  ctest --test-dir "build-san-${san//,/}" --output-on-failure \
    -R 'fault_test|partition_test|sweep_test|counters_test|obs_test|trace_test|serve_test|tenant_test|dist_test|plan_test|chaos_test|dynamic_btree_test|htap_test|cluster_test|topology_test'
done

echo "=== all configurations passed ==="
