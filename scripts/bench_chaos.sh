#!/usr/bin/env bash
# Regenerates results/BENCH_chaos.json from the chaos sweep
# (bench/fig12_chaos): {2, 4, 8} simulated GPUs x {uniform, Zipf 1.75}
# probes x {crash, stuck, link-down} terminal faults injected at 40% of
# the fault-free makespan, plus the fault-free baselines. The bench
# itself exits nonzero if any chaos run loses or duplicates a match vs
# its baseline, so this script doubles as the zero-lost-matches gate.
# All numbers are simulated (deterministic for a fixed seed and any
# --threads), so the merged file is reproducible bit for bit.
#
# Usage: scripts/bench_chaos.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target fig12_chaos

TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR"/bench/fig12_chaos --json "$TMP" > /dev/null

python3 scripts/validate_metrics.py "$TMP"

# Distill the sweep into one summary document: one row per
# (scenario, shard count, distribution) point, with the failover records
# carried through and the baseline each chaos run is measured against.
python3 - "$TMP" <<'EOF'
import json
import sys

out = {"bench": "fig12_chaos", "sweep": []}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        params = rec["params"]
        run = rec["run"]
        row = {
            "scenario": params["scenario"],
            "num_shards": params["num_shards"],
            "zipf_exponent": params["zipf_exponent"],
            "sim_makespan": params["sim_makespan"],
            "seconds": run["seconds"],
            "qps": run["qps"],
            "probe_tuples": run["probe_tuples"],
            "result_tuples": run["result_tuples"],
        }
        if params["scenario"] != "none":
            row.update({
                "fail_shard": params["fail_shard"],
                "fail_at_seconds": params["fail_at_seconds"],
                "heartbeat_timeout": params["heartbeat_timeout"],
                "matches_lost": params["matches_lost"],
                "matches_extra": params["matches_extra"],
                "failover_overhead": params["failover_overhead"],
                "robustness": rec["robustness"],
            })
            if params["matches_lost"] != 0 or params["matches_extra"] != 0:
                raise SystemExit(
                    "chaos run lost/duplicated matches: %s" % row)
        out["sweep"].append(row)

with open("results/BENCH_chaos.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("results/BENCH_chaos.json updated")
EOF
