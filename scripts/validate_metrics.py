#!/usr/bin/env python3
"""Validates JSON Lines metric emissions (bench binaries' --json output)
against the schema_version 1 record layout (src/obs/emitter.h).

Usage: scripts/validate_metrics.py FILE [FILE...]
Exits non-zero and prints one line per violation if any record is
malformed. Standard library only.
"""
import json
import sys

SCHEMA_VERSION = 1

COUNTER_FIELDS = [
    "host_random_read_bytes", "host_seq_read_bytes", "host_write_bytes",
    "translation_requests", "tlb_hits", "hbm_read_bytes", "hbm_write_bytes",
    "l1_hits", "l2_hits", "l2_misses", "warp_steps", "memory_transactions",
    "kernel_launches", "serial_dependent_loads", "faults_injected",
    "translation_timeouts", "remote_read_errors", "degradation_episodes",
    "alloc_faults", "fault_retries", "fault_backoff_nanos",
    "degraded_host_bytes",
]

RUN_FIELDS = {
    "label": str, "seconds": (int, float), "qps": (int, float),
    "probe_tuples": int, "result_tuples": int,
    "translations_per_key": (int, float), "spilled_tuples": int,
    "spill_buckets": int, "degraded_windows": int, "fallback_windows": int,
    "result_buffer_on_host": bool,
}

PHASE_FIELDS = {
    "name": str, "seconds": (int, float), "enter_count": int,
    "observed_transactions": int, "observed_stream_bytes": int,
}

TRACE_REGION_FIELDS = [
    "transactions", "l1_hits", "l2_hits", "memory_transactions",
    "stream_bytes", "writes",
]

METRIC_KINDS = {"scalar", "counter", "ratio", "histogram"}

HISTOGRAM_FIELDS = ["sum", "min", "max", "p50", "p95", "p99"]


def err(errors, where, msg):
    errors.append(f"{where}: {msg}")


def check_uint(errors, where, obj, field):
    v = obj.get(field)
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        err(errors, where, f"{field!r} must be a non-negative integer, "
            f"got {v!r}")


def check_counters(errors, where, counters):
    if not isinstance(counters, dict):
        err(errors, where, "counters must be an object")
        return
    for field in COUNTER_FIELDS:
        if field not in counters:
            err(errors, where, f"counters missing {field!r}")
        else:
            check_uint(errors, where, counters, field)
    for extra in set(counters) - set(COUNTER_FIELDS):
        err(errors, where, f"counters has unknown field {extra!r}")


def check_typed(errors, where, obj, spec):
    for field, types in spec.items():
        v = obj.get(field)
        if field not in obj:
            err(errors, where, f"missing {field!r}")
        elif types is not bool and isinstance(v, bool):
            err(errors, where, f"{field!r} must be {types}, got bool")
        elif not isinstance(v, types):
            err(errors, where, f"{field!r} must be {types}, got {type(v)}")


def check_platform(errors, where, platform):
    if not isinstance(platform, dict):
        err(errors, where, "platform must be an object")
        return
    if not isinstance(platform.get("name"), str):
        err(errors, where, "platform.name must be a string")
    for section, fields in (
        ("gpu", ["num_sms", "clock_hz", "l1_size", "l2_size",
                 "cacheline_bytes", "hbm_bandwidth", "hbm_capacity",
                 "tlb_coverage", "warp_step_throughput"]),
        ("interconnect", ["peak_bandwidth", "seq_bandwidth",
                          "random_bandwidth", "latency",
                          "translation_latency",
                          "translation_concurrency"]),
    ):
        sub = platform.get(section)
        if not isinstance(sub, dict):
            err(errors, where, f"platform.{section} must be an object")
            continue
        if not isinstance(sub.get("name"), str):
            err(errors, where, f"platform.{section}.name must be a string")
        for field in fields:
            v = sub.get(field)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                err(errors, where,
                    f"platform.{section}.{field} must be a number, "
                    f"got {v!r}")


def check_metrics(errors, where, metrics):
    if not isinstance(metrics, dict):
        err(errors, where, "metrics must be an object")
        return
    for name, m in metrics.items():
        w = f"{where} metric {name!r}"
        if not isinstance(m, dict):
            err(errors, w, "must be an object")
            continue
        kind = m.get("kind")
        if kind not in METRIC_KINDS:
            err(errors, w, f"kind must be one of {sorted(METRIC_KINDS)}, "
                f"got {kind!r}")
            continue
        if not isinstance(m.get("unit"), str):
            err(errors, w, "unit must be a string")
        if kind == "counter":
            check_uint(errors, w, m, "value")
        elif kind == "histogram":
            check_uint(errors, w, m, "count")
            for field in HISTOGRAM_FIELDS:
                v = m.get(field)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    err(errors, w, f"{field} must be a number, got {v!r}")
        else:
            v = m.get("value")
            if v is not None and (not isinstance(v, (int, float))
                                  or isinstance(v, bool)):
                err(errors, w, f"value must be a number or null, got {v!r}")
        if kind == "ratio":
            for field in ("numerator", "denominator"):
                v = m.get(field)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    err(errors, w, f"{field} must be a number, got {v!r}")


SHARD_FIELDS = {
    "shard": int, "r_tuples": int, "tuples_routed": int,
    "tuples_stolen_out": int, "tuples_stolen_in": int, "steals_in": int,
    "windows": int, "matches": int, "busy_seconds": (int, float),
}

LINK_FIELDS = {
    "name": str, "bytes": int, "utilization": (int, float),
}


def check_shards(errors, where, shards):
    if not isinstance(shards, list) or not shards:
        err(errors, where, "shards must be a non-empty array")
        return
    seen_ids = set()
    for i, shard in enumerate(shards):
        w = f"{where} shard[{i}]"
        if not isinstance(shard, dict):
            err(errors, w, "must be an object")
            continue
        check_typed(errors, w, shard, SHARD_FIELDS)
        sid = shard.get("shard")
        if isinstance(sid, int) and not isinstance(sid, bool):
            if sid in seen_ids:
                err(errors, w, f"duplicate shard id {sid}")
            seen_ids.add(sid)
        check_counters(errors, w, shard.get("counters", {}))
        if "phases" in shard and not isinstance(shard["phases"], list):
            err(errors, w, "phases must be an array")


def check_links(errors, where, links):
    if not isinstance(links, list) or not links:
        err(errors, where, "links must be a non-empty array")
        return
    for i, link in enumerate(links):
        w = f"{where} link[{i}]"
        if not isinstance(link, dict):
            err(errors, w, "must be an object")
            continue
        check_typed(errors, w, link, LINK_FIELDS)
        util = link.get("utilization")
        if isinstance(util, (int, float)) and not isinstance(util, bool) \
                and util < 0:
            err(errors, w, f"utilization must be >= 0, got {util!r}")


NODE_FIELDS = {
    "node": int, "origin": bool, "alive": bool, "drained": bool,
    "shards": int, "r_tuples": int, "tuples_routed": int,
    "tuples_rerouted": int, "matches": int, "steal_events": int,
    "busy_seconds": (int, float),
}

NETWORK_LINK_FIELDS = {
    "name": str, "bytes": int, "utilization": (int, float),
}


def check_nodes(errors, where, nodes, params):
    if not isinstance(nodes, list) or not nodes:
        err(errors, where, "nodes must be a non-empty array")
        return
    seen_ids = set()
    shard_total = 0
    for i, node in enumerate(nodes):
        w = f"{where} node[{i}]"
        if not isinstance(node, dict):
            err(errors, w, "must be an object")
            continue
        check_typed(errors, w, node, NODE_FIELDS)
        nid = node.get("node")
        if isinstance(nid, int) and not isinstance(nid, bool):
            if nid in seen_ids:
                err(errors, w, f"duplicate node id {nid}")
            seen_ids.add(nid)
        shards = node.get("shards")
        if isinstance(shards, int) and not isinstance(shards, bool):
            if shards < 0:
                err(errors, w, f"shards must be >= 0, got {shards!r}")
            shard_total += max(shards, 0)
        if "phases" in node and not isinstance(node["phases"], list):
            err(errors, w, "phases must be an array")
    total = params.get("total_shards") if isinstance(params, dict) else None
    if isinstance(total, int) and not isinstance(total, bool) \
            and shard_total != total:
        err(errors, where, f"per-node shard counts sum to {shard_total}, "
            f"but params.total_shards is {total}")


def check_network_links(errors, where, links):
    if not isinstance(links, list) or not links:
        err(errors, where, "network_links must be a non-empty array")
        return
    for i, link in enumerate(links):
        w = f"{where} network_link[{i}]"
        if not isinstance(link, dict):
            err(errors, w, "must be an object")
            continue
        check_typed(errors, w, link, NETWORK_LINK_FIELDS)
        util = link.get("utilization")
        if isinstance(util, (int, float)) and not isinstance(util, bool) \
                and not 0 <= util <= 1:
            err(errors, w, f"utilization must be in [0, 1], got {util!r}")


PLANNER_FIELDS = {
    "mode": str, "decisions": int, "explorations": int,
    "residual_observations": int, "total_seconds": (int, float),
    "total_matches": int,
}

PLANNER_BATCH_FIELDS = {
    "ordinal": int, "begin": int, "count": int, "plan": str,
    "predicted_seconds": (int, float), "charged_seconds": (int, float),
    "explored": bool, "matches": int,
}

PLANNER_FEATURE_FIELDS = {
    "skew": (int, float), "selectivity": (int, float),
    "r_tlb_ratio": (int, float), "link_utilization": (int, float),
    "bucket": int,
}

PLAN_SECONDS_FIELDS = {"plan": str, "seconds": (int, float)}

REGRET_POINT_FIELDS = {
    "ordinal": int, "phase": str, "adaptive_seconds": (int, float),
    "oracle_seconds": (int, float), "cum_adaptive_seconds": (int, float),
    "cum_oracle_seconds": (int, float), "regret_ratio": (int, float),
}

PLANNER_MODES = {"static", "adaptive", "oracle"}


def check_plan_seconds(errors, where, items, what):
    if not isinstance(items, list) or not items:
        err(errors, where, f"{what} must be a non-empty array")
        return
    for i, item in enumerate(items):
        w = f"{where} {what}[{i}]"
        if not isinstance(item, dict):
            err(errors, w, "must be an object")
            continue
        check_typed(errors, w, item, PLAN_SECONDS_FIELDS)


def check_planner(errors, where, planner):
    """Routed-backend section (src/plan/metrics.cc PlannerJson)."""
    if not isinstance(planner, dict):
        err(errors, where, "planner must be an object")
        return
    check_typed(errors, where, planner, PLANNER_FIELDS)
    if planner.get("mode") not in PLANNER_MODES:
        err(errors, where, f"planner.mode must be one of "
            f"{sorted(PLANNER_MODES)}, got {planner.get('mode')!r}")
    check_plan_seconds(errors, where, planner.get("plan_usage"),
                       "plan_usage")
    usage = planner.get("plan_usage")
    usage_batches = 0
    usage_plans = set()
    if isinstance(usage, list):
        for entry in usage:
            if isinstance(entry, dict):
                if isinstance(entry.get("batches"), int):
                    usage_batches += entry["batches"]
                usage_plans.add(entry.get("plan"))
    batches = planner.get("batches")
    if not isinstance(batches, list) or not batches:
        err(errors, where, "planner.batches must be a non-empty array")
        return
    if usage_batches != len(batches):
        err(errors, where,
            f"plan_usage batches sum to {usage_batches} but "
            f"{len(batches)} batches were routed")
    for i, batch in enumerate(batches):
        w = f"{where} planner batch[{i}]"
        if not isinstance(batch, dict):
            err(errors, w, "must be an object")
            continue
        check_typed(errors, w, batch, PLANNER_BATCH_FIELDS)
        if batch.get("plan") not in usage_plans:
            err(errors, w, f"plan {batch.get('plan')!r} missing from "
                "plan_usage")
        features = batch.get("features")
        if not isinstance(features, dict):
            err(errors, w, "features must be an object")
        else:
            check_typed(errors, f"{w} features", features,
                        PLANNER_FEATURE_FIELDS)
        if "candidates" in batch:
            check_plan_seconds(errors, w, batch["candidates"],
                               "candidates")
        elif planner.get("mode") == "oracle":
            err(errors, w, "oracle batches must carry 'candidates'")


def check_regret_curve(errors, where, curve):
    if not isinstance(curve, list) or not curve:
        err(errors, where, "regret_curve must be a non-empty array")
        return
    prev_adaptive = prev_oracle = 0.0
    for i, point in enumerate(curve):
        w = f"{where} regret_curve[{i}]"
        if not isinstance(point, dict):
            err(errors, w, "must be an object")
            continue
        check_typed(errors, w, point, REGRET_POINT_FIELDS)
        cum_a = point.get("cum_adaptive_seconds")
        cum_o = point.get("cum_oracle_seconds")
        for label, cum, prev in (("cum_adaptive_seconds", cum_a,
                                  prev_adaptive),
                                 ("cum_oracle_seconds", cum_o,
                                  prev_oracle)):
            if isinstance(cum, (int, float)) and not isinstance(cum, bool):
                if cum < prev:
                    err(errors, w, f"{label} must be non-decreasing")
        if isinstance(cum_a, (int, float)) and not isinstance(cum_a, bool):
            prev_adaptive = cum_a
        if isinstance(cum_o, (int, float)) and not isinstance(cum_o, bool):
            prev_oracle = cum_o


FAILOVER_RECORD_FIELDS = {
    "dead_shard": int, "fault_class": str,
    "detected_at_seconds": (int, float), "reassigned_tuples": int,
    "reexec_chunks": int, "reexec_seconds": (int, float),
}

ROBUSTNESS_COUNTER_FIELDS = [
    "failovers", "reexec_windows", "retries", "hedges", "hedge_wins",
    "deadline_misses", "shed_deadline", "shed_retry_exhausted",
]

FAULT_CLASSES = {"shard_crash", "shard_stuck", "shard_slow", "link_down"}


def check_robustness(errors, where, rob):
    """Robustness section (src/obs/robustness.cc RobustnessJson):
    failover records, re-execution totals, and serving retry activity."""
    if not isinstance(rob, dict):
        err(errors, where, "robustness must be an object")
        return
    for field in ROBUSTNESS_COUNTER_FIELDS:
        check_uint(errors, where, rob, field)
    for field in ("detection_seconds", "slow_delay_seconds"):
        v = rob.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            err(errors, where, f"{field!r} must be a non-negative number, "
                f"got {v!r}")
    records = rob.get("failover_records")
    if not isinstance(records, list):
        err(errors, where, "failover_records must be an array")
        records = []
    if rob.get("failovers") != len(records):
        err(errors, where,
            f"failovers says {rob.get('failovers')!r} but "
            f"{len(records)} failover record(s) are present")
    seen_dead = set()
    for i, fo in enumerate(records):
        w = f"{where} failover[{i}]"
        if not isinstance(fo, dict):
            err(errors, w, "must be an object")
            continue
        check_typed(errors, w, fo, FAILOVER_RECORD_FIELDS)
        if fo.get("fault_class") not in FAULT_CLASSES:
            err(errors, w, f"fault_class must be one of "
                f"{sorted(FAULT_CLASSES)}, got {fo.get('fault_class')!r}")
        dead = fo.get("dead_shard")
        if isinstance(dead, int) and not isinstance(dead, bool):
            # A shard dies once; two failover records for the same id
            # would mean double-counted (or double-executed) recovery.
            if dead in seen_dead:
                err(errors, w, f"duplicate dead shard id {dead}")
            seen_dead.add(dead)
    hist = rob.get("retry_histogram")
    if not isinstance(hist, list):
        err(errors, where, "retry_histogram must be an array")
    else:
        for i, v in enumerate(hist):
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                err(errors, where, f"retry_histogram[{i}] must be a "
                    f"non-negative integer, got {v!r}")


INGEST_COUNTER_FIELDS = [
    "ops_applied", "inserts", "updates", "deletes", "ops_shed",
    "merges_started", "merges", "swap_stalls", "epochs",
    "delta_entries", "delta_entries_peak", "delta_bytes",
    "delta_bytes_peak", "overlay_entries",
]

INGEST_STALENESS_FIELDS = ["mean", "p50", "p95", "p99", "max"]

TENANT_SCHEDULERS = {"fifo", "fair"}

TENANT_TIER_COUNTER_FIELDS = [
    "tenants", "requests", "admitted", "shed_rate_limit", "shed_backlog",
    "served",
]

TENANT_LATENCY_FIELDS = ["mean", "p50", "p95", "p99", "max"]

TENANT_CACHE_COUNTER_FIELDS = [
    "reserved_bytes", "lookups", "hits", "misses", "insertions",
    "evictions", "skipped_too_large", "entries", "used_bytes",
]


def check_tenants(errors, where, tenants):
    """Multi-tenant serving section (src/obs/tenant.cc TenantsJson):
    scheduler identity, per-tier admission/latency breakdown, and the
    hot-key result cache's counters."""
    if not isinstance(tenants, dict):
        err(errors, where, "tenants must be an object")
        return
    sched = tenants.get("scheduler")
    if sched not in TENANT_SCHEDULERS:
        err(errors, where, f"scheduler must be one of "
            f"{sorted(TENANT_SCHEDULERS)}, got {sched!r}")
    for field in ("tenants", "tenants_seen", "rogue_requests"):
        check_uint(errors, where, tenants, field)
    pop = tenants.get("tenants")
    seen = tenants.get("tenants_seen")
    if isinstance(pop, int) and isinstance(seen, int) \
            and not isinstance(pop, bool) and seen > pop:
        err(errors, where, f"tenants_seen ({seen}) cannot exceed the "
            f"tenant population ({pop})")

    tiers = tenants.get("tiers")
    if not isinstance(tiers, list) or not tiers:
        err(errors, where, "tiers must be a non-empty array")
        tiers = []
    seen_names = set()
    for i, tier in enumerate(tiers):
        w = f"{where} tier[{i}]"
        if not isinstance(tier, dict):
            err(errors, w, "must be an object")
            continue
        name = tier.get("tier")
        if not isinstance(name, str) or not name:
            err(errors, w, "tier must be a non-empty string")
        elif name in seen_names:
            err(errors, w, f"duplicate tier name {name!r}")
        else:
            seen_names.add(name)
        weight = tier.get("weight")
        if not isinstance(weight, (int, float)) or isinstance(weight, bool) \
                or weight <= 0:
            err(errors, w, f"weight must be a positive number, "
                f"got {weight!r}")
        for field in TENANT_TIER_COUNTER_FIELDS:
            check_uint(errors, w, tier, field)
        reqs = tier.get("requests")
        parts = [tier.get(f) for f in ("admitted", "shed_rate_limit",
                                       "shed_backlog")]
        if all(isinstance(v, int) and not isinstance(v, bool)
               for v in [reqs] + parts) and sum(parts) != reqs:
            err(errors, w, f"admitted + shed_rate_limit + shed_backlog "
                f"must equal requests ({sum(parts)} != {reqs})")
        served = tier.get("served")
        admitted = tier.get("admitted")
        if isinstance(served, int) and isinstance(admitted, int) \
                and not isinstance(served, bool) and served > admitted:
            err(errors, w, f"served ({served}) cannot exceed "
                f"admitted ({admitted})")
        lat = tier.get("latency")
        if not isinstance(lat, dict):
            err(errors, w, "latency must be an object")
            continue
        check_uint(errors, f"{w} latency", lat, "count")
        if isinstance(served, int) and not isinstance(served, bool) \
                and lat.get("count") != served:
            err(errors, w, f"latency count ({lat.get('count')!r}) must "
                f"equal served ({served})")
        for field in TENANT_LATENCY_FIELDS:
            v = lat.get(field)
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or v < 0:
                err(errors, f"{w} latency", f"{field!r} must be a "
                    f"non-negative number, got {v!r}")

    cache = tenants.get("cache")
    if not isinstance(cache, dict):
        err(errors, where, "cache must be an object")
        return
    w = f"{where} cache"
    for field in TENANT_CACHE_COUNTER_FIELDS:
        check_uint(errors, w, cache, field)
    for field in ("hit_seconds", "insert_seconds"):
        v = cache.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            err(errors, w, f"{field!r} must be a non-negative number, "
                f"got {v!r}")
    hits, misses, lookups = (cache.get(f) for f in
                             ("hits", "misses", "lookups"))
    if all(isinstance(v, int) and not isinstance(v, bool)
           for v in (hits, misses, lookups)) and hits + misses != lookups:
        err(errors, w, f"hits + misses must equal lookups "
            f"({hits} + {misses} != {lookups})")
    used = cache.get("used_bytes")
    reserved = cache.get("reserved_bytes")
    if all(isinstance(v, int) and not isinstance(v, bool)
           for v in (used, reserved)) and reserved > 0 and used > reserved:
        err(errors, w, f"used_bytes ({used}) cannot exceed "
            f"reserved_bytes ({reserved})")
    if isinstance(reserved, int) and not isinstance(reserved, bool) \
            and reserved == 0:
        for field in ("lookups", "hits", "entries", "used_bytes"):
            v = cache.get(field)
            if isinstance(v, int) and not isinstance(v, bool) and v != 0:
                err(errors, w, f"{field!r} must be 0 when no cache is "
                    f"reserved, got {v!r}")


def check_ingest(errors, where, ingest):
    """HTAP ingest section (src/obs/ingest.cc IngestJson): write-stream
    counts, background-merge activity, delta footprint, and the merge
    staleness histogram."""
    if not isinstance(ingest, dict):
        err(errors, where, "ingest must be an object")
        return
    for field in INGEST_COUNTER_FIELDS:
        check_uint(errors, where, ingest, field)
    for field in ("merge_seconds", "swap_stall_seconds"):
        v = ingest.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            err(errors, where, f"{field!r} must be a non-negative number, "
                f"got {v!r}")
    ops = ingest.get("ops_applied")
    parts = [ingest.get(f) for f in ("inserts", "updates", "deletes")]
    if all(isinstance(v, int) and not isinstance(v, bool)
           for v in [ops] + parts) and sum(parts) != ops:
        err(errors, where, f"inserts + updates + deletes must equal "
            f"ops_applied ({sum(parts)} != {ops})")
    merges = ingest.get("merges")
    started = ingest.get("merges_started")
    if isinstance(merges, int) and isinstance(started, int) \
            and not isinstance(merges, bool) and merges > started:
        err(errors, where, f"merges ({merges}) cannot exceed "
            f"merges_started ({started})")
    swaps = ingest.get("swap_stalls")
    if isinstance(swaps, int) and isinstance(merges, int) \
            and not isinstance(swaps, bool) and swaps != merges:
        err(errors, where, f"swap_stalls ({swaps}) must equal completed "
            f"merges ({merges}): one epoch swap per merge")
    peak = ingest.get("delta_entries_peak")
    end = ingest.get("delta_entries")
    if isinstance(peak, int) and isinstance(end, int) \
            and not isinstance(peak, bool) and end > peak:
        err(errors, where, f"delta_entries ({end}) cannot exceed "
            f"delta_entries_peak ({peak})")
    stale = ingest.get("staleness")
    if not isinstance(stale, dict):
        err(errors, where, "staleness must be an object")
        return
    w = f"{where} staleness"
    check_uint(errors, w, stale, "count")
    for field in INGEST_STALENESS_FIELDS:
        v = stale.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            err(errors, w, f"{field!r} must be a non-negative number, "
                f"got {v!r}")


def check_record(errors, where, rec):
    if not isinstance(rec, dict):
        err(errors, where, "record must be a JSON object")
        return
    if rec.get("schema_version") != SCHEMA_VERSION:
        err(errors, where, f"schema_version must be {SCHEMA_VERSION}, "
            f"got {rec.get('schema_version')!r}")
    bench = rec.get("bench")
    if not isinstance(bench, str) or not bench:
        err(errors, where, "bench must be a non-empty string")
    if not isinstance(rec.get("params"), dict):
        err(errors, where, "params must be an object")

    if "platform" in rec:
        check_platform(errors, where, rec["platform"])

    has_run = "run" in rec
    for section in ("counters", "stages", "phases"):
        if (section in rec) != has_run:
            err(errors, where,
                f"{section!r} must appear exactly when 'run' does")
    if has_run:
        run = rec["run"]
        if not isinstance(run, dict):
            err(errors, where, "run must be an object")
        else:
            check_typed(errors, f"{where} run", run, RUN_FIELDS)
        check_counters(errors, f"{where} run", rec.get("counters", {}))

        stages = rec.get("stages")
        if not isinstance(stages, list):
            err(errors, where, "stages must be an array")
        else:
            for i, stage in enumerate(stages):
                w = f"{where} stage[{i}]"
                if not isinstance(stage, dict):
                    err(errors, w, "must be an object")
                    continue
                check_typed(errors, w, stage,
                            {"name": str, "seconds": (int, float)})

        phases = rec.get("phases")
        if not isinstance(phases, list):
            err(errors, where, "phases must be an array")
        else:
            for i, phase in enumerate(phases):
                w = f"{where} phase[{i}]"
                if not isinstance(phase, dict):
                    err(errors, w, "must be an object")
                    continue
                check_typed(errors, w, phase, PHASE_FIELDS)
                window = phase.get("window", "missing")
                if window is not None and (not isinstance(window, int)
                                           or isinstance(window, bool)):
                    err(errors, w, f"window must be an integer or null, "
                        f"got {window!r}")
                check_counters(errors, w, phase.get("counters", {}))

    if "trace" in rec:
        trace = rec["trace"]
        regions = trace.get("regions") if isinstance(trace, dict) else None
        if not isinstance(regions, dict):
            err(errors, where, "trace.regions must be an object")
        else:
            for name, stats in regions.items():
                w = f"{where} trace region {name!r}"
                if not isinstance(stats, dict):
                    err(errors, w, "must be an object")
                    continue
                for field in TRACE_REGION_FIELDS:
                    check_uint(errors, w, stats, field)

    if "metrics" in rec:
        check_metrics(errors, where, rec["metrics"])

    # Sharded-engine sections (bench/fig10_scaleout): per-shard and
    # per-link breakdowns travel together.
    for section in ("shards", "links"):
        if (section in rec) != ("shards" in rec and "links" in rec):
            err(errors, where, "'shards' and 'links' must appear together")
            break
    if "shards" in rec:
        check_shards(errors, where, rec["shards"])
    if "links" in rec:
        check_links(errors, where, rec["links"])

    # Cluster-tier sections (bench/fig15_multinode): per-node and
    # network-link breakdowns travel together.
    for section in ("nodes", "network_links"):
        if (section in rec) != ("nodes" in rec and "network_links" in rec):
            err(errors, where,
                "'nodes' and 'network_links' must appear together")
            break
    if "nodes" in rec:
        check_nodes(errors, where, rec["nodes"], rec.get("params"))
    if "network_links" in rec:
        check_network_links(errors, where, rec["network_links"])

    # Robustness section (bench/fig12_chaos, serve_latency with a
    # RetryPolicy): failover and retry activity.
    if "robustness" in rec:
        check_robustness(errors, where, rec["robustness"])

    # HTAP ingest section (bench/fig13_htap): delta/merge/epoch-swap
    # activity. Omitted entirely on write-free runs.
    if "ingest" in rec:
        check_ingest(errors, where, rec["ingest"])

    # Multi-tenant serving section (bench/fig14_tenants): per-tier
    # admission/latency plus the hot-key result cache. Omitted on
    # single-tenant runs so legacy records stay bit-identical.
    if "tenants" in rec:
        check_tenants(errors, where, rec["tenants"])

    # Adaptive-routing sections (bench/fig11_adaptive, serve_latency
    # --planner adaptive|oracle).
    if "planner" in rec:
        check_planner(errors, where, rec["planner"])
    if "statics" in rec:
        check_plan_seconds(errors, where, rec["statics"], "statics")
    if "regret_curve" in rec:
        check_regret_curve(errors, where, rec["regret_curve"])


def validate_file(path):
    errors = []
    records = 0
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}:{lineno}"
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    err(errors, where, f"invalid JSON: {e}")
                    continue
                records += 1
                check_record(errors, where, rec)
    except OSError as e:
        errors.append(f"{path}: {e}")
    return records, errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total_records = 0
    total_errors = []
    for path in argv[1:]:
        records, errors = validate_file(path)
        total_records += records
        total_errors.extend(errors)
    for e in total_errors:
        print(e, file=sys.stderr)
    if total_errors:
        print(f"FAIL: {len(total_errors)} violation(s) across "
              f"{total_records} record(s)", file=sys.stderr)
        return 1
    print(f"OK: {total_records} record(s) valid "
          f"(schema_version {SCHEMA_VERSION})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
