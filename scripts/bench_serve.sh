#!/usr/bin/env bash
# Regenerates results/BENCH_serve.json from the serving-mode latency
# sweep (bench/serve_latency): arrival rate -> throughput and latency
# percentiles of the windowed INLJ behind the micro-batcher. All numbers
# are simulated (deterministic for a fixed seed), so the merged file is
# reproducible bit for bit on any machine.
#
# Usage: scripts/bench_serve.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target serve_latency

TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR"/bench/serve_latency --json "$TMP" > /dev/null

python3 scripts/validate_metrics.py "$TMP"

# Distill the sweep records into one summary document: the calibration
# point plus one row per load multiplier.
python3 - "$TMP" <<'EOF'
import json
import sys

out = {"bench": "serve_latency", "calibration": {}, "sweep": []}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        params = rec["params"]
        metrics = rec.get("metrics", {})
        if params.get("point") == "calibration":
            out["calibration"] = {
                "batch_tuples": params["batch_tuples"],
                "window_service_seconds":
                    metrics["serve.window_service_seconds"]["value"],
                "capacity_tuples_per_sec":
                    metrics["serve.capacity_tuples_per_sec"]["value"],
            }
            continue
        hist = metrics["serve.latency_seconds"]
        out["sweep"].append({
            "load_multiplier": params["load_multiplier"],
            "arrival_model": params["arrival_model"],
            "arrival_rate_rps": params["arrival_rate_rps"],
            "requests_admitted":
                metrics["serve.requests_admitted"]["value"],
            "requests_shed": metrics["serve.requests_shed"]["value"],
            "batches": metrics["serve.batches"]["value"],
            "window_grows": metrics["serve.window_grows"]["value"],
            "window_shrinks": metrics["serve.window_shrinks"]["value"],
            "final_batch_tuples":
                metrics["serve.final_batch_tuples"]["value"],
            "latency_seconds": {
                "p50": hist["p50"], "p95": hist["p95"], "p99": hist["p99"],
                "max": hist["max"], "count": hist["count"],
            },
            "achieved_tuples_per_sec":
                metrics["serve.achieved_tuples_per_sec"]["value"],
        })

with open("results/BENCH_serve.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("results/BENCH_serve.json updated")
EOF
