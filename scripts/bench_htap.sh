#!/usr/bin/env bash
# Regenerates results/BENCH_htap.json from the HTAP ingest grid
# (bench/fig13_htap): {read-mostly, balanced 50/50, ingest-burst} write
# mixes x {1, 4} simulated GPUs, each serving a live request stream
# while per-shard delta indexes absorb the writes and background merges
# epoch-swap the static side. The bench itself exits nonzero if any cell
# drops an admitted request across an epoch swap or diverges from the
# rebuilt-from-scratch replay oracle, so this script doubles as that
# gate. All numbers are simulated (deterministic for a fixed seed and
# any --threads), so the merged file is reproducible bit for bit.
#
# Usage: scripts/bench_htap.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target fig13_htap

TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR"/bench/fig13_htap --json "$TMP" > /dev/null

python3 scripts/validate_metrics.py "$TMP"

# Distill the grid into one summary document: one row per
# (mix, shard count) cell with the serving latency, the ingest/merge
# activity and the inline verification outcomes carried through.
python3 - "$TMP" <<'EOF'
import json
import sys

out = {"bench": "fig13_htap", "sweep": []}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        params = rec["params"]
        metrics = rec.get("metrics", {})
        hist = metrics["serve.latency_seconds"]
        row = {
            "mix": params["mix"],
            "num_shards": params["num_shards"],
            "write_ratio": params["write_ratio"],
            "ops_model": params["ops_model"],
            "ingest_rate_ops": params["ingest_rate_ops"],
            "merge_threshold": params["merge_threshold"],
            "arrival_rate_rps": params["arrival_rate_rps"],
            "requests_admitted":
                metrics["serve.requests_admitted"]["value"],
            "requests_shed": metrics["serve.requests_shed"]["value"],
            "latency_seconds": {
                "p50": hist["p50"], "p95": hist["p95"], "p99": hist["p99"],
                "max": hist["max"], "count": hist["count"],
            },
            "achieved_tuples_per_sec":
                metrics["serve.achieved_tuples_per_sec"]["value"],
            "oracle_checked_keys": params["oracle_checked_keys"],
            "oracle_mismatches": params["oracle_mismatches"],
            "zero_drops": params["zero_drops"],
        }
        if "ingest" in rec:
            row["ingest"] = rec["ingest"]
        if params["oracle_mismatches"] != 0 or not params["zero_drops"]:
            raise SystemExit(
                "HTAP cell dropped requests or diverged from the "
                "oracle: %s" % row)
        out["sweep"].append(row)

with open("results/BENCH_htap.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("results/BENCH_htap.json updated")
EOF
