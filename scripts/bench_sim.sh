#!/usr/bin/env bash
# Regenerates the "optimized" half of results/BENCH_sim.json: the
# simulator hot-path microbenchmarks (cache access, line touch, TLB
# lookup, gather). Run from the repository root on an otherwise idle
# machine; results are wall-clock sensitive.
#
# Usage: scripts/bench_sim.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
FILTER='BM_CacheAccess|BM_WarpGather|BM_TouchLine|BM_TlbLookup|BM_GatherSequential'

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target micro_simulator

"$BUILD_DIR"/bench/micro_simulator \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time=1.0 \
  --benchmark_format=json \
  2>/dev/null | tee /tmp/bench_sim_latest.json

echo >&2
echo "JSON written to /tmp/bench_sim_latest.json — merge the cpu_time" >&2
echo "values into results/BENCH_sim.json under 'optimized'." >&2
