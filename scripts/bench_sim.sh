#!/usr/bin/env bash
# Regenerates the "optimized" half of results/BENCH_sim.json: the
# simulator hot-path microbenchmarks (cache access, line touch, TLB
# lookup, gather). Run from the repository root on an otherwise idle
# machine; results are wall-clock sensitive.
#
# Usage: scripts/bench_sim.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
FILTER='BM_CacheAccess|BM_WarpGather|BM_TouchLine|BM_TlbLookup|BM_GatherSequential'

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target micro_simulator

"$BUILD_DIR"/bench/micro_simulator \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time=1.0 \
  --json /tmp/bench_sim_latest.metrics.json \
  2>/dev/null

python3 scripts/validate_metrics.py /tmp/bench_sim_latest.metrics.json

# Merge the new cpu_time values into results/BENCH_sim.json under
# 'optimized_cpu_time_ns', recomputing the speedups.
python3 - <<'EOF'
import json

with open("results/BENCH_sim.json") as f:
    merged = json.load(f)

with open("/tmp/bench_sim_latest.metrics.json") as f:
    for line in f:
        rec = json.loads(line)
        name = rec["params"]["case"]
        cpu = rec["metrics"]["cpu_time_per_iter"]
        entry = merged["benchmarks"].get(name)
        if entry is None or cpu["unit"] != "ns":
            continue
        entry["optimized_cpu_time_ns"] = round(cpu["value"], 2)
        seed = entry.get("seed_cpu_time_ns")
        if seed:
            entry["speedup"] = round(seed / entry["optimized_cpu_time_ns"], 2)

with open("results/BENCH_sim.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print("results/BENCH_sim.json updated")
EOF
