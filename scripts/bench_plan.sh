#!/usr/bin/env bash
# Regenerates results/BENCH_plan.json from the adaptive-routing bench
# (bench/fig11_adaptive): the phased adversarial workload routed by the
# adaptive planner vs the hindsight oracle vs every static plan, with
# the per-batch regret curve. All numbers are simulated (deterministic
# for a fixed seed and any --threads), so the merged file is
# reproducible bit for bit on any machine.
#
# Usage: scripts/bench_plan.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target fig11_adaptive

TMP="$(mktemp --suffix=.metrics.json)"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR"/bench/fig11_adaptive --json "$TMP" > /dev/null

python3 scripts/validate_metrics.py "$TMP"

# Distill the records into one summary document: one row per
# (phase, planner) with its routed batches, the static-plan totals and
# the cumulative regret curve.
python3 - "$TMP" <<'EOF'
import json
import sys

out = {"bench": "fig11_adaptive", "phases": [], "summary": {}}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        params = rec["params"]
        if params.get("point") == "phase":
            planner = rec["planner"]
            out["phases"].append({
                "phase": params["phase"],
                "planner": params["planner"],
                "r_tuples": params["r_tuples"],
                "zipf_exponent": params["zipf_exponent"],
                "total_seconds": planner["total_seconds"],
                "total_matches": planner["total_matches"],
                "decisions": planner["decisions"],
                "explorations": planner["explorations"],
                "plan_usage": planner["plan_usage"],
                "batches": [
                    {k: b[k] for k in (
                        "ordinal", "plan", "predicted_seconds",
                        "charged_seconds", "explored", "matches")}
                    for b in planner["batches"]
                ],
            })
        elif params.get("point") == "summary":
            metrics = rec["metrics"]
            out["summary"] = {
                "adaptive_seconds":
                    metrics["plan.adaptive_seconds"]["value"],
                "oracle_seconds": metrics["plan.oracle_seconds"]["value"],
                "best_static_plan": params["best_static_plan"],
                "best_static_seconds":
                    metrics["plan.best_static_seconds"]["value"],
                "regret_ratio": metrics["plan.regret_ratio"]["value"],
                "statics": rec["statics"],
                "regret_curve": rec["regret_curve"],
            }

with open("results/BENCH_plan.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("results/BENCH_plan.json updated")
EOF
