#include <gtest/gtest.h>

#include <cstdint>

#include "sim/counters.h"

namespace gpujoin::sim {
namespace {

CounterSet Filled(uint64_t v) {
  CounterSet c;
  c.host_random_read_bytes = v;
  c.host_seq_read_bytes = v;
  c.host_write_bytes = v;
  c.translation_requests = v;
  c.tlb_hits = v;
  c.hbm_read_bytes = v;
  c.hbm_write_bytes = v;
  c.l1_hits = v;
  c.l2_hits = v;
  c.l2_misses = v;
  c.warp_steps = v;
  c.memory_transactions = v;
  c.kernel_launches = v;
  c.serial_dependent_loads = v;
  c.faults_injected = v;
  c.translation_timeouts = v;
  c.remote_read_errors = v;
  c.degradation_episodes = v;
  c.alloc_faults = v;
  c.fault_retries = v;
  c.fault_backoff_nanos = v;
  c.degraded_host_bytes = v;
  return c;
}

TEST(CounterSetDelta, ExactWhenMonotone) {
  const CounterSet later = Filled(10);
  const CounterSet earlier = Filled(3);
  const CounterSet delta = later - earlier;
  EXPECT_EQ(delta, Filled(7));
}

TEST(CounterSetDelta, ClampsAtZeroWhenRhsLarger) {
  // Comparing two unrelated runs where the subtrahend is bigger must
  // saturate per field, not wrap to ~2^64.
  const CounterSet small = Filled(3);
  const CounterSet big = Filled(10);
  const CounterSet delta = small - big;
  EXPECT_EQ(delta, CounterSet{});
}

TEST(CounterSetDelta, ClampsPerFieldIndependently) {
  CounterSet a;
  a.translation_requests = 100;
  a.l1_hits = 5;
  CounterSet b;
  b.translation_requests = 40;
  b.l1_hits = 50;  // larger than a's — this field clamps, others don't
  const CounterSet delta = a - b;
  EXPECT_EQ(delta.translation_requests, 60u);
  EXPECT_EQ(delta.l1_hits, 0u);
  EXPECT_EQ(delta.interconnect_bytes(), 0u);
}

TEST(CounterSetDelta, NeverWrapsNearUint64Max) {
  CounterSet a;
  CounterSet b;
  b.warp_steps = UINT64_MAX;
  const CounterSet delta = a - b;
  EXPECT_EQ(delta.warp_steps, 0u);
}

TEST(CounterSet, AccumulateThenSubtractRoundTrips) {
  CounterSet total = Filled(5);
  const CounterSet more = Filled(2);
  total += more;
  EXPECT_EQ(total, Filled(7));
  EXPECT_EQ(total - more, Filled(5));
}

TEST(CounterSet, EqualityIsFieldWise) {
  CounterSet a = Filled(1);
  CounterSet b = Filled(1);
  EXPECT_EQ(a, b);
  b.degraded_host_bytes = 2;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace gpujoin::sim
