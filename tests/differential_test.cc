// Differential tests: random workloads pushed through every join strategy
// must agree with the CPU reference oracle — across seeds, relation
// shapes, key distributions and strategies. These are the repository's
// last line of defence against silent functional drift.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "core/best_effort.h"
#include "core/experiment.h"
#include "core/inlj.h"
#include "dist/shard_scheduler.h"
#include "index/binary_search.h"
#include "index/btree.h"
#include "index/harmonia.h"
#include "index/radix_spline.h"
#include "join/cpu_reference.h"
#include "join/multi_value_hash_table.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/rng.h"
#include "workload/key_column.h"
#include "workload/relation.h"

namespace gpujoin {
namespace {

using workload::Key;

// One fuzz iteration: a random materialized column, a random probe mix of
// hits and misses, checked through all four indexes against the oracle.
void FuzzIndexesOnce(uint64_t seed) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  Xoshiro256 rng(seed);

  const uint64_t n = 100 + rng.NextBounded(20000);
  const Key max_gap = 1 + static_cast<Key>(rng.NextBounded(100));
  workload::MaterializedKeyColumn col(
      &space, workload::GenerateSortedUniqueKeys(n, seed * 3 + 1, max_gap));

  std::vector<Key> probes;
  const int n_probes = 64 + static_cast<int>(rng.NextBounded(512));
  for (int i = 0; i < n_probes; ++i) {
    if (rng.NextBounded(2) == 0) {
      probes.push_back(col.key_at(rng.NextBounded(n)));
    } else {
      probes.push_back(static_cast<Key>(
          rng.NextBounded(static_cast<uint64_t>(col.max_key()) + 16)));
    }
  }
  const auto oracle = join::CpuReferenceJoin(col, probes);

  std::vector<std::unique_ptr<index::Index>> indexes;
  indexes.push_back(std::make_unique<index::BinarySearchIndex>(&col));
  indexes.push_back(std::make_unique<index::BTreeIndex>(&space, &col));
  indexes.push_back(std::make_unique<index::HarmoniaIndex>(&space, &col));
  indexes.push_back(index::RadixSplineIndex::Build(&space, &col));

  for (const auto& index : indexes) {
    std::vector<join::ReferenceMatch> found;
    gpu.RunKernel("fuzz", probes.size(), [&](sim::Warp& warp) {
      std::array<Key, 32> keys{};
      std::array<uint64_t, 32> pos{};
      const uint64_t base = warp.base_item();
      for (int lane = 0; lane < warp.lane_count(); ++lane) {
        keys[lane] = probes[base + lane];
      }
      const uint32_t mask =
          index->LookupWarp(warp, keys.data(), warp.full_mask(), pos.data());
      for (int lane = 0; lane < warp.lane_count(); ++lane) {
        if (mask & (1u << lane)) {
          found.push_back({base + lane, pos[lane]});
        }
      }
    });
    ASSERT_EQ(found.size(), oracle.size())
        << index->name() << " seed " << seed;
    for (size_t i = 0; i < found.size(); ++i) {
      ASSERT_EQ(found[i].probe_row, oracle[i].probe_row)
          << index->name() << " seed " << seed;
      ASSERT_EQ(found[i].position, oracle[i].position)
          << index->name() << " seed " << seed;
    }
  }
}

class IndexFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexFuzzTest, AllIndexesMatchOracle) { FuzzIndexesOnce(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, IndexFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Hash table vs a std::multimap oracle under a random insert mix.
class HashTableFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashTableFuzzTest, MatchesMultimapOracle) {
  const uint64_t seed = GetParam();
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  Xoshiro256 rng(seed);

  join::MultiValueHashTable::Options opts;
  opts.max_bucket_size = 2 + static_cast<uint32_t>(rng.NextBounded(64));
  join::MultiValueHashTable table(&space, 4096, 1 << 16, opts);
  std::multimap<Key, uint64_t> oracle;

  const int n = 2000 + static_cast<int>(rng.NextBounded(4000));
  std::vector<Key> keys(n);
  std::vector<uint64_t> values(n);
  for (int i = 0; i < n; ++i) {
    keys[i] = static_cast<Key>(rng.NextBounded(300));  // heavy duplication
    values[i] = rng.Next();
    oracle.emplace(keys[i], values[i]);
  }
  gpu.RunKernel("insert", n, [&](sim::Warp& warp) {
    std::array<Key, 32> k{};
    std::array<uint64_t, 32> v{};
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      k[lane] = keys[warp.base_item() + lane];
      v[lane] = values[warp.base_item() + lane];
    }
    table.InsertWarp(warp, k.data(), v.data(), warp.full_mask());
  });

  for (Key probe = 0; probe < 300; ++probe) {
    std::vector<uint64_t> got;
    gpu.RunKernel("probe", 1, [&](sim::Warp& warp) {
      table.RetrieveWarp(warp, &probe, 1u,
                         [&](int, uint64_t v) { got.push_back(v); });
    });
    auto [lo, hi] = oracle.equal_range(probe);
    std::vector<uint64_t> expected;
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    ASSERT_EQ(got, expected) << "key " << probe << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashTableFuzzTest,
                         ::testing::Range(uint64_t{100}, uint64_t{106}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// End-to-end: every join strategy on the same experiment produces |S|
// result tuples, across random relation sizes.
class StrategyAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyAgreementTest, AllStrategiesAgree) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  core::ExperimentConfig cfg;
  cfg.r_tuples = (uint64_t{1} << 20) + rng.NextBounded(uint64_t{1} << 22);
  cfg.s_tuples = uint64_t{1} << 18;
  cfg.s_sample = uint64_t{1} << 13;
  cfg.seed = seed;
  cfg.index_type = static_cast<index::IndexType>(rng.NextBounded(4));
  cfg.inlj.window_tuples = uint64_t{1} << (10 + rng.NextBounded(6));

  for (auto mode : {core::InljConfig::PartitionMode::kNone,
                    core::InljConfig::PartitionMode::kFull,
                    core::InljConfig::PartitionMode::kWindowed}) {
    cfg.inlj.mode = mode;
    auto exp = core::Experiment::Create(cfg);
    ASSERT_TRUE(exp.ok());
    EXPECT_EQ((*exp)->RunInlj().value().result_tuples, cfg.s_tuples)
        << PartitionModeName(mode) << " seed " << seed;
  }

  // Best-effort partitioning and the hash join agree too.
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  auto exp = core::Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  core::BestEffortConfig bep;
  bep.bucket_tuples = 64 + static_cast<uint32_t>(rng.NextBounded(2048));
  EXPECT_EQ(core::BestEffortInlj::Run((*exp)->gpu(), (*exp)->index(),
                                      (*exp)->s(), bep)
                .result_tuples,
            cfg.s_tuples);
  EXPECT_EQ((*exp)->RunHashJoin().value().result_tuples, cfg.s_tuples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyAgreementTest,
                         ::testing::Range(uint64_t{200}, uint64_t{206}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Match-set differentials: beyond cardinality, the partition modes must
// produce the exact same (probe_row, position) pairs. The sample scheme
// is pinned (kAuto picks a different sample per mode, which would make
// the sets trivially incomparable); partitioned modes permute the probe
// order, so sets are compared sorted.
std::vector<core::JoinMatch> CollectMatches(core::ExperimentConfig cfg,
                                            core::InljConfig::PartitionMode
                                                mode,
                                            sim::RunResult* out = nullptr) {
  cfg.inlj.mode = mode;
  auto exp = core::Experiment::Create(cfg);
  EXPECT_TRUE(exp.ok()) << exp.status().ToString();
  std::vector<core::JoinMatch> matches;
  auto res = (*exp)->RunInlj(&matches);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  if (res.ok() && out != nullptr) *out = *res;
  std::sort(matches.begin(), matches.end());
  return matches;
}

class MatchSetTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  core::ExperimentConfig BaseConfig(uint64_t seed) {
    core::ExperimentConfig cfg;
    cfg.r_tuples = uint64_t{1} << 20;
    cfg.s_tuples = uint64_t{1} << 16;
    cfg.s_sample = uint64_t{1} << 13;
    cfg.seed = seed;
    cfg.sample_scheme =
        core::ExperimentConfig::SampleSchemeOverride::kThinned;
    cfg.inlj.window_tuples = uint64_t{1} << 11;
    return cfg;
  }
};

TEST_P(MatchSetTest, AllModesProduceIdenticalMatchSets) {
  const core::ExperimentConfig cfg = BaseConfig(GetParam());
  const auto none =
      CollectMatches(cfg, core::InljConfig::PartitionMode::kNone);
  const auto full =
      CollectMatches(cfg, core::InljConfig::PartitionMode::kFull);
  const auto windowed =
      CollectMatches(cfg, core::InljConfig::PartitionMode::kWindowed);
  ASSERT_FALSE(none.empty());
  EXPECT_EQ(none.size(), cfg.s_sample);  // every probe key exists in R
  EXPECT_TRUE(none == full);
  EXPECT_TRUE(none == windowed);
}

TEST_P(MatchSetTest, SpillChainsPreserveTheMatchSet) {
  // Heavy Zipf under single-pass bucket sizing overflows hot buckets
  // into spill chains; the chained windows must still join exactly.
  core::ExperimentConfig cfg = BaseConfig(GetParam());
  cfg.zipf_exponent = 1.75;
  const auto exact =
      CollectMatches(cfg, core::InljConfig::PartitionMode::kWindowed);

  cfg.inlj.bucket_slack = 1.25;
  sim::RunResult spill_run;
  const auto spilled = CollectMatches(
      cfg, core::InljConfig::PartitionMode::kWindowed, &spill_run);
  ASSERT_GT(spill_run.spilled_tuples, 0u);  // the spill path actually ran
  EXPECT_TRUE(exact == spilled);
}

TEST_P(MatchSetTest, RecoveryFallbacksPreserveTheMatchSet) {
  // Injected allocation failures drive window shrinking and the
  // unpartitioned fallback; the degraded run must still join exactly.
  core::ExperimentConfig cfg = BaseConfig(GetParam());
  const auto clean =
      CollectMatches(cfg, core::InljConfig::PartitionMode::kWindowed);

  // Only a handful of device reservations happen per run (result buffer
  // plus one per window), so the rate must be high for the ladder to
  // fire deterministically across seeds.
  cfg.fault.alloc_failure_rate = 0.75;
  sim::RunResult faulty_run;
  const auto faulty = CollectMatches(
      cfg, core::InljConfig::PartitionMode::kWindowed, &faulty_run);
  ASSERT_GT(faulty_run.degraded_windows + faulty_run.fallback_windows, 0u)
      << "fault rate too low to exercise the recovery ladder";
  EXPECT_TRUE(clean == faulty);
}

TEST_P(MatchSetTest, OneShardEngineIsBitIdenticalToWindowed) {
  // The sharded engine with one shard must *be* the windowed
  // single-device pipeline, bit for bit: identical extrapolated counters
  // and a byte-identical match stream (same pairs, same order). This
  // guards the scheduler's window grid and extrapolation against drift
  // from core/inlj.cc. BaseConfig pins kThinned, which both engines
  // accept (the sharded router resolves kAuto to kThinned itself, but
  // the single-device path would pick kRangeRestricted).
  core::ExperimentConfig cfg = BaseConfig(GetParam());
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;

  auto exp = core::Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  std::vector<core::JoinMatch> single_matches;
  auto single = (*exp)->RunInlj(&single_matches);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  auto engine = dist::ShardScheduler::Create(cfg, dist::ShardConfig{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<core::JoinMatch> sharded_matches;
  auto sharded = (*engine)->RunJoin(&sharded_matches);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  EXPECT_TRUE(single->counters == sharded->run.counters)
      << "counter drift between the one-shard engine and the windowed "
         "pipeline";
  EXPECT_EQ(single->result_tuples, sharded->run.result_tuples);
  ASSERT_EQ(single_matches.size(), sharded_matches.size());
  EXPECT_TRUE(single_matches == sharded_matches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchSetTest,
                         ::testing::Range(uint64_t{300}, uint64_t{304}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gpujoin
