// Configuration sweeps: every index must stay exact under every sensible
// configuration of its tuning knobs (node size, fill factor, keys per
// node, sub-warp width) — the knobs the ablation benches turn.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "index/btree.h"
#include "index/harmonia.h"
#include "index/index.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/rng.h"
#include "workload/key_column.h"

namespace gpujoin::index {
namespace {

using workload::GenerateSortedUniqueKeys;
using workload::Key;
using workload::MaterializedKeyColumn;

// Looks up a batch of random present + absent probes and asserts exact
// lower bounds against the column.
void AssertExactLowerBounds(sim::Gpu& gpu, const workload::KeyColumn& col,
                            const Index& index, uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int batch = 0; batch < 6; ++batch) {
    std::array<Key, 32> keys{};
    std::array<uint64_t, 32> pos{};
    for (auto& k : keys) {
      k = static_cast<Key>(
          rng.NextBounded(static_cast<uint64_t>(col.max_key()) + 7));
    }
    gpu.RunKernel("lookup", 32, [&](sim::Warp& warp) {
      index.LookupWarp(warp, keys.data(), warp.full_mask(), pos.data());
    });
    for (int lane = 0; lane < 32; ++lane) {
      ASSERT_EQ(pos[lane], col.LowerBound(keys[lane]))
          << index.name() << " key " << keys[lane];
    }
  }
}

class BTreeConfigTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(BTreeConfigTest, ExactUnderAllNodeConfigs) {
  const auto [node_bytes, fill] = GetParam();
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  MaterializedKeyColumn col(&space, GenerateSortedUniqueKeys(60000, 9));
  BTreeIndex::Options opts;
  opts.node_bytes = node_bytes;
  opts.fill_factor = fill;
  BTreeIndex index(&space, &col, opts);
  AssertExactLowerBounds(gpu, col, index, node_bytes + 1000 * fill);
  // Footprint scales with the inverse fill factor.
  EXPECT_GT(index.footprint_bytes(), col.size_bytes() * 0.8 * (1.0 / fill));
}

INSTANTIATE_TEST_SUITE_P(
    NodeConfigs, BTreeConfigTest,
    ::testing::Combine(::testing::Values(256u, 512u, 1024u, 4096u, 16384u),
                       ::testing::Values(0.5, 0.7, 0.9, 1.0)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

class HarmoniaConfigTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>> {};

TEST_P(HarmoniaConfigTest, ExactUnderAllNodeConfigs) {
  const auto [keys_per_node, sub_warp] = GetParam();
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  MaterializedKeyColumn col(&space, GenerateSortedUniqueKeys(50000, 10));
  HarmoniaIndex::Options opts;
  opts.keys_per_node = keys_per_node;
  opts.sub_warp_width = sub_warp;
  HarmoniaIndex index(&space, &col, opts);
  AssertExactLowerBounds(gpu, col, index, keys_per_node * 100 + sub_warp);
}

INSTANTIATE_TEST_SUITE_P(
    NodeConfigs, HarmoniaConfigTest,
    ::testing::Combine(::testing::Values(4u, 8u, 16u, 32u, 64u, 256u),
                       ::testing::Values(1, 4, 32)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// Dense columns with non-unit strides and offsets.
class ColumnShapeTest
    : public ::testing::TestWithParam<std::tuple<Key, Key>> {};

TEST_P(ColumnShapeTest, BTreeExactOnStridedColumns) {
  const auto [first, stride] = GetParam();
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  workload::DenseKeyColumn col(&space, 30000, first, stride);
  BTreeIndex index(&space, &col);
  AssertExactLowerBounds(gpu, col, index,
                         static_cast<uint64_t>(first + stride));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ColumnShapeTest,
    ::testing::Combine(::testing::Values(Key{0}, Key{1}, Key{1000000}),
                       ::testing::Values(Key{1}, Key{3}, Key{1024})),
    [](const auto& info) {
      return "first" + std::to_string(std::get<0>(info.param)) + "_stride" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gpujoin::index
