// Tests for the TLB co-resident-warp interference model and the
// frequency-aware cache flush — the two simulator mechanisms that stand
// in for real inter-warp contention (DESIGN.md Sec. 2).

#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "sim/cache.h"
#include "sim/gpu.h"
#include "sim/memory_model.h"
#include "sim/run_result.h"
#include "sim/specs.h"
#include "util/units.h"

namespace gpujoin::sim {
namespace {

class InterferenceTest : public ::testing::Test {
 protected:
  InterferenceTest()
      : host_(space_.Reserve(uint64_t{128} * kGiB, mem::MemKind::kHost,
                             "h")) {}

  MemoryModel MakeModel(int co_resident_warps) {
    GpuSpec gpu = TeslaV100();
    gpu.tlb_co_resident_warps = co_resident_warps;
    // Shrink the caches so every access reaches the TLB.
    gpu.l1_size = 2 * kKiB;
    gpu.l2_size = 2 * kKiB;
    return MemoryModel(&space_, gpu);
  }

  mem::AddressSpace space_;
  mem::Region host_;
};

TEST_F(InterferenceTest, SmallWorkingSetIsImmune) {
  MemoryModel model = MakeModel(64);
  // 16 pages (< 32 TLB entries): even with interference, repeated access
  // only pays the 16 first-touch translations.
  for (int round = 0; round < 8; ++round) {
    for (uint64_t p = 0; p < 16; ++p) {
      model.Access(host_.base + p * kGiB + round * 1024, 8,
                   AccessType::kRead);
    }
  }
  EXPECT_EQ(model.counters().translation_requests, 16u);
}

TEST_F(InterferenceTest, WideWorkingSetThrashesEvenOnResidentPages) {
  MemoryModel model = MakeModel(64);
  // 48 pages round-robin: > 32 entries. With interference, nearly every
  // access misses (a page cannot survive 47 intervening page touches
  // times 64 co-resident warps).
  const int rounds = 6;
  for (int round = 0; round < rounds; ++round) {
    for (uint64_t p = 0; p < 48; ++p) {
      model.Access(host_.base + p * kGiB + round * 1024, 8,
                   AccessType::kRead);
    }
  }
  EXPECT_EQ(model.counters().translation_requests,
            static_cast<uint64_t>(rounds) * 48);
}

TEST_F(InterferenceTest, ZeroWarpsDisablesInterference) {
  MemoryModel model = MakeModel(0);
  // Without interference, a 20-page working set enjoys plain LRU hits
  // even though other state churns around it.
  for (int round = 0; round < 8; ++round) {
    for (uint64_t p = 0; p < 20; ++p) {
      model.Access(host_.base + p * kGiB + round * 1024, 8,
                   AccessType::kRead);
    }
  }
  EXPECT_EQ(model.counters().translation_requests, 20u);
}

TEST_F(InterferenceTest, InterferenceIsHarshOncePastCoverage) {
  MemoryModel model = MakeModel(64);
  // A wide working set (40 pages + page 0 on every other access): with
  // 64 co-resident warps, even page 0's entry is churned out between its
  // touches (one intervening distinct page times 64 warps exceeds the 32
  // entries). Both streams miss nearly always — translation pressure is
  // all-or-nothing at the coverage boundary, which is exactly the cliff
  // shape of Fig. 3/4.
  const uint64_t before = model.counters().translation_requests;
  for (int i = 0; i < 400; ++i) {
    model.Access(host_.base + i * 1024, 8, AccessType::kRead);  // page 0
    const uint64_t p = 1 + (i % 40);
    model.Access(host_.base + p * kGiB + i * 1024, 8, AccessType::kRead);
  }
  const uint64_t total = model.counters().translation_requests - before;
  EXPECT_GE(total, 700u);
  EXPECT_LE(total, 800u);
}

TEST_F(InterferenceTest, BackToBackTouchesStillHit) {
  MemoryModel model = MakeModel(64);
  // Warm a wide working set so interference is active.
  for (uint64_t p = 0; p < 48; ++p) {
    model.Access(host_.base + p * kGiB, 8, AccessType::kRead);
  }
  const uint64_t before = model.counters().translation_requests;
  // Consecutive touches of one page (as within a single warp instruction
  // or a tight partition) do not advance the distinct-page clock.
  for (int i = 1; i <= 64; ++i) {
    model.Access(host_.base + 5 * kGiB + i * 256, 8, AccessType::kRead);
  }
  // One miss to re-install the page; the rest hit.
  EXPECT_LE(model.counters().translation_requests - before, 1u);
}

TEST(FlushCold, EvictsColdKeepsHot) {
  Cache cache(1024, 64, 4);
  for (int i = 0; i < 4; ++i) cache.Access(100);  // hot line
  cache.Access(200);                              // cold line
  cache.FlushCold(2);
  EXPECT_TRUE(cache.Contains(100));
  EXPECT_FALSE(cache.Contains(200));
}

TEST(FlushCold, ResetsTouchCounts) {
  Cache cache(1024, 64, 4);
  for (int i = 0; i < 4; ++i) cache.Access(100);
  cache.FlushCold(2);
  // After the flush the line must re-earn its hotness.
  cache.FlushCold(2);
  EXPECT_FALSE(cache.Contains(100));
}

TEST(RunResultHelpers, QpsAndTranslationsPerKey) {
  RunResult res;
  res.seconds = 0.5;
  res.probe_tuples = 1000;
  res.counters.translation_requests = 1500;
  EXPECT_DOUBLE_EQ(res.qps(), 2.0);
  EXPECT_DOUBLE_EQ(res.translations_per_key(), 1.5);
  res.AddStage("a", 0.1);
  res.AddStage("b", 0.4);
  EXPECT_EQ(res.stages.size(), 2u);
}

TEST(KernelRunHelpers, ScaledAndMerge) {
  KernelRun a{"a", {}};
  a.counters.hbm_read_bytes = 100;
  a.counters.kernel_launches = 1;
  KernelRun scaled = a.Scaled(3.0);
  EXPECT_EQ(scaled.counters.hbm_read_bytes, 300u);
  EXPECT_EQ(scaled.counters.kernel_launches, 1u);

  KernelRun b{"b", {}};
  b.counters.hbm_read_bytes = 11;
  a.Merge(b);
  EXPECT_EQ(a.counters.hbm_read_bytes, 111u);
}

TEST(CountersToString, MentionsKeyFields) {
  CounterSet c;
  c.translation_requests = 42;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("translations=42"), std::string::npos);
  EXPECT_NE(s.find("host_rd_random"), std::string::npos);
}

TEST(TimeBreakdown, TotalIsMaxPlusLaunch) {
  TimeBreakdown b;
  b.transfer = 0.5;
  b.translation = 0.2;
  b.hbm = 0.7;
  b.compute = 0.1;
  b.serial = 0.0;
  b.launch = 0.05;
  EXPECT_DOUBLE_EQ(b.total(), 0.75);
  EXPECT_NE(b.ToString().find("total="), std::string::npos);
}

}  // namespace
}  // namespace gpujoin::sim
