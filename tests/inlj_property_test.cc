// Property sweeps over the INLJ: for every (index type x partition mode x
// platform) combination, the join must produce exactly |S| result tuples
// (every probe key exists in R), and the hardware counters must satisfy
// basic physical invariants. Plus targeted tests for the spill and
// filter-divergence options.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/experiment.h"
#include "core/inlj.h"
#include "join/cpu_reference.h"
#include "sim/specs.h"
#include "util/units.h"

namespace gpujoin::core {
namespace {

using Mode = InljConfig::PartitionMode;

enum class Platform { kV100, kA100, kGH200 };

sim::PlatformSpec MakePlatform(Platform p) {
  switch (p) {
    case Platform::kV100:
      return sim::V100NvLink2();
    case Platform::kA100:
      return sim::A100PciE4();
    case Platform::kGH200:
      return sim::GH200C2C();
  }
  return sim::V100NvLink2();
}

const char* PlatformName(Platform p) {
  switch (p) {
    case Platform::kV100:
      return "v100";
    case Platform::kA100:
      return "a100";
    case Platform::kGH200:
      return "gh200";
  }
  return "?";
}

class InljPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<index::IndexType, Mode, Platform>> {};

TEST_P(InljPropertyTest, JoinIsCorrectAndPhysical) {
  const auto [type, mode, platform] = GetParam();
  ExperimentConfig cfg;
  cfg.platform = MakePlatform(platform);
  cfg.r_tuples = uint64_t{1} << 28;
  cfg.s_tuples = uint64_t{1} << 22;
  cfg.s_sample = uint64_t{1} << 14;
  cfg.index_type = type;
  cfg.inlj.mode = mode;
  cfg.inlj.window_tuples = uint64_t{1} << 18;

  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  sim::RunResult res = (*exp)->RunInlj().value();

  // Correctness: every S key joins exactly one R tuple.
  EXPECT_EQ(res.result_tuples, cfg.s_tuples);
  EXPECT_GT(res.seconds, 0);

  // Physical invariants.
  const sim::CounterSet& c = res.counters;
  // The probe stream itself crosses the interconnect at least once.
  EXPECT_GE(c.host_seq_read_bytes, cfg.s_tuples * 8);
  // Results materialize into GPU memory by default.
  EXPECT_GE(c.hbm_write_bytes, cfg.s_tuples * 16);
  // Lookups generate data-dependent host reads.
  EXPECT_GT(c.host_random_read_bytes, 0u);
  // Gather transactions land in exactly one level of the hierarchy, so
  // the level counters can never exceed the transaction count.
  EXPECT_LE(c.l1_hits + c.l2_hits + c.l2_misses, c.memory_transactions);
  // Every TLB event belongs to a memory-bound transaction or stream page.
  EXPECT_LE(c.translation_requests + c.tlb_hits,
            c.memory_transactions + c.translation_requests);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, InljPropertyTest,
    ::testing::Combine(
        ::testing::Values(index::IndexType::kBinarySearch,
                          index::IndexType::kBTree,
                          index::IndexType::kHarmonia,
                          index::IndexType::kRadixSpline),
        ::testing::Values(Mode::kNone, Mode::kFull, Mode::kWindowed),
        ::testing::Values(Platform::kV100, Platform::kA100,
                          Platform::kGH200)),
    [](const auto& info) {
      return std::string(index::IndexTypeName(std::get<0>(info.param))) +
             "_" + PartitionModeName(std::get<1>(info.param)) + "_" +
             PlatformName(std::get<2>(info.param));
    });

// --- Window-size invariants ------------------------------------------------

class WindowSizeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowSizeTest, ResultInvariantAcrossWindowSizes) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 26;
  cfg.s_tuples = uint64_t{1} << 22;
  cfg.s_sample = uint64_t{1} << 14;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = Mode::kWindowed;
  cfg.inlj.window_tuples = GetParam();
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  sim::RunResult res = (*exp)->RunInlj().value();
  EXPECT_EQ(res.result_tuples, cfg.s_tuples);
  // The probe stream is read exactly once regardless of windowing.
  EXPECT_NEAR(static_cast<double>(res.counters.host_seq_read_bytes),
              static_cast<double>(cfg.s_tuples * 8),
              static_cast<double>(cfg.s_tuples));  // alignment slack
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSizeTest,
                         ::testing::Values(uint64_t{1} << 12,
                                           uint64_t{1} << 15,
                                           uint64_t{1} << 18,
                                           uint64_t{1} << 21,
                                           uint64_t{1} << 24),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// --- Spill to host -----------------------------------------------------------

TEST(SpillResults, HostSpillMovesResultTraffic) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 26;
  cfg.s_sample = uint64_t{1} << 14;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = Mode::kWindowed;

  auto device = Experiment::Create(cfg);
  ASSERT_TRUE(device.ok());
  sim::RunResult in_gpu = (*device)->RunInlj().value();

  cfg.inlj.spill_results_to_host = true;
  auto host = Experiment::Create(cfg);
  ASSERT_TRUE(host.ok());
  sim::RunResult spilled = (*host)->RunInlj().value();

  // Spilling writes |S| * 16 B across the interconnect instead of HBM.
  EXPECT_GE(spilled.counters.host_write_bytes, cfg.s_tuples * 16);
  EXPECT_EQ(in_gpu.counters.host_write_bytes, 0u);
  EXPECT_GT(in_gpu.counters.hbm_write_bytes,
            spilled.counters.hbm_write_bytes);
  // Same join either way.
  EXPECT_EQ(spilled.result_tuples, in_gpu.result_tuples);
  // Extra interconnect traffic cannot make the query faster.
  EXPECT_GE(spilled.seconds, in_gpu.seconds * 0.999);
}

// --- Skewed probes forcing bucket overflow ---------------------------------

// Heavy Zipf probes with single-pass bucket sizing (bucket_slack > 0):
// the hot partitions overflow and chain into spill buckets. The joined
// result must still match the CPU reference oracle exactly — spilling is
// a placement/cost concern, never a correctness one. `s_sample ==
// s_tuples` disables extrapolation so the comparison is exact.
class SkewOverflowTest : public ::testing::TestWithParam<double> {};

TEST_P(SkewOverflowTest, SpillChainedJoinMatchesCpuReference) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 20;
  cfg.s_tuples = uint64_t{1} << 14;
  cfg.s_sample = cfg.s_tuples;
  cfg.zipf_exponent = GetParam();
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = Mode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 12;
  cfg.inlj.bucket_slack = 1.25;

  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  auto res = (*exp)->RunInlj();
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  // The Zipf head is hot enough to overflow its single-pass bucket.
  EXPECT_GT(res.value().spilled_tuples, 0u);

  const auto& s = (*exp)->s();
  const std::vector<workload::Key> probes(s.keys.begin(), s.keys.end());
  const uint64_t oracle =
      join::CpuReferenceJoinCount((*exp)->r(), probes);
  EXPECT_EQ(res.value().result_tuples, oracle);
}

TEST_P(SkewOverflowTest, FailStopAbortsWhereGracefulSurvives) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 20;
  cfg.s_tuples = uint64_t{1} << 14;
  cfg.s_sample = cfg.s_tuples;
  cfg.zipf_exponent = GetParam();
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = Mode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 12;
  cfg.inlj.bucket_slack = 1.25;
  cfg.inlj.recovery = RecoveryPolicy::FailStop();

  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  auto res = (*exp)->RunInlj();
  // Under fail-stop the same skew that spilled above is fatal — unless
  // the unpartitioned fallback is also off, which propagates the error.
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

INSTANTIATE_TEST_SUITE_P(HeavyZipf, SkewOverflowTest,
                         ::testing::Values(1.75, 2.0),
                         [](const auto& info) {
                           return "zipf" +
                                  std::to_string(
                                      static_cast<int>(info.param * 100));
                         });

// --- Filter divergence --------------------------------------------------------

TEST(FilterDivergence, ReducesResultsProportionally) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 26;
  cfg.s_sample = uint64_t{1} << 15;
  cfg.index_type = index::IndexType::kBinarySearch;
  cfg.inlj.mode = Mode::kWindowed;
  cfg.inlj.probe_filter_selectivity = 0.25;
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  sim::RunResult res = (*exp)->RunInlj().value();
  EXPECT_NEAR(static_cast<double>(res.result_tuples),
              0.25 * static_cast<double>(cfg.s_tuples),
              0.02 * static_cast<double>(cfg.s_tuples));
}

TEST(FilterDivergence, ThroughputDoesNotScaleWithSelectivity) {
  // Filtered-out lanes idle inside the warp (no compaction): a 4x more
  // selective filter must NOT make the query anywhere near 4x faster.
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 28;
  cfg.s_sample = uint64_t{1} << 15;
  cfg.index_type = index::IndexType::kBinarySearch;
  cfg.inlj.mode = Mode::kWindowed;

  auto full = Experiment::Create(cfg);
  ASSERT_TRUE(full.ok());
  const double full_qps = (*full)->RunInlj().value().qps();

  cfg.inlj.probe_filter_selectivity = 0.25;
  auto filtered = Experiment::Create(cfg);
  ASSERT_TRUE(filtered.ok());
  const double filtered_qps = (*filtered)->RunInlj().value().qps();

  EXPECT_GT(filtered_qps, full_qps);        // less work overall...
  EXPECT_LT(filtered_qps, 3.5 * full_qps);  // ...but not 4x (divergence)
}

TEST(FilterDivergence, ZeroSelectivityProducesNoResults) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 24;
  cfg.s_sample = uint64_t{1} << 12;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = Mode::kNone;
  cfg.inlj.probe_filter_selectivity = 0.0;
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ((*exp)->RunInlj().value().result_tuples, 0u);
}

}  // namespace
}  // namespace gpujoin::core
