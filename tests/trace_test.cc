#include <gtest/gtest.h>

#include "core/experiment.h"
#include "index/radix_spline.h"
#include "join/cpu_reference.h"
#include "mem/address_space.h"
#include "obs/phase_timeline.h"
#include "sim/gpu.h"
#include "sim/phase.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/key_column.h"
#include "workload/relation.h"

namespace gpujoin::sim {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest()
      : host_(space_.Reserve(kGiB, mem::MemKind::kHost, "base_data")),
        device_(space_.Reserve(kGiB, mem::MemKind::kDevice, "results")),
        model_(&space_, TeslaV100()),
        trace_(&space_) {
    model_.SetObserver(&trace_);
  }

  mem::AddressSpace space_;
  mem::Region host_;
  mem::Region device_;
  MemoryModel model_;
  TraceRecorder trace_;
};

TEST_F(TraceTest, AttributesTransactionsToRegions) {
  model_.Access(host_.base, 8, AccessType::kRead);
  model_.Access(host_.base, 8, AccessType::kRead);  // L1 hit
  model_.Access(device_.base, 8, AccessType::kWrite);

  const auto& base = trace_.ForRegion("base_data");
  EXPECT_EQ(base.transactions, 2u);
  EXPECT_EQ(base.l1_hits, 1u);
  EXPECT_EQ(base.memory_transactions, 1u);

  const auto& results = trace_.ForRegion("results");
  EXPECT_EQ(results.transactions, 1u);
  EXPECT_EQ(results.writes, 1u);
}

TEST_F(TraceTest, RecordsStreams) {
  model_.Stream(host_.base, 4096, AccessType::kRead);
  EXPECT_EQ(trace_.ForRegion("base_data").stream_bytes, 4096u);
}

TEST_F(TraceTest, DetachStopsRecording) {
  model_.SetObserver(nullptr);
  model_.Access(host_.base, 8, AccessType::kRead);
  EXPECT_EQ(trace_.ForRegion("base_data").transactions, 0u);
}

TEST_F(TraceTest, ResetClears) {
  model_.Access(host_.base, 8, AccessType::kRead);
  trace_.Reset();
  EXPECT_EQ(trace_.ForRegion("base_data").transactions, 0u);
}

TEST_F(TraceTest, SummaryNamesRegions) {
  model_.Access(host_.base, 8, AccessType::kRead);
  model_.Stream(device_.base, 1024, AccessType::kWrite);
  const std::string summary = trace_.Summary();
  EXPECT_NE(summary.find("base_data"), std::string::npos);
  EXPECT_NE(summary.find("results"), std::string::npos);
}

TEST_F(TraceTest, ExplainsIndexLookupTraffic) {
  // End-to-end: trace a RadixSpline lookup batch and check the traffic
  // lands in the structures we expect (radix table, spline points, data).
  workload::DenseKeyColumn col(&space_, uint64_t{1} << 22);
  auto index = index::RadixSplineIndex::Build(&space_, &col);
  Gpu gpu(&space_, V100NvLink2());
  gpu.memory().SetObserver(&trace_);
  trace_.Reset();

  Xoshiro256 rng(3);
  std::array<workload::Key, 32> keys{};
  std::array<uint64_t, 32> pos{};
  for (auto& k : keys) k = col.key_at(rng.NextBounded(col.size()));
  gpu.RunKernel("lookup", 32, [&](Warp& warp) {
    index->LookupWarp(warp, keys.data(), warp.full_mask(), pos.data());
  });

  EXPECT_GT(trace_.ForRegion("rs.radix").transactions, 0u);
  EXPECT_GT(trace_.ForRegion("R.dense_keys").transactions, 0u);
}

TEST_F(TraceTest, CoexistsWithPhaseTimeline) {
  // Observer fan-out: a TraceRecorder and a PhaseTimeline attached to the
  // same model both see every event.
  obs::PhaseTimeline timeline(&model_);
  timeline.AttachTo(&model_);
  EXPECT_EQ(model_.observer_count(), 2u);

  {
    PhaseScope phase(model_.phase_sink(), "probe.lookup");
    model_.Access(host_.base, 8, AccessType::kRead);
    model_.Stream(device_.base, 1024, AccessType::kWrite);
  }

  EXPECT_EQ(trace_.ForRegion("base_data").transactions, 1u);
  EXPECT_EQ(trace_.ForRegion("results").stream_bytes, 1024u);
  const auto spans = timeline.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].observed_transactions, 1u);
  EXPECT_EQ(spans[0].observed_stream_bytes, 1024u);

  timeline.DetachFrom(&model_);
  EXPECT_EQ(model_.observer_count(), 1u);  // the trace recorder stays
}

TEST(ObserverBitIdentity, CountersIdenticalWithAndWithoutObservers) {
  // The regression the observability layer is built around: attaching a
  // TraceRecorder + PhaseTimeline must not change a single counter of an
  // otherwise identical run.
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 30;
  cfg.s_tuples = uint64_t{1} << 20;
  cfg.s_sample = uint64_t{1} << 12;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 18;

  auto plain = core::Experiment::Create(cfg);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  const RunResult plain_run = (*plain)->RunInlj().value();
  ASSERT_TRUE((*plain)->trace_recorder() == nullptr);
  EXPECT_TRUE(plain_run.phase_spans.empty());

  auto observed = core::Experiment::Create(cfg);
  ASSERT_TRUE(observed.ok());
  (*observed)->EnableObservability();
  const RunResult observed_run = (*observed)->RunInlj().value();
  EXPECT_FALSE(observed_run.phase_spans.empty());

  EXPECT_EQ(plain_run.counters, observed_run.counters);
  EXPECT_DOUBLE_EQ(plain_run.seconds, observed_run.seconds);
  EXPECT_EQ(plain_run.result_tuples, observed_run.result_tuples);

  // And the hash join path too.
  const RunResult plain_hj = (*plain)->RunHashJoin().value();
  const RunResult observed_hj = (*observed)->RunHashJoin().value();
  EXPECT_EQ(plain_hj.counters, observed_hj.counters);
}

TEST(ServiceLevelNames, AllNamed) {
  EXPECT_STREQ(ServiceLevelName(ServiceLevel::kL1), "L1");
  EXPECT_STREQ(ServiceLevelName(ServiceLevel::kL2), "L2");
  EXPECT_STREQ(ServiceLevelName(ServiceLevel::kHbm), "HBM");
  EXPECT_STREQ(ServiceLevelName(ServiceLevel::kInterconnect),
               "interconnect");
}

// --- CPU reference join (oracle used across the test suite) -----------

TEST(CpuReferenceJoin, FindsExactMatches) {
  mem::AddressSpace space;
  workload::MaterializedKeyColumn col(&space, {2, 4, 6, 8, 10});
  auto matches = join::CpuReferenceJoin(col, {4, 5, 10, 1, 4});
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].probe_row, 0u);
  EXPECT_EQ(matches[0].position, 1u);
  EXPECT_EQ(matches[1].probe_row, 2u);
  EXPECT_EQ(matches[1].position, 4u);
  EXPECT_EQ(matches[2].probe_row, 4u);
  EXPECT_EQ(matches[2].position, 1u);
  EXPECT_EQ(join::CpuReferenceJoinCount(col, {4, 5, 10, 1, 4}), 3u);
}

TEST(CpuReferenceJoin, AgreesWithProbeGroundTruth) {
  mem::AddressSpace space;
  workload::DenseKeyColumn r(&space, 1 << 18);
  workload::ProbeConfig cfg;
  cfg.full_size = 1 << 14;
  cfg.sample_size = 1 << 14;
  auto s = workload::MakeProbeRelation(&space, r, cfg);
  std::vector<workload::Key> keys(s.keys.begin(), s.keys.end());
  auto matches = join::CpuReferenceJoin(r, keys);
  ASSERT_EQ(matches.size(), s.sample_size());
  for (const auto& m : matches) {
    EXPECT_EQ(m.position, s.true_positions[m.probe_row]);
  }
}

}  // namespace
}  // namespace gpujoin::sim
