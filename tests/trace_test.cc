#include <gtest/gtest.h>

#include "index/radix_spline.h"
#include "join/cpu_reference.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/key_column.h"
#include "workload/relation.h"

namespace gpujoin::sim {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest()
      : host_(space_.Reserve(kGiB, mem::MemKind::kHost, "base_data")),
        device_(space_.Reserve(kGiB, mem::MemKind::kDevice, "results")),
        model_(&space_, TeslaV100()),
        trace_(&space_) {
    model_.SetObserver(&trace_);
  }

  mem::AddressSpace space_;
  mem::Region host_;
  mem::Region device_;
  MemoryModel model_;
  TraceRecorder trace_;
};

TEST_F(TraceTest, AttributesTransactionsToRegions) {
  model_.Access(host_.base, 8, AccessType::kRead);
  model_.Access(host_.base, 8, AccessType::kRead);  // L1 hit
  model_.Access(device_.base, 8, AccessType::kWrite);

  const auto& base = trace_.ForRegion("base_data");
  EXPECT_EQ(base.transactions, 2u);
  EXPECT_EQ(base.l1_hits, 1u);
  EXPECT_EQ(base.memory_transactions, 1u);

  const auto& results = trace_.ForRegion("results");
  EXPECT_EQ(results.transactions, 1u);
  EXPECT_EQ(results.writes, 1u);
}

TEST_F(TraceTest, RecordsStreams) {
  model_.Stream(host_.base, 4096, AccessType::kRead);
  EXPECT_EQ(trace_.ForRegion("base_data").stream_bytes, 4096u);
}

TEST_F(TraceTest, DetachStopsRecording) {
  model_.SetObserver(nullptr);
  model_.Access(host_.base, 8, AccessType::kRead);
  EXPECT_EQ(trace_.ForRegion("base_data").transactions, 0u);
}

TEST_F(TraceTest, ResetClears) {
  model_.Access(host_.base, 8, AccessType::kRead);
  trace_.Reset();
  EXPECT_EQ(trace_.ForRegion("base_data").transactions, 0u);
}

TEST_F(TraceTest, SummaryNamesRegions) {
  model_.Access(host_.base, 8, AccessType::kRead);
  model_.Stream(device_.base, 1024, AccessType::kWrite);
  const std::string summary = trace_.Summary();
  EXPECT_NE(summary.find("base_data"), std::string::npos);
  EXPECT_NE(summary.find("results"), std::string::npos);
}

TEST_F(TraceTest, ExplainsIndexLookupTraffic) {
  // End-to-end: trace a RadixSpline lookup batch and check the traffic
  // lands in the structures we expect (radix table, spline points, data).
  workload::DenseKeyColumn col(&space_, uint64_t{1} << 22);
  auto index = index::RadixSplineIndex::Build(&space_, &col);
  Gpu gpu(&space_, V100NvLink2());
  gpu.memory().SetObserver(&trace_);
  trace_.Reset();

  Xoshiro256 rng(3);
  std::array<workload::Key, 32> keys{};
  std::array<uint64_t, 32> pos{};
  for (auto& k : keys) k = col.key_at(rng.NextBounded(col.size()));
  gpu.RunKernel("lookup", 32, [&](Warp& warp) {
    index->LookupWarp(warp, keys.data(), warp.full_mask(), pos.data());
  });

  EXPECT_GT(trace_.ForRegion("rs.radix").transactions, 0u);
  EXPECT_GT(trace_.ForRegion("R.dense_keys").transactions, 0u);
}

TEST(ServiceLevelNames, AllNamed) {
  EXPECT_STREQ(ServiceLevelName(ServiceLevel::kL1), "L1");
  EXPECT_STREQ(ServiceLevelName(ServiceLevel::kL2), "L2");
  EXPECT_STREQ(ServiceLevelName(ServiceLevel::kHbm), "HBM");
  EXPECT_STREQ(ServiceLevelName(ServiceLevel::kInterconnect),
               "interconnect");
}

// --- CPU reference join (oracle used across the test suite) -----------

TEST(CpuReferenceJoin, FindsExactMatches) {
  mem::AddressSpace space;
  workload::MaterializedKeyColumn col(&space, {2, 4, 6, 8, 10});
  auto matches = join::CpuReferenceJoin(col, {4, 5, 10, 1, 4});
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].probe_row, 0u);
  EXPECT_EQ(matches[0].position, 1u);
  EXPECT_EQ(matches[1].probe_row, 2u);
  EXPECT_EQ(matches[1].position, 4u);
  EXPECT_EQ(matches[2].probe_row, 4u);
  EXPECT_EQ(matches[2].position, 1u);
  EXPECT_EQ(join::CpuReferenceJoinCount(col, {4, 5, 10, 1, 4}), 3u);
}

TEST(CpuReferenceJoin, AgreesWithProbeGroundTruth) {
  mem::AddressSpace space;
  workload::DenseKeyColumn r(&space, 1 << 18);
  workload::ProbeConfig cfg;
  cfg.full_size = 1 << 14;
  cfg.sample_size = 1 << 14;
  auto s = workload::MakeProbeRelation(&space, r, cfg);
  std::vector<workload::Key> keys(s.keys.begin(), s.keys.end());
  auto matches = join::CpuReferenceJoin(r, keys);
  ASSERT_EQ(matches.size(), s.sample_size());
  for (const auto& m : matches) {
    EXPECT_EQ(m.position, s.true_positions[m.probe_row]);
  }
}

}  // namespace
}  // namespace gpujoin::sim
