#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "index/binary_search.h"
#include "index/btree.h"
#include "index/harmonia.h"
#include "index/index.h"
#include "index/radix_spline.h"
#include "index/spline.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/rng.h"
#include "workload/key_column.h"

namespace gpujoin::index {
namespace {

using workload::DenseKeyColumn;
using workload::GenerateSortedUniqueKeys;
using workload::JitteredKeyColumn;
using workload::Key;
using workload::KeyColumn;
using workload::MaterializedKeyColumn;

// Runs LookupWarp over a batch of probes and returns (positions, found).
std::pair<std::vector<uint64_t>, std::vector<bool>> LookupBatch(
    sim::Gpu& gpu, const Index& index, const std::vector<Key>& probes) {
  std::vector<uint64_t> pos(probes.size());
  std::vector<bool> found(probes.size());
  gpu.RunKernel("lookup", probes.size(), [&](sim::Warp& warp) {
    std::array<Key, sim::Warp::kWidth> keys{};
    std::array<uint64_t, sim::Warp::kWidth> out{};
    const uint64_t base = warp.base_item();
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      keys[lane] = probes[base + lane];
    }
    const uint32_t f =
        index.LookupWarp(warp, keys.data(), warp.full_mask(), out.data());
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      pos[base + lane] = out[lane];
      found[base + lane] = (f >> lane) & 1;
    }
  });
  return {pos, found};
}

enum class ColumnKind { kDense, kJittered, kMaterialized };

const char* ColumnKindName(ColumnKind k) {
  switch (k) {
    case ColumnKind::kDense:
      return "dense";
    case ColumnKind::kJittered:
      return "jittered";
    case ColumnKind::kMaterialized:
      return "materialized";
  }
  return "?";
}

std::unique_ptr<KeyColumn> MakeColumn(mem::AddressSpace* space,
                                      ColumnKind kind, uint64_t n) {
  switch (kind) {
    case ColumnKind::kDense:
      return std::make_unique<DenseKeyColumn>(space, n);
    case ColumnKind::kJittered:
      return std::make_unique<JitteredKeyColumn>(space, n, 16, 99);
    case ColumnKind::kMaterialized:
      return std::make_unique<MaterializedKeyColumn>(
          space, GenerateSortedUniqueKeys(n, 1234));
  }
  return nullptr;
}

std::unique_ptr<Index> MakeIndex(mem::AddressSpace* space,
                                 const KeyColumn* column, IndexType type) {
  switch (type) {
    case IndexType::kBinarySearch:
      return std::make_unique<BinarySearchIndex>(column);
    case IndexType::kBTree: {
      BTreeIndex::Options opts;
      opts.node_bytes = 4096;
      return std::make_unique<BTreeIndex>(space, column, opts);
    }
    case IndexType::kHarmonia:
      return std::make_unique<HarmoniaIndex>(space, column);
    case IndexType::kRadixSpline:
      return RadixSplineIndex::Build(space, column);
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Property sweep: every index returns the reference lower bound, on every
// column kind, across sizes (including sizes that stress partial nodes).
// ---------------------------------------------------------------------

class IndexLowerBoundTest
    : public ::testing::TestWithParam<
          std::tuple<IndexType, ColumnKind, uint64_t>> {};

TEST_P(IndexLowerBoundTest, MatchesReference) {
  const auto [type, kind, n] = GetParam();
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  auto column = MakeColumn(&space, kind, n);
  auto index = MakeIndex(&space, column.get(), type);

  // Probes: all-present sample + absent keys + domain edges.
  std::vector<Key> probes;
  Xoshiro256 rng(42);
  for (int i = 0; i < 300; ++i) {
    probes.push_back(column->key_at(rng.NextBounded(n)));
  }
  for (int i = 0; i < 300; ++i) {
    probes.push_back(static_cast<Key>(
        rng.NextBounded(static_cast<uint64_t>(column->max_key()) + 3)));
  }
  probes.push_back(column->min_key());
  probes.push_back(column->max_key());
  probes.push_back(column->min_key() - 1);
  probes.push_back(column->max_key() + 1);
  // First and last element of every "edge" position.
  probes.push_back(column->key_at(n - 1));
  probes.push_back(column->key_at(n / 2));

  auto [pos, found] = LookupBatch(gpu, *index, probes);
  for (size_t i = 0; i < probes.size(); ++i) {
    if (probes[i] < column->min_key()) continue;  // negative-domain probe
    const uint64_t expected = column->LowerBound(probes[i]);
    ASSERT_EQ(pos[i], expected)
        << index->name() << " on " << ColumnKindName(kind) << " n=" << n
        << " probe=" << probes[i];
    const bool expect_found =
        expected < n && column->key_at(expected) == probes[i];
    ASSERT_EQ(found[i], expect_found) << index->name() << " probe "
                                      << probes[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexesAllColumns, IndexLowerBoundTest,
    ::testing::Combine(
        ::testing::Values(IndexType::kBinarySearch, IndexType::kBTree,
                          IndexType::kHarmonia, IndexType::kRadixSpline),
        ::testing::Values(ColumnKind::kDense, ColumnKind::kJittered,
                          ColumnKind::kMaterialized),
        // Sizes chosen to cover single-node trees, partial tail nodes and
        // multi-level trees.
        ::testing::Values(uint64_t{2}, uint64_t{31}, uint64_t{32},
                          uint64_t{33}, uint64_t{1000}, uint64_t{32768},
                          uint64_t{100000})),
    [](const auto& info) {
      return std::string(IndexTypeName(std::get<0>(info.param))) + "_" +
             ColumnKindName(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Structure-specific tests.
// ---------------------------------------------------------------------

TEST(BinarySearch, HasNoState) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 100);
  BinarySearchIndex idx(&col);
  EXPECT_EQ(idx.footprint_bytes(), 0u);
}

TEST(BTree, GeometryMatchesPaperConfig) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 10'000'000);
  BTreeIndex::Options opts;
  opts.node_bytes = 4096;  // paper Sec. 3.2
  opts.fill_factor = 0.9;
  BTreeIndex idx(&space, &col, opts);
  // 510-key leaves at fill 0.9 -> 459 keys/leaf.
  EXPECT_EQ(idx.keys_per_leaf(), 459u);
  EXPECT_GE(idx.height(), 3);
  EXPECT_EQ(idx.num_nodes(idx.height() - 1), 1u);  // single root
  // Footprint covers all nodes.
  uint64_t nodes = 0;
  for (int l = 0; l < idx.height(); ++l) nodes += idx.num_nodes(l);
  EXPECT_EQ(idx.footprint_bytes(), nodes * 4096);
}

TEST(BTree, SeparatorsAreSubtreeFirstKeys) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 100000);
  BTreeIndex idx(&space, &col);
  ASSERT_GE(idx.height(), 2);
  const int level = 1;
  for (uint64_t node = 0; node < std::min<uint64_t>(idx.num_nodes(level), 5);
       ++node) {
    const uint32_t children = idx.InnerChildCount(level, node);
    Key prev = std::numeric_limits<Key>::min();
    for (uint32_t s = 0; s + 1 < children; ++s) {
      const Key sep = idx.InnerSeparator(level, node, s);
      EXPECT_GT(sep, prev);
      prev = sep;
    }
  }
}

TEST(BTree, LeafKeysPartitionTheColumn) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 1000);
  BTreeIndex idx(&space, &col);
  uint64_t covered = 0;
  for (uint64_t leaf = 0; leaf < idx.num_nodes(0); ++leaf) {
    const uint32_t cnt = idx.LeafKeyCount(leaf);
    for (uint32_t s = 0; s < cnt; ++s) {
      EXPECT_EQ(idx.LeafKey(leaf, s), col.key_at(covered + s));
    }
    covered += cnt;
  }
  EXPECT_EQ(covered, col.size());
}

TEST(Harmonia, GeometryFanout32) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 1'000'000);
  HarmoniaIndex idx(&space, &col);
  EXPECT_EQ(idx.keys_per_node(), 32u);
  // 1e6 keys / 32 per leaf = 31250 leaves -> 977 -> 31 -> 1: height 4.
  EXPECT_EQ(idx.num_nodes(0), 31250u);
  EXPECT_EQ(idx.height(), 4);
}

TEST(Harmonia, FootprintIncludesKeyCopyAndChildArray) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 1'000'000);
  HarmoniaIndex idx(&space, &col);
  // Persistent state is at least one full key copy.
  EXPECT_GT(idx.footprint_bytes(), col.size_bytes());
}

TEST(Harmonia, SubWarpWidthsAllCorrect) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 50000);
  for (int w : {1, 2, 4, 8, 16, 32}) {
    HarmoniaIndex::Options opts;
    opts.sub_warp_width = w;
    HarmoniaIndex idx(&space, &col, opts);
    sim::Gpu gpu(&space, sim::V100NvLink2());
    std::vector<Key> probes;
    Xoshiro256 rng(w);
    for (int i = 0; i < 200; ++i) {
      probes.push_back(col.key_at(rng.NextBounded(col.size())));
    }
    auto [pos, found] = LookupBatch(gpu, idx, probes);
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(pos[i], static_cast<uint64_t>(probes[i])) << "w=" << w;
      ASSERT_TRUE(found[i]);
    }
  }
}

// --- Spline ------------------------------------------------------------

TEST(GreedySpline, CorridorErrorBoundHolds) {
  mem::AddressSpace space;
  auto keys = GenerateSortedUniqueKeys(20000, 77);
  MaterializedKeyColumn col(&space, keys);
  const uint64_t max_error = 16;
  auto points = BuildGreedySplinePoints(col, max_error);
  ASSERT_GE(points.size(), 2u);
  EXPECT_EQ(points.front().pos, 0u);
  EXPECT_EQ(points.back().pos, col.size() - 1);

  // Interpolating any data key within its segment stays within the
  // corridor (allow +1 for floating-point rounding).
  size_t seg = 0;
  for (uint64_t i = 0; i < col.size(); ++i) {
    const Key k = col.key_at(i);
    while (points[seg + 1].key < k) ++seg;
    const auto& a = points[seg];
    const auto& b = points[seg + 1];
    const double slope = static_cast<double>(b.pos - a.pos) /
                         static_cast<double>(b.key - a.key);
    const double est =
        static_cast<double>(a.pos) + slope * static_cast<double>(k - a.key);
    EXPECT_LE(std::abs(est - static_cast<double>(i)),
              static_cast<double>(max_error) + 1.0)
        << "at " << i;
  }
}

TEST(GreedySpline, TighterErrorMorePoints) {
  mem::AddressSpace space;
  auto keys = GenerateSortedUniqueKeys(20000, 78);
  MaterializedKeyColumn col(&space, keys);
  const auto coarse = BuildGreedySplinePoints(col, 256);
  const auto fine = BuildGreedySplinePoints(col, 4);
  EXPECT_GT(fine.size(), coarse.size());
}

TEST(GreedySpline, PerfectlyLinearDataNeedsTwoPoints) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 10000);
  auto points = BuildGreedySplinePoints(col, 8);
  EXPECT_EQ(points.size(), 2u);
}

TEST(UniformSpline, CoversColumn) {
  mem::AddressSpace space;
  JitteredKeyColumn col(&space, 100000, 16, 5);
  UniformSpline spline(&space, &col, 1024);
  EXPECT_EQ(spline.point_pos(0), 0u);
  EXPECT_EQ(spline.point_pos(spline.num_points() - 1), col.size() - 1);
  // Jittered keys are near-linear: the estimated error is small.
  EXPECT_LE(spline.max_error(), 16u);
  for (uint64_t i = 1; i < spline.num_points(); ++i) {
    ASSERT_LT(spline.point_key(i - 1), spline.point_key(i));
  }
}

TEST(RadixSpline, UsesUniformSplineForHugeColumns) {
  mem::AddressSpace space;
  // Procedural 2^28-tuple column (2 GiB simulated, no real memory).
  DenseKeyColumn col(&space, uint64_t{1} << 28);
  auto idx = RadixSplineIndex::Build(&space, &col);
  sim::Gpu gpu(&space, sim::V100NvLink2());
  std::vector<Key> probes;
  Xoshiro256 rng(17);
  for (int i = 0; i < 500; ++i) {
    probes.push_back(col.key_at(rng.NextBounded(col.size())));
  }
  auto [pos, found] = LookupBatch(gpu, *idx, probes);
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(pos[i], static_cast<uint64_t>(probes[i]));
    ASSERT_TRUE(found[i]);
  }
}

TEST(RadixSpline, FootprintIsSmall) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, uint64_t{1} << 28);
  auto idx = RadixSplineIndex::Build(&space, &col);
  // Radix table + spline points are tiny compared to the data.
  EXPECT_LT(idx->footprint_bytes(), col.size_bytes() / 16);
}

}  // namespace
}  // namespace gpujoin::index
