// Tests for the probe-sampling schemes (DESIGN.md Sec. 2): thinned vs
// density-preserving range-restricted sampling, and their interaction
// with the experiment driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/experiment.h"
#include "mem/address_space.h"
#include "workload/key_column.h"
#include "workload/relation.h"

namespace gpujoin::workload {
namespace {

TEST(RangeRestrictedSampling, PositionsFallInNarrowSlice) {
  mem::AddressSpace space;
  DenseKeyColumn r(&space, uint64_t{1} << 24);
  ProbeConfig cfg;
  cfg.full_size = uint64_t{1} << 22;
  cfg.sample_size = uint64_t{1} << 14;  // scale 256
  cfg.scheme = SampleScheme::kRangeRestricted;
  ProbeRelation s = MakeProbeRelation(&space, r, cfg);

  uint64_t lo = ~uint64_t{0};
  uint64_t hi = 0;
  for (uint64_t p : s.true_positions) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  // Slice width = n / scale = 2^24 / 256 = 65536 positions.
  EXPECT_LE(hi - lo, r.size() / 256);
  EXPECT_EQ(s.scheme, SampleScheme::kRangeRestricted);
}

TEST(RangeRestrictedSampling, PreservesPerPositionDensity) {
  mem::AddressSpace space;
  DenseKeyColumn r(&space, uint64_t{1} << 20);
  ProbeConfig cfg;
  cfg.full_size = uint64_t{1} << 20;  // one probe per R position on avg
  cfg.sample_size = uint64_t{1} << 14;
  cfg.scheme = SampleScheme::kRangeRestricted;
  ProbeRelation s = MakeProbeRelation(&space, r, cfg);

  // Distinct fraction within the slice should look like full-density
  // sampling with replacement: ~63% distinct (1 - 1/e).
  std::set<uint64_t> distinct(s.true_positions.begin(),
                              s.true_positions.end());
  const double frac = static_cast<double>(distinct.size()) /
                      static_cast<double>(s.sample_size());
  EXPECT_NEAR(frac, 0.632, 0.03);
}

TEST(ThinnedSampling, CoversTheWholeRelation) {
  mem::AddressSpace space;
  DenseKeyColumn r(&space, uint64_t{1} << 24);
  ProbeConfig cfg;
  cfg.full_size = uint64_t{1} << 22;
  cfg.sample_size = uint64_t{1} << 14;
  cfg.scheme = SampleScheme::kThinned;
  ProbeRelation s = MakeProbeRelation(&space, r, cfg);

  uint64_t lo = ~uint64_t{0};
  uint64_t hi = 0;
  for (uint64_t p : s.true_positions) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi - lo, r.size() / 2);  // spans most of R
}

TEST(RangeRestrictedSampling, KeysStillExistInR) {
  mem::AddressSpace space;
  JitteredKeyColumn r(&space, uint64_t{1} << 20, 16, 3);
  ProbeConfig cfg;
  cfg.full_size = uint64_t{1} << 18;
  cfg.sample_size = uint64_t{1} << 12;
  cfg.scheme = SampleScheme::kRangeRestricted;
  ProbeRelation s = MakeProbeRelation(&space, r, cfg);
  for (uint64_t i = 0; i < s.sample_size(); ++i) {
    ASSERT_EQ(r.key_at(s.true_positions[i]), s.keys[i]);
  }
}

TEST(RangeRestrictedSampling, ZipfStaysInSlice) {
  mem::AddressSpace space;
  DenseKeyColumn r(&space, uint64_t{1} << 24);
  ProbeConfig cfg;
  cfg.full_size = uint64_t{1} << 22;
  cfg.sample_size = uint64_t{1} << 13;
  cfg.scheme = SampleScheme::kRangeRestricted;
  cfg.zipf_exponent = 1.2;
  ProbeRelation s = MakeProbeRelation(&space, r, cfg);
  uint64_t lo = ~uint64_t{0};
  uint64_t hi = 0;
  for (uint64_t p : s.true_positions) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_LE(hi - lo, r.size() / 512 + 1);
}

TEST(ExperimentSamplingChoice, NaiveThinsPartitionedRestricts) {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 24;
  cfg.s_sample = uint64_t{1} << 12;

  cfg.inlj.mode = core::InljConfig::PartitionMode::kNone;
  auto naive = core::Experiment::Create(cfg);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ((*naive)->s().scheme, SampleScheme::kThinned);

  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  auto windowed = core::Experiment::Create(cfg);
  ASSERT_TRUE(windowed.ok());
  EXPECT_EQ((*windowed)->s().scheme, SampleScheme::kRangeRestricted);
}

TEST(FullSampleIsExact, SampleEqualsFullSize) {
  // With sample == full, both schemes degenerate to the exact workload.
  mem::AddressSpace space;
  DenseKeyColumn r(&space, 1 << 16);
  for (SampleScheme scheme :
       {SampleScheme::kThinned, SampleScheme::kRangeRestricted}) {
    ProbeConfig cfg;
    cfg.full_size = 1 << 12;
    cfg.sample_size = 1 << 12;
    cfg.scheme = scheme;
    ProbeRelation s = MakeProbeRelation(&space, r, cfg);
    EXPECT_DOUBLE_EQ(s.scale(), 1.0);
  }
}

}  // namespace
}  // namespace gpujoin::workload
