// Tests for the multi-node cluster tier (src/cluster): the two-level
// topology's network pricing, the node planner's key-space split, and
// the ClusterScheduler's load-bearing invariants — 1-node runs are
// bit-identical to dist::ShardScheduler, the match set survives node
// deaths, drains and joins unchanged, and results are byte-identical
// across simulation thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/cluster_scheduler.h"
#include "cluster/cluster_topology.h"
#include "cluster/node_planner.h"
#include "core/experiment.h"
#include "dist/shard_scheduler.h"
#include "serve/server.h"
#include "sim/fault.h"
#include "workload/key_column.h"

namespace gpujoin {
namespace {

// --------------------------------------------------------------------
// ClusterTopology

TEST(ClusterTopologyTest, NodeSecondsIsSymmetricAndMonotone) {
  for (auto network :
       {cluster::NetworkKind::kInfiniBand, cluster::NetworkKind::kEthernet}) {
    auto topo = cluster::ClusterTopology::Create(
        network, 4, dist::TopologyKind::kNvLink2, 2);
    ASSERT_TRUE(topo.ok()) << topo.status().ToString();
    double prev = -1;
    for (uint64_t bytes : {uint64_t{0}, uint64_t{1} << 12, uint64_t{1} << 20,
                           uint64_t{1} << 26}) {
      const double t = topo->NodeSeconds(0, 3, bytes);
      EXPECT_DOUBLE_EQ(t, topo->NodeSeconds(3, 0, bytes))
          << cluster::NetworkKindName(network);
      EXPECT_GE(t, prev) << cluster::NetworkKindName(network);
      prev = t;
    }
    EXPECT_EQ(topo->NodeSeconds(2, 2, uint64_t{1} << 20), 0);
  }
}

TEST(ClusterTopologyTest, EthernetSharesASwitchAndInfiniBandDoesNot) {
  auto ib = cluster::ClusterTopology::Create(
      cluster::NetworkKind::kInfiniBand, 4, dist::TopologyKind::kNvLink2, 1);
  auto eth = cluster::ClusterTopology::Create(
      cluster::NetworkKind::kEthernet, 4, dist::TopologyKind::kNvLink2, 1);
  ASSERT_TRUE(ib.ok() && eth.ok());
  // The Ethernet path crosses one extra (shared) backplane segment.
  EXPECT_EQ(ib->NodePathLinks(0, 2).size(), 2u);
  EXPECT_EQ(eth->NodePathLinks(0, 2).size(), 3u);
  bool saw_shared = false;
  for (int l : eth->NodePathLinks(0, 2)) {
    if (eth->links()[l].shared) {
      saw_shared = true;
      EXPECT_EQ(eth->Sharers(l, 4), 4);
    } else {
      EXPECT_EQ(eth->Sharers(l, 4), 1);
    }
  }
  EXPECT_TRUE(saw_shared);
  for (int l : ib->NodePathLinks(0, 2)) EXPECT_EQ(ib->Sharers(l, 4), 1);
  // The commodity network is much slower end to end.
  const uint64_t bytes = uint64_t{1} << 24;
  EXPECT_GT(eth->NodeSeconds(0, 2, bytes), 4 * ib->NodeSeconds(0, 2, bytes));
}

TEST(ClusterTopologyTest, AddNodeGrowsTheTierInPlace) {
  auto topo = cluster::ClusterTopology::Create(
      cluster::NetworkKind::kEthernet, 2, dist::TopologyKind::kPciE4, 2);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  const size_t links_before = topo->links().size();
  auto id = topo->AddNode();
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 2);
  EXPECT_EQ(topo->num_nodes(), 3);
  EXPECT_EQ(topo->links().size(), links_before + 1);
  EXPECT_EQ(topo->node_fabric(2).links().size(),
            topo->node_fabric(0).links().size());
  EXPECT_GT(topo->NodeSeconds(0, 2, uint64_t{1} << 20), 0);
}

TEST(ClusterTopologyDeathTest, AccessorsRejectOutOfRangeNodes) {
  auto topo = cluster::ClusterTopology::Create(
      cluster::NetworkKind::kInfiniBand, 2, dist::TopologyKind::kNvLink2, 1);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  EXPECT_DEATH(topo->node_fabric(2), "node_fabric: node must be in");
  EXPECT_DEATH(topo->uplink(-1), "uplink: node must be in");
  EXPECT_DEATH(topo->Sharers(99, 2), "Sharers: link must be in");
}

// --------------------------------------------------------------------
// NodePlanner

TEST(NodePlannerTest, CellsCoverRAndRouteToTheirOwners) {
  mem::AddressSpace space;
  workload::JitteredKeyColumn r(&space, uint64_t{1} << 16, 16, /*seed=*/7);
  auto plan = cluster::NodePlanner::Plan(r, 3);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->num_nodes(), 3);
  EXPECT_EQ(plan->cell_pos.front(), 0u);
  EXPECT_EQ(plan->cell_pos.back(), r.size());
  uint64_t total = 0;
  for (uint64_t c = 0; c < plan->cells(); ++c) {
    EXPECT_LE(plan->cell_pos[c], plan->cell_pos[c + 1]);
    total += plan->cell_r_tuples(c);
  }
  EXPECT_EQ(total, r.size());
  // Every R key's cell maps back into the owning node's slice.
  for (uint64_t i = 0; i < r.size(); i += 131) {
    const int owner = plan->OriginOf(r.key_at(i));
    EXPECT_GE(i, plan->node_r_begin(owner)) << "key index " << i;
    EXPECT_LT(i, plan->node_r_end(owner)) << "key index " << i;
  }
}

// --------------------------------------------------------------------
// ClusterScheduler

core::ExperimentConfig ClusterExpConfig() {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 21;
  cfg.s_tuples = uint64_t{1} << 24;
  cfg.s_sample = uint64_t{1} << 16;
  cfg.seed = 11;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 22;
  return cfg;
}

cluster::ClusterRunResult MustRun(
    const core::ExperimentConfig& cfg, const cluster::ClusterConfig& ccfg,
    std::vector<core::JoinMatch>* collect = nullptr) {
  auto engine = cluster::ClusterScheduler::Create(cfg, ccfg);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto run = (*engine)->RunJoin(collect);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return *run;
}

std::vector<core::JoinMatch> Sorted(std::vector<core::JoinMatch> m) {
  std::sort(m.begin(), m.end());
  return m;
}

// Membership events and node faults apply at window boundaries, so the
// elastic tests need several simulated windows: a small full-scale
// window keeps the per-device stride well under the sample.
core::ExperimentConfig MultiWindowConfig() {
  core::ExperimentConfig cfg = ClusterExpConfig();
  cfg.inlj.window_tuples = uint64_t{1} << 12;
  return cfg;
}

TEST(ClusterSchedulerTest, RejectsBadConfigs) {
  core::ExperimentConfig cfg = ClusterExpConfig();
  cluster::ClusterConfig bad;
  bad.num_nodes = 0;
  EXPECT_FALSE(cluster::ClusterScheduler::Create(cfg, bad).ok());
  bad.num_nodes = 65;
  EXPECT_FALSE(cluster::ClusterScheduler::Create(cfg, bad).ok());

  cluster::ClusterConfig drain_bad;
  drain_bad.num_nodes = 2;
  drain_bad.membership.push_back(
      {cluster::MembershipEvent::Kind::kDrainNode, -1, 0.0});
  EXPECT_FALSE(cluster::ClusterScheduler::Create(cfg, drain_bad).ok());

  core::ExperimentConfig restricted = cfg;
  restricted.sample_scheme =
      core::ExperimentConfig::SampleSchemeOverride::kRangeRestricted;
  cluster::ClusterConfig two;
  two.num_nodes = 2;
  EXPECT_FALSE(cluster::ClusterScheduler::Create(restricted, two).ok());
  two.num_nodes = 1;
  EXPECT_TRUE(cluster::ClusterScheduler::Create(restricted, two).ok());

  core::ExperimentConfig full = cfg;
  full.inlj.mode = core::InljConfig::PartitionMode::kFull;
  EXPECT_FALSE(
      cluster::ClusterScheduler::Create(full, cluster::ClusterConfig{}).ok());
}

// The bit-identity guarantee: one node with no membership events and no
// node faults delegates wholesale to its single engine, so everything —
// seconds, counters, match order — equals the dist run bit for bit.
TEST(ClusterSchedulerTest, OneNodeIsBitIdenticalToDist) {
  core::ExperimentConfig cfg = ClusterExpConfig();
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;
  auto dist_engine = dist::ShardScheduler::Create(cfg, dcfg);
  ASSERT_TRUE(dist_engine.ok()) << dist_engine.status().ToString();
  std::vector<core::JoinMatch> dist_matches;
  auto dist_run = (*dist_engine)->RunJoin(&dist_matches);
  ASSERT_TRUE(dist_run.ok()) << dist_run.status().ToString();

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 1;
  ccfg.gpus_per_node = 4;
  std::vector<core::JoinMatch> cluster_matches;
  const auto cluster_run = MustRun(cfg, ccfg, &cluster_matches);

  EXPECT_EQ(cluster_run.run.seconds, dist_run->run.seconds);
  EXPECT_TRUE(cluster_run.run.counters == dist_run->run.counters);
  EXPECT_EQ(cluster_run.run.result_tuples, dist_run->run.result_tuples);
  EXPECT_EQ(cluster_run.sim_makespan, dist_run->sim_makespan);
  EXPECT_EQ(cluster_run.steal_events, dist_run->steal_events);
  EXPECT_TRUE(cluster_matches == dist_matches);  // order included
  ASSERT_EQ(cluster_run.nodes.size(), 1u);
  EXPECT_EQ(cluster_run.nodes[0].shards, 4);
  EXPECT_EQ(cluster_run.nodes[0].r_tuples, cfg.r_tuples);
}

TEST(ClusterSchedulerTest, EveryProbeRowIsChargedAndJoinedOnce) {
  core::ExperimentConfig cfg = ClusterExpConfig();
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 4;
  ccfg.gpus_per_node = 2;
  std::vector<core::JoinMatch> matches;
  const auto run = MustRun(cfg, ccfg, &matches);
  ASSERT_EQ(run.nodes.size(), 4u);
  uint64_t routed = 0;
  uint64_t node_matches = 0;
  uint64_t r_total = 0;
  for (const auto& n : run.nodes) {
    EXPECT_TRUE(n.origin);
    EXPECT_EQ(n.shards, 2);
    routed += n.tuples_routed;
    node_matches += n.matches;
    r_total += n.r_tuples;
    EXPECT_EQ(n.tuples_rerouted, 0u);  // fault-free: nothing fetched
  }
  EXPECT_EQ(routed, cfg.s_sample);
  EXPECT_EQ(node_matches, cfg.s_sample);
  EXPECT_EQ(r_total, cfg.r_tuples);
  EXPECT_EQ(run.run.result_tuples, cfg.s_tuples);
  // Matches carry global coordinates: each probe row appears once.
  ASSERT_EQ(matches.size(), cfg.s_sample);
  const auto sorted = Sorted(matches);
  for (uint64_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i].probe_row, i);
  }
  // The probe handoff crossed the network tier.
  uint64_t net_bytes = 0;
  for (const auto& l : run.network) net_bytes += l.bytes;
  EXPECT_GT(net_bytes, 0u);
}

// The match set is a pure function of the workload: the same global
// (probe row, R position) pairs come out regardless of the node count.
TEST(ClusterSchedulerTest, MatchSetIsInvariantAcrossNodeCounts) {
  core::ExperimentConfig cfg = ClusterExpConfig();
  cluster::ClusterConfig one;
  one.num_nodes = 1;
  one.gpus_per_node = 4;
  std::vector<core::JoinMatch> m1;
  MustRun(cfg, one, &m1);

  cluster::ClusterConfig four;
  four.num_nodes = 4;
  four.gpus_per_node = 1;
  std::vector<core::JoinMatch> m4;
  MustRun(cfg, four, &m4);

  EXPECT_TRUE(Sorted(m1) == Sorted(m4));
}

// Node death mid-run: the dead node's key range is rerouted to the
// survivors, charged over the network at the recovery penalty — and the
// merged match set is identical to the fault-free run.
TEST(ClusterSchedulerTest, KillingANodeKeepsTheMatchSet) {
  core::ExperimentConfig cfg = MultiWindowConfig();
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 4;
  ccfg.gpus_per_node = 1;
  std::vector<core::JoinMatch> healthy;
  const auto base = MustRun(cfg, ccfg, &healthy);
  ASSERT_GT(base.sim_makespan, 0);

  cluster::ClusterConfig faulty = ccfg;
  faulty.failover.node_faults.events.push_back(
      {sim::DeviceFaultClass::kShardCrash, /*shard=*/2,
       /*at_seconds=*/0.4 * base.sim_makespan});
  std::vector<core::JoinMatch> survived;
  const auto run = MustRun(cfg, faulty, &survived);

  EXPECT_TRUE(Sorted(survived) == Sorted(healthy));
  ASSERT_EQ(run.robustness.failovers.size(), 1u);
  EXPECT_EQ(run.robustness.failovers[0].dead_shard, 2);
  EXPECT_GT(run.robustness.failovers[0].reassigned_tuples, 0u);
  EXPECT_FALSE(run.nodes[2].alive);
  uint64_t rerouted = 0;
  for (const auto& n : run.nodes) rerouted += n.tuples_rerouted;
  EXPECT_GT(rerouted, 0u);
  // The dead node's R tuples are charged to survivors at run end.
  EXPECT_EQ(run.nodes[2].r_tuples, 0u);
  // Remote fetches and the recovery penalty cost simulated time.
  EXPECT_GT(run.run.seconds, base.run.seconds);
}

// Draining a node ships its charged cells (data included) to the rest
// of the cluster; the match set and total R coverage are unchanged.
TEST(ClusterSchedulerTest, DrainingANodeMigratesItsRangeAndKeepsMatches) {
  core::ExperimentConfig cfg = MultiWindowConfig();
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 4;
  ccfg.gpus_per_node = 1;
  std::vector<core::JoinMatch> healthy;
  const auto base = MustRun(cfg, ccfg, &healthy);

  cluster::ClusterConfig drain = ccfg;
  drain.membership.push_back({cluster::MembershipEvent::Kind::kDrainNode,
                              /*node=*/1, 0.5 * base.sim_makespan});
  std::vector<core::JoinMatch> drained;
  const auto run = MustRun(cfg, drain, &drained);

  EXPECT_TRUE(Sorted(drained) == Sorted(healthy));
  EXPECT_TRUE(run.nodes[1].drained);
  EXPECT_EQ(run.nodes[1].shards, 0);
  EXPECT_EQ(run.nodes[1].r_tuples, 0u);
  EXPECT_EQ(run.rebalance_events, 1u);
  EXPECT_GT(run.moved_r_tuples, 0u);
  EXPECT_GT(run.migration_seconds, 0);
  uint64_t r_total = 0;
  for (const auto& n : run.nodes) r_total += n.r_tuples;
  EXPECT_EQ(r_total, cfg.r_tuples);
}

// Adding a node rebalances an equal share of cells onto the joiner;
// probes still execute on the origin structures, so the match set is
// again unchanged.
TEST(ClusterSchedulerTest, AddingANodeRebalancesAndKeepsMatches) {
  core::ExperimentConfig cfg = MultiWindowConfig();
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 2;
  ccfg.gpus_per_node = 2;
  std::vector<core::JoinMatch> before;
  const auto base = MustRun(cfg, ccfg, &before);

  cluster::ClusterConfig grow = ccfg;
  grow.membership.push_back({cluster::MembershipEvent::Kind::kAddNode,
                             /*node=*/-1, 0.3 * base.sim_makespan});
  std::vector<core::JoinMatch> after;
  const auto run = MustRun(cfg, grow, &after);

  EXPECT_TRUE(Sorted(after) == Sorted(before));
  ASSERT_EQ(run.nodes.size(), 3u);
  EXPECT_FALSE(run.nodes[2].origin);
  EXPECT_GT(run.nodes[2].r_tuples, 0u);
  EXPECT_GT(run.nodes[2].tuples_routed, 0u);
  EXPECT_EQ(run.rebalance_events, 1u);
  EXPECT_GT(run.moved_r_tuples, 0u);
  uint64_t r_total = 0;
  for (const auto& n : run.nodes) r_total += n.r_tuples;
  EXPECT_EQ(r_total, cfg.r_tuples);
}

// The fig15 scale-out claim on a small fixed-seed config. As in the
// dist test, the sample scales with the GPU count so every device
// simulates the same window size and the comparison isolates the
// parallel speedup from sample-resolution effects.
TEST(ClusterSchedulerTest, FourUniformNodesScaleOut) {
  core::ExperimentConfig cfg = ClusterExpConfig();
  cfg.s_sample = uint64_t{1} << 17;  // 2^17 per node's GPU
  cluster::ClusterConfig one;
  one.num_nodes = 1;
  one.gpus_per_node = 1;
  const auto r1 = MustRun(cfg, one);

  cfg.s_sample = uint64_t{1} << 19;
  cluster::ClusterConfig four;
  four.num_nodes = 4;
  four.gpus_per_node = 1;
  const auto r4 = MustRun(cfg, four);

  EXPECT_EQ(r1.run.result_tuples, r4.run.result_tuples);
  const double speedup = r1.run.seconds / r4.run.seconds;
  EXPECT_GE(speedup, 1.5) << "1-node " << r1.run.seconds << "s, 4-node "
                          << r4.run.seconds << "s";
}

TEST(ClusterSchedulerTest, ResultsAreByteIdenticalAcrossThreadCounts) {
  core::ExperimentConfig cfg = MultiWindowConfig();
  cfg.zipf_exponent = 1.75;  // skewed routing: the harder case
  cluster::ClusterConfig plain;
  plain.num_nodes = 3;
  plain.gpus_per_node = 2;
  const auto base = MustRun(cfg, plain);

  cluster::ClusterConfig a = plain;
  a.threads = 1;
  // Membership and a node fault in flight, so the elastic paths are
  // exercised under both thread counts.
  a.membership.push_back({cluster::MembershipEvent::Kind::kAddNode, -1,
                          0.25 * base.sim_makespan});
  a.failover.node_faults.events.push_back(
      {sim::DeviceFaultClass::kShardCrash, /*shard=*/1,
       /*at_seconds=*/0.55 * base.sim_makespan});
  cluster::ClusterConfig b = a;
  b.threads = 4;

  std::vector<core::JoinMatch> ma;
  std::vector<core::JoinMatch> mb;
  const auto ra = MustRun(cfg, a, &ma);
  const auto rb = MustRun(cfg, b, &mb);
  // The elastic paths really ran.
  EXPECT_EQ(ra.rebalance_events, 1u);
  EXPECT_EQ(ra.robustness.failovers.size(), 1u);
  EXPECT_EQ(ra.run.seconds, rb.run.seconds);
  EXPECT_TRUE(ra.run.counters == rb.run.counters);
  EXPECT_EQ(ra.merge_seconds, rb.merge_seconds);
  EXPECT_EQ(ra.migration_seconds, rb.migration_seconds);
  EXPECT_TRUE(ma == mb);  // order included
  ASSERT_EQ(ra.nodes.size(), rb.nodes.size());
  for (size_t i = 0; i < ra.nodes.size(); ++i) {
    EXPECT_EQ(ra.nodes[i].busy_seconds, rb.nodes[i].busy_seconds);
    EXPECT_EQ(ra.nodes[i].tuples_routed, rb.nodes[i].tuples_routed);
    EXPECT_EQ(ra.nodes[i].matches, rb.nodes[i].matches);
  }
  ASSERT_EQ(ra.network.size(), rb.network.size());
  for (size_t i = 0; i < ra.network.size(); ++i) {
    EXPECT_EQ(ra.network[i].bytes, rb.network[i].bytes);
  }
}

// ResetForRun must restore membership, charges and ledgers: the same
// engine repeats an elastic run bit for bit.
TEST(ClusterSchedulerTest, ElasticRunsAreRepeatableOnOneEngine) {
  core::ExperimentConfig cfg = MultiWindowConfig();
  cluster::ClusterConfig plain;
  plain.num_nodes = 2;
  plain.gpus_per_node = 1;
  const auto base = MustRun(cfg, plain);

  cluster::ClusterConfig ccfg = plain;
  ccfg.membership.push_back({cluster::MembershipEvent::Kind::kAddNode, -1,
                             0.2 * base.sim_makespan});
  ccfg.membership.push_back({cluster::MembershipEvent::Kind::kDrainNode,
                             /*node=*/0, 0.6 * base.sim_makespan});
  auto engine = cluster::ClusterScheduler::Create(cfg, ccfg);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<core::JoinMatch> m1;
  std::vector<core::JoinMatch> m2;
  auto r1 = (*engine)->RunJoin(&m1);
  auto r2 = (*engine)->RunJoin(&m2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->run.seconds, r2->run.seconds);
  EXPECT_TRUE(r1->run.counters == r2->run.counters);
  EXPECT_EQ(r1->rebalance_events, 2u);  // both events fired, both runs
  EXPECT_EQ(r1->moved_r_tuples, r2->moved_r_tuples);
  EXPECT_TRUE(m1 == m2);
}

TEST(ClusterSchedulerTest, EthernetIsSlowerThanInfiniBand) {
  core::ExperimentConfig cfg = ClusterExpConfig();
  cluster::ClusterConfig ib;
  ib.num_nodes = 4;
  ib.gpus_per_node = 1;
  ib.network = cluster::NetworkKind::kInfiniBand;
  cluster::ClusterConfig eth = ib;
  eth.network = cluster::NetworkKind::kEthernet;
  const auto rib = MustRun(cfg, ib);
  const auto reth = MustRun(cfg, eth);
  // Same work, but every handoff crosses a slower, contended network.
  EXPECT_GT(reth.run.seconds, rib.run.seconds);
}

TEST(ClusterSchedulerTest, PhaseSpansFillWhenObserved) {
  core::ExperimentConfig cfg = ClusterExpConfig();
  cfg.s_sample = uint64_t{1} << 14;
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 2;
  ccfg.gpus_per_node = 2;
  auto engine = cluster::ClusterScheduler::Create(cfg, ccfg);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  (*engine)->EnableObservability();
  auto run = (*engine)->RunJoin();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (const auto& n : run->nodes) {
    EXPECT_FALSE(n.phase_spans.empty())
        << "node " << n.node << " has no phase spans";
  }
}

// --------------------------------------------------------------------
// Serving through the backend seam

TEST(ClusterServeTest, RequestServerFansOutAcrossNodes) {
  core::ExperimentConfig cfg = ClusterExpConfig();
  cfg.s_sample = uint64_t{1} << 14;
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 2;
  ccfg.gpus_per_node = 2;
  auto engine = cluster::ClusterScheduler::Create(cfg, ccfg);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  serve::ServeConfig sc;
  sc.requests = 2000;
  sc.tuples_per_request = 512;
  sc.arrival.rate = 20000;
  sc.arrival.seed = 5;
  serve::RequestServer server(**engine, sc);
  auto report = server.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->counters.requests_admitted +
                report->counters.requests_shed,
            sc.requests);
  EXPECT_GT(report->counters.batches, 0u);
  EXPECT_GT(report->sim_seconds, 0);

  // Deterministic: the same engine and config reproduce the run.
  auto engine2 = cluster::ClusterScheduler::Create(cfg, ccfg);
  ASSERT_TRUE(engine2.ok());
  serve::RequestServer server2(**engine2, sc);
  auto report2 = server2.Run();
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report->sim_seconds, report2->sim_seconds);
  EXPECT_EQ(report->latency.Quantile(0.99), report2->latency.Quantile(0.99));
}

}  // namespace
}  // namespace gpujoin
