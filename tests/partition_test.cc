#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/address_space.h"
#include "partition/radix_partitioner.h"
#include "sim/gpu.h"
#include "util/rng.h"
#include "workload/key_column.h"

namespace gpujoin::partition {
namespace {

using workload::DenseKeyColumn;
using workload::Key;

TEST(PlanPartitionBits, PaperDefaultIs2048Partitions) {
  mem::AddressSpace space;
  // 2^30 dense keys: key bits = 30 -> 11 partition bits at shift 19.
  DenseKeyColumn col(&space, uint64_t{1} << 30);
  RadixPartitionSpec spec = PlanPartitionBits(col).value();
  EXPECT_EQ(spec.num_partitions(), 2048u);
  EXPECT_EQ(spec.shift, 30 - 11);
}

TEST(PlanPartitionBits, SmallDomainsIgnoreLsb) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 256);  // key bits = 8
  RadixPartitionSpec spec = PlanPartitionBits(col, 11, 4).value();
  EXPECT_EQ(spec.bits, 4);  // 8 - 4 LSBs
  EXPECT_EQ(spec.shift, 4);
}

TEST(PlanPartitionBits, ZeroKeyDomainPlansTrivialSingleBucket) {
  // A single key 0 has a zero-width domain: nothing to partition on, but
  // the plan must still be runnable (one effective bucket) rather than an
  // InvalidArgument that would fail such columns under FailStop().
  mem::AddressSpace space;
  workload::MaterializedKeyColumn col(&space, std::vector<Key>{0});
  RadixPartitionSpec spec = PlanPartitionBits(col).value();
  EXPECT_EQ(spec.bits, 1);
  EXPECT_EQ(spec.shift, 0);
  EXPECT_EQ(spec.PartitionOf(0), 0u);
}

TEST(PartitionOf, ExtractsConfiguredBits) {
  RadixPartitionSpec spec{.bits = 3, .shift = 4};
  EXPECT_EQ(spec.PartitionOf(0), 0u);
  EXPECT_EQ(spec.PartitionOf(0b1010000), 0b101u);
  EXPECT_EQ(spec.PartitionOf(0b1011111), 0b101u);
}

class RadixPartitionerTest : public ::testing::Test {
 protected:
  RadixPartitionerTest() : gpu_(&space_, sim::V100NvLink2()) {}

  mem::AddressSpace space_;
  sim::Gpu gpu_;
};

TEST_F(RadixPartitionerTest, OutputIsPartitionOrderedAndStable) {
  const RadixPartitionSpec spec{.bits = 4, .shift = 3};
  RadixPartitioner partitioner(spec);

  std::vector<Key> keys(5000);
  Xoshiro256 rng(3);
  for (auto& k : keys) k = static_cast<Key>(rng.NextBounded(1 << 7));
  mem::Region src =
      space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "src");

  sim::KernelRun run{"p", {}};
  PartitionedKeys out =
      partitioner
          .Partition(gpu_, keys.data(), keys.size(), src.base, 100, &run)
          .value();

  ASSERT_EQ(out.keys.size(), keys.size());
  ASSERT_EQ(out.offsets.size(), spec.num_partitions() + 1u);
  EXPECT_EQ(out.offsets.front(), 0u);
  EXPECT_EQ(out.offsets.back(), keys.size());

  // Each partition range contains exactly the keys of that partition, in
  // original (stable) order.
  for (uint32_t p = 0; p < spec.num_partitions(); ++p) {
    uint64_t prev_row = 0;
    bool first = true;
    for (uint64_t i = out.offsets[p]; i < out.offsets[p + 1]; ++i) {
      ASSERT_EQ(spec.PartitionOf(out.keys[i]), p);
      const uint64_t row = out.row_ids[i];
      ASSERT_GE(row, 100u);  // first_row_id offset applied
      ASSERT_EQ(keys[row - 100], out.keys[i]);
      if (!first) {
        ASSERT_GT(row, prev_row) << "stability violated";
      }
      prev_row = row;
      first = false;
    }
  }
}

TEST_F(RadixPartitionerTest, PreservesMultiset) {
  const RadixPartitionSpec spec{.bits = 6, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys(3000);
  Xoshiro256 rng(8);
  for (auto& k : keys) k = static_cast<Key>(rng.NextBounded(1 << 6));
  mem::Region src =
      space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "src");
  PartitionedKeys out =
      partitioner
          .Partition(gpu_, keys.data(), keys.size(), src.base, 0, nullptr)
          .value();
  std::vector<Key> a = keys;
  std::vector<Key> b(out.keys.begin(), out.keys.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(RadixPartitionerTest, ChargesStageInForHostSources) {
  const RadixPartitionSpec spec{.bits = 4, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys(1024, 5);
  mem::Region host_src =
      space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "hs");
  mem::Region dev_src =
      space_.Reserve(keys.size() * 8, mem::MemKind::kDevice, "ds");

  sim::KernelRun host_run{"h", {}};
  ASSERT_TRUE(partitioner
                  .Partition(gpu_, keys.data(), keys.size(), host_src.base,
                             0, &host_run)
                  .ok());
  sim::KernelRun dev_run{"d", {}};
  ASSERT_TRUE(partitioner
                  .Partition(gpu_, keys.data(), keys.size(), dev_src.base,
                             0, &dev_run)
                  .ok());

  EXPECT_EQ(host_run.counters.host_seq_read_bytes, keys.size() * 8);
  EXPECT_EQ(dev_run.counters.host_seq_read_bytes, 0u);
  EXPECT_GT(host_run.counters.hbm_bytes(), 0u);
}

TEST_F(RadixPartitionerTest, PartitionedOutputLivesInDeviceMemory) {
  const RadixPartitionSpec spec{.bits = 2, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys(64, 1);
  mem::Region src = space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "s");
  PartitionedKeys out =
      partitioner
          .Partition(gpu_, keys.data(), keys.size(), src.base, 0, nullptr)
          .value();
  EXPECT_EQ(space_.KindOf(out.tuple_addr(0)), mem::MemKind::kDevice);
  EXPECT_EQ(space_.KindOf(out.tuple_addr(keys.size() - 1)),
            mem::MemKind::kDevice);
  EXPECT_EQ(out.region.size, keys.size() * 16);
}

// --- Bucket overflow under skew (PartitionOptions) ---------------------

// A heavily skewed input: nearly all keys land in one partition, so any
// single-pass bucket sizing (bucket_slack > 0) must overflow it.
std::vector<Key> SkewedKeys(size_t n) {
  std::vector<Key> keys(n, 7);  // partition 7>>0 under bits=4
  for (size_t i = 0; i < n / 16; ++i) keys[i * 16] = 16 + (i % 15) * 16;
  return keys;
}

TEST_F(RadixPartitionerTest, ZeroSlackNeverSpills) {
  const RadixPartitionSpec spec{.bits = 4, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys = SkewedKeys(4096);
  mem::Region src = space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "s");
  PartitionedKeys out =
      partitioner
          .Partition(gpu_, keys.data(), keys.size(), src.base, 0, nullptr)
          .value();
  EXPECT_EQ(out.spilled_tuples, 0u);
  EXPECT_EQ(out.spill_buckets, 0u);
  EXPECT_EQ(out.spill_region.size, 0u);
}

TEST_F(RadixPartitionerTest, ForcedOverflowSpillsWithoutChangingOutput) {
  const RadixPartitionSpec spec{.bits = 4, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys = SkewedKeys(4096);
  mem::Region src = space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "s");

  PartitionedKeys exact =
      partitioner
          .Partition(gpu_, keys.data(), keys.size(), src.base, 0, nullptr)
          .value();

  PartitionOptions opts;
  opts.bucket_slack = 1.5;  // avg * 1.5 per bucket; the hot one overflows
  sim::KernelRun run{"p", {}};
  PartitionedKeys spilled =
      partitioner
          .Partition(gpu_, keys.data(), keys.size(), src.base, 0, &run, opts)
          .value();

  EXPECT_GT(spilled.spilled_tuples, 0u);
  EXPECT_GT(spilled.spill_buckets, 0u);
  EXPECT_GT(spilled.spill_region.size, 0u);
  // Spilling is a placement/cost concern: the functional output is the
  // same partition-ordered stable sequence.
  EXPECT_EQ(spilled.keys, exact.keys);
  EXPECT_EQ(spilled.row_ids, exact.row_ids);
  EXPECT_EQ(spilled.offsets, exact.offsets);
  // The chained buckets cost extra HBM traffic.
  EXPECT_GT(run.counters.hbm_bytes(), 0u);
}

TEST_F(RadixPartitionerTest, FailStopOverflowReturnsResourceExhausted) {
  const RadixPartitionSpec spec{.bits = 4, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys = SkewedKeys(4096);
  mem::Region src = space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "s");

  PartitionOptions opts;
  opts.bucket_slack = 1.5;
  opts.spill_on_overflow = false;
  auto res = partitioner.Partition(gpu_, keys.data(), keys.size(), src.base,
                                   0, nullptr, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RadixPartitionerTest, EmptyInputIsInvalid) {
  RadixPartitioner partitioner(RadixPartitionSpec{.bits = 2, .shift = 0});
  std::vector<Key> keys(1, 0);
  mem::Region src = space_.Reserve(8, mem::MemKind::kHost, "s");
  auto res =
      partitioner.Partition(gpu_, keys.data(), 0, src.base, 0, nullptr);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RadixPartitionerTest, ImprovesKeyLocality) {
  // The partitioner's purpose (paper Sec. 4.2): after partitioning,
  // consecutive keys fall into narrow key ranges.
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  DenseKeyColumn col(&space, uint64_t{1} << 24);
  RadixPartitionSpec spec = PlanPartitionBits(col).value();
  RadixPartitioner partitioner(spec);

  std::vector<Key> keys(1 << 14);
  Xoshiro256 rng(11);
  for (auto& k : keys) {
    k = col.key_at(rng.NextBounded(col.size()));
  }
  mem::Region src = space.Reserve(keys.size() * 8, mem::MemKind::kHost, "s");
  PartitionedKeys out =
      partitioner
          .Partition(gpu, keys.data(), keys.size(), src.base, 0, nullptr)
          .value();

  auto window_span = [](const std::vector<Key>& v, size_t i, size_t w) {
    Key lo = v[i];
    Key hi = v[i];
    for (size_t j = i; j < i + w; ++j) {
      lo = std::min(lo, v[j]);
      hi = std::max(hi, v[j]);
    }
    return hi - lo;
  };
  std::vector<Key> part(out.keys.begin(), out.keys.end());
  double before = 0;
  double after = 0;
  const size_t w = 32;
  for (size_t i = 0; i + w <= keys.size(); i += w) {
    before += static_cast<double>(window_span(keys, i, w));
    after += static_cast<double>(window_span(part, i, w));
  }
  // Warp-sized windows of partitioned keys span a far smaller key range.
  EXPECT_LT(after, before / 50);
}

}  // namespace
}  // namespace gpujoin::partition
