#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/address_space.h"
#include "partition/radix_partitioner.h"
#include "sim/gpu.h"
#include "util/rng.h"
#include "workload/key_column.h"

namespace gpujoin::partition {
namespace {

using workload::DenseKeyColumn;
using workload::Key;

TEST(PlanPartitionBits, PaperDefaultIs2048Partitions) {
  mem::AddressSpace space;
  // 2^30 dense keys: key bits = 30 -> 11 partition bits at shift 19.
  DenseKeyColumn col(&space, uint64_t{1} << 30);
  RadixPartitionSpec spec = PlanPartitionBits(col);
  EXPECT_EQ(spec.num_partitions(), 2048u);
  EXPECT_EQ(spec.shift, 30 - 11);
}

TEST(PlanPartitionBits, SmallDomainsIgnoreLsb) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 256);  // key bits = 8
  RadixPartitionSpec spec = PlanPartitionBits(col, 11, 4);
  EXPECT_EQ(spec.bits, 4);  // 8 - 4 LSBs
  EXPECT_EQ(spec.shift, 4);
}

TEST(PartitionOf, ExtractsConfiguredBits) {
  RadixPartitionSpec spec{.bits = 3, .shift = 4};
  EXPECT_EQ(spec.PartitionOf(0), 0u);
  EXPECT_EQ(spec.PartitionOf(0b1010000), 0b101u);
  EXPECT_EQ(spec.PartitionOf(0b1011111), 0b101u);
}

class RadixPartitionerTest : public ::testing::Test {
 protected:
  RadixPartitionerTest() : gpu_(&space_, sim::V100NvLink2()) {}

  mem::AddressSpace space_;
  sim::Gpu gpu_;
};

TEST_F(RadixPartitionerTest, OutputIsPartitionOrderedAndStable) {
  const RadixPartitionSpec spec{.bits = 4, .shift = 3};
  RadixPartitioner partitioner(spec);

  std::vector<Key> keys(5000);
  Xoshiro256 rng(3);
  for (auto& k : keys) k = static_cast<Key>(rng.NextBounded(1 << 7));
  mem::Region src =
      space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "src");

  sim::KernelRun run{"p", {}};
  PartitionedKeys out = partitioner.Partition(gpu_, keys.data(), keys.size(),
                                              src.base, 100, &run);

  ASSERT_EQ(out.keys.size(), keys.size());
  ASSERT_EQ(out.offsets.size(), spec.num_partitions() + 1u);
  EXPECT_EQ(out.offsets.front(), 0u);
  EXPECT_EQ(out.offsets.back(), keys.size());

  // Each partition range contains exactly the keys of that partition, in
  // original (stable) order.
  for (uint32_t p = 0; p < spec.num_partitions(); ++p) {
    uint64_t prev_row = 0;
    bool first = true;
    for (uint64_t i = out.offsets[p]; i < out.offsets[p + 1]; ++i) {
      ASSERT_EQ(spec.PartitionOf(out.keys[i]), p);
      const uint64_t row = out.row_ids[i];
      ASSERT_GE(row, 100u);  // first_row_id offset applied
      ASSERT_EQ(keys[row - 100], out.keys[i]);
      if (!first) {
        ASSERT_GT(row, prev_row) << "stability violated";
      }
      prev_row = row;
      first = false;
    }
  }
}

TEST_F(RadixPartitionerTest, PreservesMultiset) {
  const RadixPartitionSpec spec{.bits = 6, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys(3000);
  Xoshiro256 rng(8);
  for (auto& k : keys) k = static_cast<Key>(rng.NextBounded(1 << 6));
  mem::Region src =
      space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "src");
  PartitionedKeys out = partitioner.Partition(gpu_, keys.data(), keys.size(),
                                              src.base, 0, nullptr);
  std::vector<Key> a = keys;
  std::vector<Key> b(out.keys.begin(), out.keys.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(RadixPartitionerTest, ChargesStageInForHostSources) {
  const RadixPartitionSpec spec{.bits = 4, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys(1024, 5);
  mem::Region host_src =
      space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "hs");
  mem::Region dev_src =
      space_.Reserve(keys.size() * 8, mem::MemKind::kDevice, "ds");

  sim::KernelRun host_run{"h", {}};
  partitioner.Partition(gpu_, keys.data(), keys.size(), host_src.base, 0,
                        &host_run);
  sim::KernelRun dev_run{"d", {}};
  partitioner.Partition(gpu_, keys.data(), keys.size(), dev_src.base, 0,
                        &dev_run);

  EXPECT_EQ(host_run.counters.host_seq_read_bytes, keys.size() * 8);
  EXPECT_EQ(dev_run.counters.host_seq_read_bytes, 0u);
  EXPECT_GT(host_run.counters.hbm_bytes(), 0u);
}

TEST_F(RadixPartitionerTest, PartitionedOutputLivesInDeviceMemory) {
  const RadixPartitionSpec spec{.bits = 2, .shift = 0};
  RadixPartitioner partitioner(spec);
  std::vector<Key> keys(64, 1);
  mem::Region src = space_.Reserve(keys.size() * 8, mem::MemKind::kHost, "s");
  PartitionedKeys out = partitioner.Partition(gpu_, keys.data(), keys.size(),
                                              src.base, 0, nullptr);
  EXPECT_EQ(space_.KindOf(out.tuple_addr(0)), mem::MemKind::kDevice);
  EXPECT_EQ(space_.KindOf(out.tuple_addr(keys.size() - 1)),
            mem::MemKind::kDevice);
  EXPECT_EQ(out.region.size, keys.size() * 16);
}

TEST_F(RadixPartitionerTest, ImprovesKeyLocality) {
  // The partitioner's purpose (paper Sec. 4.2): after partitioning,
  // consecutive keys fall into narrow key ranges.
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  DenseKeyColumn col(&space, uint64_t{1} << 24);
  RadixPartitionSpec spec = PlanPartitionBits(col);
  RadixPartitioner partitioner(spec);

  std::vector<Key> keys(1 << 14);
  Xoshiro256 rng(11);
  for (auto& k : keys) {
    k = col.key_at(rng.NextBounded(col.size()));
  }
  mem::Region src = space.Reserve(keys.size() * 8, mem::MemKind::kHost, "s");
  PartitionedKeys out =
      partitioner.Partition(gpu, keys.data(), keys.size(), src.base, 0,
                            nullptr);

  auto window_span = [](const std::vector<Key>& v, size_t i, size_t w) {
    Key lo = v[i];
    Key hi = v[i];
    for (size_t j = i; j < i + w; ++j) {
      lo = std::min(lo, v[j]);
      hi = std::max(hi, v[j]);
    }
    return hi - lo;
  };
  std::vector<Key> part(out.keys.begin(), out.keys.end());
  double before = 0;
  double after = 0;
  const size_t w = 32;
  for (size_t i = 0; i + w <= keys.size(); i += w) {
    before += static_cast<double>(window_span(keys, i, w));
    after += static_cast<double>(window_span(part, i, w));
  }
  // Warp-sized windows of partitioned keys span a far smaller key range.
  EXPECT_LT(after, before / 50);
}

}  // namespace
}  // namespace gpujoin::partition
