// Property and regression tests for dist::Topology: bounds-checked
// accessors abort with a named message instead of indexing out of
// range, and the peer-transfer cost model obeys the invariants the
// schedulers lean on (symmetry in the endpoints, monotonicity in the
// byte count, valid link ids) across every preset and device count.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dist/topology.h"

namespace gpujoin {
namespace {

const dist::TopologyKind kKinds[] = {
    dist::TopologyKind::kNvLink2,
    dist::TopologyKind::kPciE4,
    dist::TopologyKind::kNvSwitch,
};

// --------------------------------------------------------------------
// Bounds checks (regression: these used to index the vectors raw)

using TopologyDeathTest = ::testing::Test;

TEST(TopologyDeathTest, HostLinkRejectsOutOfRangeDevices) {
  auto topo = dist::Topology::Create(dist::TopologyKind::kNvLink2, 4);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  EXPECT_DEATH(topo->host_link(-1), "host_link: device must be in");
  EXPECT_DEATH(topo->host_link(4), "host_link: device must be in");
  EXPECT_DEATH(topo->host_link(100), "host_link: device must be in");
}

TEST(TopologyDeathTest, HostSharersRejectsOutOfRangeLinks) {
  auto topo = dist::Topology::Create(dist::TopologyKind::kPciE4, 2);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  const int links = static_cast<int>(topo->links().size());
  EXPECT_DEATH(topo->HostSharers(-1, 2), "HostSharers: link must be in");
  EXPECT_DEATH(topo->HostSharers(links, 2), "HostSharers: link must be in");
}

TEST(TopologyDeathTest, InRangeAccessorsStillWork) {
  for (auto kind : kKinds) {
    auto topo = dist::Topology::Create(kind, 3);
    ASSERT_TRUE(topo.ok()) << topo.status().ToString();
    for (int d = 0; d < 3; ++d) {
      const int link = topo->host_link(d);
      EXPECT_GE(link, 0);
      EXPECT_LT(link, static_cast<int>(topo->links().size()));
      EXPECT_GE(topo->HostSharers(link, 3), 1);
    }
  }
}

// --------------------------------------------------------------------
// PeerSeconds / PeerLinks properties, all presets x device counts 1..8

TEST(TopologyPropertyTest, PeerSecondsIsSymmetricInEndpoints) {
  for (auto kind : kKinds) {
    for (int devices = 1; devices <= 8; ++devices) {
      auto topo = dist::Topology::Create(kind, devices);
      ASSERT_TRUE(topo.ok()) << topo.status().ToString();
      for (int from = 0; from < devices; ++from) {
        for (int to = 0; to < devices; ++to) {
          for (uint64_t bytes : {uint64_t{0}, uint64_t{1} << 10,
                                 uint64_t{1} << 20, uint64_t{1} << 28}) {
            EXPECT_DOUBLE_EQ(topo->PeerSeconds(from, to, bytes),
                             topo->PeerSeconds(to, from, bytes))
                << dist::TopologyKindName(kind) << " x" << devices << " "
                << from << "<->" << to << " " << bytes << "B";
          }
        }
      }
    }
  }
}

TEST(TopologyPropertyTest, PeerSecondsIsMonotoneInBytes) {
  const uint64_t ladder[] = {0,        1,         64,        4096,
                             1 << 16,  1 << 20,   1 << 24,   1 << 28};
  for (auto kind : kKinds) {
    for (int devices = 1; devices <= 8; ++devices) {
      auto topo = dist::Topology::Create(kind, devices);
      ASSERT_TRUE(topo.ok()) << topo.status().ToString();
      for (int from = 0; from < devices; ++from) {
        for (int to = 0; to < devices; ++to) {
          double prev = -1;
          for (uint64_t bytes : ladder) {
            const double t = topo->PeerSeconds(from, to, bytes);
            EXPECT_GE(t, prev)
                << dist::TopologyKindName(kind) << " x" << devices << " "
                << from << "->" << to << " " << bytes << "B";
            prev = t;
          }
        }
      }
    }
  }
}

TEST(TopologyPropertyTest, PeerLinksAreValidIndices) {
  for (auto kind : kKinds) {
    for (int devices = 1; devices <= 8; ++devices) {
      auto topo = dist::Topology::Create(kind, devices);
      ASSERT_TRUE(topo.ok()) << topo.status().ToString();
      const int links = static_cast<int>(topo->links().size());
      for (int from = 0; from < devices; ++from) {
        for (int to = 0; to < devices; ++to) {
          const std::vector<int> path = topo->PeerLinks(from, to);
          if (from == to) {
            EXPECT_TRUE(path.empty());
            continue;
          }
          EXPECT_FALSE(path.empty())
              << dist::TopologyKindName(kind) << " " << from << "->" << to;
          for (int l : path) {
            EXPECT_GE(l, 0);
            EXPECT_LT(l, links)
                << dist::TopologyKindName(kind) << " x" << devices;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace gpujoin
