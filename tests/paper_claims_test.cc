// Executable versions of the paper's headline claims, at reduced scale so
// they run in seconds. Each test names the claim and the paper section it
// comes from. EXPERIMENTS.md records the full-scale numbers.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "util/units.h"

namespace gpujoin::core {
namespace {

ExperimentConfig BaseConfig(uint64_t r_tuples) {
  ExperimentConfig cfg;
  cfg.r_tuples = r_tuples;
  cfg.s_tuples = uint64_t{1} << 26;
  cfg.s_sample = uint64_t{1} << 15;
  return cfg;
}

double InljQps(ExperimentConfig cfg, index::IndexType type,
               InljConfig::PartitionMode mode) {
  cfg.index_type = type;
  cfg.inlj.mode = mode;
  auto exp = Experiment::Create(cfg);
  GPUJOIN_CHECK(exp.ok()) << exp.status().ToString();
  return (*exp)->RunInlj().value().qps();
}

// Sec. 3.3.1: "The INLJ does not outperform the hash join, even at the
// low selectivities incurred by a large R relation." Holds for all
// indexes in our reproduction too, except that the RadixSpline — whose
// dense-key lookups touch only ~1 uncached line — pulls level with the
// hash join at the largest R (documented deviation, EXPERIMENTS.md).
TEST(PaperClaims, NaiveInljLosesToHashJoin) {
  for (uint64_t r : {uint64_t{1} << 30, uint64_t{1} << 33}) {
    for (index::IndexType type :
         {index::IndexType::kBinarySearch, index::IndexType::kBTree,
          index::IndexType::kHarmonia}) {
      ExperimentConfig cfg = BaseConfig(r);
      cfg.index_type = type;
      cfg.inlj.mode = InljConfig::PartitionMode::kNone;
      auto exp = Experiment::Create(cfg);
      ASSERT_TRUE(exp.ok());
      const double inlj = (*exp)->RunInlj().value().qps();
      const double hj = (*exp)->RunHashJoin().value().qps();
      EXPECT_LT(inlj, hj)
          << index::IndexTypeName(type) << " at R = " << r;
    }
  }
}

// Sec. 3.3.1: "the INLJ experiences a sudden drop in throughput when R
// grows beyond 32 GiB" — and Sec. 6 quantifies the drop at up to 16.7x.
TEST(PaperClaims, SuddenDropAtTlbBoundary) {
  ExperimentConfig below = BaseConfig(uint64_t{1} << 31);   // 16 GiB
  ExperimentConfig above = BaseConfig(uint64_t{12} << 30);  // 96 GiB
  const double q_below = InljQps(below, index::IndexType::kBinarySearch,
                                 InljConfig::PartitionMode::kNone);
  const double q_above = InljQps(above, index::IndexType::kBinarySearch,
                                 InljConfig::PartitionMode::kNone);
  EXPECT_GT(q_below / q_above, 5.0);
}

// Sec. 4.3.1: "partitioning speeds up the INLJ by up to 10x over the
// hash join" (3-10x in the abstract). We require > 3x at ~100 GiB.
TEST(PaperClaims, PartitionedInljBeatsHashJoinAtScale) {
  ExperimentConfig cfg = BaseConfig(uint64_t{12} << 30);
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = InljConfig::PartitionMode::kWindowed;
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  const double inlj = (*exp)->RunInlj().value().qps();
  const double hj = (*exp)->RunHashJoin().value().qps();
  EXPECT_GT(inlj, 3.0 * hj);
  EXPECT_LT(inlj, 30.0 * hj);  // and not absurdly beyond the paper's band
}

// Sec. 4.3.1 ordering at 111 GiB: B+tree < binary search < Harmonia <
// RadixSpline (0.6 / 0.7 / 1.0 / 1.9 Q/s).
TEST(PaperClaims, PartitionedIndexOrdering) {
  // The ordering needs the full per-partition key density: use the
  // 111 GiB anchor point with a larger sample.
  ExperimentConfig cfg = BaseConfig(uint64_t{14898093260});
  cfg.s_sample = uint64_t{1} << 17;
  const double btree = InljQps(cfg, index::IndexType::kBTree,
                               InljConfig::PartitionMode::kWindowed);
  const double binary = InljQps(cfg, index::IndexType::kBinarySearch,
                                InljConfig::PartitionMode::kWindowed);
  const double harmonia = InljQps(cfg, index::IndexType::kHarmonia,
                                  InljConfig::PartitionMode::kWindowed);
  const double spline = InljQps(cfg, index::IndexType::kRadixSpline,
                                InljConfig::PartitionMode::kWindowed);
  // B+tree and binary search are neck-and-neck in the paper (0.6 vs
  // 0.7); our keys-only B+tree lands a whisker above binary search
  // instead of below (documented in EXPERIMENTS.md). Assert the band.
  EXPECT_GT(btree, binary * 0.7);
  EXPECT_LT(btree, binary * 1.3);
  EXPECT_LT(binary, harmonia);
  EXPECT_LT(btree, harmonia);
  EXPECT_LT(harmonia, spline);
  // Sec. 6: RadixSpline at least 1.1x over Harmonia.
  EXPECT_GT(spline / harmonia, 1.1);
}

// Sec. 5.2.1: "The throughput of all index structures remains within 2x"
// across window sizes — we allow the simulator's documented 3x at the
// extreme 2 MiB point and require the paper's recommended 4-64 MiB range
// to be within 1.6x of the best.
TEST(PaperClaims, WindowSizeIsForgiving) {
  ExperimentConfig cfg = BaseConfig(uint64_t{12} << 30);
  cfg.index_type = index::IndexType::kHarmonia;
  cfg.inlj.mode = InljConfig::PartitionMode::kWindowed;

  double best = 0;
  double in_range_worst = 1e30;
  for (int log_w = 19; log_w <= 26; ++log_w) {
    cfg.inlj.window_tuples = uint64_t{1} << log_w;
    auto exp = Experiment::Create(cfg);
    ASSERT_TRUE(exp.ok());
    const double qps = (*exp)->RunInlj().value().qps();
    best = std::max(best, qps);
    if (log_w >= 19 && log_w <= 23) {  // 4-64 MiB
      in_range_worst = std::min(in_range_worst, qps);
    }
  }
  EXPECT_GT(in_range_worst, best / 2.5);
}

// Sec. 5.2.2: "Throughput increases with Zipf exponents higher than 1.0."
TEST(PaperClaims, SkewHelpsTheInlj) {
  ExperimentConfig uniform = BaseConfig(uint64_t{12} << 30);
  const double q_uniform = InljQps(uniform, index::IndexType::kHarmonia,
                                   InljConfig::PartitionMode::kWindowed);
  ExperimentConfig skew = uniform;
  skew.zipf_exponent = 1.5;
  const double q_skew = InljQps(skew, index::IndexType::kHarmonia,
                                InljConfig::PartitionMode::kWindowed);
  EXPECT_GT(q_skew, 1.5 * q_uniform);
}

// Sec. 5.2.3: the INLJ/hash-join crossover happens at a larger R (lower
// selectivity) on PCI-e than on NVLink.
TEST(PaperClaims, CrossoverMovesRightOnPcie) {
  auto crossover = [](const sim::PlatformSpec& platform) {
    for (uint64_t r : {uint64_t{3} << 28, uint64_t{1} << 30,
                       uint64_t{3} << 29, uint64_t{1} << 31,
                       uint64_t{3} << 30, uint64_t{1} << 32,
                       uint64_t{3} << 31, uint64_t{1} << 33}) {
      ExperimentConfig cfg = BaseConfig(r);
      cfg.platform = platform;
      cfg.index_type = index::IndexType::kRadixSpline;
      cfg.inlj.mode = InljConfig::PartitionMode::kWindowed;
      auto exp = Experiment::Create(cfg);
      if (!exp.ok()) break;
      const double inlj = (*exp)->RunInlj().value().qps();
      const double hj = (*exp)->RunHashJoin().value().qps();
      if (inlj > hj) return r;
      (void)r;
    }
    return uint64_t{0};
  };
  const uint64_t nvlink = crossover(sim::V100NvLink2());
  const uint64_t pcie = crossover(sim::A100PciE4());
  ASSERT_GT(nvlink, 0u);
  ASSERT_GT(pcie, 0u);
  EXPECT_GT(pcie, nvlink);
}

// Sec. 6: "the index reduces the transfer volume" — substantially, at
// large R and low selectivity.
TEST(PaperClaims, IndexReducesTransferVolume) {
  ExperimentConfig cfg = BaseConfig(uint64_t{12} << 30);
  cfg.s_sample = uint64_t{1} << 16;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = InljConfig::PartitionMode::kWindowed;
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  sim::RunResult inlj = (*exp)->RunInlj().value();
  sim::RunResult hj = (*exp)->RunHashJoin().value();
  EXPECT_GT(static_cast<double>(hj.counters.interconnect_bytes()) /
                static_cast<double>(inlj.counters.interconnect_bytes()),
            3.0);
}

// Sec. 3.2 memory-capacity constraint: the B+tree cannot index the
// largest R (120 GiB), while binary search and RadixSpline can.
TEST(PaperClaims, TreeIndexesHitTheCapacityWall) {
  // At 120 GiB only the slim indexes fit...
  ExperimentConfig cfg = BaseConfig(uint64_t{16106127360});  // 120 GiB
  cfg.index_type = index::IndexType::kBTree;
  EXPECT_FALSE(Experiment::Create(cfg).ok());
  cfg.index_type = index::IndexType::kHarmonia;
  EXPECT_FALSE(Experiment::Create(cfg).ok());
  cfg.index_type = index::IndexType::kRadixSpline;
  EXPECT_TRUE(Experiment::Create(cfg).ok());
  cfg.index_type = index::IndexType::kBinarySearch;
  EXPECT_TRUE(Experiment::Create(cfg).ok());
  // ...while at the paper's 111 GiB anchor all four still fit.
  ExperimentConfig anchor = BaseConfig(uint64_t{14898093260});
  anchor.index_type = index::IndexType::kBTree;
  EXPECT_TRUE(Experiment::Create(anchor).ok());
  anchor.index_type = index::IndexType::kHarmonia;
  EXPECT_TRUE(Experiment::Create(anchor).ok());
}

}  // namespace
}  // namespace gpujoin::core
