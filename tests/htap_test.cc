// HTAP ingest-path tests: the delta/hybrid index reconciliation against
// rebuilt-from-scratch oracles across the merge lifecycle, the ingest
// coordinator's log-replay differential, bit-identity of ingest-free
// serving, merge/swap determinism across backend thread counts, and the
// shed path that replaced the old budget CHECK-abort.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/experiment.h"
#include "dist/shard_scheduler.h"
#include "index/delta_index.h"
#include "index/hybrid_index.h"
#include "mem/address_space.h"
#include "serve/ingest.h"
#include "serve/server.h"
#include "sim/cost_model.h"
#include "sim/specs.h"
#include "workload/key_column.h"

namespace gpujoin {
namespace {

using index::DeltaIndex;
using index::HybridIndex;
using serve::IngestCoordinator;
using workload::Key;

TEST(DeltaIndexTest, TombstonesShadowAndCountersTrack) {
  mem::AddressSpace space;
  DeltaIndex::Options opts;
  opts.tree.node_bytes = 256;
  auto delta = DeltaIndex::Create(&space, opts).value();

  EXPECT_FALSE(delta->Find(10).has_value());
  ASSERT_TRUE(delta->Upsert(10, 111).ok());
  ASSERT_TRUE(delta->Upsert(20, 222).ok());
  ASSERT_TRUE(delta->Remove(30).ok());
  EXPECT_EQ(delta->entries(), 3u);
  EXPECT_EQ(delta->live(), 2u);
  EXPECT_EQ(delta->tombstones(), 1u);

  auto e = delta->Find(10);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->tombstone);
  EXPECT_EQ(e->value, 111u);
  e = delta->Find(30);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->tombstone);

  // Delete over a live entry kills it; upsert over a tombstone
  // resurrects.
  ASSERT_TRUE(delta->Remove(10).ok());
  EXPECT_EQ(delta->live(), 1u);
  EXPECT_EQ(delta->tombstones(), 2u);
  ASSERT_TRUE(delta->Upsert(30, 333).ok());
  EXPECT_EQ(delta->live(), 2u);
  EXPECT_EQ(delta->tombstones(), 1u);

  // Snapshot is sorted with tags intact.
  const auto snap = delta->Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].key, 10);
  EXPECT_TRUE(snap[0].value & DeltaIndex::kTombstoneBit);
  EXPECT_EQ(snap[1].key, 20);
  EXPECT_EQ(snap[1].value, 222u);
  EXPECT_EQ(snap[2].key, 30);
  EXPECT_EQ(snap[2].value, 333u);

  delta->Clear();
  EXPECT_EQ(delta->entries(), 0u);
  EXPECT_EQ(delta->live(), 0u);
  EXPECT_EQ(delta->tombstones(), 0u);
}

// The hybrid's reconciled read equals a from-scratch oracle (std::map
// rebuilt from base + every applied op) at every stage of the merge
// lifecycle: before a merge, mid-merge (frozen layer live), after the
// epoch swap, and across a second cycle.
TEST(HybridIndexTest, ReconciledReadsMatchRebuiltOracleAcrossMerges) {
  mem::AddressSpace space;
  const auto keys = workload::GenerateSortedUniqueKeys(2000, 3);
  workload::MaterializedKeyColumn base(&space, keys);

  HybridIndex::Options opts;
  opts.delta.tree.node_bytes = 256;
  auto hybrid = HybridIndex::Create(&space, &base, opts).value();

  // Oracle: the full expected state, rebuilt from scratch on every
  // mutation (base key -> position, overridden by the op stream).
  std::map<Key, uint64_t> oracle;
  for (size_t i = 0; i < keys.size(); ++i) {
    oracle[keys[i]] = static_cast<uint64_t>(i);
  }
  std::set<Key> touched;  // keys any op ever touched

  auto upsert = [&](Key k, uint64_t v) {
    ASSERT_TRUE(hybrid->Upsert(k, v).ok());
    oracle[k] = v;
    touched.insert(k);
  };
  auto remove = [&](Key k) {
    ASSERT_TRUE(hybrid->Remove(k).ok());
    oracle.erase(k);
    touched.insert(k);
  };
  auto check = [&]() {
    for (size_t i = 0; i < keys.size(); i += 7) {
      const Key k = keys[i];
      const auto got = hybrid->Find(k);
      const auto it = oracle.find(k);
      ASSERT_EQ(got.has_value(), it != oracle.end()) << k;
      if (got.has_value()) { ASSERT_EQ(*got, it->second) << k; }
    }
    for (Key k : touched) {
      const auto got = hybrid->Find(k);
      const auto it = oracle.find(k);
      ASSERT_EQ(got.has_value(), it != oracle.end()) << k;
      if (got.has_value()) { ASSERT_EQ(*got, it->second) << k; }
    }
    // Keys beyond every insert stay absent.
    EXPECT_FALSE(hybrid->Find(base.max_key() + 1000000).has_value());
  };

  // Phase 1: mixed updates/deletes/appends into the active delta.
  const Key fresh = base.max_key() + 1;
  for (int i = 0; i < 300; ++i) upsert(keys[(i * 13) % keys.size()], 5000u + i);
  for (int i = 0; i < 100; ++i) remove(keys[(i * 29) % keys.size()]);
  for (int i = 0; i < 150; ++i) upsert(fresh + i, 9000u + i);
  check();

  // Mid-merge: the frozen layer must keep serving every pre-merge write
  // while new writes land in the (empty) new active tree.
  const HybridIndex::MergeWork work = hybrid->BeginMerge();
  EXPECT_GT(work.frozen_entries, 0u);
  EXPECT_TRUE(hybrid->merge_in_progress());
  check();
  for (int i = 0; i < 80; ++i) upsert(keys[(i * 31) % keys.size()], 7000u + i);
  remove(fresh + 3);  // delete a delta-inserted key across the freeze
  check();

  // Post-swap: frozen folded into the overlay, epoch bumped, reads
  // unchanged.
  hybrid->CompleteMerge();
  EXPECT_EQ(hybrid->epoch(), 1u);
  EXPECT_FALSE(hybrid->merge_in_progress());
  EXPECT_GT(hybrid->overlay_entries(), 0u);
  check();

  // Second cycle, draining everything: reads still equal the oracle.
  for (int i = 0; i < 60; ++i) remove(fresh + i);
  hybrid->BeginMerge();
  hybrid->CompleteMerge();
  EXPECT_EQ(hybrid->epoch(), 2u);
  check();

  // Tombstone compaction: deleted *fresh* keys (absent from the base)
  // need no shadow once merged, so the overlay holds no entry for them.
  const uint64_t overlay_after = hybrid->overlay_entries();
  uint64_t overlay_live_or_base_shadow = 0;
  for (Key k : touched) {
    if (hybrid->Find(k).has_value() ||
        base.LowerBound(k) < base.size()) {
      ++overlay_live_or_base_shadow;
    }
  }
  EXPECT_LE(overlay_after, overlay_live_or_base_shadow + keys.size());
}

sim::CostModel TestCostModel() { return sim::CostModel(sim::V100NvLink2()); }

IngestCoordinator::Config SmallIngestConfig(double rate) {
  IngestCoordinator::Config cfg;
  cfg.ops.model = serve::ArrivalModel::kPoisson;
  cfg.ops.rate = rate;
  cfg.ops.seed = 17;
  cfg.seed = 23;
  cfg.merge_threshold = 256;
  cfg.hybrid.delta.tree.node_bytes = 256;
  cfg.record_log = true;
  return cfg;
}

// The coordinator's reconciled reads equal a from-scratch replay of its
// applied-op log over the base — the tentpole's differential oracle.
TEST(IngestCoordinatorTest, ReadsMatchLogReplayOracle) {
  mem::AddressSpace space;
  const auto keys = workload::GenerateSortedUniqueKeys(4096, 5);
  workload::MaterializedKeyColumn base(&space, keys);
  const sim::CostModel cost = TestCostModel();

  const Key split = keys[keys.size() / 2];
  auto coord = IngestCoordinator::Create(
                   SmallIngestConfig(2e5), &space, &base, &cost,
                   /*num_shards=*/2,
                   [split](Key k) { return k < split ? 0 : 1; })
                   .value();
  ASSERT_TRUE(coord->active());

  // Drive the stream in uneven steps (mimicking batch closes) and record
  // staleness along the way.
  double t = 0;
  for (int step = 0; step < 40; ++step) {
    t += (step % 3 == 0) ? 5e-4 : 2e-3;
    coord->AdvanceTo(t);
    coord->RecordBatchStaleness(t);
  }
  coord->Finish(t + 1e-3);

  const obs::IngestStats& st = coord->stats();
  EXPECT_GT(st.ops_applied, 1000u);
  EXPECT_GT(st.inserts, 0u);
  EXPECT_GT(st.updates, 0u);
  EXPECT_GT(st.deletes, 0u);
  EXPECT_GT(st.merges, 0u);
  EXPECT_EQ(st.swap_stalls, st.merges);
  EXPECT_LE(st.merges, st.merges_started);
  EXPECT_GT(st.merge_seconds, 0);
  EXPECT_GT(st.staleness.count(), 0u);
  EXPECT_GE(st.staleness.Quantile(0.99), 0);
  EXPECT_GT(st.delta_bytes_peak, 0u);
  EXPECT_EQ(st.ops_applied, coord->log().size());

  // Replay the log in application order over the base.
  std::map<Key, uint64_t> oracle;
  for (size_t i = 0; i < keys.size(); ++i) {
    oracle[keys[i]] = static_cast<uint64_t>(i);
  }
  std::set<Key> op_keys;
  for (const IngestCoordinator::Op& op : coord->log()) {
    op_keys.insert(op.key);
    if (op.kind == IngestCoordinator::Op::Kind::kDelete) {
      oracle.erase(op.key);
    } else {
      oracle[op.key] = op.value;
    }
  }

  // Every touched key and a sweep of base keys read back exactly the
  // replayed state; untouched keys past the append frontier stay absent.
  for (Key k : op_keys) {
    const auto got = coord->Find(k);
    const auto it = oracle.find(k);
    ASSERT_EQ(got.has_value(), it != oracle.end()) << k;
    if (got.has_value()) { ASSERT_EQ(*got, it->second) << k; }
  }
  for (size_t i = 0; i < keys.size(); i += 3) {
    const Key k = keys[i];
    const auto got = coord->Find(k);
    const auto it = oracle.find(k);
    ASSERT_EQ(got.has_value(), it != oracle.end()) << k;
    if (got.has_value()) { ASSERT_EQ(*got, it->second) << k; }
  }
  EXPECT_FALSE(coord->Find(base.max_key() + 10000000).has_value());
}

core::ExperimentConfig HtapServeConfig() {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 22;
  cfg.s_tuples = uint64_t{1} << 18;
  cfg.s_sample = uint64_t{1} << 15;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  return cfg;
}

serve::ServeConfig SmallServeConfig() {
  serve::ServeConfig sc;
  sc.arrival.model = serve::ArrivalModel::kDeterministic;
  sc.arrival.rate = 1e5;
  sc.requests = 500;
  sc.tuples_per_request = 512;
  sc.batch.batch_tuples = 4 * sc.tuples_per_request;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.max_backlog_tuples = 0;
  return sc;
}

void ExpectReportsIdentical(const serve::ServeReport& a,
                            const serve::ServeReport& b) {
  EXPECT_EQ(a.counters.requests_admitted, b.counters.requests_admitted);
  EXPECT_EQ(a.counters.requests_shed, b.counters.requests_shed);
  EXPECT_EQ(a.counters.batches, b.counters.batches);
  EXPECT_EQ(a.counters.tuples_served, b.counters.tuples_served);
  EXPECT_EQ(a.counters.deadline_batches, b.counters.deadline_batches);
  EXPECT_EQ(a.counters.size_batches, b.counters.size_batches);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.queue_seconds_total, b.queue_seconds_total);
  EXPECT_EQ(a.service_seconds_total, b.service_seconds_total);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
}

// Acceptance: an attached coordinator with ingest rate 0 leaves the
// serving run bit-identical to one with no coordinator at all.
TEST(IngestCoordinatorTest, RateZeroKeepsServingBitIdentical) {
  const serve::ServeConfig sc = SmallServeConfig();

  auto plain_exp = core::Experiment::Create(HtapServeConfig());
  ASSERT_TRUE(plain_exp.ok());
  (*plain_exp)->ResetForRun();
  serve::RequestServer plain((*plain_exp)->gpu(), (*plain_exp)->index(),
                             (*plain_exp)->s(), HtapServeConfig().inlj, sc);
  const serve::ServeReport plain_r = plain.Run().value();

  auto exp = core::Experiment::Create(HtapServeConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();
  mem::AddressSpace ingest_space;
  const sim::CostModel cost = TestCostModel();
  auto coord = IngestCoordinator::Create(
                   SmallIngestConfig(/*rate=*/0), &ingest_space,
                   &(*exp)->r(), &cost, 1, [](Key) { return 0; })
                   .value();
  EXPECT_FALSE(coord->active());
  serve::RequestServer with((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                            HtapServeConfig().inlj, sc);
  with.AttachIngest(coord.get());
  const serve::ServeReport with_r = with.Run().value();

  ExpectReportsIdentical(plain_r, with_r);
  EXPECT_FALSE(coord->stats().any());
}

// Live ingest under serving: every admitted request completes across all
// epoch swaps (zero drops), and the whole run — serving report and
// ingest stats — is deterministic at any backend thread count.
TEST(IngestCoordinatorTest, MergeSwapDeterministicAcrossThreads) {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 20;
  cfg.s_tuples = uint64_t{1} << 22;
  cfg.s_sample = uint64_t{1} << 14;
  cfg.seed = 11;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 20;

  serve::ServeConfig sc = SmallServeConfig();
  sc.requests = 300;

  auto run_once = [&](int threads) {
    dist::ShardConfig dcfg;
    dcfg.num_shards = 2;
    dcfg.threads = threads;
    auto engine = dist::ShardScheduler::Create(cfg, dcfg).value();

    mem::AddressSpace ingest_space;
    const sim::CostModel cost = TestCostModel();
    const dist::ShardPlan* plan = &engine->plan();
    auto coord = IngestCoordinator::Create(
                     SmallIngestConfig(/*rate=*/5e5), &ingest_space,
                     &engine->base_r(), &cost, dcfg.num_shards,
                     [plan](Key k) { return plan->OwnerOf(k); })
                     .value();
    serve::RequestServer server(*engine, sc);
    server.AttachIngest(coord.get());
    const serve::ServeReport r = server.Run().value();

    // Zero admitted-request drops across every epoch swap.
    EXPECT_EQ(r.counters.requests_shed, 0u);
    EXPECT_EQ(r.latency.count(), r.counters.requests_admitted);
    EXPECT_GT(coord->stats().merges, 0u);
    return std::make_pair(r, coord->stats());
  };

  const auto [r1, s1] = run_once(1);
  const auto [r4, s4] = run_once(4);
  ExpectReportsIdentical(r1, r4);
  EXPECT_EQ(s1.ops_applied, s4.ops_applied);
  EXPECT_EQ(s1.inserts, s4.inserts);
  EXPECT_EQ(s1.updates, s4.updates);
  EXPECT_EQ(s1.deletes, s4.deletes);
  EXPECT_EQ(s1.ops_shed, s4.ops_shed);
  EXPECT_EQ(s1.merges, s4.merges);
  EXPECT_EQ(s1.merges_started, s4.merges_started);
  EXPECT_EQ(s1.swap_stalls, s4.swap_stalls);
  EXPECT_EQ(s1.epochs, s4.epochs);
  EXPECT_EQ(s1.merge_seconds, s4.merge_seconds);
  EXPECT_EQ(s1.swap_stall_seconds, s4.swap_stall_seconds);
  EXPECT_EQ(s1.delta_entries, s4.delta_entries);
  EXPECT_EQ(s1.delta_bytes_peak, s4.delta_bytes_peak);
  EXPECT_EQ(s1.overlay_entries, s4.overlay_entries);
  EXPECT_EQ(s1.staleness.count(), s4.staleness.count());
  EXPECT_EQ(s1.staleness.sum(), s4.staleness.sum());
}

// The path that used to CHECK-abort: a full delta with a slow merge in
// flight sheds ops (counted) and the run keeps going — no abort, and
// reads stay correct for everything that was applied.
TEST(IngestCoordinatorTest, FullDeltaShedsInsteadOfAborting) {
  mem::AddressSpace space;
  const auto keys = workload::GenerateSortedUniqueKeys(1024, 9);
  workload::MaterializedKeyColumn base(&space, keys);
  const sim::CostModel cost = TestCostModel();

  IngestCoordinator::Config cfg = SmallIngestConfig(/*rate=*/1e6);
  cfg.hybrid.delta.tree.max_nodes = index::DynamicBTree::kMinMaxNodes;
  cfg.merge_threshold = uint64_t{1} << 30;  // only emergency merges fire
  // A huge simulated rebuild keeps each merge in flight for a long
  // stretch of the op stream, so the active delta refills and sheds.
  cfg.hybrid.merge_scan_bytes = uint64_t{1} << 34;

  auto coord = IngestCoordinator::Create(cfg, &space, &base, &cost, 1,
                                         [](Key) { return 0; })
                   .value();
  for (int step = 1; step <= 50; ++step) {
    coord->AdvanceTo(step * 1e-3);
  }
  coord->Finish(0.051);

  const obs::IngestStats& st = coord->stats();
  EXPECT_GT(st.ops_shed, 0u);
  EXPECT_GT(st.merges_started, 0u);
  EXPECT_GT(st.ops_applied, 0u);

  // Applied ops still read back correctly (replay only the applied log).
  std::map<Key, uint64_t> oracle;
  for (size_t i = 0; i < keys.size(); ++i) {
    oracle[keys[i]] = static_cast<uint64_t>(i);
  }
  for (const IngestCoordinator::Op& op : coord->log()) {
    if (op.kind == IngestCoordinator::Op::Kind::kDelete) {
      oracle.erase(op.key);
    } else {
      oracle[op.key] = op.value;
    }
  }
  for (const IngestCoordinator::Op& op : coord->log()) {
    const auto got = coord->Find(op.key);
    const auto it = oracle.find(op.key);
    ASSERT_EQ(got.has_value(), it != oracle.end()) << op.key;
    if (got.has_value()) { ASSERT_EQ(*got, it->second) << op.key; }
  }
}

}  // namespace
}  // namespace gpujoin
