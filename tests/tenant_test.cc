// Multi-tenant serving tests: token-bucket admission, deficit-weighted-
// fair scheduling (one flooding tenant must not inflate the other tiers'
// p99), the hot-key result cache (deterministic eviction, match-set
// identity against the uncached path), and fixed-seed reproducibility of
// the whole tenant loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/experiment.h"
#include "core/match.h"
#include "mem/address_space.h"
#include "obs/tenant.h"
#include "serve/arrival.h"
#include "serve/cache.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "sim/gpu.h"
#include "sim/specs.h"

namespace gpujoin::serve {
namespace {

// Deterministic synthetic backend: service time is linear in tuples and
// the match set is a pure function of the slice, so cache-on and
// cache-off runs must reproduce identical matches.
class FakeBackend final : public WindowBackend {
 public:
  FakeBackend(uint64_t sample, double seconds_per_tuple)
      : sample_(sample), seconds_per_tuple_(seconds_per_tuple) {}

  uint64_t sample_size() const override { return sample_; }

  Result<double> ServiceSlice(uint64_t begin, uint64_t count,
                              uint64_t ordinal) override {
    return ServiceSliceCollect(begin, count, ordinal, nullptr);
  }

  Result<double> ServiceSliceCollect(
      uint64_t begin, uint64_t count, uint64_t /*ordinal*/,
      std::vector<core::JoinMatch>* collect) override {
    if (collect != nullptr) {
      for (uint64_t i = 0; i < count; i += 8) {
        collect->push_back(core::JoinMatch{begin + i, 2 * (begin + i) + 1});
      }
    }
    return static_cast<double>(count) * seconds_per_tuple_;
  }

 private:
  uint64_t sample_;
  double seconds_per_tuple_;
};

TenantConfig TwoTierConfig() {
  TenantConfig tc;
  tc.num_tenants = 8;
  tc.tiers = {TenantTier{"gold", 4.0, 0, 0}, TenantTier{"bronze", 1.0, 0, 0}};
  tc.tenant_zipf = 0;  // uniform: every tenant offers the same load
  tc.seed = 99;
  return tc;
}

ServeConfig TenantServeConfig() {
  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  // 3% of the FakeBackend's capacity: the rogue-free cells close most
  // batches on the deadline, so their p99 is pinned near the deadline and
  // the isolation ratio below is not load-sensitive.
  sc.arrival.rate = 5000;
  sc.requests = 20000;
  sc.tuples_per_request = 64;
  sc.batch.batch_tuples = 1024;  // 16 requests per batch
  sc.batch.min_batch_tuples = 1024;
  sc.batch.adaptive = false;
  sc.batch.deadline_seconds = 1e-3;
  sc.max_backlog_tuples = 0;  // shed only at the token buckets
  sc.tenants = TwoTierConfig();
  return sc;
}

TEST(TenantConfig, ValidationNamesTheOffendingField) {
  const struct {
    void (*set)(TenantConfig&);
    const char* names;
  } cases[] = {
      {[](TenantConfig& c) { c.tiers.clear(); }, "tiers"},
      {[](TenantConfig& c) { c.tiers[1].name = "gold"; }, "unique"},
      {[](TenantConfig& c) { c.tiers[0].name = ""; }, "name"},
      {[](TenantConfig& c) { c.tiers[0].weight = 0; }, "weight"},
      {[](TenantConfig& c) { c.tiers[1].rate_tuples_per_sec = -1; },
       "rate_tuples_per_sec"},
      {[](TenantConfig& c) { c.tenant_zipf = -0.5; }, "tenant_zipf"},
      {[](TenantConfig& c) { c.key_zipf = NAN; }, "key_zipf"},
      {[](TenantConfig& c) { c.rogue_extra = -2; }, "rogue_extra"},
      {[](TenantConfig& c) {
         c.rogue_extra = 1;
         c.rogue_tenant = 8;
       },
       "rogue_tenant"},
  };
  for (const auto& c : cases) {
    TenantConfig tc = TwoTierConfig();
    c.set(tc);
    Status st = tc.Validate();
    ASSERT_FALSE(st.ok()) << c.names;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << c.names;
    EXPECT_NE(st.ToString().find(c.names), std::string::npos)
        << st.ToString();
  }
  // Disabled tenancy validates vacuously, whatever the tier garbage.
  TenantConfig off;
  off.num_tenants = 0;
  EXPECT_TRUE(off.Validate().ok());
}

TEST(ResultCacheConfig, ValidationNamesTheOffendingField) {
  ResultCacheConfig cfg;
  cfg.reserved_bytes = 1 << 20;
  cfg.probe_depth_lines = 0;
  Status st = cfg.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("probe_depth_lines"), std::string::npos);

  cfg = ResultCacheConfig{};
  cfg.reserved_bytes = 8;  // smaller than one entry's overhead
  st = cfg.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("reserved_bytes"), std::string::npos);

  // Disabled cache (0 bytes) validates vacuously.
  EXPECT_TRUE(ResultCacheConfig{}.Validate().ok());
}

TEST(TenantRouter, TokenBucketEnforcesTierRate) {
  TenantConfig tc;
  tc.num_tenants = 1;
  tc.tiers = {TenantTier{"only", 1.0, /*rate=*/640, /*burst=*/64}};
  auto router = TenantRouter::Create(tc, /*tuples_per_request=*/64).value();

  TenantRouter::Draw draw;
  draw.tenant = 0;
  draw.tier = 0;
  // The bucket starts full with one request's worth of tuples.
  EXPECT_TRUE(router->Admit(draw, 0.0, 64));
  EXPECT_FALSE(router->Admit(draw, 0.0, 64));
  // Half a refill interval is not enough for a whole request.
  EXPECT_FALSE(router->Admit(draw, 0.05, 64));
  // A full interval (64 tuples / 640 per sec = 0.1 s) is.
  EXPECT_TRUE(router->Admit(draw, 0.1, 64));

  // Unlimited tier (rate 0) never sheds.
  TenantConfig open = tc;
  open.tiers[0].rate_tuples_per_sec = 0;
  auto free_router = TenantRouter::Create(open, 64).value();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(free_router->Admit(draw, 0.0, 64));
  }
}

TEST(TenantRouter, DeficitRoundRobinHonorsTierWeights) {
  // Tenant 0 lands in "gold" (weight 4), tenant 1 in "bronze" (weight 1).
  TenantConfig tc = TwoTierConfig();
  tc.num_tenants = 2;
  const uint64_t tpr = 64;
  auto router = TenantRouter::Create(tc, tpr).value();

  TenantRouter::Draw gold{0, 0, 0, false};
  TenantRouter::Draw bronze{1, 1, 0, false};
  for (uint64_t id = 0; id < 100; ++id) {
    router->Enqueue(id % 2 == 0 ? gold : bronze, id);
  }

  // One DRR pass over 20 requests: gold drains 4 per visit, bronze 1.
  std::vector<uint64_t> popped;
  router->PopBatch(20 * tpr, &popped);
  ASSERT_EQ(popped.size(), 20u);
  const uint64_t gold_popped = static_cast<uint64_t>(
      std::count_if(popped.begin(), popped.end(),
                    [](uint64_t id) { return id % 2 == 0; }));
  EXPECT_EQ(gold_popped, 16u);
  EXPECT_EQ(popped.size() - gold_popped, 4u);

  // The first round serves gold its full quantum before bronze's turn.
  EXPECT_EQ(popped[0] % 2, 0u);
  EXPECT_EQ(popped[3] % 2, 0u);
  EXPECT_EQ(popped[4] % 2, 1u);
}

TEST(RequestServer, TenantModeFixedSeedIsDeterministic) {
  ServeConfig sc = TenantServeConfig();
  sc.requests = 6000;
  sc.tenants.tenant_zipf = 1.75;
  sc.tenants.rogue_extra = 2;
  sc.tenants.rogue_tenant = 3;
  sc.tenants.key_universe = 128;
  sc.collect_matches = true;
  for (TenantTier& tier : sc.tenants.tiers) {
    tier.rate_tuples_per_sec = 64 * 2000;
  }

  auto run_once = [&](ServeReport* out) {
    mem::AddressSpace space;
    sim::Gpu gpu(&space, sim::V100NvLink2());
    ResultCacheConfig cc;
    cc.reserved_bytes = 64 << 10;
    auto cache = ResultCache::Create(cc, gpu).value();
    FakeBackend backend(128 * 64, 1e-7);
    RequestServer server(backend, sc);
    server.AttachCache(cache.get());
    *out = server.Run().value();
  };

  ServeReport a, b;
  run_once(&a);
  run_once(&b);

  // Bit-identical accounting, JSON and match sets across repeats.
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.counters.requests_admitted, b.counters.requests_admitted);
  EXPECT_EQ(a.counters.requests_shed, b.counters.requests_shed);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(obs::TenantsJson(a.tenants), obs::TenantsJson(b.tenants));
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_GT(a.tenants.cache.hits, 0u);
  EXPECT_GT(a.tenants.rogue_requests, 0u);
}

TEST(RequestServer, FairSchedulerIsolatesTiersFromARogueTenant) {
  // Three cells of the misbehaving-tenant experiment. The rogue bronze
  // tenant floods 8x the aggregate rate; the gold tier's p99 must stay
  // within 1.2x of its rogue-free value under weighted-fair scheduling
  // with token buckets, while FIFO without buckets lets the flood wreck
  // it.
  auto gold_p99 = [](const ServeReport& r) {
    for (const obs::TenantTierStats& t : r.tenants.tiers) {
      if (t.tier == "gold") return t.latency.Quantile(0.99);
    }
    return -1.0;
  };
  auto run_cell = [&](TenantScheduler sched, bool buckets,
                      double rogue_extra) {
    ServeConfig sc = TenantServeConfig();
    // A deadline an order of magnitude over one batch's service time:
    // the protected tier's p99 is deadline-dominated in the rogue-free
    // run, so any queueing the flood leaks past the buckets shows up in
    // the ratio instead of hiding in service-time noise.
    sc.batch.deadline_seconds = 2e-3;
    sc.tenants.scheduler = sched;
    sc.tenants.rogue_extra = rogue_extra;
    sc.tenants.rogue_tenant = 1;  // a bronze tenant misbehaves
    if (buckets) {
      for (TenantTier& tier : sc.tenants.tiers) {
        // 2x each tenant's fair share of the offered tuples, with a
        // burst allowance of a few requests: organic clustering passes,
        // a sustained flood is pinned to the refill rate.
        tier.rate_tuples_per_sec =
            2.0 * sc.arrival.rate / 8 * sc.tuples_per_request;
        tier.burst_tuples = 8 * sc.tuples_per_request;
      }
    }
    // 2e6 tuples/s capacity: the base load is ~16% utilization and the
    // 8x rogue flood is ~1.4x capacity, so unmetered FIFO must melt.
    FakeBackend backend(1 << 20, 5e-7);
    RequestServer server(backend, sc);
    return server.Run().value();
  };

  const ServeReport isolated =
      run_cell(TenantScheduler::kDeficitWeightedFair, true, 0);
  const ServeReport fair =
      run_cell(TenantScheduler::kDeficitWeightedFair, true, 8);
  const ServeReport fifo = run_cell(TenantScheduler::kFifo, false, 8);

  const double p99_isolated = gold_p99(isolated);
  const double p99_fair = gold_p99(fair);
  const double p99_fifo = gold_p99(fifo);
  ASSERT_GT(p99_isolated, 0);
  ASSERT_GT(p99_fair, 0);
  ASSERT_GT(p99_fifo, 0);

  // The buckets shed the flood, so the protected tier barely notices...
  EXPECT_LE(p99_fair, 1.2 * p99_isolated);
  EXPECT_GT(fair.tenants.tiers[1].shed_rate_limit, 0u);
  // ...while unmetered FIFO queues everyone behind the rogue's backlog.
  EXPECT_GT(p99_fifo, 5 * p99_fair);
}

TEST(RequestServer, CachedMatchSetsAreIdenticalToUncached) {
  // Real windowed-INLJ backend: the cache must replay bit-identical
  // match sets, not approximations, and save simulated service time on
  // the Zipf-hot keys.
  core::ExperimentConfig ecfg;
  ecfg.r_tuples = uint64_t{1} << 20;
  ecfg.s_tuples = uint64_t{1} << 17;
  ecfg.s_sample = uint64_t{1} << 15;
  ecfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;

  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  sc.arrival.rate = 20000;
  sc.requests = 400;
  sc.tuples_per_request = 512;
  sc.batch.batch_tuples = 4 * 512;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.max_backlog_tuples = 0;
  sc.collect_matches = true;
  sc.tenants = TwoTierConfig();
  sc.tenants.key_universe = 64;  // 64 * 512 = the whole probe sample
  sc.tenants.key_zipf = 1.75;

  auto run_cell = [&](uint64_t cache_bytes, obs::CacheStats* cache_stats) {
    auto exp = core::Experiment::Create(ecfg);
    EXPECT_TRUE(exp.ok());
    (*exp)->ResetForRun();
    RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                         ecfg.inlj, sc);
    std::unique_ptr<ResultCache> cache;
    if (cache_bytes > 0) {
      ResultCacheConfig cc;
      cc.reserved_bytes = cache_bytes;
      cache = ResultCache::Create(cc, (*exp)->gpu()).value();
      server.AttachCache(cache.get());
    }
    ServeReport r = server.Run().value();
    if (cache != nullptr) *cache_stats = cache->FinalStats();
    return r;
  };

  obs::CacheStats cache_stats;
  const ServeReport off = run_cell(0, nullptr);
  const ServeReport on = run_cell(4 << 20, &cache_stats);

  ASSERT_EQ(off.counters.requests_shed, 0u);
  ASSERT_EQ(on.counters.requests_shed, 0u);
  ASSERT_FALSE(off.matches.empty());

  // Same multiset of matches, whatever order the batches served them in.
  std::vector<core::JoinMatch> a = off.matches;
  std::vector<core::JoinMatch> b = on.matches;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);

  // The hot keys hit, and hits are cheaper than re-running the window.
  EXPECT_GT(cache_stats.hits, 0u);
  EXPECT_EQ(cache_stats.hits + cache_stats.misses, cache_stats.lookups);
  EXPECT_LT(on.service_seconds_total, off.service_seconds_total);
  EXPECT_LE(on.sim_seconds, off.sim_seconds);
}

TEST(ResultCache, LruEvictsTheColdestEntryDeterministically) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  ResultCacheConfig cc;
  cc.reserved_bytes = 4 * 64;  // room for 4 overhead-only entries
  cc.entry_overhead_bytes = 64;
  auto cache = ResultCache::Create(cc, gpu).value();

  double charge = 0;
  for (uint64_t k = 0; k < 4; ++k) {
    cache->Insert(k, {}, &charge);
  }
  EXPECT_EQ(cache->entries(), 4u);
  EXPECT_EQ(cache->used_bytes(), cc.reserved_bytes);

  // Touch key 0: key 1 becomes the LRU victim of the next insert.
  EXPECT_TRUE(cache->Lookup(0, nullptr, &charge));
  cache->Insert(4, {}, &charge);
  EXPECT_EQ(cache->entries(), 4u);
  EXPECT_FALSE(cache->Lookup(1, nullptr, &charge));
  EXPECT_TRUE(cache->Lookup(0, nullptr, &charge));
  EXPECT_TRUE(cache->Lookup(4, nullptr, &charge));
  EXPECT_EQ(cache->stats().evictions, 1u);
  EXPECT_GT(charge, 0);

  // An entry larger than the whole reservation is skipped, not wedged.
  std::vector<core::JoinMatch> huge(64);
  cache->Insert(5, huge, &charge);
  EXPECT_FALSE(cache->Lookup(5, nullptr, &charge));
  EXPECT_EQ(cache->stats().skipped_too_large, 1u);
}

TEST(ResultCache, ClockGivesReferencedEntriesASecondChance) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  ResultCacheConfig cc;
  cc.reserved_bytes = 3 * 64;
  cc.entry_overhead_bytes = 64;
  cc.eviction = ResultCacheConfig::Eviction::kClock;
  auto cache = ResultCache::Create(cc, gpu).value();

  double charge = 0;
  for (uint64_t k = 0; k < 3; ++k) cache->Insert(k, {}, &charge);
  // Reference key 0; the hand must pass it over and evict key 1.
  EXPECT_TRUE(cache->Lookup(0, nullptr, &charge));
  cache->Insert(3, {}, &charge);
  EXPECT_TRUE(cache->Lookup(0, nullptr, &charge));
  EXPECT_FALSE(cache->Lookup(1, nullptr, &charge));
  EXPECT_TRUE(cache->Lookup(2, nullptr, &charge));
  EXPECT_TRUE(cache->Lookup(3, nullptr, &charge));
  EXPECT_EQ(cache->stats().evictions, 1u);
}

TEST(RequestServer, TenantModeRejectsIncompatibleKnobs) {
  FakeBackend backend(1 << 20, 1e-7);

  {
    ServeConfig sc = TenantServeConfig();
    sc.retry.retry_cap = 2;
    RequestServer server(backend, sc);
    auto r = server.Run();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("retry"), std::string::npos);
  }
  {
    // Keyed requests must fit inside the probe sample.
    ServeConfig sc = TenantServeConfig();
    sc.tenants.key_universe = (1 << 20) / 64 + 1;
    RequestServer server(backend, sc);
    auto r = server.Run();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("key_universe"),
              std::string::npos);
  }
  {
    // The cache needs keyed requests...
    mem::AddressSpace space;
    sim::Gpu gpu(&space, sim::V100NvLink2());
    ResultCacheConfig cc;
    cc.reserved_bytes = 1 << 16;
    auto cache = ResultCache::Create(cc, gpu).value();
    ServeConfig sc = TenantServeConfig();
    sc.tenants.key_universe = 0;
    RequestServer server(backend, sc);
    server.AttachCache(cache.get());
    auto r = server.Run();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("key_universe"),
              std::string::npos);

    // ...and tenant mode at all.
    ServeConfig single = TenantServeConfig();
    single.tenants.num_tenants = 0;
    RequestServer plain(backend, single);
    plain.AttachCache(cache.get());
    auto r2 = plain.Run();
    ASSERT_FALSE(r2.ok());
    EXPECT_NE(r2.status().ToString().find("tenant"), std::string::npos);
  }
  {
    ServeConfig sc = TenantServeConfig();
    sc.tenants.num_tenants = 0;
    sc.collect_matches = true;
    RequestServer server(backend, sc);
    auto r = server.Run();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("collect_matches"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace gpujoin::serve
