// Tests for the sharded multi-device execution engine (src/dist):
// topology/planner units, the scale-out and work-stealing claims of the
// fig10 bench (asserted on small fixed-seed configs), determinism across
// simulation thread counts, and serving through the backend seam.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/experiment.h"
#include "dist/shard_planner.h"
#include "dist/shard_scheduler.h"
#include "dist/topology.h"
#include "serve/server.h"
#include "workload/key_column.h"

namespace gpujoin {
namespace {

// --------------------------------------------------------------------
// Topology

TEST(TopologyTest, PcieSharesOneHostLink) {
  auto topo = dist::Topology::Create(dist::TopologyKind::kPciE4, 4);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  const int link = topo->host_link(0);
  for (int d = 1; d < 4; ++d) EXPECT_EQ(topo->host_link(d), link);
  EXPECT_TRUE(topo->links()[link].shared);
  EXPECT_EQ(topo->HostSharers(link, 4), 4);
  EXPECT_EQ(topo->HostSharers(link, 1), 1);
}

TEST(TopologyTest, NvLinkHostLinksAreDedicated) {
  auto topo = dist::Topology::Create(dist::TopologyKind::kNvLink2, 4);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  for (int d = 0; d < 4; ++d) {
    const int link = topo->host_link(d);
    EXPECT_FALSE(topo->links()[link].shared);
    EXPECT_EQ(topo->HostSharers(link, 4), 1);
    for (int e = d + 1; e < 4; ++e) {
      EXPECT_NE(topo->host_link(e), link);
    }
  }
}

TEST(TopologyTest, PeerTransfersCostTimeAndScaleWithBytes) {
  for (auto kind :
       {dist::TopologyKind::kNvLink2, dist::TopologyKind::kPciE4,
        dist::TopologyKind::kNvSwitch}) {
    auto topo = dist::Topology::Create(kind, 2);
    ASSERT_TRUE(topo.ok()) << topo.status().ToString();
    const double small = topo->PeerSeconds(0, 1, 1 << 10);
    const double big = topo->PeerSeconds(0, 1, 1 << 24);
    EXPECT_GT(small, 0) << dist::TopologyKindName(kind);
    EXPECT_GT(big, small) << dist::TopologyKindName(kind);
    EXPECT_EQ(topo->PeerSeconds(0, 0, 1 << 20), 0);
    EXPECT_FALSE(topo->PeerLinks(0, 1).empty());
  }
}

TEST(TopologyTest, NvSwitchPeerHopBeatsThroughHost) {
  auto sw = dist::Topology::Create(dist::TopologyKind::kNvSwitch, 4);
  auto nv = dist::Topology::Create(dist::TopologyKind::kNvLink2, 4);
  ASSERT_TRUE(sw.ok() && nv.ok());
  const uint64_t bytes = uint64_t{1} << 26;
  EXPECT_LT(sw->PeerSeconds(0, 3, bytes), nv->PeerSeconds(0, 3, bytes));
}

// --------------------------------------------------------------------
// ShardPlanner

TEST(ShardPlannerTest, SplitsCoverRAndBalanceWithinSlack) {
  mem::AddressSpace space;
  workload::DenseKeyColumn r(&space, uint64_t{1} << 20);
  for (int n : {1, 2, 3, 4, 7, 8}) {
    auto plan = dist::ShardPlanner::Plan(r, n);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan->pos_begin.front(), 0u);
    EXPECT_EQ(plan->pos_begin.back(), r.size());
    uint64_t total = 0;
    for (int s = 0; s < n; ++s) {
      const uint64_t owned = plan->shard_r_tuples(s);
      EXPECT_GT(owned, 0u);
      total += owned;
      // The 8x-cells deal keeps slices within ~25% of equal.
      EXPECT_LT(owned, (r.size() / n) * 5 / 4 + 1);
    }
    EXPECT_EQ(total, r.size());
  }
}

TEST(ShardPlannerTest, RoutingAgreesWithSliceOwnership) {
  mem::AddressSpace space;
  workload::JitteredKeyColumn r(&space, uint64_t{1} << 16, 16, /*seed=*/7);
  auto plan = dist::ShardPlanner::Plan(r, 5);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Every R key must be routed to the shard whose R slice holds it.
  for (uint64_t i = 0; i < r.size(); i += 97) {
    const int owner = plan->OwnerOf(r.key_at(i));
    EXPECT_GE(i, plan->pos_begin[owner]) << "key index " << i;
    EXPECT_LT(i, plan->pos_begin[owner + 1]) << "key index " << i;
  }
}

TEST(ShardPlannerTest, ShardKeyColumnIsAViewOfTheSlice) {
  mem::AddressSpace base_space;
  workload::DenseKeyColumn base(&base_space, 4096);
  mem::AddressSpace shard_space;
  dist::ShardKeyColumn view(&shard_space, base, /*begin=*/1024,
                            /*size=*/512);
  EXPECT_EQ(view.size(), 512u);
  EXPECT_EQ(view.key_at(0), base.key_at(1024));
  EXPECT_EQ(view.key_at(511), base.key_at(1535));
  EXPECT_EQ(view.min_key(), base.key_at(1024));
  EXPECT_EQ(view.max_key(), base.key_at(1535));
  EXPECT_EQ(view.LowerBound(base.key_at(1100)), 76u);
}

TEST(ShardPlannerTest, RejectsDegenerateShardCounts) {
  mem::AddressSpace space;
  workload::DenseKeyColumn r(&space, 1024);
  EXPECT_FALSE(dist::ShardPlanner::Plan(r, 0).ok());
  EXPECT_FALSE(dist::ShardPlanner::Plan(r, 65).ok());
}

// --------------------------------------------------------------------
// ShardScheduler

core::ExperimentConfig DistConfig() {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 21;
  cfg.s_tuples = uint64_t{1} << 24;
  cfg.s_sample = uint64_t{1} << 17;
  cfg.seed = 11;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 22;
  return cfg;
}

dist::ShardedRunResult MustRun(const core::ExperimentConfig& cfg,
                               const dist::ShardConfig& dcfg,
                               std::vector<core::JoinMatch>* collect =
                                   nullptr) {
  auto engine = dist::ShardScheduler::Create(cfg, dcfg);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto run = (*engine)->RunJoin(collect);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return *run;
}

TEST(ShardSchedulerTest, RejectsNonWindowedModes) {
  core::ExperimentConfig cfg = DistConfig();
  cfg.inlj.mode = core::InljConfig::PartitionMode::kFull;
  dist::ShardConfig dcfg;
  EXPECT_FALSE(dist::ShardScheduler::Create(cfg, dcfg).ok());
}

TEST(ShardSchedulerTest, EveryProbeTupleIsRoutedAndJoined) {
  core::ExperimentConfig cfg = DistConfig();
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;
  std::vector<core::JoinMatch> matches;
  const auto run = MustRun(cfg, dcfg, &matches);
  ASSERT_EQ(run.shards.size(), 4u);
  uint64_t routed = 0;
  uint64_t shard_matches = 0;
  for (const auto& s : run.shards) {
    routed += s.tuples_routed;
    shard_matches += s.matches;
  }
  EXPECT_EQ(routed, cfg.s_sample);
  // Every probe key exists in R, so every routed tuple matches.
  EXPECT_EQ(shard_matches, cfg.s_sample);
  EXPECT_EQ(matches.size(), cfg.s_sample);
  EXPECT_EQ(run.run.result_tuples, cfg.s_tuples);
  // Matches carry global coordinates: each probe row appears once.
  std::vector<core::JoinMatch> sorted = matches;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].probe_row, i);
    if (i > 1000) break;  // spot check; full scan is O(sample)
  }
}

// The fig10 scale-out claim on a small fixed-seed config: four uniform
// shards beat one by >= 3x simulated throughput.
TEST(ShardSchedulerTest, FourUniformShardsGiveThreeXSpeedup) {
  core::ExperimentConfig cfg = DistConfig();
  // Scale the simulated sample with the device count so every device
  // simulates the same window size (2^18 tuples here). Simulated
  // per-tuple cost falls with window size as compulsory warmup misses
  // amortize; holding the per-device window constant isolates the
  // parallel speedup from that sample-resolution effect, exactly as
  // full-scale devices all run full window_tuples windows.
  cfg.s_sample = uint64_t{1} << 18;
  dist::ShardConfig one;
  one.num_shards = 1;
  const auto r1 = MustRun(cfg, one);
  cfg.s_sample = uint64_t{1} << 20;
  dist::ShardConfig four;
  four.num_shards = 4;
  const auto r4 = MustRun(cfg, four);
  EXPECT_EQ(r1.run.result_tuples, r4.run.result_tuples);
  const double speedup = r1.run.seconds / r4.run.seconds;
  EXPECT_GE(speedup, 3.0) << "1-shard " << r1.run.seconds << "s, 4-shard "
                          << r4.run.seconds << "s";
}

// The fig10 skew claim: under Zipf 1.75 the routed load concentrates and
// throughput drops versus uniform; work stealing must recover at least
// half of that gap.
TEST(ShardSchedulerTest, StealingRecoversHalfTheSkewGap) {
  core::ExperimentConfig cfg = DistConfig();
  // Several simulated windows so the first (unstolen, estimate-seeding)
  // window is a small share of the run, and single-pass bucket sizing so
  // the hot shard's overflowing buckets pay spill chains — the cost that
  // makes skew hurt scale-out.
  cfg.inlj.window_tuples = uint64_t{1} << 14;
  cfg.inlj.bucket_slack = 1.25;
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;
  const double uniform = MustRun(cfg, dcfg).run.seconds;

  cfg.zipf_exponent = 1.75;
  dist::ShardConfig nosteal = dcfg;
  nosteal.steal.enabled = false;
  const double skew_nosteal = MustRun(cfg, nosteal).run.seconds;

  const auto steal_run = MustRun(cfg, dcfg);
  const double skew_steal = steal_run.run.seconds;

  ASSERT_GT(skew_nosteal, uniform)
      << "config does not exhibit a skew penalty";
  EXPECT_GT(steal_run.steal_events, 0u);
  const double gap = skew_nosteal - uniform;
  const double recovered = skew_nosteal - skew_steal;
  EXPECT_GE(recovered, 0.5 * gap)
      << "uniform " << uniform << "s, zipf/nosteal " << skew_nosteal
      << "s, zipf/steal " << skew_steal << "s";
}

TEST(ShardSchedulerTest, ResultsAreIdenticalAcrossThreadCounts) {
  core::ExperimentConfig cfg = DistConfig();
  cfg.zipf_exponent = 1.75;  // stealing active: the harder case
  dist::ShardConfig a;
  a.num_shards = 4;
  a.threads = 1;
  dist::ShardConfig b = a;
  b.threads = 4;
  std::vector<core::JoinMatch> ma;
  std::vector<core::JoinMatch> mb;
  const auto ra = MustRun(cfg, a, &ma);
  const auto rb = MustRun(cfg, b, &mb);
  EXPECT_EQ(ra.run.seconds, rb.run.seconds);
  EXPECT_TRUE(ra.run.counters == rb.run.counters);
  EXPECT_EQ(ra.steal_events, rb.steal_events);
  EXPECT_TRUE(ma == mb);
  ASSERT_EQ(ra.shards.size(), rb.shards.size());
  for (size_t i = 0; i < ra.shards.size(); ++i) {
    EXPECT_EQ(ra.shards[i].busy_seconds, rb.shards[i].busy_seconds);
    EXPECT_TRUE(ra.shards[i].counters == rb.shards[i].counters);
  }
}

TEST(ShardSchedulerTest, RunsAreRepeatableOnOneEngine) {
  core::ExperimentConfig cfg = DistConfig();
  auto engine = dist::ShardScheduler::Create(cfg, dist::ShardConfig{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const auto r1 = (*engine)->RunJoin();
  const auto r2 = (*engine)->RunJoin();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->run.seconds, r2->run.seconds);
  EXPECT_TRUE(r1->run.counters == r2->run.counters);
}

TEST(ShardSchedulerTest, SharedPcieLinkContendsAndDedicatedDoesNot) {
  core::ExperimentConfig cfg = DistConfig();
  dist::ShardConfig nv;
  nv.num_shards = 4;
  nv.topology = dist::TopologyKind::kNvLink2;
  dist::ShardConfig pcie = nv;
  pcie.topology = dist::TopologyKind::kPciE4;
  const auto rnv = MustRun(cfg, nv);
  const auto rpcie = MustRun(cfg, pcie);
  // Same work, but four shards contending on one host link take longer
  // than four shards with dedicated links (NVLink is also faster, which
  // only widens the expected ordering).
  EXPECT_GT(rpcie.run.seconds, rnv.run.seconds);
}

TEST(ShardSchedulerTest, PerShardTimelinesFillWhenObserved) {
  core::ExperimentConfig cfg = DistConfig();
  cfg.s_sample = uint64_t{1} << 14;  // keep the observed run small
  dist::ShardConfig dcfg;
  dcfg.num_shards = 2;
  auto engine = dist::ShardScheduler::Create(cfg, dcfg);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  (*engine)->EnableObservability();
  auto run = (*engine)->RunJoin();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (const auto& shard : run->shards) {
    EXPECT_FALSE(shard.phase_spans.empty())
        << "shard " << shard.shard << " has no phase spans";
  }
  // Link stats cover every topology link, and host links saw traffic.
  ASSERT_FALSE(run->links.empty());
  uint64_t host_bytes = 0;
  for (const auto& link : run->links) host_bytes += link.bytes;
  EXPECT_GT(host_bytes, 0u);
}

// --------------------------------------------------------------------
// Serving through the backend seam

TEST(ShardServeTest, RequestServerFansOutToShards) {
  core::ExperimentConfig cfg = DistConfig();
  cfg.s_sample = uint64_t{1} << 14;
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;
  auto engine = dist::ShardScheduler::Create(cfg, dcfg);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  serve::ServeConfig sc;
  sc.requests = 2000;
  sc.tuples_per_request = 512;
  sc.arrival.rate = 20000;
  sc.arrival.seed = 5;
  serve::RequestServer server(**engine, sc);
  auto report = server.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->counters.requests_admitted +
                report->counters.requests_shed,
            sc.requests);
  EXPECT_GT(report->counters.batches, 0u);
  EXPECT_EQ(report->counters.tuples_served,
            report->counters.requests_admitted * sc.tuples_per_request);
  EXPECT_GT(report->sim_seconds, 0);

  // Deterministic: the same engine and config reproduce the run.
  auto engine2 = dist::ShardScheduler::Create(cfg, dcfg);
  ASSERT_TRUE(engine2.ok());
  serve::RequestServer server2(**engine2, sc);
  auto report2 = server2.Run();
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report->sim_seconds, report2->sim_seconds);
  EXPECT_EQ(report->latency.Quantile(0.99), report2->latency.Quantile(0.99));
}

}  // namespace
}  // namespace gpujoin
