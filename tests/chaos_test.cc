// Chaos tests for the sharded engine's failover path (DESIGN.md §13):
// a shard killed mid-run — crash, stuck, or permanent link-down — must
// be detected within the heartbeat timeout, its key range rerouted to a
// survivor, and its in-flight windows re-executed, with the merged
// match set coming back *identical* to the fault-free run. The steal
// path is the adversarial case: a stolen bucket whose victim then dies
// must be neither double-executed nor dropped.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "dist/shard_scheduler.h"
#include "sim/fault.h"

namespace gpujoin {
namespace {

core::ExperimentConfig ChaosConfig() {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 21;
  cfg.s_tuples = uint64_t{1} << 24;
  cfg.s_sample = uint64_t{1} << 17;
  cfg.seed = 11;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 22;
  return cfg;
}

dist::ShardedRunResult MustRun(const core::ExperimentConfig& cfg,
                               const dist::ShardConfig& dcfg,
                               std::vector<core::JoinMatch>* collect =
                                   nullptr) {
  auto engine = dist::ShardScheduler::Create(cfg, dcfg);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto run = (*engine)->RunJoin(collect);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return *run;
}

// Baseline makespan of (cfg, dcfg) with no faults, so fault times can
// be placed as fractions of the run rather than absolute guesses.
double FaultFreeMakespan(const core::ExperimentConfig& cfg,
                         dist::ShardConfig dcfg) {
  dcfg.failover = dist::FailoverPolicy();
  return MustRun(cfg, dcfg).sim_makespan;
}

dist::ShardConfig WithFault(dist::ShardConfig dcfg,
                            sim::DeviceFaultClass cls, int shard,
                            double at, double heartbeat) {
  sim::DeviceFaultEvent e;
  e.cls = cls;
  e.shard = shard;
  e.at_seconds = at;
  e.duration_seconds = 0;  // terminal
  dcfg.failover.device_faults.events.push_back(e);
  dcfg.failover.heartbeat_timeout = heartbeat;
  return dcfg;
}

std::vector<core::JoinMatch> Sorted(std::vector<core::JoinMatch> m) {
  std::sort(m.begin(), m.end());
  return m;
}

TEST(ChaosTest, CrashFailoverPreservesTheMatchSet) {
  const core::ExperimentConfig cfg = ChaosConfig();
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;

  std::vector<core::JoinMatch> base_matches;
  const auto base = MustRun(cfg, dcfg, &base_matches);
  ASSERT_GT(base.sim_makespan, 0);

  const dist::ShardConfig faulty =
      WithFault(dcfg, sim::DeviceFaultClass::kShardCrash, /*shard=*/1,
                0.4 * base.sim_makespan, 0.05 * base.sim_makespan);
  std::vector<core::JoinMatch> chaos_matches;
  const auto chaos = MustRun(cfg, faulty, &chaos_matches);

  EXPECT_EQ(Sorted(base_matches), Sorted(chaos_matches));
  ASSERT_EQ(chaos.robustness.failovers.size(), 1u);
  const obs::FailoverRecord& fo = chaos.robustness.failovers[0];
  EXPECT_EQ(fo.dead_shard, 1);
  EXPECT_EQ(fo.fault_class, "shard_crash");
  EXPECT_GE(fo.detected_at_seconds, 0.4 * base.sim_makespan);
  EXPECT_GT(fo.reassigned_tuples + fo.reexec_chunks, 0u);
  // Failover costs time: detection stall plus re-execution at the
  // recovery penalty.
  EXPECT_GT(chaos.run.seconds, base.run.seconds);
  EXPECT_GT(chaos.robustness.detection_seconds, 0);
}

TEST(ChaosTest, EveryTerminalFaultClassFailsOverIdentically) {
  const core::ExperimentConfig cfg = ChaosConfig();
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;
  std::vector<core::JoinMatch> base_matches;
  const auto base = MustRun(cfg, dcfg, &base_matches);
  const auto base_sorted = Sorted(base_matches);

  const struct {
    sim::DeviceFaultClass cls;
    const char* name;
  } classes[] = {
      {sim::DeviceFaultClass::kShardCrash, "shard_crash"},
      {sim::DeviceFaultClass::kShardStuck, "shard_stuck"},
      {sim::DeviceFaultClass::kLinkDown, "link_down"},
  };
  for (const auto& c : classes) {
    const dist::ShardConfig faulty =
        WithFault(dcfg, c.cls, /*shard=*/2, 0.3 * base.sim_makespan,
                  0.05 * base.sim_makespan);
    std::vector<core::JoinMatch> matches;
    const auto chaos = MustRun(cfg, faulty, &matches);
    EXPECT_EQ(Sorted(matches), base_sorted) << c.name;
    ASSERT_EQ(chaos.robustness.failovers.size(), 1u) << c.name;
    EXPECT_EQ(chaos.robustness.failovers[0].fault_class, c.name);
  }
}

TEST(ChaosTest, FailoverIsDeterministicAcrossThreadCounts) {
  const core::ExperimentConfig cfg = ChaosConfig();
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;
  const double makespan = FaultFreeMakespan(cfg, dcfg);

  auto run_at = [&](int threads) {
    dist::ShardConfig faulty =
        WithFault(dcfg, sim::DeviceFaultClass::kShardCrash, /*shard=*/0,
                  0.5 * makespan, 0.05 * makespan);
    faulty.threads = threads;
    std::vector<core::JoinMatch> matches;
    const auto run = MustRun(cfg, faulty, &matches);
    return std::make_pair(run, Sorted(matches));
  };
  const auto [r1, m1] = run_at(1);
  const auto [r7, m7] = run_at(7);

  EXPECT_EQ(m1, m7);
  EXPECT_EQ(r1.run.seconds, r7.run.seconds);
  EXPECT_EQ(r1.sim_makespan, r7.sim_makespan);
  EXPECT_EQ(r1.robustness.failovers.size(), r7.robustness.failovers.size());
  EXPECT_EQ(r1.robustness.reexec_windows, r7.robustness.reexec_windows);
  EXPECT_EQ(r1.robustness.detection_seconds,
            r7.robustness.detection_seconds);
  for (size_t i = 0; i < r1.robustness.failovers.size(); ++i) {
    EXPECT_EQ(r1.robustness.failovers[i].reassigned_tuples,
              r7.robustness.failovers[i].reassigned_tuples);
    EXPECT_EQ(r1.robustness.failovers[i].reexec_seconds,
              r7.robustness.failovers[i].reexec_seconds);
  }
}

// The steal-then-crash audit: under skew with stealing active, stolen
// buckets execute on the victim's structures while charged to the
// thief. Killing each shard in turn therefore covers both directions —
// a dying victim whose buckets were stolen, and a dying thief holding
// stolen work — and the match set must survive every one of them.
TEST(ChaosTest, StealThenCrashNeitherDropsNorDuplicatesMatches) {
  core::ExperimentConfig cfg = ChaosConfig();
  cfg.zipf_exponent = 1.75;
  cfg.inlj.window_tuples = uint64_t{1} << 14;
  cfg.inlj.bucket_slack = 1.25;
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;

  std::vector<core::JoinMatch> base_matches;
  const auto base = MustRun(cfg, dcfg, &base_matches);
  ASSERT_GT(base.steal_events, 0u)
      << "config does not exercise the steal path";
  const auto base_sorted = Sorted(base_matches);

  for (int victim = 0; victim < dcfg.num_shards; ++victim) {
    const dist::ShardConfig faulty =
        WithFault(dcfg, sim::DeviceFaultClass::kShardCrash, victim,
                  0.4 * base.sim_makespan, 0.05 * base.sim_makespan);
    std::vector<core::JoinMatch> matches;
    const auto chaos = MustRun(cfg, faulty, &matches);
    EXPECT_EQ(Sorted(matches), base_sorted) << "crashed shard " << victim;
    EXPECT_EQ(chaos.robustness.failovers.size(), 1u)
        << "crashed shard " << victim;
  }
}

TEST(ChaosTest, DeadShardStopsReceivingWorkAndSurvivorsCoverIt) {
  core::ExperimentConfig cfg = ChaosConfig();
  // Many small windows, so plenty of the window grid runs after the
  // crash and the rerouted key range is visible as reassigned tuples.
  cfg.inlj.window_tuples = uint64_t{1} << 14;
  dist::ShardConfig dcfg;
  dcfg.num_shards = 4;
  const double makespan = FaultFreeMakespan(cfg, dcfg);

  // Early crash: most of the run happens after the failover, so the
  // dead shard's key range must show up as reassigned tuples.
  const dist::ShardConfig faulty =
      WithFault(dcfg, sim::DeviceFaultClass::kShardCrash, /*shard=*/3,
                0.1 * makespan, 0.02 * makespan);
  auto engine = dist::ShardScheduler::Create(cfg, faulty);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<core::JoinMatch> matches;
  auto run = (*engine)->RunJoin(&matches);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_TRUE((*engine)->shard_dead(3));
  EXPECT_FALSE((*engine)->shard_dead(0));
  ASSERT_EQ(run->robustness.failovers.size(), 1u);
  EXPECT_GT(run->robustness.failovers[0].reassigned_tuples, 0u);
  // Nothing went missing: every probe tuple still matched exactly once.
  EXPECT_EQ(matches.size(), cfg.s_sample);
}

TEST(ChaosTest, ZeroFaultPolicyIsBitIdenticalToNoPolicy) {
  const core::ExperimentConfig cfg = ChaosConfig();
  dist::ShardConfig plain;
  plain.num_shards = 4;
  std::vector<core::JoinMatch> plain_matches;
  const auto a = MustRun(cfg, plain, &plain_matches);

  // Same run with failover knobs set but no fault events: the policy is
  // disabled and every number must be bit-identical.
  dist::ShardConfig armed = plain;
  armed.failover.heartbeat_timeout = 1e-6;
  armed.failover.recovery_penalty = 8.0;
  armed.failover.reexec_chunk_budget = 7;
  std::vector<core::JoinMatch> armed_matches;
  const auto b = MustRun(cfg, armed, &armed_matches);

  EXPECT_EQ(plain_matches, armed_matches);
  EXPECT_EQ(a.run.seconds, b.run.seconds);
  EXPECT_EQ(a.sim_makespan, b.sim_makespan);
  EXPECT_EQ(a.steal_events, b.steal_events);
  EXPECT_TRUE(b.robustness.failovers.empty());
  EXPECT_EQ(b.robustness.detection_seconds, 0);
}

TEST(ChaosTest, AllShardsDeadIsFailedPrecondition) {
  const core::ExperimentConfig cfg = ChaosConfig();
  dist::ShardConfig dcfg;
  dcfg.num_shards = 2;
  dcfg = WithFault(dcfg, sim::DeviceFaultClass::kShardCrash, 0, 0.0,
                   1e-6);
  sim::DeviceFaultEvent e;
  e.cls = sim::DeviceFaultClass::kShardCrash;
  e.shard = 1;
  e.at_seconds = 0.0;
  e.duration_seconds = 0;
  dcfg.failover.device_faults.events.push_back(e);

  auto engine = dist::ShardScheduler::Create(cfg, dcfg);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto run = (*engine)->RunJoin();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(run.status().ToString().find("no failover target"),
            std::string::npos)
      << run.status().ToString();
}

TEST(ChaosTest, InvalidFailoverKnobsAreNamedInTheError) {
  const core::ExperimentConfig cfg = ChaosConfig();
  const struct {
    void (*set)(dist::FailoverPolicy&);
    const char* names;
  } cases[] = {
      {[](dist::FailoverPolicy& p) { p.heartbeat_timeout = -1; },
       "heartbeat_timeout"},
      {[](dist::FailoverPolicy& p) { p.recovery_penalty = 0.5; },
       "recovery_penalty"},
      {[](dist::FailoverPolicy& p) { p.reexec_chunk_budget = 0; },
       "reexec_chunk_budget"},
  };
  for (const auto& c : cases) {
    dist::ShardConfig dcfg;
    dcfg.num_shards = 2;
    dcfg = WithFault(dcfg, sim::DeviceFaultClass::kShardCrash, 0, 0.5,
                     1e-4);
    c.set(dcfg.failover);
    auto engine = dist::ShardScheduler::Create(cfg, dcfg);
    ASSERT_FALSE(engine.ok()) << c.names;
    EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument)
        << c.names;
    EXPECT_NE(engine.status().ToString().find(c.names), std::string::npos)
        << engine.status().ToString();
  }
  // An event naming a shard outside the fleet is caught at Create too.
  dist::ShardConfig dcfg;
  dcfg.num_shards = 2;
  dcfg = WithFault(dcfg, sim::DeviceFaultClass::kShardCrash, 5, 0.5,
                   1e-4);
  EXPECT_FALSE(dist::ShardScheduler::Create(cfg, dcfg).ok());
}

}  // namespace
}  // namespace gpujoin
