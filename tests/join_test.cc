#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "join/hash_join.h"
#include "join/multi_value_hash_table.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/rng.h"
#include "workload/key_column.h"
#include "workload/relation.h"

namespace gpujoin::join {
namespace {

using workload::DenseKeyColumn;
using workload::Key;

class MvhtTest : public ::testing::Test {
 protected:
  MvhtTest() : gpu_(&space_, sim::V100NvLink2()) {}

  // Helper: insert a batch through the warp API.
  void Insert(MultiValueHashTable& t, const std::vector<Key>& keys,
              const std::vector<uint64_t>& values) {
    gpu_.RunKernel("insert", keys.size(), [&](sim::Warp& warp) {
      std::array<Key, 32> k{};
      std::array<uint64_t, 32> v{};
      for (int lane = 0; lane < warp.lane_count(); ++lane) {
        k[lane] = keys[warp.base_item() + lane];
        v[lane] = values[warp.base_item() + lane];
      }
      t.InsertWarp(warp, k.data(), v.data(), warp.full_mask());
    });
  }

  // Helper: retrieve each key's values.
  std::map<Key, std::vector<uint64_t>> Retrieve(
      MultiValueHashTable& t, const std::vector<Key>& keys) {
    std::map<Key, std::vector<uint64_t>> out;
    gpu_.RunKernel("retrieve", keys.size(), [&](sim::Warp& warp) {
      std::array<Key, 32> k{};
      for (int lane = 0; lane < warp.lane_count(); ++lane) {
        k[lane] = keys[warp.base_item() + lane];
      }
      t.RetrieveWarp(warp, k.data(), warp.full_mask(),
                     [&](int lane, uint64_t value) {
                       out[k[lane]].push_back(value);
                     });
    });
    return out;
  }

  mem::AddressSpace space_;
  sim::Gpu gpu_;
};

TEST_F(MvhtTest, InsertAndRetrieveSingleValues) {
  MultiValueHashTable t(&space_, 1000, 1000);
  std::vector<Key> keys;
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(i * 3);
    values.push_back(i);
  }
  Insert(t, keys, values);
  EXPECT_EQ(t.num_keys(), 500u);
  EXPECT_EQ(t.num_values(), 500u);

  auto got = Retrieve(t, keys);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(got[i * 3].size(), 1u);
    EXPECT_EQ(got[i * 3][0], static_cast<uint64_t>(i));
  }
}

TEST_F(MvhtTest, MultiValueSemantics) {
  MultiValueHashTable t(&space_, 100, 1000);
  std::vector<Key> keys;
  std::vector<uint64_t> values;
  for (int i = 0; i < 300; ++i) {
    keys.push_back(i % 10);  // 10 distinct keys, 30 values each
    values.push_back(i);
  }
  Insert(t, keys, values);
  EXPECT_EQ(t.num_keys(), 10u);
  EXPECT_EQ(t.num_values(), 300u);
  EXPECT_EQ(t.max_duplicates(), 30u);

  auto got = Retrieve(t, {0, 5, 9});
  EXPECT_EQ(got[0].size(), 30u);
  EXPECT_EQ(got[5].size(), 30u);
  // Values preserved exactly.
  std::vector<uint64_t> expected;
  for (int i = 0; i < 300; ++i) {
    if (i % 10 == 5) expected.push_back(i);
  }
  EXPECT_EQ(got[5], expected);
}

TEST_F(MvhtTest, AbsentKeysNotFound) {
  MultiValueHashTable t(&space_, 100, 100);
  Insert(t, {1, 2, 3}, {10, 20, 30});
  uint32_t found = 0;
  gpu_.RunKernel("probe", 1, [&](sim::Warp& warp) {
    Key k = 99;
    found = t.RetrieveWarp(warp, &k, 1u, [](int, uint64_t) { FAIL(); });
  });
  EXPECT_EQ(found, 0u);
}

TEST_F(MvhtTest, ChainGrowsBlocks) {
  MultiValueHashTable::Options opts;
  opts.max_bucket_size = 4;
  MultiValueHashTable t(&space_, 10, 1000, opts);
  std::vector<Key> keys(100, 7);
  std::vector<uint64_t> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  Insert(t, keys, values);
  // 100 values in buckets capped at 4 -> tail walks happened.
  EXPECT_GT(t.total_walk_hops(), 0u);
  auto got = Retrieve(t, {7});
  ASSERT_EQ(got[7].size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[7][i], static_cast<uint64_t>(i));
}

TEST_F(MvhtTest, FootprintMatchesLoadFactor) {
  MultiValueHashTable::Options opts;
  opts.load_factor = 0.5;
  MultiValueHashTable t(&space_, 1 << 20, 1 << 20, opts);
  // 2^20 keys at 50% load -> 2^21 slots of 16 B.
  EXPECT_EQ(t.slot_capacity(), uint64_t{1} << 21);
}

TEST_F(MvhtTest, SlotsLiveInDeviceMemory) {
  MultiValueHashTable t(&space_, 64, 64);
  Insert(t, {1}, {2});
  // All traffic should be HBM, none over the interconnect.
  EXPECT_EQ(gpu_.memory().counters().host_random_read_bytes, 0u);
  EXPECT_GT(gpu_.memory().counters().hbm_bytes(), 0u);
}

// --- HashJoin ----------------------------------------------------------

TEST(HashJoin, ProducesExpectedShape) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  DenseKeyColumn r(&space, 1 << 20);
  workload::ProbeConfig pc;
  pc.full_size = 1 << 16;
  pc.sample_size = 1 << 12;
  auto s = workload::MakeProbeRelation(&space, r, pc);

  HashJoinConfig cfg;
  cfg.probe_sample = 1 << 14;
  sim::RunResult res = HashJoin::Run(gpu, r, s, cfg).value();
  EXPECT_GT(res.seconds, 0);
  EXPECT_EQ(res.result_tuples, pc.full_size);
  EXPECT_EQ(res.stages.size(), 2u);
  // The probe scans R across the interconnect: sequential host traffic
  // at least |R| * 8 bytes.
  EXPECT_GE(res.counters.host_seq_read_bytes, r.size_bytes());
}

TEST(HashJoin, ThroughputDropsWithGrowingR) {
  // Fig. 3's hash join trend: Q/s decreases smoothly as R grows (the scan
  // volume grows while the result stays fixed).
  double prev_qps = 1e18;
  for (uint64_t r_tuples : {uint64_t{1} << 22, uint64_t{1} << 24,
                            uint64_t{1} << 26}) {
    mem::AddressSpace space;
    sim::Gpu gpu(&space, sim::V100NvLink2());
    DenseKeyColumn r(&space, r_tuples);
    workload::ProbeConfig pc;
    pc.full_size = 1 << 20;
    pc.sample_size = 1 << 12;
    auto s = workload::MakeProbeRelation(&space, r, pc);
    sim::RunResult res = HashJoin::Run(gpu, r, s).value();
    EXPECT_LT(res.qps(), prev_qps);
    prev_qps = res.qps();
  }
}

TEST(HashJoin, SkewedBuildDegradesSeverely) {
  // Fig. 8: with Zipf-skewed S, the multi-value insert chains make the
  // hash join orders of magnitude slower.
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  DenseKeyColumn r(&space, 1 << 24);

  workload::ProbeConfig uniform;
  uniform.full_size = 1 << 22;
  uniform.sample_size = 1 << 14;
  auto s_uniform = workload::MakeProbeRelation(&space, r, uniform);
  sim::RunResult flat = HashJoin::Run(gpu, r, s_uniform).value();

  workload::ProbeConfig skew = uniform;
  skew.zipf_exponent = 1.5;
  auto s_skew = workload::MakeProbeRelation(&space, r, skew);
  sim::RunResult degraded = HashJoin::Run(gpu, r, s_skew).value();

  EXPECT_GT(degraded.seconds, 100 * flat.seconds);
}

TEST(HashJoin, FailsGracefullyWhenTableExceedsGpuMemory) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  DenseKeyColumn r(&space, uint64_t{1} << 34);
  workload::ProbeConfig pc;
  pc.full_size = uint64_t{1} << 31;  // 2^31 keys -> slot array > 32 GiB
  pc.sample_size = 1 << 10;
  auto s = workload::MakeProbeRelation(&space, r, pc);
  Result<sim::RunResult> res = HashJoin::Run(gpu, r, s);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(HashJoin, ProbeSampleClampsToRelationSize) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  DenseKeyColumn r(&space, 1 << 12);  // tiny R
  workload::ProbeConfig pc;
  pc.full_size = 1 << 12;
  pc.sample_size = 1 << 10;
  auto s = workload::MakeProbeRelation(&space, r, pc);
  HashJoinConfig cfg;
  cfg.probe_sample = 1 << 20;  // larger than |R|
  auto res = HashJoin::Run(gpu, r, s, cfg);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->probe_tuples, r.size());
}

TEST(HashJoin, DeterministicAcrossRuns) {
  mem::AddressSpace space;
  DenseKeyColumn r(&space, 1 << 20);
  workload::ProbeConfig pc;
  pc.full_size = 1 << 16;
  pc.sample_size = 1 << 12;
  auto s = workload::MakeProbeRelation(&space, r, pc);
  sim::Gpu a(&space, sim::V100NvLink2());
  sim::Gpu b(&space, sim::V100NvLink2());
  auto ra = HashJoin::Run(a, r, s).value();
  auto rb = HashJoin::Run(b, r, s).value();
  EXPECT_DOUBLE_EQ(ra.seconds, rb.seconds);
  EXPECT_EQ(ra.counters.hbm_read_bytes, rb.counters.hbm_read_bytes);
}

TEST(HashJoin, BuildIsChargedOnTheFly) {
  // Paper Sec. 3.2: "the query builds the hash table on-the-fly, which we
  // include in the throughput measurement" — the build stage must carry
  // nonzero time.
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  DenseKeyColumn r(&space, 1 << 20);
  workload::ProbeConfig pc;
  pc.full_size = 1 << 16;
  pc.sample_size = 1 << 12;
  auto s = workload::MakeProbeRelation(&space, r, pc);
  auto res = HashJoin::Run(gpu, r, s).value();
  ASSERT_EQ(res.stages.size(), 2u);
  EXPECT_EQ(res.stages[0].first, "build");
  EXPECT_GT(res.stages[0].second, 0.0);
  EXPECT_GT(res.stages[1].second, res.stages[0].second);  // probe dominates
}

}  // namespace
}  // namespace gpujoin::join
