#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "core/inlj.h"
#include "index/binary_search.h"
#include "index/radix_spline.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/units.h"
#include "workload/key_column.h"
#include "workload/relation.h"

namespace gpujoin::core {
namespace {

using workload::DenseKeyColumn;

InljConfig ModeConfig(InljConfig::PartitionMode mode) {
  InljConfig cfg;
  cfg.mode = mode;
  cfg.window_tuples = 1 << 12;
  return cfg;
}

class InljTest : public ::testing::Test {
 protected:
  InljTest() : gpu_(&space_, sim::V100NvLink2()), r_(&space_, 1 << 22) {
    workload::ProbeConfig pc;
    pc.full_size = 1 << 20;
    pc.sample_size = 1 << 14;
    s_ = workload::MakeProbeRelation(&space_, r_, pc);
    index_ = std::make_unique<index::BinarySearchIndex>(&r_);
  }

  mem::AddressSpace space_;
  sim::Gpu gpu_;
  DenseKeyColumn r_;
  workload::ProbeRelation s_;
  std::unique_ptr<index::Index> index_;
};

TEST_F(InljTest, AllProbeKeysMatch) {
  // Every S key exists in R, so the join result equals |S|.
  for (auto mode : {InljConfig::PartitionMode::kNone,
                    InljConfig::PartitionMode::kFull,
                    InljConfig::PartitionMode::kWindowed}) {
    sim::RunResult res =
        IndexNestedLoopJoin::Run(gpu_, *index_, s_, ModeConfig(mode)).value();
    EXPECT_EQ(res.result_tuples, s_.full_size)
        << PartitionModeName(mode);
    EXPECT_GT(res.seconds, 0);
  }
}

TEST_F(InljTest, StagesMatchMode) {
  auto none = IndexNestedLoopJoin::Run(
      gpu_, *index_, s_, ModeConfig(InljConfig::PartitionMode::kNone))
                  .value();
  EXPECT_EQ(none.stages.size(), 1u);
  auto full = IndexNestedLoopJoin::Run(
      gpu_, *index_, s_, ModeConfig(InljConfig::PartitionMode::kFull))
                  .value();
  EXPECT_EQ(full.stages.size(), 2u);
}

TEST_F(InljTest, CountersScaleToFullProbeSize) {
  sim::RunResult res = IndexNestedLoopJoin::Run(
      gpu_, *index_, s_, ModeConfig(InljConfig::PartitionMode::kNone))
                           .value();
  // The probe stream alone is |S| * 8 bytes over the interconnect.
  EXPECT_GE(res.counters.host_seq_read_bytes, s_.full_size * 8);
}

TEST_F(InljTest, OverlapNeverSlower) {
  InljConfig with = ModeConfig(InljConfig::PartitionMode::kWindowed);
  with.overlap = true;
  InljConfig without = with;
  without.overlap = false;
  gpu_.memory().ClearHardwareState();
  auto a = IndexNestedLoopJoin::Run(gpu_, *index_, s_, with).value();
  gpu_.memory().ClearHardwareState();
  auto b = IndexNestedLoopJoin::Run(gpu_, *index_, s_, without).value();
  EXPECT_LE(a.seconds, b.seconds * 1.0001);
}

TEST_F(InljTest, WindowLargerThanSampleStillWorks) {
  InljConfig cfg = ModeConfig(InljConfig::PartitionMode::kWindowed);
  cfg.window_tuples = uint64_t{1} << 22;  // bigger than the 2^14 sample
  sim::RunResult res =
      IndexNestedLoopJoin::Run(gpu_, *index_, s_, cfg).value();
  EXPECT_EQ(res.result_tuples, s_.full_size);
}

// --- The paper's core phenomenon, end to end ----------------------------

TEST(TlbCliff, NaiveInljThrashesBeyondCoverageAndPartitioningFixesIt) {
  // R = 64 GiB of dense keys: twice the V100 TLB range. The naive INLJ
  // must incur many translation requests per key (Fig. 4); partitioned
  // lookups must eliminate nearly all of them (Fig. 6).
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 33;  // 64 GiB
  cfg.s_tuples = uint64_t{1} << 26;
  cfg.s_sample = uint64_t{1} << 14;
  cfg.index_type = index::IndexType::kBinarySearch;
  cfg.inlj.mode = InljConfig::PartitionMode::kNone;

  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  sim::RunResult naive = (*exp)->RunInlj().value();
  EXPECT_GT(naive.translations_per_key(), 10.0);

  cfg.inlj.mode = InljConfig::PartitionMode::kFull;
  auto exp2 = Experiment::Create(cfg);
  ASSERT_TRUE(exp2.ok());
  sim::RunResult partitioned = (*exp2)->RunInlj().value();
  EXPECT_LT(partitioned.translations_per_key(),
            naive.translations_per_key() / 20);
  EXPECT_GT(partitioned.qps(), naive.qps());
}

TEST(TlbCliff, NoThrashBelowCoverage) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 30;  // 8 GiB << 32 GiB coverage
  cfg.s_sample = uint64_t{1} << 14;
  cfg.index_type = index::IndexType::kBinarySearch;
  cfg.inlj.mode = InljConfig::PartitionMode::kNone;
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  sim::RunResult res = (*exp)->RunInlj().value();
  EXPECT_LT(res.translations_per_key(), 0.1);
}

// --- Experiment driver ---------------------------------------------------

TEST(Experiment, RejectsOversizedWorkingSet) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{30} << 30;  // 240 GiB of keys
  cfg.index_type = index::IndexType::kHarmonia;  // + a full key copy
  cfg.host_capacity = uint64_t{256} * kGiB;
  auto exp = Experiment::Create(cfg);
  ASSERT_FALSE(exp.ok());
  EXPECT_EQ(exp.status().code(), StatusCode::kResourceExhausted);
}

TEST(Experiment, BinarySearchFitsWhereTreesDoNot) {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{28} << 30;  // 224 GiB of keys, no extra state
  cfg.index_type = index::IndexType::kBinarySearch;
  cfg.s_sample = 1 << 10;
  auto exp = Experiment::Create(cfg);
  EXPECT_TRUE(exp.ok()) << exp.status().ToString();
}

TEST(Experiment, InljAndHashJoinAgreeOnResultSize) {
  ExperimentConfig cfg;
  cfg.r_tuples = 1 << 22;
  cfg.s_tuples = 1 << 18;
  cfg.s_sample = 1 << 13;
  cfg.index_type = index::IndexType::kRadixSpline;
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  sim::RunResult inlj = (*exp)->RunInlj().value();
  sim::RunResult hj = (*exp)->RunHashJoin().value();
  EXPECT_EQ(inlj.result_tuples, hj.result_tuples);
}

TEST(Experiment, SelectiveJoinTransfersLessThanScan) {
  // Discussion Sec. 6: the index reduces the transfer volume (up to 12x).
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 33;  // 64 GiB
  cfg.s_sample = 1 << 17;
  cfg.index_type = index::IndexType::kRadixSpline;
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  sim::RunResult inlj = (*exp)->RunInlj().value();
  sim::RunResult hj = (*exp)->RunHashJoin().value();
  EXPECT_LT(inlj.counters.interconnect_bytes(),
            hj.counters.interconnect_bytes() / 2.4);
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentConfig cfg;
  cfg.r_tuples = 1 << 24;
  cfg.s_sample = 1 << 12;
  cfg.index_type = index::IndexType::kHarmonia;
  auto a = Experiment::Create(cfg);
  auto b = Experiment::Create(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  sim::RunResult ra = (*a)->RunInlj().value();
  sim::RunResult rb = (*b)->RunInlj().value();
  EXPECT_DOUBLE_EQ(ra.seconds, rb.seconds);
  EXPECT_EQ(ra.counters.translation_requests,
            rb.counters.translation_requests);
}

}  // namespace
}  // namespace gpujoin::core
