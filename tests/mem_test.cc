#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "mem/page_table.h"
#include "mem/sim_array.h"
#include "util/units.h"

namespace gpujoin::mem {
namespace {

TEST(AddressSpace, ReservationsAreDisjoint) {
  AddressSpace space;
  Region a = space.Reserve(1000, MemKind::kHost, "a");
  Region b = space.Reserve(1000, MemKind::kHost, "b");
  EXPECT_GE(b.base, a.end());
}

TEST(AddressSpace, HostAndDeviceDisjoint) {
  AddressSpace space;
  Region h = space.Reserve(kGiB, MemKind::kHost, "h");
  Region d = space.Reserve(kGiB, MemKind::kDevice, "d");
  EXPECT_TRUE(h.end() <= d.base || d.end() <= h.base);
}

TEST(AddressSpace, RegionsArePageAligned) {
  AddressSpace::Options opts;
  opts.host_page_size = 2 * kMiB;
  AddressSpace space(opts);
  Region a = space.Reserve(100, MemKind::kHost, "a");
  Region b = space.Reserve(100, MemKind::kHost, "b");
  EXPECT_EQ(a.base % (2 * kMiB), 0u);
  EXPECT_EQ(b.base % (2 * kMiB), 0u);
}

TEST(AddressSpace, FindRegion) {
  AddressSpace space;
  Region a = space.Reserve(4096, MemKind::kHost, "a");
  const Region* found = space.FindRegion(a.base + 100);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name, "a");
  EXPECT_EQ(space.FindRegion(a.base + a.size + (uint64_t{10} * kGiB)),
            nullptr);
}

TEST(AddressSpace, KindOf) {
  AddressSpace space;
  Region h = space.Reserve(4096, MemKind::kHost, "h");
  Region d = space.Reserve(4096, MemKind::kDevice, "d");
  EXPECT_EQ(space.KindOf(h.base), MemKind::kHost);
  EXPECT_EQ(space.KindOf(d.base + 4095), MemKind::kDevice);
}

TEST(AddressSpace, TracksReservedBytes) {
  AddressSpace space;
  space.Reserve(1000, MemKind::kHost, "a");
  space.Reserve(2000, MemKind::kHost, "b");
  space.Reserve(500, MemKind::kDevice, "c");
  EXPECT_EQ(space.reserved_bytes(MemKind::kHost), 3000u);
  EXPECT_EQ(space.reserved_bytes(MemKind::kDevice), 500u);
}

TEST(AddressSpace, CanReserveOutOfCoreSizes) {
  AddressSpace space;
  // 120 GiB virtual reservation must not allocate real memory.
  Region big = space.Reserve(uint64_t{120} * kGiB, MemKind::kHost, "R");
  EXPECT_EQ(big.size, uint64_t{120} * kGiB);
  EXPECT_EQ(space.KindOf(big.base + 100 * kGiB), MemKind::kHost);
}

TEST(PageTable, FirstTouchAssignsFrames) {
  AddressSpace space;
  Region r = space.Reserve(uint64_t{4} * kGiB, MemKind::kHost, "r");
  PageTable pt(&space);
  const uint64_t f0 = pt.Translate(r.base, MemKind::kHost);
  const uint64_t f1 = pt.Translate(r.base + 2 * kGiB, MemKind::kHost);
  EXPECT_NE(f0, f1);
  // Same page translates to the same frame.
  EXPECT_EQ(pt.Translate(r.base + 100, MemKind::kHost), f0);
  EXPECT_EQ(pt.mapped_pages(), 2u);
}

TEST(SimArray, ReadWriteRoundTrip) {
  AddressSpace space;
  SimArray<int64_t> arr(&space, 100, MemKind::kDevice, "arr");
  for (size_t i = 0; i < arr.size(); ++i) arr[i] = static_cast<int64_t>(i * i);
  for (size_t i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr[i], static_cast<int64_t>(i * i));
  }
}

TEST(SimArray, AddressesAreContiguous) {
  AddressSpace space;
  SimArray<int64_t> arr(&space, 10, MemKind::kHost, "arr");
  EXPECT_EQ(arr.addr_of(3) - arr.addr_of(0), 24u);
  EXPECT_EQ(arr.addr_of(0), arr.region().base);
}

TEST(SimArray, MoveTransfersOwnership) {
  AddressSpace space;
  SimArray<int64_t> a(&space, 10, MemKind::kHost, "a");
  a[0] = 7;
  SimArray<int64_t> b = std::move(a);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(b.size(), 10u);
}

}  // namespace
}  // namespace gpujoin::mem
