// Tests for the deterministic fault-injection layer (sim/fault.h) and the
// pipeline's graceful-degradation policies (core::RecoveryPolicy). The
// load-bearing invariants: at fault rate 0 nothing changes at all, and
// with faults enabled every run is reproducible bit for bit per seed.

#include <gtest/gtest.h>

#include <cstring>

#include "core/experiment.h"
#include "core/inlj.h"
#include "sim/counters.h"
#include "sim/fault.h"
#include "util/status.h"

namespace gpujoin {
namespace {

using core::ExperimentConfig;
using core::InljConfig;
using core::RecoveryPolicy;
using sim::CounterSet;
using sim::FaultConfig;
using sim::FaultInjector;

bool SameCounters(const CounterSet& a, const CounterSet& b) {
  return std::memcmp(&a, &b, sizeof(CounterSet)) == 0;
}

// ---------------------------------------------------------------------
// FaultInjector unit level

TEST(FaultConfigTest, DefaultIsDisabled) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_TRUE(FaultConfig::AllClasses(0.0).enabled() == false);
  EXPECT_TRUE(FaultConfig::AllClasses(0.01).enabled());
}

TEST(FaultInjectorTest, ZeroRatesNeverTouchCounters) {
  FaultInjector injector((FaultConfig()));
  CounterSet counters;
  const CounterSet before = counters;
  for (int i = 0; i < 1000; ++i) {
    injector.OnTranslation(&counters);
    injector.OnHostLines(4, 128, /*is_read=*/true, /*random=*/true,
                         &counters);
    EXPECT_FALSE(injector.OnDeviceReserve(&counters));
  }
  EXPECT_TRUE(SameCounters(before, counters));
  EXPECT_FALSE(injector.failed());
}

TEST(FaultInjectorTest, TranslationTimeoutsRetryAndCharge) {
  FaultConfig cfg;
  cfg.translation_timeout_rate = 0.1;
  cfg.max_retries = 8;  // exhausting 8 retries at p=0.1 is ~1e-9 per event
  FaultInjector injector(cfg);
  CounterSet counters;
  for (int i = 0; i < 1000; ++i) injector.OnTranslation(&counters);
  EXPECT_GT(counters.translation_timeouts, 0u);
  EXPECT_EQ(counters.faults_injected, counters.translation_timeouts);
  // Each recovered timeout re-issues the translation and waits.
  EXPECT_GE(counters.fault_retries, counters.translation_timeouts);
  EXPECT_EQ(counters.translation_requests, counters.fault_retries);
  EXPECT_GT(counters.fault_backoff_nanos, 0u);
  EXPECT_FALSE(injector.failed());
}

TEST(FaultInjectorTest, FailStopMakesFirstTimeoutFatal) {
  FaultConfig cfg;
  cfg.translation_timeout_rate = 1.0;
  cfg.max_retries = 0;
  FaultInjector injector(cfg);
  CounterSet counters;
  injector.OnTranslation(&counters);
  EXPECT_TRUE(injector.failed());
  EXPECT_EQ(injector.fatal_status().code(),
            StatusCode::kResourceExhausted);
  // Reset clears the sticky failure.
  injector.Reset();
  EXPECT_FALSE(injector.failed());
}

TEST(FaultInjectorTest, RemoteReadErrorsRechargeTraffic) {
  FaultConfig cfg;
  cfg.remote_read_error_rate = 0.25;
  FaultInjector injector(cfg);
  CounterSet counters;
  injector.OnHostLines(100000, 128, /*is_read=*/true, /*random=*/true,
                       &counters);
  EXPECT_GT(counters.remote_read_errors, 0u);
  // Every retried line is re-transferred: bytes land on the random-read
  // counter and the transaction count.
  EXPECT_EQ(counters.host_random_read_bytes,
            counters.remote_read_errors * 128);
  EXPECT_EQ(counters.memory_transactions, counters.remote_read_errors);
  EXPECT_GT(counters.fault_backoff_nanos, 0u);
}

TEST(FaultInjectorTest, DegradationEpisodesCoverConfiguredLines) {
  FaultConfig cfg;
  cfg.degradation_episode_rate = 1e-3;
  cfg.degradation_episode_lines = 512;
  FaultInjector injector(cfg);
  CounterSet counters;
  injector.OnHostLines(1 << 20, 128, /*is_read=*/true, /*random=*/false,
                       &counters);
  EXPECT_GT(counters.degradation_episodes, 0u);
  EXPECT_GT(counters.degraded_host_bytes, 0u);
  // Episodes cover at most episode_lines lines each.
  EXPECT_LE(counters.degraded_host_bytes,
            counters.degradation_episodes * 512 * 128);
}

TEST(FaultInjectorTest, AllocFailuresAreReported) {
  FaultConfig cfg;
  cfg.alloc_failure_rate = 1.0;
  FaultInjector injector(cfg);
  CounterSet counters;
  EXPECT_TRUE(injector.OnDeviceReserve(&counters));
  EXPECT_EQ(counters.alloc_faults, 1u);
  EXPECT_EQ(counters.faults_injected, 1u);
  // Allocation failures are not fatal at the injector level — the caller
  // decides how to degrade.
  EXPECT_FALSE(injector.failed());
}

TEST(FaultInjectorTest, ResetReproducesTheExactFaultSequence) {
  FaultConfig cfg = FaultConfig::AllClasses(0.05, /*seed=*/99);
  FaultInjector injector(cfg);
  CounterSet first;
  for (int i = 0; i < 200; ++i) {
    injector.OnTranslation(&first);
    injector.OnHostLines(16, 128, true, i % 2 == 0, &first);
    injector.OnDeviceReserve(&first);
  }
  injector.Reset();
  CounterSet second;
  for (int i = 0; i < 200; ++i) {
    injector.OnTranslation(&second);
    injector.OnHostLines(16, 128, true, i % 2 == 0, &second);
    injector.OnDeviceReserve(&second);
  }
  EXPECT_TRUE(SameCounters(first, second));
}

// ---------------------------------------------------------------------
// End-to-end: the INLJ pipeline under injected faults

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 22;
  cfg.s_tuples = uint64_t{1} << 18;
  cfg.s_sample = uint64_t{1} << 14;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 12;
  return cfg;
}

sim::RunResult RunWith(const ExperimentConfig& cfg) {
  auto exp = core::Experiment::Create(cfg);
  EXPECT_TRUE(exp.ok()) << exp.status().ToString();
  auto res = (*exp)->RunInlj();
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.value();
}

TEST(FaultPipelineTest, FaultyRunsAreDeterministicPerSeed) {
  ExperimentConfig cfg = SmallConfig();
  cfg.fault = FaultConfig::AllClasses(0.01, /*seed=*/5);
  const sim::RunResult a = RunWith(cfg);
  const sim::RunResult b = RunWith(cfg);
  EXPECT_TRUE(SameCounters(a.counters, b.counters));
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.result_tuples, b.result_tuples);
  EXPECT_GT(a.counters.faults_injected, 0u);
}

TEST(FaultPipelineTest, RepeatedRunsOnOneExperimentAreReproducible) {
  // Experiment::RunInlj resets the injector, so back-to-back runs on one
  // experiment see the identical fault sequence.
  ExperimentConfig cfg = SmallConfig();
  cfg.fault = FaultConfig::AllClasses(0.01, /*seed=*/5);
  auto exp = core::Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  const sim::RunResult a = (*exp)->RunInlj().value();
  const sim::RunResult b = (*exp)->RunInlj().value();
  EXPECT_TRUE(SameCounters(a.counters, b.counters));
}

TEST(FaultPipelineTest, FaultsCostSimulatedTimeButPreserveTheJoin) {
  ExperimentConfig cfg = SmallConfig();
  const sim::RunResult clean = RunWith(cfg);

  cfg.fault = FaultConfig::AllClasses(0.02);
  const sim::RunResult faulty = RunWith(cfg);

  // The join result is unaffected — recovery is transparent.
  EXPECT_EQ(faulty.result_tuples, clean.result_tuples);
  // Recovery work (retries, backoff, degraded bandwidth) costs time.
  EXPECT_GT(faulty.seconds, clean.seconds);
  EXPECT_GT(faulty.counters.faults_injected, 0u);
  EXPECT_GT(faulty.counters.fault_backoff_nanos, 0u);
}

TEST(FaultPipelineTest, FailStopRetryBudgetSurfacesAsStatus) {
  ExperimentConfig cfg = SmallConfig();
  // A small R fits in one huge page, so translations are rare (the cold
  // TLB miss); rate 1.0 makes that first one time out, and with a zero
  // retry budget the timeout is fatal.
  cfg.inlj.mode = InljConfig::PartitionMode::kNone;
  cfg.fault.translation_timeout_rate = 1.0;
  cfg.fault.max_retries = 0;
  cfg.inlj.recovery = RecoveryPolicy::FailStop();
  auto exp = core::Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  auto res = (*exp)->RunInlj();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(FaultPipelineTest, GracefulPolicySurvivesAllocationFailures) {
  ExperimentConfig cfg = SmallConfig();
  cfg.fault.alloc_failure_rate = 0.5;
  const sim::RunResult res = RunWith(cfg);
  EXPECT_EQ(res.result_tuples, cfg.s_tuples);
  // At this rate some window had to degrade (shrink, fall back, or spill
  // its result buffer to the host).
  EXPECT_TRUE(res.degraded());
}

TEST(FaultPipelineTest, FailStopPolicyAbortsOnAllocationFailure) {
  ExperimentConfig cfg = SmallConfig();
  cfg.fault.alloc_failure_rate = 1.0;
  cfg.inlj.recovery = RecoveryPolicy::FailStop();
  auto exp = core::Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  auto res = (*exp)->RunInlj();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(FaultPipelineTest, WindowBelowOneWarpIsInvalid) {
  ExperimentConfig cfg = SmallConfig();
  cfg.inlj.window_tuples = 16;  // below sim::Warp::kWidth
  auto exp = core::Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  auto res = (*exp)->RunInlj();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultPipelineTest, HashJoinBaselineStaysFailStopOnAllocFault) {
  ExperimentConfig cfg = SmallConfig();
  cfg.fault.alloc_failure_rate = 1.0;
  auto exp = core::Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  auto res = (*exp)->RunHashJoin();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------
// Device-level fault timeline (shard crash / stuck / slow / link-down)

using sim::DeviceFaultClass;
using sim::DeviceFaultConfig;
using sim::DeviceFaultEvent;
using sim::DeviceFaultTimeline;

DeviceFaultEvent Event(DeviceFaultClass cls, int shard, double at,
                       double duration = 0) {
  DeviceFaultEvent e;
  e.cls = cls;
  e.shard = shard;
  e.at_seconds = at;
  e.duration_seconds = duration;
  return e;
}

TEST(DeviceFaultTest, DefaultConfigIsDisabled) {
  DeviceFaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  DeviceFaultTimeline timeline(cfg, 4);
  EXPECT_FALSE(timeline.enabled());
  EXPECT_FALSE(timeline.TerminalAt(0, 1e9).has_value());
  EXPECT_EQ(timeline.DelaySeconds(0, 0, 1e9), 0);
}

TEST(DeviceFaultTest, ValidateNamesTheBadField) {
  const struct {
    DeviceFaultEvent event;
    const char* names;
  } cases[] = {
      {Event(DeviceFaultClass::kShardCrash, 9, 0.1), "shard"},
      {Event(DeviceFaultClass::kShardCrash, -1, 0.1), "shard"},
      {Event(DeviceFaultClass::kShardCrash, 0, -0.5), "at_seconds"},
      {Event(DeviceFaultClass::kShardSlow, 0, 0.1), "slow_factor"},
  };
  for (const auto& c : cases) {
    DeviceFaultConfig cfg;
    cfg.events.push_back(c.event);
    if (std::string(c.names) == "slow_factor") {
      cfg.events.back().slow_factor = 0.5;
    }
    Status st = cfg.Validate(4);
    ASSERT_FALSE(st.ok()) << c.names;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << c.names;
    EXPECT_NE(st.ToString().find(c.names), std::string::npos)
        << st.ToString();
  }
  DeviceFaultConfig bad_rate;
  bad_rate.random_slow_rate = -1;
  EXPECT_NE(bad_rate.Validate(4).ToString().find("random_slow_rate"),
            std::string::npos);
}

TEST(DeviceFaultTest, CrashAndStuckAreTerminalFromTheirStart) {
  DeviceFaultConfig cfg;
  cfg.events.push_back(Event(DeviceFaultClass::kShardCrash, 1, 0.5));
  cfg.events.push_back(Event(DeviceFaultClass::kShardStuck, 2, 0.25));
  DeviceFaultTimeline timeline(cfg, 4);
  ASSERT_TRUE(timeline.enabled());

  EXPECT_FALSE(timeline.TerminalAt(1, 0.49).has_value());
  ASSERT_TRUE(timeline.TerminalAt(1, 0.5).has_value());
  EXPECT_EQ(timeline.TerminalAt(1, 0.5)->cls,
            DeviceFaultClass::kShardCrash);
  ASSERT_TRUE(timeline.TerminalAt(2, 10.0).has_value());
  EXPECT_EQ(timeline.TerminalAt(2, 10.0)->cls,
            DeviceFaultClass::kShardStuck);
  // Other shards never die.
  EXPECT_FALSE(timeline.TerminalAt(0, 10.0).has_value());
  EXPECT_FALSE(timeline.TerminalAt(3, 10.0).has_value());
  // TerminalIn sees a death inside the window, not before or after it.
  EXPECT_TRUE(timeline.TerminalIn(1, 0.4, 0.6).has_value());
  EXPECT_FALSE(timeline.TerminalIn(1, 0.0, 0.5).has_value());
  EXPECT_FALSE(timeline.TerminalIn(1, 0.6, 0.9).has_value());
}

TEST(DeviceFaultTest, PermanentLinkDownIsTerminalButTransientIsNot) {
  DeviceFaultConfig cfg;
  cfg.events.push_back(
      Event(DeviceFaultClass::kLinkDown, 0, 0.1, /*duration=*/0));
  cfg.events.push_back(
      Event(DeviceFaultClass::kLinkDown, 1, 0.1, /*duration=*/0.2));
  DeviceFaultTimeline timeline(cfg, 2);
  EXPECT_TRUE(timeline.TerminalAt(0, 0.2).has_value());
  EXPECT_FALSE(timeline.TerminalAt(1, 0.2).has_value());
  // The transient outage stalls work that overlaps it instead: a busy
  // interval covering the full outage is delayed by its length.
  EXPECT_NEAR(timeline.DelaySeconds(1, 0.0, 1.0), 0.2, 1e-12);
  EXPECT_EQ(timeline.DelaySeconds(1, 0.5, 1.0), 0);
}

TEST(DeviceFaultTest, SlowEpisodesChargeOverlapTimesFactor) {
  DeviceFaultConfig cfg;
  DeviceFaultEvent slow =
      Event(DeviceFaultClass::kShardSlow, 0, 1.0, /*duration=*/2.0);
  slow.slow_factor = 4.0;
  cfg.events.push_back(slow);
  DeviceFaultTimeline timeline(cfg, 1);
  // Fully inside the episode: 3x extra. Half overlap: half that.
  EXPECT_NEAR(timeline.DelaySeconds(0, 1.0, 1.0), 3.0, 1e-12);
  EXPECT_NEAR(timeline.DelaySeconds(0, 2.5, 1.0), 1.5, 1e-12);
  EXPECT_EQ(timeline.DelaySeconds(0, 4.0, 1.0), 0);
  EXPECT_FALSE(timeline.TerminalAt(0, 2.0).has_value());
}

TEST(DeviceFaultTest, RandomSlowEpisodesAreSeedDeterministic) {
  DeviceFaultConfig cfg;
  cfg.seed = 99;
  cfg.random_slow_rate = 1e3;
  cfg.random_slow_duration = 1e-3;
  cfg.random_horizon_seconds = 1.0;
  DeviceFaultTimeline a(cfg, 4);
  DeviceFaultTimeline b(cfg, 4);
  cfg.seed = 100;
  DeviceFaultTimeline c(cfg, 4);

  bool any = false;
  bool differs = false;
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_EQ(a.episodes(shard).size(), b.episodes(shard).size());
    for (size_t i = 0; i < a.episodes(shard).size(); ++i) {
      any = true;
      EXPECT_EQ(a.episodes(shard)[i].begin, b.episodes(shard)[i].begin);
      EXPECT_EQ(a.episodes(shard)[i].end, b.episodes(shard)[i].end);
    }
    if (a.episodes(shard).size() != c.episodes(shard).size()) {
      differs = true;
    } else {
      for (size_t i = 0; i < a.episodes(shard).size(); ++i) {
        if (a.episodes(shard)[i].begin != c.episodes(shard)[i].begin) {
          differs = true;
        }
      }
    }
  }
  EXPECT_TRUE(any) << "horizon produced no random episodes";
  EXPECT_TRUE(differs) << "different seeds produced identical schedules";
  EXPECT_NE(a.DelaySeconds(0, 0, 1.0) + a.DelaySeconds(1, 0, 1.0),
            0.0);
}

TEST(DeviceFaultTest, ClassNamesAreStable) {
  EXPECT_STREQ(DeviceFaultClassName(DeviceFaultClass::kShardCrash),
               "shard_crash");
  EXPECT_STREQ(DeviceFaultClassName(DeviceFaultClass::kShardStuck),
               "shard_stuck");
  EXPECT_STREQ(DeviceFaultClassName(DeviceFaultClass::kShardSlow),
               "shard_slow");
  EXPECT_STREQ(DeviceFaultClassName(DeviceFaultClass::kLinkDown),
               "link_down");
}

}  // namespace
}  // namespace gpujoin
