#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "mem/address_space.h"
#include "workload/key_column.h"
#include "workload/relation.h"
#include "workload/zipf.h"

namespace gpujoin::workload {
namespace {

// --- Key columns --------------------------------------------------------

TEST(DenseKeyColumn, KeysAndAddresses) {
  mem::AddressSpace space;
  DenseKeyColumn col(&space, 100, /*first_key=*/10, /*stride=*/3);
  EXPECT_EQ(col.size(), 100u);
  EXPECT_EQ(col.key_at(0), 10);
  EXPECT_EQ(col.key_at(5), 25);
  EXPECT_EQ(col.min_key(), 10);
  EXPECT_EQ(col.max_key(), 10 + 99 * 3);
  EXPECT_EQ(col.addr_of(2) - col.addr_of(0), 16u);
}

TEST(JitteredKeyColumn, StrictlyIncreasingAndUnique) {
  mem::AddressSpace space;
  JitteredKeyColumn col(&space, 10000, /*stride=*/16, /*seed=*/7);
  for (uint64_t i = 1; i < col.size(); ++i) {
    ASSERT_LT(col.key_at(i - 1), col.key_at(i)) << "at " << i;
  }
}

TEST(JitteredKeyColumn, DeterministicAcrossInstances) {
  mem::AddressSpace space;
  JitteredKeyColumn a(&space, 100, 16, 7);
  JitteredKeyColumn b(&space, 100, 16, 7);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(a.key_at(i), b.key_at(i));
}

TEST(MaterializedKeyColumn, WrapsVector) {
  mem::AddressSpace space;
  MaterializedKeyColumn col(&space, {3, 7, 8, 100});
  EXPECT_EQ(col.size(), 4u);
  EXPECT_EQ(col.key_at(2), 8);
}

TEST(GenerateSortedUniqueKeys, SortedAndUnique) {
  auto keys = GenerateSortedUniqueKeys(10000, /*seed=*/3);
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]);
  }
}

TEST(KeyColumn, LowerBoundMatchesStd) {
  mem::AddressSpace space;
  auto keys = GenerateSortedUniqueKeys(5000, 11);
  MaterializedKeyColumn col(&space, keys);
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Key probe = static_cast<Key>(rng.NextBounded(
        static_cast<uint64_t>(keys.back() + 10)));
    const auto expected =
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin();
    EXPECT_EQ(col.LowerBound(probe), static_cast<uint64_t>(expected));
  }
}

TEST(KeyColumn, LowerBoundEdges) {
  mem::AddressSpace space;
  MaterializedKeyColumn col(&space, {10, 20, 30});
  EXPECT_EQ(col.LowerBound(5), 0u);
  EXPECT_EQ(col.LowerBound(10), 0u);
  EXPECT_EQ(col.LowerBound(11), 1u);
  EXPECT_EQ(col.LowerBound(30), 2u);
  EXPECT_EQ(col.LowerBound(31), 3u);
}

// --- Zipf ---------------------------------------------------------------

TEST(Zipf, UniformWhenExponentZero) {
  ZipfSampler zipf(100, 0.0);
  Xoshiro256 rng(1);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [rank, c] : counts) {
    EXPECT_NEAR(c, n / 100, n / 100 * 0.35) << "rank " << rank;
  }
}

TEST(Zipf, RanksInRange) {
  ZipfSampler zipf(1000, 1.2);
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 1000u);
  }
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  ZipfSampler zipf(uint64_t{1} << 20, 1.5);
  Xoshiro256 rng(3);
  int rank0 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) == 0) ++rank0;
  }
  // zeta(1.5) ~ 2.612 => p(rank 0) ~ 0.383.
  EXPECT_NEAR(static_cast<double>(rank0) / n, 0.383, 0.05);
}

TEST(Zipf, HottestProbabilityMatchesEmpirical) {
  ZipfSampler zipf(10000, 1.0);
  Xoshiro256 rng(4);
  int rank0 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) == 0) ++rank0;
  }
  EXPECT_NEAR(zipf.HottestProbability(),
              static_cast<double>(rank0) / n, 0.02);
}

TEST(Zipf, FollowsPowerLaw) {
  ZipfSampler zipf(1 << 16, 1.0);
  Xoshiro256 rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 300000; ++i) ++counts[zipf.Sample(rng)];
  // p(0)/p(9) should be ~10 for exponent 1.
  ASSERT_GT(counts[0], 0);
  ASSERT_GT(counts[9], 0);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
  EXPECT_NEAR(ratio, 10.0, 3.0);
}

TEST(Zipf, HottestProbabilityContinuousAcrossExponentOne) {
  // s == 1 is a separate analytic branch (logarithmic harmonic sum);
  // property-check it against the empirical rank-0 frequency and against
  // its neighbors so the branch can't drift from the generic formula.
  const uint64_t n = 10000;
  const double p_low = ZipfSampler(n, 0.999).HottestProbability();
  const double p_one = ZipfSampler(n, 1.0).HottestProbability();
  const double p_high = ZipfSampler(n, 1.001).HottestProbability();
  EXPECT_LT(p_low, p_one);
  EXPECT_LT(p_one, p_high);
  EXPECT_NEAR(p_low, p_one, 5e-4);
  EXPECT_NEAR(p_high, p_one, 5e-4);

  int seed = 7;
  for (double exponent : {0.999, 1.0, 1.001}) {
    ZipfSampler zipf(n, exponent);
    Xoshiro256 rng(seed++);
    int rank0 = 0;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i) {
      if (zipf.Sample(rng) == 0) ++rank0;
    }
    EXPECT_NEAR(zipf.HottestProbability(),
                static_cast<double>(rank0) / draws, 0.01)
        << "exponent " << exponent;
  }
}

TEST(Zipf, HugeDomainsSampleInConstantTime) {
  // The paper's R reaches 2^33.9 tuples; sampling must not need tables.
  ZipfSampler zipf(uint64_t{1} << 34, 1.75);
  Xoshiro256 rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), uint64_t{1} << 34);
  }
}

// --- Probe relation ------------------------------------------------------

TEST(ProbeRelation, AllKeysExistInR) {
  mem::AddressSpace space;
  DenseKeyColumn r(&space, 1 << 16);
  ProbeConfig cfg;
  cfg.full_size = 1 << 16;
  cfg.sample_size = 1 << 12;
  ProbeRelation s = MakeProbeRelation(&space, r, cfg);
  EXPECT_EQ(s.sample_size(), cfg.sample_size);
  EXPECT_DOUBLE_EQ(s.scale(), 16.0);
  for (uint64_t i = 0; i < s.sample_size(); ++i) {
    const uint64_t pos = s.true_positions[i];
    ASSERT_EQ(r.key_at(pos), s.keys[i]);
  }
}

TEST(ProbeRelation, DeterministicForSeed) {
  mem::AddressSpace space;
  DenseKeyColumn r(&space, 1 << 16);
  ProbeConfig cfg;
  cfg.full_size = 1 << 14;
  cfg.sample_size = 1 << 10;
  cfg.seed = 9;
  ProbeRelation a = MakeProbeRelation(&space, r, cfg);
  ProbeRelation b = MakeProbeRelation(&space, r, cfg);
  for (uint64_t i = 0; i < a.sample_size(); ++i) {
    EXPECT_EQ(a.keys[i], b.keys[i]);
  }
}

TEST(ProbeRelation, ZipfProducesHotKeys) {
  mem::AddressSpace space;
  DenseKeyColumn r(&space, 1 << 20);
  ProbeConfig cfg;
  cfg.full_size = 1 << 16;
  cfg.sample_size = 1 << 16;
  cfg.zipf_exponent = 1.5;
  ProbeRelation s = MakeProbeRelation(&space, r, cfg);
  std::map<Key, int> counts;
  for (uint64_t i = 0; i < s.sample_size(); ++i) ++counts[s.keys[i]];
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  // With exponent 1.5 the hottest key draws a large share.
  EXPECT_GT(max_count, static_cast<int>(s.sample_size() / 10));
  // And the keys still all exist in R.
  for (uint64_t i = 0; i < s.sample_size(); ++i) {
    ASSERT_EQ(r.key_at(s.true_positions[i]), s.keys[i]);
  }
}

}  // namespace
}  // namespace gpujoin::workload
