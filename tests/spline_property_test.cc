// Property sweeps over the RadixSpline components: the greedy corridor
// bound must hold for every error budget and data shape, and the full
// index must return exact lower bounds under every (radix_bits x
// max_error) configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "index/radix_spline.h"
#include "index/spline.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/rng.h"
#include "workload/key_column.h"

namespace gpujoin::index {
namespace {

using workload::GenerateSortedUniqueKeys;
using workload::Key;
using workload::MaterializedKeyColumn;

class GreedyCorridorTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyCorridorTest, ErrorBoundHoldsEverywhere) {
  const uint64_t max_error = GetParam();
  mem::AddressSpace space;
  // Irregular gaps stress the corridor.
  MaterializedKeyColumn col(&space, GenerateSortedUniqueKeys(
                                        30000, /*seed=*/500 + max_error,
                                        /*max_gap=*/64));
  auto points = BuildGreedySplinePoints(col, max_error);
  ASSERT_GE(points.size(), 2u);

  size_t seg = 0;
  for (uint64_t i = 0; i < col.size(); ++i) {
    const Key k = col.key_at(i);
    while (points[seg + 1].key < k) ++seg;
    const auto& a = points[seg];
    const auto& b = points[seg + 1];
    const double slope = static_cast<double>(b.pos - a.pos) /
                         static_cast<double>(b.key - a.key);
    const double est =
        static_cast<double>(a.pos) + slope * static_cast<double>(k - a.key);
    ASSERT_LE(std::abs(est - static_cast<double>(i)),
              static_cast<double>(max_error) + 1.0)
        << "position " << i << " error budget " << max_error;
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorBudgets, GreedyCorridorTest,
                         ::testing::Values(1, 2, 4, 16, 64, 256, 1024),
                         [](const auto& info) {
                           return "err" + std::to_string(info.param);
                         });

class RadixSplineConfigTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RadixSplineConfigTest, ExactLowerBoundsUnderAllConfigs) {
  const auto [radix_bits, max_error] = GetParam();
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  MaterializedKeyColumn col(&space,
                            GenerateSortedUniqueKeys(20000, 42, 32));

  RadixSplineIndex::Options opts;
  opts.radix_bits = radix_bits;
  opts.max_error = max_error;
  auto index = RadixSplineIndex::Build(&space, &col, opts);

  Xoshiro256 rng(7);
  for (int batch = 0; batch < 8; ++batch) {
    std::array<Key, 32> keys{};
    std::array<uint64_t, 32> pos{};
    for (auto& k : keys) {
      k = static_cast<Key>(
          rng.NextBounded(static_cast<uint64_t>(col.max_key()) + 10));
    }
    gpu.RunKernel("lookup", 32, [&](sim::Warp& warp) {
      index->LookupWarp(warp, keys.data(), warp.full_mask(), pos.data());
    });
    for (int lane = 0; lane < 32; ++lane) {
      ASSERT_EQ(pos[lane], col.LowerBound(keys[lane]))
          << "rb=" << radix_bits << " err=" << max_error << " key "
          << keys[lane];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RadixSplineConfigTest,
    ::testing::Combine(::testing::Values(4, 8, 12, 18, 24),
                       ::testing::Values(uint64_t{4}, uint64_t{32},
                                         uint64_t{256})),
    [](const auto& info) {
      return "rb" + std::to_string(std::get<0>(info.param)) + "_err" +
             std::to_string(std::get<1>(info.param));
    });

TEST(UniformSplineIntervals, AllIntervalsCoverAndStaySorted) {
  mem::AddressSpace space;
  workload::JitteredKeyColumn col(&space, 50000, 16, 3);
  for (uint64_t interval : {2u, 7u, 64u, 1024u, 65536u}) {
    UniformSpline spline(&space, &col, interval);
    ASSERT_GE(spline.num_points(), 2u);
    EXPECT_EQ(spline.point_pos(0), 0u);
    EXPECT_EQ(spline.point_pos(spline.num_points() - 1), col.size() - 1);
    for (uint64_t i = 1; i < spline.num_points(); ++i) {
      ASSERT_LT(spline.point_key(i - 1), spline.point_key(i))
          << "interval " << interval;
      ASSERT_LT(spline.point_pos(i - 1), spline.point_pos(i));
    }
  }
}

TEST(GreedySplineStorage, AddressesAreContiguous16Bytes) {
  mem::AddressSpace space;
  MaterializedKeyColumn col(&space, GenerateSortedUniqueKeys(5000, 1));
  GreedySpline spline(&space, col, 16);
  for (uint64_t i = 1; i < spline.num_points(); ++i) {
    EXPECT_EQ(spline.point_addr(i) - spline.point_addr(i - 1),
              sizeof(SplinePoint));
  }
  EXPECT_EQ(spline.footprint_bytes(),
            spline.num_points() * sizeof(SplinePoint));
}

}  // namespace
}  // namespace gpujoin::index
