#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "core/experiment.h"
#include "mem/address_space.h"
#include "obs/emitter.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/phase_timeline.h"
#include "obs/tenant.h"
#include "sim/gpu.h"
#include "sim/memory_model.h"
#include "sim/phase.h"
#include "sim/specs.h"
#include "util/units.h"

namespace gpujoin::obs {
namespace {

// --- JsonWriter -------------------------------------------------------

TEST(JsonWriter, NestedObjectsAndArrays) {
  JsonWriter w;
  w.BeginObject()
      .Key("a")
      .Uint(1)
      .Key("b")
      .BeginArray()
      .Int(-2)
      .Bool(true)
      .Null()
      .EndArray()
      .Key("c")
      .BeginObject()
      .Key("d")
      .String("x")
      .EndObject()
      .EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[-2,true,null],"c":{"d":"x"}})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.String("a\"b\\c\n\t\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriter, DoublesRoundTripAndNonFiniteIsNull) {
  EXPECT_EQ(JsonWriter::Encode(0.5), "0.5");
  EXPECT_EQ(JsonWriter::Encode(1e21), "1e+21");
  JsonWriter w;
  w.BeginArray()
      .Double(std::nan(""))
      .Double(INFINITY)
      .Double(-INFINITY)
      .EndArray();
  EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter w;
  w.BeginObject().Key("p").Raw("[1,2]").Key("q").Uint(3).EndObject();
  EXPECT_EQ(w.str(), R"({"p":[1,2],"q":3})");
}

// --- MetricsRegistry --------------------------------------------------

TEST(MetricsRegistry, RegistersAllKinds) {
  MetricsRegistry reg;
  reg.SetScalar("run.seconds", 1.5, "s");
  reg.SetCounter("counter.faults", 3, "1");
  reg.SetRatio("ratio.hit_rate", 9, 12, "1");

  const Metric* scalar = reg.Find("run.seconds");
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->kind, MetricKind::kScalar);
  EXPECT_DOUBLE_EQ(scalar->value, 1.5);

  const Metric* counter = reg.Find("counter.faults");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->count, 3u);

  const Metric* ratio = reg.Find("ratio.hit_rate");
  ASSERT_NE(ratio, nullptr);
  EXPECT_DOUBLE_EQ(ratio->value, 0.75);
  EXPECT_DOUBLE_EQ(ratio->numerator, 9);
  EXPECT_DOUBLE_EQ(ratio->denominator, 12);
}

TEST(MetricsRegistry, ZeroDenominatorStaysExplicit) {
  MetricsRegistry reg;
  reg.SetRatio("r", 5, 0, "1");
  const Metric* m = reg.Find("r");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 0);
  EXPECT_DOUBLE_EQ(m->numerator, 5);
  EXPECT_DOUBLE_EQ(m->denominator, 0);
}

TEST(MetricsRegistry, AddCounterAccumulates) {
  MetricsRegistry reg;
  reg.AddCounter("c", 2, "1");
  reg.AddCounter("c", 3, "1");
  EXPECT_EQ(reg.Find("c")->count, 5u);
}

TEST(MetricsRegistry, EmitsSortedByName) {
  MetricsRegistry reg;
  reg.SetScalar("zeta", 1, "s");
  reg.SetScalar("alpha", 2, "s");
  JsonWriter w;
  reg.WriteJson(w);
  const std::string out = w.str();
  EXPECT_LT(out.find("alpha"), out.find("zeta"));
}

// --- PhaseTimeline ----------------------------------------------------

class PhaseTimelineTest : public ::testing::Test {
 protected:
  PhaseTimelineTest()
      : host_(space_.Reserve(kGiB, mem::MemKind::kHost, "h")),
        model_(&space_, sim::TeslaV100()),
        timeline_(&model_) {
    timeline_.AttachTo(&model_);
  }

  mem::AddressSpace space_;
  mem::Region host_;
  sim::MemoryModel model_;
  PhaseTimeline timeline_;
};

TEST_F(PhaseTimelineTest, RecordsCounterDeltaPerPhase) {
  {
    sim::PhaseScope phase(model_.phase_sink(), "probe.lookup");
    model_.Access(host_.base, 8, sim::AccessType::kRead);
    model_.Access(host_.base + 4 * kMiB, 8, sim::AccessType::kRead);
  }
  model_.Access(host_.base + 8 * kMiB, 8, sim::AccessType::kRead);  // outside

  const auto spans = timeline_.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "probe.lookup");
  EXPECT_EQ(spans[0].window, sim::PhaseSpan::kNoWindow);
  EXPECT_EQ(spans[0].enter_count, 1u);
  EXPECT_EQ(spans[0].delta.memory_transactions, 2u);
  EXPECT_EQ(spans[0].observed_transactions, 2u);
}

TEST_F(PhaseTimelineTest, AggregatesReenteredPhases) {
  for (int i = 0; i < 3; ++i) {
    sim::PhaseScope phase(model_.phase_sink(), "hj.build");
    model_.Access(host_.base + i * 4 * kMiB, 8, sim::AccessType::kRead);
  }
  const auto spans = timeline_.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].enter_count, 3u);
  EXPECT_EQ(spans[0].delta.memory_transactions, 3u);
}

TEST_F(PhaseTimelineTest, WindowsSplitSpans) {
  for (uint64_t w = 0; w < 2; ++w) {
    sim::WindowScope window(model_.phase_sink(), w);
    sim::PhaseScope phase(model_.phase_sink(), "probe.lookup");
    model_.Access(host_.base + w * 4 * kMiB, 8, sim::AccessType::kRead);
  }
  const auto spans = timeline_.Spans();
  // Two "window" spans plus two per-window "probe.lookup" spans.
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "window");
  EXPECT_EQ(spans[0].window, 0);
  EXPECT_EQ(spans[1].name, "probe.lookup");
  EXPECT_EQ(spans[1].window, 0);
  EXPECT_EQ(spans[2].name, "window");
  EXPECT_EQ(spans[2].window, 1);
  EXPECT_EQ(spans[3].name, "probe.lookup");
  EXPECT_EQ(spans[3].window, 1);
}

TEST_F(PhaseTimelineTest, NestedPhasesChargeInclusively) {
  {
    sim::PhaseScope outer(model_.phase_sink(), "partition.scatter");
    model_.Access(host_.base, 8, sim::AccessType::kRead);
    {
      sim::PhaseScope inner(model_.phase_sink(), "partition.spill");
      model_.Access(host_.base + 4 * kMiB, 8, sim::AccessType::kRead);
    }
  }
  const auto spans = timeline_.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].delta.memory_transactions, 2u);  // outer: both
  EXPECT_EQ(spans[1].delta.memory_transactions, 1u);  // inner: its own
}

TEST_F(PhaseTimelineTest, StreamsAreObserved) {
  {
    sim::PhaseScope phase(model_.phase_sink(), "probe.stage_in");
    model_.Stream(host_.base, 4096, sim::AccessType::kRead);
  }
  const auto spans = timeline_.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].observed_stream_bytes, 4096u);
}

TEST_F(PhaseTimelineTest, ResetClearsAndDetachStops) {
  {
    sim::PhaseScope phase(model_.phase_sink(), "p");
    model_.Access(host_.base, 8, sim::AccessType::kRead);
  }
  timeline_.Reset();
  EXPECT_TRUE(timeline_.Spans().empty());

  timeline_.DetachFrom(&model_);
  model_.Access(host_.base, 8, sim::AccessType::kRead);
  EXPECT_TRUE(timeline_.Spans().empty());
  EXPECT_EQ(model_.observer_count(), 0u);
  EXPECT_EQ(model_.phase_sink(), nullptr);
}

TEST_F(PhaseTimelineTest, NullSinkScopesAreNoOps) {
  sim::PhaseScope phase(nullptr, "p");
  sim::WindowScope window(nullptr, 0);
  model_.Access(host_.base, 8, sim::AccessType::kRead);
  const auto spans = timeline_.Spans();
  EXPECT_TRUE(spans.empty());
}

// --- RecordBuilder ----------------------------------------------------

TEST(RecordBuilder, AssemblesSchemaV1Record) {
  RecordBuilder rec("unit_test");
  rec.SetPlatform(sim::V100NvLink2());
  rec.AddParam("r_tuples", uint64_t{123});
  rec.AddParam("label", "abc");
  rec.AddParam("skew", 1.5);
  rec.AddParam("flag", true);

  sim::RunResult run;
  run.label = "inlj";
  run.seconds = 2.0;
  run.counters.translation_requests = 7;
  run.AddStage("join", 2.0);
  sim::PhaseSpan span;
  span.name = "probe.lookup";
  span.window = 0;
  span.seconds = 1.0;
  run.phase_spans.push_back(span);
  rec.SetRun(run);
  rec.metrics().SetScalar("qps", 0.5, "1/s");

  const std::string line = rec.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(line.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(line.find("\"r_tuples\":123"), std::string::npos);
  EXPECT_NE(line.find("\"label\":\"abc\""), std::string::npos);
  EXPECT_NE(line.find("\"translation_requests\":7"), std::string::npos);
  EXPECT_NE(line.find("\"probe.lookup\""), std::string::npos);
  EXPECT_NE(line.find("\"qps\""), std::string::npos);
  // Params keep insertion order (r_tuples before skew before flag).
  EXPECT_LT(line.find("r_tuples"), line.find("skew"));
  EXPECT_LT(line.find("skew"), line.find("flag"));
}

TEST(RecordBuilder, MinimalRecordOmitsOptionalSections) {
  RecordBuilder rec("tiny");
  const std::string line = rec.ToJsonLine();
  EXPECT_NE(line.find("\"schema_version\":1"), std::string::npos);
  EXPECT_EQ(line.find("\"run\""), std::string::npos);
  EXPECT_EQ(line.find("\"platform\""), std::string::npos);
  EXPECT_EQ(line.find("\"trace\""), std::string::npos);
  EXPECT_EQ(line.find("\"metrics\""), std::string::npos);
}

TEST(RecordBuilder, DeterministicAcrossIdenticalInputs) {
  auto build = [] {
    RecordBuilder rec("det");
    rec.SetPlatform(sim::V100NvLink2());
    rec.AddParam("x", 0.1);
    sim::RunResult run;
    run.seconds = 1.25;
    rec.SetRun(run);
    return rec.ToJsonLine();
  };
  EXPECT_EQ(build(), build());
}

// --- End-to-end through core::Experiment ------------------------------

TEST(LogHistogram, QuantileTreatsNonFiniteAndOutOfRangeDeterministically) {
  LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-3);

  // Out-of-range q clamps to the ends of the distribution.
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(7.5), h.Quantile(1.0));
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());

  // NaN would sail through std::clamp (all comparisons false) into a
  // float->uint64 cast; it must resolve like q = 0 instead, as must the
  // infinities.
  EXPECT_DOUBLE_EQ(h.Quantile(std::nan("")), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(std::numeric_limits<double>::infinity()),
                   h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(-std::numeric_limits<double>::infinity()),
                   h.Quantile(0.0));

  // Empty histograms stay at zero for any q, finite or not.
  LogHistogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(std::nan("")), 0.0);
}

TEST(TenantStats, JsonSectionCoversTiersAndCache) {
  TenantStats stats;
  EXPECT_FALSE(stats.any());
  stats.scheduler = "fair";
  stats.tenants = 100;
  stats.tenants_seen = 42;
  stats.rogue_requests = 7;
  TenantTierStats tier;
  tier.tier = "gold";
  tier.weight = 4;
  tier.tenants = 50;
  tier.requests = 10;
  tier.admitted = 9;
  tier.shed_rate_limit = 1;
  tier.served = 9;
  tier.latency.Record(1e-3);
  stats.tiers.push_back(tier);
  stats.cache.reserved_bytes = 1 << 20;
  stats.cache.lookups = 10;
  stats.cache.hits = 6;
  stats.cache.misses = 4;
  EXPECT_TRUE(stats.any());

  const std::string json = TenantsJson(stats);
  EXPECT_NE(json.find("\"scheduler\":\"fair\""), std::string::npos);
  EXPECT_NE(json.find("\"tier\":\"gold\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_rate_limit\":1"), std::string::npos);
  EXPECT_NE(json.find("\"hits\":6"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Deterministic byte-for-byte across calls.
  EXPECT_EQ(json, TenantsJson(stats));
}

TEST(Observability, ExperimentProducesPhaseSpans) {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 30;
  cfg.s_tuples = uint64_t{1} << 20;
  cfg.s_sample = uint64_t{1} << 12;
  cfg.index_type = index::IndexType::kBinarySearch;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{1} << 18;

  auto exp = core::Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  (*exp)->EnableObservability();
  sim::RunResult res = (*exp)->RunInlj().value();
  ASSERT_FALSE(res.phase_spans.empty());

  bool saw_window = false, saw_lookup = false;
  double span_seconds = 0;
  for (const auto& span : res.phase_spans) {
    if (span.name == "window") {
      saw_window = true;
      span_seconds += span.seconds;
    }
    if (span.name == "probe.lookup") saw_lookup = true;
  }
  EXPECT_TRUE(saw_window);
  EXPECT_TRUE(saw_lookup);
  EXPECT_GT(span_seconds, 0.0);
}

}  // namespace
}  // namespace gpujoin::obs
