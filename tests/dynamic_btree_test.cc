#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "index/dynamic_btree.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/rng.h"

namespace gpujoin::index {
namespace {

using workload::Key;

class DynamicBTreeTest : public ::testing::Test {
 protected:
  DynamicBTreeTest() : gpu_(&space_, sim::V100NvLink2()) {}

  // Small nodes force deep trees and frequent splits/merges.
  DynamicBTree MakeSmallNodeTree() {
    DynamicBTree::Options opts;
    opts.node_bytes = 256;
    return DynamicBTree(&space_, opts);
  }

  mem::AddressSpace space_;
  sim::Gpu gpu_;
};

TEST_F(DynamicBTreeTest, EmptyTree) {
  DynamicBTree tree(&space_);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.Find(42).has_value());
  tree.CheckInvariants();
}

TEST_F(DynamicBTreeTest, InsertAndFind) {
  DynamicBTree tree(&space_);
  for (Key k = 0; k < 1000; ++k) ASSERT_TRUE(tree.Insert(k * 3, k).ok());
  EXPECT_EQ(tree.size(), 1000u);
  for (Key k = 0; k < 1000; ++k) {
    auto v = tree.Find(k * 3);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<uint64_t>(k));
    EXPECT_FALSE(tree.Find(k * 3 + 1).has_value());
  }
  tree.CheckInvariants();
}

TEST_F(DynamicBTreeTest, InsertOverwrites) {
  DynamicBTree tree(&space_);
  ASSERT_TRUE(tree.Insert(5, 1).ok());
  ASSERT_TRUE(tree.Insert(5, 2).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find(5), 2u);
}

TEST_F(DynamicBTreeTest, SplitsGrowTheTree) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (Key k = 0; k < 10000; ++k) {
    tree.Insert(k, static_cast<uint64_t>(k));
  }
  EXPECT_GE(tree.height(), 3);
  tree.CheckInvariants();
  for (Key k = 0; k < 10000; ++k) {
    ASSERT_TRUE(tree.Find(k).has_value()) << k;
  }
}

TEST_F(DynamicBTreeTest, ReverseAndRandomInsertOrders) {
  for (int order = 0; order < 2; ++order) {
    DynamicBTree tree = MakeSmallNodeTree();
    std::vector<Key> keys(5000);
    for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<Key>(i);
    if (order == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      Xoshiro256 rng(9);
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
      }
    }
    for (Key k : keys) tree.Insert(k, static_cast<uint64_t>(k) + 7);
    tree.CheckInvariants();
    EXPECT_EQ(tree.size(), keys.size());
    for (Key k : keys) EXPECT_EQ(*tree.Find(k), static_cast<uint64_t>(k) + 7);
  }
}

TEST_F(DynamicBTreeTest, EraseLeavesValidTree) {
  DynamicBTree tree = MakeSmallNodeTree();
  const int n = 4000;
  for (Key k = 0; k < n; ++k) tree.Insert(k, static_cast<uint64_t>(k));
  // Erase every other key.
  for (Key k = 0; k < n; k += 2) {
    ASSERT_TRUE(tree.Erase(k)) << k;
    if (k % 512 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(n) / 2);
  for (Key k = 0; k < n; ++k) {
    EXPECT_EQ(tree.Find(k).has_value(), k % 2 == 1) << k;
  }
}

TEST_F(DynamicBTreeTest, EraseMissingReturnsFalse) {
  DynamicBTree tree(&space_);
  tree.Insert(1, 1);
  EXPECT_FALSE(tree.Erase(2));
  EXPECT_TRUE(tree.Erase(1));
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_EQ(tree.size(), 0u);
}

TEST_F(DynamicBTreeTest, EraseEverythingShrinksToRoot) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (Key k = 0; k < 3000; ++k) tree.Insert(k, 0);
  EXPECT_GT(tree.height(), 1);
  for (Key k = 0; k < 3000; ++k) ASSERT_TRUE(tree.Erase(k));
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST_F(DynamicBTreeTest, MixedWorkloadMatchesReferenceMap) {
  DynamicBTree tree = MakeSmallNodeTree();
  std::map<Key, uint64_t> reference;
  Xoshiro256 rng(77);
  for (int op = 0; op < 30000; ++op) {
    const Key key = static_cast<Key>(rng.NextBounded(2000));
    if (rng.NextBounded(3) != 0) {
      const uint64_t value = rng.Next();
      tree.Insert(key, value);
      reference[key] = value;
    } else {
      const bool erased = tree.Erase(key);
      EXPECT_EQ(erased, reference.erase(key) > 0);
    }
    if (op % 4096 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto found = tree.Find(key);
    ASSERT_TRUE(found.has_value()) << key;
    EXPECT_EQ(*found, value);
  }
}

TEST_F(DynamicBTreeTest, WarpLookupMatchesFind) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (Key k = 0; k < 8000; ++k) tree.Insert(k * 2, static_cast<uint64_t>(k));

  std::vector<Key> probes;
  Xoshiro256 rng(13);
  for (int i = 0; i < 512; ++i) {
    probes.push_back(static_cast<Key>(rng.NextBounded(16005)));
  }
  std::vector<uint64_t> values(probes.size());
  std::vector<bool> found(probes.size());
  gpu_.RunKernel("lookup", probes.size(), [&](sim::Warp& warp) {
    std::array<Key, 32> k{};
    std::array<uint64_t, 32> v{};
    const uint64_t base = warp.base_item();
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      k[lane] = probes[base + lane];
    }
    const uint32_t f =
        tree.LookupWarp(warp, k.data(), warp.full_mask(), v.data());
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      values[base + lane] = v[lane];
      found[base + lane] = (f >> lane) & 1;
    }
  });
  for (size_t i = 0; i < probes.size(); ++i) {
    auto expected = tree.Find(probes[i]);
    ASSERT_EQ(found[i], expected.has_value()) << probes[i];
    if (expected.has_value()) {
      EXPECT_EQ(values[i], *expected);
    }
  }
  // The lookups must have charged simulated traffic.
  EXPECT_GT(gpu_.memory().counters().memory_transactions, 0u);
}

TEST_F(DynamicBTreeTest, LookupAfterHeavyChurnStillCorrect) {
  DynamicBTree tree = MakeSmallNodeTree();
  std::set<Key> live;
  Xoshiro256 rng(5);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const Key k = static_cast<Key>(rng.NextBounded(10000));
      tree.Insert(k, static_cast<uint64_t>(k));
      live.insert(k);
    }
    for (int i = 0; i < 1500; ++i) {
      const Key k = static_cast<Key>(rng.NextBounded(10000));
      tree.Erase(k);
      live.erase(k);
    }
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.size(), live.size());
  for (Key k = 0; k < 10000; k += 17) {
    EXPECT_EQ(tree.Find(k).has_value(), live.count(k) > 0) << k;
  }
}

TEST_F(DynamicBTreeTest, NodeRecyclingBoundsFootprint) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (int round = 0; round < 3; ++round) {
    for (Key k = 0; k < 3000; ++k) tree.Insert(k, 0);
    for (Key k = 0; k < 3000; ++k) tree.Erase(k);
  }
  // Freed nodes are recycled, not leaked.
  EXPECT_EQ(tree.num_nodes(), 1u);
  // And recycling keeps the chunked reservation from growing again: the
  // same churn a second time must not reserve more memory.
  const uint64_t footprint = tree.footprint_bytes();
  for (Key k = 0; k < 3000; ++k) tree.Insert(k, 0);
  EXPECT_EQ(tree.footprint_bytes(), footprint);
}

TEST_F(DynamicBTreeTest, ValidateOptionsBounds) {
  DynamicBTree::Options opts;
  EXPECT_TRUE(DynamicBTree::ValidateOptions(opts).ok());
  opts.node_bytes = DynamicBTree::kMinNodeBytes - 1;
  EXPECT_EQ(DynamicBTree::ValidateOptions(opts).code(),
            StatusCode::kInvalidArgument);
  opts.node_bytes = DynamicBTree::kMaxNodeBytes + 1;
  EXPECT_EQ(DynamicBTree::ValidateOptions(opts).code(),
            StatusCode::kInvalidArgument);
  opts.node_bytes = 4096;
  opts.max_nodes = DynamicBTree::kMinMaxNodes - 1;
  EXPECT_EQ(DynamicBTree::ValidateOptions(opts).code(),
            StatusCode::kInvalidArgument);
  opts.max_nodes = DynamicBTree::kMaxMaxNodes + 1;
  EXPECT_EQ(DynamicBTree::ValidateOptions(opts).code(),
            StatusCode::kInvalidArgument);
  opts.max_nodes = DynamicBTree::kMinMaxNodes;
  EXPECT_TRUE(DynamicBTree::ValidateOptions(opts).ok());
}

TEST_F(DynamicBTreeTest, BudgetExhaustionRefusesWithoutMutating) {
  DynamicBTree::Options opts;
  opts.node_bytes = 256;
  opts.max_nodes = 16;  // tiny budget: fills after a few hundred keys
  DynamicBTree tree(&space_, opts);

  // Fill until the budget refuses (never aborts).
  Key k = 0;
  Status last;
  while (true) {
    last = tree.Insert(k, static_cast<uint64_t>(k));
    if (!last.ok()) break;
    ++k;
    ASSERT_LT(k, 100000) << "tiny budget never filled";
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  const uint64_t size_at_refusal = tree.size();
  const uint64_t nodes_at_refusal = tree.num_nodes();

  // The refused insert left the tree untouched and fully usable.
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), size_at_refusal);
  EXPECT_EQ(tree.num_nodes(), nodes_at_refusal);
  for (Key probe = 0; probe < k; ++probe) {
    ASSERT_TRUE(tree.Find(probe).has_value()) << probe;
  }
  // Overwrites of existing keys still work at a full budget (they
  // allocate at most the worst-case headroom the pre-check demands, so
  // a refusal here is acceptable — but an *applied* overwrite must be
  // correct). Erasing frees slots and re-enables inserts.
  for (Key e = 0; e < k / 2; ++e) ASSERT_TRUE(tree.Erase(e));
  tree.CheckInvariants();
  EXPECT_TRUE(tree.Insert(k + 1, 7).ok());
  EXPECT_EQ(*tree.Find(k + 1), 7u);
  tree.CheckInvariants();
}

TEST_F(DynamicBTreeTest, FootprintReportsReservedBytesInChunks) {
  // A dedicated space so reserved-byte deltas are attributable.
  mem::AddressSpace space;
  DynamicBTree::Options opts;
  opts.node_bytes = 256;
  const uint64_t before = space.reserved_bytes(mem::MemKind::kHost);
  DynamicBTree tree(&space, opts);

  // footprint_bytes() is exactly what the tree reserved in the space —
  // the delta-memory accounting and the memory model agree.
  EXPECT_EQ(tree.footprint_bytes(),
            space.reserved_bytes(mem::MemKind::kHost) - before);
  // And it is chunked: a fresh tree holds far less than the full
  // max_nodes * node_bytes up-front reservation of the old code.
  EXPECT_LT(tree.footprint_bytes(), opts.max_nodes * opts.node_bytes / 64);

  const uint64_t fresh = tree.footprint_bytes();
  for (Key k = 0; k < 100000; ++k) {
    ASSERT_TRUE(tree.Insert(k, 0).ok());
  }
  EXPECT_GT(tree.footprint_bytes(), fresh);
  EXPECT_EQ(tree.footprint_bytes(),
            space.reserved_bytes(mem::MemKind::kHost) - before);
  // Reserved bytes cover every live node.
  EXPECT_GE(tree.footprint_bytes(), tree.num_nodes() * opts.node_bytes);
}

TEST_F(DynamicBTreeTest, ClearEmptiesButKeepsReservation) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (Key k = 0; k < 5000; ++k) ASSERT_TRUE(tree.Insert(k, 1).ok());
  const uint64_t footprint = tree.footprint_bytes();
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.Find(7).has_value());
  // Reserved chunks survive the reset (a drained delta reuses them).
  EXPECT_EQ(tree.footprint_bytes(), footprint);
  tree.CheckInvariants();
  for (Key k = 0; k < 5000; ++k) ASSERT_TRUE(tree.Insert(k, 2).ok());
  EXPECT_EQ(tree.footprint_bytes(), footprint);
  EXPECT_EQ(*tree.Find(123), 2u);
}

TEST_F(DynamicBTreeTest, VisitTraversesInKeyOrder) {
  DynamicBTree tree = MakeSmallNodeTree();
  Xoshiro256 rng(21);
  std::map<Key, uint64_t> reference;
  for (int i = 0; i < 4000; ++i) {
    const Key k = static_cast<Key>(rng.NextBounded(100000));
    const uint64_t v = rng.Next() >> 1;
    ASSERT_TRUE(tree.Insert(k, v).ok());
    reference[k] = v;
  }
  std::vector<std::pair<Key, uint64_t>> visited;
  tree.Visit([&](Key k, uint64_t v) { visited.emplace_back(k, v); });
  ASSERT_EQ(visited.size(), reference.size());
  auto it = reference.begin();
  for (const auto& [k, v] : visited) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

// Satellite regression: erasing a leaf's *first* key leaves its copied
// separator in the parent. The routing invariant (separators are lower
// bounds, not first-key mirrors) makes that safe; this fixed-seed test
// erases and re-inserts every key of a deep tree and checks that both
// CPU and warp routing still find them.
TEST_F(DynamicBTreeTest, EraseFirstLeafKeyThenReinsertRoutesCorrectly) {
  DynamicBTree tree = MakeSmallNodeTree();
  const Key n = 6000;
  for (Key k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Insert(k, static_cast<uint64_t>(k)).ok());
  }
  ASSERT_GE(tree.height(), 3);

  // Every key is some leaf's first key for *some* separator state along
  // the way; sweeping all of them necessarily hits the stale-separator
  // configuration many times.
  Xoshiro256 rng(0xE5A5E);
  std::vector<Key> order(static_cast<size_t>(n));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<Key>(i);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  for (Key k : order) {
    ASSERT_TRUE(tree.Erase(k)) << k;
    ASSERT_FALSE(tree.Find(k).has_value()) << k;
    // Re-insert the very key whose separator copy may now be stale: the
    // upper_bound routing must land it back in the covering leaf.
    ASSERT_TRUE(tree.Insert(k, static_cast<uint64_t>(k) + 1).ok());
    auto v = tree.Find(k);
    ASSERT_TRUE(v.has_value()) << k;
    ASSERT_EQ(*v, static_cast<uint64_t>(k) + 1) << k;
    if (k % 997 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(n));

  // The warp read path routes through the same separators.
  std::vector<Key> probes(order.begin(), order.begin() + 512);
  std::vector<uint64_t> values(probes.size());
  std::vector<bool> found(probes.size());
  gpu_.RunKernel("lookup", probes.size(), [&](sim::Warp& warp) {
    std::array<Key, 32> k{};
    std::array<uint64_t, 32> v{};
    const uint64_t base = warp.base_item();
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      k[lane] = probes[base + lane];
    }
    const uint32_t f =
        tree.LookupWarp(warp, k.data(), warp.full_mask(), v.data());
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      values[base + lane] = v[lane];
      found[base + lane] = (f >> lane) & 1;
    }
  });
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_TRUE(found[i]) << probes[i];
    EXPECT_EQ(values[i], static_cast<uint64_t>(probes[i]) + 1);
  }
}

// Satellite coverage: randomized insert/erase/overwrite interleaved with
// warp lookups, differential against std::map — including slot recycling
// after heavy erase phases and duplicate-key overwrites not bumping
// size_.
TEST_F(DynamicBTreeTest, InterleavedChurnWarpDifferentialVsMap) {
  DynamicBTree tree = MakeSmallNodeTree();
  std::map<Key, uint64_t> reference;
  Xoshiro256 rng(0xD1FF);
  const Key key_space = 3000;

  auto check_warp_batch = [&]() {
    std::vector<Key> probes;
    for (int i = 0; i < 128; ++i) {
      probes.push_back(static_cast<Key>(rng.NextBounded(key_space + 50)));
    }
    std::vector<uint64_t> values(probes.size());
    std::vector<bool> found(probes.size());
    gpu_.RunKernel("lookup", probes.size(), [&](sim::Warp& warp) {
      std::array<Key, 32> k{};
      std::array<uint64_t, 32> v{};
      const uint64_t base = warp.base_item();
      for (int lane = 0; lane < warp.lane_count(); ++lane) {
        k[lane] = probes[base + lane];
      }
      const uint32_t f =
          tree.LookupWarp(warp, k.data(), warp.full_mask(), v.data());
      for (int lane = 0; lane < warp.lane_count(); ++lane) {
        values[base + lane] = v[lane];
        found[base + lane] = (f >> lane) & 1;
      }
    });
    for (size_t i = 0; i < probes.size(); ++i) {
      auto it = reference.find(probes[i]);
      ASSERT_EQ(found[i], it != reference.end()) << probes[i];
      if (it != reference.end()) EXPECT_EQ(values[i], it->second);
    }
  };

  for (int phase = 0; phase < 6; ++phase) {
    const bool erase_heavy = phase % 2 == 1;
    for (int op = 0; op < 5000; ++op) {
      const Key key = static_cast<Key>(rng.NextBounded(key_space));
      const uint64_t roll = rng.NextBounded(erase_heavy ? 2 : 4);
      if (roll == 0) {
        const bool erased = tree.Erase(key);
        ASSERT_EQ(erased, reference.erase(key) > 0) << key;
      } else {
        // Half of these are overwrites of live keys once the map fills.
        const uint64_t value = rng.Next() >> 1;
        ASSERT_TRUE(tree.Insert(key, value).ok());
        reference[key] = value;
      }
      ASSERT_EQ(tree.size(), reference.size());
      if (op % 1000 == 0) check_warp_batch();
    }
    tree.CheckInvariants();
    check_warp_batch();
  }
  // Slot recycling kept the reservation bounded across the churn: the
  // live key space fits comfortably in far fewer nodes than the churn
  // touched.
  EXPECT_LE(tree.num_nodes(),
            2 * (static_cast<uint64_t>(key_space) / 7 + 10));
}

}  // namespace
}  // namespace gpujoin::index
