#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "index/dynamic_btree.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/rng.h"

namespace gpujoin::index {
namespace {

using workload::Key;

class DynamicBTreeTest : public ::testing::Test {
 protected:
  DynamicBTreeTest() : gpu_(&space_, sim::V100NvLink2()) {}

  // Small nodes force deep trees and frequent splits/merges.
  DynamicBTree MakeSmallNodeTree() {
    DynamicBTree::Options opts;
    opts.node_bytes = 256;
    return DynamicBTree(&space_, opts);
  }

  mem::AddressSpace space_;
  sim::Gpu gpu_;
};

TEST_F(DynamicBTreeTest, EmptyTree) {
  DynamicBTree tree(&space_);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.Find(42).has_value());
  tree.CheckInvariants();
}

TEST_F(DynamicBTreeTest, InsertAndFind) {
  DynamicBTree tree(&space_);
  for (Key k = 0; k < 1000; ++k) tree.Insert(k * 3, k);
  EXPECT_EQ(tree.size(), 1000u);
  for (Key k = 0; k < 1000; ++k) {
    auto v = tree.Find(k * 3);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<uint64_t>(k));
    EXPECT_FALSE(tree.Find(k * 3 + 1).has_value());
  }
  tree.CheckInvariants();
}

TEST_F(DynamicBTreeTest, InsertOverwrites) {
  DynamicBTree tree(&space_);
  tree.Insert(5, 1);
  tree.Insert(5, 2);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find(5), 2u);
}

TEST_F(DynamicBTreeTest, SplitsGrowTheTree) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (Key k = 0; k < 10000; ++k) {
    tree.Insert(k, static_cast<uint64_t>(k));
  }
  EXPECT_GE(tree.height(), 3);
  tree.CheckInvariants();
  for (Key k = 0; k < 10000; ++k) {
    ASSERT_TRUE(tree.Find(k).has_value()) << k;
  }
}

TEST_F(DynamicBTreeTest, ReverseAndRandomInsertOrders) {
  for (int order = 0; order < 2; ++order) {
    DynamicBTree tree = MakeSmallNodeTree();
    std::vector<Key> keys(5000);
    for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<Key>(i);
    if (order == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      Xoshiro256 rng(9);
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
      }
    }
    for (Key k : keys) tree.Insert(k, static_cast<uint64_t>(k) + 7);
    tree.CheckInvariants();
    EXPECT_EQ(tree.size(), keys.size());
    for (Key k : keys) EXPECT_EQ(*tree.Find(k), static_cast<uint64_t>(k) + 7);
  }
}

TEST_F(DynamicBTreeTest, EraseLeavesValidTree) {
  DynamicBTree tree = MakeSmallNodeTree();
  const int n = 4000;
  for (Key k = 0; k < n; ++k) tree.Insert(k, static_cast<uint64_t>(k));
  // Erase every other key.
  for (Key k = 0; k < n; k += 2) {
    ASSERT_TRUE(tree.Erase(k)) << k;
    if (k % 512 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(n) / 2);
  for (Key k = 0; k < n; ++k) {
    EXPECT_EQ(tree.Find(k).has_value(), k % 2 == 1) << k;
  }
}

TEST_F(DynamicBTreeTest, EraseMissingReturnsFalse) {
  DynamicBTree tree(&space_);
  tree.Insert(1, 1);
  EXPECT_FALSE(tree.Erase(2));
  EXPECT_TRUE(tree.Erase(1));
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_EQ(tree.size(), 0u);
}

TEST_F(DynamicBTreeTest, EraseEverythingShrinksToRoot) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (Key k = 0; k < 3000; ++k) tree.Insert(k, 0);
  EXPECT_GT(tree.height(), 1);
  for (Key k = 0; k < 3000; ++k) ASSERT_TRUE(tree.Erase(k));
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST_F(DynamicBTreeTest, MixedWorkloadMatchesReferenceMap) {
  DynamicBTree tree = MakeSmallNodeTree();
  std::map<Key, uint64_t> reference;
  Xoshiro256 rng(77);
  for (int op = 0; op < 30000; ++op) {
    const Key key = static_cast<Key>(rng.NextBounded(2000));
    if (rng.NextBounded(3) != 0) {
      const uint64_t value = rng.Next();
      tree.Insert(key, value);
      reference[key] = value;
    } else {
      const bool erased = tree.Erase(key);
      EXPECT_EQ(erased, reference.erase(key) > 0);
    }
    if (op % 4096 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto found = tree.Find(key);
    ASSERT_TRUE(found.has_value()) << key;
    EXPECT_EQ(*found, value);
  }
}

TEST_F(DynamicBTreeTest, WarpLookupMatchesFind) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (Key k = 0; k < 8000; ++k) tree.Insert(k * 2, static_cast<uint64_t>(k));

  std::vector<Key> probes;
  Xoshiro256 rng(13);
  for (int i = 0; i < 512; ++i) {
    probes.push_back(static_cast<Key>(rng.NextBounded(16005)));
  }
  std::vector<uint64_t> values(probes.size());
  std::vector<bool> found(probes.size());
  gpu_.RunKernel("lookup", probes.size(), [&](sim::Warp& warp) {
    std::array<Key, 32> k{};
    std::array<uint64_t, 32> v{};
    const uint64_t base = warp.base_item();
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      k[lane] = probes[base + lane];
    }
    const uint32_t f =
        tree.LookupWarp(warp, k.data(), warp.full_mask(), v.data());
    for (int lane = 0; lane < warp.lane_count(); ++lane) {
      values[base + lane] = v[lane];
      found[base + lane] = (f >> lane) & 1;
    }
  });
  for (size_t i = 0; i < probes.size(); ++i) {
    auto expected = tree.Find(probes[i]);
    ASSERT_EQ(found[i], expected.has_value()) << probes[i];
    if (expected.has_value()) {
      EXPECT_EQ(values[i], *expected);
    }
  }
  // The lookups must have charged simulated traffic.
  EXPECT_GT(gpu_.memory().counters().memory_transactions, 0u);
}

TEST_F(DynamicBTreeTest, LookupAfterHeavyChurnStillCorrect) {
  DynamicBTree tree = MakeSmallNodeTree();
  std::set<Key> live;
  Xoshiro256 rng(5);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const Key k = static_cast<Key>(rng.NextBounded(10000));
      tree.Insert(k, static_cast<uint64_t>(k));
      live.insert(k);
    }
    for (int i = 0; i < 1500; ++i) {
      const Key k = static_cast<Key>(rng.NextBounded(10000));
      tree.Erase(k);
      live.erase(k);
    }
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.size(), live.size());
  for (Key k = 0; k < 10000; k += 17) {
    EXPECT_EQ(tree.Find(k).has_value(), live.count(k) > 0) << k;
  }
}

TEST_F(DynamicBTreeTest, NodeRecyclingBoundsFootprint) {
  DynamicBTree tree = MakeSmallNodeTree();
  for (int round = 0; round < 3; ++round) {
    for (Key k = 0; k < 3000; ++k) tree.Insert(k, 0);
    for (Key k = 0; k < 3000; ++k) tree.Erase(k);
  }
  // Freed nodes are recycled, not leaked.
  EXPECT_EQ(tree.num_nodes(), 1u);
}

}  // namespace
}  // namespace gpujoin::index
