// Serving-layer tests: arrival generators, the micro-batch policy, and
// the end-to-end RequestServer against the windowed INLJ — batch
// boundaries under deterministic arrivals, latency at low load, and
// shedding with bounded tails past saturation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "core/window_join.h"
#include "obs/histogram.h"
#include "serve/arrival.h"
#include "serve/batcher.h"
#include "serve/server.h"

namespace gpujoin::serve {
namespace {

TEST(LogHistogram, TracksExactSummaryAndBucketedQuantiles) {
  obs::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0);

  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 0.1);
  EXPECT_NEAR(h.sum(), 5.050, 1e-9);
  // Buckets are ~9% wide: quantiles land within one bucket of truth.
  EXPECT_NEAR(h.Quantile(0.50), 0.050, 0.005);
  EXPECT_NEAR(h.Quantile(0.95), 0.095, 0.010);
  EXPECT_NEAR(h.Quantile(0.99), 0.099, 0.010);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.1);
}

TEST(ArrivalGenerator, DeterministicGapsAndReplay) {
  ArrivalConfig cfg;
  cfg.model = ArrivalModel::kDeterministic;
  cfg.rate = 1000;
  ArrivalGenerator gen(cfg);
  EXPECT_DOUBLE_EQ(gen.Next(), 1e-3);
  EXPECT_DOUBLE_EQ(gen.Next(), 2e-3);
  gen.Reset();
  EXPECT_DOUBLE_EQ(gen.Next(), 1e-3);
}

TEST(ArrivalGenerator, PoissonMeanRateConverges) {
  ArrivalConfig cfg;
  cfg.rate = 1e4;
  cfg.seed = 7;
  ArrivalGenerator gen(cfg);
  double last = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) last = gen.Next();
  // Mean of n exponential gaps concentrates around n/rate.
  EXPECT_NEAR(last, n / cfg.rate, 0.1 * n / cfg.rate);
}

TEST(ArrivalGenerator, OnOffPreservesMeanRateAndIsBursty) {
  ArrivalConfig cfg;
  cfg.model = ArrivalModel::kOnOff;
  cfg.rate = 1e4;
  cfg.burst_factor = 8;
  cfg.mean_on_seconds = 2e-3;
  cfg.seed = 11;
  ArrivalGenerator gen(cfg);
  double last = 0;
  double min_gap = 1e9;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double t = gen.Next();
    min_gap = std::min(min_gap, t - last);
    last = t;
  }
  ASSERT_GT(last, 0);
  EXPECT_NEAR(last, n / cfg.rate, 0.2 * n / cfg.rate);
  // Inside a burst, gaps run at 8x the mean rate.
  EXPECT_LT(min_gap, 1.0 / cfg.rate);
}

TEST(MicroBatcher, AdaptsWithinTheSweetSpotBand) {
  BatchPolicy policy;
  policy.batch_tuples = policy.min_batch_tuples;
  MicroBatcher b(policy);

  // Deep backlog doubles the batch up to the 52 MiB cap.
  for (int i = 0; i < 20; ++i) b.ObserveBacklog(b.batch_tuples() * 4);
  EXPECT_EQ(b.batch_tuples(), policy.max_batch_tuples);
  EXPECT_GT(b.grows(), 0u);

  // An idle queue shrinks it back down to the 4 MiB floor.
  for (int i = 0; i < 20; ++i) b.ObserveBacklog(0);
  EXPECT_EQ(b.batch_tuples(), policy.min_batch_tuples);
  EXPECT_GT(b.shrinks(), 0u);

  MicroBatcher fixed({.adaptive = false});
  for (int i = 0; i < 5; ++i) fixed.ObserveBacklog(1u << 30);
  EXPECT_EQ(fixed.batch_tuples(), BatchPolicy{}.batch_tuples);
}

core::ExperimentConfig ServeExperimentConfig() {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 22;
  cfg.s_tuples = uint64_t{1} << 18;
  cfg.s_sample = uint64_t{1} << 15;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  return cfg;
}

// Time to service one `tuples`-sized window, on a fresh experiment, so
// the serving expectations below are phrased against the cost model
// rather than hard-coded times.
double CalibrateWindowSeconds(uint64_t tuples) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  EXPECT_TRUE(exp.ok());
  (*exp)->ResetForRun();
  auto joiner = core::WindowJoiner::Create(
      (*exp)->gpu(), (*exp)->index(), (*exp)->s(),
      ServeExperimentConfig().inlj, (*exp)->s().sample_size());
  EXPECT_TRUE(joiner.ok());
  return joiner->RunWindow(0, tuples, 0).value().seconds();
}

TEST(RequestServer, DeterministicArrivalsCloseExactBatches) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();

  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  sc.arrival.rate = 1e5;
  sc.requests = 1000;
  sc.tuples_per_request = 512;
  // Size trigger after exactly 4 requests; the deadline (much longer
  // than 4 arrival gaps) never fires except for the final partial batch.
  sc.batch.batch_tuples = 4 * sc.tuples_per_request;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.batch.deadline_seconds = 1.0;
  sc.max_backlog_tuples = 0;  // never shed

  RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                       ServeExperimentConfig().inlj, sc);
  ServeReport r = server.Run().value();

  EXPECT_EQ(r.counters.requests_admitted, sc.requests);
  EXPECT_EQ(r.counters.requests_shed, 0u);
  EXPECT_EQ(r.counters.batches, sc.requests / 4);
  EXPECT_EQ(r.counters.size_batches, sc.requests / 4);
  EXPECT_EQ(r.counters.deadline_batches, 0u);
  EXPECT_EQ(r.counters.tuples_served, sc.requests * sc.tuples_per_request);
  EXPECT_EQ(r.latency.count(), sc.requests);
}

TEST(RequestServer, LowRateLatencyApproachesOneWindowServiceTime) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();

  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  sc.tuples_per_request = 4096;
  // One request fills a batch exactly, so each request's sojourn time is
  // one window's service time — there is no queueing at low rate.
  sc.batch.batch_tuples = sc.tuples_per_request;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.requests = 200;
  const double window = CalibrateWindowSeconds(sc.tuples_per_request);
  sc.arrival.rate = 0.01 / window;  // 1% utilization
  sc.max_backlog_tuples = 0;

  RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                       ServeExperimentConfig().inlj, sc);
  ServeReport r = server.Run().value();

  EXPECT_EQ(r.counters.requests_shed, 0u);
  EXPECT_EQ(r.counters.batches, sc.requests);
  const double p99 = r.latency.Quantile(0.99);
  EXPECT_GT(p99, 0);
  EXPECT_LE(p99, 2 * window);
}

TEST(RequestServer, OverloadShedsAndBoundsTheTail) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();

  ServeConfig sc;
  sc.tuples_per_request = 4096;
  sc.batch.batch_tuples = uint64_t{1} << 15;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.requests = 4000;
  const double window = CalibrateWindowSeconds(sc.batch.batch_tuples);
  const double capacity =
      static_cast<double>(sc.batch.batch_tuples) / window;
  sc.arrival.rate = 2.0 * capacity / sc.tuples_per_request;  // 2x saturation
  sc.batch.deadline_seconds = window;
  sc.max_backlog_tuples = 8 * sc.batch.batch_tuples;

  RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                       ServeExperimentConfig().inlj, sc);
  ServeReport r = server.Run().value();

  // Admission control kicked in and kept the backlog (hence the tail)
  // bounded: worst-case sojourn is draining a full backlog plus one
  // batch's deadline and service.
  EXPECT_GT(r.counters.requests_shed, 0u);
  EXPECT_GT(r.counters.requests_admitted, 0u);
  const double drain =
      static_cast<double>(sc.max_backlog_tuples) / capacity;
  EXPECT_LE(r.latency.Quantile(0.99),
            drain + sc.batch.deadline_seconds + 2 * window);
}

TEST(RequestServer, RetryableFaultsInflateTailButDropNothing) {
  // Injected allocation failures push serving windows down the recovery
  // ladder (shrunken windows, unpartitioned fallbacks). Degraded service
  // is slower — the tail must inflate — but it is still service: every
  // admitted request completes and records a latency sample.
  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  sc.tuples_per_request = 4096;
  sc.batch.batch_tuples = sc.tuples_per_request;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.requests = 300;
  const double window = CalibrateWindowSeconds(sc.tuples_per_request);
  sc.arrival.rate = 0.01 / window;  // low load: no queueing, no shedding
  sc.max_backlog_tuples = 0;        // every request is admitted

  auto clean_exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(clean_exp.ok());
  (*clean_exp)->ResetForRun();
  RequestServer clean((*clean_exp)->gpu(), (*clean_exp)->index(),
                      (*clean_exp)->s(), ServeExperimentConfig().inlj, sc);
  const ServeReport clean_r = clean.Run().value();
  ASSERT_EQ(clean_r.counters.requests_shed, 0u);

  core::ExperimentConfig faulty_cfg = ServeExperimentConfig();
  // Reservations are rare (one per serving window), so the rate must be
  // high for the ladder to fire reliably within the run.
  faulty_cfg.fault.alloc_failure_rate = 0.75;
  auto faulty_exp = core::Experiment::Create(faulty_cfg);
  ASSERT_TRUE(faulty_exp.ok());
  (*faulty_exp)->ResetForRun();
  RequestServer faulty((*faulty_exp)->gpu(), (*faulty_exp)->index(),
                       (*faulty_exp)->s(), faulty_cfg.inlj, sc);
  const ServeReport r = faulty.Run().value();

  // No admitted request is ever dropped: same admissions, zero shed,
  // and a latency sample for every single request.
  EXPECT_EQ(r.counters.requests_admitted, clean_r.counters.requests_admitted);
  EXPECT_EQ(r.counters.requests_shed, 0u);
  EXPECT_EQ(r.latency.count(), sc.requests);
  EXPECT_EQ(r.counters.tuples_served, clean_r.counters.tuples_served);
  // But the degraded windows cost time: the tail inflates.
  EXPECT_GT(r.latency.Quantile(0.99), clean_r.latency.Quantile(0.99));
}

TEST(RequestServer, AdaptiveBatchingGrowsUnderLoad) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();

  ServeConfig sc;
  sc.tuples_per_request = 4096;
  sc.batch.batch_tuples = sc.batch.min_batch_tuples = uint64_t{1} << 13;
  sc.batch.max_batch_tuples = uint64_t{1} << 17;
  sc.requests = 4000;
  const double window = CalibrateWindowSeconds(sc.batch.batch_tuples);
  sc.arrival.rate = 1.5 * static_cast<double>(sc.batch.batch_tuples) /
                    window / sc.tuples_per_request;
  sc.batch.deadline_seconds = window;
  sc.max_backlog_tuples = 0;

  RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                       ServeExperimentConfig().inlj, sc);
  ServeReport r = server.Run().value();

  EXPECT_GT(r.counters.window_grows, 0u);
  EXPECT_GT(r.final_batch_tuples, sc.batch.min_batch_tuples);
}

}  // namespace
}  // namespace gpujoin::serve
