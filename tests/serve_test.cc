// Serving-layer tests: arrival generators, the micro-batch policy, and
// the end-to-end RequestServer against the windowed INLJ — batch
// boundaries under deterministic arrivals, latency at low load, and
// shedding with bounded tails past saturation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "core/window_join.h"
#include "obs/histogram.h"
#include "serve/arrival.h"
#include "serve/batcher.h"
#include "serve/server.h"

namespace gpujoin::serve {
namespace {

TEST(LogHistogram, TracksExactSummaryAndBucketedQuantiles) {
  obs::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0);

  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 0.1);
  EXPECT_NEAR(h.sum(), 5.050, 1e-9);
  // Buckets are ~9% wide: quantiles land within one bucket of truth.
  EXPECT_NEAR(h.Quantile(0.50), 0.050, 0.005);
  EXPECT_NEAR(h.Quantile(0.95), 0.095, 0.010);
  EXPECT_NEAR(h.Quantile(0.99), 0.099, 0.010);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.1);
}

TEST(ArrivalGenerator, DeterministicGapsAndReplay) {
  ArrivalConfig cfg;
  cfg.model = ArrivalModel::kDeterministic;
  cfg.rate = 1000;
  ArrivalGenerator gen(cfg);
  EXPECT_DOUBLE_EQ(gen.Next(), 1e-3);
  EXPECT_DOUBLE_EQ(gen.Next(), 2e-3);
  gen.Reset();
  EXPECT_DOUBLE_EQ(gen.Next(), 1e-3);
}

TEST(ArrivalGenerator, PoissonMeanRateConverges) {
  ArrivalConfig cfg;
  cfg.rate = 1e4;
  cfg.seed = 7;
  ArrivalGenerator gen(cfg);
  double last = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) last = gen.Next();
  // Mean of n exponential gaps concentrates around n/rate.
  EXPECT_NEAR(last, n / cfg.rate, 0.1 * n / cfg.rate);
}

TEST(ArrivalGenerator, OnOffPreservesMeanRateAndIsBursty) {
  ArrivalConfig cfg;
  cfg.model = ArrivalModel::kOnOff;
  cfg.rate = 1e4;
  cfg.burst_factor = 8;
  cfg.mean_on_seconds = 2e-3;
  cfg.seed = 11;
  ArrivalGenerator gen(cfg);
  double last = 0;
  double min_gap = 1e9;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double t = gen.Next();
    min_gap = std::min(min_gap, t - last);
    last = t;
  }
  ASSERT_GT(last, 0);
  EXPECT_NEAR(last, n / cfg.rate, 0.2 * n / cfg.rate);
  // Inside a burst, gaps run at 8x the mean rate.
  EXPECT_LT(min_gap, 1.0 / cfg.rate);
}

TEST(MicroBatcher, AdaptsWithinTheSweetSpotBand) {
  BatchPolicy policy;
  policy.batch_tuples = policy.min_batch_tuples;
  MicroBatcher b(policy);

  // Deep backlog doubles the batch up to the 52 MiB cap.
  for (int i = 0; i < 20; ++i) b.ObserveBacklog(b.batch_tuples() * 4);
  EXPECT_EQ(b.batch_tuples(), policy.max_batch_tuples);
  EXPECT_GT(b.grows(), 0u);

  // An idle queue shrinks it back down to the 4 MiB floor.
  for (int i = 0; i < 20; ++i) b.ObserveBacklog(0);
  EXPECT_EQ(b.batch_tuples(), policy.min_batch_tuples);
  EXPECT_GT(b.shrinks(), 0u);

  MicroBatcher fixed({.adaptive = false});
  for (int i = 0; i < 5; ++i) fixed.ObserveBacklog(1u << 30);
  EXPECT_EQ(fixed.batch_tuples(), BatchPolicy{}.batch_tuples);
}

TEST(BatchPolicy, ValidateNamesTheOffendingField) {
  const struct {
    void (*set)(BatchPolicy&);
    const char* names;
  } cases[] = {
      {[](BatchPolicy& p) { p.batch_tuples = 0; }, "batch_tuples"},
      {[](BatchPolicy& p) { p.min_batch_tuples = 0; }, "min_batch_tuples"},
      // The inverted band that would make std::clamp UB in the batcher.
      {[](BatchPolicy& p) {
         p.min_batch_tuples = 1024;
         p.max_batch_tuples = 512;
       },
       "min_batch_tuples"},
      // A zero deadline silently disables the deadline trigger and
      // leaves partial batches open forever.
      {[](BatchPolicy& p) { p.deadline_seconds = 0; }, "deadline_seconds"},
      {[](BatchPolicy& p) { p.deadline_seconds = -1; }, "deadline_seconds"},
      {[](BatchPolicy& p) { p.deadline_seconds = NAN; }, "deadline_seconds"},
  };
  for (const auto& c : cases) {
    BatchPolicy p;
    c.set(p);
    Status st = p.Validate();
    ASSERT_FALSE(st.ok()) << c.names;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << c.names;
    EXPECT_NE(st.ToString().find(c.names), std::string::npos)
        << st.ToString();
  }
  EXPECT_TRUE(BatchPolicy{}.Validate().ok());
}

TEST(MicroBatcher, InvertedBandIsWellDefinedAndMinWins) {
  // Even without Validate(), the batcher must not hit std::clamp's UB on
  // min > max: the starting size resolves to the min bound.
  BatchPolicy p;
  p.batch_tuples = 2048;
  p.min_batch_tuples = 1024;
  p.max_batch_tuples = 512;
  MicroBatcher b(p);
  EXPECT_EQ(b.batch_tuples(), 1024u);
}

TEST(MicroBatcher, TinyBatchesCanStillShrink) {
  // Regression: with batch_tuples < 4 the shrink threshold batch/4
  // truncated to 0 and `backlog < 0` could never fire, so a tiny batch
  // that had grown was pinned at its inflated size forever.
  BatchPolicy p;
  p.batch_tuples = 3;
  p.min_batch_tuples = 1;
  p.max_batch_tuples = 1 << 10;
  MicroBatcher b(p);
  ASSERT_EQ(b.batch_tuples(), 3u);
  b.ObserveBacklog(0);
  EXPECT_EQ(b.shrinks(), 1u);
  EXPECT_LT(b.batch_tuples(), 3u);
  // An idle queue walks it all the way down to the floor.
  for (int i = 0; i < 8; ++i) b.ObserveBacklog(0);
  EXPECT_EQ(b.batch_tuples(), p.min_batch_tuples);
}

TEST(ArrivalConfig, ValidateNamesTheOffendingField) {
  const struct {
    void (*set)(ArrivalConfig&);
    const char* names;
  } cases[] = {
      {[](ArrivalConfig& c) { c.rate = 0; }, "rate"},
      {[](ArrivalConfig& c) { c.rate = -5; }, "rate"},
      {[](ArrivalConfig& c) { c.rate = INFINITY; }, "rate"},
      // "Must be > 1" was documented on burst_factor but never enforced.
      {[](ArrivalConfig& c) {
         c.model = ArrivalModel::kOnOff;
         c.burst_factor = 1.0;
       },
       "burst_factor"},
      {[](ArrivalConfig& c) {
         c.model = ArrivalModel::kOnOff;
         c.burst_factor = NAN;
       },
       "burst_factor"},
      {[](ArrivalConfig& c) {
         c.model = ArrivalModel::kOnOff;
         c.mean_on_seconds = 0;
       },
       "mean_on_seconds"},
  };
  for (const auto& c : cases) {
    ArrivalConfig cfg;
    c.set(cfg);
    Status st = cfg.Validate();
    ASSERT_FALSE(st.ok()) << c.names;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << c.names;
    EXPECT_NE(st.ToString().find(c.names), std::string::npos)
        << st.ToString();
  }
  // A burst_factor of 1 on a *poisson* config is fine: the knob is
  // meaningless there and must not reject valid configs.
  ArrivalConfig poisson;
  poisson.burst_factor = 1.0;
  EXPECT_TRUE(poisson.Validate().ok());
}

core::ExperimentConfig ServeExperimentConfig() {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 22;
  cfg.s_tuples = uint64_t{1} << 18;
  cfg.s_sample = uint64_t{1} << 15;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  return cfg;
}

// Time to service one `tuples`-sized window, on a fresh experiment, so
// the serving expectations below are phrased against the cost model
// rather than hard-coded times.
double CalibrateWindowSeconds(uint64_t tuples) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  EXPECT_TRUE(exp.ok());
  (*exp)->ResetForRun();
  auto joiner = core::WindowJoiner::Create(
      (*exp)->gpu(), (*exp)->index(), (*exp)->s(),
      ServeExperimentConfig().inlj, (*exp)->s().sample_size());
  EXPECT_TRUE(joiner.ok());
  return joiner->RunWindow(0, tuples, 0).value().seconds();
}

TEST(RequestServer, DeterministicArrivalsCloseExactBatches) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();

  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  sc.arrival.rate = 1e5;
  sc.requests = 1000;
  sc.tuples_per_request = 512;
  // Size trigger after exactly 4 requests; the deadline (much longer
  // than 4 arrival gaps) never fires except for the final partial batch.
  sc.batch.batch_tuples = 4 * sc.tuples_per_request;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.batch.deadline_seconds = 1.0;
  sc.max_backlog_tuples = 0;  // never shed

  RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                       ServeExperimentConfig().inlj, sc);
  ServeReport r = server.Run().value();

  EXPECT_EQ(r.counters.requests_admitted, sc.requests);
  EXPECT_EQ(r.counters.requests_shed, 0u);
  EXPECT_EQ(r.counters.batches, sc.requests / 4);
  EXPECT_EQ(r.counters.size_batches, sc.requests / 4);
  EXPECT_EQ(r.counters.deadline_batches, 0u);
  EXPECT_EQ(r.counters.tuples_served, sc.requests * sc.tuples_per_request);
  EXPECT_EQ(r.latency.count(), sc.requests);
}

TEST(RequestServer, LowRateLatencyApproachesOneWindowServiceTime) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();

  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  sc.tuples_per_request = 4096;
  // One request fills a batch exactly, so each request's sojourn time is
  // one window's service time — there is no queueing at low rate.
  sc.batch.batch_tuples = sc.tuples_per_request;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.requests = 200;
  const double window = CalibrateWindowSeconds(sc.tuples_per_request);
  sc.arrival.rate = 0.01 / window;  // 1% utilization
  sc.max_backlog_tuples = 0;

  RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                       ServeExperimentConfig().inlj, sc);
  ServeReport r = server.Run().value();

  EXPECT_EQ(r.counters.requests_shed, 0u);
  EXPECT_EQ(r.counters.batches, sc.requests);
  const double p99 = r.latency.Quantile(0.99);
  EXPECT_GT(p99, 0);
  EXPECT_LE(p99, 2 * window);
}

TEST(RequestServer, OverloadShedsAndBoundsTheTail) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();

  ServeConfig sc;
  sc.tuples_per_request = 4096;
  sc.batch.batch_tuples = uint64_t{1} << 15;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.requests = 4000;
  const double window = CalibrateWindowSeconds(sc.batch.batch_tuples);
  const double capacity =
      static_cast<double>(sc.batch.batch_tuples) / window;
  sc.arrival.rate = 2.0 * capacity / sc.tuples_per_request;  // 2x saturation
  sc.batch.deadline_seconds = window;
  sc.max_backlog_tuples = 8 * sc.batch.batch_tuples;

  RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                       ServeExperimentConfig().inlj, sc);
  ServeReport r = server.Run().value();

  // Admission control kicked in and kept the backlog (hence the tail)
  // bounded: worst-case sojourn is draining a full backlog plus one
  // batch's deadline and service.
  EXPECT_GT(r.counters.requests_shed, 0u);
  EXPECT_GT(r.counters.requests_admitted, 0u);
  const double drain =
      static_cast<double>(sc.max_backlog_tuples) / capacity;
  EXPECT_LE(r.latency.Quantile(0.99),
            drain + sc.batch.deadline_seconds + 2 * window);
}

TEST(RequestServer, RetryableFaultsInflateTailButDropNothing) {
  // Injected allocation failures push serving windows down the recovery
  // ladder (shrunken windows, unpartitioned fallbacks). Degraded service
  // is slower — the tail must inflate — but it is still service: every
  // admitted request completes and records a latency sample.
  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  sc.tuples_per_request = 4096;
  sc.batch.batch_tuples = sc.tuples_per_request;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.requests = 300;
  const double window = CalibrateWindowSeconds(sc.tuples_per_request);
  sc.arrival.rate = 0.01 / window;  // low load: no queueing, no shedding
  sc.max_backlog_tuples = 0;        // every request is admitted

  auto clean_exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(clean_exp.ok());
  (*clean_exp)->ResetForRun();
  RequestServer clean((*clean_exp)->gpu(), (*clean_exp)->index(),
                      (*clean_exp)->s(), ServeExperimentConfig().inlj, sc);
  const ServeReport clean_r = clean.Run().value();
  ASSERT_EQ(clean_r.counters.requests_shed, 0u);

  core::ExperimentConfig faulty_cfg = ServeExperimentConfig();
  // Reservations are rare (one per serving window), so the rate must be
  // high for the ladder to fire reliably within the run.
  faulty_cfg.fault.alloc_failure_rate = 0.75;
  auto faulty_exp = core::Experiment::Create(faulty_cfg);
  ASSERT_TRUE(faulty_exp.ok());
  (*faulty_exp)->ResetForRun();
  RequestServer faulty((*faulty_exp)->gpu(), (*faulty_exp)->index(),
                       (*faulty_exp)->s(), faulty_cfg.inlj, sc);
  const ServeReport r = faulty.Run().value();

  // No admitted request is ever dropped: same admissions, zero shed,
  // and a latency sample for every single request.
  EXPECT_EQ(r.counters.requests_admitted, clean_r.counters.requests_admitted);
  EXPECT_EQ(r.counters.requests_shed, 0u);
  EXPECT_EQ(r.latency.count(), sc.requests);
  EXPECT_EQ(r.counters.tuples_served, clean_r.counters.tuples_served);
  // But the degraded windows cost time: the tail inflates.
  EXPECT_GT(r.latency.Quantile(0.99), clean_r.latency.Quantile(0.99));
}

TEST(RequestServer, AdaptiveBatchingGrowsUnderLoad) {
  auto exp = core::Experiment::Create(ServeExperimentConfig());
  ASSERT_TRUE(exp.ok());
  (*exp)->ResetForRun();

  ServeConfig sc;
  sc.tuples_per_request = 4096;
  sc.batch.batch_tuples = sc.batch.min_batch_tuples = uint64_t{1} << 13;
  sc.batch.max_batch_tuples = uint64_t{1} << 17;
  sc.requests = 4000;
  const double window = CalibrateWindowSeconds(sc.batch.batch_tuples);
  sc.arrival.rate = 1.5 * static_cast<double>(sc.batch.batch_tuples) /
                    window / sc.tuples_per_request;
  sc.batch.deadline_seconds = window;
  sc.max_backlog_tuples = 0;

  RequestServer server((*exp)->gpu(), (*exp)->index(), (*exp)->s(),
                       ServeExperimentConfig().inlj, sc);
  ServeReport r = server.Run().value();

  EXPECT_GT(r.counters.window_grows, 0u);
  EXPECT_GT(r.final_batch_tuples, sc.batch.min_batch_tuples);
}

// --------------------------------------------------------------------
// RetryPolicy: deadline budgets, seeded backoff retries, hedging

// Scriptable backend for the retry paths: a fixed service time per
// slice, the first `fail_first` ServiceSlice calls error (or all of
// them with fail_first < 0), and an optional faster replica services
// hedges. Counts every call so tests can assert exact retry budgets.
class FlakyBackend final : public WindowBackend {
 public:
  FlakyBackend(double slice_seconds, int fail_first,
               double hedge_seconds = 0)
      : slice_seconds_(slice_seconds),
        fail_first_(fail_first),
        hedge_seconds_(hedge_seconds) {}

  uint64_t sample_size() const override { return uint64_t{1} << 20; }

  Result<double> ServiceSlice(uint64_t, uint64_t, uint64_t) override {
    ++slice_calls_;
    if (fail_first_ < 0 || slice_calls_ <= fail_first_) {
      return Status::Internal("injected backend failure");
    }
    return slice_seconds_;
  }

  Result<double> ServiceHedge(uint64_t, uint64_t, uint64_t) override {
    ++hedge_calls_;
    return hedge_seconds_ > 0 ? hedge_seconds_ : slice_seconds_;
  }

  int slice_calls() const { return slice_calls_; }
  int hedge_calls() const { return hedge_calls_; }

 private:
  double slice_seconds_;
  int fail_first_;  // < 0: every ServiceSlice call fails
  double hedge_seconds_;
  int slice_calls_ = 0;
  int hedge_calls_ = 0;
};

ServeConfig RetryServeConfig() {
  ServeConfig sc;
  sc.arrival.model = ArrivalModel::kDeterministic;
  sc.arrival.rate = 1e4;
  sc.requests = 64;
  sc.tuples_per_request = 512;
  sc.batch.batch_tuples = sc.tuples_per_request;
  sc.batch.min_batch_tuples = sc.batch.batch_tuples;
  sc.batch.adaptive = false;
  sc.batch.deadline_seconds = 1.0;
  sc.max_backlog_tuples = 0;
  return sc;
}

TEST(RetryPolicy, DefaultKeepsFirstBackendErrorFatal) {
  FlakyBackend backend(1e-5, /*fail_first=*/1);
  RequestServer server(backend, RetryServeConfig());
  auto r = server.Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(backend.slice_calls(), 1);
}

TEST(RetryPolicy, TransientErrorsAreRetriedWithinTheCap) {
  ServeConfig sc = RetryServeConfig();
  sc.retry.retry_cap = 3;
  FlakyBackend backend(1e-5, /*fail_first=*/2);
  RequestServer server(backend, sc);
  ServeReport r = server.Run().value();

  // The first batch burned two retries, everything after succeeded
  // first try; nothing was shed.
  EXPECT_EQ(r.robustness.retries, 2u);
  EXPECT_EQ(r.robustness.shed_retry_exhausted, 0u);
  EXPECT_EQ(r.latency.count(), sc.requests);
  ASSERT_EQ(r.robustness.retry_histogram.size(), 4u);
  EXPECT_EQ(r.robustness.retry_histogram[2], 1u);
  EXPECT_EQ(r.robustness.retry_histogram[0],
            r.counters.batches - 1);
}

TEST(RetryPolicy, RetriesNeverExceedTheCap) {
  // A permanently-stuck backend: every slice must be attempted exactly
  // 1 + retry_cap times, then its batch shed — the server never wedges
  // and never exceeds the budget.
  ServeConfig sc = RetryServeConfig();
  sc.retry.retry_cap = 4;
  FlakyBackend backend(1e-5, /*fail_first=*/-1);
  RequestServer server(backend, sc);
  ServeReport r = server.Run().value();

  EXPECT_EQ(r.robustness.shed_retry_exhausted,
            static_cast<uint64_t>(sc.requests));
  EXPECT_EQ(r.latency.count(), 0u);
  EXPECT_EQ(backend.slice_calls() % (1 + sc.retry.retry_cap), 0);
  EXPECT_EQ(r.robustness.retries,
            static_cast<uint64_t>(backend.slice_calls()) -
                static_cast<uint64_t>(backend.slice_calls()) /
                    (1 + sc.retry.retry_cap));
}

TEST(RetryPolicy, StuckBackendKeepsServerTimeBounded) {
  // Shedding charges only the backoff waits, so even with every batch
  // failing the simulated makespan stays within the total backoff
  // budget plus the arrival horizon — bounded, not wedged.
  ServeConfig sc = RetryServeConfig();
  sc.retry.retry_cap = 4;
  sc.retry.backoff_base = 1e-5;
  sc.retry.backoff_jitter = 0.25;
  FlakyBackend backend(1e-5, /*fail_first=*/-1);
  RequestServer server(backend, sc);
  ServeReport r = server.Run().value();

  const double horizon =
      static_cast<double>(sc.requests) / sc.arrival.rate;
  // Worst case per shed batch: sum of jittered backoffs
  // (base * (2^cap - 1) * (1 + jitter)).
  const double per_batch = sc.retry.backoff_base * 15 * 1.25;
  EXPECT_LE(r.sim_seconds,
            horizon + per_batch * static_cast<double>(sc.requests) + 1.0);
}

TEST(RetryPolicy, BackoffJitterIsSeedDeterministic) {
  ServeConfig sc = RetryServeConfig();
  sc.retry.retry_cap = 3;
  sc.retry.backoff_jitter = 0.5;
  auto run_once = [&sc]() {
    FlakyBackend backend(1e-5, /*fail_first=*/2);
    RequestServer server(backend, sc);
    return server.Run().value();
  };
  const ServeReport a = run_once();
  const ServeReport b = run_once();
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.service_seconds_total, b.service_seconds_total);
  EXPECT_EQ(a.robustness.retries, b.robustness.retries);

  sc.retry.seed ^= 0x1234;
  const ServeReport c = run_once();
  // A different seed draws different jitter, so the backoff-inflated
  // service time moves (the event structure stays the same).
  EXPECT_NE(a.service_seconds_total, c.service_seconds_total);
  EXPECT_EQ(a.robustness.retries, c.robustness.retries);
}

TEST(RetryPolicy, DoomedRequestsAreShedBeforeDispatch) {
  ServeConfig sc = RetryServeConfig();
  // Requests arrive every 0.1 ms; a slow backend (1 ms per batch)
  // queues them far past a 0.5 ms budget, so later batches start after
  // their requests' deadlines already passed.
  sc.retry.deadline_seconds = 5e-4;
  FlakyBackend backend(1e-3, /*fail_first=*/0);
  RequestServer server(backend, sc);
  ServeReport r = server.Run().value();

  EXPECT_GT(r.robustness.shed_deadline, 0u);
  EXPECT_LT(r.latency.count(), static_cast<uint64_t>(sc.requests));
  EXPECT_EQ(r.latency.count() + r.robustness.shed_deadline,
            static_cast<uint64_t>(sc.requests));
}

TEST(RetryPolicy, ServedPastBudgetCountsAsDeadlineMiss) {
  ServeConfig sc = RetryServeConfig();
  // The budget exceeds one batch's queueing but not its service: every
  // request is served, every one late.
  sc.retry.deadline_seconds = 5e-4;
  sc.arrival.rate = 1e2;  // no queueing between batches
  FlakyBackend backend(1e-3, /*fail_first=*/0);
  RequestServer server(backend, sc);
  ServeReport r = server.Run().value();

  EXPECT_EQ(r.robustness.shed_deadline, 0u);
  EXPECT_EQ(r.latency.count(), static_cast<uint64_t>(sc.requests));
  EXPECT_EQ(r.robustness.deadline_misses,
            static_cast<uint64_t>(sc.requests));
}

TEST(RetryPolicy, HedgeWinsWhenReplicaIsFaster) {
  ServeConfig sc = RetryServeConfig();
  sc.retry.hedge_after = 1e-4;
  // Primary 1 ms, replica 0.1 ms: every slice hedges and the hedge wins
  // (hedge_after + replica < primary).
  FlakyBackend backend(1e-3, /*fail_first=*/0, /*hedge_seconds=*/1e-4);
  RequestServer server(backend, sc);
  ServeReport r = server.Run().value();

  EXPECT_EQ(r.robustness.hedges, static_cast<uint64_t>(sc.requests));
  EXPECT_EQ(r.robustness.hedge_wins, r.robustness.hedges);
  EXPECT_EQ(backend.hedge_calls(), static_cast<int>(sc.requests));
  // Charged time per batch is hedge_after + replica, not the primary.
  EXPECT_LT(r.service_seconds_total,
            1e-3 * static_cast<double>(sc.requests));
}

TEST(RetryPolicy, HedgeLosesWhenReplicaIsSlower) {
  ServeConfig sc = RetryServeConfig();
  sc.retry.hedge_after = 1e-4;
  FlakyBackend backend(1e-3, /*fail_first=*/0, /*hedge_seconds=*/5e-3);
  RequestServer server(backend, sc);
  ServeReport r = server.Run().value();

  EXPECT_EQ(r.robustness.hedges, static_cast<uint64_t>(sc.requests));
  EXPECT_EQ(r.robustness.hedge_wins, 0u);
}

TEST(RetryPolicy, InvalidKnobsAreNamedInTheError) {
  FlakyBackend backend(1e-5, /*fail_first=*/0);
  const struct {
    void (*set)(RetryPolicy&);
    const char* names;
  } cases[] = {
      {[](RetryPolicy& p) { p.deadline_seconds = -1; },
       "deadline_seconds"},
      {[](RetryPolicy& p) { p.retry_cap = 33; }, "retry_cap"},
      {[](RetryPolicy& p) { p.retry_cap = 1; p.backoff_base = 0; },
       "backoff_base"},
      {[](RetryPolicy& p) { p.backoff_jitter = 1.5; }, "backoff_jitter"},
      {[](RetryPolicy& p) { p.hedge_after = -2; }, "hedge_after"},
  };
  for (const auto& c : cases) {
    ServeConfig sc = RetryServeConfig();
    c.set(sc.retry);
    RequestServer server(backend, sc);
    auto r = server.Run();
    ASSERT_FALSE(r.ok()) << c.names;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << c.names;
    EXPECT_NE(r.status().ToString().find(c.names), std::string::npos)
        << r.status().ToString();
  }
}

TEST(RequestServer, SurfacesBatchAndArrivalValidationErrors) {
  FlakyBackend backend(1e-5, /*fail_first=*/0);

  // The inverted batch band is rejected up front, not clamped silently.
  ServeConfig bad_batch = RetryServeConfig();
  bad_batch.batch.min_batch_tuples = 1 << 20;
  bad_batch.batch.max_batch_tuples = 1 << 10;
  auto r1 = RequestServer(backend, bad_batch).Run();
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r1.status().ToString().find("min_batch_tuples"),
            std::string::npos);

  ServeConfig bad_deadline = RetryServeConfig();
  bad_deadline.batch.deadline_seconds = 0;
  auto r2 = RequestServer(backend, bad_deadline).Run();
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().ToString().find("deadline_seconds"),
            std::string::npos);

  // The documented-but-unenforced burst_factor > 1 is now enforced.
  ServeConfig bad_burst = RetryServeConfig();
  bad_burst.arrival.model = ArrivalModel::kOnOff;
  bad_burst.arrival.burst_factor = 0.5;
  auto r3 = RequestServer(backend, bad_burst).Run();
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().ToString().find("burst_factor"), std::string::npos);
}

}  // namespace
}  // namespace gpujoin::serve
