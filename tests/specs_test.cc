// Sanity of the platform presets: the calibrated constants must stay
// physically consistent (see docs/MODEL.md for their derivations).

#include <gtest/gtest.h>

#include <vector>

#include "sim/specs.h"
#include "util/units.h"

namespace gpujoin::sim {
namespace {

std::vector<InterconnectSpec> AllInterconnects() {
  return {NvLink2(), PciE4(), PciE5(), InfinityFabric3(), NvLinkC2C()};
}

std::vector<GpuSpec> AllGpus() { return {TeslaV100(), A100(), GH200Gpu()}; }

TEST(InterconnectSpecs, AchievableRatesBelowPeak) {
  for (const auto& ic : AllInterconnects()) {
    EXPECT_GT(ic.peak_bandwidth, 0) << ic.name;
    EXPECT_LE(ic.seq_bandwidth, ic.peak_bandwidth) << ic.name;
    EXPECT_LE(ic.random_bandwidth, ic.seq_bandwidth) << ic.name;
    EXPECT_GT(ic.random_bandwidth, 0) << ic.name;
  }
}

TEST(InterconnectSpecs, TranslationThroughputPositive) {
  for (const auto& ic : AllInterconnects()) {
    EXPECT_GT(ic.translation_throughput(), 0) << ic.name;
    EXPECT_GT(ic.translation_latency, 0) << ic.name;
  }
}

TEST(InterconnectSpecs, FasterGenerationsAreFaster) {
  EXPECT_GT(PciE5().peak_bandwidth, PciE4().peak_bandwidth);
  EXPECT_GT(NvLink2().peak_bandwidth, PciE4().peak_bandwidth);
  EXPECT_GT(NvLinkC2C().peak_bandwidth, NvLink2().peak_bandwidth);
  // The paper's core premise: NVLink handles cacheline gathers far
  // better than PCI-e.
  EXPECT_GT(NvLink2().random_bandwidth, 2 * PciE4().random_bandwidth);
}

TEST(GpuSpecs, GeometryIsSane) {
  for (const auto& gpu : AllGpus()) {
    EXPECT_GT(gpu.num_sms, 0) << gpu.name;
    EXPECT_GT(gpu.l2_size, 0u) << gpu.name;
    EXPECT_GE(gpu.l1_size, gpu.l2_size / 8) << gpu.name;
    EXPECT_EQ(gpu.cacheline_bytes, 128u) << gpu.name;
    EXPECT_GT(gpu.hbm_bandwidth, 0) << gpu.name;
    EXPECT_GE(gpu.hbm_capacity, uint64_t{16} * kGiB) << gpu.name;
    EXPECT_GE(gpu.tlb_coverage, uint64_t{32} * kGiB) << gpu.name;
    EXPECT_GT(gpu.warp_step_throughput, 0) << gpu.name;
  }
}

TEST(GpuSpecs, GenerationsImprove) {
  EXPECT_GT(A100().hbm_bandwidth, TeslaV100().hbm_bandwidth);
  EXPECT_GT(GH200Gpu().hbm_bandwidth, A100().hbm_bandwidth);
  EXPECT_GT(GH200Gpu().tlb_coverage, TeslaV100().tlb_coverage);
}

TEST(Platforms, NamedPresetsCompose) {
  EXPECT_EQ(V100NvLink2().interconnect.name, "NVLink 2.0");
  EXPECT_EQ(A100PciE4().interconnect.name, "PCI-e 4.0");
  EXPECT_EQ(GH200C2C().interconnect.name, "NVLink C2C");
  EXPECT_NE(V100NvLink2().name.find("V100"), std::string::npos);
}

TEST(Platforms, V100MatchesPaperSetup) {
  const PlatformSpec p = V100NvLink2();
  EXPECT_DOUBLE_EQ(p.interconnect.peak_bandwidth, 75e9);  // Table 1
  EXPECT_EQ(p.gpu.tlb_coverage, uint64_t{32} * kGiB);     // Sec. 3.3.2
  EXPECT_DOUBLE_EQ(p.interconnect.translation_latency, 3e-6);  // [30]
}

}  // namespace
}  // namespace gpujoin::sim
