// Tests for the parallel sweep machinery (util::ThreadPool,
// core::SweepRunner) and its determinism contract: a sweep must produce
// bit-identical results for any thread count. Also covers the FlatMap64
// hash map backing the simulator hot path and the bounded recent-page
// working set (the old per-page stamp map grew without limit over long
// sweeps).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"
#include "mem/address_space.h"
#include "sim/counters.h"
#include "sim/memory_model.h"
#include "sim/specs.h"
#include "util/flat_map.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace gpujoin {
namespace {

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesFirstErrorThroughWait) {
  util::ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  Status s = pool.Wait();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, TasksAfterFailureAreDrainedNotRun) {
  // One worker serializes the queue, so the throwing task is observed
  // before the later submissions are dequeued — they must be drained
  // (Wait returns) without executing.
  util::ThreadPool pool(1);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("first failure"); });
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  Status s = pool.Wait();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("first failure"), std::string::npos);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, NonStdExceptionIsCaptured) {
  util::ThreadPool pool(1);
  pool.Submit([] { throw 42; });
  Status s = pool.Wait();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown exception"), std::string::npos);
}

// ---------------------------------------------------------------------
// FlatMap64

TEST(FlatMapTest, InsertFindErase) {
  util::FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  map[7] = 70;
  map[8] = 80;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70);
  EXPECT_EQ(map.Find(9), nullptr);
  EXPECT_TRUE(map.Erase(7));
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  ASSERT_NE(map.Find(8), nullptr);
  EXPECT_EQ(*map.Find(8), 80);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, OperatorBracketValueInitializes) {
  util::FlatMap64<uint64_t> map;
  EXPECT_EQ(map[42], 0u);
  map[42] += 5;
  EXPECT_EQ(map[42], 5u);
}

TEST(FlatMapTest, GrowsPastInitialCapacityAndKeepsEntries) {
  util::FlatMap64<uint64_t> map(8);
  const uint64_t n = 10000;
  for (uint64_t k = 0; k < n; ++k) map[k * 3 + 1] = k;
  EXPECT_EQ(map.size(), n);
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_NE(map.Find(k * 3 + 1), nullptr) << k;
    EXPECT_EQ(*map.Find(k * 3 + 1), k);
  }
}

TEST(FlatMapTest, EraseKeepsCollidingChainsReachable) {
  // Keys a multiple of the capacity apart collide under any power-of-two
  // table; erasing from the middle of the chain must backward-shift the
  // rest so they stay findable.
  util::FlatMap64<int> map(16);
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 6; ++i) {
    keys.push_back(1 + i * map.capacity());
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    map[keys[i]] = static_cast<int>(i);
  }
  EXPECT_TRUE(map.Erase(keys[2]));
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i == 2) {
      EXPECT_EQ(map.Find(keys[i]), nullptr);
    } else {
      ASSERT_NE(map.Find(keys[i]), nullptr) << i;
      EXPECT_EQ(*map.Find(keys[i]), static_cast<int>(i));
    }
  }
}

TEST(FlatMapTest, ClearEmptiesButKeepsCapacity) {
  util::FlatMap64<int> map;
  for (uint64_t k = 0; k < 100; ++k) map[k] = 1;
  const size_t cap = map.capacity();
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.Find(50), nullptr);
}

// ---------------------------------------------------------------------
// Bounded recent-page working set (simulator hot path)

TEST(RecentPagesBoundTest, SteadyStateStaysWithinWindow) {
  mem::AddressSpace space;
  mem::Region host =
      space.Reserve(uint64_t{200} * kGiB, mem::MemKind::kHost, "h");
  sim::GpuSpec gpu = sim::TeslaV100();
  gpu.l1_size = 2 * kKiB;  // every access reaches the TLB
  gpu.l2_size = 2 * kKiB;
  sim::MemoryModel model(&space, gpu);

  // Sweep 10x the interference window of distinct pages: the recent-page
  // map must stay bounded by the window instead of accumulating a stamp
  // per page ever touched.
  const uint64_t window = model.recent_window_pages();
  const uint64_t touches = 10 * window;
  for (uint64_t p = 0; p < touches; ++p) {
    model.Access(host.base + p * kGiB, 8, sim::AccessType::kRead);
  }
  EXPECT_LE(model.recent_page_entries(), window + 1);
  EXPECT_GT(model.recent_page_entries(), 0u);
}

// ---------------------------------------------------------------------
// SweepRunner

TEST(SweepRunnerTest, EmitsResultsInSubmissionOrder) {
  std::vector<std::function<int()>> cells;
  for (int i = 0; i < 50; ++i) {
    cells.push_back([i] { return i * i; });
  }
  for (int threads : {1, 4}) {
    std::vector<int> results = core::RunSweep(threads, cells);
    ASSERT_EQ(results.size(), cells.size());
    for (int i = 0; i < 50; ++i) EXPECT_EQ(results[i], i * i);
  }
}

TEST(SweepRunnerTest, SingleThreadRunsInlineAtSubmitTime) {
  core::SweepRunner runner(1);
  int order = 0;
  int first = 0;
  int second = 0;
  runner.Submit([&] { first = ++order; });
  // With threads == 1 the cell has already run on this thread.
  EXPECT_EQ(first, 1);
  runner.Submit([&] { second = ++order; });
  EXPECT_EQ(second, 2);
  runner.Finish();
}

TEST(SweepRunnerTest, InlineCellFailureSkipsLaterCellsAndReports) {
  core::SweepRunner runner(1);
  int ran = 0;
  runner.Submit([&] { ++ran; });
  runner.Submit([]() -> void { throw std::runtime_error("cell exploded"); });
  runner.Submit([&] { ++ran; });  // skipped: a cell already failed
  Status s = runner.Finish();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cell exploded"), std::string::npos);
  EXPECT_EQ(ran, 1);
}

TEST(SweepRunnerTest, TryRunSweepReturnsErrorForThrowingCell) {
  std::vector<std::function<int()>> cells;
  cells.push_back([] { return 1; });
  cells.push_back([]() -> int { throw std::runtime_error("bad cell"); });
  cells.push_back([] { return 3; });
  for (int threads : {1, 4}) {
    auto result = core::TryRunSweep(threads, cells);
    ASSERT_FALSE(result.ok()) << "threads " << threads;
    EXPECT_NE(result.status().message().find("bad cell"), std::string::npos);
  }
}

TEST(SweepRunnerTest, TryRunSweepSucceedsWithCleanCells) {
  std::vector<std::function<int()>> cells;
  for (int i = 0; i < 10; ++i) cells.push_back([i] { return 2 * i; });
  auto result = core::TryRunSweep(4, cells);
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(result.value()[i], 2 * i);
}

bool SameCounters(const sim::CounterSet& a, const sim::CounterSet& b) {
  return std::memcmp(&a, &b, sizeof(sim::CounterSet)) == 0;
}

// One small experiment grid (two R sizes x two index types), returning
// the raw CounterSets. Cells are submitted in grid order.
std::vector<sim::CounterSet> RunGrid(int threads, uint64_t seed) {
  std::vector<std::function<sim::CounterSet()>> cells;
  for (uint64_t r_tuples : {uint64_t{1} << 20, uint64_t{1} << 21}) {
    for (index::IndexType type : {index::IndexType::kBinarySearch,
                                  index::IndexType::kRadixSpline}) {
      cells.push_back([r_tuples, type, seed] {
        core::ExperimentConfig cfg;
        cfg.r_tuples = r_tuples;
        cfg.s_tuples = uint64_t{1} << 20;
        cfg.s_sample = uint64_t{1} << 14;
        cfg.seed = seed;
        cfg.index_type = type;
        auto exp = core::Experiment::Create(cfg);
        return (*exp)->RunInlj().value().counters;
      });
    }
  }
  return core::RunSweep(threads, cells);
}

TEST(SweepRunnerTest, CounterSetsAreIdenticalForAnyThreadCount) {
  const std::vector<sim::CounterSet> serial = RunGrid(/*threads=*/1, 1);
  const std::vector<sim::CounterSet> parallel = RunGrid(/*threads=*/4, 1);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(SameCounters(serial[i], parallel[i])) << "cell " << i;
    // The grid is real work, not all-zero counters.
    EXPECT_GT(serial[i].warp_steps, 0u) << "cell " << i;
  }
}

TEST(SweepRunnerTest, RepeatedRunsWithSameSeedAreStable) {
  const std::vector<sim::CounterSet> first = RunGrid(/*threads=*/4, 7);
  const std::vector<sim::CounterSet> second = RunGrid(/*threads=*/4, 7);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(SameCounters(first[i], second[i])) << "cell " << i;
  }
}

}  // namespace
}  // namespace gpujoin
