#include <gtest/gtest.h>

#include <memory>

#include "core/best_effort.h"
#include "core/experiment.h"
#include "core/inlj.h"
#include "index/radix_spline.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "workload/key_column.h"
#include "workload/relation.h"

namespace gpujoin::core {
namespace {

class BestEffortTest : public ::testing::Test {
 protected:
  BestEffortTest() : gpu_(&space_, sim::V100NvLink2()), r_(&space_, 1 << 22) {
    workload::ProbeConfig pc;
    pc.full_size = 1 << 20;
    pc.sample_size = 1 << 14;
    pc.scheme = workload::SampleScheme::kRangeRestricted;
    s_ = workload::MakeProbeRelation(&space_, r_, pc);
    index_ = index::RadixSplineIndex::Build(&space_, &r_);
  }

  mem::AddressSpace space_;
  sim::Gpu gpu_;
  workload::DenseKeyColumn r_;
  workload::ProbeRelation s_;
  std::unique_ptr<index::Index> index_;
};

TEST_F(BestEffortTest, JoinsEveryProbeTuple) {
  BestEffortConfig cfg;
  cfg.bucket_tuples = 256;
  sim::RunResult res = BestEffortInlj::Run(gpu_, *index_, s_, cfg);
  EXPECT_EQ(res.result_tuples, s_.full_size);
  EXPECT_GT(res.seconds, 0);
  EXPECT_EQ(res.stages.size(), 2u);
}

TEST_F(BestEffortTest, BucketSizeDoesNotChangeTheResult) {
  for (uint32_t bucket : {32u, 128u, 1024u, 16384u}) {
    BestEffortConfig cfg;
    cfg.bucket_tuples = bucket;
    sim::RunResult res = BestEffortInlj::Run(gpu_, *index_, s_, cfg);
    EXPECT_EQ(res.result_tuples, s_.full_size) << "bucket " << bucket;
  }
}

TEST_F(BestEffortTest, FilterReducesResults) {
  BestEffortConfig cfg;
  cfg.bucket_tuples = 256;
  cfg.probe_filter_selectivity = 0.5;
  sim::RunResult res = BestEffortInlj::Run(gpu_, *index_, s_, cfg);
  EXPECT_NEAR(static_cast<double>(res.result_tuples),
              0.5 * static_cast<double>(s_.full_size),
              0.05 * static_cast<double>(s_.full_size));
}

TEST_F(BestEffortTest, ScatterTrafficIsCharged) {
  BestEffortConfig cfg;
  cfg.bucket_tuples = 256;
  sim::RunResult res = BestEffortInlj::Run(gpu_, *index_, s_, cfg);
  // Bucket appends write (key, row) pairs to GPU memory.
  EXPECT_GT(res.counters.hbm_write_bytes, s_.full_size * 8);
  // And the probe stream is read from the host once.
  EXPECT_GE(res.counters.host_seq_read_bytes, s_.full_size * 8);
}

TEST_F(BestEffortTest, ComparableToWindowedPartitioning) {
  // BEP achieves the same index locality as windowed partitioning (same
  // partition-local lookups), so its host traffic lands in the same
  // ballpark; its weakness is the per-bucket launch overhead.
  BestEffortConfig bep_cfg;
  bep_cfg.bucket_tuples = 2048;
  sim::RunResult bep = BestEffortInlj::Run(gpu_, *index_, s_, bep_cfg);

  gpu_.memory().ClearHardwareState();
  InljConfig win_cfg;
  win_cfg.mode = InljConfig::PartitionMode::kWindowed;
  win_cfg.window_tuples = 1 << 14;
  sim::RunResult windowed =
      IndexNestedLoopJoin::Run(gpu_, *index_, s_, win_cfg).value();

  EXPECT_EQ(bep.result_tuples, windowed.result_tuples);
  EXPECT_LT(bep.counters.host_random_read_bytes,
            3 * windowed.counters.host_random_read_bytes + (1 << 20));
}

}  // namespace
}  // namespace gpujoin::core
