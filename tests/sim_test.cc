#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "sim/cache.h"
#include "sim/cost_model.h"
#include "sim/counters.h"
#include "sim/gpu.h"
#include "sim/memory_model.h"
#include "sim/specs.h"
#include "sim/tlb.h"
#include "util/units.h"

namespace gpujoin::sim {
namespace {

// --- Cache ------------------------------------------------------------

TEST(Cache, MissThenHit) {
  Cache cache(1024, 64, 4);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_TRUE(cache.Access(1));
}

TEST(Cache, LruEviction) {
  // 4 lines, 4-way => one set: fully associative with 4 entries.
  Cache cache(256, 64, 4);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_FALSE(cache.Access(i));
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(cache.Access(i));
  EXPECT_FALSE(cache.Access(100));  // evicts LRU line 0
  EXPECT_FALSE(cache.Access(0));
  EXPECT_TRUE(cache.Access(100));
}

TEST(Cache, SetsIsolateConflicts) {
  // 8 lines, 1-way => 8 direct-mapped sets.
  Cache cache(512, 64, 1);
  EXPECT_FALSE(cache.Access(0));
  EXPECT_FALSE(cache.Access(1));
  EXPECT_TRUE(cache.Access(0));  // different set than 1
  EXPECT_FALSE(cache.Access(8));  // same set as 0 -> conflict
  EXPECT_FALSE(cache.Access(0));
}

TEST(Cache, ContainsDoesNotTouch) {
  Cache cache(256, 64, 4);
  cache.Access(5);
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_FALSE(cache.Contains(6));
}

TEST(Cache, ClearEvictsAll) {
  Cache cache(256, 64, 4);
  cache.Access(1);
  cache.Clear();
  EXPECT_FALSE(cache.Contains(1));
}

TEST(Cache, ClampsAssociativity) {
  Cache cache(128, 64, 16);  // only 2 lines available
  EXPECT_EQ(cache.ways(), 2);
  EXPECT_EQ(cache.num_sets(), 1u);
}

// --- TLB --------------------------------------------------------------

TEST(Tlb, CoverageDerivesEntries) {
  Tlb tlb(32 * kGiB, kGiB, 8);
  EXPECT_EQ(tlb.entries(), 32u);
  EXPECT_EQ(tlb.coverage_bytes(), 32 * kGiB);
}

TEST(Tlb, SmallerPagesMoreEntries) {
  Tlb tlb(32 * kGiB, 2 * kMiB, 8);
  EXPECT_EQ(tlb.entries(), 16384u);
}

TEST(Tlb, HitWithinCoverage) {
  Tlb tlb(4 * kGiB, kGiB, 4);  // 4 entries, fully associative
  for (uint64_t vpn = 0; vpn < 4; ++vpn) EXPECT_FALSE(tlb.Access(vpn));
  for (uint64_t vpn = 0; vpn < 4; ++vpn) EXPECT_TRUE(tlb.Access(vpn));
}

TEST(Tlb, ThrashesBeyondCoverage) {
  Tlb tlb(4 * kGiB, kGiB, 4);
  // Working set of 8 pages in a 4-entry TLB: round robin never hits.
  int hits = 0;
  for (int round = 0; round < 10; ++round) {
    for (uint64_t vpn = 0; vpn < 8; ++vpn) {
      if (tlb.Access(vpn)) ++hits;
    }
  }
  EXPECT_EQ(hits, 0);
}

// --- Counters ---------------------------------------------------------

TEST(Counters, Arithmetic) {
  CounterSet a;
  a.host_random_read_bytes = 100;
  a.translation_requests = 5;
  CounterSet b;
  b.host_random_read_bytes = 50;
  b.warp_steps = 7;
  a += b;
  EXPECT_EQ(a.host_random_read_bytes, 150u);
  EXPECT_EQ(a.warp_steps, 7u);
  CounterSet d = a - b;
  EXPECT_EQ(d.host_random_read_bytes, 100u);
  EXPECT_EQ(d.translation_requests, 5u);
}

TEST(Counters, ScaledKeepsLaunches) {
  CounterSet c;
  c.hbm_read_bytes = 10;
  c.kernel_launches = 3;
  CounterSet s = c.Scaled(4.0);
  EXPECT_EQ(s.hbm_read_bytes, 40u);
  EXPECT_EQ(s.kernel_launches, 3u);
}

// --- MemoryModel ------------------------------------------------------

class MemoryModelTest : public ::testing::Test {
 protected:
  MemoryModelTest()
      : host_(space_.Reserve(uint64_t{64} * kGiB, mem::MemKind::kHost, "h")),
        device_(
            space_.Reserve(uint64_t{8} * kGiB, mem::MemKind::kDevice, "d")),
        model_(&space_, TeslaV100()) {}

  mem::AddressSpace space_;
  mem::Region host_;
  mem::Region device_;
  MemoryModel model_;
};

TEST_F(MemoryModelTest, HostMissMovesOneLine) {
  model_.Access(host_.base, 8, AccessType::kRead);
  EXPECT_EQ(model_.counters().host_random_read_bytes, 128u);
  EXPECT_EQ(model_.counters().l2_misses, 1u);
  EXPECT_EQ(model_.counters().translation_requests, 1u);
}

TEST_F(MemoryModelTest, RepeatAccessHitsCache) {
  model_.Access(host_.base, 8, AccessType::kRead);
  model_.Access(host_.base + 8, 8, AccessType::kRead);  // same line
  EXPECT_EQ(model_.counters().host_random_read_bytes, 128u);
  EXPECT_EQ(model_.counters().l1_hits, 1u);
}

TEST_F(MemoryModelTest, GatherCoalescesLanes) {
  // 32 lanes in the same two lines -> 2 transactions.
  mem::VirtAddr addrs[32];
  for (int lane = 0; lane < 32; ++lane) addrs[lane] = host_.base + lane * 8;
  model_.Gather(addrs, ~0u, 8, AccessType::kRead);
  EXPECT_EQ(model_.counters().memory_transactions, 2u);
  EXPECT_EQ(model_.counters().host_random_read_bytes, 256u);
  EXPECT_EQ(model_.counters().warp_steps, 1u);
}

TEST_F(MemoryModelTest, GatherDivergentLanesTouchManyLines) {
  mem::VirtAddr addrs[32];
  for (int lane = 0; lane < 32; ++lane) {
    addrs[lane] = host_.base + static_cast<uint64_t>(lane) * kMiB;
  }
  model_.Gather(addrs, ~0u, 8, AccessType::kRead);
  EXPECT_EQ(model_.counters().memory_transactions, 32u);
}

TEST_F(MemoryModelTest, LaneAccessCanStraddleLines) {
  mem::VirtAddr addr = host_.base + 120;  // 8 bytes reach into next line
  model_.Gather(&addr, 1u, 16, AccessType::kRead);
  EXPECT_EQ(model_.counters().memory_transactions, 2u);
}

TEST_F(MemoryModelTest, DeviceAccessDoesNotTouchInterconnect) {
  model_.Access(device_.base, 8, AccessType::kRead);
  EXPECT_EQ(model_.counters().host_read_bytes(), 0u);
  EXPECT_EQ(model_.counters().hbm_read_bytes, 128u);
  EXPECT_EQ(model_.counters().translation_requests, 0u);
}

TEST_F(MemoryModelTest, StreamChargesSequentialBytes) {
  model_.Stream(host_.base, kMiB, AccessType::kRead);
  EXPECT_EQ(model_.counters().host_seq_read_bytes, kMiB);
  // One page touched -> one translation.
  EXPECT_EQ(model_.counters().translation_requests, 1u);
}

TEST_F(MemoryModelTest, StreamWriteToDevice) {
  model_.Stream(device_.base, 4096, AccessType::kWrite);
  EXPECT_EQ(model_.counters().hbm_write_bytes, 4096u);
}

TEST_F(MemoryModelTest, TlbThrashOnWideRandomAccess) {
  // Touch one line in each of 60 distinct 1 GiB pages, twice. The V100
  // TLB covers 32 GiB (32 pages): round-robin over 60 pages never hits.
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = 0; p < 60; ++p) {
      model_.Access(host_.base + p * kGiB + round * 256, 8,
                    AccessType::kRead);
    }
  }
  EXPECT_EQ(model_.counters().translation_requests, 120u);
}

TEST_F(MemoryModelTest, TlbHitsWithinCoverage) {
  for (int round = 0; round < 4; ++round) {
    for (uint64_t p = 0; p < 16; ++p) {
      model_.Access(host_.base + p * kGiB + round * 256, 8,
                    AccessType::kRead);
    }
  }
  // Only the 16 first-touch misses.
  EXPECT_EQ(model_.counters().translation_requests, 16u);
}

TEST_F(MemoryModelTest, SerialChainCharges) {
  model_.SerialChain(device_.base, 10, AccessType::kRead);
  EXPECT_EQ(model_.counters().serial_dependent_loads, 10u);
  EXPECT_EQ(model_.counters().hbm_read_bytes, 10 * 128u);
}

TEST_F(MemoryModelTest, ClearHardwareStateKeepsCounters) {
  model_.Access(host_.base, 8, AccessType::kRead);
  const CounterSet before = model_.counters();
  model_.ClearHardwareState();
  EXPECT_EQ(model_.counters().host_random_read_bytes,
            before.host_random_read_bytes);
  // After clearing, the same access misses again.
  model_.Access(host_.base, 8, AccessType::kRead);
  EXPECT_EQ(model_.counters().l2_misses, 2u);
}

// --- CostModel --------------------------------------------------------

TEST(CostModel, TransferBound) {
  CostModel cm(V100NvLink2());
  CounterSet c;
  c.host_seq_read_bytes = static_cast<uint64_t>(63e9);  // 1 s at seq rate
  TimeBreakdown b = cm.Breakdown(c);
  EXPECT_NEAR(b.transfer, 1.0, 1e-6);
  EXPECT_NEAR(b.total(), 1.0, 1e-6);
}

TEST(CostModel, TranslationBound) {
  CostModel cm(V100NvLink2());
  CounterSet c;
  const InterconnectSpec ic = NvLink2();
  c.translation_requests = static_cast<uint64_t>(ic.translation_throughput());
  TimeBreakdown b = cm.Breakdown(c);
  EXPECT_NEAR(b.translation, 1.0, 1e-6);
}

TEST(CostModel, MaxOfResourcesPlusLaunch) {
  CostModel cm(V100NvLink2());
  CounterSet c;
  c.host_seq_read_bytes = static_cast<uint64_t>(63e9);   // 1 s
  c.hbm_read_bytes = static_cast<uint64_t>(450e9);       // 0.5 s
  c.kernel_launches = 2;
  const double launch = 2 * TeslaV100().kernel_launch_overhead;
  EXPECT_NEAR(cm.Seconds(c), 1.0 + launch, 1e-6);
}

TEST(Specs, Table1Bandwidths) {
  // Table 1 of the paper.
  EXPECT_DOUBLE_EQ(PciE4().peak_bandwidth, 32e9);
  EXPECT_DOUBLE_EQ(PciE5().peak_bandwidth, 64e9);
  EXPECT_DOUBLE_EQ(InfinityFabric3().peak_bandwidth, 72e9);
  EXPECT_DOUBLE_EQ(NvLink2().peak_bandwidth, 75e9);
  EXPECT_DOUBLE_EQ(NvLinkC2C().peak_bandwidth, 450e9);
}

TEST(Specs, V100TlbRange) {
  EXPECT_EQ(TeslaV100().tlb_coverage, 32 * kGiB);
}

// --- Gpu / warp executor ----------------------------------------------

TEST(Gpu, RunKernelVisitsAllItems) {
  mem::AddressSpace space;
  Gpu gpu(&space, V100NvLink2());
  uint64_t visited = 0;
  KernelRun run = gpu.RunKernel("count", 100, [&](Warp& warp) {
    visited += warp.lane_count();
    EXPECT_LE(warp.lane_count(), Warp::kWidth);
  });
  EXPECT_EQ(visited, 100u);
  EXPECT_EQ(run.counters.kernel_launches, 1u);
}

TEST(Gpu, PartialWarpMask) {
  mem::AddressSpace space;
  Gpu gpu(&space, V100NvLink2());
  gpu.RunKernel("mask", 5, [&](Warp& warp) {
    EXPECT_EQ(warp.lane_count(), 5);
    EXPECT_EQ(warp.full_mask(), 0b11111u);
  });
}

TEST(Gpu, KernelRunIsolatesCounters) {
  mem::AddressSpace space;
  mem::Region host = space.Reserve(kGiB, mem::MemKind::kHost, "h");
  Gpu gpu(&space, V100NvLink2());
  KernelRun a = gpu.RunRaw("a", [&](MemoryModel& mm) {
    mm.Stream(host.base, 1024, AccessType::kRead);
  });
  KernelRun b = gpu.RunRaw("b", [&](MemoryModel& mm) {
    mm.Stream(host.base, 2048, AccessType::kRead);
  });
  EXPECT_EQ(a.counters.host_seq_read_bytes, 1024u);
  EXPECT_EQ(b.counters.host_seq_read_bytes, 2048u);
}

TEST(Gpu, TimeOfUsesPlatform) {
  mem::AddressSpace space;
  mem::Region host = space.Reserve(kGiB, mem::MemKind::kHost, "h");
  Gpu nvlink(&space, V100NvLink2());
  KernelRun run = nvlink.RunRaw("scan", [&](MemoryModel& mm) {
    mm.Stream(host.base, kGiB, AccessType::kRead);
  });
  Gpu pcie(&space, A100PciE4());
  // The same traffic takes longer over PCI-e 4.0.
  EXPECT_GT(pcie.TimeOf(run), nvlink.TimeOf(run));
}

}  // namespace
}  // namespace gpujoin::sim
