#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "util/bit_util.h"
#include "util/ewma.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace gpujoin {
namespace {

// --- bit_util ---------------------------------------------------------

TEST(BitUtil, IsPowerOfTwo) {
  EXPECT_FALSE(bits::IsPowerOfTwo(0));
  EXPECT_TRUE(bits::IsPowerOfTwo(1));
  EXPECT_TRUE(bits::IsPowerOfTwo(2));
  EXPECT_FALSE(bits::IsPowerOfTwo(3));
  EXPECT_TRUE(bits::IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(bits::IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitUtil, Log2Floor) {
  EXPECT_EQ(bits::Log2Floor(1), 0);
  EXPECT_EQ(bits::Log2Floor(2), 1);
  EXPECT_EQ(bits::Log2Floor(3), 1);
  EXPECT_EQ(bits::Log2Floor(4), 2);
  EXPECT_EQ(bits::Log2Floor(uint64_t{1} << 40), 40);
  EXPECT_EQ(bits::Log2Floor((uint64_t{1} << 40) + 5), 40);
}

TEST(BitUtil, Log2Ceil) {
  EXPECT_EQ(bits::Log2Ceil(1), 0);
  EXPECT_EQ(bits::Log2Ceil(2), 1);
  EXPECT_EQ(bits::Log2Ceil(3), 2);
  EXPECT_EQ(bits::Log2Ceil(5), 3);
}

TEST(BitUtil, NextPowerOfTwo) {
  EXPECT_EQ(bits::NextPowerOfTwo(1), 1u);
  EXPECT_EQ(bits::NextPowerOfTwo(3), 4u);
  EXPECT_EQ(bits::NextPowerOfTwo(4), 4u);
  EXPECT_EQ(bits::NextPowerOfTwo(1000), 1024u);
}

TEST(BitUtil, Rounding) {
  EXPECT_EQ(bits::RoundUpPow2(17, 16), 32u);
  EXPECT_EQ(bits::RoundUpPow2(16, 16), 16u);
  EXPECT_EQ(bits::RoundDownPow2(17, 16), 16u);
  EXPECT_EQ(bits::CeilDiv(10, 3), 4u);
  EXPECT_EQ(bits::CeilDiv(9, 3), 3u);
  EXPECT_EQ(bits::CeilDiv(1, 100), 1u);
}

TEST(BitUtil, ExtractBits) {
  EXPECT_EQ(bits::ExtractBits(0b110100, 2, 3), 0b101u);
  EXPECT_EQ(bits::ExtractBits(~uint64_t{0}, 60, 10), 0xFu);
  EXPECT_EQ(bits::ExtractBits(123, 0, 0), 0u);
}

// --- rng --------------------------------------------------------------

TEST(Rng, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Xoshiro256 rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitMix64IsPure) {
  EXPECT_EQ(SplitMix64(123), SplitMix64(123));
  EXPECT_NE(SplitMix64(123), SplitMix64(124));
}

// --- status -----------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad flag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad flag");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// --- units ------------------------------------------------------------

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3.5 * kGiB), "3.50 GiB");
}

TEST(Units, FormatBytesBoundaries) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(1023), "1023 B");
  EXPECT_EQ(FormatBytes(1024), "1.00 KiB");
}

TEST(Units, FormatCountBoundaries) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1.00 K");
}

TEST(Units, FormatNegativeValues) {
  // Deltas between two runs can be negative; the sign must ride along
  // with the magnitude-selected unit instead of corrupting it.
  EXPECT_EQ(FormatBytes(-2048), "-2.00 KiB");
  EXPECT_EQ(FormatCount(-1500), "-1.50 K");
  EXPECT_EQ(FormatCount(-999), "-999");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(2.0), "2.000 s");
  EXPECT_EQ(FormatSeconds(0.002), "2.000 ms");
  EXPECT_EQ(FormatSeconds(2e-6), "2.000 us");
}

TEST(Units, FormatSecondsBoundaries) {
  EXPECT_EQ(FormatSeconds(0), "0 s");
  EXPECT_EQ(FormatSeconds(-2.0), "-2.000 s");
  EXPECT_EQ(FormatSeconds(-0.002), "-2.000 ms");
  EXPECT_EQ(FormatSeconds(5e-10), "0.5 ns");
}

// --- flags ------------------------------------------------------------

TEST(Flags, ParsesAllTypes) {
  Flags flags;
  flags.DefineInt64("n", 10, "count");
  flags.DefineDouble("x", 1.5, "factor");
  flags.DefineString("name", "abc", "label");
  flags.DefineBool("fast", false, "speed");

  const char* argv[] = {"prog", "--n=20", "--x", "2.5", "--name=xyz",
                        "--fast"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt64("n"), 20);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x"), 2.5);
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_TRUE(flags.GetBool("fast"));
}

TEST(Flags, DefaultsSurvive) {
  Flags flags;
  flags.DefineInt64("n", 10, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt64("n"), 10);
}

TEST(Flags, RejectsUnknown) {
  Flags flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(Flags, RejectsBadInt) {
  Flags flags;
  flags.DefineInt64("n", 0, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(Flags, BoundedIntRejectsOutOfRangeNamingTheFlag) {
  Flags flags;
  flags.DefineInt64("threads", 0, "workers", /*min=*/0, /*max=*/4096);
  const char* low[] = {"prog", "--threads=-2"};
  Status s = flags.Parse(2, const_cast<char**>(low));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("--threads=-2"), std::string::npos);
  EXPECT_NE(s.message().find("out of range"), std::string::npos);

  const char* high[] = {"prog", "--threads=5000"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(high)).ok());

  const char* ok[] = {"prog", "--threads=8"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(ok)).ok());
  EXPECT_EQ(flags.GetInt64("threads"), 8);
}

TEST(Flags, BoundedIntAcceptsBoundaryValues) {
  Flags flags;
  flags.DefineInt64("window", 32, "tuples", /*min=*/32, /*max=*/1024);
  const char* min[] = {"prog", "--window=32"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(min)).ok());
  const char* max[] = {"prog", "--window=1024"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(max)).ok());
  const char* below[] = {"prog", "--window=31"};  // below one warp
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(below)).ok());
}

TEST(Flags, BoundedDoubleRejectsOutOfRange) {
  Flags flags;
  flags.DefineDouble("rate", 0.0, "fault rate", /*min=*/0.0, /*max=*/1.0);
  const char* bad[] = {"prog", "--rate=1.5"};
  Status s = flags.Parse(2, const_cast<char**>(bad));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--rate=1.5"), std::string::npos);
  const char* ok[] = {"prog", "--rate=0.25"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(ok)).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
}

TEST(Flags, RejectsIntOverflow) {
  Flags flags;
  flags.DefineInt64("n", 0, "count");
  const char* argv[] = {"prog", "--n=99999999999999999999999"};
  Status s = flags.Parse(2, const_cast<char**>(argv));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// --- table printer ----------------------------------------------------

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(10, 0), "10");
}

TEST(TablePrinter, TracksRows) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
}

// --- Ewma -------------------------------------------------------------

TEST(Ewma, UnseededAdoptsFirstObservationThenBlends) {
  util::Ewma e(0.5);
  EXPECT_EQ(e.value(), 0.0);
  EXPECT_FALSE(e.warmed_up());
  e.Observe(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 8.0);  // first observation snaps
  EXPECT_TRUE(e.warmed_up());
  e.Observe(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 6.0);  // 0.5 * 8 + 0.5 * 4
}

TEST(Ewma, SeededStartsAtPriorAndBlendsEveryObservation) {
  util::Ewma e(0.5, /*prior=*/2.0, /*warmup=*/2);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
  EXPECT_FALSE(e.warmed_up());
  e.Observe(6.0);
  EXPECT_DOUBLE_EQ(e.value(), 4.0);  // 0.5 * 6 + 0.5 * 2, not a snap
  EXPECT_FALSE(e.warmed_up());
  e.Observe(6.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  EXPECT_TRUE(e.warmed_up());
}

TEST(Ewma, WarmupFloorHoldsThenReleases) {
  util::Ewma e(0.5, /*prior=*/2.0, /*warmup=*/2);
  // An anomalously low early sample cannot drag the estimate below the
  // prior during warm-up...
  e.Observe(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
  // ...but after warm-up the observations own the estimate.
  e.Observe(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.5);
  e.Observe(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25);
}

TEST(Ewma, DecayConvergesToStationaryInput) {
  util::Ewma e(0.25, /*prior=*/100.0, /*warmup=*/1);
  for (int i = 0; i < 64; ++i) e.Observe(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-6);
  EXPECT_EQ(e.observations(), 64u);
}

TEST(Ewma, ResetReturnsToPrior) {
  util::Ewma seeded(0.5, /*prior=*/3.0, /*warmup=*/1);
  seeded.Observe(9.0);
  seeded.Reset();
  EXPECT_DOUBLE_EQ(seeded.value(), 3.0);
  EXPECT_EQ(seeded.observations(), 0u);

  util::Ewma unseeded(0.5);
  unseeded.Observe(9.0);
  unseeded.Reset();
  EXPECT_EQ(unseeded.value(), 0.0);
}

}  // namespace
}  // namespace gpujoin
