// Tests for the adaptive query-routing planner (src/plan): plan-space
// enumeration order, dominance pruning and name round-trips; the
// analytic predictor's regime ordering and the residual model's
// adopt/blend/pool/clamp behaviour; router argmin, exploration bounds
// and determinism; and the routed backend — every candidate plan must
// produce the identical match set, identically-seeded backends must
// agree bit for bit at any oracle thread count, and the adaptive
// planner must stay within 1.10x of the hindsight oracle on a phased
// mini-workload.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "plan/backend.h"
#include "plan/features.h"
#include "plan/plan_space.h"
#include "plan/predictor.h"
#include "plan/router.h"
#include "sim/specs.h"

namespace gpujoin {
namespace {

using core::InljConfig;
using plan::BatchFeatures;
using plan::PlanChoice;
using plan::PlanContext;
using plan::PlannerMode;
using plan::PlanSpaceConfig;
using plan::PruneContext;

constexpr uint64_t kGiB = uint64_t{1} << 30;

BatchFeatures Features(uint64_t batch_tuples, double skew = 0,
                       double r_tlb_ratio = 0) {
  BatchFeatures f;
  f.batch_tuples = batch_tuples;
  f.skew = skew;
  f.selectivity = 1.0;
  f.r_tlb_ratio = r_tlb_ratio;
  return f;
}

PlanContext Context(uint64_t r_tuples) {
  PlanContext ctx;
  ctx.platform = sim::V100NvLink2();
  ctx.r_tuples = r_tuples;
  return ctx;
}

PlanChoice Inlj(index::IndexType type, InljConfig::PartitionMode mode,
                uint64_t window = 0) {
  return {PlanChoice::Kind::kInlj, type, mode, window};
}

// --------------------------------------------------------------------
// Plan space

TEST(PlanSpaceTest, UnprunedEnumerationIsTheFullMatrix) {
  PlanSpaceConfig config;
  config.prune = false;
  const auto plans = plan::EnumeratePlans(config, {});
  // 4 indexes x (none + full + 3 windows) + hash join.
  ASSERT_EQ(plans.size(), 21u);
  EXPECT_EQ(plans.front().Name(), "binary_search/none");
  EXPECT_EQ(plans.back().Name(), "hash_join");
  // Per index: kNone < kFull < windowed in ladder order.
  EXPECT_EQ(plans[1].Name(), "binary_search/full");
  EXPECT_EQ(plans[2].Name(), "binary_search/windowed/32768");
  EXPECT_EQ(plans[3].Name(), "binary_search/windowed/131072");
  EXPECT_EQ(plans[4].Name(), "binary_search/windowed/524288");
  EXPECT_EQ(plans[5].Name(), "btree/none");
}

TEST(PlanSpaceTest, TinyRelationDropsPartitionedPlans) {
  PlanSpaceConfig config;
  PruneContext ctx;
  ctx.r_bytes = uint64_t{1} << 19;  // 512 KiB, far inside the TLB range
  ctx.tlb_coverage = 32 * kGiB;
  ctx.batch_tuples = 8192;
  const auto plans = plan::EnumeratePlans(config, ctx);
  ASSERT_EQ(plans.size(), 5u);  // 4x kNone + hash join
  for (const PlanChoice& p : plans) {
    if (p.kind == PlanChoice::Kind::kHashJoin) continue;
    EXPECT_EQ(p.mode, InljConfig::PartitionMode::kNone) << p.Name();
  }
}

TEST(PlanSpaceTest, HugeRelationDropsUnpartitionedAndHash) {
  PlanSpaceConfig config;
  PruneContext ctx;
  ctx.r_bytes = 128 * kGiB;  // past 2x the TLB range
  ctx.tlb_coverage = 32 * kGiB;
  ctx.batch_tuples = uint64_t{1} << 17;
  const auto plans = plan::EnumeratePlans(config, ctx);
  ASSERT_FALSE(plans.empty());
  for (const PlanChoice& p : plans) {
    EXPECT_NE(p.kind, PlanChoice::Kind::kHashJoin) << p.Name();
    EXPECT_NE(p.mode, InljConfig::PartitionMode::kNone) << p.Name();
  }
}

TEST(PlanSpaceTest, BoundaryRelationKeepsUnpartitioned) {
  // Exactly 2x the TLB range is the paper's cliff edge; the rule only
  // drops kNone strictly beyond it.
  PlanSpaceConfig config;
  PruneContext ctx;
  ctx.r_bytes = 64 * kGiB;
  ctx.tlb_coverage = 32 * kGiB;
  ctx.batch_tuples = uint64_t{1} << 17;
  const auto plans = plan::EnumeratePlans(config, ctx);
  const bool has_none =
      std::any_of(plans.begin(), plans.end(), [](const PlanChoice& p) {
        return p.kind == PlanChoice::Kind::kInlj &&
               p.mode == InljConfig::PartitionMode::kNone;
      });
  EXPECT_TRUE(has_none);
}

TEST(PlanSpaceTest, WindowsAtLeastTheBatchCollapseOntoFull) {
  PlanSpaceConfig config;
  PruneContext ctx;
  ctx.r_bytes = 32 * kGiB;  // mid-range: neither size rule fires
  ctx.tlb_coverage = 32 * kGiB;
  ctx.batch_tuples = uint64_t{1} << 17;
  const auto plans = plan::EnumeratePlans(config, ctx);
  for (const PlanChoice& p : plans) {
    if (p.kind == PlanChoice::Kind::kInlj &&
        p.mode == InljConfig::PartitionMode::kWindowed) {
      EXPECT_LT(p.window_tuples, ctx.batch_tuples) << p.Name();
    }
  }
  // The 2^17 and 2^19 ladder entries collapse onto the kFull candidate,
  // which stays; hash join is scan-dominated at 32 GiB.
  ASSERT_EQ(plans.size(), 12u);
}

TEST(PlanSpaceTest, EveryNameRoundTripsThroughParse) {
  PlanSpaceConfig config;
  config.prune = false;
  for (const PlanChoice& p : plan::EnumeratePlans(config, {})) {
    auto parsed = plan::ParsePlanChoice(p.Name());
    ASSERT_TRUE(parsed.ok()) << p.Name();
    EXPECT_TRUE(*parsed == p) << p.Name();
    EXPECT_EQ(parsed->Name(), p.Name());
  }
}

TEST(PlanSpaceTest, ParseRejectsMalformedNames) {
  EXPECT_FALSE(plan::ParsePlanChoice("").ok());
  EXPECT_FALSE(plan::ParsePlanChoice("bogus").ok());
  EXPECT_FALSE(plan::ParsePlanChoice("bogus/none").ok());
  EXPECT_FALSE(plan::ParsePlanChoice("btree/sideways").ok());
  EXPECT_FALSE(plan::ParsePlanChoice("btree/windowed").ok());
  EXPECT_FALSE(plan::ParsePlanChoice("btree/windowed/abc").ok());
  EXPECT_FALSE(plan::ParsePlanChoice("btree/windowed/0").ok());
}

TEST(PlanSpaceTest, PlannerModeRoundTripsAndRejectsUnknown) {
  for (PlannerMode mode : {PlannerMode::kStatic, PlannerMode::kAdaptive,
                           PlannerMode::kOracle}) {
    auto parsed = plan::ParsePlannerMode(plan::PlannerModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(plan::ParsePlannerMode("banana").ok());
}

// --------------------------------------------------------------------
// Predictor

TEST(PredictorTest, EveryPlanCostsPositiveSeconds) {
  PlanSpaceConfig config;
  config.prune = false;
  const PlanContext ctx = Context(uint64_t{1} << 27);
  const BatchFeatures f = Features(uint64_t{1} << 17);
  for (const PlanChoice& p : plan::EnumeratePlans(config, {})) {
    EXPECT_GT(plan::PredictSeconds(ctx, p, f), 0) << p.Name();
  }
}

TEST(PredictorTest, SkewDiscountsIndexLookups) {
  const PlanContext ctx = Context(uint64_t{1} << 27);
  const PlanChoice p = Inlj(index::IndexType::kBinarySearch,
                            InljConfig::PartitionMode::kNone);
  const double uniform =
      plan::PredictSeconds(ctx, p, Features(uint64_t{1} << 17, 0.0));
  const double skewed =
      plan::PredictSeconds(ctx, p, Features(uint64_t{1} << 17, 0.9));
  EXPECT_LT(skewed, uniform);
}

TEST(PredictorTest, PartitioningWinsPastTlbRangeOnly) {
  const BatchFeatures f = Features(uint64_t{1} << 17);
  const auto none = Inlj(index::IndexType::kRadixSpline,
                         InljConfig::PartitionMode::kNone);
  const auto full = Inlj(index::IndexType::kRadixSpline,
                         InljConfig::PartitionMode::kFull);
  // 64 GiB R: unpartitioned probes go translation-bound.
  const PlanContext huge = Context(uint64_t{1} << 33);
  EXPECT_GT(plan::PredictSeconds(huge, none, f),
            plan::PredictSeconds(huge, full, f));
  // 64 KiB R: the partition pass is pure overhead.
  const PlanContext tiny = Context(uint64_t{1} << 13);
  EXPECT_LT(plan::PredictSeconds(tiny, none, f),
            plan::PredictSeconds(tiny, full, f));
}

TEST(ResidualModelTest, FirstObservationIsAdoptedOutright) {
  plan::ResidualModel model(0.25);
  const PlanChoice p = Inlj(index::IndexType::kBTree,
                            InljConfig::PartitionMode::kFull);
  EXPECT_FALSE(model.Observed(p, 3));
  EXPECT_DOUBLE_EQ(model.Correct(p, 3, 1.0), 1.0);  // raw seed
  model.Observe(p, 3, 1.0, 2.0);
  EXPECT_TRUE(model.Observed(p, 3));
  EXPECT_DOUBLE_EQ(model.Correct(p, 3, 1.0), 2.0);
  // Later observations blend at alpha.
  model.Observe(p, 3, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(model.Correct(p, 3, 1.0), 0.25 * 1.0 + 0.75 * 2.0);
}

TEST(ResidualModelTest, UnvisitedPlanFallsBackToBucketPool) {
  plan::ResidualModel model(0.25);
  const PlanChoice seen = Inlj(index::IndexType::kBTree,
                               InljConfig::PartitionMode::kFull);
  const PlanChoice fresh = Inlj(index::IndexType::kRadixSpline,
                                InljConfig::PartitionMode::kNone);
  model.Observe(seen, 5, 1.0, 2.0);
  // Same bucket: the pooled ratio scales the unvisited plan too.
  EXPECT_FALSE(model.Observed(fresh, 5));
  EXPECT_DOUBLE_EQ(model.Correct(fresh, 5, 1.0), 2.0);
  // Other buckets stay on the raw seed.
  EXPECT_DOUBLE_EQ(model.Correct(fresh, 6, 1.0), 1.0);
}

TEST(ResidualModelTest, RatiosAreClampedAndBadSamplesIgnored) {
  plan::ResidualModel model(0.25);
  const PlanChoice p = Inlj(index::IndexType::kHarmonia,
                            InljConfig::PartitionMode::kNone);
  model.Observe(p, 0, 1.0, 1e9);
  EXPECT_DOUBLE_EQ(model.Correct(p, 0, 1.0), 32.0);
  model.Observe(p, 1, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(model.Correct(p, 1, 1.0), 1.0 / 32.0);
  // Non-positive samples are dropped, not adopted.
  model.Observe(p, 2, 0.0, 1.0);
  model.Observe(p, 2, 1.0, 0.0);
  EXPECT_FALSE(model.Observed(p, 2));
  EXPECT_EQ(model.observations(), 2u);
}

// --------------------------------------------------------------------
// Router

std::vector<PlanChoice> FullSpace() {
  PlanSpaceConfig config;
  config.prune = false;
  return plan::EnumeratePlans(config, {});
}

TEST(RouterTest, StaticModeAlwaysRoutesTheConfiguredPlan) {
  plan::PlannerConfig config;
  config.mode = PlannerMode::kStatic;
  config.static_choice = Inlj(index::IndexType::kHarmonia,
                              InljConfig::PartitionMode::kFull);
  plan::Planner planner(config);
  const PlanContext ctx = Context(uint64_t{1} << 27);
  const auto candidates = FullSpace();
  for (int i = 0; i < 8; ++i) {
    const auto d = planner.Decide(ctx, candidates, Features(1 << 17));
    EXPECT_TRUE(d.chosen == config.static_choice);
    EXPECT_FALSE(d.explored);
  }
  EXPECT_EQ(planner.decisions(), 8u);
  EXPECT_EQ(planner.explorations(), 0u);
}

TEST(RouterTest, AdaptiveArgminPicksTheCheapestCorrectedCandidate) {
  plan::PlannerConfig config;
  config.epsilon = 0;  // no exploration: pure argmin
  plan::Planner planner(config);
  const PlanContext ctx = Context(uint64_t{1} << 27);
  const auto candidates = FullSpace();
  const BatchFeatures f = Features(1 << 17);
  const auto d = planner.Decide(ctx, candidates, f);
  EXPECT_FALSE(d.explored);
  for (const PlanChoice& p : candidates) {
    EXPECT_LE(d.predicted_seconds, planner.CorrectedSeconds(ctx, p, f))
        << p.Name();
  }
}

TEST(RouterTest, FeedbackReranksCandidates) {
  plan::PlannerConfig config;
  config.epsilon = 0;
  plan::Planner planner(config);
  const PlanContext ctx = Context(uint64_t{1} << 27);
  const auto candidates = FullSpace();
  const BatchFeatures f = Features(1 << 17);
  const PlanChoice first = planner.Decide(ctx, candidates, f).chosen;
  // The routed plan comes back 20x slower than its seed; some other
  // candidate must take over. (Every candidate shares the bucket pool,
  // so also pin the runner-up's honest ratio with an observation.)
  for (const PlanChoice& p : candidates) {
    if (p == first) {
      planner.Observe(ctx, p, f,
                      20.0 * plan::PredictSeconds(ctx, p, f));
    } else {
      planner.Observe(ctx, p, f, plan::PredictSeconds(ctx, p, f));
    }
  }
  const PlanChoice second = planner.Decide(ctx, candidates, f).chosen;
  EXPECT_FALSE(second == first)
      << "still routing " << first.Name() << " after 20x feedback";
}

TEST(RouterTest, ExplorationStaysUnderTheCeiling) {
  plan::PlannerConfig config;
  config.epsilon = 1.0;  // explore on every decision
  plan::Planner planner(config);
  const PlanContext ctx = Context(uint64_t{1} << 27);
  const auto candidates = FullSpace();
  for (int i = 0; i < 32; ++i) {
    const BatchFeatures f = Features(1 << 17);
    // Corrected costs move as residuals accumulate; capture the argmin
    // before the decision mutates planner state.
    double best = planner.CorrectedSeconds(ctx, candidates[0], f);
    for (const PlanChoice& p : candidates) {
      best = std::min(best, planner.CorrectedSeconds(ctx, p, f));
    }
    const auto d = planner.Decide(ctx, candidates, f);
    EXPECT_LE(d.predicted_seconds, best * config.explore_ceiling + 1e-12);
    planner.Observe(ctx, d.chosen, f, d.predicted_seconds);
  }
  EXPECT_GT(planner.explorations(), 0u);
}

TEST(RouterTest, IdenticallySeededPlannersDecideIdentically) {
  plan::PlannerConfig config;
  config.seed = 99;
  plan::Planner a(config);
  plan::Planner b(config);
  const PlanContext ctx = Context(uint64_t{1} << 27);
  const auto candidates = FullSpace();
  for (int i = 0; i < 64; ++i) {
    const BatchFeatures f =
        Features(1 << 17, (i % 4) * 0.25, (i % 3) * 1.0);
    const auto da = a.Decide(ctx, candidates, f);
    const auto db = b.Decide(ctx, candidates, f);
    ASSERT_EQ(da.chosen.Name(), db.chosen.Name()) << "decision " << i;
    ASSERT_EQ(da.explored, db.explored) << "decision " << i;
    ASSERT_DOUBLE_EQ(da.predicted_seconds, db.predicted_seconds);
    const double actual = da.predicted_seconds * (1.0 + 0.1 * (i % 5));
    a.Observe(ctx, da.chosen, f, actual);
    b.Observe(ctx, db.chosen, f, actual);
  }
  EXPECT_EQ(a.explorations(), b.explorations());
}

// --------------------------------------------------------------------
// Routed backend

plan::PlannedBackendConfig SmallBackendConfig(uint64_t r_tuples,
                                              uint64_t sample,
                                              double zipf = 0) {
  plan::PlannedBackendConfig config;
  config.base.r_tuples = r_tuples;
  config.base.s_tuples = uint64_t{1} << 16;
  config.base.s_sample = sample;
  config.base.seed = 42;
  config.base.zipf_exponent = zipf;
  config.base.index_type = index::IndexType::kRadixSpline;
  config.base.inlj.mode = InljConfig::PartitionMode::kWindowed;
  return config;
}

TEST(PlannedBackendTest, EveryCandidatePlanProducesTheSameMatches) {
  auto config = SmallBackendConfig(uint64_t{1} << 14, 8192);
  config.space.prune = false;
  auto backend = plan::PlannedBackend::Create(config);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();

  std::vector<core::JoinMatch> reference;
  std::string reference_plan;
  uint64_t ordinal = 0;
  for (const PlanChoice& p : FullSpace()) {
    std::vector<core::JoinMatch> matches;
    auto result = (*backend)->ExecutePlan(p, 0, 4096, ordinal++, &matches);
    ASSERT_TRUE(result.ok()) << p.Name() << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->matches, matches.size()) << p.Name();
    std::sort(matches.begin(), matches.end());
    if (reference_plan.empty()) {
      reference = std::move(matches);
      reference_plan = p.Name();
      ASSERT_FALSE(reference.empty());
      continue;
    }
    EXPECT_TRUE(matches == reference)
        << p.Name() << " diverges from " << reference_plan;
  }
}

TEST(PlannedBackendTest, OracleThreadCountNeverChangesOutcomes) {
  std::vector<const plan::BatchOutcome*> runs[2];
  std::unique_ptr<plan::PlannedBackend> backends[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    auto config = SmallBackendConfig(uint64_t{1} << 14, 16384);
    config.space.prune = false;
    config.planner.mode = PlannerMode::kOracle;
    config.oracle_threads = threads[i];
    auto backend = plan::PlannedBackend::Create(config);
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    backends[i] = std::move(*backend);
    for (uint64_t b = 0; b < 4; ++b) {
      auto out = backends[i]->RouteSlice(b * 4096, 4096, b);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
    }
  }
  const auto& a = backends[0]->outcomes();
  const auto& b = backends[1]->outcomes();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].chosen.Name(), b[i].chosen.Name());
    EXPECT_EQ(a[i].charged_seconds, b[i].charged_seconds);
    EXPECT_EQ(a[i].matches, b[i].matches);
    ASSERT_EQ(a[i].candidate_seconds, b[i].candidate_seconds);
  }
  EXPECT_EQ(backends[0]->total_seconds(), backends[1]->total_seconds());
}

TEST(PlannedBackendTest, IdenticallySeededAdaptiveBackendsAgree) {
  std::unique_ptr<plan::PlannedBackend> backends[2];
  for (int i = 0; i < 2; ++i) {
    auto config = SmallBackendConfig(uint64_t{1} << 14, 16384);
    auto backend = plan::PlannedBackend::Create(config);
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    backends[i] = std::move(*backend);
    for (uint64_t b = 0; b < 4; ++b) {
      auto out = backends[i]->RouteSlice(b * 4096, 4096, b);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
    }
  }
  const auto& a = backends[0]->outcomes();
  const auto& b = backends[1]->outcomes();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].chosen.Name(), b[i].chosen.Name());
    EXPECT_EQ(a[i].explored, b[i].explored);
    EXPECT_EQ(a[i].charged_seconds, b[i].charged_seconds);
    EXPECT_EQ(a[i].predicted_seconds, b[i].predicted_seconds);
  }
}

TEST(PlannedBackendTest, AdaptiveStaysWithinRegretBoundOfOracle) {
  // A compressed Fig. 11: the best plan flips between phases (a tiny R
  // where partitioning is overhead, then a larger skewed R). One
  // planner persists across both; its total must stay within 1.10x of
  // the run-everything oracle.
  struct MiniPhase {
    uint64_t r_tuples;
    double zipf;
  };
  const MiniPhase phases[] = {{uint64_t{1} << 14, 0.0},
                              {uint64_t{1} << 20, 1.25}};
  constexpr uint64_t kBatch = 8192;
  constexpr uint64_t kBatches = 6;

  plan::PlannerConfig shared_cfg;
  shared_cfg.mode = PlannerMode::kAdaptive;
  plan::Planner shared_planner(shared_cfg);

  double adaptive_total = 0;
  double oracle_total = 0;
  uint64_t ordinal = 0;
  for (const MiniPhase& phase : phases) {
    auto oracle_cfg =
        SmallBackendConfig(phase.r_tuples, kBatch * kBatches, phase.zipf);
    oracle_cfg.space.prune = false;
    oracle_cfg.planner.mode = PlannerMode::kOracle;
    oracle_cfg.oracle_threads = 2;
    auto oracle = plan::PlannedBackend::Create(oracle_cfg);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    auto adaptive_cfg =
        SmallBackendConfig(phase.r_tuples, kBatch * kBatches, phase.zipf);
    adaptive_cfg.planner = shared_cfg;
    auto adaptive =
        plan::PlannedBackend::Create(adaptive_cfg, &shared_planner);
    ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();

    for (uint64_t b = 0; b < kBatches; ++b, ++ordinal) {
      auto o = (*oracle)->RouteSlice(b * kBatch, kBatch, ordinal);
      ASSERT_TRUE(o.ok()) << o.status().ToString();
      auto a = (*adaptive)->RouteSlice(b * kBatch, kBatch, ordinal);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      // Same slice, same R: the match count is plan-independent. (The
      // charged seconds are not strictly comparable per batch — the
      // oracle's engines carry different simulated cache history from
      // running every candidate — so the bound below is on totals.)
      EXPECT_EQ(a->matches, o->matches)
          << "batch " << ordinal << ": " << a->chosen.Name() << " vs "
          << o->chosen.Name();
    }
    adaptive_total += (*adaptive)->total_seconds();
    oracle_total += (*oracle)->total_seconds();
  }
  ASSERT_GT(oracle_total, 0);
  EXPECT_LE(adaptive_total, 1.10 * oracle_total)
      << "regret " << adaptive_total / oracle_total << "x";
}

}  // namespace
}  // namespace gpujoin
