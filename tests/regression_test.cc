// Golden-band regression tests: pin the headline simulated results to the
// bands recorded in EXPERIMENTS.md so that future model edits cannot
// silently drift the reproduction away from the paper's anchors.
// (Bands are deliberately loose — they flag regressions, not noise.)

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "util/units.h"

namespace gpujoin::core {
namespace {

constexpr uint64_t k111GiB = 14898093260;  // the paper's anchor R

ExperimentConfig AnchorConfig(index::IndexType type) {
  ExperimentConfig cfg;
  cfg.r_tuples = k111GiB;
  cfg.s_sample = uint64_t{1} << 17;
  cfg.seed = 1;
  cfg.index_type = type;
  cfg.inlj.mode = InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{4} << 20;
  return cfg;
}

double WindowedQps(index::IndexType type) {
  auto exp = Experiment::Create(AnchorConfig(type));
  GPUJOIN_CHECK(exp.ok()) << exp.status().ToString();
  return (*exp)->RunInlj().value().qps();
}

// Paper Sec. 4.3.1 anchors at 111 GiB: 0.6 / 0.7 / 1.0 / 1.9 Q/s, hash
// join 0.2 Q/s. Our bands (see EXPERIMENTS.md):
TEST(GoldenBands, BTreeAnchor) {
  EXPECT_NEAR(WindowedQps(index::IndexType::kBTree), 0.66, 0.25);
}

TEST(GoldenBands, BinarySearchAnchor) {
  EXPECT_NEAR(WindowedQps(index::IndexType::kBinarySearch), 0.60, 0.25);
}

TEST(GoldenBands, HarmoniaAnchor) {
  EXPECT_NEAR(WindowedQps(index::IndexType::kHarmonia), 1.0, 0.35);
}

TEST(GoldenBands, RadixSplineAnchor) {
  // Above the paper's 1.9 (dense keys are the spline's best case) but
  // pinned so it cannot drift further.
  const double qps = WindowedQps(index::IndexType::kRadixSpline);
  EXPECT_GT(qps, 1.8);
  EXPECT_LT(qps, 4.5);
}

TEST(GoldenBands, HashJoinAnchor) {
  auto exp = Experiment::Create(AnchorConfig(index::IndexType::kRadixSpline));
  ASSERT_TRUE(exp.ok());
  const double qps = (*exp)->RunHashJoin().value().qps();
  EXPECT_NEAR(qps, 0.22, 0.08);  // paper: 0.2 Q/s
}

TEST(GoldenBands, NaiveBinarySearchTranslationsAtAnchor) {
  // Paper Fig. 4: 105 requests/key for binary search at 111 GiB; the
  // simulator (no translation replays) lands at ~15-25.
  ExperimentConfig cfg = AnchorConfig(index::IndexType::kBinarySearch);
  cfg.inlj.mode = InljConfig::PartitionMode::kNone;
  cfg.s_sample = uint64_t{1} << 15;
  auto exp = Experiment::Create(cfg);
  ASSERT_TRUE(exp.ok());
  const double tr = (*exp)->RunInlj().value().translations_per_key();
  EXPECT_GT(tr, 10.0);
  EXPECT_LT(tr, 40.0);
}

TEST(GoldenBands, HarmoniaTranslationsBelowBinary) {
  // Paper Fig. 4: Harmonia 11.3 vs binary search 105 (roughly 10x less);
  // the simulator preserves a large gap.
  ExperimentConfig cfg = AnchorConfig(index::IndexType::kHarmonia);
  cfg.inlj.mode = InljConfig::PartitionMode::kNone;
  cfg.s_sample = uint64_t{1} << 15;
  auto harmonia = Experiment::Create(cfg);
  ASSERT_TRUE(harmonia.ok());
  cfg.index_type = index::IndexType::kBinarySearch;
  auto binary = Experiment::Create(cfg);
  ASSERT_TRUE(binary.ok());
  EXPECT_LT((*harmonia)->RunInlj().value().translations_per_key() * 3,
            (*binary)->RunInlj().value().translations_per_key());
}

}  // namespace
}  // namespace gpujoin::core
