# Empty compiler generated dependencies file for skewed_workload.
# This may be replaced when dependencies are built.
