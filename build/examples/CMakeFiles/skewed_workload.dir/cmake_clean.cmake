file(REMOVE_RECURSE
  "CMakeFiles/skewed_workload.dir/skewed_workload.cpp.o"
  "CMakeFiles/skewed_workload.dir/skewed_workload.cpp.o.d"
  "skewed_workload"
  "skewed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
