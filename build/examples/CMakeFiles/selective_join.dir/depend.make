# Empty dependencies file for selective_join.
# This may be replaced when dependencies are built.
