file(REMOVE_RECURSE
  "CMakeFiles/selective_join.dir/selective_join.cpp.o"
  "CMakeFiles/selective_join.dir/selective_join.cpp.o.d"
  "selective_join"
  "selective_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
