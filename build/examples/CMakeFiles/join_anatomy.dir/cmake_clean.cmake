file(REMOVE_RECURSE
  "CMakeFiles/join_anatomy.dir/join_anatomy.cpp.o"
  "CMakeFiles/join_anatomy.dir/join_anatomy.cpp.o.d"
  "join_anatomy"
  "join_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
