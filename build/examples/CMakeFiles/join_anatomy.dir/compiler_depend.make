# Empty compiler generated dependencies file for join_anatomy.
# This may be replaced when dependencies are built.
