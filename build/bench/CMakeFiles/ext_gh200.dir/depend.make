# Empty dependencies file for ext_gh200.
# This may be replaced when dependencies are built.
