file(REMOVE_RECURSE
  "CMakeFiles/ext_gh200.dir/ext_gh200.cc.o"
  "CMakeFiles/ext_gh200.dir/ext_gh200.cc.o.d"
  "ext_gh200"
  "ext_gh200.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gh200.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
