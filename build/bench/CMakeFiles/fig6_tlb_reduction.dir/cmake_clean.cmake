file(REMOVE_RECURSE
  "CMakeFiles/fig6_tlb_reduction.dir/fig6_tlb_reduction.cc.o"
  "CMakeFiles/fig6_tlb_reduction.dir/fig6_tlb_reduction.cc.o.d"
  "fig6_tlb_reduction"
  "fig6_tlb_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tlb_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
