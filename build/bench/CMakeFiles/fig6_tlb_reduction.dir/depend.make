# Empty dependencies file for fig6_tlb_reduction.
# This may be replaced when dependencies are built.
