# Empty dependencies file for ablation_btree_node.
# This may be replaced when dependencies are built.
