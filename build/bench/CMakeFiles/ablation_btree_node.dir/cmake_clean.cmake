file(REMOVE_RECURSE
  "CMakeFiles/ablation_btree_node.dir/ablation_btree_node.cc.o"
  "CMakeFiles/ablation_btree_node.dir/ablation_btree_node.cc.o.d"
  "ablation_btree_node"
  "ablation_btree_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_btree_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
