file(REMOVE_RECURSE
  "CMakeFiles/fig4_tlb_misses.dir/fig4_tlb_misses.cc.o"
  "CMakeFiles/fig4_tlb_misses.dir/fig4_tlb_misses.cc.o.d"
  "fig4_tlb_misses"
  "fig4_tlb_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tlb_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
