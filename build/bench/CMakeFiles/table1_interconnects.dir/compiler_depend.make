# Empty compiler generated dependencies file for table1_interconnects.
# This may be replaced when dependencies are built.
