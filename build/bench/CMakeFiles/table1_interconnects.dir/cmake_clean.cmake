file(REMOVE_RECURSE
  "CMakeFiles/table1_interconnects.dir/table1_interconnects.cc.o"
  "CMakeFiles/table1_interconnects.dir/table1_interconnects.cc.o.d"
  "table1_interconnects"
  "table1_interconnects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
