# Empty dependencies file for fig3_inlj_naive.
# This may be replaced when dependencies are built.
