file(REMOVE_RECURSE
  "CMakeFiles/fig3_inlj_naive.dir/fig3_inlj_naive.cc.o"
  "CMakeFiles/fig3_inlj_naive.dir/fig3_inlj_naive.cc.o.d"
  "fig3_inlj_naive"
  "fig3_inlj_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_inlj_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
