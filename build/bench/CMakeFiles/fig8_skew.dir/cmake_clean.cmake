file(REMOVE_RECURSE
  "CMakeFiles/fig8_skew.dir/fig8_skew.cc.o"
  "CMakeFiles/fig8_skew.dir/fig8_skew.cc.o.d"
  "fig8_skew"
  "fig8_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
