file(REMOVE_RECURSE
  "CMakeFiles/disc_transfer_volume.dir/disc_transfer_volume.cc.o"
  "CMakeFiles/disc_transfer_volume.dir/disc_transfer_volume.cc.o.d"
  "disc_transfer_volume"
  "disc_transfer_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_transfer_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
