# Empty compiler generated dependencies file for disc_transfer_volume.
# This may be replaced when dependencies are built.
