# Empty compiler generated dependencies file for fig5_inlj_partitioned.
# This may be replaced when dependencies are built.
