file(REMOVE_RECURSE
  "CMakeFiles/fig5_inlj_partitioned.dir/fig5_inlj_partitioned.cc.o"
  "CMakeFiles/fig5_inlj_partitioned.dir/fig5_inlj_partitioned.cc.o.d"
  "fig5_inlj_partitioned"
  "fig5_inlj_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_inlj_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
