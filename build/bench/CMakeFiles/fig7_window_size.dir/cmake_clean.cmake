file(REMOVE_RECURSE
  "CMakeFiles/fig7_window_size.dir/fig7_window_size.cc.o"
  "CMakeFiles/fig7_window_size.dir/fig7_window_size.cc.o.d"
  "fig7_window_size"
  "fig7_window_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_window_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
