file(REMOVE_RECURSE
  "CMakeFiles/ablation_filter_divergence.dir/ablation_filter_divergence.cc.o"
  "CMakeFiles/ablation_filter_divergence.dir/ablation_filter_divergence.cc.o.d"
  "ablation_filter_divergence"
  "ablation_filter_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filter_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
