# Empty dependencies file for ablation_filter_divergence.
# This may be replaced when dependencies are built.
