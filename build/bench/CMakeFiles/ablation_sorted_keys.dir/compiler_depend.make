# Empty compiler generated dependencies file for ablation_sorted_keys.
# This may be replaced when dependencies are built.
