file(REMOVE_RECURSE
  "CMakeFiles/ablation_sorted_keys.dir/ablation_sorted_keys.cc.o"
  "CMakeFiles/ablation_sorted_keys.dir/ablation_sorted_keys.cc.o.d"
  "ablation_sorted_keys"
  "ablation_sorted_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sorted_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
