
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_page_size.cc" "bench/CMakeFiles/ablation_page_size.dir/ablation_page_size.cc.o" "gcc" "bench/CMakeFiles/ablation_page_size.dir/ablation_page_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpujoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/gpujoin_index.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/gpujoin_join.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gpujoin_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpujoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpujoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpujoin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
