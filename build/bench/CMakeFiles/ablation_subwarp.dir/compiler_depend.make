# Empty compiler generated dependencies file for ablation_subwarp.
# This may be replaced when dependencies are built.
