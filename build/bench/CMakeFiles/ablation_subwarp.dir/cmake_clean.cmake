file(REMOVE_RECURSE
  "CMakeFiles/ablation_subwarp.dir/ablation_subwarp.cc.o"
  "CMakeFiles/ablation_subwarp.dir/ablation_subwarp.cc.o.d"
  "ablation_subwarp"
  "ablation_subwarp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subwarp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
