# Empty compiler generated dependencies file for ablation_best_effort.
# This may be replaced when dependencies are built.
