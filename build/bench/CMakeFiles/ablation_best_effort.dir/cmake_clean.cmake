file(REMOVE_RECURSE
  "CMakeFiles/ablation_best_effort.dir/ablation_best_effort.cc.o"
  "CMakeFiles/ablation_best_effort.dir/ablation_best_effort.cc.o.d"
  "ablation_best_effort"
  "ablation_best_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_best_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
