# Empty dependencies file for ablation_partition_bits.
# This may be replaced when dependencies are built.
