file(REMOVE_RECURSE
  "CMakeFiles/ablation_partition_bits.dir/ablation_partition_bits.cc.o"
  "CMakeFiles/ablation_partition_bits.dir/ablation_partition_bits.cc.o.d"
  "ablation_partition_bits"
  "ablation_partition_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
