# Empty compiler generated dependencies file for fig9_hardware.
# This may be replaced when dependencies are built.
