file(REMOVE_RECURSE
  "CMakeFiles/fig9_hardware.dir/fig9_hardware.cc.o"
  "CMakeFiles/fig9_hardware.dir/fig9_hardware.cc.o.d"
  "fig9_hardware"
  "fig9_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
