file(REMOVE_RECURSE
  "CMakeFiles/ablation_tlb_model.dir/ablation_tlb_model.cc.o"
  "CMakeFiles/ablation_tlb_model.dir/ablation_tlb_model.cc.o.d"
  "ablation_tlb_model"
  "ablation_tlb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tlb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
