# Empty dependencies file for ablation_tlb_model.
# This may be replaced when dependencies are built.
