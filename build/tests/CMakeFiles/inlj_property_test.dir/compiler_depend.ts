# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for inlj_property_test.
