file(REMOVE_RECURSE
  "CMakeFiles/inlj_property_test.dir/inlj_property_test.cc.o"
  "CMakeFiles/inlj_property_test.dir/inlj_property_test.cc.o.d"
  "inlj_property_test"
  "inlj_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlj_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
