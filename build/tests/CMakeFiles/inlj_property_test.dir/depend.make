# Empty dependencies file for inlj_property_test.
# This may be replaced when dependencies are built.
