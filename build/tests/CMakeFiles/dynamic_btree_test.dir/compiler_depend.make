# Empty compiler generated dependencies file for dynamic_btree_test.
# This may be replaced when dependencies are built.
