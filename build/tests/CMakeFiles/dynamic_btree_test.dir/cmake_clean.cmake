file(REMOVE_RECURSE
  "CMakeFiles/dynamic_btree_test.dir/dynamic_btree_test.cc.o"
  "CMakeFiles/dynamic_btree_test.dir/dynamic_btree_test.cc.o.d"
  "dynamic_btree_test"
  "dynamic_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
