# Empty compiler generated dependencies file for spline_property_test.
# This may be replaced when dependencies are built.
