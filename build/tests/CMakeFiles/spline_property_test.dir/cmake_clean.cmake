file(REMOVE_RECURSE
  "CMakeFiles/spline_property_test.dir/spline_property_test.cc.o"
  "CMakeFiles/spline_property_test.dir/spline_property_test.cc.o.d"
  "spline_property_test"
  "spline_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spline_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
