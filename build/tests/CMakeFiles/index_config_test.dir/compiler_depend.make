# Empty compiler generated dependencies file for index_config_test.
# This may be replaced when dependencies are built.
