file(REMOVE_RECURSE
  "CMakeFiles/index_config_test.dir/index_config_test.cc.o"
  "CMakeFiles/index_config_test.dir/index_config_test.cc.o.d"
  "index_config_test"
  "index_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
