# Empty dependencies file for best_effort_test.
# This may be replaced when dependencies are built.
