file(REMOVE_RECURSE
  "CMakeFiles/best_effort_test.dir/best_effort_test.cc.o"
  "CMakeFiles/best_effort_test.dir/best_effort_test.cc.o.d"
  "best_effort_test"
  "best_effort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_effort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
