# Empty compiler generated dependencies file for gpujoin_index.
# This may be replaced when dependencies are built.
