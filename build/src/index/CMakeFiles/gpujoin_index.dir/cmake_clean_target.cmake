file(REMOVE_RECURSE
  "libgpujoin_index.a"
)
