file(REMOVE_RECURSE
  "CMakeFiles/gpujoin_index.dir/binary_search.cc.o"
  "CMakeFiles/gpujoin_index.dir/binary_search.cc.o.d"
  "CMakeFiles/gpujoin_index.dir/btree.cc.o"
  "CMakeFiles/gpujoin_index.dir/btree.cc.o.d"
  "CMakeFiles/gpujoin_index.dir/dynamic_btree.cc.o"
  "CMakeFiles/gpujoin_index.dir/dynamic_btree.cc.o.d"
  "CMakeFiles/gpujoin_index.dir/harmonia.cc.o"
  "CMakeFiles/gpujoin_index.dir/harmonia.cc.o.d"
  "CMakeFiles/gpujoin_index.dir/index.cc.o"
  "CMakeFiles/gpujoin_index.dir/index.cc.o.d"
  "CMakeFiles/gpujoin_index.dir/radix_spline.cc.o"
  "CMakeFiles/gpujoin_index.dir/radix_spline.cc.o.d"
  "CMakeFiles/gpujoin_index.dir/spline.cc.o"
  "CMakeFiles/gpujoin_index.dir/spline.cc.o.d"
  "libgpujoin_index.a"
  "libgpujoin_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpujoin_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
