
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/binary_search.cc" "src/index/CMakeFiles/gpujoin_index.dir/binary_search.cc.o" "gcc" "src/index/CMakeFiles/gpujoin_index.dir/binary_search.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/index/CMakeFiles/gpujoin_index.dir/btree.cc.o" "gcc" "src/index/CMakeFiles/gpujoin_index.dir/btree.cc.o.d"
  "/root/repo/src/index/dynamic_btree.cc" "src/index/CMakeFiles/gpujoin_index.dir/dynamic_btree.cc.o" "gcc" "src/index/CMakeFiles/gpujoin_index.dir/dynamic_btree.cc.o.d"
  "/root/repo/src/index/harmonia.cc" "src/index/CMakeFiles/gpujoin_index.dir/harmonia.cc.o" "gcc" "src/index/CMakeFiles/gpujoin_index.dir/harmonia.cc.o.d"
  "/root/repo/src/index/index.cc" "src/index/CMakeFiles/gpujoin_index.dir/index.cc.o" "gcc" "src/index/CMakeFiles/gpujoin_index.dir/index.cc.o.d"
  "/root/repo/src/index/radix_spline.cc" "src/index/CMakeFiles/gpujoin_index.dir/radix_spline.cc.o" "gcc" "src/index/CMakeFiles/gpujoin_index.dir/radix_spline.cc.o.d"
  "/root/repo/src/index/spline.cc" "src/index/CMakeFiles/gpujoin_index.dir/spline.cc.o" "gcc" "src/index/CMakeFiles/gpujoin_index.dir/spline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gpujoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpujoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpujoin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
