file(REMOVE_RECURSE
  "libgpujoin_join.a"
)
