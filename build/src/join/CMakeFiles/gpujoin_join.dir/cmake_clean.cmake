file(REMOVE_RECURSE
  "CMakeFiles/gpujoin_join.dir/cpu_reference.cc.o"
  "CMakeFiles/gpujoin_join.dir/cpu_reference.cc.o.d"
  "CMakeFiles/gpujoin_join.dir/hash_join.cc.o"
  "CMakeFiles/gpujoin_join.dir/hash_join.cc.o.d"
  "CMakeFiles/gpujoin_join.dir/multi_value_hash_table.cc.o"
  "CMakeFiles/gpujoin_join.dir/multi_value_hash_table.cc.o.d"
  "libgpujoin_join.a"
  "libgpujoin_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpujoin_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
