
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/cpu_reference.cc" "src/join/CMakeFiles/gpujoin_join.dir/cpu_reference.cc.o" "gcc" "src/join/CMakeFiles/gpujoin_join.dir/cpu_reference.cc.o.d"
  "/root/repo/src/join/hash_join.cc" "src/join/CMakeFiles/gpujoin_join.dir/hash_join.cc.o" "gcc" "src/join/CMakeFiles/gpujoin_join.dir/hash_join.cc.o.d"
  "/root/repo/src/join/multi_value_hash_table.cc" "src/join/CMakeFiles/gpujoin_join.dir/multi_value_hash_table.cc.o" "gcc" "src/join/CMakeFiles/gpujoin_join.dir/multi_value_hash_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gpujoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpujoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpujoin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
