# Empty dependencies file for gpujoin_join.
# This may be replaced when dependencies are built.
