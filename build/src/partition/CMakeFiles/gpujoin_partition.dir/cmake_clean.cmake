file(REMOVE_RECURSE
  "CMakeFiles/gpujoin_partition.dir/radix_partitioner.cc.o"
  "CMakeFiles/gpujoin_partition.dir/radix_partitioner.cc.o.d"
  "libgpujoin_partition.a"
  "libgpujoin_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpujoin_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
