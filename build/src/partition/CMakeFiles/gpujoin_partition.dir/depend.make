# Empty dependencies file for gpujoin_partition.
# This may be replaced when dependencies are built.
