file(REMOVE_RECURSE
  "libgpujoin_partition.a"
)
