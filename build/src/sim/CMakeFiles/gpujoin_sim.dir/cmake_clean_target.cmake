file(REMOVE_RECURSE
  "libgpujoin_sim.a"
)
