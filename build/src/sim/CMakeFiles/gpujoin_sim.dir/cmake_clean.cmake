file(REMOVE_RECURSE
  "CMakeFiles/gpujoin_sim.dir/cache.cc.o"
  "CMakeFiles/gpujoin_sim.dir/cache.cc.o.d"
  "CMakeFiles/gpujoin_sim.dir/cost_model.cc.o"
  "CMakeFiles/gpujoin_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/gpujoin_sim.dir/counters.cc.o"
  "CMakeFiles/gpujoin_sim.dir/counters.cc.o.d"
  "CMakeFiles/gpujoin_sim.dir/memory_model.cc.o"
  "CMakeFiles/gpujoin_sim.dir/memory_model.cc.o.d"
  "CMakeFiles/gpujoin_sim.dir/specs.cc.o"
  "CMakeFiles/gpujoin_sim.dir/specs.cc.o.d"
  "CMakeFiles/gpujoin_sim.dir/tlb.cc.o"
  "CMakeFiles/gpujoin_sim.dir/tlb.cc.o.d"
  "CMakeFiles/gpujoin_sim.dir/trace.cc.o"
  "CMakeFiles/gpujoin_sim.dir/trace.cc.o.d"
  "libgpujoin_sim.a"
  "libgpujoin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpujoin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
