# Empty compiler generated dependencies file for gpujoin_sim.
# This may be replaced when dependencies are built.
