
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/gpujoin_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/gpujoin_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/gpujoin_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/gpujoin_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/counters.cc" "src/sim/CMakeFiles/gpujoin_sim.dir/counters.cc.o" "gcc" "src/sim/CMakeFiles/gpujoin_sim.dir/counters.cc.o.d"
  "/root/repo/src/sim/memory_model.cc" "src/sim/CMakeFiles/gpujoin_sim.dir/memory_model.cc.o" "gcc" "src/sim/CMakeFiles/gpujoin_sim.dir/memory_model.cc.o.d"
  "/root/repo/src/sim/specs.cc" "src/sim/CMakeFiles/gpujoin_sim.dir/specs.cc.o" "gcc" "src/sim/CMakeFiles/gpujoin_sim.dir/specs.cc.o.d"
  "/root/repo/src/sim/tlb.cc" "src/sim/CMakeFiles/gpujoin_sim.dir/tlb.cc.o" "gcc" "src/sim/CMakeFiles/gpujoin_sim.dir/tlb.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/gpujoin_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/gpujoin_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gpujoin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
