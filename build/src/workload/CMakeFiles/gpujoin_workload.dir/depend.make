# Empty dependencies file for gpujoin_workload.
# This may be replaced when dependencies are built.
