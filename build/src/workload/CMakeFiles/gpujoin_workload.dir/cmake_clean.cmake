file(REMOVE_RECURSE
  "CMakeFiles/gpujoin_workload.dir/key_column.cc.o"
  "CMakeFiles/gpujoin_workload.dir/key_column.cc.o.d"
  "CMakeFiles/gpujoin_workload.dir/relation.cc.o"
  "CMakeFiles/gpujoin_workload.dir/relation.cc.o.d"
  "CMakeFiles/gpujoin_workload.dir/zipf.cc.o"
  "CMakeFiles/gpujoin_workload.dir/zipf.cc.o.d"
  "libgpujoin_workload.a"
  "libgpujoin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpujoin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
