
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/key_column.cc" "src/workload/CMakeFiles/gpujoin_workload.dir/key_column.cc.o" "gcc" "src/workload/CMakeFiles/gpujoin_workload.dir/key_column.cc.o.d"
  "/root/repo/src/workload/relation.cc" "src/workload/CMakeFiles/gpujoin_workload.dir/relation.cc.o" "gcc" "src/workload/CMakeFiles/gpujoin_workload.dir/relation.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/workload/CMakeFiles/gpujoin_workload.dir/zipf.cc.o" "gcc" "src/workload/CMakeFiles/gpujoin_workload.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gpujoin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
