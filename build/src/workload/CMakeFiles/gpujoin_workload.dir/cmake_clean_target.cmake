file(REMOVE_RECURSE
  "libgpujoin_workload.a"
)
