file(REMOVE_RECURSE
  "CMakeFiles/gpujoin_core.dir/best_effort.cc.o"
  "CMakeFiles/gpujoin_core.dir/best_effort.cc.o.d"
  "CMakeFiles/gpujoin_core.dir/experiment.cc.o"
  "CMakeFiles/gpujoin_core.dir/experiment.cc.o.d"
  "CMakeFiles/gpujoin_core.dir/inlj.cc.o"
  "CMakeFiles/gpujoin_core.dir/inlj.cc.o.d"
  "CMakeFiles/gpujoin_core.dir/join_kernel.cc.o"
  "CMakeFiles/gpujoin_core.dir/join_kernel.cc.o.d"
  "libgpujoin_core.a"
  "libgpujoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpujoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
