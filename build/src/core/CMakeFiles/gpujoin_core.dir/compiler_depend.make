# Empty compiler generated dependencies file for gpujoin_core.
# This may be replaced when dependencies are built.
