file(REMOVE_RECURSE
  "libgpujoin_core.a"
)
