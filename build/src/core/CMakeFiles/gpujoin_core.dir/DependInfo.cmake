
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/best_effort.cc" "src/core/CMakeFiles/gpujoin_core.dir/best_effort.cc.o" "gcc" "src/core/CMakeFiles/gpujoin_core.dir/best_effort.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/gpujoin_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/gpujoin_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/inlj.cc" "src/core/CMakeFiles/gpujoin_core.dir/inlj.cc.o" "gcc" "src/core/CMakeFiles/gpujoin_core.dir/inlj.cc.o.d"
  "/root/repo/src/core/join_kernel.cc" "src/core/CMakeFiles/gpujoin_core.dir/join_kernel.cc.o" "gcc" "src/core/CMakeFiles/gpujoin_core.dir/join_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/gpujoin_index.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/gpujoin_join.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gpujoin_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpujoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpujoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpujoin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
