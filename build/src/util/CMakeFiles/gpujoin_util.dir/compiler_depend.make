# Empty compiler generated dependencies file for gpujoin_util.
# This may be replaced when dependencies are built.
