file(REMOVE_RECURSE
  "libgpujoin_util.a"
)
