file(REMOVE_RECURSE
  "CMakeFiles/gpujoin_util.dir/check.cc.o"
  "CMakeFiles/gpujoin_util.dir/check.cc.o.d"
  "CMakeFiles/gpujoin_util.dir/flags.cc.o"
  "CMakeFiles/gpujoin_util.dir/flags.cc.o.d"
  "CMakeFiles/gpujoin_util.dir/status.cc.o"
  "CMakeFiles/gpujoin_util.dir/status.cc.o.d"
  "CMakeFiles/gpujoin_util.dir/table_printer.cc.o"
  "CMakeFiles/gpujoin_util.dir/table_printer.cc.o.d"
  "CMakeFiles/gpujoin_util.dir/units.cc.o"
  "CMakeFiles/gpujoin_util.dir/units.cc.o.d"
  "libgpujoin_util.a"
  "libgpujoin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpujoin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
