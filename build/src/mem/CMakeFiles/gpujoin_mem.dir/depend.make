# Empty dependencies file for gpujoin_mem.
# This may be replaced when dependencies are built.
