file(REMOVE_RECURSE
  "libgpujoin_mem.a"
)
