file(REMOVE_RECURSE
  "CMakeFiles/gpujoin_mem.dir/address_space.cc.o"
  "CMakeFiles/gpujoin_mem.dir/address_space.cc.o.d"
  "libgpujoin_mem.a"
  "libgpujoin_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpujoin_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
