// Extension (beyond the paper's evaluation): the paper's Table 1 lists
// the GH200's NVLink C2C at 450 GB/s and notes that on such platforms the
// receive rate alone exceeds the CPU memory bandwidth. This bench runs
// the paper's main experiment (windowed INLJ vs hash join, R sweep) on a
// simulated GH200 to project how the trade-off shifts on the next
// hardware generation: a far larger TLB range removes the cliff entirely
// and the INLJ's selective lookups profit from the enormous random-access
// bandwidth.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  TablePrinter table({"R (GiB)", "selectivity", "naive RS Q/s",
                      "windowed RS Q/s", "hash_join Q/s", "INLJ speedup"});

  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (uint64_t r_tuples : PaperRSizes()) {
    cells.push_back([&flags, &sink, ci, r_tuples] {
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.platform = sim::GH200C2C();

      cfg.index_type = index::IndexType::kRadixSpline;
      cfg.inlj.mode = core::InljConfig::PartitionMode::kNone;
      auto naive = core::Experiment::Create(cfg);
      if (!naive.ok()) return std::vector<std::string>{};
      MaybeObserve(sink, **naive);
      const sim::RunResult naive_run = (*naive)->RunInlj().value();
      const double naive_qps = naive_run.qps();
      EmitRun(sink, ci * 4, StartRecord("ext_gh200", cfg), naive_run,
              naive->get());

      cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
      cfg.inlj.window_tuples = uint64_t{4} << 20;
      auto windowed = core::Experiment::Create(cfg);
      if (!windowed.ok()) return std::vector<std::string>{};
      MaybeObserve(sink, **windowed);
      const sim::RunResult windowed_run = (*windowed)->RunInlj().value();
      const double windowed_qps = windowed_run.qps();
      EmitRun(sink, ci * 4 + 1, StartRecord("ext_gh200", cfg), windowed_run,
              windowed->get());
      const sim::RunResult hj_run = (*windowed)->RunHashJoin().value();
      const double hj_qps = hj_run.qps();
      EmitRun(sink, ci * 4 + 2, StartRecord("ext_gh200", cfg), hj_run,
              windowed->get());

      return std::vector<std::string>{
          GiBStr(r_tuples),
          TablePrinter::Num(100.0 * (uint64_t{1} << 26) /
                                static_cast<double>(r_tuples),
                            2) + "%",
          TablePrinter::Num(naive_qps, 3),
          TablePrinter::Num(windowed_qps, 3),
          TablePrinter::Num(hj_qps, 3),
          hj_qps > 0 ? TablePrinter::Num(windowed_qps / hj_qps, 1) + "x"
                     : std::string("n/a")};
    });
    ++ci;
  }
  SweepInto(flags, cells, table);

  std::printf("Extension — GH200 + NVLink C2C projection (Table 1's next "
              "generation)\n");
  PrintTable(table, flags);
  std::printf("\nWith a %s TLB range there is no 32 GiB cliff, and the "
              "windowed INLJ's\nadvantage over the hash join widens with "
              "the interconnect's random-access bandwidth.\n",
              FormatBytes(static_cast<double>(
                              sim::GH200Gpu().tlb_coverage))
                  .c_str());
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
