// Reproduces Fig. 6: the percentage of address translation requests
// eliminated by partitioning the lookup keys, relative to Fig. 4.
//
// Expected shape (paper Sec. 4.3.2): ~100% at and beyond the 32 GiB TLB
// boundary; tree-based indexes see the improvement a data point earlier.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  TablePrinter table({"R (GiB)", "btree", "binary", "harmonia",
                      "radix_spline"});

  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (uint64_t r_tuples : PaperRSizes()) {
    cells.push_back([&flags, &sink, ci, r_tuples] {
      std::vector<std::string> row{GiBStr(r_tuples)};
      uint64_t sub = 0;
      for (index::IndexType type : AllIndexTypes()) {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = type;

        cfg.inlj.mode = core::InljConfig::PartitionMode::kNone;
        auto naive = core::Experiment::Create(cfg);
        if (!naive.ok()) {
          row.push_back("OOM");
          ++sub;
          continue;
        }
        const sim::RunResult naive_run = (*naive)->RunInlj().value();

        cfg.inlj.mode = core::InljConfig::PartitionMode::kFull;
        auto part = core::Experiment::Create(cfg);
        if (!part.ok()) {
          row.push_back("OOM");
          ++sub;
          continue;
        }
        MaybeObserve(sink, **part);
        const sim::RunResult part_run = (*part)->RunInlj().value();

        // This is a cross-run comparison, not a snapshot delta: at small
        // R the partitioned run can issue slightly *more* translations
        // than the naive one (the partition passes touch extra pages), so
        // the subtraction relies on CounterSet::operator- clamping at
        // zero — a raw unsigned difference would wrap to ~2^64 and print
        // a garbage reduction.
        const sim::CounterSet eliminated =
            naive_run.counters - part_run.counters;
        const uint64_t before = naive_run.counters.translation_requests;
        if (before == 0) {
          row.push_back("-");  // nothing to eliminate below the TLB range
        } else {
          row.push_back(
              TablePrinter::Num(
                  100.0 *
                      static_cast<double>(eliminated.translation_requests) /
                      static_cast<double>(before),
                  1) +
              "%");
        }
        obs::RecordBuilder rec = StartRecord("fig6_tlb_reduction", cfg);
        rec.AddParam("naive_translation_requests", before);
        rec.AddParam("eliminated_translation_requests",
                     eliminated.translation_requests);
        EmitRun(sink, ci * 8 + sub++, std::move(rec), part_run,
                part->get());
      }
      return row;
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Fig. 6 — translation requests eliminated by partitioning "
              "(%% vs Fig. 4)",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
