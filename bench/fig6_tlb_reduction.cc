// Reproduces Fig. 6: the percentage of address translation requests
// eliminated by partitioning the lookup keys, relative to Fig. 4.
//
// Expected shape (paper Sec. 4.3.2): ~100% at and beyond the 32 GiB TLB
// boundary; tree-based indexes see the improvement a data point earlier.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;

  TablePrinter table({"R (GiB)", "btree", "binary", "harmonia",
                      "radix_spline"});

  std::vector<std::function<std::vector<std::string>()>> cells;
  for (uint64_t r_tuples : PaperRSizes()) {
    cells.push_back([&flags, r_tuples] {
      std::vector<std::string> row{GiBStr(r_tuples)};
      for (index::IndexType type : AllIndexTypes()) {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = type;

        cfg.inlj.mode = core::InljConfig::PartitionMode::kNone;
        auto naive = core::Experiment::Create(cfg);
        if (!naive.ok()) {
          row.push_back("OOM");
          continue;
        }
        const double before = (*naive)->RunInlj().value().translations_per_key();

        cfg.inlj.mode = core::InljConfig::PartitionMode::kFull;
        auto part = core::Experiment::Create(cfg);
        const double after = (*part)->RunInlj().value().translations_per_key();

        if (before <= 1e-9) {
          row.push_back("-");  // nothing to eliminate below the TLB range
        } else {
          row.push_back(
              TablePrinter::Num(100.0 * (before - after) / before, 1) +
              "%");
        }
      }
      return row;
    });
  }
  for (auto& row : core::RunSweep(SweepThreads(flags), cells)) {
    table.AddRow(std::move(row));
  }

  std::printf("Fig. 6 — translation requests eliminated by partitioning "
              "(%% vs Fig. 4)\n");
  PrintTable(table, flags);
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
