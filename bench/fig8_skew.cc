// Reproduces Fig. 8: query throughput under Zipf-skewed lookup keys
// (exponents 0..1.75), windowed INLJ with a 32 MiB window, R = 100 GiB.
//
// Expected shape (paper Sec. 5.2.2): INLJ throughput *increases* for
// exponents above 1.0 (hot keys hit the GPU caches); the hash join
// degenerates — its multi-value insert chains grow quadratically and the
// paper terminated the run after 10 hours (printed as DNF here).

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

constexpr double kDnfSeconds = 3600;  // report DNF beyond one hour

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"zipf", "btree Q/s", "binary Q/s", "harmonia Q/s",
                      "radix_spline Q/s", "hash_join Q/s"});

  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (double zipf : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75}) {
    cells.push_back([&flags, &sink, ci, r_tuples, zipf] {
      std::vector<std::string> row{TablePrinter::Num(zipf, 2)};
      sim::RunResult hj;
      bool have_hj = false;
      uint64_t sub = 0;
      for (index::IndexType type : AllIndexTypes()) {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = type;
        cfg.zipf_exponent = zipf;
        cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
        // 32 MiB window (Sec. 5.2.2).
        cfg.inlj.window_tuples = uint64_t{4} << 20;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) {
          row.push_back("OOM");
          ++sub;
          continue;
        }
        MaybeObserve(sink, **exp);
        const sim::RunResult inlj = (*exp)->RunInlj().value();
        row.push_back(TablePrinter::Num(inlj.qps(), 3));
        EmitRun(sink, ci * 8 + sub++, StartRecord("fig8_skew", cfg), inlj,
                exp->get());
        if (!have_hj) {
          hj = (*exp)->RunHashJoin().value();
          have_hj = true;
          EmitRun(sink, ci * 8 + 7, StartRecord("fig8_skew", cfg), hj,
                  exp->get());
        }
      }
      if (hj.seconds > kDnfSeconds) {
        row.push_back("DNF (" +
                      TablePrinter::Num(hj.seconds / 3600.0, 1) + " h)");
      } else {
        row.push_back(TablePrinter::Num(hj.qps(), 3));
      }
      return row;
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Fig. 8 — Zipf-skewed lookup keys, windowed INLJ (32 MiB "
              "window), R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
