// Multi-node scale-out bench (cluster extension, DESIGN.md §16): the
// sharded engine of fig10 outgrows one machine, so this sweep runs 1-8
// nodes of 4 GPUs each behind the two-level cluster planner, uniform vs
// Zipf 1.75 probes, over both network presets. On top of the fault-free
// grid it replays the operational scenarios the tier exists for:
//   * kill     — a node dies at --fail-at of the baseline makespan; its
//                key range is rerouted to the survivors.
//   * drain    — a node is removed at --drain-at; its cells (and R
//                slices) migrate over the network first.
//   * scaleout — the 2-node cell doubles to 4 nodes mid-run via two
//                membership joins with incremental rebalancing.
// Every scenario's merged match set must be identical to the fault-free
// baseline (zero lost, zero extra — the bench exits nonzero otherwise),
// the 1-node cell must be bit-identical to the equivalent
// dist::ShardScheduler run, and 4 uniform InfiniBand nodes must beat 1
// node by >= 1.5x simulated throughput.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster_scheduler.h"
#include "cluster/metrics.h"
#include "dist/shard_scheduler.h"
#include "obs/robustness.h"

namespace gpujoin::bench {
namespace {

core::ExperimentConfig MultinodeConfig(const Flags& flags, int nodes,
                                       int gpus, double zipf,
                                       uint64_t dev_sample) {
  core::ExperimentConfig cfg;
  // Small enough that eight node engines (each holding its own R copy,
  // as the machines of a real cluster would) fit comfortably.
  cfg.r_tuples = uint64_t{1} << 23;
  cfg.s_tuples = uint64_t{1} << 26;
  cfg.s_sample = dev_sample * static_cast<uint64_t>(nodes) *
                 static_cast<uint64_t>(gpus);
  cfg.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  cfg.zipf_exponent = zipf;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  // Several simulated windows per run, so membership events and node
  // faults (applied at window boundaries) land mid-run in every cell.
  cfg.inlj.window_tuples = std::max<uint64_t>(1024, dev_sample / 4);
  return cfg;
}

cluster::ClusterConfig BaseClusterConfig(const Flags& flags, int nodes,
                                         int gpus,
                                         cluster::NetworkKind network) {
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = nodes;
  ccfg.gpus_per_node = gpus;
  ccfg.network = network;
  ccfg.node_topology = dist::TopologyKind::kNvLink2;
  ccfg.threads = SweepThreads(flags);
  return ccfg;
}

// Set difference sizes after sorting: (in `a` only, in `b` only).
std::pair<uint64_t, uint64_t> MatchDiff(
    const std::vector<core::JoinMatch>& a,
    const std::vector<core::JoinMatch>& b) {
  uint64_t only_a = 0;
  uint64_t only_b = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++only_a;
      ++i;
    } else if (b[j] < a[i]) {
      ++only_b;
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  only_a += a.size() - i;
  only_b += b.size() - j;
  return {only_a, only_b};
}

struct CellResult {
  cluster::ClusterRunResult run;
  std::vector<core::JoinMatch> matches;  // sorted
};

uint64_t TotalShards(const cluster::ClusterRunResult& run) {
  uint64_t total = 0;
  for (const auto& n : run.nodes) {
    total += static_cast<uint64_t>(n.shards);
  }
  return total;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt64("gpus", 4, "GPUs per node", /*min=*/1, /*max=*/8);
  flags.DefineInt64("fail-node", 1,
                    "node the kill scenario targets (clamped to nodes - 1)",
                    /*min=*/0, /*max=*/7);
  flags.DefineDouble("fail-at", 0.4,
                     "node death, as a fraction of the fault-free run's "
                     "simulated makespan",
                     /*min=*/0.0, /*max=*/1.0);
  flags.DefineDouble("drain-at", 0.5,
                     "drain start, as a fraction of the fault-free "
                     "simulated makespan",
                     /*min=*/0.0, /*max=*/1.0);
  flags.DefineDouble("add-at", 0.3,
                     "first membership join of the scale-out scenario, as "
                     "a fraction of the fault-free simulated makespan",
                     /*min=*/0.0, /*max=*/1.0);
  flags.DefineDouble("heartbeat", 0.05,
                     "heartbeat timeout, as a fraction of the fault-free "
                     "simulated makespan",
                     /*min=*/1e-6, /*max=*/1.0);
  flags.DefineDouble("recovery-penalty", 2.0,
                     "slowdown of rerouted probes on surviving nodes",
                     /*min=*/1.0, /*max=*/16.0);
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const int gpus = static_cast<int>(flags.GetInt64("gpus"));
  // Per-GPU-constant simulated sample, as in fig10: --s_sample is the
  // total budget at the largest cell (8 nodes x `gpus`).
  const uint64_t dev_sample = std::max<uint64_t>(
      uint64_t{1} << 12, static_cast<uint64_t>(flags.GetInt64("s_sample")) /
                             (8 * static_cast<uint64_t>(gpus)));

  TablePrinter table({"network", "nodes", "zipf", "scenario", "Q/s",
                      "vs 1 node", "overhead", "rebalances", "moved R",
                      "lost", "extra"});

  uint64_t order = 0;
  bool identical = true;
  bool bit_identical = true;
  // seconds of the 1-node uniform InfiniBand baseline, per network.
  double one_node_uniform_seconds = 0;
  double four_node_uniform_seconds = 0;

  for (cluster::NetworkKind network :
       {cluster::NetworkKind::kInfiniBand, cluster::NetworkKind::kEthernet}) {
    for (int nodes : {1, 2, 4, 8}) {
      for (double zipf : {0.0, 1.75}) {
        const core::ExperimentConfig cfg =
            MultinodeConfig(flags, nodes, gpus, zipf, dev_sample);

        // Fault-free baseline: the reference match set and the makespan
        // every scenario's schedule is placed on.
        CellResult base;
        {
          auto engine =
              cluster::ClusterScheduler::Create(
                  cfg, BaseClusterConfig(flags, nodes, gpus, network))
                  .value();
          if (sink.active()) engine->EnableObservability();
          base.run = engine->RunJoin(&base.matches).value();
          std::sort(base.matches.begin(), base.matches.end());
        }

        const bool infiniband =
            network == cluster::NetworkKind::kInfiniBand;
        if (infiniband && zipf == 0.0 && nodes == 1) {
          one_node_uniform_seconds = base.run.run.seconds;
        }
        if (infiniband && zipf == 0.0 && nodes == 4) {
          four_node_uniform_seconds = base.run.run.seconds;
        }

        // The 1-node cell must be bit-identical to the same workload on
        // a plain dist::ShardScheduler — the cluster tier's delegation
        // guarantee (and the anchor that ties fig15 to fig10).
        if (nodes == 1) {
          dist::ShardConfig dcfg;
          dcfg.num_shards = gpus;
          dcfg.topology = dist::TopologyKind::kNvLink2;
          dcfg.threads = SweepThreads(flags);
          std::vector<core::JoinMatch> dist_matches;
          auto dist_engine = dist::ShardScheduler::Create(cfg, dcfg).value();
          dist::ShardedRunResult dist_run =
              dist_engine->RunJoin(&dist_matches).value();
          std::sort(dist_matches.begin(), dist_matches.end());
          if (dist_run.run.seconds != base.run.run.seconds ||
              !(dist_run.run.counters == base.run.run.counters) ||
              dist_matches != base.matches) {
            bit_identical = false;
            std::fprintf(stderr,
                         "FAIL: 1-node cluster (%s, zipf %.2f) is not "
                         "bit-identical to dist (%.9g s vs %.9g s)\n",
                         cluster::NetworkKindName(network), zipf,
                         base.run.run.seconds, dist_run.run.seconds);
          }
        }

        struct Scenario {
          std::string name;
          cluster::ClusterConfig ccfg;
        };
        std::vector<Scenario> scenarios;
        scenarios.push_back(
            {"none", BaseClusterConfig(flags, nodes, gpus, network)});

        if (nodes >= 2) {
          Scenario kill{"kill",
                        BaseClusterConfig(flags, nodes, gpus, network)};
          sim::DeviceFaultEvent event;
          event.cls = sim::DeviceFaultClass::kShardCrash;
          event.shard = std::min(
              static_cast<int>(flags.GetInt64("fail-node")), nodes - 1);
          event.at_seconds =
              flags.GetDouble("fail-at") * base.run.sim_makespan;
          event.duration_seconds = 0;  // terminal: never comes back
          kill.ccfg.failover.node_faults.events.push_back(event);
          kill.ccfg.failover.heartbeat_timeout =
              flags.GetDouble("heartbeat") * base.run.sim_makespan;
          kill.ccfg.failover.recovery_penalty =
              flags.GetDouble("recovery-penalty");
          scenarios.push_back(std::move(kill));

          Scenario drain{"drain",
                         BaseClusterConfig(flags, nodes, gpus, network)};
          drain.ccfg.membership.push_back(
              {cluster::MembershipEvent::Kind::kDrainNode, nodes - 1,
               flags.GetDouble("drain-at") * base.run.sim_makespan});
          scenarios.push_back(std::move(drain));
        }
        if (nodes == 2) {
          // The elasticity headline: scale 2 -> 4 nodes mid-run.
          Scenario grow{"scaleout",
                        BaseClusterConfig(flags, nodes, gpus, network)};
          const double at0 =
              flags.GetDouble("add-at") * base.run.sim_makespan;
          grow.ccfg.membership.push_back(
              {cluster::MembershipEvent::Kind::kAddNode, -1, at0});
          grow.ccfg.membership.push_back(
              {cluster::MembershipEvent::Kind::kAddNode, -1,
               at0 + 0.1 * base.run.sim_makespan});
          scenarios.push_back(std::move(grow));
        }

        for (const Scenario& sc : scenarios) {
          CellResult cell;
          if (sc.name == "none") {
            cell = base;  // reuse: the baseline already ran
          } else {
            auto engine =
                cluster::ClusterScheduler::Create(cfg, sc.ccfg).value();
            if (sink.active()) engine->EnableObservability();
            cell.run = engine->RunJoin(&cell.matches).value();
            std::sort(cell.matches.begin(), cell.matches.end());
          }

          const auto [lost, extra] = MatchDiff(base.matches, cell.matches);
          if (lost != 0 || extra != 0) {
            identical = false;
            std::fprintf(stderr,
                         "FAIL: scenario '%s' (%s, %d nodes, zipf %.2f) "
                         "lost %llu / duplicated %llu matches\n",
                         sc.name.c_str(),
                         cluster::NetworkKindName(network), nodes, zipf,
                         static_cast<unsigned long long>(lost),
                         static_cast<unsigned long long>(extra));
          }
          const double overhead =
              base.run.run.seconds > 0
                  ? cell.run.run.seconds / base.run.run.seconds
                  : 0;
          const double vs_one =
              infiniband && zipf == 0.0 && one_node_uniform_seconds > 0 &&
                      sc.name == "none"
                  ? one_node_uniform_seconds / cell.run.run.seconds
                  : 0;

          if (sink.active()) {
            obs::RecordBuilder rec = StartRecord("fig15_multinode", cfg);
            rec.AddParam("scenario", sc.name);
            rec.AddParam("network",
                         cluster::NetworkKindName(network));
            rec.AddParam("num_nodes", nodes);
            rec.AddParam("gpus_per_node", gpus);
            rec.AddParam("total_shards", TotalShards(cell.run));
            rec.AddParam("sim_makespan", cell.run.sim_makespan);
            rec.AddParam("matches_lost", lost);
            rec.AddParam("matches_extra", extra);
            rec.AddParam("baseline_seconds", base.run.run.seconds);
            rec.AddParam("overhead", overhead);
            rec.AddParam("merge_seconds", cell.run.merge_seconds);
            rec.AddParam("steal_events", cell.run.steal_events);
            rec.AddParam("rebalance_events", cell.run.rebalance_events);
            rec.AddParam("moved_r_tuples", cell.run.moved_r_tuples);
            rec.AddParam("migration_seconds", cell.run.migration_seconds);
            rec.SetRun(cell.run.run);
            rec.AddSection("nodes", cluster::NodesJson(cell.run));
            rec.AddSection("network_links",
                           cluster::NetworkLinksJson(cell.run));
            if (!cell.run.robustness.failovers.empty()) {
              rec.AddSection("robustness",
                             obs::RobustnessJson(cell.run.robustness));
            }
            sink.Add(order++, rec.ToJsonLine());
          }

          table.AddRow(
              {cluster::NetworkKindName(network), std::to_string(nodes),
               TablePrinter::Num(zipf, 2), sc.name,
               TablePrinter::Num(cell.run.run.qps(), 3),
               vs_one > 0 ? TablePrinter::Num(vs_one, 2) + "x" : "-",
               TablePrinter::Num(overhead, 3) + "x",
               std::to_string(cell.run.rebalance_events),
               std::to_string(cell.run.moved_r_tuples),
               std::to_string(lost), std::to_string(extra)});
        }
      }
    }
  }

  std::printf(
      "Fig. 15 — multi-node scale-out: 1-8 nodes x %d GPUs behind the "
      "two-level cluster planner,\nwindowed INLJ (RadixSpline), uniform "
      "vs Zipf 1.75 probes, InfiniBand vs 25 GbE.\nScenarios: kill node "
      "at %.0f%% of the fault-free makespan, drain a node at %.0f%%, "
      "scale 2 -> 4 nodes from %.0f%%.\n",
      gpus, flags.GetDouble("fail-at") * 100.0,
      flags.GetDouble("drain-at") * 100.0,
      flags.GetDouble("add-at") * 100.0);
  PrintTable(table, flags);
  std::printf(
      "\n'lost'/'extra' compare each scenario's merged match set against "
      "the fault-free baseline\n(both must be 0: rerouting, draining and "
      "joining only change where work is charged,\nnever which probes "
      "execute against which R slices).\n");

  int rc = 0;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: a scenario lost or duplicated matches vs the "
                 "fault-free baseline\n");
    rc = 1;
  }
  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: the 1-node cluster cell is not bit-identical to "
                 "dist::ShardScheduler\n");
    rc = 1;
  }
  if (one_node_uniform_seconds > 0 && four_node_uniform_seconds > 0) {
    const double speedup =
        one_node_uniform_seconds / four_node_uniform_seconds;
    std::printf("4-node uniform InfiniBand speedup vs 1 node: %.2fx\n",
                speedup);
    if (speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: 4 uniform nodes give %.2fx < 1.5x aggregate "
                   "speedup over 1 node\n",
                   speedup);
      rc = 1;
    }
  }
  if (!sink.Flush()) return 1;
  return rc;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
