// Ablation: Harmonia's cooperative sub-warp traversal (paper Sec. 2.2 /
// 3.3.1). Sweeps the sub-warp width from 1 (each lane traverses alone,
// like a plain per-thread B+tree) to 32 (the whole warp cooperates on one
// key at a time) on the windowed INLJ.
//
// Run on the *unpartitioned* INLJ beyond the TLB range, where the width
// matters most: narrow sub-warps keep 32 probe keys in flight per warp
// (32 divergent traversal paths thrash the shared TLB), while wide
// sub-warps process few keys at a time and amortize translations — the
// effect the paper credits for Harmonia's low Fig. 4 counts. Node
// traffic itself is width-independent (every node line is read once per
// visited node).

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"sub-warp width", "Q/s", "host random read",
                      "translations/key"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (int width : {1, 2, 4, 8, 16, 32}) {
    cells.push_back([&flags, &sink, ci, r_tuples, width] {
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.index_type = index::IndexType::kHarmonia;
      cfg.harmonia.sub_warp_width = width;
      cfg.inlj.mode = core::InljConfig::PartitionMode::kNone;
      auto exp = core::Experiment::Create(cfg);
      if (!exp.ok()) return std::vector<std::string>{};
      MaybeObserve(sink, **exp);
      sim::RunResult res = (*exp)->RunInlj().value();
      obs::RecordBuilder rec = StartRecord("ablation_subwarp", cfg);
      rec.AddParam("sub_warp_width", width);
      EmitRun(sink, ci, std::move(rec), res, exp->get());
      return std::vector<std::string>{
          std::to_string(width), TablePrinter::Num(res.qps(), 3),
          FormatBytes(
              static_cast<double>(res.counters.host_random_read_bytes)),
          TablePrinter::Num(res.translations_per_key(), 3)};
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Ablation — Harmonia sub-warp width, unpartitioned INLJ, "
              "R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
