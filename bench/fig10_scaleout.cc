// Scale-out extension (paper Sec. 7 outlook): the windowed INLJ sharded
// over 1-8 simulated GPUs, uniform vs Zipf-skewed probes, NVLink 2.0
// (dedicated host links) vs PCI-e 4.0 (one shared root complex). Work
// stealing runs the skewed configs twice (on/off) to price rebalancing.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/metrics.h"
#include "dist/shard_scheduler.h"
#include "plan/plan_space.h"

namespace gpujoin::bench {
namespace {

struct Point {
  dist::TopologyKind topology;
  int shards;
};

// One sharded run; fills the JSON record (with the per-shard and
// per-link sections) when the sink is active.
dist::ShardedRunResult RunPoint(const Flags& flags, MetricsSink& sink,
                                uint64_t order_key, const Point& p,
                                double zipf, bool steal, uint64_t dev_sample,
                                plan::PlannerMode planner) {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 27;  // 1 GiB of R keys per the paper axis
  cfg.s_tuples = uint64_t{1} << 26;
  // The simulated sample scales with the device count so every device
  // simulates the same window size: per-tuple simulated cost falls as
  // windows grow (warmup amortizes), and holding the per-device window
  // constant keeps the cross-N comparison about parallelism, exactly as
  // full-scale devices all run full window_tuples windows.
  cfg.s_sample = dev_sample * static_cast<uint64_t>(p.shards);
  cfg.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  cfg.zipf_exponent = zipf;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;

  dist::ShardConfig dcfg;
  dcfg.num_shards = p.shards;
  dcfg.topology = p.topology;
  dcfg.steal.enabled = steal;
  dcfg.threads = SweepThreads(flags);
  dcfg.planner.mode = planner;
  dcfg.planner.seed = cfg.seed * 1000 + order_key;

  auto engine = dist::ShardScheduler::Create(cfg, dcfg).value();
  if (sink.active()) engine->EnableObservability();
  dist::ShardedRunResult result = engine->RunJoin().value();

  if (sink.active()) {
    obs::RecordBuilder rec = StartRecord("fig10_scaleout", cfg);
    rec.AddParam("topology", dist::TopologyKindName(p.topology));
    rec.AddParam("num_shards", p.shards);
    rec.AddParam("steal", steal);
    rec.AddParam("planner", plan::PlannerModeName(planner));
    rec.AddParam("steal_events", result.steal_events);
    rec.AddParam("merge_seconds", result.merge_seconds);
    rec.SetRun(result.run);
    rec.AddSection("shards", dist::ShardsJson(result));
    rec.AddSection("links", dist::LinksJson(result));
    sink.Add(order_key, rec.ToJsonLine());
  }
  return result;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("planner", "static",
                     "static (configured windowed plan on every chunk) | "
                     "adaptive (per-chunk {mode, window} routing)");
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  const std::string planner_name = flags.GetString("planner");
  auto planner_mode = plan::ParsePlannerMode(planner_name);
  if (!planner_mode.ok()) {
    std::fprintf(stderr, "%s\n", planner_mode.status().ToString().c_str());
    return 1;
  }
  if (*planner_mode == plan::PlannerMode::kOracle) {
    std::fprintf(stderr,
                 "--planner oracle is single-device only; use the "
                 "fig11_adaptive bench instead\n");
    return 1;
  }
  MetricsSink sink(flags);
  // --s_sample is the total simulated budget at 8 devices; each device
  // gets an equal share regardless of the row's device count.
  const uint64_t dev_sample = std::max<uint64_t>(
      uint64_t{1} << 12,
      static_cast<uint64_t>(flags.GetInt64("s_sample")) / 8);

  TablePrinter table({"topology", "GPUs", "uniform Q/s", "speedup",
                      "zipf1.75 Q/s", "zipf nosteal Q/s", "steal gain",
                      "steals"});

  uint64_t order = 0;
  for (dist::TopologyKind topo :
       {dist::TopologyKind::kNvLink2, dist::TopologyKind::kPciE4}) {
    double base_qps = 0;
    for (int shards : {1, 2, 4, 8}) {
      const Point p{topo, shards};
      const auto uniform = RunPoint(flags, sink, order++, p, 0.0, true,
                                    dev_sample, *planner_mode);
      const auto skew_steal = RunPoint(flags, sink, order++, p, 1.75, true,
                                       dev_sample, *planner_mode);
      const auto skew_nosteal = RunPoint(flags, sink, order++, p, 1.75, false,
                                         dev_sample, *planner_mode);
      const double u = uniform.run.qps();
      const double zs = skew_steal.run.qps();
      const double zn = skew_nosteal.run.qps();
      if (shards == 1) base_qps = u;
      // What rebalancing the skewed windows buys over running them
      // where they were routed. (Note the paper-scale windows make Zipf
      // probes outright *faster* than uniform — hot keys live in cache,
      // exactly as fig8 shows for one device — so the skew penalty here
      // is routed-load imbalance, not per-tuple cost.)
      std::string steal_gain =
          zn > 0 ? TablePrinter::Num(100.0 * (zs - zn) / zn, 0) + "%"
                 : std::string("n/a");
      table.AddRow({dist::TopologyKindName(topo), std::to_string(shards),
                    TablePrinter::Num(u, 3),
                    TablePrinter::Num(base_qps > 0 ? u / base_qps : 0, 2) +
                        "x",
                    TablePrinter::Num(zs, 3), TablePrinter::Num(zn, 3),
                    steal_gain,
                    std::to_string(skew_steal.steal_events)});
    }
  }

  std::printf("Fig. 10 — scale-out: windowed INLJ (RadixSpline) sharded "
              "over N simulated GPUs,\nR = 1 GiB, |S| = 2^26, uniform vs "
              "Zipf 1.75 probes\n");
  PrintTable(table, flags);
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
