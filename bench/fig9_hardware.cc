// Reproduces Fig. 9: windowed-partitioning INLJ (RadixSpline and
// Harmonia, the two fastest variants) vs the hash join on two platforms —
// V100 + NVLink 2.0 and A100 + PCI-e 4.0 — scaling R, plus the derived
// INLJ/hash-join crossover points.
//
// Expected shape (paper Sec. 5.2.3): the hash join is ~1.7x faster on the
// A100 (faster GPU memory); the crossover moves from ~6.2 GiB (8.0%
// selectivity) on NVLink to ~13.9 GiB (3.6%) on PCI-e, because PCI-e
// handles cacheline gathers worse.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

struct Series {
  std::vector<double> r_gib;
  std::vector<double> inlj_qps;   // best INLJ (RadixSpline)
  std::vector<double> hj_qps;
};

// Linear interpolation of the R size where the two Q/s curves cross.
double CrossoverGiB(const Series& s) {
  for (size_t i = 1; i < s.r_gib.size(); ++i) {
    const double d0 = s.inlj_qps[i - 1] - s.hj_qps[i - 1];
    const double d1 = s.inlj_qps[i] - s.hj_qps[i];
    if (d0 < 0 && d1 >= 0) {
      const double t = d0 / (d0 - d1);
      return s.r_gib[i - 1] + t * (s.r_gib[i] - s.r_gib[i - 1]);
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const std::vector<sim::PlatformSpec> platforms = {sim::V100NvLink2(),
                                                    sim::A100PciE4()};

  uint64_t pi = 0;
  for (const auto& platform : platforms) {
    TablePrinter table({"R (GiB)", "selectivity", "radix_spline Q/s",
                        "harmonia Q/s", "hash_join Q/s"});

    struct Cell {
      std::vector<std::string> row;
      double inlj_qps = 0;
      double hj_qps = 0;
    };
    std::vector<std::function<Cell()>> cells;
    uint64_t ci = 0;
    for (uint64_t r_tuples : PaperRSizes()) {
      cells.push_back([&flags, &sink, &platform, pi, ci, r_tuples] {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.platform = platform;
        cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
        // 32 MiB window (Sec. 5.2.3).
        cfg.inlj.window_tuples = uint64_t{4} << 20;

        Cell cell;
        cell.row.push_back(GiBStr(r_tuples));
        const double sel = 100.0 * static_cast<double>(cfg.s_tuples) /
                           static_cast<double>(r_tuples);
        cell.row.push_back(TablePrinter::Num(sel, 2) + "%");

        const uint64_t base = (pi * 100 + ci) * 8;
        uint64_t sub = 0;
        for (index::IndexType type : {index::IndexType::kRadixSpline,
                                      index::IndexType::kHarmonia}) {
          cfg.index_type = type;
          auto exp = core::Experiment::Create(cfg);
          if (!exp.ok()) {
            cell.row.push_back("OOM");
            ++sub;
            continue;
          }
          MaybeObserve(sink, **exp);
          const sim::RunResult inlj = (*exp)->RunInlj().value();
          cell.row.push_back(TablePrinter::Num(inlj.qps(), 3));
          EmitRun(sink, base + sub++, StartRecord("fig9_hardware", cfg),
                  inlj, exp->get());
          if (type == index::IndexType::kRadixSpline) {
            cell.inlj_qps = inlj.qps();
            const sim::RunResult hj = (*exp)->RunHashJoin().value();
            cell.hj_qps = hj.qps();
            EmitRun(sink, base + 7, StartRecord("fig9_hardware", cfg), hj,
                    exp->get());
          }
        }
        cell.row.push_back(TablePrinter::Num(cell.hj_qps, 3));
        return cell;
      });
      ++ci;
    }

    Series series;
    std::vector<uint64_t> r_sizes = PaperRSizes();
    std::vector<Cell> results = core::RunSweep(SweepThreads(flags), cells);
    for (size_t i = 0; i < results.size(); ++i) {
      table.AddRow(std::move(results[i].row));
      series.r_gib.push_back(static_cast<double>(r_sizes[i]) * 8 /
                             static_cast<double>(kGiB));
      series.inlj_qps.push_back(results[i].inlj_qps);
      series.hj_qps.push_back(results[i].hj_qps);
    }

    std::printf("Fig. 9 — %s\n", platform.name.c_str());
    PrintTable(table, flags);
    const double cross = CrossoverGiB(series);
    if (cross > 0) {
      std::printf("INLJ (RadixSpline) overtakes the hash join at R ~ %.1f "
                  "GiB (selectivity %.1f%%)\n\n",
                  cross, 100.0 * 512.0 / 1024.0 / cross);
    } else {
      std::printf("no crossover in the measured range\n\n");
    }
    ++pi;
  }
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
