// Reproduces Fig. 7: impact of the tumbling-window size on windowed-
// partitioning INLJ throughput, with R fixed at 100 GiB.
//
// Expected shape (paper Sec. 5.2.1): throughput stays within ~2x across
// window sizes 2^18..2^26 tuples (2-512 MiB); small windows (4-52 MiB)
// are best for the RadixSpline; binary search and the B+tree vary little.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  // 100 GiB of 8-byte keys.
  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"window (tuples)", "window (MiB)", "btree Q/s",
                      "binary Q/s", "harmonia Q/s", "radix_spline Q/s"});

  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (int log_w = 18; log_w <= 26; ++log_w) {
    cells.push_back([&flags, &sink, ci, r_tuples, log_w] {
      const uint64_t window = uint64_t{1} << log_w;
      std::vector<std::string> row{
          "2^" + std::to_string(log_w),
          TablePrinter::Num(static_cast<double>(window * 8) / kMiB, 0)};
      uint64_t sub = 0;
      for (index::IndexType type : AllIndexTypes()) {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = type;
        cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
        cfg.inlj.window_tuples = window;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) {
          row.push_back("OOM");
          ++sub;
          continue;
        }
        MaybeObserve(sink, **exp);
        const sim::RunResult result = (*exp)->RunInlj().value();
        row.push_back(TablePrinter::Num(result.qps(), 3));
        obs::RecordBuilder rec = StartRecord("fig7_window_size", cfg);
        rec.AddParam("window_tuples", cfg.inlj.window_tuples);
        EmitRun(sink, ci * 8 + sub++, std::move(rec), result, exp->get());
      }
      return row;
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Fig. 7 — windowed partitioning: window size vs Q/s, "
              "R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
