// Reproduces Fig. 5: query throughput when the lookup keys are radix
// partitioned (materialized, 2048 partitions) before the INLJ.
//
// Expected shape (paper Sec. 4.3.1): the 32 GiB cliff disappears; all
// INLJs decline only gently with R; at 111 GiB the INLJs reach roughly
// 0.6 / 0.7 / 1.0 / 1.9 Q/s (B+tree / binary search / Harmonia /
// RadixSpline) vs ~0.2 Q/s for the hash join — up to 10x.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  TablePrinter table({"R (GiB)", "selectivity", "btree Q/s", "binary Q/s",
                      "harmonia Q/s", "radix_spline Q/s", "hash_join Q/s"});

  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (uint64_t r_tuples : PaperRSizes()) {
    cells.push_back([&flags, &sink, ci, r_tuples] {
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.inlj.mode = core::InljConfig::PartitionMode::kFull;

      std::vector<std::string> row;
      row.push_back(GiBStr(r_tuples));
      row.push_back(TablePrinter::Num(
          100.0 * static_cast<double>(cfg.s_tuples) /
              static_cast<double>(r_tuples),
          2) + "%");

      sim::RunResult hj;
      bool have_hj = false;
      uint64_t sub = 0;
      for (index::IndexType type : AllIndexTypes()) {
        cfg.index_type = type;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) {
          row.push_back("OOM");
          ++sub;
          continue;
        }
        MaybeObserve(sink, **exp);
        const sim::RunResult inlj = (*exp)->RunInlj().value();
        row.push_back(TablePrinter::Num(inlj.qps(), 3));
        EmitRun(sink, ci * 8 + sub++,
                StartRecord("fig5_inlj_partitioned", cfg), inlj, exp->get());
        if (!have_hj) {
          hj = (*exp)->RunHashJoin().value();
          have_hj = true;
          EmitRun(sink, ci * 8 + 7,
                  StartRecord("fig5_inlj_partitioned", cfg), hj, exp->get());
        }
      }
      row.push_back(TablePrinter::Num(hj.qps(), 3));
      return row;
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Fig. 5 — INLJ with materialized key partitioning vs hash "
              "join, V100 + NVLink 2.0",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
