#ifndef GPUJOIN_BENCH_BENCH_COMMON_H_
#define GPUJOIN_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"
#include "obs/emitter.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace gpujoin::bench {

// The paper's R-axis (Sec. 3.2): 2^26 .. 2^33.9 tuples (0.5 - 120 GiB),
// with the 111 GiB point the text quotes numbers for.
inline std::vector<uint64_t> PaperRSizes() {
  return {
      uint64_t{1} << 26,          // 0.5 GiB
      uint64_t{1} << 27,          // 1 GiB
      uint64_t{1} << 28,          // 2 GiB
      uint64_t{1} << 29,          // 4 GiB
      uint64_t{1} << 30,          // 8 GiB
      uint64_t{1} << 31,          // 16 GiB
      uint64_t{1} << 32,          // 32 GiB
      uint64_t{3} << 31,          // 48 GiB
      uint64_t{1} << 33,          // 64 GiB
      uint64_t{5} << 31,          // 80 GiB
      uint64_t{14898093260},      // 111 GiB
      uint64_t{16106127360},      // 120 GiB
  };
}

inline std::string GiBStr(uint64_t tuples) {
  return TablePrinter::Num(
      static_cast<double>(tuples) * 8.0 / static_cast<double>(kGiB), 1);
}

inline const std::vector<index::IndexType>& AllIndexTypes() {
  static const std::vector<index::IndexType> kTypes = {
      index::IndexType::kBTree,
      index::IndexType::kBinarySearch,
      index::IndexType::kHarmonia,
      index::IndexType::kRadixSpline,
  };
  return kTypes;
}

// Common flags for the figure benches. Returns false if the process
// should exit (help requested / parse error).
inline bool ParseBenchFlags(Flags& flags, int argc, char** argv) {
  // Samples below one warp (32 tuples) can't fill a single simulated
  // warp, and negative thread counts are meaningless — reject both at
  // parse time instead of aborting deep inside the simulator.
  flags.DefineInt64("s_sample", int64_t{1} << 19,
                    "simulated probe sample size (tuples)",
                    /*min=*/32, /*max=*/int64_t{1} << 40);
  flags.DefineBool("csv", false, "emit CSV instead of an aligned table");
  flags.DefineString("json", "",
                     "also emit one JSON record per sweep point (JSON "
                     "Lines) to this path; see scripts/validate_metrics.py");
  flags.DefineInt64("seed", 1, "workload seed");
  flags.DefineInt64("threads", 0,
                    "sweep worker threads (0 = hardware concurrency; "
                    "results are identical for any value)",
                    /*min=*/0, /*max=*/4096);
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    // kNotFound is --help: the usage text was printed, exit cleanly via
    // the caller's `return 0`. Anything else (unknown flag, unparsable
    // or out-of-range value) must fail the invocation, not masquerade
    // as a successful zero-row run — scripts diff and validate bench
    // output, and a silently empty sweep would pass.
    if (s.code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(2);
    }
    return false;
  }
  return true;
}

// Resolved --threads value for core::SweepRunner (which treats <= 0 as
// "use the hardware concurrency").
inline int SweepThreads(const Flags& flags) {
  return static_cast<int>(flags.GetInt64("threads"));
}

inline void PrintTable(const TablePrinter& table, const Flags& flags) {
  if (flags.GetBool("csv")) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
}

// Builds the experiment config shared by the paper's experiments
// (Sec. 3.2 defaults).
inline core::ExperimentConfig PaperConfig(const Flags& flags,
                                          uint64_t r_tuples) {
  core::ExperimentConfig cfg;
  cfg.r_tuples = r_tuples;
  cfg.s_tuples = uint64_t{1} << 26;
  cfg.s_sample = static_cast<uint64_t>(flags.GetInt64("s_sample"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  return cfg;
}

// Collects the JSON records of one bench invocation (--json <path>) and
// writes them as JSON Lines. Sweep cells run on worker threads in
// arbitrary order, so Add() takes an order key (the cell's sweep index)
// and Flush() sorts before writing — output is deterministic for any
// --threads value.
class MetricsSink {
 public:
  explicit MetricsSink(const Flags& flags) : path_(flags.GetString("json")) {}

  bool active() const { return !path_.empty(); }

  void Add(uint64_t order_key, std::string json_line) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.emplace_back(order_key, std::move(json_line));
  }

  // Sorts by order key and writes one record per line. No-op (true) when
  // inactive; false with a message on stderr if the file can't be written.
  bool Flush() {
    if (!active()) return true;
    std::sort(records_.begin(), records_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --json file: %s\n", path_.c_str());
      return false;
    }
    for (const auto& [key, line] : records_) {
      std::fprintf(f, "%s\n", line.c_str());
    }
    std::fclose(f);
    return true;
  }

 private:
  std::string path_;
  std::mutex mu_;
  std::vector<std::pair<uint64_t, std::string>> records_;
};

// Attaches the TraceRecorder + PhaseTimeline pair to `exp` when JSON
// emission is on. Table-only invocations stay unobserved — counters are
// bit-identical either way, this just skips the bookkeeping.
inline void MaybeObserve(const MetricsSink& sink, core::Experiment& exp) {
  if (sink.active()) exp.EnableObservability();
}

// Starts the JSON record for one sweep point: bench name, platform and
// the workload parameters every experiment shares. The caller adds its
// sweep-specific params on top, then finishes with EmitRun().
inline obs::RecordBuilder StartRecord(std::string_view bench,
                                      const core::ExperimentConfig& cfg) {
  obs::RecordBuilder rec{std::string(bench)};
  rec.SetPlatform(cfg.platform);
  rec.AddParam("r_tuples", cfg.r_tuples);
  rec.AddParam("s_tuples", cfg.s_tuples);
  rec.AddParam("s_sample", cfg.s_sample);
  rec.AddParam("zipf_exponent", cfg.zipf_exponent);
  rec.AddParam("seed", cfg.seed);
  rec.AddParam("index_type", index::IndexTypeName(cfg.index_type));
  rec.AddParam("partition_mode", core::PartitionModeName(cfg.inlj.mode));
  return rec;
}

// Completes a record with the run outcome (and the trace of an observed
// experiment) and queues it on the sink. No-op when the sink is inactive.
inline void EmitRun(MetricsSink& sink, uint64_t order_key,
                    obs::RecordBuilder&& rec, const sim::RunResult& result,
                    core::Experiment* exp = nullptr) {
  if (!sink.active()) return;
  rec.SetRun(result);
  if (exp != nullptr && exp->trace_recorder() != nullptr) {
    rec.SetTrace(*exp->trace_recorder());
  }
  sink.Add(order_key, rec.ToJsonLine());
}

// Row-producing sweep cells, the shape every figure bench uses: one
// cell per grid point, returning one table row (or {} to decline).
using SweepCells = std::vector<std::function<std::vector<std::string>()>>;

// Runs the cells on --threads workers and appends every non-empty row
// to `table`, in cell order.
inline void SweepInto(const Flags& flags, const SweepCells& cells,
                      TablePrinter& table) {
  for (auto& row : core::RunSweep(SweepThreads(flags), cells)) {
    if (!row.empty()) table.AddRow(std::move(row));
  }
}

// The shared bench epilogue: sweep into `table`, print it under `title`
// (honoring --csv) and flush the JSON sink. Returns main's exit code.
inline int FinishBench(const Flags& flags, const SweepCells& cells,
                       TablePrinter& table, const std::string& title,
                       MetricsSink& sink) {
  SweepInto(flags, cells, table);
  std::printf("%s\n", title.c_str());
  PrintTable(table, flags);
  return sink.Flush() ? 0 : 1;
}

}  // namespace gpujoin::bench

#endif  // GPUJOIN_BENCH_BENCH_COMMON_H_
