// HTAP ingest bench (DESIGN.md §14): run the serving loop with a live
// write stream absorbed by per-shard delta indexes while background
// merges rebuild the static side and swap epochs shard by shard. Three
// mixes — read-mostly, balanced 50/50, and an on/off ingest burst — each
// at 1 and 4 GPUs. Every cell verifies two invariants inline:
//
//  * zero drops: every admitted request completes across all epoch
//    swaps (a latency sample per admitted request, nothing shed);
//  * oracle match: the coordinator's reconciled reads equal a
//    rebuilt-from-scratch oracle (the applied-op log replayed over the
//    base column in admission order).
//
// Any violation fails the invocation with exit 1.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/shard_scheduler.h"
#include "obs/ingest.h"
#include "serve/ingest.h"
#include "serve/server.h"
#include "sim/cost_model.h"

namespace gpujoin::bench {
namespace {

using workload::Key;

struct Mix {
  const char* name;
  double write_ratio;  // writes / (reads + writes), per probe tuple
  serve::ArrivalModel ops_model;
};

core::ExperimentConfig HtapConfig(const Flags& flags, int shards,
                                  uint64_t dev_sample) {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 27;  // 1 GiB of R keys, as in fig10/fig12
  cfg.s_tuples = uint64_t{1} << 26;
  cfg.s_sample = dev_sample * static_cast<uint64_t>(shards);
  cfg.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  return cfg;
}

dist::ShardConfig HtapShardConfig(const Flags& flags, int shards) {
  dist::ShardConfig dcfg;
  dcfg.num_shards = shards;
  dcfg.topology = dist::TopologyKind::kNvLink2;
  dcfg.threads = SweepThreads(flags);
  return dcfg;
}

std::string Ms(double seconds) {
  return TablePrinter::Num(seconds * 1e3, 3);
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineDouble("ingest-rate", 0.0,
                     "write ops per simulated second (0 = derive from "
                     "--write-ratio and the calibrated request rate)",
                     /*min=*/0.0, /*max=*/1e12);
  flags.DefineDouble("write-ratio", -1.0,
                     "writes / (reads + writes) per probe tuple; < 0 uses "
                     "each mix's default (0.05 / 0.5 / 0.5)",
                     /*min=*/-1.0, /*max=*/0.95);
  flags.DefineInt64("merge-threshold", 4096,
                    "active-delta entries per shard that trigger a "
                    "background merge",
                    /*min=*/1, /*max=*/int64_t{1} << 30);
  flags.DefineInt64("requests", 2000, "serving requests per cell",
                    /*min=*/1, /*max=*/int64_t{1} << 32);
  flags.DefineInt64("tuples_per_request", 512,
                    "probe tuples carried by each request",
                    /*min=*/1, /*max=*/int64_t{1} << 24);
  flags.DefineDouble("load", 0.7,
                     "offered read load as a fraction of the calibrated "
                     "service capacity",
                     /*min=*/0.01, /*max=*/4.0);
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  // Per-device-constant simulated sample, as in fig10/fig12: --s_sample
  // is the total budget at 8 devices.
  const uint64_t dev_sample = std::max<uint64_t>(
      uint64_t{1} << 12,
      static_cast<uint64_t>(flags.GetInt64("s_sample")) / 8);
  const uint64_t tpr =
      static_cast<uint64_t>(flags.GetInt64("tuples_per_request"));
  const uint64_t requests =
      static_cast<uint64_t>(flags.GetInt64("requests"));

  const std::vector<Mix> mixes = {
      {"read_mostly", 0.05, serve::ArrivalModel::kPoisson},
      {"balanced", 0.50, serve::ArrivalModel::kPoisson},
      {"ingest_burst", 0.50, serve::ArrivalModel::kOnOff},
  };

  TablePrinter table({"mix", "GPUs", "wr", "req/s", "ops/s", "applied",
                      "opshed", "merges", "swaps", "stale p99 ms",
                      "p50 ms", "p99 ms", "oracle"});

  uint64_t order = 0;
  bool all_ok = true;
  for (const Mix& mix : mixes) {
    for (int shards : {1, 4}) {
      const core::ExperimentConfig cfg =
          HtapConfig(flags, shards, dev_sample);
      const double write_ratio = flags.GetDouble("write-ratio") >= 0
                                     ? flags.GetDouble("write-ratio")
                                     : mix.write_ratio;

      // Calibrate the read capacity on a throwaway engine so the serving
      // run starts from pristine shard cursors. The batch is clamped to
      // the probe sample — a slice can never exceed the cyclic cursor.
      const uint64_t batch_tuples =
          std::min(uint64_t{1} << 15, cfg.s_sample);
      double capacity_tps = 0;
      {
        auto cal =
            dist::ShardScheduler::Create(cfg, HtapShardConfig(flags, shards));
        if (!cal.ok()) {
          std::fprintf(stderr, "%s\n", cal.status().ToString().c_str());
          return 1;
        }
        auto slice = (*cal)->ServiceSlice(0, batch_tuples, 0);
        if (!slice.ok()) {
          std::fprintf(stderr, "%s\n", slice.status().ToString().c_str());
          return 1;
        }
        capacity_tps = static_cast<double>(batch_tuples) / *slice;
      }
      const double request_rate = flags.GetDouble("load") * capacity_tps /
                                  static_cast<double>(tpr);
      const double horizon =
          static_cast<double>(requests) / request_rate;

      serve::ServeConfig sc;
      sc.arrival.model = serve::ArrivalModel::kPoisson;
      sc.arrival.rate = request_rate;
      sc.arrival.seed = cfg.seed * 1000 + order;
      sc.batch.batch_tuples = batch_tuples;
      sc.batch.min_batch_tuples = batch_tuples;
      sc.batch.adaptive = false;
      sc.requests = requests;
      sc.tuples_per_request = tpr;
      sc.max_backlog_tuples = 0;  // admit everything: drops must be zero

      // The write stream: --ingest-rate wins; otherwise size it so
      // write_ratio of all touched tuples are writes, with reads counted
      // per warp of probe tuples (one delta consult per warp).
      const double read_op_rate =
          request_rate * static_cast<double>(tpr) / sim::Warp::kWidth;
      serve::IngestCoordinator::Config icfg;
      icfg.ops.model = mix.ops_model;
      icfg.ops.rate = flags.GetDouble("ingest-rate") > 0
                          ? flags.GetDouble("ingest-rate")
                          : write_ratio / (1.0 - write_ratio) * read_op_rate;
      icfg.ops.burst_factor = 8.0;
      icfg.ops.mean_on_seconds = horizon / 8.0;
      icfg.ops.seed = cfg.seed * 77 + order;
      icfg.seed = cfg.seed * 131 + order;
      icfg.merge_threshold =
          static_cast<uint64_t>(flags.GetInt64("merge-threshold"));
      icfg.record_log = true;  // feeds the oracle differential below
      // A merge rebuilds the shard's static side: its R slice streamed at
      // simulated-sample scale (the same extrapolation every serving time
      // in this run uses), so epoch swaps land inside the run horizon.
      icfg.hybrid.merge_scan_bytes =
          cfg.r_tuples * 8 / static_cast<uint64_t>(shards) /
          (cfg.s_tuples / cfg.s_sample);

      auto engine =
          dist::ShardScheduler::Create(cfg, HtapShardConfig(flags, shards));
      if (!engine.ok()) {
        std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
        return 1;
      }
      mem::AddressSpace ingest_space;
      const sim::CostModel cost(cfg.platform);
      const dist::ShardPlan* plan = &(*engine)->plan();
      auto coord = serve::IngestCoordinator::Create(
          icfg, &ingest_space, &(*engine)->base_r(), &cost, shards,
          [plan](Key k) { return plan->OwnerOf(k); });
      if (!coord.ok()) {
        std::fprintf(stderr, "%s\n", coord.status().ToString().c_str());
        return 1;
      }

      serve::RequestServer server(**engine, sc);
      server.AttachIngest(coord->get());
      auto report = server.Run();
      if (!report.ok()) {
        std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
        return 1;
      }
      const serve::ServeReport& r = *report;
      const obs::IngestStats& st = (*coord)->stats();

      // Zero admitted-request drops across every epoch swap.
      const bool zero_drops =
          r.counters.requests_shed == 0 &&
          r.latency.count() == r.counters.requests_admitted &&
          r.counters.requests_admitted == requests;

      // Rebuilt-from-scratch oracle: base key -> position, then the
      // applied-op log replayed in admission order. The coordinator's
      // reconciled reads must match over every touched key, a sweep of
      // base keys, and keys past the append frontier.
      const workload::KeyColumn& base = (*engine)->base_r();
      std::map<Key, uint64_t> oracle;
      for (uint64_t i = 0; i < base.size(); i += 97) {
        oracle[base.key_at(i)] = i;
      }
      std::set<Key> op_keys;
      for (const serve::IngestCoordinator::Op& op : (*coord)->log()) {
        op_keys.insert(op.key);
        if (op.kind == serve::IngestCoordinator::Op::Kind::kDelete) {
          oracle.erase(op.key);
        } else {
          oracle[op.key] = op.value;
        }
      }
      uint64_t checked = 0;
      uint64_t mismatches = 0;
      auto check_key = [&](Key k) {
        ++checked;
        const auto got = (*coord)->Find(k);
        const auto it = oracle.find(k);
        const bool want = it != oracle.end();
        if (got.has_value() != want ||
            (want && got.has_value() && *got != it->second)) {
          ++mismatches;
        }
      };
      for (Key k : op_keys) check_key(k);
      for (uint64_t i = 0; i < base.size(); i += 97) {
        if (op_keys.count(base.key_at(i)) == 0) check_key(base.key_at(i));
      }
      for (int i = 1; i <= 64; ++i) {
        check_key(base.max_key() + 1000000 + i);
      }
      const bool oracle_ok = mismatches == 0;
      if (!zero_drops || !oracle_ok) all_ok = false;

      if (sink.active()) {
        obs::RecordBuilder rec = StartRecord("fig13_htap", cfg);
        rec.AddParam("mix", mix.name);
        rec.AddParam("num_shards", shards);
        rec.AddParam("write_ratio", write_ratio);
        rec.AddParam("ops_model",
                     serve::ArrivalModelName(icfg.ops.model));
        rec.AddParam("ingest_rate_ops", icfg.ops.rate);
        rec.AddParam("merge_threshold", icfg.merge_threshold);
        rec.AddParam("requests", sc.requests);
        rec.AddParam("tuples_per_request", sc.tuples_per_request);
        rec.AddParam("arrival_rate_rps", sc.arrival.rate);
        rec.AddParam("oracle_checked_keys", checked);
        rec.AddParam("oracle_mismatches", mismatches);
        rec.AddParam("zero_drops", zero_drops);
        obs::MetricsRegistry& m = rec.metrics();
        m.SetHistogram("serve.latency_seconds", r.latency, "s");
        m.SetCounter("serve.requests_admitted",
                     r.counters.requests_admitted, "1");
        m.SetCounter("serve.requests_shed", r.counters.requests_shed, "1");
        m.SetCounter("serve.batches", r.counters.batches, "1");
        m.SetCounter("serve.tuples_served", r.counters.tuples_served, "1");
        m.SetScalar("serve.sim_seconds", r.sim_seconds, "s");
        m.SetScalar("serve.offered_rate_rps", r.offered_rate, "req/s");
        m.SetScalar("serve.achieved_tuples_per_sec",
                    r.achieved_tuples_per_sec, "tuples/s");
        m.SetScalar("serve.queue_seconds_total", r.queue_seconds_total,
                    "s");
        m.SetScalar("serve.service_seconds_total",
                    r.service_seconds_total, "s");
        if (st.any()) {
          rec.AddSection("ingest", obs::IngestJson(st));
        }
        sink.Add(order, rec.ToJsonLine());
      }

      table.AddRow({mix.name, std::to_string(shards),
                    TablePrinter::Num(write_ratio, 2),
                    TablePrinter::Num(request_rate, 0),
                    TablePrinter::Num(icfg.ops.rate, 0),
                    std::to_string(st.ops_applied),
                    std::to_string(st.ops_shed),
                    std::to_string(st.merges),
                    std::to_string(st.swap_stalls),
                    Ms(st.staleness.Quantile(0.99)),
                    Ms(r.latency.Quantile(0.50)),
                    Ms(r.latency.Quantile(0.99)),
                    (zero_drops && oracle_ok) ? "ok" : "FAIL"});
      ++order;
    }
  }

  std::printf("Fig. 13 — HTAP ingest: windowed INLJ serving (RadixSpline, "
              "R = 1 GiB) under a live\nwrite stream; per-shard delta "
              "B-trees, background merges, epoch-swapped rebuilds\n");
  PrintTable(table, flags);
  std::printf("\n'oracle' replays the applied-op log over the base column "
              "and diffs every touched\nkey against the reconciled reads "
              "(plus zero admitted-request drops across epoch\nswaps); "
              "staleness is the age of the oldest not-yet-merged write at "
              "batch close.\n");
  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: an HTAP cell dropped admitted requests or "
                 "diverged from the replay oracle\n");
    return 1;
  }
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
