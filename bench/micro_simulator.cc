// Microbenchmarks (google-benchmark) of the simulator's own primitives:
// how fast the host machine executes simulated cache/TLB accesses, warp
// gathers, index lookups, partitioning and workload generation. These
// bound how large a probe sample the figure benches can afford — they
// measure the *simulator*, not the simulated GPU.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/emitter.h"

#include "core/index_factory.h"
#include "join/multi_value_hash_table.h"
#include "mem/address_space.h"
#include "partition/radix_partitioner.h"
#include "sim/cache.h"
#include "sim/gpu.h"
#include "sim/tlb.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/key_column.h"
#include "workload/zipf.h"

namespace gpujoin {
namespace {

void BM_CacheAccess(benchmark::State& state) {
  sim::Cache cache(6 * kMiB, 128, 16);
  Xoshiro256 rng(1);
  uint64_t hits = 0;
  for (auto _ : state) {
    hits += cache.Access(rng.NextBounded(1 << 20));
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_CacheAccess);

void BM_TlbAccess(benchmark::State& state) {
  sim::Tlb tlb(32 * kGiB, kGiB, 8);
  Xoshiro256 rng(1);
  uint64_t hits = 0;
  for (auto _ : state) {
    hits += tlb.Access(rng.NextBounded(128));
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_TlbAccess);

void BM_WarpGather(benchmark::State& state) {
  mem::AddressSpace space;
  mem::Region region =
      space.Reserve(uint64_t{64} * kGiB, mem::MemKind::kHost, "r");
  sim::MemoryModel model(&space, sim::TeslaV100());
  Xoshiro256 rng(1);
  std::array<mem::VirtAddr, 32> addrs{};
  for (auto _ : state) {
    for (auto& a : addrs) {
      a = region.base + rng.NextBounded(region.size - 8);
    }
    model.Gather(addrs.data(), ~0u, 8, sim::AccessType::kRead);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_WarpGather);

// --- Hot-path benchmarks -----------------------------------------------
// These pin the per-transaction paths (cache tag scan, TLB interference
// tracking, gather dedup) that bound how large a probe sample every
// figure sweep can afford. Their trajectory across PRs is recorded in
// results/BENCH_sim.json (see scripts/bench_sim.sh).

// Shrinks the caches so every access reaches the TLB path, the same
// trick the interference tests use.
sim::GpuSpec TinyCacheV100() {
  sim::GpuSpec gpu = sim::TeslaV100();
  gpu.l1_size = 2 * kKiB;
  gpu.l2_size = 2 * kKiB;
  return gpu;
}

// Repeated touches of one line: the L1-hit fast path.
void BM_TouchLineSameLine(benchmark::State& state) {
  mem::AddressSpace space;
  mem::Region host =
      space.Reserve(uint64_t{64} * kGiB, mem::MemKind::kHost, "h");
  sim::MemoryModel model(&space, sim::TeslaV100());
  for (auto _ : state) {
    model.Access(host.base, 8, sim::AccessType::kRead);
  }
  state.SetItemsProcessed(state.iterations());
}

// Random touches within an L1-resident working set: L1 hits with
// changing lines (tag scan, no TLB work after warmup).
void BM_TouchLineL1Hit(benchmark::State& state) {
  mem::AddressSpace space;
  mem::Region host =
      space.Reserve(uint64_t{64} * kGiB, mem::MemKind::kHost, "h");
  sim::MemoryModel model(&space, sim::TeslaV100());
  Xoshiro256 rng(1);
  for (auto _ : state) {
    model.Access(host.base + rng.NextBounded(256) * 128, 8,
                 sim::AccessType::kRead);
  }
  state.SetItemsProcessed(state.iterations());
}

// Round robin over a page working set inside the TLB coverage: the
// TLB-hit path including the recent-working-set bookkeeping.
void BM_TlbLookupHit(benchmark::State& state) {
  mem::AddressSpace space;
  mem::Region host =
      space.Reserve(uint64_t{64} * kGiB, mem::MemKind::kHost, "h");
  sim::MemoryModel model(&space, TinyCacheV100());
  uint64_t page = 0;
  uint64_t offset = 0;
  for (auto _ : state) {
    model.Access(host.base + page * kGiB + (offset & 1023) * 1024, 8,
                 sim::AccessType::kRead);
    page = page + 1 < 16 ? page + 1 : 0;
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
}

// Round robin over 60 pages (beyond the 32-entry TLB): every access runs
// the full interference path — ring push/evict, recent-count and stamp
// map updates. This is the simulator's worst-case inner loop.
void BM_TlbLookupThrash(benchmark::State& state) {
  mem::AddressSpace space;
  mem::Region host =
      space.Reserve(uint64_t{64} * kGiB, mem::MemKind::kHost, "h");
  sim::MemoryModel model(&space, TinyCacheV100());
  uint64_t page = 0;
  uint64_t offset = 0;
  for (auto _ : state) {
    model.Access(host.base + page * kGiB + (offset & 1023) * 1024, 8,
                 sim::AccessType::kRead);
    page = page + 1 < 60 ? page + 1 : 0;
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
}

// Coalesced gather: 32 lanes with consecutive addresses (already sorted,
// two distinct lines) — the common access shape of partitioned probes.
void BM_GatherSequential(benchmark::State& state) {
  mem::AddressSpace space;
  mem::Region device =
      space.Reserve(uint64_t{8} * kGiB, mem::MemKind::kDevice, "d");
  sim::MemoryModel model(&space, sim::TeslaV100());
  std::array<mem::VirtAddr, 32> addrs{};
  uint64_t base = 0;
  for (auto _ : state) {
    for (int lane = 0; lane < 32; ++lane) {
      addrs[lane] = device.base + base + lane * 8;
    }
    model.Gather(addrs.data(), ~0u, 8, sim::AccessType::kRead);
    base = (base + 256) & (kMiB - 1);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

BENCHMARK(BM_TouchLineSameLine);
BENCHMARK(BM_TouchLineL1Hit);
BENCHMARK(BM_TlbLookupHit);
BENCHMARK(BM_TlbLookupThrash);
BENCHMARK(BM_GatherSequential);

void BM_ZipfSample(benchmark::State& state) {
  workload::ZipfSampler zipf(uint64_t{1} << 34, state.range(0) / 100.0);
  Xoshiro256 rng(1);
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += zipf.Sample(rng);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_ZipfSample)->Arg(0)->Arg(100)->Arg(175);

template <typename MakeIndexFn>
void IndexLookupBench(benchmark::State& state, MakeIndexFn make_index) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  workload::DenseKeyColumn column(&space, uint64_t{1} << 30);
  auto index = make_index(&space, &column);

  Xoshiro256 rng(1);
  std::array<workload::Key, 32> keys{};
  std::array<uint64_t, 32> pos{};
  for (auto _ : state) {
    for (auto& k : keys) {
      k = column.key_at(rng.NextBounded(column.size()));
    }
    gpu.RunKernel("lookup", 32, [&](sim::Warp& warp) {
      index->LookupWarp(warp, keys.data(), warp.full_mask(), pos.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

void BM_LookupBinarySearch(benchmark::State& state) {
  IndexLookupBench(state, [](mem::AddressSpace* space,
                             const workload::KeyColumn* column) {
    return core::IndexFactory::Build(space, column,
                                     index::IndexType::kBinarySearch);
  });
}
BENCHMARK(BM_LookupBinarySearch);

void BM_LookupBTree(benchmark::State& state) {
  IndexLookupBench(state, [](mem::AddressSpace* space,
                             const workload::KeyColumn* column) {
    return core::IndexFactory::Build(space, column,
                                     index::IndexType::kBTree);
  });
}
BENCHMARK(BM_LookupBTree);

void BM_LookupHarmonia(benchmark::State& state) {
  IndexLookupBench(state, [](mem::AddressSpace* space,
                             const workload::KeyColumn* column) {
    return core::IndexFactory::Build(space, column,
                                     index::IndexType::kHarmonia);
  });
}
BENCHMARK(BM_LookupHarmonia);

void BM_LookupRadixSpline(benchmark::State& state) {
  IndexLookupBench(state, [](mem::AddressSpace* space,
                             const workload::KeyColumn* column) {
    return core::IndexFactory::Build(space, column,
                                     index::IndexType::kRadixSpline);
  });
}
BENCHMARK(BM_LookupRadixSpline);

void BM_RadixPartition(benchmark::State& state) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  const uint64_t n = 1 << 16;
  std::vector<workload::Key> keys(n);
  Xoshiro256 rng(1);
  for (auto& k : keys) {
    k = static_cast<workload::Key>(rng.NextBounded(uint64_t{1} << 30));
  }
  mem::Region src = space.Reserve(n * 8, mem::MemKind::kHost, "src");
  partition::RadixPartitioner partitioner(
      partition::RadixPartitionSpec{.bits = 11, .shift = 19});
  for (auto _ : state) {
    auto out = partitioner.Partition(gpu, keys.data(), n, src.base, 0,
                                     nullptr);
    benchmark::DoNotOptimize(out->offsets.back());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixPartition);

void BM_HashTableInsert(benchmark::State& state) {
  mem::AddressSpace space;
  sim::Gpu gpu(&space, sim::V100NvLink2());
  join::MultiValueHashTable table(&space, uint64_t{1} << 22,
                                  uint64_t{1} << 22);
  Xoshiro256 rng(1);
  std::array<workload::Key, 32> keys{};
  std::array<uint64_t, 32> values{};
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) {
      keys[i] = static_cast<workload::Key>(rng.Next() >> 16);
      values[i] = i;
    }
    gpu.RunKernel("insert", 32, [&](sim::Warp& warp) {
      table.InsertWarp(warp, keys.data(), values.data(), warp.full_mask());
    });
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_HashTableInsert);

// Console reporter that additionally captures each measurement so the
// binary can emit schema-v1 JSON Lines records alongside google-
// benchmark's own console output (see obs/emitter.h). The records carry
// the benchmark case as a param and the timings as metrics — there is no
// simulated run here, so "run"/"counters" are absent by design.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      obs::RecordBuilder rec("micro_simulator");
      rec.AddParam("case", run.benchmark_name());
      rec.metrics().SetScalar("real_time_per_iter", run.GetAdjustedRealTime(),
                              benchmark::GetTimeUnitString(run.time_unit));
      rec.metrics().SetScalar("cpu_time_per_iter", run.GetAdjustedCPUTime(),
                              benchmark::GetTimeUnitString(run.time_unit));
      rec.metrics().SetCounter("iterations",
                               static_cast<uint64_t>(run.iterations), "1");
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        rec.metrics().SetScalar("items_per_second", items->second.value,
                                "1/s");
      }
      lines_.push_back(rec.ToJsonLine());
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

}  // namespace
}  // namespace gpujoin

// BENCHMARK_MAIN(), with a --json <path> flag (same contract as the other
// bench binaries) stripped from argv before google-benchmark parses it.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      continue;
    }
    args.push_back(argv[i]);
  }
  int run_argc = static_cast<int>(args.size());
  benchmark::Initialize(&run_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(run_argc, args.data())) return 1;
  gpujoin::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    for (const std::string& line : reporter.lines()) {
      std::fprintf(f, "%s\n", line.c_str());
    }
    std::fclose(f);
  }
  return 0;
}
