// Chaos bench (robustness extension, DESIGN.md §13): kill a shard in the
// middle of a sharded run and measure what failover costs. For every
// (shards, skew) cell a fault-free baseline run collects its match set,
// then each scenario — crash, stuck, link-down — injects a terminal
// device fault at --fail-at of the baseline's simulated makespan and
// re-runs. The merged match set must come back *identical* (zero lost,
// zero extra); the reported overhead is the failover tax: detection
// stall, re-executed in-flight windows, and the recovery-penalty charge
// on the surviving shards.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "dist/metrics.h"
#include "dist/shard_scheduler.h"
#include "obs/robustness.h"

namespace gpujoin::bench {
namespace {

struct Scenario {
  const char* name;
  sim::DeviceFaultClass cls;
};

core::ExperimentConfig ChaosConfig(const Flags& flags, int shards,
                                   double zipf, uint64_t dev_sample) {
  core::ExperimentConfig cfg;
  cfg.r_tuples = uint64_t{1} << 27;  // 1 GiB of R keys, as in fig10
  cfg.s_tuples = uint64_t{1} << 26;
  cfg.s_sample = dev_sample * static_cast<uint64_t>(shards);
  cfg.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  cfg.zipf_exponent = zipf;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  return cfg;
}

dist::ShardConfig ChaosShardConfig(const Flags& flags, int shards) {
  dist::ShardConfig dcfg;
  dcfg.num_shards = shards;
  dcfg.topology = dist::TopologyKind::kNvLink2;
  dcfg.threads = SweepThreads(flags);
  return dcfg;
}

// Set difference sizes after sorting: (in `a` only, in `b` only).
std::pair<uint64_t, uint64_t> MatchDiff(
    const std::vector<core::JoinMatch>& a,
    const std::vector<core::JoinMatch>& b) {
  uint64_t only_a = 0;
  uint64_t only_b = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++only_a;
      ++i;
    } else if (b[j] < a[i]) {
      ++only_b;
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  only_a += a.size() - i;
  only_b += b.size() - j;
  return {only_a, only_b};
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt64("fail-shard", 1,
                    "shard the fault targets (clamped to num_shards - 1)",
                    /*min=*/0, /*max=*/7);
  flags.DefineDouble("fail-at", 0.4,
                     "fault start, as a fraction of the fault-free run's "
                     "simulated makespan",
                     /*min=*/0.0, /*max=*/1.0);
  flags.DefineDouble("heartbeat", 0.05,
                     "heartbeat timeout, as a fraction of the fault-free "
                     "simulated makespan",
                     /*min=*/1e-6, /*max=*/1.0);
  flags.DefineDouble("recovery-penalty", 2.0,
                     "slowdown of re-executed / failed-over work on the "
                     "surviving shard",
                     /*min=*/1.0, /*max=*/16.0);
  flags.DefineInt64("reexec-budget", 4096,
                    "re-executed chunks allowed before the run aborts",
                    /*min=*/1, /*max=*/int64_t{1} << 20);
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  // Per-device-constant simulated sample, as in fig10: --s_sample is the
  // total budget at 8 devices.
  const uint64_t dev_sample = std::max<uint64_t>(
      uint64_t{1} << 12,
      static_cast<uint64_t>(flags.GetInt64("s_sample")) / 8);

  const std::vector<Scenario> scenarios = {
      {"crash", sim::DeviceFaultClass::kShardCrash},
      {"stuck", sim::DeviceFaultClass::kShardStuck},
      {"linkdown", sim::DeviceFaultClass::kLinkDown},
  };

  TablePrinter table({"scenario", "GPUs", "zipf", "base Q/s", "chaos Q/s",
                      "overhead", "failovers", "reexec chunks", "lost",
                      "extra"});

  uint64_t order = 0;
  bool identical = true;
  for (int shards : {2, 4, 8}) {
    for (double zipf : {0.0, 1.75}) {
      // Fault-free baseline: the reference match set and the makespan
      // the fault schedule is placed on.
      const core::ExperimentConfig cfg =
          ChaosConfig(flags, shards, zipf, dev_sample);
      std::vector<core::JoinMatch> base_matches;
      auto base_engine =
          dist::ShardScheduler::Create(cfg, ChaosShardConfig(flags, shards))
              .value();
      if (sink.active()) base_engine->EnableObservability();
      dist::ShardedRunResult base = base_engine->RunJoin(&base_matches).value();
      std::sort(base_matches.begin(), base_matches.end());

      if (sink.active()) {
        obs::RecordBuilder rec = StartRecord("fig12_chaos", cfg);
        rec.AddParam("scenario", "none");
        rec.AddParam("num_shards", shards);
        rec.AddParam("sim_makespan", base.sim_makespan);
        rec.SetRun(base.run);
        rec.AddSection("shards", dist::ShardsJson(base));
        rec.AddSection("links", dist::LinksJson(base));
        sink.Add(order++, rec.ToJsonLine());
      }

      const int fail_shard = std::min(
          static_cast<int>(flags.GetInt64("fail-shard")), shards - 1);
      const double fail_at = flags.GetDouble("fail-at") * base.sim_makespan;

      for (const Scenario& sc : scenarios) {
        dist::ShardConfig dcfg = ChaosShardConfig(flags, shards);
        sim::DeviceFaultEvent event;
        event.cls = sc.cls;
        event.shard = fail_shard;
        event.at_seconds = fail_at;
        event.duration_seconds = 0;  // terminal: never comes back
        dcfg.failover.device_faults.events.push_back(event);
        dcfg.failover.heartbeat_timeout =
            flags.GetDouble("heartbeat") * base.sim_makespan;
        dcfg.failover.recovery_penalty =
            flags.GetDouble("recovery-penalty");
        dcfg.failover.reexec_chunk_budget =
            static_cast<uint64_t>(flags.GetInt64("reexec-budget"));

        std::vector<core::JoinMatch> chaos_matches;
        auto engine = dist::ShardScheduler::Create(cfg, dcfg).value();
        if (sink.active()) engine->EnableObservability();
        dist::ShardedRunResult chaos =
            engine->RunJoin(&chaos_matches).value();
        std::sort(chaos_matches.begin(), chaos_matches.end());

        const auto [lost, extra] = MatchDiff(base_matches, chaos_matches);
        if (lost != 0 || extra != 0) identical = false;
        const double overhead =
            base.run.seconds > 0 ? chaos.run.seconds / base.run.seconds : 0;
        uint64_t reexec_chunks = 0;
        for (const obs::FailoverRecord& f : chaos.robustness.failovers) {
          reexec_chunks += f.reexec_chunks;
        }

        if (sink.active()) {
          obs::RecordBuilder rec = StartRecord("fig12_chaos", cfg);
          rec.AddParam("scenario", sc.name);
          rec.AddParam("num_shards", shards);
          rec.AddParam("fail_shard", fail_shard);
          rec.AddParam("fail_at_seconds", fail_at);
          rec.AddParam("heartbeat_timeout",
                       dcfg.failover.heartbeat_timeout);
          rec.AddParam("matches_lost", lost);
          rec.AddParam("matches_extra", extra);
          rec.AddParam("baseline_seconds", base.run.seconds);
          rec.AddParam("failover_overhead", overhead);
          rec.AddParam("sim_makespan", chaos.sim_makespan);
          rec.SetRun(chaos.run);
          rec.AddSection("shards", dist::ShardsJson(chaos));
          rec.AddSection("links", dist::LinksJson(chaos));
          rec.AddSection("robustness",
                         obs::RobustnessJson(chaos.robustness));
          sink.Add(order++, rec.ToJsonLine());
        }

        table.AddRow({sc.name, std::to_string(shards),
                      TablePrinter::Num(zipf, 2),
                      TablePrinter::Num(base.run.qps(), 3),
                      TablePrinter::Num(chaos.run.qps(), 3),
                      TablePrinter::Num(overhead, 3) + "x",
                      std::to_string(chaos.robustness.failovers.size()),
                      std::to_string(reexec_chunks), std::to_string(lost),
                      std::to_string(extra)});
      }
    }
  }

  std::printf("Fig. 12 — chaos: kill shard %lld at %.0f%% of the "
              "fault-free makespan (crash / stuck / link-down),\nwindowed "
              "INLJ (RadixSpline) over N NVLink GPUs, R = 1 GiB, uniform "
              "vs Zipf 1.75 probes\n",
              static_cast<long long>(flags.GetInt64("fail-shard")),
              flags.GetDouble("fail-at") * 100.0);
  PrintTable(table, flags);
  std::printf("\n'lost'/'extra' compare the merged match set against the "
              "fault-free baseline\n(both must be 0: failover reroutes "
              "the dead shard's key range and re-executes\nits in-flight "
              "windows without dropping or duplicating a match).\n");
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: a chaos run lost or duplicated matches vs the "
                 "fault-free baseline\n");
    return 1;
  }
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
