// Ablation: how many radix bits to partition the lookup keys on (paper
// Sec. 4.2 discusses the bit-range choice; Sec. 4.3.1 uses 2048
// partitions). Sweeps the partition count on the windowed INLJ at
// R = 100 GiB (beyond the TLB range, so partitioning is load-bearing).
//
// Expectation: too few partitions leave each partition's key range wider
// than the TLB can cover (translation requests persist) and forfeit the
// intra-partition cache sharing; beyond ~2^11 the benefit saturates.
// Thinned sampling is forced so the TLB working set of wide partitions
// stays faithful (range-restricted samples would hide it).

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"partitions", "binary Q/s", "binary tr/key",
                      "radix_spline Q/s", "radix_spline tr/key"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (int bits = 1; bits <= 13; bits += 2) {
    cells.push_back([&flags, &sink, ci, r_tuples, bits] {
      std::vector<std::string> row{std::to_string(uint64_t{1} << bits)};
      uint64_t sub = 0;
      for (index::IndexType type : {index::IndexType::kBinarySearch,
                                    index::IndexType::kRadixSpline}) {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = type;
        cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
        cfg.inlj.window_tuples = uint64_t{4} << 20;
        cfg.inlj.max_partition_bits = bits;
        cfg.sample_scheme =
            core::ExperimentConfig::SampleSchemeOverride::kThinned;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) {
          ++sub;
          continue;
        }
        MaybeObserve(sink, **exp);
        sim::RunResult res = (*exp)->RunInlj().value();
        row.push_back(TablePrinter::Num(res.qps(), 3));
        row.push_back(TablePrinter::Num(res.translations_per_key(), 3));
        obs::RecordBuilder rec = StartRecord("ablation_partition_bits", cfg);
        rec.AddParam("max_partition_bits", bits);
        EmitRun(sink, ci * 2 + sub++, std::move(rec), res, exp->get());
      }
      return row;
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Ablation — radix partition count, windowed INLJ, "
              "R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
