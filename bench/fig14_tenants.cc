// Multi-tenant serving with a hot-key result cache (Fig. 14-style
// experiment): thousands of tenants share the windowed INLJ behind the
// micro-batcher, with request attribution drawn Zipf-1.75 like real
// serving fleets. Two questions, two cell groups:
//
//  1. Throughput grid — {fair, fifo} x {cache off, cache on} past
//     saturation. The Zipf-1.75 hot keys concentrate probes on a few
//     request slices, so a small memoized-result reservation converts
//     most window runs into directory probes + replays: cache-on must
//     sustain a higher aggregate request rate at an equal (zero) shed
//     rate. A verification cell replays a smaller run with match
//     collection on and the process exits nonzero if the cached match
//     multiset differs from the uncached one — the cache must be a
//     memo, not an approximation.
//
//  2. Misbehaving-tenant trio — isolated (no rogue), weighted-fair +
//     token buckets + a rogue flood, and unmetered FIFO + the same
//     flood. The protected gold tier's p99 under fair scheduling must
//     stay within 1.2x of its rogue-free value while FIFO lets the
//     flood queue everyone behind the rogue's backlog.
//
// Everything runs on the simulated clock; a fixed seed reproduces every
// cell bit for bit at any --threads value.

#include "bench/bench_common.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>

#include "obs/tenant.h"
#include "serve/cache.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace gpujoin::bench {
namespace {

core::ExperimentConfig BaseConfig(const Flags& flags) {
  // Same working point as the serve_latency bench: R = 8 GiB,
  // radix-spline index, windowed partitioning.
  core::ExperimentConfig cfg = PaperConfig(flags, uint64_t{1} << 30);
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  return cfg;
}

std::string Ms(double seconds) {
  return TablePrinter::Num(seconds * 1e3, 3);
}

std::string Pct(double x) { return TablePrinter::Num(x * 100.0, 1); }

// Expected traffic share of the hottest tenant under Zipf(zipf) over
// `tenants` ranks — sizes the token buckets so organic traffic passes.
double HottestTenantShare(uint64_t tenants, double zipf) {
  double h = 0;
  for (uint64_t k = 1; k <= tenants; ++k) {
    h += std::pow(static_cast<double>(k), -zipf);
  }
  return 1.0 / h;
}

double TierP99(const serve::ServeReport& r, const char* tier) {
  for (const obs::TenantTierStats& t : r.tenants.tiers) {
    if (t.tier == tier) return t.latency.Quantile(0.99);
  }
  return -1.0;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt64("tenants", 2000, "tenant population",
                    /*min=*/2, /*max=*/int64_t{1} << 31);
  flags.DefineInt64("requests", 20000, "requests per cell",
                    /*min=*/1, /*max=*/int64_t{1} << 32);
  flags.DefineInt64("tuples_per_request", 512,
                    "probe tuples carried by each request",
                    /*min=*/1, /*max=*/int64_t{1} << 24);
  flags.DefineInt64("batch_tuples", int64_t{1} << 13,
                    "micro-batch size in tuples (16 requests at the "
                    "default request size; fixed, not adaptive)",
                    /*min=*/32, /*max=*/int64_t{1} << 26);
  flags.DefineInt64("key-universe", 256,
                    "distinct request keys; each key addresses one "
                    "tuples_per_request slice of the probe sample",
                    /*min=*/1, /*max=*/int64_t{1} << 24);
  flags.DefineDouble("cache-mib", 4.0,
                     "result-cache reservation for the cache-on cells "
                     "(MiB of simulated host memory)",
                     /*min=*/0.001, /*max=*/65536.0);
  flags.DefineDouble("tenant-zipf", 1.75,
                     "Zipf exponent of tenant popularity (0 = uniform)",
                     /*min=*/0.0, /*max=*/8.0);
  flags.DefineDouble("key-zipf", 1.75,
                     "Zipf exponent of request-key popularity",
                     /*min=*/0.0, /*max=*/8.0);
  flags.DefineDouble("load", 2.0,
                     "throughput-grid offered load as a multiple of the "
                     "calibrated capacity (past 1.0 the makespan is "
                     "service-bound, which is what the cache comparison "
                     "measures)",
                     /*min=*/0.01, /*max=*/64.0);
  flags.DefineDouble("base-load", 0.15,
                     "misbehaving-tenant trio's organic load as a "
                     "multiple of capacity (kept low so the rogue-free "
                     "p99 is deadline-dominated)",
                     /*min=*/0.001, /*max=*/1.0);
  flags.DefineDouble("rogue-extra", 8.0,
                     "rogue flood intensity: extra traffic attributed to "
                     "one bronze tenant, as a multiple of the organic "
                     "aggregate rate",
                     /*min=*/0.0, /*max=*/1024.0);
  flags.DefineInt64("verify-requests", 4000,
                    "request count of the cache-identity verification "
                    "cell (capped at --requests; runs with match "
                    "collection on, so keep it modest)",
                    /*min=*/1, /*max=*/int64_t{1} << 24);
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t tenants = static_cast<uint64_t>(flags.GetInt64("tenants"));
  const uint64_t tpr =
      static_cast<uint64_t>(flags.GetInt64("tuples_per_request"));
  const uint64_t batch_tuples =
      static_cast<uint64_t>(flags.GetInt64("batch_tuples"));
  const uint64_t key_universe =
      static_cast<uint64_t>(flags.GetInt64("key-universe"));
  const uint64_t cache_bytes = static_cast<uint64_t>(
      flags.GetDouble("cache-mib") * static_cast<double>(uint64_t{1} << 20));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  const double rogue_extra = flags.GetDouble("rogue-extra");

  if (key_universe * tpr >
      static_cast<uint64_t>(flags.GetInt64("s_sample"))) {
    std::fprintf(stderr,
                 "--key-universe * --tuples_per_request (%llu) exceeds "
                 "--s_sample (%lld): keyed requests must address the "
                 "probe sample\n",
                 static_cast<unsigned long long>(key_universe * tpr),
                 static_cast<long long>(flags.GetInt64("s_sample")));
    return 2;
  }

  // Calibrate the service capacity on one REQUEST-sized window, not one
  // batch: tenant mode serves each request as its own window (per-key
  // slices can't be coalesced), and the fixed per-window overhead
  // dominates at request granularity — a batch-sized calibration would
  // overstate capacity ~10x and size every load knob wrong.
  double request_service = 0;
  double capacity_tps = 0;
  {
    auto exp = core::Experiment::Create(BaseConfig(flags));
    if (!exp.ok()) {
      std::fprintf(stderr, "%s\n", exp.status().ToString().c_str());
      return 1;
    }
    (*exp)->ResetForRun();
    const uint64_t cal_tuples = std::min(tpr, (*exp)->s().sample_size());
    auto joiner = core::WindowJoiner::Create(
        (*exp)->gpu(), (*exp)->index(), (*exp)->s(),
        BaseConfig(flags).inlj, (*exp)->s().sample_size());
    if (!joiner.ok()) {
      std::fprintf(stderr, "%s\n", joiner.status().ToString().c_str());
      return 1;
    }
    auto run = joiner->RunWindow(0, cal_tuples, 0);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    request_service = run->seconds();
    capacity_tps = static_cast<double>(cal_tuples) / request_service;
    if (sink.active()) {
      obs::RecordBuilder rec =
          StartRecord("fig14_tenants", BaseConfig(flags));
      rec.AddParam("point", "calibration");
      rec.AddParam("request_tuples", cal_tuples);
      rec.metrics().SetScalar("serve.request_service_seconds",
                              request_service, "s");
      rec.metrics().SetScalar("serve.capacity_tuples_per_sec",
                              capacity_tps, "tuples/s");
      sink.Add(0, rec.ToJsonLine());
    }
  }
  // One full batch is batch_tuples / tpr request windows back to back.
  const double batch_service =
      static_cast<double>(batch_tuples) /
      static_cast<double>(tpr) * request_service;

  // Shared serving skeleton: fixed (non-adaptive) batches so every cell
  // compares the scheduler and the cache, not the batch controller.
  // `cell` keys the seeds — cells meant to see the same offered stream
  // pass the same id.
  auto make_serve = [&](uint64_t cell) {
    serve::ServeConfig sc;
    sc.arrival.seed = seed * 1000 + cell;
    sc.batch.batch_tuples = batch_tuples;
    sc.batch.min_batch_tuples = batch_tuples;
    sc.batch.adaptive = false;
    // An order of magnitude over one batch's service time: under the
    // trio's light organic load most batches close on the deadline (the
    // p99 anchor); past saturation in the grid the size trigger wins.
    sc.batch.deadline_seconds = 4.0 * batch_service;
    sc.requests = static_cast<uint64_t>(flags.GetInt64("requests"));
    sc.tuples_per_request = tpr;
    sc.max_backlog_tuples = 0;  // shed only at the token buckets
    sc.tenants.num_tenants = tenants;
    sc.tenants.tiers = {serve::TenantTier{"gold", 4.0, 0, 0},
                        serve::TenantTier{"bronze", 1.0, 0, 0}};
    sc.tenants.tenant_zipf = flags.GetDouble("tenant-zipf");
    sc.tenants.seed = seed * 9000 + cell;
    return sc;
  };

  // Runs one cell: fresh experiment, optional result cache bound to that
  // experiment's simulated GPU, one serving run.
  auto run_serve = [&](const serve::ServeConfig& sc,
                       uint64_t cell_cache_bytes)
      -> Result<serve::ServeReport> {
    auto exp = core::Experiment::Create(BaseConfig(flags));
    if (!exp.ok()) return exp.status();
    (*exp)->ResetForRun();
    serve::RequestServer server((*exp)->gpu(), (*exp)->index(),
                                (*exp)->s(), BaseConfig(flags).inlj, sc);
    std::unique_ptr<serve::ResultCache> cache;
    if (cell_cache_bytes > 0) {
      serve::ResultCacheConfig cc;
      cc.reserved_bytes = cell_cache_bytes;
      auto built = serve::ResultCache::Create(cc, (*exp)->gpu());
      if (!built.ok()) return built.status();
      cache = std::move(*built);
      server.AttachCache(cache.get());
    }
    return server.Run();
  };

  auto emit_cell = [&](uint64_t order, const char* point,
                       const serve::ServeConfig& sc, uint64_t cell_cache,
                       const serve::ServeReport& r) {
    if (!sink.active()) return;
    obs::RecordBuilder rec = StartRecord("fig14_tenants", BaseConfig(flags));
    rec.AddParam("point", point);
    rec.AddParam("scheduler",
                 sc.tenants.scheduler ==
                         serve::TenantScheduler::kDeficitWeightedFair
                     ? "fair"
                     : "fifo");
    rec.AddParam("tenants", sc.tenants.num_tenants);
    rec.AddParam("tenant_zipf", sc.tenants.tenant_zipf);
    rec.AddParam("key_universe", sc.tenants.key_universe);
    rec.AddParam("key_zipf", sc.tenants.key_zipf);
    rec.AddParam("rogue_extra", sc.tenants.rogue_extra);
    rec.AddParam("cache_bytes", cell_cache);
    rec.AddParam("arrival_rate_rps", sc.arrival.rate);
    rec.AddParam("requests", sc.requests);
    rec.AddParam("tuples_per_request", sc.tuples_per_request);
    rec.AddParam("batch_tuples", sc.batch.batch_tuples);
    rec.AddParam("deadline_seconds", sc.batch.deadline_seconds);
    obs::MetricsRegistry& m = rec.metrics();
    m.SetHistogram("serve.latency_seconds", r.latency, "s");
    m.SetCounter("serve.requests_admitted", r.counters.requests_admitted,
                 "1");
    m.SetCounter("serve.requests_shed", r.counters.requests_shed, "1");
    m.SetCounter("serve.batches", r.counters.batches, "1");
    m.SetCounter("serve.tuples_served", r.counters.tuples_served, "1");
    m.SetScalar("serve.sim_seconds", r.sim_seconds, "s");
    m.SetScalar("serve.offered_rate_rps", r.offered_rate, "req/s");
    m.SetScalar("serve.achieved_requests_per_sec",
                r.achieved_requests_per_sec, "req/s");
    m.SetScalar("serve.achieved_tuples_per_sec", r.achieved_tuples_per_sec,
                "tuples/s");
    m.SetScalar("serve.service_seconds_total", r.service_seconds_total,
                "s");
    rec.AddSection("tenants", obs::TenantsJson(r.tenants));
    sink.Add(order, rec.ToJsonLine());
  };

  auto row_for = [&](const char* cell, const serve::ServeConfig& sc,
                     uint64_t cell_cache, const serve::ServeReport& r) {
    const obs::CacheStats& cs = r.tenants.cache;
    const double hit_rate =
        cs.lookups > 0
            ? static_cast<double>(cs.hits) / static_cast<double>(cs.lookups)
            : 0.0;
    return std::vector<std::string>{
        cell,
        sc.tenants.scheduler ==
                serve::TenantScheduler::kDeficitWeightedFair
            ? "fair"
            : "fifo",
        cell_cache > 0
            ? TablePrinter::Num(
                  static_cast<double>(cell_cache) / (uint64_t{1} << 20), 1)
            : "off",
        std::to_string(r.counters.requests_admitted),
        std::to_string(r.counters.requests_shed),
        std::to_string(cs.hits),
        cell_cache > 0 ? Pct(hit_rate) : "",
        std::to_string(r.counters.batches),
        Ms(r.latency.Quantile(0.50)),
        Ms(r.latency.Quantile(0.99)),
        Ms(TierP99(r, "gold")),
        TablePrinter::Num(r.achieved_requests_per_sec, 0)};
  };

  TablePrinter table({"cell", "sched", "cache MiB", "admitted", "shed",
                      "hits", "hit%", "batches", "p50 ms", "p99 ms",
                      "gold p99 ms", "req/s"});
  SweepCells cells;

  // Cross-cell outputs consumed by the post-sweep summary. Cells write
  // disjoint slots, so plain arrays are race-free under the sweep pool.
  std::array<double, 4> grid_qps{};       // fair/off fair/on fifo/off fifo/on
  std::array<uint64_t, 4> grid_shed{};
  std::array<double, 3> trio_gold_p99{};  // isolated, fair+rogue, fifo+rogue
  std::atomic<bool> match_mismatch{false};
  std::atomic<uint64_t> verify_hits{0};
  std::atomic<bool> cell_failed{false};
  auto error_row = [&](const char* cell, Status st) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    cell_failed.store(true);
    return std::vector<std::string>{cell, "ERROR", "", "", "", "",
                                    "",   "",      "", "", "", ""};
  };

  // --- Group 1: throughput grid, {fair, fifo} x {cache off, on}. ------
  const double grid_rate =
      flags.GetDouble("load") * capacity_tps / static_cast<double>(tpr);
  struct GridCell {
    const char* name;
    serve::TenantScheduler sched;
    bool cached;
  };
  static constexpr std::array<GridCell, 4> kGrid = {{
      {"grid/fair", serve::TenantScheduler::kDeficitWeightedFair, false},
      {"grid/fair", serve::TenantScheduler::kDeficitWeightedFair, true},
      {"grid/fifo", serve::TenantScheduler::kFifo, false},
      {"grid/fifo", serve::TenantScheduler::kFifo, true},
  }};
  for (uint64_t gi = 0; gi < kGrid.size(); ++gi) {
    cells.push_back([&, gi]() -> std::vector<std::string> {
      const GridCell& g = kGrid[gi];
      // Cache-on and cache-off share the arrival + attribution seeds
      // (cell id keyed by scheduler only): identical offered streams,
      // so the achieved-rate delta is purely the cache.
      serve::ServeConfig sc = make_serve(/*cell=*/gi / 2);
      sc.arrival.model = serve::ArrivalModel::kPoisson;
      sc.arrival.rate = grid_rate;
      sc.tenants.scheduler = g.sched;
      sc.tenants.key_universe = key_universe;
      sc.tenants.key_zipf = flags.GetDouble("key-zipf");
      const uint64_t cell_cache = g.cached ? cache_bytes : 0;
      auto report = run_serve(sc, cell_cache);
      if (!report.ok()) return error_row(g.name, report.status());
      grid_qps[gi] = report->achieved_requests_per_sec;
      grid_shed[gi] = report->counters.requests_shed;
      emit_cell(1 + gi, "grid", sc, cell_cache, *report);
      return row_for(g.name, sc, cell_cache, *report);
    });
  }

  // --- Group 2: cache correctness — cached match sets must be
  // bit-identical to the uncached run's (compared as sorted multisets;
  // batch composition may legally reorder service). --------------------
  cells.push_back([&]() -> std::vector<std::string> {
    serve::ServeConfig sc = make_serve(/*cell=*/7);
    sc.arrival.model = serve::ArrivalModel::kPoisson;
    sc.arrival.rate = grid_rate;
    sc.requests = std::min(
        sc.requests, static_cast<uint64_t>(flags.GetInt64("verify-requests")));
    sc.tenants.scheduler = serve::TenantScheduler::kDeficitWeightedFair;
    sc.tenants.key_universe = key_universe;
    sc.tenants.key_zipf = flags.GetDouble("key-zipf");
    sc.collect_matches = true;
    auto cached = run_serve(sc, cache_bytes);
    if (!cached.ok()) return error_row("verify/cache", cached.status());
    auto uncached = run_serve(sc, 0);
    if (!uncached.ok()) return error_row("verify/cache", uncached.status());
    std::sort(cached->matches.begin(), cached->matches.end());
    std::sort(uncached->matches.begin(), uncached->matches.end());
    const bool identical = cached->matches == uncached->matches;
    if (!identical) match_mismatch.store(true);
    verify_hits.store(cached->tenants.cache.hits);
    if (sink.active()) {
      obs::RecordBuilder rec =
          StartRecord("fig14_tenants", BaseConfig(flags));
      rec.AddParam("point", "verify");
      rec.AddParam("requests", sc.requests);
      rec.AddParam("key_universe", sc.tenants.key_universe);
      rec.AddParam("cache_bytes", cache_bytes);
      rec.metrics().SetScalar("serve.match_sets_identical",
                              identical ? 1.0 : 0.0, "1");
      rec.metrics().SetCounter("serve.verify_matches",
                               cached->matches.size(), "1");
      rec.AddSection("tenants", obs::TenantsJson(cached->tenants));
      sink.Add(5, rec.ToJsonLine());
    }
    std::vector<std::string> row = row_for("verify/cache", sc, cache_bytes,
                                           *cached);
    row[1] = identical ? "match" : "MISMATCH";
    return row;
  });

  // --- Group 3: misbehaving-tenant trio. ------------------------------
  // Organic load is light (deadline-dominated p99); the rogue bronze
  // tenant floods `rogue_extra` times the aggregate organic rate. Token
  // buckets admit twice the hottest tenant's organic share, so clustered
  // organic traffic passes while the sustained flood is pinned.
  const double base_rate_tuples =
      flags.GetDouble("base-load") * capacity_tps;
  const double hottest_share =
      flags.GetDouble("tenant-zipf") > 0
          ? HottestTenantShare(tenants, flags.GetDouble("tenant-zipf"))
          : 1.0 / static_cast<double>(tenants);
  const double bucket_rate = 2.0 * hottest_share * base_rate_tuples;
  struct TrioCell {
    const char* name;
    serve::TenantScheduler sched;
    bool buckets;
    bool rogue;
  };
  static constexpr std::array<TrioCell, 3> kTrio = {{
      {"rogue/isolated", serve::TenantScheduler::kDeficitWeightedFair,
       true, false},
      {"rogue/fair", serve::TenantScheduler::kDeficitWeightedFair, true,
       true},
      {"rogue/fifo", serve::TenantScheduler::kFifo, false, true},
  }};
  for (uint64_t ti = 0; ti < kTrio.size(); ++ti) {
    cells.push_back([&, ti]() -> std::vector<std::string> {
      const TrioCell& c = kTrio[ti];
      serve::ServeConfig sc = make_serve(/*cell=*/11);
      // Deterministic arrivals: the p99-isolation ratio compares cells
      // whose arrival rates differ (the flood inflates one), so the
      // arrival process itself must not add noise.
      sc.arrival.model = serve::ArrivalModel::kDeterministic;
      sc.arrival.rate = base_rate_tuples / static_cast<double>(tpr);
      sc.tenants.scheduler = c.sched;
      sc.tenants.rogue_extra = c.rogue ? rogue_extra : 0;
      sc.tenants.rogue_tenant = 1;  // a bronze tenant misbehaves
      if (c.buckets) {
        for (serve::TenantTier& tier : sc.tenants.tiers) {
          tier.rate_tuples_per_sec = bucket_rate;
          tier.burst_tuples = 8 * tpr;
        }
      }
      auto report = run_serve(sc, 0);
      if (!report.ok()) return error_row(c.name, report.status());
      trio_gold_p99[ti] = TierP99(*report, "gold");
      emit_cell(6 + ti, "rogue", sc, 0, *report);
      return row_for(c.name, sc, 0, *report);
    });
  }

  SweepInto(flags, cells, table);

  std::printf("Multi-tenant serving — %llu tenants (Zipf %.2f), windowed "
              "INLJ behind a micro-batcher, R = 8 GiB\n",
              static_cast<unsigned long long>(tenants),
              flags.GetDouble("tenant-zipf"));
  std::printf("calibrated: one %llu-tuple request window = %.3f ms  "
              "(capacity %.1f Mtup/s, %.0f req/s); batch deadline "
              "%.3f ms\n",
              static_cast<unsigned long long>(tpr), request_service * 1e3,
              capacity_tps * 1e-6, 1.0 / request_service,
              4.0 * batch_service * 1e3);
  PrintTable(table, flags);

  // Post-sweep summary: the two acceptance ratios in one place.
  const double qps_gain =
      grid_qps[0] > 0 ? grid_qps[1] / grid_qps[0] : 0.0;
  const double fair_ratio =
      trio_gold_p99[0] > 0 ? trio_gold_p99[1] / trio_gold_p99[0] : 0.0;
  const double fifo_ratio =
      trio_gold_p99[0] > 0 ? trio_gold_p99[2] / trio_gold_p99[0] : 0.0;
  std::printf("\ncache: fair-scheduler aggregate %s -> %s req/s "
              "(%.2fx) at equal shed (%llu vs %llu); match sets %s\n",
              TablePrinter::Num(grid_qps[0], 0).c_str(),
              TablePrinter::Num(grid_qps[1], 0).c_str(), qps_gain,
              static_cast<unsigned long long>(grid_shed[0]),
              static_cast<unsigned long long>(grid_shed[1]),
              match_mismatch.load() ? "DIFFER" : "identical");
  std::printf("isolation: gold p99 %.3f ms isolated, %.3f ms under the "
              "%.0fx flood with fair+buckets (%.2fx), %.3f ms under "
              "unmetered FIFO (%.2fx)\n",
              trio_gold_p99[0] * 1e3, trio_gold_p99[1] * 1e3, rogue_extra,
              fair_ratio, trio_gold_p99[2] * 1e3, fifo_ratio);

  if (sink.active()) {
    obs::RecordBuilder rec = StartRecord("fig14_tenants", BaseConfig(flags));
    rec.AddParam("point", "summary");
    rec.AddParam("tenants", tenants);
    rec.AddParam("rogue_extra", rogue_extra);
    obs::MetricsRegistry& m = rec.metrics();
    m.SetScalar("serve.cache_qps_gain", qps_gain, "1");
    m.SetScalar("serve.match_sets_identical",
                match_mismatch.load() ? 0.0 : 1.0, "1");
    m.SetScalar("serve.gold_p99_isolated_seconds", trio_gold_p99[0], "s");
    m.SetScalar("serve.gold_p99_fair_rogue_seconds", trio_gold_p99[1], "s");
    m.SetScalar("serve.gold_p99_fifo_rogue_seconds", trio_gold_p99[2], "s");
    m.SetScalar("serve.gold_p99_fair_ratio", fair_ratio, "1");
    m.SetScalar("serve.gold_p99_fifo_ratio", fifo_ratio, "1");
    sink.Add(9, rec.ToJsonLine());
  }
  if (!sink.Flush()) return 1;
  if (match_mismatch.load()) {
    std::fprintf(stderr, "FAIL: cached match sets differ from the "
                         "uncached run's\n");
    return 1;
  }
  if (verify_hits.load() == 0) {
    std::fprintf(stderr, "FAIL: the verification cell never hit the "
                         "cache — the identity check proved nothing\n");
    return 1;
  }
  return cell_failed.load() ? 1 : 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
