// Ablation: host huge-page size. The paper's machine uses 1 GiB pages and
// reports that 2 MiB pages perform "approximately equal" (Sec. 3.2); the
// simulator keeps the TLB *coverage* constant across page sizes, so this
// ablation verifies the modeling choice end to end — and shows what
// breaks if coverage scaled with page count instead.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"page size", "mode", "binary Q/s", "binary tr/key"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (uint64_t page : {uint64_t{2} * kMiB, uint64_t{64} * kMiB, kGiB}) {
    for (auto mode : {core::InljConfig::PartitionMode::kNone,
                      core::InljConfig::PartitionMode::kWindowed}) {
      cells.push_back([&flags, &sink, ci, r_tuples, page, mode] {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = index::IndexType::kBinarySearch;
        cfg.host_page_size = page;
        cfg.inlj.mode = mode;
        cfg.inlj.window_tuples = uint64_t{4} << 20;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) return std::vector<std::string>{};
        MaybeObserve(sink, **exp);
        sim::RunResult res = (*exp)->RunInlj().value();
        obs::RecordBuilder rec = StartRecord("ablation_page_size", cfg);
        rec.AddParam("host_page_size", cfg.host_page_size);
        EmitRun(sink, ci, std::move(rec), res, exp->get());
        return std::vector<std::string>{
            FormatBytes(static_cast<double>(page)),
            core::PartitionModeName(mode),
            TablePrinter::Num(res.qps(), 3),
            TablePrinter::Num(res.translations_per_key(), 3)};
      });
      ++ci;
    }
  }
  return FinishBench(flags, cells, table,
                     "Ablation — host huge-page size (TLB coverage held at "
              "32 GiB), R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
