// Reproduces the Sec. 6 discussion measurements: the interconnect
// transfer volume of the windowed INLJ vs the hash join's table scan
// (the index reduces the volume "by up to 12x"), and the naive INLJ's
// TLB-induced throughput drop factor (up to 16.7x).

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  TablePrinter volume({"R (GiB)", "index", "INLJ transfer", "hash join "
                       "transfer", "reduction"});
  TablePrinter drop({"index", "Q/s @16GiB (naive)", "Q/s @120GiB (naive)",
                     "drop factor"});

  // One cell per (R, index) pair; an empty row means the configuration
  // did not fit in memory and is skipped, like the serial loop did.
  std::vector<std::function<std::vector<std::string>()>> volume_cells;
  uint64_t ci = 0;
  for (uint64_t r_tuples :
       {uint64_t{1} << 32, uint64_t{14898093260}, uint64_t{16106127360}}) {
    for (index::IndexType type : AllIndexTypes()) {
      volume_cells.push_back([&flags, &sink, ci, r_tuples, type] {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = type;
        cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
        cfg.inlj.window_tuples = uint64_t{4} << 20;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) return std::vector<std::string>{};
        MaybeObserve(sink, **exp);
        sim::RunResult inlj = (*exp)->RunInlj().value();
        {
          // Emit before RunHashJoin resets the shared trace recorder.
          obs::RecordBuilder rec = StartRecord("disc_transfer_volume", cfg);
          rec.AddParam("op", "inlj");
          EmitRun(sink, ci * 2, std::move(rec), inlj, exp->get());
        }
        sim::RunResult hj = (*exp)->RunHashJoin().value();
        {
          obs::RecordBuilder rec = StartRecord("disc_transfer_volume", cfg);
          rec.AddParam("op", "hash_join");
          EmitRun(sink, ci * 2 + 1, std::move(rec), hj, exp->get());
        }
        return std::vector<std::string>{
            GiBStr(r_tuples), index::IndexTypeName(type),
            FormatBytes(
                static_cast<double>(inlj.counters.interconnect_bytes())),
            FormatBytes(
                static_cast<double>(hj.counters.interconnect_bytes())),
            TablePrinter::Num(
                static_cast<double>(hj.counters.interconnect_bytes()) /
                    static_cast<double>(
                        inlj.counters.interconnect_bytes()),
                1) + "x"};
      });
      ++ci;
    }
  }

  std::vector<std::function<std::vector<std::string>()>> drop_cells;
  uint64_t di = 0;
  for (index::IndexType type : AllIndexTypes()) {
    drop_cells.push_back([&flags, &sink, di, type] {
      core::ExperimentConfig below = PaperConfig(flags, uint64_t{1} << 31);
      below.index_type = type;
      below.inlj.mode = core::InljConfig::PartitionMode::kNone;
      auto exp_below = core::Experiment::Create(below);

      core::ExperimentConfig above =
          PaperConfig(flags, uint64_t{16106127360});
      above.index_type = type;
      above.inlj.mode = core::InljConfig::PartitionMode::kNone;
      auto exp_above = core::Experiment::Create(above);

      if (!exp_below.ok() || !exp_above.ok()) {
        return std::vector<std::string>{index::IndexTypeName(type), "-",
                                        "OOM", "-"};
      }
      MaybeObserve(sink, **exp_below);
      MaybeObserve(sink, **exp_above);
      const sim::RunResult below_run = (*exp_below)->RunInlj().value();
      const sim::RunResult above_run = (*exp_above)->RunInlj().value();
      EmitRun(sink, 1000 + di * 2, StartRecord("disc_transfer_volume", below),
              below_run, exp_below->get());
      EmitRun(sink, 1000 + di * 2 + 1,
              StartRecord("disc_transfer_volume", above), above_run,
              exp_above->get());
      const double q_below = below_run.qps();
      const double q_above = above_run.qps();
      return std::vector<std::string>{
          index::IndexTypeName(type), TablePrinter::Num(q_below, 3),
          TablePrinter::Num(q_above, 3),
          TablePrinter::Num(q_below / q_above, 1) + "x"};
    });
    ++di;
  }

  SweepInto(flags, volume_cells, volume);
  SweepInto(flags, drop_cells, drop);

  std::printf("Sec. 6 — transfer volume: windowed INLJ vs hash-join scan\n");
  PrintTable(volume, flags);
  std::printf("\nSec. 6 — naive INLJ throughput drop across the TLB "
              "boundary\n");
  PrintTable(drop, flags);
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
