// Simulator ablation: the TLB interference model (DESIGN.md Sec. 2 and
// GpuSpec::tlb_co_resident_warps). The warp executor is sequential, so
// inter-warp TLB churn is modeled explicitly; this ablation shows how the
// co-resident warp count shapes the Fig. 3/4 cliff — with 0 the cliff is
// far too shallow (only intra-warp thrashing remains), and the effect
// saturates beyond ~64 warps.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;  // beyond 32 GiB

  TablePrinter table({"co-resident warps", "binary tr/key", "binary Q/s",
                      "harmonia tr/key", "harmonia Q/s"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (int warps : {0, 4, 16, 64, 256}) {
    cells.push_back([&flags, &sink, ci, r_tuples, warps] {
      std::vector<std::string> row{std::to_string(warps)};
      uint64_t sub = 0;
      for (index::IndexType type : {index::IndexType::kBinarySearch,
                                    index::IndexType::kHarmonia}) {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = type;
        cfg.platform.gpu.tlb_co_resident_warps = warps;
        cfg.inlj.mode = core::InljConfig::PartitionMode::kNone;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) {
          ++sub;
          continue;
        }
        MaybeObserve(sink, **exp);
        sim::RunResult res = (*exp)->RunInlj().value();
        row.push_back(TablePrinter::Num(res.translations_per_key(), 2));
        row.push_back(TablePrinter::Num(res.qps(), 3));
        obs::RecordBuilder rec = StartRecord("ablation_tlb_model", cfg);
        rec.AddParam("tlb_co_resident_warps", warps);
        EmitRun(sink, ci * 2 + sub++, std::move(rec), res, exp->get());
      }
      return row;
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Ablation — TLB co-resident-warp interference model, naive "
              "INLJ, R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
