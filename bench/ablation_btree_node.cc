// Ablation: B+tree node size (paper Sec. 3.1 discusses the trade-off:
// smaller nodes span fewer cachelines but deepen the tree). Sweeps the
// node size on the windowed INLJ at R = 100 GiB.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"node bytes", "tree height", "Q/s",
                      "host random read"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (uint32_t node_bytes : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    cells.push_back([&flags, &sink, ci, r_tuples, node_bytes] {
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.index_type = index::IndexType::kBTree;
      cfg.btree.node_bytes = node_bytes;
      cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
      cfg.inlj.window_tuples = uint64_t{4} << 20;
      auto exp = core::Experiment::Create(cfg);
      if (!exp.ok()) {
        return std::vector<std::string>{std::to_string(node_bytes), "-",
                                        "OOM", "-"};
      }
      MaybeObserve(sink, **exp);
      const auto& btree =
          static_cast<const index::BTreeIndex&>((*exp)->index());
      sim::RunResult res = (*exp)->RunInlj().value();
      obs::RecordBuilder rec = StartRecord("ablation_btree_node", cfg);
      rec.AddParam("node_bytes", uint64_t{node_bytes});
      rec.AddParam("tree_height", btree.height());
      EmitRun(sink, ci, std::move(rec), res, exp->get());
      return std::vector<std::string>{
          std::to_string(node_bytes), std::to_string(btree.height()),
          TablePrinter::Num(res.qps(), 3),
          FormatBytes(
              static_cast<double>(res.counters.host_random_read_bytes))};
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Ablation — B+tree node size, windowed INLJ, R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
