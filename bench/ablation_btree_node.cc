// Ablation: B+tree node size (paper Sec. 3.1 discusses the trade-off:
// smaller nodes span fewer cachelines but deepen the tree). Sweeps the
// node size on the windowed INLJ at R = 100 GiB.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"node bytes", "tree height", "Q/s",
                      "host random read"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  for (uint32_t node_bytes : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    cells.push_back([&flags, r_tuples, node_bytes] {
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.index_type = index::IndexType::kBTree;
      cfg.btree.node_bytes = node_bytes;
      cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
      cfg.inlj.window_tuples = uint64_t{4} << 20;
      auto exp = core::Experiment::Create(cfg);
      if (!exp.ok()) {
        return std::vector<std::string>{std::to_string(node_bytes), "-",
                                        "OOM", "-"};
      }
      const auto& btree =
          static_cast<const index::BTreeIndex&>((*exp)->index());
      sim::RunResult res = (*exp)->RunInlj().value();
      return std::vector<std::string>{
          std::to_string(node_bytes), std::to_string(btree.height()),
          TablePrinter::Num(res.qps(), 3),
          FormatBytes(
              static_cast<double>(res.counters.host_random_read_bytes))};
    });
  }
  for (auto& row : core::RunSweep(SweepThreads(flags), cells)) {
    table.AddRow(std::move(row));
  }

  std::printf("Ablation — B+tree node size, windowed INLJ, R = 100 GiB\n");
  PrintTable(table, flags);
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
