// Serving-mode latency sweep: an open-loop arrival process feeds the
// windowed INLJ through the micro-batcher (serve::RequestServer) and we
// sweep the offered load against the calibrated service capacity. Each
// point reports the per-request sojourn-time percentiles (p50/p95/p99 of
// a log-bucketed histogram), the achieved throughput, and how the
// serving layer degraded: deadline- vs size-closed batches, adaptive
// batch growth/shrink, and requests shed by admission control once the
// backlog bound is hit.
//
// The batch pipeline answers "how fast can one query scan S"; this bench
// answers the serving question behind it — what latency does windowed
// partitioning buy at a given request rate, and what happens past
// saturation (shed load, bounded tails) instead of unbounded queueing.

#include "bench/bench_common.h"

#include "obs/robustness.h"
#include "plan/backend.h"
#include "plan/metrics.h"
#include "serve/server.h"

namespace gpujoin::bench {
namespace {

core::ExperimentConfig BaseConfig(const Flags& flags) {
  // R = 8 GiB, radix-spline index, windowed partitioning — the fault
  // ablation's working point, which keeps one sweep under a second.
  core::ExperimentConfig cfg = PaperConfig(flags, uint64_t{1} << 30);
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  return cfg;
}

serve::ArrivalModel ParseArrival(const std::string& name) {
  if (name == "deterministic") return serve::ArrivalModel::kDeterministic;
  if (name == "onoff") return serve::ArrivalModel::kOnOff;
  return serve::ArrivalModel::kPoisson;
}

std::string Ms(double seconds) {
  return TablePrinter::Num(seconds * 1e3, 3);
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("arrival", "poisson",
                     "arrival model: poisson | onoff | deterministic");
  flags.DefineInt64("requests", 20000, "requests per rate point",
                    /*min=*/1, /*max=*/int64_t{1} << 32);
  flags.DefineInt64("tuples_per_request", 4096,
                    "probe tuples carried by each request",
                    /*min=*/1, /*max=*/int64_t{1} << 24);
  flags.DefineInt64("batch_tuples", int64_t{1} << 19,
                    "initial micro-batch size in tuples (4 MiB of keys)",
                    /*min=*/32, /*max=*/int64_t{1} << 26);
  flags.DefineDouble("deadline_ms", 0.0,
                     "batch close deadline in simulated ms (0 = half the "
                     "calibrated single-window service time)",
                     /*min=*/0.0, /*max=*/1e6);
  flags.DefineBool("adaptive", true,
                   "adapt the batch size to the observed queue depth");
  flags.DefineInt64("max_backlog_tuples", int64_t{1} << 23,
                    "admission bound on pending + in-flight tuples "
                    "(0 = never shed)",
                    /*min=*/0, /*max=*/int64_t{1} << 40);
  flags.DefineString("planner", "static",
                     "per-batch plan routing: static (fixed windowed "
                     "radix-spline) | adaptive | oracle");
  flags.DefineDouble("request-deadline-ms", 0.0,
                     "per-request deadline budget in simulated ms: doomed "
                     "requests are shed before dispatch, late ones count "
                     "as deadline misses (0 = no deadlines)",
                     /*min=*/0.0, /*max=*/1e6);
  flags.DefineInt64("retry-cap", 0,
                    "seeded-backoff retries per batch slice before the "
                    "batch is shed (0 = first backend error stays fatal)",
                    /*min=*/0, /*max=*/32);
  flags.DefineDouble("hedge-after", 0.0,
                     "hedge a slice to the replica plan once the primary "
                     "runs past this many simulated ms (0 = no hedging)",
                     /*min=*/0.0, /*max=*/1e6);
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const std::string planner_name = flags.GetString("planner");
  auto planner_mode = plan::ParsePlannerMode(planner_name);
  if (!planner_mode.ok()) {
    std::fprintf(stderr, "%s\n", planner_mode.status().ToString().c_str());
    return 1;
  }

  const uint64_t tpr =
      static_cast<uint64_t>(flags.GetInt64("tuples_per_request"));
  const uint64_t batch_tuples =
      static_cast<uint64_t>(flags.GetInt64("batch_tuples"));

  // Calibrate the service capacity: the cost-model time of one
  // batch_tuples window, measured on a fresh experiment. The sweep's
  // load axis is expressed as multiples of the resulting tuples/s.
  double window_service = 0;
  double capacity_tps = 0;
  {
    auto exp = core::Experiment::Create(BaseConfig(flags));
    if (!exp.ok()) {
      std::fprintf(stderr, "%s\n", exp.status().ToString().c_str());
      return 1;
    }
    (*exp)->ResetForRun();
    const uint64_t cal_tuples =
        std::min(batch_tuples, (*exp)->s().sample_size());
    auto joiner = core::WindowJoiner::Create(
        (*exp)->gpu(), (*exp)->index(), (*exp)->s(),
        BaseConfig(flags).inlj, (*exp)->s().sample_size());
    if (!joiner.ok()) {
      std::fprintf(stderr, "%s\n", joiner.status().ToString().c_str());
      return 1;
    }
    auto run = joiner->RunWindow(0, cal_tuples, 0);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    window_service = run->seconds();
    capacity_tps = static_cast<double>(cal_tuples) / window_service;
    if (sink.active()) {
      obs::RecordBuilder rec = StartRecord("serve_latency",
                                           BaseConfig(flags));
      rec.AddParam("point", "calibration");
      rec.AddParam("batch_tuples", cal_tuples);
      rec.metrics().SetScalar("serve.window_service_seconds",
                              window_service, "s");
      rec.metrics().SetScalar("serve.capacity_tuples_per_sec",
                              capacity_tps, "tuples/s");
      sink.Add(0, rec.ToJsonLine());
    }
  }

  const double deadline =
      flags.GetDouble("deadline_ms") > 0
          ? flags.GetDouble("deadline_ms") * 1e-3
          : 0.5 * window_service;

  TablePrinter table({"load", "req/s", "admitted", "shed", "batches",
                      "by size", "by deadline", "grow", "shrink",
                      "p50 ms", "p95 ms", "p99 ms", "Mtup/s"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  const std::vector<double> loads = {0.1, 0.25, 0.5, 0.75, 0.9,
                                     1.1,  1.5,  2.0};
  uint64_t ci = 0;
  for (double load : loads) {
    cells.push_back([&, ci, load]() -> std::vector<std::string> {
      core::ExperimentConfig cfg = BaseConfig(flags);

      serve::ServeConfig sc;
      sc.arrival.model = ParseArrival(flags.GetString("arrival"));
      sc.arrival.rate = load * capacity_tps / static_cast<double>(tpr);
      sc.arrival.seed =
          static_cast<uint64_t>(flags.GetInt64("seed")) * 1000 + ci;
      sc.batch.batch_tuples = batch_tuples;
      sc.batch.deadline_seconds = deadline;
      sc.batch.adaptive = flags.GetBool("adaptive");
      sc.requests = static_cast<uint64_t>(flags.GetInt64("requests"));
      sc.tuples_per_request = tpr;
      sc.max_backlog_tuples =
          static_cast<uint64_t>(flags.GetInt64("max_backlog_tuples"));
      sc.retry.deadline_seconds =
          flags.GetDouble("request-deadline-ms") * 1e-3;
      sc.retry.retry_cap = static_cast<int>(flags.GetInt64("retry-cap"));
      sc.retry.hedge_after = flags.GetDouble("hedge-after") * 1e-3;
      sc.retry.seed =
          static_cast<uint64_t>(flags.GetInt64("seed")) * 7000 + ci;

      // Static: the pre-planner single-engine path, byte-identical to
      // the committed baselines. Adaptive / oracle: route every
      // micro-batch through the planned backend.
      std::unique_ptr<core::Experiment> exp_holder;
      std::unique_ptr<plan::PlannedBackend> routed;
      Result<serve::ServeReport> report =
          Status::InvalidArgument("unreachable");
      if (*planner_mode == plan::PlannerMode::kStatic) {
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) {
          return {TablePrinter::Num(load, 2), "OOM", "", "", "", "", "",
                  "", "", "", "", "", ""};
        }
        (*exp)->ResetForRun();
        exp_holder = std::move(*exp);
        serve::RequestServer server(exp_holder->gpu(), exp_holder->index(),
                                    exp_holder->s(), cfg.inlj, sc);
        report = server.Run();
      } else {
        plan::PlannedBackendConfig pc;
        pc.base = cfg;
        pc.planner.mode = *planner_mode;
        pc.planner.seed = cfg.seed * 1000 + ci;
        auto backend = plan::PlannedBackend::Create(pc);
        if (!backend.ok()) {
          return {TablePrinter::Num(load, 2), "OOM", "", "", "", "", "",
                  "", "", "", "", "", ""};
        }
        routed = std::move(*backend);
        serve::RequestServer server(*routed, sc);
        report = server.Run();
      }
      if (!report.ok()) {
        std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
        return {TablePrinter::Num(load, 2), "ERROR", "", "", "", "", "",
                "", "", "", "", "", ""};
      }
      const serve::ServeReport& r = *report;

      if (sink.active()) {
        obs::RecordBuilder rec = StartRecord("serve_latency", cfg);
        rec.AddParam("point", "sweep");
        rec.AddParam("arrival_model",
                     serve::ArrivalModelName(sc.arrival.model));
        rec.AddParam("load_multiplier", load);
        rec.AddParam("arrival_rate_rps", sc.arrival.rate);
        rec.AddParam("requests", sc.requests);
        rec.AddParam("tuples_per_request", sc.tuples_per_request);
        rec.AddParam("batch_tuples", sc.batch.batch_tuples);
        rec.AddParam("deadline_seconds", sc.batch.deadline_seconds);
        rec.AddParam("adaptive", sc.batch.adaptive);
        rec.AddParam("max_backlog_tuples", sc.max_backlog_tuples);
        rec.AddParam("planner", planner_name);
        obs::MetricsRegistry& m = rec.metrics();
        m.SetHistogram("serve.latency_seconds", r.latency, "s");
        m.SetCounter("serve.requests_admitted",
                     r.counters.requests_admitted, "1");
        m.SetCounter("serve.requests_shed", r.counters.requests_shed, "1");
        m.SetCounter("serve.batches", r.counters.batches, "1");
        m.SetCounter("serve.size_batches", r.counters.size_batches, "1");
        m.SetCounter("serve.deadline_batches",
                     r.counters.deadline_batches, "1");
        m.SetCounter("serve.window_grows", r.counters.window_grows, "1");
        m.SetCounter("serve.window_shrinks",
                     r.counters.window_shrinks, "1");
        m.SetCounter("serve.tuples_served", r.counters.tuples_served, "1");
        m.SetCounter("serve.final_batch_tuples", r.final_batch_tuples,
                     "1");
        m.SetScalar("serve.sim_seconds", r.sim_seconds, "s");
        m.SetScalar("serve.offered_rate_rps", r.offered_rate, "req/s");
        m.SetScalar("serve.achieved_tuples_per_sec",
                    r.achieved_tuples_per_sec, "tuples/s");
        m.SetScalar("serve.queue_seconds_total", r.queue_seconds_total,
                    "s");
        m.SetScalar("serve.service_seconds_total",
                    r.service_seconds_total, "s");
        if (routed != nullptr) {
          rec.AddSection("planner", plan::PlannerJson(*routed));
        }
        if (sc.retry.enabled()) {
          rec.AddParam("request_deadline_seconds",
                       sc.retry.deadline_seconds);
          rec.AddParam("retry_cap", sc.retry.retry_cap);
          rec.AddParam("hedge_after_seconds", sc.retry.hedge_after);
          rec.AddSection("robustness", obs::RobustnessJson(r.robustness));
        }
        sink.Add(1 + ci, rec.ToJsonLine());
      }

      return {TablePrinter::Num(load, 2),
              TablePrinter::Num(sc.arrival.rate, 0),
              std::to_string(r.counters.requests_admitted),
              std::to_string(r.counters.requests_shed),
              std::to_string(r.counters.batches),
              std::to_string(r.counters.size_batches),
              std::to_string(r.counters.deadline_batches),
              std::to_string(r.counters.window_grows),
              std::to_string(r.counters.window_shrinks),
              Ms(r.latency.Quantile(0.50)),
              Ms(r.latency.Quantile(0.95)),
              Ms(r.latency.Quantile(0.99)),
              TablePrinter::Num(r.achieved_tuples_per_sec * 1e-6, 1)};
    });
    ++ci;
  }
  SweepInto(flags, cells, table);

  std::printf("Serving-mode latency sweep — windowed INLJ behind a "
              "micro-batcher, R = 8 GiB\n");
  std::printf("calibrated: one %llu-tuple window = %.3f ms  "
              "(capacity %.1f Mtup/s); batch deadline %.3f ms\n",
              static_cast<unsigned long long>(batch_tuples),
              window_service * 1e3, capacity_tps * 1e-6, deadline * 1e3);
  PrintTable(table, flags);
  std::printf("\nLoad is offered tuples as a multiple of the calibrated "
              "capacity. Past 1.0x\nadmission control sheds requests to "
              "keep the backlog (and p99) bounded;\nthe adaptive batcher "
              "grows windows toward the 52 MiB end of the sweet\nspot "
              "under queueing and shrinks them back when idle.\n");
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
