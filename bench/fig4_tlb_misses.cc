// Reproduces Fig. 4: GPU address translation requests per lookup key for
// the unpartitioned INLJ, scaling R.
//
// Expected shape (paper Sec. 3.3.2): near zero below the 32 GiB TLB
// range, a sharp spike beyond it; binary search worst, Harmonia best;
// tree-based indexes spike a data point earlier (their persistent state
// adds to the working set).

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  TablePrinter table({"R (GiB)", "btree tr/key", "binary tr/key",
                      "harmonia tr/key", "radix_spline tr/key"});

  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (uint64_t r_tuples : PaperRSizes()) {
    cells.push_back([&flags, &sink, ci, r_tuples] {
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.inlj.mode = core::InljConfig::PartitionMode::kNone;

      std::vector<std::string> row{GiBStr(r_tuples)};
      uint64_t sub = 0;
      for (index::IndexType type : AllIndexTypes()) {
        cfg.index_type = type;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) {
          row.push_back("OOM");
          ++sub;
          continue;
        }
        MaybeObserve(sink, **exp);
        const sim::RunResult result = (*exp)->RunInlj().value();
        row.push_back(TablePrinter::Num(result.translations_per_key(), 3));
        EmitRun(sink, ci * 8 + sub++, StartRecord("fig4_tlb_misses", cfg),
                result, exp->get());
      }
      return row;
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Fig. 4 — address translation requests per lookup "
              "(unpartitioned INLJ)",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
