// Ablation: fully *sorting* the lookup keys vs radix-partitioning them
// (paper Sec. 4.1/4.2). Harmonia's authors improved throughput by sorting
// lookup keys; the paper observes that the most significant bits decide
// the traversal path, which inspires partitioning — strictly cheaper than
// a full sort while capturing the same TLB locality.
//
// This ablation measures, at R = 100 GiB: (a) the join phase with keys in
// random vs fully sorted vs partitioned order — sorted and partitioned
// should both eliminate the TLB misses; and (b) the end-to-end query
// including the reordering cost — an 8-bit-per-pass LSD radix sort moves
// each tuple 8 times where a 2048-way partition moves it once, which is
// why partitioning wins.

#include "bench/bench_common.h"

#include <algorithm>
#include <numeric>

#include "core/join_kernel.h"
#include "partition/radix_partitioner.h"

namespace gpujoin::bench {
namespace {

using workload::Key;

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
  cfg.index_type = index::IndexType::kHarmonia;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kFull;
  // Thinned sampling keeps the random-order baseline's TLB working set
  // faithful (range-restricted samples would hide the thrashing).
  cfg.sample_scheme = core::ExperimentConfig::SampleSchemeOverride::kThinned;
  auto exp = core::Experiment::Create(cfg);
  if (!exp.ok()) {
    std::fprintf(stderr, "%s\n", exp.status().ToString().c_str());
    return 1;
  }
  sim::Gpu& gpu = (*exp)->gpu();
  const auto& s = (*exp)->s();
  const index::Index& index = (*exp)->index();
  mem::AddressSpace& space = gpu.memory().space();
  const double scale = s.scale();
  const uint64_t sample = s.sample_size();

  TablePrinter table({"probe order", "reorder cost", "join Q/s",
                      "end-to-end Q/s", "translations/key"});

  // Runs the join kernel over `keys` (with row ids) living at `region`,
  // after charging `reorder_seconds` of preprocessing. This bench drives
  // the kernel directly (no core::Experiment run), so the JSON record is
  // assembled from a hand-built RunResult; order_key follows call order.
  uint64_t order_key = 0;
  auto run_case = [&](const char* label, const std::vector<Key>& keys,
                      const std::vector<uint64_t>& rows,
                      mem::VirtAddr addr, double reorder_seconds) {
    gpu.memory().ClearHardwareState();
    const mem::Region result =
        space.Reserve(sample * 16, mem::MemKind::kDevice, "sorted.result");
    uint64_t matches = 0;
    sim::KernelRun join = core::internal::RunJoinKernel(
        gpu, index, keys.data(), rows.data(), sample, addr, result.base,
        1.0, &matches);
    join.counters = join.counters.Scaled(scale);
    const double t_join = gpu.TimeOf(join);
    const double total = t_join + reorder_seconds;
    if (sink.active()) {
      sim::RunResult res;
      res.label = label;
      res.seconds = total;
      res.counters = join.counters;
      res.probe_tuples = s.full_size;
      if (reorder_seconds > 0) res.AddStage("reorder", reorder_seconds);
      res.AddStage("join", t_join);
      obs::RecordBuilder rec = StartRecord("ablation_sorted_keys", cfg);
      rec.AddParam("probe_order", label);
      rec.metrics().SetScalar("reorder_seconds", reorder_seconds, "s");
      rec.metrics().SetScalar("join_seconds", t_join, "s");
      EmitRun(sink, order_key++, std::move(rec), res);
    }
    table.AddRow({label,
                  reorder_seconds > 0
                      ? FormatSeconds(reorder_seconds)
                      : std::string("-"),
                  TablePrinter::Num(1.0 / t_join, 3),
                  TablePrinter::Num(1.0 / total, 3),
                  TablePrinter::Num(
                      static_cast<double>(join.counters.translation_requests) /
                          static_cast<double>(s.full_size),
                      3)});
  };

  const mem::Region staged =
      space.Reserve(sample * 16, mem::MemKind::kDevice, "sorted.tuples");
  std::vector<Key> keys(s.keys.begin(), s.keys.end());
  std::vector<uint64_t> rows(sample);
  std::iota(rows.begin(), rows.end(), uint64_t{0});

  // (1) Random (stream) order: no preprocessing.
  run_case("random", keys, rows, staged.base, 0.0);

  // (2) Fully sorted: an 8-bit LSD radix sort = 8 histogram+scatter
  // passes over (key, row) pairs in GPU memory, charged analytically.
  std::vector<uint64_t> order(sample);
  std::iota(order.begin(), order.end(), uint64_t{0});
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    return keys[a] < keys[b];
  });
  std::vector<Key> sorted_keys(sample);
  std::vector<uint64_t> sorted_rows(sample);
  for (uint64_t i = 0; i < sample; ++i) {
    sorted_keys[i] = keys[order[i]];
    sorted_rows[i] = order[i];
  }
  sim::KernelRun sort_cost = gpu.RunRaw("radix_sort", [&](sim::MemoryModel&
                                                              mm) {
    const uint64_t full_bytes = s.full_size * 16;
    const int passes = 8;  // 64-bit keys, 8 bits per pass
    mm.AddHbmTraffic(full_bytes * passes, full_bytes * passes);
    mm.Stream(s.keys.addr_of(0), sample * 8, sim::AccessType::kRead);
  });
  run_case("fully sorted", sorted_keys, sorted_rows, staged.base,
           gpu.TimeOf(sort_cost));

  // (3) Radix partitioned (2048 partitions): one histogram + one scatter.
  partition::RadixPartitioner partitioner(
      partition::PlanPartitionBits(index.column()).value());
  sim::KernelRun part{"partition", {}};
  partition::PartitionedKeys parts =
      partitioner
          .Partition(gpu, keys.data(), sample, s.keys.addr_of(0), 0, &part)
          .value();
  part.counters = part.counters.Scaled(scale);
  run_case("partitioned (2048)", parts.keys, parts.row_ids,
           parts.tuple_addr(0), gpu.TimeOf(part));

  std::printf("Ablation — probe-key ordering (Sec. 4.1/4.2), Harmonia "
              "INLJ, R = 100 GiB\n");
  PrintTable(table, flags);
  std::printf("\nSorting and partitioning both restore TLB locality; "
              "partitioning gets there\nmoving each tuple once instead of "
              "eight times.\n");
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
