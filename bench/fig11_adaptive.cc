// Fig. 11 (extension): adaptive plan routing on a phased adversarial
// workload. Four phases each shift the regime that decides the best
// {index, partition mode, window} plan — uniform probes over a 1 GiB R,
// Zipf-1.75 probes over the same R (cache-resident hot keys), a tiny R
// that fits far inside the TLB range (partitioning is pure overhead),
// and a 64 GiB R at the edge of TLB coverage (unpartitioned probes
// collapse). No single static plan is best in every phase, so the bench
// reports, per phase and in total:
//   * the adaptive planner (one persistent residual model across phases),
//   * the hindsight oracle (run every candidate, charge the cheapest),
//   * every static plan's total (recovered from the oracle's sweep), and
//   * the regret curve adaptive/oracle over the batch stream.
// The acceptance bar is adaptive >= 0.90x the oracle's throughput while
// beating every static plan over the full stream.

#include <cinttypes>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/json.h"
#include "plan/backend.h"
#include "plan/metrics.h"

namespace gpujoin::bench {
namespace {

struct Phase {
  const char* name;
  uint64_t r_tuples;
  double zipf;
};

// The adversarial schedule. Phase order matters: the planner enters each
// phase with residuals learned under the previous regime and must adapt.
constexpr Phase kPhases[] = {
    {"uniform", uint64_t{1} << 27, 0.0},
    {"zipf175", uint64_t{1} << 27, 1.75},
    {"tiny_r", uint64_t{1} << 16, 0.0},
    {"huge_r", uint64_t{1} << 33, 0.0},
};

// One batch's ledger entry for the regret curve.
struct BatchLedger {
  std::string phase;
  uint64_t ordinal = 0;
  double adaptive_seconds = 0;
  double oracle_seconds = 0;
};

core::ExperimentConfig PhaseConfig(const Flags& flags, const Phase& phase,
                                   uint64_t sample) {
  core::ExperimentConfig cfg;
  cfg.r_tuples = phase.r_tuples;
  cfg.s_tuples = uint64_t{1} << 26;
  cfg.s_sample = sample;
  cfg.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  cfg.zipf_exponent = phase.zipf;
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  return cfg;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt64("batches_per_phase", 8, "probe batches in each phase",
                    /*min=*/1, /*max=*/256);
  flags.DefineInt64("batch_tuples", int64_t{1} << 17,
                    "probe tuples per routed batch (1 MiB of keys)",
                    /*min=*/1024, /*max=*/int64_t{1} << 22);
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t batches =
      static_cast<uint64_t>(flags.GetInt64("batches_per_phase"));
  const uint64_t batch_tuples =
      static_cast<uint64_t>(flags.GetInt64("batch_tuples"));
  const uint64_t sample = batches * batch_tuples;

  // One planner survives all phases: its residual corrections and
  // exploration counters carry across the R/skew regime changes.
  plan::PlannerConfig shared_cfg;
  shared_cfg.mode = plan::PlannerMode::kAdaptive;
  shared_cfg.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  plan::Planner shared_planner(shared_cfg);

  TablePrinter table({"phase", "R", "zipf", "adaptive s", "oracle s",
                      "best static s", "best static plan", "adp/oracle"});

  // Static totals keyed by plan name, in the oracle's (deterministic)
  // enumeration order. The oracle runs with pruning disabled, so every
  // static plan is priced on every batch of every phase.
  std::vector<std::string> static_order;
  std::map<std::string, double> static_totals;
  std::vector<BatchLedger> ledger;
  double adaptive_total = 0;
  double oracle_total = 0;
  uint64_t order = 0;
  uint64_t ordinal = 0;

  for (const Phase& phase : kPhases) {
    const core::ExperimentConfig cfg = PhaseConfig(flags, phase, sample);

    plan::PlannedBackendConfig oracle_cfg;
    oracle_cfg.base = cfg;
    oracle_cfg.space.prune = false;
    oracle_cfg.planner.mode = plan::PlannerMode::kOracle;
    oracle_cfg.planner.seed = cfg.seed;
    oracle_cfg.oracle_threads = SweepThreads(flags);
    auto oracle = plan::PlannedBackend::Create(oracle_cfg);
    if (!oracle.ok()) {
      std::fprintf(stderr, "%s\n", oracle.status().ToString().c_str());
      return 1;
    }

    plan::PlannedBackendConfig adaptive_cfg;
    adaptive_cfg.base = cfg;
    adaptive_cfg.planner = shared_cfg;
    auto adaptive = plan::PlannedBackend::Create(adaptive_cfg,
                                                 &shared_planner);
    if (!adaptive.ok()) {
      std::fprintf(stderr, "%s\n", adaptive.status().ToString().c_str());
      return 1;
    }

    std::map<std::string, double> phase_statics;
    for (uint64_t b = 0; b < batches; ++b, ++ordinal) {
      auto oracle_out =
          (*oracle)->RouteSlice(b * batch_tuples, batch_tuples, ordinal);
      if (!oracle_out.ok()) {
        std::fprintf(stderr, "%s\n",
                     oracle_out.status().ToString().c_str());
        return 1;
      }
      auto adaptive_out =
          (*adaptive)->RouteSlice(b * batch_tuples, batch_tuples, ordinal);
      if (!adaptive_out.ok()) {
        std::fprintf(stderr, "%s\n",
                     adaptive_out.status().ToString().c_str());
        return 1;
      }
      // Same slice, same R: whichever plan each side picked, the match
      // count is a pure function of the data.
      if (adaptive_out->matches != oracle_out->matches) {
        std::fprintf(stderr,
                     "match divergence at batch %" PRIu64
                     ": adaptive %" PRIu64 " (%s) vs oracle %" PRIu64
                     " (%s)\n",
                     ordinal, adaptive_out->matches,
                     adaptive_out->chosen.Name().c_str(),
                     oracle_out->matches,
                     oracle_out->chosen.Name().c_str());
        return 1;
      }
      for (const auto& [name, seconds] : oracle_out->candidate_seconds) {
        if (static_totals.emplace(name, 0.0).second) {
          static_order.push_back(name);
        }
        static_totals[name] += seconds;
        phase_statics[name] += seconds;
      }
      ledger.push_back({phase.name, ordinal, adaptive_out->charged_seconds,
                        oracle_out->charged_seconds});
    }

    const double phase_adaptive = (*adaptive)->total_seconds();
    const double phase_oracle = (*oracle)->total_seconds();
    adaptive_total += phase_adaptive;
    oracle_total += phase_oracle;

    std::string phase_best;
    double phase_best_seconds = 0;
    for (const std::string& name : static_order) {
      auto it = phase_statics.find(name);
      if (it == phase_statics.end()) continue;
      if (phase_best.empty() || it->second < phase_best_seconds) {
        phase_best = name;
        phase_best_seconds = it->second;
      }
    }

    table.AddRow({phase.name,
                  TablePrinter::Num(static_cast<double>(phase.r_tuples) * 8 /
                                        static_cast<double>(kGiB),
                                    2) +
                      " GiB",
                  TablePrinter::Num(phase.zipf, 2),
                  TablePrinter::Num(phase_adaptive, 4),
                  TablePrinter::Num(phase_oracle, 4),
                  TablePrinter::Num(phase_best_seconds, 4), phase_best,
                  TablePrinter::Num(
                      phase_oracle > 0 ? phase_adaptive / phase_oracle : 0,
                      3) +
                      "x"});

    if (sink.active()) {
      obs::RecordBuilder orec = StartRecord("fig11_adaptive", cfg);
      orec.AddParam("point", "phase");
      orec.AddParam("phase", phase.name);
      orec.AddParam("planner", "oracle");
      orec.AddParam("batches", batches);
      orec.AddParam("batch_tuples", batch_tuples);
      orec.AddSection("planner", plan::PlannerJson(**oracle));
      sink.Add(order++, orec.ToJsonLine());

      obs::RecordBuilder arec = StartRecord("fig11_adaptive", cfg);
      arec.AddParam("point", "phase");
      arec.AddParam("phase", phase.name);
      arec.AddParam("planner", "adaptive");
      arec.AddParam("batches", batches);
      arec.AddParam("batch_tuples", batch_tuples);
      arec.AddSection("planner", plan::PlannerJson(**adaptive));
      sink.Add(order++, arec.ToJsonLine());
    }
  }

  std::string best_static;
  double best_static_seconds = 0;
  for (const std::string& name : static_order) {
    const double seconds = static_totals.at(name);
    if (best_static.empty() || seconds < best_static_seconds) {
      best_static = name;
      best_static_seconds = seconds;
    }
  }
  const double regret =
      oracle_total > 0 ? adaptive_total / oracle_total : 0;

  table.AddRow({"total", "", "", TablePrinter::Num(adaptive_total, 4),
                TablePrinter::Num(oracle_total, 4),
                TablePrinter::Num(best_static_seconds, 4), best_static,
                TablePrinter::Num(regret, 3) + "x"});

  if (sink.active()) {
    obs::RecordBuilder rec =
        StartRecord("fig11_adaptive", PhaseConfig(flags, kPhases[0], sample));
    rec.AddParam("point", "summary");
    rec.AddParam("batches", batches);
    rec.AddParam("batch_tuples", batch_tuples);
    rec.AddParam("best_static_plan", best_static);
    obs::MetricsRegistry& m = rec.metrics();
    m.SetScalar("plan.adaptive_seconds", adaptive_total, "s");
    m.SetScalar("plan.oracle_seconds", oracle_total, "s");
    m.SetScalar("plan.best_static_seconds", best_static_seconds, "s");
    m.SetScalar("plan.regret_ratio", regret, "1");

    obs::JsonWriter statics;
    statics.BeginArray();
    for (const std::string& name : static_order) {
      statics.BeginObject();
      statics.Key("plan").String(name);
      statics.Key("seconds").Double(static_totals.at(name));
      statics.EndObject();
    }
    statics.EndArray();
    rec.AddSection("statics", statics.TakeString());

    obs::JsonWriter curve;
    curve.BeginArray();
    double cum_adaptive = 0;
    double cum_oracle = 0;
    for (const BatchLedger& entry : ledger) {
      cum_adaptive += entry.adaptive_seconds;
      cum_oracle += entry.oracle_seconds;
      curve.BeginObject();
      curve.Key("ordinal").Uint(entry.ordinal);
      curve.Key("phase").String(entry.phase);
      curve.Key("adaptive_seconds").Double(entry.adaptive_seconds);
      curve.Key("oracle_seconds").Double(entry.oracle_seconds);
      curve.Key("cum_adaptive_seconds").Double(cum_adaptive);
      curve.Key("cum_oracle_seconds").Double(cum_oracle);
      curve.Key("regret_ratio")
          .Double(cum_oracle > 0 ? cum_adaptive / cum_oracle : 0);
      curve.EndObject();
    }
    curve.EndArray();
    rec.AddSection("regret_curve", curve.TakeString());
    sink.Add(order++, rec.ToJsonLine());
  }

  std::printf("Fig. 11 — adaptive plan routing vs hindsight oracle vs "
              "static plans,\nphased workload (%" PRIu64
              " batches x %" PRIu64 " tuples per phase)\n",
              batches, batch_tuples);
  PrintTable(table, flags);
  std::printf("\nThe oracle runs every candidate on every batch and "
              "charges the cheapest;\nstatic totals are recovered from "
              "that sweep. The adaptive planner routes one\nplan per "
              "batch from corrected cost predictions and must beat every "
              "static\nwhile staying within 1.11x of the oracle.\n");
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
