// Reproduces Table 1: overview of interconnect receive bandwidth, plus the
// achievable-rate model parameters this simulator derives from them.

#include <vector>

#include "bench/bench_common.h"
#include "sim/specs.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;

  const std::vector<std::pair<std::string, sim::InterconnectSpec>> rows = {
      {"various", sim::PciE4()},
      {"various", sim::PciE5()},
      {"AMD MI250X", sim::InfinityFabric3()},
      {"NVIDIA V100", sim::NvLink2()},
      {"NVIDIA GH200", sim::NvLinkC2C()},
  };

  TablePrinter table({"GPU", "Interconnect", "Bandwidth (GB/s)",
                      "model seq (GB/s)", "model random (GB/s)",
                      "translation (us)"});
  for (const auto& [gpu, ic] : rows) {
    table.AddRow({gpu, ic.name, TablePrinter::Num(ic.peak_bandwidth / 1e9, 0),
                  TablePrinter::Num(ic.seq_bandwidth / 1e9, 0),
                  TablePrinter::Num(ic.random_bandwidth / 1e9, 0),
                  TablePrinter::Num(ic.translation_latency * 1e6, 1)});
  }

  std::printf("Table 1 — interconnect receive bandwidth\n");
  PrintTable(table, flags);
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
