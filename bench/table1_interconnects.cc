// Reproduces Table 1: overview of interconnect receive bandwidth, plus the
// achievable-rate model parameters this simulator derives from them.

#include <vector>

#include "bench/bench_common.h"
#include "sim/specs.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const std::vector<std::pair<std::string, sim::InterconnectSpec>> rows = {
      {"various", sim::PciE4()},
      {"various", sim::PciE5()},
      {"AMD MI250X", sim::InfinityFabric3()},
      {"NVIDIA V100", sim::NvLink2()},
      {"NVIDIA GH200", sim::NvLinkC2C()},
  };

  TablePrinter table({"GPU", "Interconnect", "Bandwidth (GB/s)",
                      "model seq (GB/s)", "model random (GB/s)",
                      "translation (us)"});
  uint64_t ci = 0;
  for (const auto& [gpu, ic] : rows) {
    table.AddRow({gpu, ic.name, TablePrinter::Num(ic.peak_bandwidth / 1e9, 0),
                  TablePrinter::Num(ic.seq_bandwidth / 1e9, 0),
                  TablePrinter::Num(ic.random_bandwidth / 1e9, 0),
                  TablePrinter::Num(ic.translation_latency * 1e6, 1)});
    if (sink.active()) {
      // No experiment behind this table: emit the model parameters as a
      // params-only record per interconnect.
      obs::RecordBuilder rec{"table1_interconnects"};
      rec.AddParam("gpu", gpu);
      rec.AddParam("interconnect", ic.name);
      rec.AddParam("peak_bandwidth", ic.peak_bandwidth);
      rec.AddParam("seq_bandwidth", ic.seq_bandwidth);
      rec.AddParam("random_bandwidth", ic.random_bandwidth);
      rec.AddParam("translation_latency", ic.translation_latency);
      sink.Add(ci, rec.ToJsonLine());
    }
    ++ci;
  }

  std::printf("Table 1 — interconnect receive bandwidth\n");
  PrintTable(table, flags);
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
