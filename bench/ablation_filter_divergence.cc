// Ablation: filter divergence (paper Sec. 3.3.1, citing Funke & Teubner
// [18]). The paper's main workload deliberately has no probe-side filter
// so all warp lanes stay busy; this ablation adds a filter of varying
// selectivity in front of the windowed INLJ. Because warps are not
// compacted, filtered-out lanes idle alongside surviving ones: throughput
// in *output tuples per second* degrades sub-linearly at first (free
// rides on the survivors' cachelines) and the query rate saturates well
// below 1/selectivity.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"filter keeps", "Q/s", "result tuples",
                      "interconnect", "Mlookups/s effective"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (double selectivity : {1.0, 0.5, 0.25, 0.1, 0.05, 0.01}) {
    cells.push_back([&flags, &sink, ci, r_tuples, selectivity] {
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.index_type = index::IndexType::kRadixSpline;
      cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
      cfg.inlj.window_tuples = uint64_t{4} << 20;
      cfg.inlj.probe_filter_selectivity = selectivity;
      auto exp = core::Experiment::Create(cfg);
      if (!exp.ok()) return std::vector<std::string>{};
      MaybeObserve(sink, **exp);
      sim::RunResult res = (*exp)->RunInlj().value();
      obs::RecordBuilder rec = StartRecord("ablation_filter_divergence", cfg);
      rec.AddParam("probe_filter_selectivity", selectivity);
      EmitRun(sink, ci, std::move(rec), res, exp->get());
      return std::vector<std::string>{
          TablePrinter::Num(100 * selectivity, 0) + "%",
          TablePrinter::Num(res.qps(), 3),
          FormatCount(static_cast<double>(res.result_tuples)),
          FormatBytes(
              static_cast<double>(res.counters.interconnect_bytes())),
          TablePrinter::Num(static_cast<double>(res.result_tuples) /
                                res.seconds / 1e6,
                            1)};
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Ablation — filter divergence on the probe side, RadixSpline "
              "windowed INLJ, R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
