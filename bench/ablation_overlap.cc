// Ablation: concurrent kernel execution (paper Sec. 5.1). The windowed
// pipeline runs the partition and join kernels on two CUDA streams so
// window t's partitioning overlaps window t-1's join; this ablation
// measures the pipeline with and without that overlap across window
// sizes.

#include "bench/bench_common.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table({"window (MiB)", "overlapped Q/s", "serial Q/s",
                      "speedup"});
  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (int log_w = 18; log_w <= 26; log_w += 2) {
    cells.push_back([&flags, &sink, ci, r_tuples, log_w] {
      const uint64_t window = uint64_t{1} << log_w;
      double qps[2] = {0, 0};
      for (int overlap = 0; overlap < 2; ++overlap) {
        core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
        cfg.index_type = index::IndexType::kRadixSpline;
        cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
        cfg.inlj.window_tuples = window;
        cfg.inlj.overlap = overlap == 1;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) continue;
        MaybeObserve(sink, **exp);
        const sim::RunResult res = (*exp)->RunInlj().value();
        qps[overlap] = res.qps();
        obs::RecordBuilder rec = StartRecord("ablation_overlap", cfg);
        rec.AddParam("window_tuples", cfg.inlj.window_tuples);
        rec.AddParam("overlap", cfg.inlj.overlap);
        EmitRun(sink, ci * 2 + static_cast<uint64_t>(overlap),
                std::move(rec), res, exp->get());
      }
      // A failed Experiment::Create leaves its qps slot at 0; dividing
      // through would print inf/nan in the speedup column.
      return std::vector<std::string>{
          TablePrinter::Num(static_cast<double>(window * 8) / kMiB, 0),
          TablePrinter::Num(qps[1], 3), TablePrinter::Num(qps[0], 3),
          qps[0] > 0 ? TablePrinter::Num(qps[1] / qps[0], 2) + "x"
                     : std::string("n/a")};
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Ablation — concurrent kernel execution (transfer/compute "
              "overlap), RadixSpline INLJ, R = 100 GiB",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
