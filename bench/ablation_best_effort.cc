// Related-work comparison (paper Sec. 2.3): best-effort partitioning
// (Zukowski et al. [12]) vs the paper's windowed partitioning, on the
// out-of-core INLJ at R = 100 GiB. Both avoid materializing the input;
// they differ in how tuples regain locality — long-lived per-partition
// buckets joined on fill (BEP) vs transient tumbling windows partitioned
// wholesale. BEP pays a kernel launch per bucket flush and keeps
// partitions x bucket_tuples of state; windowed partitioning pipelines
// two kernels per window.

#include "bench/bench_common.h"

#include "core/best_effort.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  const uint64_t r_tuples = uint64_t{100} * kGiB / 8;

  TablePrinter table(
      {"strategy", "config", "Q/s", "host random read", "launches"});

  // One cell per index type; each cell owns its Experiment across the
  // windowed run and the BEP bucket sweep and returns its block of rows.
  std::vector<std::function<std::vector<std::vector<std::string>>()>>
      cells;
  uint64_t ci = 0;
  for (index::IndexType type : {index::IndexType::kHarmonia,
                                index::IndexType::kRadixSpline}) {
    cells.push_back([&flags, &sink, ci, r_tuples, type] {
      std::vector<std::vector<std::string>> rows;
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.index_type = type;
      cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
      cfg.inlj.window_tuples = uint64_t{4} << 20;
      auto exp = core::Experiment::Create(cfg);
      if (!exp.ok()) return rows;
      MaybeObserve(sink, **exp);
      sim::RunResult windowed = (*exp)->RunInlj().value();
      {
        obs::RecordBuilder rec = StartRecord("ablation_best_effort", cfg);
        rec.AddParam("strategy", "windowed");
        EmitRun(sink, ci * 8, std::move(rec), windowed, exp->get());
      }
      rows.push_back(
          {std::string("windowed/") + index::IndexTypeName(type),
           "32 MiB", TablePrinter::Num(windowed.qps(), 3),
           FormatBytes(static_cast<double>(
               windowed.counters.host_random_read_bytes)),
           FormatCount(
               static_cast<double>(windowed.counters.kernel_launches))});

      uint64_t sub = 1;
      for (uint32_t bucket : {512u, 2048u, 8192u}) {
        core::BestEffortConfig bep;
        bep.bucket_tuples = bucket;
        (*exp)->gpu().memory().ClearHardwareState();
        sim::RunResult res = core::BestEffortInlj::Run(
            (*exp)->gpu(), (*exp)->index(), (*exp)->s(), bep);
        // Emitted without the experiment: the trace/timeline accumulate
        // across the whole cell, so per-run attribution is only valid for
        // the run the Experiment itself drove.
        obs::RecordBuilder rec = StartRecord("ablation_best_effort", cfg);
        rec.AddParam("strategy", "best_effort");
        rec.AddParam("bucket_tuples", uint64_t{bucket});
        EmitRun(sink, ci * 8 + sub++, std::move(rec), res);
        rows.push_back(
            {std::string("best-effort/") + index::IndexTypeName(type),
             std::to_string(bucket) + " t/bucket",
             TablePrinter::Num(res.qps(), 3),
             FormatBytes(
                 static_cast<double>(res.counters.host_random_read_bytes)),
             FormatCount(
                 static_cast<double>(res.counters.kernel_launches))});
      }
      return rows;
    });
    ++ci;
  }
  for (auto& rows : core::RunSweep(SweepThreads(flags), cells)) {
    for (auto& row : rows) table.AddRow(std::move(row));
  }

  std::printf("Related work — best-effort partitioning [12] vs windowed "
              "partitioning, R = 100 GiB\n");
  PrintTable(table, flags);
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
