// Ablation: fault rate x recovery policy. The paper pitches windowed
// partitioning as robust (skew, interconnects); this ablation asks what
// happens when the *fabric itself* misbehaves — transient translation
// timeouts, retried remote reads, link-retraining episodes, failed device
// allocations — injected deterministically by sim::FaultInjector.
//
// Two policies run the same faulty workload:
//  * graceful  — bounded retry with backoff, spill-chained buckets,
//    window shrinking, unpartitioned fallback (core::RecoveryPolicy
//    defaults). Recovery work is charged as simulated time, so Q/s
//    degrades smoothly with the fault rate.
//  * fail-stop — zero retry budget and every recovery path off: the
//    pre-fault-model behaviour, where the first fault kills the query.
//
// A second table isolates the skew path: heavy Zipf keys under
// single-pass bucket sizing (bucket_slack > 0) overflow the hot buckets;
// spill chaining keeps the join exact while fail-stop aborts.

#include "bench/bench_common.h"

#include "sim/fault.h"

namespace gpujoin::bench {
namespace {

core::ExperimentConfig BaseConfig(const Flags& flags) {
  // R = 8 GiB keeps the sweep quick while still out-of-core in spirit;
  // the windowed INLJ with the paper's 32 MiB window.
  core::ExperimentConfig cfg = PaperConfig(flags, uint64_t{1} << 30);
  cfg.index_type = index::IndexType::kRadixSpline;
  cfg.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  cfg.inlj.window_tuples = uint64_t{4} << 20;
  return cfg;
}

// One knob for the sweep: the three per-event classes at `rate`, plus
// degradation episodes at rate/1000 per host line (episodes are macro
// events — one covers thousands of lines, so an equal per-line rate
// would degrade the whole stream at any swept point).
sim::FaultConfig FaultAt(double rate) {
  sim::FaultConfig f;
  f.translation_timeout_rate = rate;
  f.remote_read_error_rate = rate;
  f.alloc_failure_rate = rate;
  f.degradation_episode_rate = rate / 1000.0;
  return f;
}

std::string QpsOrAbort(const Result<sim::RunResult>& res) {
  if (!res.ok()) return "ABORT";
  return TablePrinter::Num(res.value().qps(), 3);
}

std::string RateStr(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  // Fault-free baseline for the "% of fault-free" column.
  double baseline_qps = 0;
  {
    auto exp = core::Experiment::Create(BaseConfig(flags));
    if (!exp.ok()) {
      std::fprintf(stderr, "%s\n", exp.status().ToString().c_str());
      return 1;
    }
    MaybeObserve(sink, **exp);
    const sim::RunResult baseline = (*exp)->RunInlj().value();
    baseline_qps = baseline.qps();
    obs::RecordBuilder rec =
        StartRecord("ablation_fault_recovery", BaseConfig(flags));
    rec.AddParam("policy", "baseline");
    EmitRun(sink, 0, std::move(rec), baseline, exp->get());
  }

  // --- fault rate x recovery policy -----------------------------------
  TablePrinter rate_table({"fault rate", "graceful Q/s", "vs fault-free",
                           "faults", "retries", "backoff ms",
                           "degraded MiB", "fail-stop Q/s"});
  std::vector<std::function<std::vector<std::string>()>> rate_cells;
  uint64_t ci = 0;
  for (double rate : {0.0, 1e-5, 1e-4, 1e-3}) {
    rate_cells.push_back([&flags, &sink, ci, baseline_qps, rate] {
      core::ExperimentConfig graceful = BaseConfig(flags);
      graceful.fault = FaultAt(rate);
      auto exp = core::Experiment::Create(graceful);
      MaybeObserve(sink, **exp);
      sim::RunResult res = (*exp)->RunInlj().value();
      {
        obs::RecordBuilder rec = StartRecord("ablation_fault_recovery",
                                             graceful);
        rec.AddParam("policy", "graceful");
        rec.AddParam("fault_rate", rate);
        EmitRun(sink, 10 + ci * 4, std::move(rec), res, exp->get());
      }

      core::ExperimentConfig failstop = BaseConfig(flags);
      failstop.fault = FaultAt(rate);
      failstop.fault.max_retries = 0;  // first transient fault is fatal
      failstop.inlj.recovery = core::RecoveryPolicy::FailStop();
      auto fs_exp = core::Experiment::Create(failstop);
      MaybeObserve(sink, **fs_exp);
      auto fs = (*fs_exp)->RunInlj();
      if (fs.ok()) {
        obs::RecordBuilder rec = StartRecord("ablation_fault_recovery",
                                             failstop);
        rec.AddParam("policy", "fail_stop");
        rec.AddParam("fault_rate", rate);
        EmitRun(sink, 10 + ci * 4 + 1, std::move(rec), fs.value(),
                fs_exp->get());
      }

      const sim::CounterSet& c = res.counters;
      return std::vector<std::string>{
          RateStr(rate),
          TablePrinter::Num(res.qps(), 3),
          TablePrinter::Num(100.0 * res.qps() / baseline_qps, 1) + "%",
          std::to_string(c.faults_injected),
          std::to_string(c.fault_retries),
          TablePrinter::Num(
              static_cast<double>(c.fault_backoff_nanos) * 1e-6, 2),
          TablePrinter::Num(static_cast<double>(c.degraded_host_bytes) /
                                static_cast<double>(kMiB),
                            1),
          QpsOrAbort(fs)};
    });
    ++ci;
  }
  SweepInto(flags, rate_cells, rate_table);

  // --- skew x bucket-sizing policy ------------------------------------
  // Single-pass bucket sizing (slack 1.25x the average) against heavy
  // Zipf: the hot partitions overflow. Spill chaining absorbs it; the
  // fail-stop sizing aborts.
  TablePrinter skew_table({"zipf", "exact Q/s", "spill Q/s",
                           "spilled tuples", "spill buckets",
                           "fail-stop Q/s"});
  std::vector<std::function<std::vector<std::string>()>> skew_cells;
  uint64_t si = 0;
  for (double zipf : {0.0, 1.75}) {
    skew_cells.push_back([&flags, &sink, si, zipf] {
      core::ExperimentConfig exact = BaseConfig(flags);
      exact.zipf_exponent = zipf;
      auto exact_exp = core::Experiment::Create(exact);
      MaybeObserve(sink, **exact_exp);
      sim::RunResult exact_res = (*exact_exp)->RunInlj().value();
      {
        obs::RecordBuilder rec = StartRecord("ablation_fault_recovery",
                                             exact);
        rec.AddParam("policy", "exact");
        EmitRun(sink, 100 + si * 4, std::move(rec), exact_res,
                exact_exp->get());
      }

      core::ExperimentConfig spill = exact;
      spill.inlj.bucket_slack = 1.25;
      auto spill_exp = core::Experiment::Create(spill);
      MaybeObserve(sink, **spill_exp);
      sim::RunResult spill_res = (*spill_exp)->RunInlj().value();
      {
        obs::RecordBuilder rec = StartRecord("ablation_fault_recovery",
                                             spill);
        rec.AddParam("policy", "spill");
        rec.AddParam("bucket_slack", spill.inlj.bucket_slack);
        EmitRun(sink, 100 + si * 4 + 1, std::move(rec), spill_res,
                spill_exp->get());
      }

      core::ExperimentConfig failstop = spill;
      failstop.inlj.recovery = core::RecoveryPolicy::FailStop();
      auto fs_exp = core::Experiment::Create(failstop);
      MaybeObserve(sink, **fs_exp);
      auto fs = (*fs_exp)->RunInlj();
      if (fs.ok()) {
        obs::RecordBuilder rec = StartRecord("ablation_fault_recovery",
                                             failstop);
        rec.AddParam("policy", "fail_stop");
        rec.AddParam("bucket_slack", failstop.inlj.bucket_slack);
        EmitRun(sink, 100 + si * 4 + 2, std::move(rec), fs.value(),
                fs_exp->get());
      }

      return std::vector<std::string>{
          TablePrinter::Num(zipf, 2),
          TablePrinter::Num(exact_res.qps(), 3),
          TablePrinter::Num(spill_res.qps(), 3),
          std::to_string(spill_res.spilled_tuples),
          std::to_string(spill_res.spill_buckets),
          QpsOrAbort(fs)};
    });
    ++si;
  }
  SweepInto(flags, skew_cells, skew_table);

  std::printf("Ablation — fault rate x recovery policy, windowed INLJ "
              "(32 MiB window), R = 8 GiB\n");
  PrintTable(rate_table, flags);
  std::printf("\nSkew x bucket-sizing policy (single-pass sizing, slack "
              "1.25x)\n");
  PrintTable(skew_table, flags);
  std::printf("\nGraceful recovery pays for faults with simulated time "
              "(retries, backoff,\ndegraded bandwidth) and keeps the join "
              "exact; fail-stop loses the query\nto the first "
              "unrecovered fault.\n");
  if (!sink.Flush()) return 1;
  return 0;
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
