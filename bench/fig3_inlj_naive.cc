// Reproduces Fig. 3: query throughput of the textbook (unpartitioned)
// INLJ for all four index structures vs the hash-join baseline, scaling
// R from 0.5 to 120 GiB with |S| fixed at 2^26 tuples.
//
// Expected shape (paper Sec. 3.3.1): the INLJs collapse once R exceeds
// the GPU's 32 GiB TLB range; the hash join declines smoothly with the
// growing table-scan volume and stays on top.

#include "bench/bench_common.h"

#include "core/experiment.h"

namespace gpujoin::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseBenchFlags(flags, argc, argv)) return 0;
  MetricsSink sink(flags);

  TablePrinter table({"R (GiB)", "selectivity", "btree Q/s", "binary Q/s",
                      "harmonia Q/s", "radix_spline Q/s", "hash_join Q/s"});

  // One sweep cell per R size; cells are independent and run
  // concurrently under --threads, with rows emitted in R order.
  std::vector<std::function<std::vector<std::string>()>> cells;
  uint64_t ci = 0;
  for (uint64_t r_tuples : PaperRSizes()) {
    cells.push_back([&flags, &sink, ci, r_tuples] {
      core::ExperimentConfig cfg = PaperConfig(flags, r_tuples);
      cfg.inlj.mode = core::InljConfig::PartitionMode::kNone;

      std::vector<std::string> row;
      row.push_back(GiBStr(r_tuples));
      row.push_back(TablePrinter::Num(
          100.0 * static_cast<double>(cfg.s_tuples) /
              static_cast<double>(r_tuples),
          2) + "%");

      sim::RunResult hj;
      bool have_hj = false;
      uint64_t sub = 0;
      for (index::IndexType type : AllIndexTypes()) {
        cfg.index_type = type;
        auto exp = core::Experiment::Create(cfg);
        if (!exp.ok()) {
          // B+tree / Harmonia exceed the machine's 256 GiB CPU memory at
          // the largest R (paper Sec. 3.2: "size limit of R is
          // reduced").
          row.push_back("OOM");
          ++sub;
          continue;
        }
        MaybeObserve(sink, **exp);
        const sim::RunResult inlj = (*exp)->RunInlj().value();
        row.push_back(TablePrinter::Num(inlj.qps(), 3));
        EmitRun(sink, ci * 8 + sub++, StartRecord("fig3_inlj_naive", cfg),
                inlj, exp->get());
        if (!have_hj) {
          hj = (*exp)->RunHashJoin().value();
          have_hj = true;
          EmitRun(sink, ci * 8 + 7, StartRecord("fig3_inlj_naive", cfg), hj,
                  exp->get());
        }
      }
      row.push_back(TablePrinter::Num(hj.qps(), 3));
      return row;
    });
    ++ci;
  }
  return FinishBench(flags, cells, table,
                     "Fig. 3 — INLJ (no partitioning) vs hash join, V100 + "
              "NVLink 2.0, |S| = 2^26",
                     sink);
}

}  // namespace
}  // namespace gpujoin::bench

int main(int argc, char** argv) { return gpujoin::bench::Main(argc, argv); }
