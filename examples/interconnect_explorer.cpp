// Scenario: the same selective join on three generations of hardware —
// A100 over PCI-e 4.0, V100 over NVLink 2.0, and a GH200 with NVLink C2C
// (Table 1). Shows how the interconnect's random-access capability, not
// its headline bandwidth alone, determines whether out-of-core index
// lookups are viable (the paper's Sec. 5.2.3 / Table 1 discussion).

#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "util/table_printer.h"
#include "util/units.h"

using namespace gpujoin;

int main() {
  const uint64_t r_tuples = uint64_t{1} << 33;  // 64 GiB

  std::printf("workload: 2^26 probes into a 64 GiB RadixSpline-indexed "
              "relation in CPU memory\n\n");

  TablePrinter table({"platform", "interconnect", "peak GB/s", "INLJ Q/s",
                      "hash join Q/s", "INLJ speedup"});

  for (const sim::PlatformSpec& platform :
       {sim::A100PciE4(), sim::V100NvLink2(), sim::GH200C2C()}) {
    core::ExperimentConfig config;
    config.platform = platform;
    config.r_tuples = r_tuples;
    config.s_sample = uint64_t{1} << 18;
    config.index_type = index::IndexType::kRadixSpline;
    config.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
    config.inlj.window_tuples = uint64_t{4} << 20;

    auto experiment = core::Experiment::Create(config);
    if (!experiment.ok()) {
      std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
      return 1;
    }
    sim::RunResult inlj = (*experiment)->RunInlj().value();
    sim::RunResult hj = (*experiment)->RunHashJoin().value();

    table.AddRow({platform.gpu.name, platform.interconnect.name,
                  TablePrinter::Num(
                      platform.interconnect.peak_bandwidth / 1e9, 0),
                  TablePrinter::Num(inlj.qps(), 3),
                  TablePrinter::Num(hj.qps(), 3),
                  TablePrinter::Num(inlj.qps() / hj.qps(), 1) + "x"});
  }

  table.Print(stdout);
  std::printf("\nFaster interconnects widen the index join's lead: "
              "cacheline-granular\nlookups profit from random-access "
              "bandwidth far more than the hash join's\nsequential scan "
              "profits from peak bandwidth.\n");
  return 0;
}
