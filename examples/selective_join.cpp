// Scenario: a selective warehouse join, in the spirit of TPC-H Q4/Q12
// (the queries that motivate the paper — a large input joined once, with
// low join selectivity).
//
// An `orders`-like relation (the big, indexed side) is joined with a
// filtered `lineitem`-like probe side whose size is what a selective
// predicate would leave over. The example sweeps the predicate
// selectivity and shows where the access-path decision flips between the
// hash join's table scan and the windowed INLJ's index lookups — the
// paper's crossover (Sec. 5.2.3 / Sec. 6: INLJ wins below ~8%
// selectivity on NVLink).

#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "util/table_printer.h"
#include "util/units.h"

using namespace gpujoin;

int main() {
  // The big relation: 12 billion orders (~90 GiB of keys), indexed in CPU
  // memory; the GPU reaches it across NVLink 2.0.
  const uint64_t orders = uint64_t{12} << 30;

  std::printf("orders : %s keys (%s), RadixSpline-indexed in CPU memory\n",
              FormatCount(static_cast<double>(orders)).c_str(),
              FormatBytes(static_cast<double>(orders * 8)).c_str());
  std::printf("query  : SELECT ... FROM lineitem JOIN orders ON o_orderkey "
              "WHERE <predicate>\n\n");

  TablePrinter table({"predicate keeps", "probe tuples", "INLJ Q/s",
                      "hash join Q/s", "winner"});

  for (uint64_t probe_log : {20, 22, 24, 26, 28, 30}) {
    const uint64_t probe_tuples = uint64_t{1} << probe_log;

    core::ExperimentConfig config;
    config.r_tuples = orders;
    config.s_tuples = probe_tuples;
    config.s_sample = std::min<uint64_t>(probe_tuples, uint64_t{1} << 18);
    config.index_type = index::IndexType::kRadixSpline;
    config.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
    config.inlj.window_tuples = uint64_t{4} << 20;

    auto experiment = core::Experiment::Create(config);
    if (!experiment.ok()) {
      std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
      return 1;
    }
    sim::RunResult inlj = (*experiment)->RunInlj().value();
    Result<sim::RunResult> hj = (*experiment)->RunHashJoin();

    std::string hj_cell;
    std::string winner;
    if (hj.ok()) {
      hj_cell = TablePrinter::Num(hj->qps(), 3);
      winner = inlj.qps() > hj->qps() ? "index join" : "hash join";
    } else {
      // Building on the "smaller" side no longer fits GPU memory — the
      // hash join would need out-of-core state (Lutz et al. [30]).
      hj_cell = "HT > GPU memory";
      winner = "index join";
    }
    table.AddRow(
        {TablePrinter::Num(100.0 * static_cast<double>(probe_tuples) /
                               static_cast<double>(orders),
                           3) + "%",
         FormatCount(static_cast<double>(probe_tuples)),
         TablePrinter::Num(inlj.qps(), 3), hj_cell, winner});
  }

  table.Print(stdout);
  std::printf(
      "\nAt high selectivity (few surviving probe tuples) the index join "
      "skips\nalmost the entire orders relation; as the predicate widens, "
      "the hash\njoin's sequential scan eventually wins — the access-path "
      "choice the\npaper's Sec. 6 recommends making on selectivity.\n");
  return 0;
}
