// Scenario: a power-law workload (Fig. 8). Event streams, social graphs
// and retail orders all probe a dimension table with Zipf-distributed
// foreign keys. This example shows the two failure/success modes the
// paper demonstrates:
//
//   * the windowed INLJ *benefits* from skew — hot keys concentrate into
//     hot cachelines on the GPU, so fewer bytes cross the interconnect;
//   * the hash-join baseline *collapses* — its multi-value hash table
//     degenerates into per-key chains whose tail-append walks grow
//     quadratically (the paper aborted the run after ten hours).

#include <cstdio>

#include "core/experiment.h"
#include "util/table_printer.h"
#include "util/units.h"

using namespace gpujoin;

int main() {
  const uint64_t dimension_rows = uint64_t{100} * kGiB / 8;  // 100 GiB

  std::printf("dimension : %s rows (100 GiB), Harmonia-indexed in CPU "
              "memory\n",
              FormatCount(static_cast<double>(dimension_rows)).c_str());
  std::printf("probes    : 2^26 foreign keys, Zipf-distributed\n\n");

  TablePrinter table({"zipf exponent", "INLJ Q/s", "INLJ transfer",
                      "hash join"});

  for (double exponent : {0.0, 0.5, 1.0, 1.5, 1.75}) {
    core::ExperimentConfig config;
    config.r_tuples = dimension_rows;
    config.s_sample = uint64_t{1} << 18;
    config.zipf_exponent = exponent;
    config.index_type = index::IndexType::kHarmonia;
    config.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
    config.inlj.window_tuples = uint64_t{4} << 20;

    auto experiment = core::Experiment::Create(config);
    if (!experiment.ok()) {
      std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
      return 1;
    }
    sim::RunResult inlj = (*experiment)->RunInlj().value();
    sim::RunResult hj = (*experiment)->RunHashJoin().value();

    std::string hj_cell;
    if (hj.seconds > 3600) {
      hj_cell = "DNF (" + TablePrinter::Num(hj.seconds / 3600, 1) +
                " h — chain degeneration)";
    } else {
      hj_cell = TablePrinter::Num(hj.qps(), 3) + " Q/s";
    }
    table.AddRow(
        {TablePrinter::Num(exponent, 2), TablePrinter::Num(inlj.qps(), 3),
         FormatBytes(static_cast<double>(inlj.counters.interconnect_bytes())),
         hj_cell});
  }

  table.Print(stdout);
  std::printf("\nSkew helps the index join (hot keys stay in GPU caches) "
              "and breaks the\nmulti-value hash join — choose the INLJ when "
              "the key distribution is heavy-tailed.\n");
  return 0;
}
