// Quickstart: index an out-of-core relation on the simulated GPU platform
// and run a windowed-partitioning index-nested-loop join against it.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks through the three layers of the library:
//   1. the simulated platform (GPU + fast interconnect),
//   2. the workload (a 64 GiB indexed relation R, probe keys S),
//   3. the join (the paper's windowed-partitioning INLJ vs a hash join).

#include <cstdio>

#include "core/experiment.h"
#include "util/units.h"

using namespace gpujoin;

int main() {
  // --- 1. Pick a platform: a V100 attached over NVLink 2.0 (the paper's
  // machine). The platform defines interconnect bandwidths, cache sizes
  // and the GPU TLB range — the quantities that decide whether indexing
  // out-of-core data pays off.
  core::ExperimentConfig config;
  config.platform = sim::V100NvLink2();

  // --- 2. Define the workload: R holds 2^33 sorted unique 8-byte keys
  // (64 GiB — twice the GPU's TLB range) in CPU memory; S holds 2^26
  // foreign keys into R. The simulator materializes a sample of S and
  // extrapolates, so this runs in seconds on a laptop.
  config.r_tuples = uint64_t{1} << 33;
  config.s_tuples = uint64_t{1} << 26;
  config.s_sample = uint64_t{1} << 18;

  // --- 3. Choose the index and the join strategy: a RadixSpline over R,
  // probed through the windowed-partitioning INLJ with the paper's 32 MiB
  // tumbling windows.
  config.index_type = index::IndexType::kRadixSpline;
  config.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  config.inlj.window_tuples = uint64_t{4} << 20;

  auto experiment = core::Experiment::Create(config);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }

  std::printf("platform : %s\n", config.platform.name.c_str());
  std::printf("R        : %s of %s keys, indexed by %s (%s of index "
              "state)\n",
              FormatBytes(static_cast<double>(config.r_tuples * 8)).c_str(),
              FormatCount(static_cast<double>(config.r_tuples)).c_str(),
              (*experiment)->index().name().c_str(),
              FormatBytes(static_cast<double>(
                              (*experiment)->index().footprint_bytes()))
                  .c_str());
  std::printf("S        : %s probe keys (join selectivity %.2f%%)\n\n",
              FormatCount(static_cast<double>(config.s_tuples)).c_str(),
              100.0 * static_cast<double>(config.s_tuples) /
                  static_cast<double>(config.r_tuples));

  sim::RunResult inlj = (*experiment)->RunInlj().value();
  sim::RunResult hash_join = (*experiment)->RunHashJoin().value();

  auto report = [](const char* name, const sim::RunResult& res) {
    std::printf("%-24s %8.3f Q/s   %10s over the interconnect   %s result "
                "tuples\n",
                name, res.qps(),
                FormatBytes(static_cast<double>(
                                res.counters.interconnect_bytes()))
                    .c_str(),
                FormatCount(static_cast<double>(res.result_tuples)).c_str());
  };
  report("windowed INLJ:", inlj);
  report("hash join (baseline):", hash_join);

  std::printf("\nThe index turns the join's full table scan into selective "
              "lookups:\n%.1fx less data crosses the interconnect and the "
              "query runs %.1fx faster.\n",
              static_cast<double>(hash_join.counters.interconnect_bytes()) /
                  static_cast<double>(inlj.counters.interconnect_bytes()),
              inlj.qps() / hash_join.qps());
  return 0;
}
