// Anatomy of an out-of-core index join: attach the access-trace recorder
// to the simulated GPU and dissect *which data structure* causes which
// traffic during a windowed-partitioning INLJ — the per-region view
// behind the paper's transfer-volume arguments (Sec. 6).

#include <cstdio>

#include "core/experiment.h"
#include "sim/trace.h"
#include "util/units.h"

using namespace gpujoin;

int main() {
  core::ExperimentConfig config;
  config.r_tuples = uint64_t{1} << 33;  // 64 GiB
  config.s_sample = uint64_t{1} << 17;
  config.index_type = index::IndexType::kHarmonia;
  config.inlj.mode = core::InljConfig::PartitionMode::kWindowed;
  config.inlj.window_tuples = uint64_t{4} << 20;

  auto experiment = core::Experiment::Create(config);
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }

  sim::TraceRecorder trace(&(*experiment)->gpu().memory().space());
  (*experiment)->gpu().memory().SetObserver(&trace);
  sim::RunResult res = (*experiment)->RunInlj().value();
  (*experiment)->gpu().memory().SetObserver(nullptr);

  std::printf("windowed INLJ over a Harmonia index, R = 64 GiB "
              "(sampled run)\n");
  std::printf("query: %.3f Q/s, %s over the interconnect (full scale)\n\n",
              res.qps(),
              FormatBytes(static_cast<double>(
                              res.counters.interconnect_bytes()))
                  .c_str());

  std::printf("per-structure traffic of the sampled run:\n%s\n",
              trace.Summary().c_str());

  std::printf(
      "Reading the anatomy: the Harmonia key regions absorb most of the\n"
      "transactions (tree descent), with high L1/L2 shares thanks to the\n"
      "partitioned probe order; the probe stream and partition buffers\n"
      "move as bulk streams; the per-tuple remote traffic that remains is\n"
      "what the interconnect model charges at the random-access rate.\n");
  return 0;
}
