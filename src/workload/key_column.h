#ifndef GPUJOIN_WORKLOAD_KEY_COLUMN_H_
#define GPUJOIN_WORKLOAD_KEY_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/address_space.h"
#include "mem/sim_array.h"
#include "util/rng.h"

namespace gpujoin::workload {

// Join keys are single 8-byte integer attributes (paper Sec. 3.2).
using Key = int64_t;

// A sorted column of unique keys — the indexed base relation R.
//
// The large-scale experiments index up to 120 GiB of keys, which cannot be
// materialized on the simulation host. KeyColumn therefore abstracts over
// two implementations:
//  * MaterializedKeyColumn — real std::vector storage (tests, examples,
//    small relations);
//  * procedural columns (DenseKeyColumn, JitteredKeyColumn) — key(i) is a
//    pure function of i, so a 120 GiB relation occupies only simulated
//    address space. Procedural columns are what make the out-of-core
//    sweeps possible on a laptop-class machine.
//
// Every column reserves a region in the simulated address space so that
// the hardware model sees the same addresses the real system would.
class KeyColumn {
 public:
  virtual ~KeyColumn() = default;

  virtual uint64_t size() const = 0;

  // Key at position i. Keys are strictly increasing in i.
  virtual Key key_at(uint64_t i) const = 0;

  // Simulated virtual address of element i.
  virtual mem::VirtAddr addr_of(uint64_t i) const = 0;

  virtual std::string name() const = 0;

  Key min_key() const { return key_at(0); }
  Key max_key() const { return key_at(size() - 1); }
  uint64_t size_bytes() const { return size() * sizeof(Key); }

  // Lower bound: smallest position p with key_at(p) >= key, or size() if
  // none. Functional only (no hardware accounting) — used for ground truth
  // and by procedural index construction.
  uint64_t LowerBound(Key key) const;
};

// key(i) = first_key + i * stride. Dense sorted keys (stride 1) are the
// common primary-key layout.
class DenseKeyColumn : public KeyColumn {
 public:
  DenseKeyColumn(mem::AddressSpace* space, uint64_t n, Key first_key = 0,
                 Key stride = 1);

  uint64_t size() const override { return n_; }
  Key key_at(uint64_t i) const override {
    return first_key_ + static_cast<Key>(i) * stride_;
  }
  mem::VirtAddr addr_of(uint64_t i) const override {
    return region_.base + i * sizeof(Key);
  }
  std::string name() const override { return "dense"; }

  Key stride() const { return stride_; }

 private:
  mem::Region region_;
  uint64_t n_;
  Key first_key_;
  Key stride_;
};

// key(i) = i * stride + hash(i) % stride: strictly increasing, unique,
// locally irregular. Exercises non-trivial interpolation error in learned
// indexes while staying procedural.
class JitteredKeyColumn : public KeyColumn {
 public:
  JitteredKeyColumn(mem::AddressSpace* space, uint64_t n, Key stride = 16,
                    uint64_t seed = 42);

  uint64_t size() const override { return n_; }
  Key key_at(uint64_t i) const override {
    return static_cast<Key>(i) * stride_ +
           static_cast<Key>(SplitMix64(i ^ seed_) % static_cast<uint64_t>(stride_));
  }
  mem::VirtAddr addr_of(uint64_t i) const override {
    return region_.base + i * sizeof(Key);
  }
  std::string name() const override { return "jittered"; }

  Key stride() const { return stride_; }

 private:
  mem::Region region_;
  uint64_t n_;
  Key stride_;
  uint64_t seed_;
};

// Fully materialized sorted unique keys.
class MaterializedKeyColumn : public KeyColumn {
 public:
  // `keys` must be strictly increasing; CHECK-enforced.
  MaterializedKeyColumn(mem::AddressSpace* space, std::vector<Key> keys);

  uint64_t size() const override { return keys_.size(); }
  Key key_at(uint64_t i) const override { return keys_[i]; }
  mem::VirtAddr addr_of(uint64_t i) const override {
    return keys_.addr_of(i);
  }
  std::string name() const override { return "materialized"; }

 private:
  mem::SimArray<Key> keys_;
};

// Generates n sorted unique pseudo-random keys (gaps uniform in
// [1, max_gap]).
std::vector<Key> GenerateSortedUniqueKeys(uint64_t n, uint64_t seed,
                                          Key max_gap = 8);

}  // namespace gpujoin::workload

#endif  // GPUJOIN_WORKLOAD_KEY_COLUMN_H_
