#include "workload/key_column.h"

#include "util/check.h"

namespace gpujoin::workload {

uint64_t KeyColumn::LowerBound(Key key) const {
  uint64_t lo = 0;
  uint64_t hi = size();
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (key_at(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

DenseKeyColumn::DenseKeyColumn(mem::AddressSpace* space, uint64_t n,
                               Key first_key, Key stride)
    : region_(space->Reserve(n * sizeof(Key), mem::MemKind::kHost,
                             "R.dense_keys")),
      n_(n),
      first_key_(first_key),
      stride_(stride) {
  GPUJOIN_CHECK(n > 0);
  GPUJOIN_CHECK(stride > 0);
}

JitteredKeyColumn::JitteredKeyColumn(mem::AddressSpace* space, uint64_t n,
                                     Key stride, uint64_t seed)
    : region_(space->Reserve(n * sizeof(Key), mem::MemKind::kHost,
                             "R.jittered_keys")),
      n_(n),
      stride_(stride),
      seed_(seed) {
  GPUJOIN_CHECK(n > 0);
  GPUJOIN_CHECK(stride > 1) << "jitter requires stride > 1";
}

MaterializedKeyColumn::MaterializedKeyColumn(mem::AddressSpace* space,
                                             std::vector<Key> keys)
    : keys_(space, keys.size(), mem::MemKind::kHost, "R.keys") {
  GPUJOIN_CHECK(!keys.empty());
  for (size_t i = 1; i < keys.size(); ++i) {
    GPUJOIN_CHECK(keys[i - 1] < keys[i])
        << "keys must be strictly increasing at position " << i;
  }
  keys_.data() = std::move(keys);
}

std::vector<Key> GenerateSortedUniqueKeys(uint64_t n, uint64_t seed,
                                          Key max_gap) {
  GPUJOIN_CHECK(max_gap >= 1);
  std::vector<Key> keys(n);
  Xoshiro256 rng(seed);
  Key current = 0;
  for (uint64_t i = 0; i < n; ++i) {
    current += 1 + static_cast<Key>(
                       rng.NextBounded(static_cast<uint64_t>(max_gap)));
    keys[i] = current;
  }
  return keys;
}

}  // namespace gpujoin::workload
