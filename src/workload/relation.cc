#include "workload/relation.h"

#include <algorithm>

#include "util/check.h"
#include "workload/zipf.h"

namespace gpujoin::workload {

ProbeRelation MakeProbeRelation(mem::AddressSpace* space, const KeyColumn& r,
                                const ProbeConfig& config) {
  GPUJOIN_CHECK(config.sample_size > 0);
  GPUJOIN_CHECK(config.sample_size <= config.full_size);

  ProbeRelation probe;
  probe.keys = mem::SimArray<Key>(space, config.sample_size,
                                  mem::MemKind::kHost, "S.keys");
  probe.true_positions.resize(config.sample_size);
  probe.full_size = config.full_size;
  probe.scheme = config.scheme;

  Xoshiro256 rng(config.seed);
  uint64_t n = r.size();
  uint64_t base_pos = 0;
  if (config.scheme == SampleScheme::kRangeRestricted) {
    // Full-density sampling over a contiguous 1/scale slice of R.
    const uint64_t span = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(n) *
                                 static_cast<double>(config.sample_size) /
                                 static_cast<double>(config.full_size)));
    base_pos = span < n ? SplitMix64(config.seed * 31) % (n - span + 1) : 0;
    n = span;
  }
  if (config.zipf_exponent <= 0) {
    for (uint64_t i = 0; i < config.sample_size; ++i) {
      const uint64_t pos = base_pos + rng.NextBounded(n);
      probe.keys[i] = r.key_at(pos);
      probe.true_positions[i] = pos;
    }
  } else {
    // Zipf over ranks; ranks are scattered across R with a hash
    // permutation so hot keys are not clustered at the front of R.
    ZipfSampler zipf(n, config.zipf_exponent);
    for (uint64_t i = 0; i < config.sample_size; ++i) {
      const uint64_t rank = zipf.Sample(rng);
      const uint64_t pos =
          base_pos +
          SplitMix64(rank ^ (config.seed * 0x5851f42d4c957f2dULL)) % n;
      probe.keys[i] = r.key_at(pos);
      probe.true_positions[i] = pos;
    }
  }
  return probe;
}

}  // namespace gpujoin::workload
