#ifndef GPUJOIN_WORKLOAD_ZIPF_H_
#define GPUJOIN_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "util/rng.h"

namespace gpujoin::workload {

// Zipf-distributed rank sampler over {0, ..., n-1} using Hörmann's
// rejection-inversion method (as in Apache Commons RNG). O(1) per sample
// with no per-element tables, which matters because the paper's skew
// experiment (Fig. 8) draws from up to 2^33.9 ranks.
//
// exponent == 0 degenerates to the uniform distribution; the paper sweeps
// exponents 0–1.75.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent);

  // Draws a rank in [0, n). Rank 0 is the most frequent.
  uint64_t Sample(Xoshiro256& rng) const;

  uint64_t n() const { return n_; }
  double exponent() const { return exponent_; }

  // Expected probability of the most frequent rank (used by the hash-join
  // skew model to size the hottest duplicate chain analytically).
  double HottestProbability() const;

 private:
  double H(double x) const;           // integral of x^-s
  double HInverse(double x) const;
  double Pmf(double x) const;         // x^-s

  uint64_t n_;
  double exponent_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace gpujoin::workload

#endif  // GPUJOIN_WORKLOAD_ZIPF_H_
