#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace gpujoin::workload {

namespace {

// log1p(x)/x, continuous at 0.
double Helper1(double x) { return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2 + x * x / 3; }

// expm1(x)/x, continuous at 0.
double Helper2(double x) { return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2 + x * x / 6; }

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  GPUJOIN_CHECK(n >= 1);
  GPUJOIN_CHECK(exponent >= 0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - Pmf(2.0));
}

double ZipfSampler::H(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - exponent_) * log_x) * log_x;
}

double ZipfSampler::HInverse(double x) const {
  double t = x * (1.0 - exponent_);
  if (t < -1.0) t = -1.0;
  return std::exp(Helper1(t) * x);
}

double ZipfSampler::Pmf(double x) const {
  return std::exp(-exponent_ * std::log(x));
}

uint64_t ZipfSampler::Sample(Xoshiro256& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - Pmf(kd)) {
      return k - 1;  // 0-based rank
    }
  }
}

double ZipfSampler::HottestProbability() const {
  // The sampler draws rank k with probability k^-s / H_{n,s} exactly, so
  // the hottest rank's frequency is 1 / H_{n,s}. Approximating H_{n,s} by
  // the rejection-inversion integral alone (H(n+0.5) - H(0.5)) is ~1% off
  // around the s = 1 singularity — the midpoint rule is worst on the
  // first, steepest terms. Sum those terms exactly and use the integral
  // only for the flat tail, where its error is negligible; the tail goes
  // through the same Taylor-guarded helpers as sampling, so s = 1 is not
  // special.
  static constexpr uint64_t kExactHead = 1024;
  const uint64_t head = std::min(n_, kExactHead);
  double sum = 0;
  for (uint64_t k = 1; k <= head; ++k) sum += Pmf(static_cast<double>(k));
  if (head < n_) sum += h_n_ - H(static_cast<double>(head) + 0.5);
  return 1.0 / sum;
}

}  // namespace gpujoin::workload
