#ifndef GPUJOIN_WORKLOAD_RELATION_H_
#define GPUJOIN_WORKLOAD_RELATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/address_space.h"
#include "mem/sim_array.h"
#include "workload/key_column.h"

namespace gpujoin::workload {

// The probe-side relation S: foreign keys into R, drawn uniformly (or
// Zipf-skewed, Fig. 8) from R. The paper fixes |S| = 2^26 tuples
// (512 MiB); the simulator materializes a sample of `sample_size` tuples
// and extrapolates counters to `full_size` (see DESIGN.md Sec. 2).
// How the probe sample represents the full |S| (see DESIGN.md Sec. 2).
//
//  * kThinned — sample_size independent draws over ALL of R. The sampled
//    stream has the same per-key locality as the full one, but 1/scale of
//    its density: right for the *unpartitioned* INLJ, whose behaviour is
//    driven by the random working set.
//  * kRangeRestricted — full-density draws restricted to a contiguous
//    1/scale slice of R's key range. Partition populations, cache sharing
//    within a partition, and per-window densities then match the full
//    query exactly: right for the partitioned/windowed INLJ, whose
//    behaviour is driven by per-partition key density.
enum class SampleScheme { kThinned, kRangeRestricted };

struct ProbeRelation {
  mem::SimArray<Key> keys;  // host memory, the sampled probe keys
  // Ground-truth position in R of each sampled key (for validation).
  std::vector<uint64_t> true_positions;
  uint64_t full_size = 0;
  SampleScheme scheme = SampleScheme::kThinned;

  uint64_t sample_size() const { return keys.size(); }
  double scale() const {
    return static_cast<double>(full_size) / static_cast<double>(keys.size());
  }
};

struct ProbeConfig {
  uint64_t full_size = uint64_t{1} << 26;  // |S| (paper Sec. 3.2)
  uint64_t sample_size = uint64_t{1} << 20;
  SampleScheme scheme = SampleScheme::kThinned;
  // 0 = uniform; > 0 = Zipf-distributed ranks scattered over R (Fig. 8).
  double zipf_exponent = 0;
  uint64_t seed = 1;
};

// Draws S from R per the paper's workload: every S key exists in R.
ProbeRelation MakeProbeRelation(mem::AddressSpace* space, const KeyColumn& r,
                                const ProbeConfig& config);

}  // namespace gpujoin::workload

#endif  // GPUJOIN_WORKLOAD_RELATION_H_
