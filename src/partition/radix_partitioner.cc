#include "partition/radix_partitioner.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/phase.h"
#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::partition {

Result<RadixPartitionSpec> PlanPartitionBits(
    const workload::KeyColumn& column, int max_bits, int ignore_lsb) {
  const Key max_key = column.max_key();
  if (max_key <= 0) {
    // A zero-width key domain (all-zeros column, or a single key 0) has
    // nothing to partition on; plan the trivial single-bucket layout
    // instead of failing, so such columns still run under FailStop().
    return RadixPartitionSpec{.bits = 1, .shift = 0};
  }
  const int key_bits =
      bits::Log2Floor(static_cast<uint64_t>(max_key)) + 1;
  RadixPartitionSpec spec;
  spec.bits = std::clamp(key_bits - ignore_lsb, 1, max_bits);
  spec.shift = key_bits - spec.bits;
  return spec;
}

Result<PartitionedKeys> RadixPartitioner::Partition(
    sim::Gpu& gpu, const Key* keys, uint64_t count, mem::VirtAddr src_addr,
    uint64_t first_row_id, sim::KernelRun* run,
    const PartitionOptions& options) const {
  if (count == 0) {
    return Status::InvalidArgument("cannot partition an empty key range");
  }
  const uint32_t p = spec_.num_partitions();
  mem::AddressSpace& space = gpu.memory().space();

  PartitionedKeys out;
  out.keys.resize(count);
  out.row_ids.resize(count);
  Result<mem::Region> region = gpu.memory().TryReserve(
      count * 16, mem::MemKind::kDevice, "partitioned.tuples");
  if (!region.ok()) return region.status();
  out.region = *region;
  out.offsets.assign(p + 1, 0);

  // Histogram first: bucket sizing (and the spill traffic it may cause)
  // must be known before the cost kernel charges the passes.
  std::vector<uint64_t> histogram(p, 0);
  for (uint64_t i = 0; i < count; ++i) {
    ++histogram[spec_.PartitionOf(keys[i])];
  }

  // Single-pass bucket sizing (bucket_slack > 0): partitions whose tuple
  // count exceeds the pre-sized bucket overflow into spill chains.
  uint64_t spilled = 0;
  uint64_t spill_buckets = 0;
  if (options.bucket_slack > 0) {
    // Buckets are sized at slack x the mean *populated* partition.
    // Normalizing by populated (not total) partitions keeps the model
    // faithful under range-restricted probe sampling, where the sample
    // occupies only the partitions of its key subrange: uniform keys
    // then fill each populated bucket to about the mean and never
    // overflow, while a skewed hot partition still blows past its cap.
    uint64_t populated = 0;
    for (uint32_t b = 0; b < p; ++b) populated += histogram[b] > 0 ? 1 : 0;
    const uint64_t cap = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               static_cast<double>(count) /
               static_cast<double>(populated > 0 ? populated : 1) *
               options.bucket_slack)));
    uint32_t worst = 0;
    uint64_t worst_count = 0;
    for (uint32_t b = 0; b < p; ++b) {
      if (histogram[b] <= cap) continue;
      const uint64_t excess = histogram[b] - cap;
      spilled += excess;
      spill_buckets += bits::CeilDiv(excess, cap);
      if (histogram[b] > worst_count) {
        worst_count = histogram[b];
        worst = b;
      }
    }
    if (spilled > 0 && !options.spill_on_overflow) {
      return Status::ResourceExhausted(
          "partition bucket overflow: partition " + std::to_string(worst) +
          " holds " + std::to_string(worst_count) +
          " tuples but the bucket capacity is " + std::to_string(cap) +
          " (" + std::to_string(spilled) + " tuples over, spilling off)");
    }
    if (spilled > 0) {
      out.spilled_tuples = spilled;
      out.spill_buckets = spill_buckets;
      // The spill chains are a device allocation like the main tuple
      // region: route it through TryReserve so an injected allocation
      // failure surfaces as ResourceExhausted and takes the recovery
      // ladder, instead of silently bypassing fault injection.
      Result<mem::Region> spill_region = gpu.memory().TryReserve(
          spill_buckets * cap * 16, mem::MemKind::kDevice,
          "partitioned.spill");
      if (!spill_region.ok()) return spill_region.status();
      out.spill_region = *spill_region;
    }
  }

  const bool host_source =
      space.KindOf(src_addr) == mem::MemKind::kHost;

  sim::KernelRun kernel = gpu.RunRaw("radix_partition", [&](sim::MemoryModel&
                                                                mm) {
    sim::PhaseSink* const sink = mm.phase_sink();
    // Stage-in: the probe stream arrives from CPU memory once; the
    // partition passes then run entirely in GPU memory.
    if (host_source) {
      sim::PhaseScope phase(sink, "partition.stage_in");
      mm.Stream(src_addr, count * sizeof(Key), sim::AccessType::kRead);
      mm.AddHbmTraffic(0, count * sizeof(Key));
    }
    {
      // Histogram pass.
      sim::PhaseScope phase(sink, "partition.histogram");
      mm.AddHbmTraffic(count * sizeof(Key), p * sizeof(uint32_t));
    }
    {
      // Prefix sum over the histogram (tiny).
      sim::PhaseScope phase(sink, "partition.prefix_sum");
      mm.AddHbmTraffic(p * sizeof(uint32_t), p * sizeof(uint32_t));
    }
    {
      // Scatter pass with SWWC buffers: reads the keys, writes coalesced
      // (key, row_id) pairs. The compute proxy (~4 instructions per tuple
      // across the passes) is charged here, in the dominant pass.
      sim::PhaseScope phase(sink, "partition.scatter");
      mm.AddHbmTraffic(count * sizeof(Key),
                       count * (sizeof(Key) + sizeof(uint64_t)));
      mm.AddWarpSteps(bits::CeilDiv(count, sim::Warp::kWidth) * 4);
    }
    if (spilled > 0) {
      // Overflowed tuples take the uncoalesced spill path: re-written
      // into a chained bucket, plus one chain-pointer line per bucket.
      sim::PhaseScope phase(sink, "partition.spill");
      mm.AddHbmTraffic(spill_buckets * mm.gpu_spec().cacheline_bytes,
                       spilled * 16 +
                           spill_buckets * mm.gpu_spec().cacheline_bytes);
      mm.AddWarpSteps(bits::CeilDiv(spilled, sim::Warp::kWidth) * 2);
    }
  });

  // Functional partition: stable counting sort on the partition bits.
  // (Spilling changes tuple placement and cost, not partition order:
  // chained buckets are drained in order during the join's stage-in.)
  uint64_t sum = 0;
  for (uint32_t b = 0; b < p; ++b) {
    out.offsets[b] = sum;
    sum += histogram[b];
  }
  out.offsets[p] = sum;

  std::vector<uint64_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t dst = cursor[spec_.PartitionOf(keys[i])]++;
    out.keys[dst] = keys[i];
    out.row_ids[dst] = first_row_id + i;
  }

  if (run != nullptr) run->Merge(kernel);
  return out;
}

}  // namespace gpujoin::partition
