#include "partition/radix_partitioner.h"

#include <algorithm>

#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::partition {

RadixPartitionSpec PlanPartitionBits(const workload::KeyColumn& column,
                                     int max_bits, int ignore_lsb) {
  const Key max_key = column.max_key();
  GPUJOIN_CHECK(max_key > 0);
  const int key_bits =
      bits::Log2Floor(static_cast<uint64_t>(max_key)) + 1;
  RadixPartitionSpec spec;
  spec.bits = std::clamp(key_bits - ignore_lsb, 1, max_bits);
  spec.shift = key_bits - spec.bits;
  return spec;
}

PartitionedKeys RadixPartitioner::Partition(sim::Gpu& gpu, const Key* keys,
                                            uint64_t count,
                                            mem::VirtAddr src_addr,
                                            uint64_t first_row_id,
                                            sim::KernelRun* run) const {
  GPUJOIN_CHECK(count > 0);
  const uint32_t p = spec_.num_partitions();
  mem::AddressSpace& space = gpu.memory().space();

  PartitionedKeys out;
  out.keys.resize(count);
  out.row_ids.resize(count);
  out.region = space.Reserve(count * 16, mem::MemKind::kDevice,
                             "partitioned.tuples");
  out.offsets.assign(p + 1, 0);

  const bool host_source =
      space.KindOf(src_addr) == mem::MemKind::kHost;

  sim::KernelRun kernel = gpu.RunRaw("radix_partition", [&](sim::MemoryModel&
                                                                mm) {
    // Stage-in: the probe stream arrives from CPU memory once; the
    // partition passes then run entirely in GPU memory.
    if (host_source) {
      mm.Stream(src_addr, count * sizeof(Key), sim::AccessType::kRead);
      mm.AddHbmTraffic(0, count * sizeof(Key));
    }
    // Histogram pass.
    mm.AddHbmTraffic(count * sizeof(Key), p * sizeof(uint32_t));
    // Prefix sum over the histogram (tiny).
    mm.AddHbmTraffic(p * sizeof(uint32_t), p * sizeof(uint32_t));
    // Scatter pass with SWWC buffers: reads the keys, writes coalesced
    // (key, row_id) pairs.
    mm.AddHbmTraffic(count * sizeof(Key),
                     count * (sizeof(Key) + sizeof(uint64_t)));
    // Compute proxy: ~4 instructions per tuple across the passes.
    mm.AddWarpSteps(bits::CeilDiv(count, sim::Warp::kWidth) * 4);
  });

  // Functional partition: stable counting sort on the partition bits.
  std::vector<uint64_t> histogram(p, 0);
  for (uint64_t i = 0; i < count; ++i) {
    ++histogram[spec_.PartitionOf(keys[i])];
  }
  uint64_t sum = 0;
  for (uint32_t b = 0; b < p; ++b) {
    out.offsets[b] = sum;
    sum += histogram[b];
  }
  out.offsets[p] = sum;

  std::vector<uint64_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t dst = cursor[spec_.PartitionOf(keys[i])]++;
    out.keys[dst] = keys[i];
    out.row_ids[dst] = first_row_id + i;
  }

  if (run != nullptr) run->Merge(kernel);
  return out;
}

}  // namespace gpujoin::partition
