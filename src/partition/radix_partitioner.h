#ifndef GPUJOIN_PARTITION_RADIX_PARTITIONER_H_
#define GPUJOIN_PARTITION_RADIX_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mem/sim_array.h"
#include "sim/gpu.h"
#include "util/status.h"
#include "workload/key_column.h"

namespace gpujoin::partition {

using workload::Key;

// Which radix bits of the key select the partition (paper Sec. 4.2: bits
// from the root-split bit of the domain down to the bit above the page
// size; 2048 partitions by default, ignoring the least significant bits).
struct RadixPartitionSpec {
  int bits = 11;   // 2^bits partitions (2048, paper Sec. 4.3.1)
  int shift = 0;   // LSB position of the partition bits

  uint32_t num_partitions() const { return 1u << bits; }
  uint32_t PartitionOf(Key key) const {
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(key) >> shift) & (num_partitions() - 1));
  }
};

// Plans the partition bits for lookups into `column`: the top bits of the
// key domain, capped at `max_bits`, never descending into the
// `ignore_lsb` least significant bits (paper Sec. 4.3.1 ignores 4).
// A zero-width key domain (max_key <= 0) degrades to the trivial
// single-bucket plan {bits = 1, shift = 0} rather than failing.
Result<RadixPartitionSpec> PlanPartitionBits(
    const workload::KeyColumn& column, int max_bits = 11, int ignore_lsb = 4);

// How the partitioner sizes per-partition buckets and reacts to skew.
//
// The SWWC linear allocator pre-sizes each partition's bucket before the
// scatter pass. `bucket_slack == 0` (the default) models exact two-pass
// sizing from the histogram: buckets never overflow and nothing here is
// consulted — the legacy behaviour, bit-identical to before this option
// existed. `bucket_slack > 0` models single-pass sizing at
// `count/num_partitions * bucket_slack` capacity per bucket: under heavy
// skew the hot partitions exceed their bucket, and the partitioner either
// chains the excess into spill buckets (`spill_on_overflow`, charging the
// extra traffic) or fails with ResourceExhausted (fail-stop).
struct PartitionOptions {
  double bucket_slack = 0;
  bool spill_on_overflow = true;
};

// Partition-ordered probe keys plus their original row ids, materialized
// as interleaved 16-byte (key, row_id) tuples in GPU memory. The
// functional columns are plain vectors; `tuple_addr` gives the simulated
// location of tuple i.
struct PartitionedKeys {
  std::vector<Key> keys;
  std::vector<uint64_t> row_ids;
  std::vector<uint64_t> offsets;  // size num_partitions + 1
  mem::Region region;             // count x 16 bytes in device memory

  // Skew overflow (PartitionOptions::bucket_slack > 0 only): tuples that
  // exceeded their partition's bucket and were chained into spill
  // buckets, and the region holding those chains. The functional output
  // above is unaffected — spilling is a placement/cost concern.
  mem::Region spill_region;
  uint64_t spilled_tuples = 0;
  uint64_t spill_buckets = 0;

  mem::VirtAddr tuple_addr(uint64_t i) const { return region.base + i * 16; }
};

// Radix partitioner modeling the linear-allocator software write-combining
// (SWWC) algorithm of Stehle & Jacobsen [46], which the paper uses for its
// high throughput in GPU memory (Sec. 4.3.1). Functionally this is a
// stable two-pass counting sort on the partition bits; the cost model
// charges the passes' streaming traffic:
//   stage-in  (host source only): read N*8 host, write N*8 HBM
//   histogram: read N*8 HBM
//   scatter:   read N*8 HBM, write N*16 HBM (SWWC keeps writes coalesced)
class RadixPartitioner {
 public:
  explicit RadixPartitioner(const RadixPartitionSpec& spec) : spec_(spec) {}

  // Partitions `count` keys starting at src_addr (their simulated
  // location; host or device). `first_row_id` numbers the tuples for join
  // result reconstruction. The returned KernelRun pair is merged into
  // `run` for cost accounting.
  //
  // Fails with InvalidArgument for an empty input, and with
  // ResourceExhausted when the output-buffer or spill-chain allocation is
  // refused by an attached FaultInjector or a bucket overflows under
  // fail-stop options (see PartitionOptions).
  Result<PartitionedKeys> Partition(
      sim::Gpu& gpu, const Key* keys, uint64_t count,
      mem::VirtAddr src_addr, uint64_t first_row_id, sim::KernelRun* run,
      const PartitionOptions& options = PartitionOptions()) const;

  const RadixPartitionSpec& spec() const { return spec_; }

 private:
  RadixPartitionSpec spec_;
};

}  // namespace gpujoin::partition

#endif  // GPUJOIN_PARTITION_RADIX_PARTITIONER_H_
