#ifndef GPUJOIN_OBS_PHASE_TIMELINE_H_
#define GPUJOIN_OBS_PHASE_TIMELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/counters.h"
#include "sim/phase.h"
#include "sim/trace.h"

namespace gpujoin::sim {
class CostModel;
class MemoryModel;
}  // namespace gpujoin::sim

namespace gpujoin::obs {

// Simulated-time profiler: receives the kernels' phase marks (via
// sim::PhaseSink) and aggregates, per (phase name, tumbling window), the
// counter deltas accumulated while the phase was open. Attached as an
// AccessObserver at the same time, it also counts the transactions and
// stream bytes it observed inside each span.
//
// Spans are *inclusive*: a phase opened inside another (probe.lookup
// inside a window) charges both. Begin/End pairs with the same key
// accumulate into one span — the join kernel brackets every warp, the
// timeline reports one "probe.lookup" span per window.
//
// Reads counters only through MemoryModel::TakeSnapshot(), so attaching
// a timeline never changes a counter (regression-tested bit-identical).
class PhaseTimeline : public sim::AccessObserver, public sim::PhaseSink {
 public:
  // `cost` may be null: spans then carry seconds == 0.
  explicit PhaseTimeline(const sim::MemoryModel* memory,
                         const sim::CostModel* cost = nullptr)
      : memory_(memory), cost_(cost) {}

  // Convenience: AddObserver(this) + SetPhaseSink(this) on `m`, and the
  // inverse. The model must outlive the timeline or be detached first.
  void AttachTo(sim::MemoryModel* m);
  void DetachFrom(sim::MemoryModel* m);

  // sim::PhaseSink
  void BeginPhase(std::string_view name) override;
  void EndPhase() override;
  void BeginWindow(uint64_t ordinal) override;
  void EndWindow() override;

  // sim::AccessObserver
  void OnTransaction(mem::VirtAddr addr, sim::ServiceLevel level,
                     bool is_write) override;
  void OnStream(mem::VirtAddr addr, uint64_t bytes, bool is_write) override;

  // Aggregated spans in first-opened order, with seconds filled from the
  // cost model (when present). Open frames are not included.
  std::vector<sim::PhaseSpan> Spans() const;

  size_t open_depth() const { return open_.size(); }
  void Reset();

 private:
  struct Frame {
    size_t span_index;
    sim::CounterSet begin;
    uint64_t begin_transactions;
    uint64_t begin_stream_bytes;
  };

  // Returns the span for (name, window), creating it in first-open order.
  size_t SpanIndex(std::string_view name, int64_t window);
  void Open(std::string_view name, int64_t window);
  void Close();

  const sim::MemoryModel* memory_;
  const sim::CostModel* cost_;

  std::vector<sim::PhaseSpan> spans_;
  std::map<std::pair<std::string, int64_t>, size_t, std::less<>> by_key_;
  std::vector<Frame> open_;
  int64_t current_window_ = sim::PhaseSpan::kNoWindow;

  // Running totals of observed traffic (snapshotted by frames).
  uint64_t transactions_seen_ = 0;
  uint64_t stream_bytes_seen_ = 0;
};

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_PHASE_TIMELINE_H_
