#include "obs/ingest.h"

#include "obs/json.h"

namespace gpujoin::obs {

bool IngestStats::any() const {
  if (ops_applied != 0 || ops_shed != 0) return true;
  if (merges_started != 0 || merges != 0 || swap_stalls != 0 ||
      epochs != 0) {
    return true;
  }
  if (merge_seconds != 0 || swap_stall_seconds != 0) return true;
  if (delta_entries != 0 || delta_entries_peak != 0 || delta_bytes != 0 ||
      delta_bytes_peak != 0 || overlay_entries != 0) {
    return true;
  }
  return staleness.count() != 0;
}

std::string IngestJson(const IngestStats& stats) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ops_applied").Uint(stats.ops_applied);
  w.Key("inserts").Uint(stats.inserts);
  w.Key("updates").Uint(stats.updates);
  w.Key("deletes").Uint(stats.deletes);
  w.Key("ops_shed").Uint(stats.ops_shed);
  w.Key("merges_started").Uint(stats.merges_started);
  w.Key("merges").Uint(stats.merges);
  w.Key("swap_stalls").Uint(stats.swap_stalls);
  w.Key("epochs").Uint(stats.epochs);
  w.Key("merge_seconds").Double(stats.merge_seconds);
  w.Key("swap_stall_seconds").Double(stats.swap_stall_seconds);
  w.Key("delta_entries").Uint(stats.delta_entries);
  w.Key("delta_entries_peak").Uint(stats.delta_entries_peak);
  w.Key("delta_bytes").Uint(stats.delta_bytes);
  w.Key("delta_bytes_peak").Uint(stats.delta_bytes_peak);
  w.Key("overlay_entries").Uint(stats.overlay_entries);
  w.Key("staleness").BeginObject();
  w.Key("count").Uint(stats.staleness.count());
  w.Key("mean").Double(stats.staleness.mean());
  w.Key("p50").Double(stats.staleness.Quantile(0.5));
  w.Key("p95").Double(stats.staleness.Quantile(0.95));
  w.Key("p99").Double(stats.staleness.Quantile(0.99));
  w.Key("max").Double(stats.staleness.max());
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace gpujoin::obs
