#ifndef GPUJOIN_OBS_INGEST_H_
#define GPUJOIN_OBS_INGEST_H_

#include <cstdint>
#include <string>

#include "obs/histogram.h"

namespace gpujoin::obs {

// The counters an HTAP ingest run accumulates across all shards: applied
// write ops, background merge activity, epoch swaps and the read
// staleness they bound. Filled by serve::IngestCoordinator; all-zero on
// a run with --ingest-rate 0, in which case callers omit the JSON
// section so write-free records stay bit-identical to older builds.
struct IngestStats {
  // Write stream.
  uint64_t ops_applied = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  // Ops refused because the delta was full and a merge was already in
  // flight (the shed path that replaces the old CHECK-abort).
  uint64_t ops_shed = 0;

  // Background merge machinery.
  uint64_t merges_started = 0;
  uint64_t merges = 0;       // completed (swap included)
  uint64_t swap_stalls = 0;  // epoch swaps charged to the serving clock
  uint64_t epochs = 0;       // highest epoch reached across shards
  double merge_seconds = 0;  // simulated merge work (charged at start)
  double swap_stall_seconds = 0;

  // Delta footprint, sampled after every applied op.
  uint64_t delta_entries = 0;       // at end of run
  uint64_t delta_entries_peak = 0;
  uint64_t delta_bytes = 0;         // at end of run (reserved bytes)
  uint64_t delta_bytes_peak = 0;
  uint64_t overlay_entries = 0;     // at end of run, summed over shards

  // Read staleness: age of the oldest write a batch-close-time reader
  // might not yet see merged (seconds since that op was admitted),
  // recorded once per served batch. Bounded by the merge cadence.
  LogHistogram staleness;

  bool any() const;
};

// The stats as a JSON object, spliced into a bench record with
// obs::RecordBuilder::AddSection("ingest", ...). Validated by
// scripts/validate_metrics.py.
std::string IngestJson(const IngestStats& stats);

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_INGEST_H_
