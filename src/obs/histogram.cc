#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace gpujoin::obs {

namespace {

// 8 buckets per octave: growth factor 2^(1/8).
constexpr double kInvLogGrowth = 8.0 / 0.69314718055994530942;  // 8 / ln 2

}  // namespace

int LogHistogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;
  return 1 + static_cast<int>(std::floor(std::log(value / kMinValue) *
                                         kInvLogGrowth));
}

double LogHistogram::BucketUpper(int index) {
  if (index <= 0) return kMinValue;
  return kMinValue * std::exp(static_cast<double>(index) / kInvLogGrowth);
}

void LogHistogram::Record(double value) {
  if (!(value >= 0)) value = 0;  // negatives and NaN clamp to zero
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  // A NaN q sails through std::clamp (every comparison is false) and the
  // later float->uint64 cast of ceil(NaN * count) is UB. Treat any
  // non-finite q as 0 — the conservative end of the distribution — so
  // +/-inf and NaN all resolve deterministically.
  if (!std::isfinite(q)) q = 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile, 1-based: the smallest rank covering a
  // fraction q of the recorded values.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      return std::clamp(BucketUpper(index), min_, max_);
    }
  }
  return max_;
}

void LogHistogram::Clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace gpujoin::obs
