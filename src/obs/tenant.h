#ifndef GPUJOIN_OBS_TENANT_H_
#define GPUJOIN_OBS_TENANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace gpujoin::obs {

// Per-SLO-tier serving outcomes of one multi-tenant run: admission and
// shedding counts split by cause, and the tier's own sojourn-time
// histogram — the per-tier p99 is what the fairness experiments compare
// (a protected tier's tail must not move when another tier floods).
// Filled by serve::RequestServer.
struct TenantTierStats {
  std::string tier;        // tier name ("gold"/"silver"/...)
  double weight = 0;       // deficit-round-robin weight
  uint64_t tenants = 0;    // tenants assigned to this tier
  uint64_t requests = 0;   // generated (admitted + shed)
  uint64_t admitted = 0;
  uint64_t shed_rate_limit = 0;  // token bucket empty at arrival
  uint64_t shed_backlog = 0;     // global backlog bound hit
  uint64_t served = 0;           // completed with a latency sample
  LogHistogram latency;          // sojourn seconds of served requests
};

// Hot-key result cache outcomes (serve::ResultCache): the hit-rate vs
// reserved-bytes tradeoff in numbers. All-zero when no cache is attached.
struct CacheStats {
  uint64_t reserved_bytes = 0;
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  // Insertions skipped because a single entry exceeds the reservation.
  uint64_t skipped_too_large = 0;
  uint64_t entries = 0;     // resident entries at end of run
  uint64_t used_bytes = 0;  // resident bytes at end of run
  double hit_seconds = 0;   // simulated seconds charged for hits
  double insert_seconds = 0;
};

// Everything a multi-tenant serving run reports on top of the aggregate
// ServeReport: scheduler identity, tier breakdown and cache activity.
// All-empty on a single-tenant run, in which case callers omit the JSON
// section so legacy records stay bit-identical.
struct TenantStats {
  std::string scheduler;        // "fifo" | "fair"
  uint64_t tenants = 0;         // configured tenant population
  uint64_t tenants_seen = 0;    // distinct tenants that sent >= 1 request
  uint64_t rogue_requests = 0;  // requests attributed to the rogue tenant
  std::vector<TenantTierStats> tiers;
  CacheStats cache;

  bool any() const;
};

// The stats as a JSON object, spliced into a bench record with
// obs::RecordBuilder::AddSection("tenants", ...). Validated by
// scripts/validate_metrics.py (which also rejects duplicate tier names).
std::string TenantsJson(const TenantStats& stats);

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_TENANT_H_
