#ifndef GPUJOIN_OBS_ROBUSTNESS_H_
#define GPUJOIN_OBS_ROBUSTNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gpujoin::obs {

// One key-range failover: a shard was declared dead and its ownership
// (plus any in-flight window work) moved to the survivors. Filled by
// dist::ShardScheduler; `fault_class` is sim::DeviceFaultClassName of
// the episode that killed the shard.
struct FailoverRecord {
  int dead_shard = 0;
  std::string fault_class;
  // Simulated time the heartbeat timeout fired (fault begin + timeout).
  double detected_at_seconds = 0;
  // Routed probe tuples whose key range moved to survivors.
  uint64_t reassigned_tuples = 0;
  // In-flight chunks of the dying window re-executed on the new owners.
  uint64_t reexec_chunks = 0;
  // Simulated seconds charged for that re-execution (recovery penalty
  // and fabric handoff included).
  double reexec_seconds = 0;
};

// The robustness counters a faulty run accumulates across the stack:
// failover activity from the sharded engine and retry/hedge/deadline
// activity from the request server. All-zero (and `failovers` empty)
// on a fault-free run, in which case the JSON section is omitted by
// callers — keeping fault-free records bit-identical to older builds.
struct RobustnessStats {
  // dist::ShardScheduler failover path.
  std::vector<FailoverRecord> failovers;
  uint64_t reexec_windows = 0;     // windows needing any re-execution
  double detection_seconds = 0;    // total heartbeat-timeout wait charged
  double slow_delay_seconds = 0;   // transient slow/link-down stretch

  // serve::RequestServer retry machinery.
  uint64_t retries = 0;            // backoff re-issues of a batch slice
  uint64_t hedges = 0;             // hedged re-issues to the replica plan
  uint64_t hedge_wins = 0;         // hedges that beat the primary
  uint64_t deadline_misses = 0;    // served, but past their deadline
  uint64_t shed_deadline = 0;      // dropped: deadline budget exhausted
  uint64_t shed_retry_exhausted = 0;  // dropped: retry cap hit
  // retry_histogram[k] = requests that needed exactly k retries.
  std::vector<uint64_t> retry_histogram;

  bool any() const;
  // Fold `other` into this (bench sweeps aggregate per-cell stats).
  void Merge(const RobustnessStats& other);
};

// The stats as a JSON object, spliced into a bench record with
// obs::RecordBuilder::AddSection("robustness", ...). Validated by
// scripts/validate_metrics.py (which also rejects duplicate dead-shard
// ids in `failovers`).
std::string RobustnessJson(const RobustnessStats& stats);

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_ROBUSTNESS_H_
