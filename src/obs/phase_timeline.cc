#include "obs/phase_timeline.h"

#include "sim/cost_model.h"
#include "sim/memory_model.h"

namespace gpujoin::obs {

void PhaseTimeline::AttachTo(sim::MemoryModel* m) {
  m->AddObserver(this);
  m->SetPhaseSink(this);
}

void PhaseTimeline::DetachFrom(sim::MemoryModel* m) {
  m->RemoveObserver(this);
  if (m->phase_sink() == this) m->SetPhaseSink(nullptr);
}

size_t PhaseTimeline::SpanIndex(std::string_view name, int64_t window) {
  auto key = std::make_pair(std::string(name), window);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  sim::PhaseSpan span;
  span.name = key.first;
  span.window = window;
  spans_.push_back(std::move(span));
  const size_t index = spans_.size() - 1;
  by_key_.emplace(std::move(key), index);
  return index;
}

void PhaseTimeline::Open(std::string_view name, int64_t window) {
  Frame f;
  f.span_index = SpanIndex(name, window);
  f.begin = memory_->TakeSnapshot();
  f.begin_transactions = transactions_seen_;
  f.begin_stream_bytes = stream_bytes_seen_;
  open_.push_back(std::move(f));
}

void PhaseTimeline::Close() {
  if (open_.empty()) return;  // unbalanced End: ignore
  Frame f = std::move(open_.back());
  open_.pop_back();
  sim::PhaseSpan& span = spans_[f.span_index];
  // Snapshot delta of the same monotone counters: exact, clamp-free.
  span.delta += memory_->TakeSnapshot() - f.begin;
  span.observed_transactions += transactions_seen_ - f.begin_transactions;
  span.observed_stream_bytes += stream_bytes_seen_ - f.begin_stream_bytes;
  ++span.enter_count;
}

void PhaseTimeline::BeginPhase(std::string_view name) {
  Open(name, current_window_);
}

void PhaseTimeline::EndPhase() { Close(); }

void PhaseTimeline::BeginWindow(uint64_t ordinal) {
  current_window_ = static_cast<int64_t>(ordinal);
  Open("window", current_window_);
}

void PhaseTimeline::EndWindow() {
  Close();
  current_window_ = sim::PhaseSpan::kNoWindow;
}

void PhaseTimeline::OnTransaction(mem::VirtAddr /*addr*/,
                                  sim::ServiceLevel /*level*/,
                                  bool /*is_write*/) {
  ++transactions_seen_;
}

void PhaseTimeline::OnStream(mem::VirtAddr /*addr*/, uint64_t bytes,
                             bool /*is_write*/) {
  stream_bytes_seen_ += bytes;
}

std::vector<sim::PhaseSpan> PhaseTimeline::Spans() const {
  std::vector<sim::PhaseSpan> out = spans_;
  if (cost_ != nullptr) {
    for (sim::PhaseSpan& span : out) {
      span.seconds = cost_->Seconds(span.delta);
    }
  }
  return out;
}

void PhaseTimeline::Reset() {
  spans_.clear();
  by_key_.clear();
  open_.clear();
  current_window_ = sim::PhaseSpan::kNoWindow;
  transactions_seen_ = 0;
  stream_bytes_seen_ = 0;
}

}  // namespace gpujoin::obs
