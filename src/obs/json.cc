#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace gpujoin::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Shortest representation that round-trips; locale-independent.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_.push_back(',');
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  if (!has_value_.empty()) has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  if (!has_value_.empty()) has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_.push_back(',');
    has_value_.back() = true;
  }
  AppendEscaped(out_, key);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  AppendDouble(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::Encode(std::string_view value) {
  std::string out;
  AppendEscaped(out, value);
  return out;
}

std::string JsonWriter::Encode(uint64_t value) { return std::to_string(value); }

std::string JsonWriter::Encode(int64_t value) { return std::to_string(value); }

std::string JsonWriter::Encode(double value) {
  std::string out;
  AppendDouble(out, value);
  return out;
}

std::string JsonWriter::Encode(bool value) { return value ? "true" : "false"; }

}  // namespace gpujoin::obs
