#ifndef GPUJOIN_OBS_METRICS_H_
#define GPUJOIN_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace gpujoin::obs {

class JsonWriter;
class LogHistogram;

// What a metric measures; decides how its value is stored and emitted.
enum class MetricKind : uint8_t {
  kScalar,     // point-in-time double (seconds, bytes/s, tuples/s)
  kCounter,    // monotone event count, exact uint64
  kRatio,      // numerator / denominator, both kept so 0/0 stays explicit
  kHistogram,  // distribution summary: count/sum/min/max + p50/p95/p99
};

const char* MetricKindName(MetricKind kind);

// One named metric. Dotted lower-case names by convention
// ("run.seconds", "counter.translation_requests", "ratio.tlb_hit_rate").
struct Metric {
  MetricKind kind = MetricKind::kScalar;
  std::string unit;         // "s", "bytes", "1" for dimensionless, ...
  double value = 0;         // kScalar value, or kRatio num/den (0 if den 0)
  uint64_t count = 0;       // kCounter value, or kHistogram sample count
  double numerator = 0;     // kRatio parts
  double denominator = 0;
  double sum = 0;           // kHistogram summary
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

// Named metrics for one emitted record. Deterministically ordered (sorted
// by name) so repeated runs serialize byte-identically. Registering a
// name again overwrites — a sweep loop can reuse one registry per point.
class MetricsRegistry {
 public:
  void SetScalar(std::string_view name, double value, std::string_view unit);
  void SetCounter(std::string_view name, uint64_t value,
                  std::string_view unit);
  // Accumulates onto an existing counter (registers at `delta` if new).
  void AddCounter(std::string_view name, uint64_t delta,
                  std::string_view unit);
  void SetRatio(std::string_view name, double numerator, double denominator,
                std::string_view unit);
  // Snapshots a histogram's summary (count/sum/min/max, p50/p95/p99).
  void SetHistogram(std::string_view name, const LogHistogram& hist,
                    std::string_view unit);

  const Metric* Find(std::string_view name) const;
  size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }
  void Clear() { metrics_.clear(); }

  const std::map<std::string, Metric, std::less<>>& metrics() const {
    return metrics_;
  }

  // Emits {"name": {"kind":..., "unit":..., ...value fields...}, ...} as
  // one JSON object value (callers position the writer at a value slot).
  void WriteJson(JsonWriter& w) const;

 private:
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_METRICS_H_
