#include "obs/robustness.h"

#include "obs/json.h"

namespace gpujoin::obs {

bool RobustnessStats::any() const {
  if (!failovers.empty()) return true;
  if (reexec_windows != 0) return true;
  if (detection_seconds != 0 || slow_delay_seconds != 0) return true;
  if (retries != 0 || hedges != 0 || hedge_wins != 0) return true;
  if (deadline_misses != 0 || shed_deadline != 0 ||
      shed_retry_exhausted != 0) {
    return true;
  }
  for (uint64_t count : retry_histogram) {
    if (count != 0) return true;
  }
  return false;
}

void RobustnessStats::Merge(const RobustnessStats& other) {
  failovers.insert(failovers.end(), other.failovers.begin(),
                   other.failovers.end());
  reexec_windows += other.reexec_windows;
  detection_seconds += other.detection_seconds;
  slow_delay_seconds += other.slow_delay_seconds;
  retries += other.retries;
  hedges += other.hedges;
  hedge_wins += other.hedge_wins;
  deadline_misses += other.deadline_misses;
  shed_deadline += other.shed_deadline;
  shed_retry_exhausted += other.shed_retry_exhausted;
  if (retry_histogram.size() < other.retry_histogram.size()) {
    retry_histogram.resize(other.retry_histogram.size(), 0);
  }
  for (size_t i = 0; i < other.retry_histogram.size(); ++i) {
    retry_histogram[i] += other.retry_histogram[i];
  }
}

std::string RobustnessJson(const RobustnessStats& stats) {
  JsonWriter w;
  w.BeginObject();
  w.Key("failovers").Uint(stats.failovers.size());
  w.Key("failover_records").BeginArray();
  for (const FailoverRecord& f : stats.failovers) {
    w.BeginObject();
    w.Key("dead_shard").Int(f.dead_shard);
    w.Key("fault_class").String(f.fault_class);
    w.Key("detected_at_seconds").Double(f.detected_at_seconds);
    w.Key("reassigned_tuples").Uint(f.reassigned_tuples);
    w.Key("reexec_chunks").Uint(f.reexec_chunks);
    w.Key("reexec_seconds").Double(f.reexec_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.Key("reexec_windows").Uint(stats.reexec_windows);
  w.Key("detection_seconds").Double(stats.detection_seconds);
  w.Key("slow_delay_seconds").Double(stats.slow_delay_seconds);
  w.Key("retries").Uint(stats.retries);
  w.Key("hedges").Uint(stats.hedges);
  w.Key("hedge_wins").Uint(stats.hedge_wins);
  w.Key("deadline_misses").Uint(stats.deadline_misses);
  w.Key("shed_deadline").Uint(stats.shed_deadline);
  w.Key("shed_retry_exhausted").Uint(stats.shed_retry_exhausted);
  w.Key("retry_histogram").BeginArray();
  for (uint64_t count : stats.retry_histogram) w.Uint(count);
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace gpujoin::obs
