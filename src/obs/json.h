#ifndef GPUJOIN_OBS_JSON_H_
#define GPUJOIN_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpujoin::obs {

// Minimal streaming JSON writer for metric emission. Deterministic output:
// no whitespace, doubles in shortest round-trip form (std::to_chars), so
// two runs with identical inputs produce byte-identical records — which is
// what lets scripts diff emitted JSON across runs.
//
// The writer does not validate nesting beyond what it needs for comma
// placement; callers are expected to produce well-formed sequences
// (scripts/validate_metrics.py checks the result against the schema).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Writes an object key; the next value call is its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  // Non-finite doubles have no JSON representation; they emit null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Splices a pre-serialized JSON value verbatim.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  // Serializes one scalar on its own (used to stash parameter values
  // before the full record is assembled).
  static std::string Encode(std::string_view value);
  static std::string Encode(uint64_t value);
  static std::string Encode(int64_t value);
  static std::string Encode(double value);
  static std::string Encode(bool value);

 private:
  // Inserts the comma separating this value from its predecessor at the
  // current nesting depth, except right after a key.
  void BeforeValue();

  std::string out_;
  // One flag per open container: whether a value was already written at
  // that depth (so the next one needs a leading comma).
  std::vector<bool> has_value_;
  bool after_key_ = false;
};

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_JSON_H_
