#include "obs/tenant.h"

#include "obs/json.h"

namespace gpujoin::obs {

namespace {

void WriteHistogram(JsonWriter& w, const LogHistogram& h) {
  w.BeginObject();
  w.Key("count").Uint(h.count());
  w.Key("mean").Double(h.mean());
  w.Key("p50").Double(h.Quantile(0.5));
  w.Key("p95").Double(h.Quantile(0.95));
  w.Key("p99").Double(h.Quantile(0.99));
  w.Key("max").Double(h.max());
  w.EndObject();
}

}  // namespace

bool TenantStats::any() const {
  if (!scheduler.empty() || !tiers.empty()) return true;
  if (tenants != 0 || tenants_seen != 0 || rogue_requests != 0) return true;
  return cache.reserved_bytes != 0 || cache.lookups != 0;
}

std::string TenantsJson(const TenantStats& stats) {
  JsonWriter w;
  w.BeginObject();
  w.Key("scheduler").String(stats.scheduler);
  w.Key("tenants").Uint(stats.tenants);
  w.Key("tenants_seen").Uint(stats.tenants_seen);
  w.Key("rogue_requests").Uint(stats.rogue_requests);
  w.Key("tiers").BeginArray();
  for (const TenantTierStats& t : stats.tiers) {
    w.BeginObject();
    w.Key("tier").String(t.tier);
    w.Key("weight").Double(t.weight);
    w.Key("tenants").Uint(t.tenants);
    w.Key("requests").Uint(t.requests);
    w.Key("admitted").Uint(t.admitted);
    w.Key("shed_rate_limit").Uint(t.shed_rate_limit);
    w.Key("shed_backlog").Uint(t.shed_backlog);
    w.Key("served").Uint(t.served);
    w.Key("latency");
    WriteHistogram(w, t.latency);
    w.EndObject();
  }
  w.EndArray();
  w.Key("cache").BeginObject();
  w.Key("reserved_bytes").Uint(stats.cache.reserved_bytes);
  w.Key("lookups").Uint(stats.cache.lookups);
  w.Key("hits").Uint(stats.cache.hits);
  w.Key("misses").Uint(stats.cache.misses);
  w.Key("insertions").Uint(stats.cache.insertions);
  w.Key("evictions").Uint(stats.cache.evictions);
  w.Key("skipped_too_large").Uint(stats.cache.skipped_too_large);
  w.Key("entries").Uint(stats.cache.entries);
  w.Key("used_bytes").Uint(stats.cache.used_bytes);
  w.Key("hit_seconds").Double(stats.cache.hit_seconds);
  w.Key("insert_seconds").Double(stats.cache.insert_seconds);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace gpujoin::obs
