#include "obs/metrics.h"

#include "obs/histogram.h"
#include "obs/json.h"

namespace gpujoin::obs {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kScalar:
      return "scalar";
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kRatio:
      return "ratio";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void MetricsRegistry::SetScalar(std::string_view name, double value,
                                std::string_view unit) {
  Metric& m = metrics_[std::string(name)];
  m = Metric{};
  m.kind = MetricKind::kScalar;
  m.unit = std::string(unit);
  m.value = value;
}

void MetricsRegistry::SetCounter(std::string_view name, uint64_t value,
                                 std::string_view unit) {
  Metric& m = metrics_[std::string(name)];
  m = Metric{};
  m.kind = MetricKind::kCounter;
  m.unit = std::string(unit);
  m.count = value;
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta,
                                 std::string_view unit) {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricKind::kCounter) {
    SetCounter(name, delta, unit);
    return;
  }
  it->second.count += delta;
}

void MetricsRegistry::SetRatio(std::string_view name, double numerator,
                               double denominator, std::string_view unit) {
  Metric& m = metrics_[std::string(name)];
  m = Metric{};
  m.kind = MetricKind::kRatio;
  m.unit = std::string(unit);
  m.numerator = numerator;
  m.denominator = denominator;
  m.value = denominator != 0 ? numerator / denominator : 0;
}

void MetricsRegistry::SetHistogram(std::string_view name,
                                   const LogHistogram& hist,
                                   std::string_view unit) {
  Metric& m = metrics_[std::string(name)];
  m = Metric{};
  m.kind = MetricKind::kHistogram;
  m.unit = std::string(unit);
  m.count = hist.count();
  m.sum = hist.sum();
  m.min = hist.min();
  m.max = hist.max();
  m.p50 = hist.Quantile(0.50);
  m.p95 = hist.Quantile(0.95);
  m.p99 = hist.Quantile(0.99);
}

const Metric* MetricsRegistry::Find(std::string_view name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  for (const auto& [name, m] : metrics_) {
    w.Key(name).BeginObject();
    w.Key("kind").String(MetricKindName(m.kind));
    w.Key("unit").String(m.unit);
    switch (m.kind) {
      case MetricKind::kScalar:
        w.Key("value").Double(m.value);
        break;
      case MetricKind::kCounter:
        w.Key("value").Uint(m.count);
        break;
      case MetricKind::kRatio:
        w.Key("value").Double(m.value);
        w.Key("numerator").Double(m.numerator);
        w.Key("denominator").Double(m.denominator);
        break;
      case MetricKind::kHistogram:
        w.Key("count").Uint(m.count);
        w.Key("sum").Double(m.sum);
        w.Key("min").Double(m.min);
        w.Key("max").Double(m.max);
        w.Key("p50").Double(m.p50);
        w.Key("p95").Double(m.p95);
        w.Key("p99").Double(m.p99);
        break;
    }
    w.EndObject();
  }
  w.EndObject();
}

}  // namespace gpujoin::obs
