#include "obs/emitter.h"

#include "obs/json.h"

namespace gpujoin::obs {

void WriteCounterSet(JsonWriter& w, const sim::CounterSet& c) {
  w.BeginObject();
  w.Key("host_random_read_bytes").Uint(c.host_random_read_bytes);
  w.Key("host_seq_read_bytes").Uint(c.host_seq_read_bytes);
  w.Key("host_write_bytes").Uint(c.host_write_bytes);
  w.Key("translation_requests").Uint(c.translation_requests);
  w.Key("tlb_hits").Uint(c.tlb_hits);
  w.Key("hbm_read_bytes").Uint(c.hbm_read_bytes);
  w.Key("hbm_write_bytes").Uint(c.hbm_write_bytes);
  w.Key("l1_hits").Uint(c.l1_hits);
  w.Key("l2_hits").Uint(c.l2_hits);
  w.Key("l2_misses").Uint(c.l2_misses);
  w.Key("warp_steps").Uint(c.warp_steps);
  w.Key("memory_transactions").Uint(c.memory_transactions);
  w.Key("kernel_launches").Uint(c.kernel_launches);
  w.Key("serial_dependent_loads").Uint(c.serial_dependent_loads);
  w.Key("faults_injected").Uint(c.faults_injected);
  w.Key("translation_timeouts").Uint(c.translation_timeouts);
  w.Key("remote_read_errors").Uint(c.remote_read_errors);
  w.Key("degradation_episodes").Uint(c.degradation_episodes);
  w.Key("alloc_faults").Uint(c.alloc_faults);
  w.Key("fault_retries").Uint(c.fault_retries);
  w.Key("fault_backoff_nanos").Uint(c.fault_backoff_nanos);
  w.Key("degraded_host_bytes").Uint(c.degraded_host_bytes);
  w.EndObject();
}

void WritePlatformSpec(JsonWriter& w, const sim::PlatformSpec& p) {
  w.BeginObject();
  w.Key("name").String(p.name);
  w.Key("gpu").BeginObject();
  w.Key("name").String(p.gpu.name);
  w.Key("num_sms").Int(p.gpu.num_sms);
  w.Key("clock_hz").Double(p.gpu.clock_hz);
  w.Key("l1_size").Uint(p.gpu.l1_size);
  w.Key("l2_size").Uint(p.gpu.l2_size);
  w.Key("cacheline_bytes").Uint(p.gpu.cacheline_bytes);
  w.Key("hbm_bandwidth").Double(p.gpu.hbm_bandwidth);
  w.Key("hbm_capacity").Uint(p.gpu.hbm_capacity);
  w.Key("tlb_coverage").Uint(p.gpu.tlb_coverage);
  w.Key("warp_step_throughput").Double(p.gpu.warp_step_throughput);
  w.EndObject();
  w.Key("interconnect").BeginObject();
  w.Key("name").String(p.interconnect.name);
  w.Key("peak_bandwidth").Double(p.interconnect.peak_bandwidth);
  w.Key("seq_bandwidth").Double(p.interconnect.seq_bandwidth);
  w.Key("random_bandwidth").Double(p.interconnect.random_bandwidth);
  w.Key("latency").Double(p.interconnect.latency);
  w.Key("translation_latency").Double(p.interconnect.translation_latency);
  w.Key("translation_concurrency")
      .Double(p.interconnect.translation_concurrency);
  w.EndObject();
  w.EndObject();
}

void RecordBuilder::SetPlatform(const sim::PlatformSpec& platform) {
  platform_ = platform;
  has_platform_ = true;
}

void RecordBuilder::AddParam(std::string_view name, std::string_view value) {
  params_.emplace_back(std::string(name), JsonWriter::Encode(value));
}

void RecordBuilder::AddParam(std::string_view name, uint64_t value) {
  params_.emplace_back(std::string(name), JsonWriter::Encode(value));
}

void RecordBuilder::AddParam(std::string_view name, int64_t value) {
  params_.emplace_back(std::string(name), JsonWriter::Encode(value));
}

void RecordBuilder::AddParam(std::string_view name, double value) {
  params_.emplace_back(std::string(name), JsonWriter::Encode(value));
}

void RecordBuilder::AddParam(std::string_view name, bool value) {
  params_.emplace_back(std::string(name), JsonWriter::Encode(value));
}

void RecordBuilder::SetRun(const sim::RunResult& result) {
  run_ = result;
  has_run_ = true;
}

void RecordBuilder::SetTrace(const sim::TraceRecorder& trace) {
  trace_regions_.assign(trace.by_region().begin(), trace.by_region().end());
  has_trace_ = true;
}

void WritePhaseSpans(JsonWriter& w, const std::vector<sim::PhaseSpan>& spans) {
  w.BeginArray();
  for (const sim::PhaseSpan& span : spans) {
    w.BeginObject();
    w.Key("name").String(span.name);
    if (span.window == sim::PhaseSpan::kNoWindow) {
      w.Key("window").Null();
    } else {
      w.Key("window").Int(span.window);
    }
    w.Key("seconds").Double(span.seconds);
    w.Key("enter_count").Uint(span.enter_count);
    w.Key("observed_transactions").Uint(span.observed_transactions);
    w.Key("observed_stream_bytes").Uint(span.observed_stream_bytes);
    w.Key("counters");
    WriteCounterSet(w, span.delta);
    w.EndObject();
  }
  w.EndArray();
}

void RecordBuilder::AddSection(std::string_view name, std::string raw_json) {
  sections_.emplace_back(std::string(name), std::move(raw_json));
}

std::string RecordBuilder::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(kMetricsSchemaVersion);
  w.Key("bench").String(bench_);

  w.Key("params").BeginObject();
  for (const auto& [name, json] : params_) {
    w.Key(name).Raw(json);
  }
  w.EndObject();

  if (has_platform_) {
    w.Key("platform");
    WritePlatformSpec(w, platform_);
  }

  if (has_run_) {
    w.Key("run").BeginObject();
    w.Key("label").String(run_.label);
    w.Key("seconds").Double(run_.seconds);
    w.Key("qps").Double(run_.qps());
    w.Key("probe_tuples").Uint(run_.probe_tuples);
    w.Key("result_tuples").Uint(run_.result_tuples);
    w.Key("translations_per_key").Double(run_.translations_per_key());
    w.Key("spilled_tuples").Uint(run_.spilled_tuples);
    w.Key("spill_buckets").Uint(run_.spill_buckets);
    w.Key("degraded_windows").Uint(run_.degraded_windows);
    w.Key("fallback_windows").Uint(run_.fallback_windows);
    w.Key("result_buffer_on_host").Bool(run_.result_buffer_on_host);
    w.EndObject();

    w.Key("counters");
    WriteCounterSet(w, run_.counters);

    w.Key("stages").BeginArray();
    for (const auto& [name, seconds] : run_.stages) {
      w.BeginObject();
      w.Key("name").String(name);
      w.Key("seconds").Double(seconds);
      w.EndObject();
    }
    w.EndArray();

    w.Key("phases");
    WritePhaseSpans(w, run_.phase_spans);
  }

  if (has_trace_) {
    w.Key("trace").BeginObject();
    w.Key("regions").BeginObject();
    for (const auto& [name, stats] : trace_regions_) {
      w.Key(name.empty() ? "<unknown>" : name).BeginObject();
      w.Key("transactions").Uint(stats.transactions);
      w.Key("l1_hits").Uint(stats.l1_hits);
      w.Key("l2_hits").Uint(stats.l2_hits);
      w.Key("memory_transactions").Uint(stats.memory_transactions);
      w.Key("stream_bytes").Uint(stats.stream_bytes);
      w.Key("writes").Uint(stats.writes);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }

  if (!metrics_.empty()) {
    w.Key("metrics");
    metrics_.WriteJson(w);
  }

  for (const auto& [name, json] : sections_) {
    w.Key(name).Raw(json);
  }

  w.EndObject();
  return w.TakeString();
}

}  // namespace gpujoin::obs
