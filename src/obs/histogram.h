#ifndef GPUJOIN_OBS_HISTOGRAM_H_
#define GPUJOIN_OBS_HISTOGRAM_H_

#include <cstdint>
#include <map>

namespace gpujoin::obs {

// Log-bucketed histogram for latency-style distributions: geometric
// buckets (8 per octave, ~9% relative width) over a sparse map, so a
// serving run can record millions of simulated latencies in O(1) each
// and still report stable tail quantiles. Exact count/sum/min/max are
// tracked alongside the buckets; quantiles resolve to a bucket's upper
// bound (clamped to the observed min/max), which makes them
// deterministic and conservative — a reported p99 is never below the
// true p99 by more than one bucket width.
class LogHistogram {
 public:
  // Values at or below this resolve to the first bucket. Latencies here
  // are simulated seconds; a nanosecond floor is far below any modeled
  // kernel time.
  static constexpr double kMinValue = 1e-9;

  void Record(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0;
  }

  // Value at quantile q in [0, 1] (0.5 = median). 0 on an empty
  // histogram.
  double Quantile(double q) const;

  void Clear();

 private:
  static int BucketIndex(double value);
  static double BucketUpper(int index);

  std::map<int, uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_HISTOGRAM_H_
