#ifndef GPUJOIN_OBS_EMITTER_H_
#define GPUJOIN_OBS_EMITTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/counters.h"
#include "sim/phase.h"
#include "sim/run_result.h"
#include "sim/specs.h"
#include "sim/trace.h"

namespace gpujoin::obs {

class JsonWriter;

// Version of the emitted record layout. Bump when a field is renamed,
// retyped or removed; adding optional fields is compatible.
// scripts/validate_metrics.py checks records against this schema.
inline constexpr int kMetricsSchemaVersion = 1;

// Serializes every CounterSet field by name as one JSON object value.
void WriteCounterSet(JsonWriter& w, const sim::CounterSet& c);

// Serializes a platform spec (GPU + interconnect model parameters).
void WritePlatformSpec(JsonWriter& w, const sim::PlatformSpec& p);

// Serializes phase spans as the record's "phases" array value — shared
// between the top-level record and per-shard sections.
void WritePhaseSpans(JsonWriter& w, const std::vector<sim::PhaseSpan>& spans);

// Assembles one schema-versioned JSON record for one sweep point of one
// bench binary. Usage:
//
//   RecordBuilder rec("fig5_throughput");
//   rec.SetPlatform(platform);
//   rec.AddParam("r_tuples", r);             // workload / sweep params
//   rec.SetRun(result);                      // RunResult incl. phase spans
//   rec.SetTrace(trace);                     // optional region stats
//   sink.Add(order_key, rec.ToJsonLine());   // one line, no trailing \n
//
// Record layout (schema_version 1):
//   {"schema_version":1, "bench":..., "params":{...}, "platform":{...},
//    "run":{...}, "counters":{...}, "stages":[...], "phases":[...],
//    "trace":{"regions":{...}}, "metrics":{...}}
// "platform", "run", "counters", "stages", "phases" appear once SetRun /
// SetPlatform ran; "trace" and "metrics" only when supplied.
class RecordBuilder {
 public:
  explicit RecordBuilder(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void SetPlatform(const sim::PlatformSpec& platform);

  // Sweep-point parameters, kept in insertion order.
  void AddParam(std::string_view name, std::string_view value);
  void AddParam(std::string_view name, const char* value) {
    AddParam(name, std::string_view(value));
  }
  void AddParam(std::string_view name, uint64_t value);
  void AddParam(std::string_view name, int64_t value);
  void AddParam(std::string_view name, int value) {
    AddParam(name, static_cast<int64_t>(value));
  }
  void AddParam(std::string_view name, double value);
  void AddParam(std::string_view name, bool value);

  void SetRun(const sim::RunResult& result);
  void SetTrace(const sim::TraceRecorder& trace);

  MetricsRegistry& metrics() { return metrics_; }

  // Splices a pre-serialized JSON value as an extra top-level section
  // (e.g. the sharded engine's "shards"/"links" arrays). Sections keep
  // insertion order and land after the standard fields.
  void AddSection(std::string_view name, std::string raw_json);

  // One JSON Lines record (single line, no trailing newline).
  std::string ToJsonLine() const;

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> params_;  // name -> JSON
  bool has_platform_ = false;
  sim::PlatformSpec platform_;
  bool has_run_ = false;
  sim::RunResult run_;
  bool has_trace_ = false;
  std::vector<std::pair<std::string, sim::TraceRecorder::RegionStats>>
      trace_regions_;
  MetricsRegistry metrics_;
  std::vector<std::pair<std::string, std::string>> sections_;  // name -> JSON
};

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_EMITTER_H_
