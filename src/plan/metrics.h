#ifndef GPUJOIN_PLAN_METRICS_H_
#define GPUJOIN_PLAN_METRICS_H_

#include <string>

#include "plan/backend.h"

namespace gpujoin::plan {

// JSON section builder for routed runs, spliced into a bench record via
// obs::RecordBuilder::AddSection. scripts/validate_metrics.py validates
// the section (field presence, batch/usage consistency).
//
// Shape: {mode, decisions, explorations, residual_observations,
// total_seconds, total_matches, plan_usage: [{plan, batches, seconds}],
// batches: [{ordinal, begin, count, plan, predicted_seconds,
// charged_seconds, explored, matches, features{...}, candidates?}]}.
std::string PlannerJson(const PlannedBackend& backend);

}  // namespace gpujoin::plan

#endif  // GPUJOIN_PLAN_METRICS_H_
