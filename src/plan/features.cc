#include "plan/features.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace gpujoin::plan {

int FeatureBucket(const BatchFeatures& f) {
  const int skew_b = f.skew < 0.1 ? 0 : f.skew < 0.4 ? 1 : f.skew < 0.75 ? 2 : 3;
  const int tlb_b = f.r_tlb_ratio <= 0.25   ? 0
                    : f.r_tlb_ratio <= 1.0  ? 1
                    : f.r_tlb_ratio <= 4.0  ? 2
                                            : 3;
  const double lg =
      std::log2(static_cast<double>(std::max<uint64_t>(f.batch_tuples, 1)));
  const int size_b = lg < 14 ? 0 : lg < 17 ? 1 : lg < 20 ? 2 : 3;
  const int link_b = f.link_utilization < 0.5 ? 0 : 1;
  return ((skew_b * 4 + tlb_b) * 4 + size_b) * 2 + link_b;
}

FeatureExtractor::FeatureExtractor(uint64_t r_bytes, uint64_t tlb_coverage,
                                   uint64_t seed)
    : r_bytes_(r_bytes),
      tlb_coverage_(tlb_coverage),
      rng_(SplitMix64(seed ^ 0x8f2d1c3b5a4e6d7fULL)),
      // Every probe key of the paper's workload exists in R, so start
      // from selectivity 1 and let observations correct it.
      selectivity_(0.25, /*prior=*/1.0, /*warmup=*/1) {}

BatchFeatures FeatureExtractor::Extract(const workload::Key* keys,
                                        uint64_t count) {
  BatchFeatures f;
  f.batch_tuples = count;
  f.selectivity = selectivity_.value();
  f.r_tlb_ratio = tlb_coverage_ > 0 ? static_cast<double>(r_bytes_) /
                                          static_cast<double>(tlb_coverage_)
                                    : 0;
  f.link_utilization = link_utilization_;

  // Algorithm R over the batch's keys, then count distinct reservoir
  // entries: duplicate draws are the skew signal.
  std::array<workload::Key, kReservoir> reservoir;
  const uint64_t k = std::min<uint64_t>(count, kReservoir);
  for (uint64_t i = 0; i < k; ++i) reservoir[i] = keys[i];
  for (uint64_t i = k; i < count; ++i) {
    const uint64_t j = rng_.NextBounded(i + 1);
    if (j < k) reservoir[j] = keys[i];
  }
  if (k > 1) {
    std::sort(reservoir.begin(), reservoir.begin() + k);
    uint64_t distinct = 1;
    for (uint64_t i = 1; i < k; ++i) {
      if (reservoir[i] != reservoir[i - 1]) ++distinct;
    }
    f.skew = 1.0 - static_cast<double>(distinct) / static_cast<double>(k);
  }
  return f;
}

void FeatureExtractor::ObserveMatches(uint64_t batch_tuples,
                                      uint64_t matches) {
  if (batch_tuples == 0) return;
  selectivity_.Observe(static_cast<double>(matches) /
                       static_cast<double>(batch_tuples));
}

void FeatureExtractor::SetLinkUtilization(double utilization) {
  link_utilization_ = std::clamp(utilization, 0.0, 1.0);
}

}  // namespace gpujoin::plan
