#ifndef GPUJOIN_PLAN_FEATURES_H_
#define GPUJOIN_PLAN_FEATURES_H_

#include <cstdint>

#include "util/ewma.h"
#include "util/rng.h"
#include "workload/key_column.h"

namespace gpujoin::plan {

// Per-batch routing signals, all derived from cheap observed state: a
// reservoir sample of the batch's probe keys, the smoothed match rate of
// past batches, static workload facts (R size vs. TLB range) and the
// link utilization observed while the previous batch ran.
struct BatchFeatures {
  uint64_t batch_tuples = 0;
  // Probe-key skew estimate in [0, 1]: 1 - distinct/k over a k-key
  // reservoir sample of the batch. Uniform draws over a large R score
  // ~0; a Zipf-1.75 stream concentrates the reservoir on the hot keys
  // and scores high.
  double skew = 0;
  // Smoothed matches per probe tuple observed on recent batches.
  double selectivity = 1.0;
  // R bytes / GPU TLB coverage — the paper's cliff coordinate (Fig. 3).
  double r_tlb_ratio = 0;
  // Host-link utilization while the previous batch ran (from
  // dist::Topology in the sharded engine, from the backend's own
  // accounting on a single device).
  double link_utilization = 0;
};

// Collapses features into a small stable bucket id for the residual
// model: 4 skew x 4 tlb-ratio x 4 batch-size x 2 link-load cells.
int FeatureBucket(const BatchFeatures& f);
inline constexpr int kFeatureBucketCount = 4 * 4 * 4 * 2;

// Stateful extractor: owns the reservoir RNG (seeded, so feature
// extraction is deterministic for a fixed batch stream) and the
// selectivity EWMA.
class FeatureExtractor {
 public:
  FeatureExtractor(uint64_t r_bytes, uint64_t tlb_coverage, uint64_t seed);

  // Derives the signals for one batch of probe keys. Consumes the
  // reservoir RNG; call exactly once per routed batch.
  BatchFeatures Extract(const workload::Key* keys, uint64_t count);

  // Feeds the observed match count of a completed batch into the
  // selectivity estimate.
  void ObserveMatches(uint64_t batch_tuples, uint64_t matches);

  // Records the link utilization the next Extract should report.
  void SetLinkUtilization(double utilization);

 private:
  static constexpr int kReservoir = 64;

  uint64_t r_bytes_;
  uint64_t tlb_coverage_;
  Xoshiro256 rng_;
  util::Ewma selectivity_;
  double link_utilization_ = 0;
};

}  // namespace gpujoin::plan

#endif  // GPUJOIN_PLAN_FEATURES_H_
