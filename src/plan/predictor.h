#ifndef GPUJOIN_PLAN_PREDICTOR_H_
#define GPUJOIN_PLAN_PREDICTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "plan/features.h"
#include "plan/plan_space.h"
#include "sim/specs.h"
#include "util/ewma.h"

namespace gpujoin::plan {

// Static facts the analytic predictor needs about the engine a plan
// would run on.
struct PlanContext {
  sim::PlatformSpec platform;
  uint64_t r_tuples = 0;
};

// Seed prediction: synthesizes the hardware counters one batch under
// `plan` would generate (probe stream, partition passes, per-lookup
// random host lines, translation misses past the TLB range, result
// writes) and prices them through sim::CostModel — the same
// counters-to-seconds mapping the simulator charges, so the seed is
// calibrated in the same unit the residuals correct.
double PredictSeconds(const PlanContext& ctx, const PlanChoice& plan,
                      const BatchFeatures& features);

// Online multiplicative correction: one EWMA of actual/predicted per
// (plan, feature bucket), fed the charged seconds after each routed
// batch completes. Corrected cost = seed * smoothed ratio. A cell adopts
// its first observation outright and blends at `alpha` afterwards — one
// mispriced try is enough to re-rank a candidate.
//
// An unvisited cell falls back to the bucket's pooled ratio over every
// plan observed there, and to the raw seed when the bucket is fresh.
// The pooled fallback scales all unvisited plans by one factor — their
// relative order (set by the analytic seeds) is preserved — while
// keeping them comparable to visited plans whose honest ratios sit
// above 1: without it, every optimistic seed would earn a wasted trial
// batch ahead of an already-measured good plan.
class ResidualModel {
 public:
  explicit ResidualModel(double alpha = 0.25) : alpha_(alpha) {}

  double Correct(const PlanChoice& plan, int bucket,
                 double predicted) const;

  void Observe(const PlanChoice& plan, int bucket, double predicted,
               double actual);

  // Whether the (plan, bucket) cell has received any observation.
  bool Observed(const PlanChoice& plan, int bucket) const;

  uint64_t observations() const { return observations_; }

 private:
  double alpha_;
  std::map<std::pair<std::string, int>, util::Ewma> ratios_;
  std::map<int, util::Ewma> bucket_ratios_;
  uint64_t observations_ = 0;
};

}  // namespace gpujoin::plan

#endif  // GPUJOIN_PLAN_PREDICTOR_H_
