#ifndef GPUJOIN_PLAN_ROUTER_H_
#define GPUJOIN_PLAN_ROUTER_H_

#include <cstdint>
#include <vector>

#include "plan/features.h"
#include "plan/plan_space.h"
#include "plan/predictor.h"
#include "util/rng.h"

namespace gpujoin::plan {

struct PlannerConfig {
  PlannerMode mode = PlannerMode::kAdaptive;
  // The one plan kStatic always routes to.
  PlanChoice static_choice = {PlanChoice::Kind::kInlj,
                              index::IndexType::kBinarySearch,
                              core::InljConfig::PartitionMode::kWindowed,
                              uint64_t{1} << 17};
  // Exploration rate of the epsilon-greedy bandit layered on the argmin:
  // with probability epsilon a non-best candidate is routed instead, so
  // residual cells off the greedy path keep receiving observations.
  double epsilon = 0.0625;
  // Exploration never routes a candidate whose corrected prediction
  // exceeds explore_ceiling x the best candidate's — bounds the regret
  // a single exploration step can cost.
  double explore_ceiling = 4.0;
  double residual_alpha = 0.25;
  uint64_t seed = 7;
};

struct RoutingDecision {
  PlanChoice chosen;
  // Residual-corrected prediction for the chosen plan.
  double predicted_seconds = 0;
  // True when epsilon-greedy exploration overrode the argmin.
  bool explored = false;
};

// Per-batch router: corrected-cost argmin over the candidate set with
// bounded epsilon-greedy exploration, plus the feedback path into the
// residual model. All state mutation happens on the calling thread, and
// the RNG is consumed only by kAdaptive Decide calls — routing is
// deterministic for a fixed batch stream regardless of worker threads.
//
// The PlanContext is a parameter (not a member) so one Planner — its
// residuals and exploration state — can persist across workload phases
// whose R differs, as Fig. 11 requires.
class Planner {
 public:
  explicit Planner(const PlannerConfig& config)
      : config_(config),
        residuals_(config.residual_alpha),
        rng_(SplitMix64(config.seed ^ 0x51c3a9f47be206d5ULL)) {}

  RoutingDecision Decide(const PlanContext& ctx,
                         const std::vector<PlanChoice>& candidates,
                         const BatchFeatures& features);

  // Feeds one completed batch back: recomputes the *analytic* seed for
  // (plan, features) — not the corrected value, which would compound the
  // correction — and updates the plan's residual cell with actual/seed.
  void Observe(const PlanContext& ctx, const PlanChoice& plan,
               const BatchFeatures& features, double actual_seconds);

  // Corrected prediction for one candidate (what Decide compares).
  double CorrectedSeconds(const PlanContext& ctx, const PlanChoice& plan,
                          const BatchFeatures& features) const;

  const PlannerConfig& config() const { return config_; }
  const ResidualModel& residuals() const { return residuals_; }
  uint64_t decisions() const { return decisions_; }
  uint64_t explorations() const { return explorations_; }

 private:
  PlannerConfig config_;
  ResidualModel residuals_;
  Xoshiro256 rng_;
  uint64_t decisions_ = 0;
  uint64_t explorations_ = 0;
};

}  // namespace gpujoin::plan

#endif  // GPUJOIN_PLAN_ROUTER_H_
