#ifndef GPUJOIN_PLAN_BACKEND_H_
#define GPUJOIN_PLAN_BACKEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "plan/executor.h"
#include "plan/features.h"
#include "plan/plan_space.h"
#include "plan/router.h"
#include "serve/server.h"
#include "util/status.h"

namespace gpujoin::plan {

struct PlannedBackendConfig {
  // Workload + platform template. One engine is built per candidate index
  // type from this config with index_type overridden; the probe sample is
  // forced to thinned sampling so every plan of every engine services the
  // exact same key slice with the same global row ids.
  core::ExperimentConfig base;
  PlanSpaceConfig space;
  PlannerConfig planner;
  // Worker threads for the oracle's run-everything sweep (0 = hardware
  // concurrency). Thread count never changes results: engines are
  // independent and outcomes fold in candidate order.
  int oracle_threads = 0;
};

// Everything one routed batch recorded, for metrics and benches.
struct BatchOutcome {
  uint64_t ordinal = 0;
  uint64_t begin = 0;
  uint64_t count = 0;
  PlanChoice chosen;
  BatchFeatures features;
  // Residual-corrected prediction for the chosen plan.
  double predicted_seconds = 0;
  // Simulated seconds the slice was charged.
  double charged_seconds = 0;
  bool explored = false;
  uint64_t matches = 0;
  // kOracle only: every candidate's executed seconds, in enumeration
  // order. The oracle charges the minimum.
  std::vector<std::pair<std::string, double>> candidate_seconds;
};

// serve::WindowBackend that routes every slice through the adaptive
// planner: extract features, pick a plan (static / corrected-argmin /
// oracle run-everything), execute it on the plan's engine, and feed the
// observed time back into the residual model. Holds one simulated
// (gpu, index) engine per candidate index type over identical R and S.
//
// All routing, RNG and state mutation happen on the calling thread;
// oracle workers only touch their own engine. A fixed config and seed
// reproduce every decision bit for bit at any --oracle_threads.
class PlannedBackend : public serve::WindowBackend {
 public:
  // `shared_planner` (optional, must outlive the backend) carries the
  // residual model and exploration state across backends — e.g. across
  // the phases of the Fig. 11 workload, where R changes but the learned
  // corrections should persist.
  static Result<std::unique_ptr<PlannedBackend>> Create(
      const PlannedBackendConfig& config, Planner* shared_planner = nullptr);

  uint64_t sample_size() const override { return sample_size_; }

  Result<double> ServiceSlice(uint64_t begin, uint64_t count,
                              uint64_t ordinal) override;

  // The serving layer's hedged re-issue lands on the replica plan: the
  // base index under full partitioning — the static pipeline's safe
  // default — executed without routing, residual feedback, or RNG
  // draws, so a hedge can never perturb the router's learned state.
  Result<double> ServiceHedge(uint64_t begin, uint64_t count,
                              uint64_t ordinal) override;

  // As ServiceSlice, but also exposes the full outcome and (optionally)
  // collects the chosen plan's match set.
  Result<BatchOutcome> RouteSlice(uint64_t begin, uint64_t count,
                                  uint64_t ordinal,
                                  std::vector<core::JoinMatch>* collect =
                                      nullptr);

  // The pruned candidate set a batch of `batch_tuples` routes over.
  std::vector<PlanChoice> CandidatesFor(uint64_t batch_tuples) const;

  // Executes one specific plan over a slice without routing or feedback
  // (differential tests compare candidates' match sets through this).
  Result<BatchResult> ExecutePlan(const PlanChoice& plan, uint64_t begin,
                                  uint64_t count, uint64_t ordinal,
                                  std::vector<core::JoinMatch>* collect =
                                      nullptr);

  Planner& planner() { return *planner_; }
  const Planner& planner() const { return *planner_; }
  const PlanContext& context() const { return ctx_; }
  const std::vector<BatchOutcome>& outcomes() const { return outcomes_; }
  double total_seconds() const { return total_seconds_; }
  uint64_t total_matches() const { return total_matches_; }

 private:
  struct Engine {
    std::unique_ptr<core::Experiment> experiment;
    std::optional<BatchExecutor> executor;
  };

  PlannedBackend() = default;

  Engine& EngineFor(index::IndexType type) { return engines_.at(type); }

  // Functional hash-join ground truth: matches of s[begin, begin+count)
  // against R (the baseline collects no matches, and R is sorted unique,
  // so a probe key's match position is its lower bound in R — identical
  // to what every INLJ candidate materializes).
  uint64_t HashJoinMatches(uint64_t begin, uint64_t count,
                           std::vector<core::JoinMatch>* collect) const;

  // Timeline-derived observation for the link-utilization signal:
  // seconds is the sum of the engine's phase spans (disjoint pipeline
  // stages) plus the per-window stream sync the cost model charges
  // outside kernels; host_bytes is the spans' interconnect traffic.
  // (Residual feedback uses the charged BatchResult seconds — the span
  // sum composes stages serially and over-counts overlapped work.)
  struct EngineObservation {
    double seconds = 0;
    uint64_t host_bytes = 0;
  };
  EngineObservation ObserveEngine(index::IndexType type,
                                  uint64_t windows) const;

  PlannedBackendConfig config_;
  PlanContext ctx_;
  uint64_t sample_size_ = 0;
  std::map<index::IndexType, Engine> engines_;
  std::optional<FeatureExtractor> extractor_;
  std::optional<Planner> owned_planner_;
  Planner* planner_ = nullptr;
  std::vector<BatchOutcome> outcomes_;
  double total_seconds_ = 0;
  uint64_t total_matches_ = 0;
};

}  // namespace gpujoin::plan

#endif  // GPUJOIN_PLAN_BACKEND_H_
