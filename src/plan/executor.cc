#include "plan/executor.h"

#include <algorithm>
#include <utility>

#include "core/join_kernel.h"
#include "sim/phase.h"

namespace gpujoin::plan {

Result<BatchExecutor> BatchExecutor::Create(sim::Gpu& gpu,
                                            const index::Index& index,
                                            const workload::ProbeRelation& s,
                                            const core::InljConfig& config,
                                            uint64_t result_tuples) {
  Result<core::WindowJoiner> joiner =
      core::WindowJoiner::Create(gpu, index, s, config, result_tuples);
  if (!joiner.ok()) return joiner.status();
  return BatchExecutor(gpu, index, s, config, std::move(*joiner));
}

Result<BatchResult> BatchExecutor::Execute(
    const PlanChoice& plan, uint64_t begin, uint64_t count, uint64_t ordinal,
    std::vector<core::JoinMatch>* collect) {
  if (plan.kind != PlanChoice::Kind::kInlj) {
    return Status::InvalidArgument(
        "BatchExecutor only runs INLJ plans; got " + plan.Name());
  }
  if (count == 0) {
    return Status::InvalidArgument("cannot execute an empty batch");
  }
  if (begin + count > s_->sample_size()) {
    return Status::InvalidArgument("batch exceeds the probe sample");
  }

  // One batch must not inherit its predecessor's cache state (the
  // predecessor may even have run a different plan); the joiner applies
  // the same policy between sub-windows.
  if (!first_batch_) gpu_->memory().FlushCaches();
  first_batch_ = false;

  BatchResult out;
  switch (plan.mode) {
    case core::InljConfig::PartitionMode::kNone: {
      sim::WindowScope window(gpu_->memory().phase_sink(), ordinal);
      sim::KernelRun join = core::internal::RunJoinKernel(
          *gpu_, *index_, s_->keys.data().data() + begin, nullptr, count,
          s_->keys.addr_of(begin), joiner_.result_base(),
          config_.probe_filter_selectivity, &out.matches,
          /*row_id_base=*/begin, collect);
      Status st = gpu_->memory().fault_status();
      if (!st.ok()) return st;
      out.seconds = gpu_->TimeOf(join);
      break;
    }

    case core::InljConfig::PartitionMode::kFull: {
      Result<core::WindowRun> run =
          joiner_.RunWindow(begin, count, ordinal, collect);
      if (!run.ok()) return run.status();
      out.seconds = run->seconds();
      out.matches = run->matches;
      out.windows = 1;
      break;
    }

    case core::InljConfig::PartitionMode::kWindowed: {
      const uint64_t w =
          std::clamp<uint64_t>(plan.window_tuples, 32, count);
      for (uint64_t off = 0; off < count; off += w) {
        const uint64_t n = std::min(w, count - off);
        Result<core::WindowRun> run =
            joiner_.RunWindow(begin + off, n, ordinal, collect);
        if (!run.ok()) return run.status();
        out.seconds += run->seconds();
        out.matches += run->matches;
        ++out.windows;
      }
      break;
    }
  }
  return out;
}

}  // namespace gpujoin::plan
