#include "plan/router.h"

#include <algorithm>

#include "util/check.h"

namespace gpujoin::plan {

double Planner::CorrectedSeconds(const PlanContext& ctx,
                                 const PlanChoice& plan,
                                 const BatchFeatures& features) const {
  const double seed = PredictSeconds(ctx, plan, features);
  return residuals_.Correct(plan, FeatureBucket(features), seed);
}

RoutingDecision Planner::Decide(const PlanContext& ctx,
                                const std::vector<PlanChoice>& candidates,
                                const BatchFeatures& features) {
  GPUJOIN_CHECK(!candidates.empty()) << "Decide needs at least one candidate";
  ++decisions_;

  if (config_.mode == PlannerMode::kStatic) {
    RoutingDecision d;
    d.chosen = config_.static_choice;
    d.predicted_seconds = CorrectedSeconds(ctx, d.chosen, features);
    return d;
  }

  std::vector<double> corrected(candidates.size());
  size_t best = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    corrected[i] = CorrectedSeconds(ctx, candidates[i], features);
    if (corrected[i] < corrected[best]) best = i;  // ties keep the first
  }

  RoutingDecision d;
  d.chosen = candidates[best];
  d.predicted_seconds = corrected[best];

  // kOracle routing is resolved by the caller (it runs every candidate
  // and charges the cheapest); the planner's argmin only serves as its
  // prediction record, so no exploration and no RNG draw there.
  if (config_.mode != PlannerMode::kAdaptive) return d;

  // Exactly one RNG draw per adaptive decision; the second draw (picking
  // which alternative) is taken only on the explore branch, which is
  // itself a deterministic function of the first draw and the corrected
  // costs. Bit-identical routing for a fixed batch stream.
  const double u = rng_.NextDouble();
  if (u < config_.epsilon) {
    // Exploration exists to keep residual cells off the greedy path
    // fresh. The cheapest in-ceiling candidate this bucket has never
    // observed goes first — it is both the likeliest undiscovered winner
    // and the cheapest insurance if the estimate holds. Only when every
    // in-ceiling alternative has a cell does the draw fall back to
    // re-measuring a random one.
    std::vector<size_t> alternatives;
    size_t unobserved = candidates.size();
    const double ceiling = corrected[best] * config_.explore_ceiling;
    const int bucket = FeatureBucket(features);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (i == best || corrected[i] > ceiling) continue;
      alternatives.push_back(i);
      if (!residuals_.Observed(candidates[i], bucket) &&
          (unobserved == candidates.size() ||
           corrected[i] < corrected[unobserved])) {
        unobserved = i;
      }
    }
    size_t idx = candidates.size();
    if (unobserved < candidates.size()) {
      idx = unobserved;
    } else if (!alternatives.empty()) {
      idx = alternatives[static_cast<size_t>(
          rng_.NextBounded(alternatives.size()))];
    }
    if (idx < candidates.size()) {
      d.chosen = candidates[idx];
      d.predicted_seconds = corrected[idx];
      d.explored = true;
      ++explorations_;
    }
  }
  return d;
}

void Planner::Observe(const PlanContext& ctx, const PlanChoice& plan,
                      const BatchFeatures& features, double actual_seconds) {
  const double seed = PredictSeconds(ctx, plan, features);
  residuals_.Observe(plan, FeatureBucket(features), seed, actual_seconds);
}

}  // namespace gpujoin::plan
