#include "plan/plan_space.h"

#include <algorithm>
#include <string>

namespace gpujoin::plan {

namespace {

using core::InljConfig;

// Dominance rules (documented once, applied in EnumeratePlans):
//
//  1. R well inside the TLB range (r_bytes * 2 <= tlb_coverage): drop
//     kFull/kWindowed. Translation is never the bottleneck there, the
//     probe keys are near-unique so partitioning buys no cache reuse,
//     and the partition pass + per-window sync are pure overhead — the
//     unpartitioned INLJ dominates (Fig. 3: the naive INLJ only
//     collapses *beyond* the TLB range).
//  2. R well past the TLB range (r_bytes > 2 * tlb_coverage): drop
//     kNone. Every index's random probes thrash the TLB and the join
//     goes translation-bound (Fig. 3/4); any partitioned variant
//     dominates.
//  3. Window entries no smaller than the batch collapse onto kFull (one
//     window == partition everything up front), so only the first such
//     entry is kept — and dropped entirely when kFull is already a
//     candidate.
//  4. Hash join scans all of R for every batch. When that scan moves
//     more bytes than the worst INLJ candidate could gather
//     (r_bytes > batch_tuples * 2 KiB, i.e. more than ~16 cachelines
//     per probe tuple), the INLJ dominates on the same link.
bool KeepInlj(const PlanSpaceConfig& config, const PruneContext& ctx,
              InljConfig::PartitionMode mode, uint64_t window_tuples,
              bool* saw_full_window) {
  const bool partitioned = mode != InljConfig::PartitionMode::kNone;
  if (!config.prune) return true;
  if (ctx.r_bytes > 0 && ctx.tlb_coverage > 0) {
    if (partitioned && ctx.r_bytes * 2 <= ctx.tlb_coverage) return false;
    if (!partitioned && ctx.r_bytes > 2 * ctx.tlb_coverage) return false;
  }
  if (mode == InljConfig::PartitionMode::kWindowed &&
      ctx.batch_tuples > 0 && window_tuples >= ctx.batch_tuples) {
    if (*saw_full_window) return false;
    *saw_full_window = true;
    if (config.include_full) return false;  // identical to the kFull entry
  }
  return true;
}

}  // namespace

const char* PlannerModeName(PlannerMode mode) {
  switch (mode) {
    case PlannerMode::kStatic:
      return "static";
    case PlannerMode::kAdaptive:
      return "adaptive";
    case PlannerMode::kOracle:
      return "oracle";
  }
  return "unknown";
}

Result<PlannerMode> ParsePlannerMode(std::string_view name) {
  if (name == "static") return PlannerMode::kStatic;
  if (name == "adaptive") return PlannerMode::kAdaptive;
  if (name == "oracle") return PlannerMode::kOracle;
  return Status::InvalidArgument("unknown planner mode '" +
                                 std::string(name) +
                                 "' (want static|adaptive|oracle)");
}

std::string PlanChoice::Name() const {
  if (kind == Kind::kHashJoin) return "hash_join";
  std::string name = index::IndexTypeName(index_type);
  name += "/";
  name += core::PartitionModeName(mode);
  if (mode == core::InljConfig::PartitionMode::kWindowed) {
    name += "/" + std::to_string(window_tuples);
  }
  return name;
}

bool PlanChoice::operator==(const PlanChoice& o) const {
  if (kind != o.kind) return false;
  if (kind == Kind::kHashJoin) return true;
  if (index_type != o.index_type || mode != o.mode) return false;
  return mode != core::InljConfig::PartitionMode::kWindowed ||
         window_tuples == o.window_tuples;
}

std::vector<PlanChoice> EnumeratePlans(const PlanSpaceConfig& config,
                                       const PruneContext& context) {
  std::vector<PlanChoice> plans;
  for (index::IndexType type : config.indexes) {
    bool saw_full_window = false;
    if (config.include_unpartitioned &&
        KeepInlj(config, context, core::InljConfig::PartitionMode::kNone, 0,
                 &saw_full_window)) {
      plans.push_back({PlanChoice::Kind::kInlj, type,
                       core::InljConfig::PartitionMode::kNone, 0});
    }
    if (config.include_full &&
        KeepInlj(config, context, core::InljConfig::PartitionMode::kFull, 0,
                 &saw_full_window)) {
      plans.push_back({PlanChoice::Kind::kInlj, type,
                       core::InljConfig::PartitionMode::kFull, 0});
    }
    for (uint64_t w : config.window_ladder) {
      if (KeepInlj(config, context, core::InljConfig::PartitionMode::kWindowed,
                   w, &saw_full_window)) {
        plans.push_back({PlanChoice::Kind::kInlj, type,
                         core::InljConfig::PartitionMode::kWindowed, w});
      }
    }
  }
  if (config.include_hash_join) {
    const bool scan_dominated =
        config.prune && context.r_bytes > 0 && context.batch_tuples > 0 &&
        context.r_bytes > context.batch_tuples * 2048;
    if (!scan_dominated) {
      PlanChoice hash;
      hash.kind = PlanChoice::Kind::kHashJoin;
      plans.push_back(hash);
    }
  }
  return plans;
}

Result<PlanChoice> ParsePlanChoice(std::string_view name) {
  if (name == "hash_join") {
    PlanChoice hash;
    hash.kind = PlanChoice::Kind::kHashJoin;
    return hash;
  }
  const size_t slash = name.find('/');
  if (slash == std::string_view::npos) {
    return Status::InvalidArgument(
        "plan '" + std::string(name) +
        "' is not hash_join or <index>/<mode>[/<window_tuples>]");
  }
  const std::string_view index_name = name.substr(0, slash);
  std::string_view rest = name.substr(slash + 1);

  PlanChoice plan;
  plan.kind = PlanChoice::Kind::kInlj;
  bool found = false;
  for (index::IndexType type :
       {index::IndexType::kBinarySearch, index::IndexType::kBTree,
        index::IndexType::kHarmonia, index::IndexType::kRadixSpline}) {
    if (index_name == index::IndexTypeName(type)) {
      plan.index_type = type;
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::InvalidArgument("unknown index '" +
                                   std::string(index_name) + "'");
  }

  std::string_view mode_name = rest;
  std::string_view window;
  const size_t slash2 = rest.find('/');
  if (slash2 != std::string_view::npos) {
    mode_name = rest.substr(0, slash2);
    window = rest.substr(slash2 + 1);
  }
  if (mode_name == "none") {
    plan.mode = core::InljConfig::PartitionMode::kNone;
  } else if (mode_name == "full") {
    plan.mode = core::InljConfig::PartitionMode::kFull;
  } else if (mode_name == "windowed") {
    plan.mode = core::InljConfig::PartitionMode::kWindowed;
  } else {
    return Status::InvalidArgument("unknown partition mode '" +
                                   std::string(mode_name) + "'");
  }
  plan.window_tuples = 0;
  if (plan.mode == core::InljConfig::PartitionMode::kWindowed) {
    if (window.empty()) {
      return Status::InvalidArgument(
          "windowed plan needs a window size: <index>/windowed/<tuples>");
    }
    uint64_t tuples = 0;
    for (char c : window) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad window size '" +
                                       std::string(window) + "'");
      }
      tuples = tuples * 10 + static_cast<uint64_t>(c - '0');
    }
    if (tuples == 0) {
      return Status::InvalidArgument("window size must be positive");
    }
    plan.window_tuples = tuples;
  }
  return plan;
}

}  // namespace gpujoin::plan
