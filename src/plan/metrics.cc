#include "plan/metrics.h"

#include <map>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace gpujoin::plan {

std::string PlannerJson(const PlannedBackend& backend) {
  const Planner& planner = backend.planner();

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("mode").String(PlannerModeName(planner.config().mode));
  w.Key("decisions").Uint(planner.decisions());
  w.Key("explorations").Uint(planner.explorations());
  w.Key("residual_observations").Uint(planner.residuals().observations());
  w.Key("total_seconds").Double(backend.total_seconds());
  w.Key("total_matches").Uint(backend.total_matches());

  // Per-plan usage, in first-routed order (deterministic).
  std::vector<std::pair<std::string, std::pair<uint64_t, double>>> usage;
  std::map<std::string, size_t> usage_index;
  for (const BatchOutcome& b : backend.outcomes()) {
    const std::string name = b.chosen.Name();
    auto [it, inserted] = usage_index.try_emplace(name, usage.size());
    if (inserted) usage.push_back({name, {0, 0}});
    usage[it->second].second.first += 1;
    usage[it->second].second.second += b.charged_seconds;
  }
  w.Key("plan_usage");
  w.BeginArray();
  for (const auto& [name, stats] : usage) {
    w.BeginObject();
    w.Key("plan").String(name);
    w.Key("batches").Uint(stats.first);
    w.Key("seconds").Double(stats.second);
    w.EndObject();
  }
  w.EndArray();

  w.Key("batches");
  w.BeginArray();
  for (const BatchOutcome& b : backend.outcomes()) {
    w.BeginObject();
    w.Key("ordinal").Uint(b.ordinal);
    w.Key("begin").Uint(b.begin);
    w.Key("count").Uint(b.count);
    w.Key("plan").String(b.chosen.Name());
    w.Key("predicted_seconds").Double(b.predicted_seconds);
    w.Key("charged_seconds").Double(b.charged_seconds);
    w.Key("explored").Bool(b.explored);
    w.Key("matches").Uint(b.matches);
    w.Key("features");
    w.BeginObject();
    w.Key("skew").Double(b.features.skew);
    w.Key("selectivity").Double(b.features.selectivity);
    w.Key("r_tlb_ratio").Double(b.features.r_tlb_ratio);
    w.Key("link_utilization").Double(b.features.link_utilization);
    w.Key("bucket").Int(FeatureBucket(b.features));
    w.EndObject();
    if (!b.candidate_seconds.empty()) {
      w.Key("candidates");
      w.BeginArray();
      for (const auto& [name, seconds] : b.candidate_seconds) {
        w.BeginObject();
        w.Key("plan").String(name);
        w.Key("seconds").Double(seconds);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.TakeString();
}

}  // namespace gpujoin::plan
