#include "plan/backend.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace gpujoin::plan {

namespace {

// Analytic interconnect traffic of the hash-join candidate (probe stream
// + full R scan); the candidate is priced, not executed, so its link
// signal is synthesized the same way.
uint64_t HashJoinHostBytes(uint64_t batch_tuples, uint64_t r_tuples) {
  return batch_tuples * 8 + r_tuples * 8;
}

}  // namespace

Result<std::unique_ptr<PlannedBackend>> PlannedBackend::Create(
    const PlannedBackendConfig& config, Planner* shared_planner) {
  if (config.space.indexes.empty()) {
    return Status::InvalidArgument(
        "planned backend needs at least one candidate index type");
  }

  auto backend = std::unique_ptr<PlannedBackend>(new PlannedBackend());
  backend->config_ = config;
  backend->ctx_.platform = config.base.platform;
  backend->ctx_.r_tuples = config.base.r_tuples;

  for (index::IndexType type : config.space.indexes) {
    if (backend->engines_.count(type) > 0) continue;
    core::ExperimentConfig ec = config.base;
    ec.index_type = type;
    // Every engine must service the exact same probe slice with the same
    // global row ids, whichever partition mode the router picks — force
    // thinned sampling so the sample is mode-independent.
    ec.sample_scheme = core::ExperimentConfig::SampleSchemeOverride::kThinned;

    Result<std::unique_ptr<core::Experiment>> exp =
        core::Experiment::Create(ec);
    if (!exp.ok()) return exp.status();
    Engine& engine = backend->engines_[type];
    engine.experiment = std::move(*exp);
    engine.experiment->EnableObservability();
    engine.experiment->ResetForRun();

    Result<BatchExecutor> executor = BatchExecutor::Create(
        engine.experiment->gpu(), engine.experiment->index(),
        engine.experiment->s(), ec.inlj,
        engine.experiment->s().sample_size());
    if (!executor.ok()) return executor.status();
    engine.executor.emplace(std::move(*executor));
  }

  backend->sample_size_ =
      backend->engines_.begin()->second.experiment->s().sample_size();
  backend->extractor_.emplace(config.base.r_tuples * 8,
                              config.base.platform.gpu.tlb_coverage,
                              config.planner.seed);
  if (shared_planner != nullptr) {
    backend->planner_ = shared_planner;
  } else {
    backend->owned_planner_.emplace(config.planner);
    backend->planner_ = &*backend->owned_planner_;
  }
  return backend;
}

std::vector<PlanChoice> PlannedBackend::CandidatesFor(
    uint64_t batch_tuples) const {
  PruneContext ctx;
  ctx.r_bytes = ctx_.r_tuples * 8;
  ctx.tlb_coverage = ctx_.platform.gpu.tlb_coverage;
  ctx.batch_tuples = batch_tuples;
  return EnumeratePlans(config_.space, ctx);
}

uint64_t PlannedBackend::HashJoinMatches(
    uint64_t begin, uint64_t count,
    std::vector<core::JoinMatch>* collect) const {
  const core::Experiment& exp = *engines_.begin()->second.experiment;
  const workload::KeyColumn& r = exp.r();
  const workload::Key* keys = exp.s().keys.data().data() + begin;
  uint64_t matches = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t pos = r.LowerBound(keys[i]);
    if (pos < r.size() && r.key_at(pos) == keys[i]) {
      ++matches;
      if (collect != nullptr) collect->push_back({begin + i, pos});
    }
  }
  return matches;
}

PlannedBackend::EngineObservation PlannedBackend::ObserveEngine(
    index::IndexType type, uint64_t windows) const {
  EngineObservation observed;
  const auto* timeline = engines_.at(type).experiment->phase_timeline();
  for (const sim::PhaseSpan& span : timeline->Spans()) {
    observed.seconds += span.seconds;
    observed.host_bytes += span.delta.interconnect_bytes();
  }
  observed.seconds += static_cast<double>(windows) *
                      ctx_.platform.gpu.stream_sync_overhead;
  return observed;
}

Result<BatchResult> PlannedBackend::ExecutePlan(
    const PlanChoice& plan, uint64_t begin, uint64_t count, uint64_t ordinal,
    std::vector<core::JoinMatch>* collect) {
  if (plan.kind == PlanChoice::Kind::kHashJoin) {
    BatchFeatures f;
    f.batch_tuples = count;
    f.selectivity = 1.0;
    BatchResult out;
    out.seconds = PredictSeconds(ctx_, plan, f);
    out.matches = HashJoinMatches(begin, count, collect);
    return out;
  }
  auto it = engines_.find(plan.index_type);
  if (it == engines_.end()) {
    return Status::InvalidArgument("no engine for plan " + plan.Name() +
                                   " (index not in the plan space)");
  }
  it->second.experiment->phase_timeline()->Reset();
  return it->second.executor->Execute(plan, begin, count, ordinal, collect);
}

Result<BatchOutcome> PlannedBackend::RouteSlice(
    uint64_t begin, uint64_t count, uint64_t ordinal,
    std::vector<core::JoinMatch>* collect) {
  if (count == 0) {
    return Status::InvalidArgument("cannot route an empty slice");
  }
  if (begin + count > sample_size_) {
    return Status::InvalidArgument("slice exceeds the probe sample");
  }

  BatchOutcome out;
  out.ordinal = ordinal;
  out.begin = begin;
  out.count = count;

  const workload::ProbeRelation& s = engines_.begin()->second.experiment->s();
  out.features = extractor_->Extract(s.keys.data().data() + begin, count);
  const std::vector<PlanChoice> candidates = CandidatesFor(count);
  if (candidates.empty()) {
    return Status::InvalidArgument("plan space pruned to nothing");
  }

  const RoutingDecision decision =
      planner_->Decide(ctx_, candidates, out.features);
  out.predicted_seconds = decision.predicted_seconds;
  out.explored = decision.explored;

  double link_bytes = 0;

  if (planner_->config().mode == PlannerMode::kOracle) {
    // Run every candidate and charge the cheapest. Engines are
    // independent, so each engine's candidates run serially (in
    // enumeration order) on one pool task; results land in preallocated
    // per-candidate slots, and everything downstream folds over those
    // slots in enumeration order — the thread count can never change a
    // number.
    struct Slot {
      Status status;
      BatchResult result;
      EngineObservation observed;
    };
    std::vector<Slot> slots(candidates.size());

    std::map<index::IndexType, std::vector<size_t>> by_engine;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].kind == PlanChoice::Kind::kHashJoin) {
        slots[i].result.seconds =
            PredictSeconds(ctx_, candidates[i], out.features);
        slots[i].observed.seconds = slots[i].result.seconds;
        slots[i].observed.host_bytes =
            HashJoinHostBytes(count, ctx_.r_tuples);
      } else {
        by_engine[candidates[i].index_type].push_back(i);
      }
    }

    util::ThreadPool pool(config_.oracle_threads > 0
                              ? config_.oracle_threads
                              : util::ThreadPool::HardwareConcurrency());
    for (auto& [type, indices] : by_engine) {
      Engine& engine = engines_.at(type);
      pool.Submit([this, &engine, &slots, &candidates, indices, begin, count,
                   ordinal]() {
        for (size_t i : indices) {
          engine.experiment->phase_timeline()->Reset();
          Result<BatchResult> r = engine.executor->Execute(
              candidates[i], begin, count, ordinal, nullptr);
          if (!r.ok()) {
            slots[i].status = r.status();
            return;
          }
          slots[i].result = *r;
          slots[i].observed =
              ObserveEngine(candidates[i].index_type, r->windows);
        }
      });
    }
    Status pool_status = pool.Wait();
    if (!pool_status.ok()) return pool_status;
    for (const Slot& slot : slots) {
      if (!slot.status.ok()) return slot.status;
    }

    size_t best = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      out.candidate_seconds.emplace_back(candidates[i].Name(),
                                         slots[i].result.seconds);
      if (slots[i].result.seconds < slots[best].result.seconds) best = i;
    }
    out.chosen = candidates[best];
    out.charged_seconds = slots[best].result.seconds;
    out.matches = out.chosen.kind == PlanChoice::Kind::kHashJoin
                      ? HashJoinMatches(begin, count, collect)
                      : slots[best].result.matches;
    link_bytes = static_cast<double>(slots[best].observed.host_bytes);

    // The oracle saw every candidate's true time — feed them all, so a
    // shared planner warm-started by an oracle phase routes well.
    for (size_t i = 0; i < candidates.size(); ++i) {
      planner_->Observe(ctx_, candidates[i], out.features,
                        slots[i].result.seconds);
    }
  } else {
    out.chosen = decision.chosen;
    if (out.chosen.kind == PlanChoice::Kind::kHashJoin) {
      out.charged_seconds = PredictSeconds(ctx_, out.chosen, out.features);
      out.matches = HashJoinMatches(begin, count, collect);
      link_bytes =
          static_cast<double>(HashJoinHostBytes(count, ctx_.r_tuples));
      planner_->Observe(ctx_, out.chosen, out.features, out.charged_seconds);
    } else {
      auto it = engines_.find(out.chosen.index_type);
      if (it == engines_.end()) {
        return Status::InvalidArgument("no engine for routed plan " +
                                       out.chosen.Name());
      }
      it->second.experiment->phase_timeline()->Reset();
      Result<BatchResult> r = it->second.executor->Execute(
          out.chosen, begin, count, ordinal, collect);
      if (!r.ok()) return r.status();
      out.charged_seconds = r->seconds;
      out.matches = r->matches;
      const EngineObservation observed =
          ObserveEngine(out.chosen.index_type, r->windows);
      link_bytes = static_cast<double>(observed.host_bytes);
      // Residuals learn the charged time — the objective the router
      // minimizes. The span sum composes the pipeline stages serially,
      // so it over-counts what the cost model overlaps, by a different
      // factor per plan shape; it feeds the link signal instead.
      planner_->Observe(ctx_, out.chosen, out.features, r->seconds);
    }
  }

  extractor_->ObserveMatches(count, out.matches);
  const double capacity = ctx_.platform.interconnect.seq_bandwidth *
                          std::max(out.charged_seconds, 1e-12);
  extractor_->SetLinkUtilization(capacity > 0 ? link_bytes / capacity : 0);

  total_seconds_ += out.charged_seconds;
  total_matches_ += out.matches;
  outcomes_.push_back(out);
  return out;
}

Result<double> PlannedBackend::ServiceSlice(uint64_t begin, uint64_t count,
                                            uint64_t ordinal) {
  Result<BatchOutcome> outcome = RouteSlice(begin, count, ordinal);
  if (!outcome.ok()) return outcome.status();
  return outcome->charged_seconds;
}

Result<double> PlannedBackend::ServiceHedge(uint64_t begin, uint64_t count,
                                            uint64_t ordinal) {
  if (count == 0) {
    return Status::InvalidArgument("cannot hedge an empty slice");
  }
  if (begin + count > sample_size_) {
    return Status::InvalidArgument("slice exceeds the probe sample");
  }
  PlanChoice replica;
  replica.kind = PlanChoice::Kind::kInlj;
  replica.index_type = config_.base.index_type;
  replica.mode = core::InljConfig::PartitionMode::kFull;
  Result<BatchResult> run = ExecutePlan(replica, begin, count, ordinal);
  if (!run.ok()) return run.status();
  return run->seconds;
}

}  // namespace gpujoin::plan
