#ifndef GPUJOIN_PLAN_EXECUTOR_H_
#define GPUJOIN_PLAN_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "core/inlj.h"
#include "core/match.h"
#include "core/window_join.h"
#include "index/index.h"
#include "plan/plan_space.h"
#include "sim/gpu.h"
#include "util/status.h"
#include "workload/relation.h"

namespace gpujoin::plan {

// What one routed batch cost and produced.
struct BatchResult {
  // Cost-model seconds charged for the batch (per-window stream sync
  // included on partitioned plans).
  double seconds = 0;
  uint64_t matches = 0;
  // Partition+join windows executed: 0 for kNone, 1 for kFull, the
  // ladder count for kWindowed.
  uint64_t windows = 0;
};

// Executes routed batches on one (gpu, index) engine. One executor owns
// one WindowJoiner — a single partition plan and result buffer shared by
// the kFull plan and every windowed ladder entry — and the kNone plan
// goes straight through the shared probe kernel into the same buffer, so
// switching plans between batches costs nothing extra.
//
// Batch isolation matches the batch pipeline's window policy: caches are
// flushed before every batch except the executor's first, and each batch
// runs under one WindowScope ordinal so its phase spans aggregate.
class BatchExecutor {
 public:
  static Result<BatchExecutor> Create(sim::Gpu& gpu,
                                      const index::Index& index,
                                      const workload::ProbeRelation& s,
                                      const core::InljConfig& config,
                                      uint64_t result_tuples);

  // Runs s[begin, begin+count) under `plan` (must be an INLJ plan; the
  // hash-join candidate has no per-batch engine and is priced by the
  // backend). `ordinal` labels the batch for the phase timeline.
  Result<BatchResult> Execute(const PlanChoice& plan, uint64_t begin,
                              uint64_t count, uint64_t ordinal,
                              std::vector<core::JoinMatch>* collect = nullptr);

  bool result_on_host() const { return joiner_.result_on_host(); }

 private:
  BatchExecutor(sim::Gpu& gpu, const index::Index& index,
                const workload::ProbeRelation& s,
                const core::InljConfig& config, core::WindowJoiner joiner)
      : gpu_(&gpu),
        index_(&index),
        s_(&s),
        config_(config),
        joiner_(std::move(joiner)) {}

  sim::Gpu* gpu_;
  const index::Index* index_;
  const workload::ProbeRelation* s_;
  core::InljConfig config_;
  core::WindowJoiner joiner_;
  bool first_batch_ = true;
};

}  // namespace gpujoin::plan

#endif  // GPUJOIN_PLAN_EXECUTOR_H_
