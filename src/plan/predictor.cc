#include "plan/predictor.h"

#include <algorithm>
#include <cmath>

#include "sim/cost_model.h"
#include "sim/counters.h"
#include "util/bit_util.h"

namespace gpujoin::plan {

namespace {

constexpr double kLineBytes = 128;
constexpr double kResultBytesPerMatch = 16;  // (row_id, position)

// Cache-missing host cachelines one lookup touches, per index structure.
// Coarse by design: relative depth is what matters (the ordering of
// Fig. 3's series); absolute error is what the residual model corrects.
double LookupLines(index::IndexType type, uint64_t r_tuples) {
  const double lg =
      std::log2(static_cast<double>(std::max<uint64_t>(r_tuples, 2)));
  switch (type) {
    case index::IndexType::kBinarySearch:
      // One line per probed level; the first ~12 levels' lines are hot
      // across the warp and stay cache-resident.
      return std::max(1.0, lg - 12.0);
    case index::IndexType::kBTree:
      // ~460-key nodes: height = ceil(log_460 |R|) levels, two lines
      // per visited node (intra-node binary search), cached root fan.
      return std::max(1.0, 2.0 * (std::ceil(lg / std::log2(460.0)) - 1.0));
    case index::IndexType::kHarmonia:
      // Fanout-32 key array with the topology prefix cached.
      return std::max(1.0, std::ceil(lg / 5.0) - 1.0);
    case index::IndexType::kRadixSpline:
      // Cached radix table, one spline segment line, one bounded data
      // search line.
      return 2.0;
  }
  return 2.0;
}

}  // namespace

double PredictSeconds(const PlanContext& ctx, const PlanChoice& plan,
                      const BatchFeatures& f) {
  const sim::GpuSpec& gpu = ctx.platform.gpu;
  const uint64_t n = std::max<uint64_t>(f.batch_tuples, 1);
  const double r_bytes = static_cast<double>(ctx.r_tuples) * 8.0;
  sim::CounterSet c;

  if (plan.kind == PlanChoice::Kind::kHashJoin) {
    // Build a table over the batch's keys, then stream-scan R and probe.
    c.host_seq_read_bytes = n * 8 + ctx.r_tuples * 8;
    c.hbm_write_bytes = n * 32;  // slot + value writes
    const double table_bytes = static_cast<double>(n) * 32.0;
    if (table_bytes > static_cast<double>(gpu.l2_size)) {
      // Table probes spill past L2: one device line per scanned tuple.
      c.hbm_read_bytes = static_cast<uint64_t>(
          static_cast<double>(ctx.r_tuples) * kLineBytes);
    }
    c.warp_steps = n + ctx.r_tuples;
    c.memory_transactions = ctx.r_tuples / 16 + n;
    c.hbm_write_bytes += static_cast<uint64_t>(
        std::llround(static_cast<double>(n) * f.selectivity *
                     kResultBytesPerMatch));
    c.kernel_launches = 2;
    return sim::CostModel(ctx.platform).Seconds(c);
  }

  const bool partitioned =
      plan.mode != core::InljConfig::PartitionMode::kNone;
  uint64_t windows = 1;
  if (plan.mode == core::InljConfig::PartitionMode::kWindowed) {
    const uint64_t w = std::clamp<uint64_t>(plan.window_tuples, 1, n);
    windows = bits::CeilDiv(n, w);
  }

  // Probe keys stream in once.
  c.host_seq_read_bytes = n * 8;
  if (partitioned) {
    // Histogram read + (key, row id) scatter in device memory.
    c.hbm_read_bytes += n * 16;
    c.hbm_write_bytes += n * 16;
  }

  // Index lookups: random host lines, discounted by what the caches
  // absorb — hot keys under skew, and a whole working set that fits L2.
  double lines = LookupLines(plan.index_type, ctx.r_tuples) *
                 static_cast<double>(n);
  lines *= 1.0 - 0.9 * std::clamp(f.skew, 0.0, 1.0);
  // The device caches pin the L2-sized hot top of R across batches, so
  // only the fraction of R past the L2 pays host lines — down to a 5%
  // floor once R fits entirely (repeat probes of a resident relation).
  const double cached =
      r_bytes > 0 ? std::min(1.0, static_cast<double>(gpu.l2_size) / r_bytes)
                  : 0.0;
  lines *= std::max(0.05, 1.0 - cached);
  c.host_random_read_bytes =
      static_cast<uint64_t>(std::llround(lines * kLineBytes));
  c.memory_transactions = static_cast<uint64_t>(std::llround(lines));

  // Translation requests: random gathers miss the TLB once the touched
  // range exceeds its coverage; co-resident warp churn makes the miss
  // rate collapse to ~1 well before 2x (Fig. 4). Partitioning shrinks
  // the instantaneous working set to one partition's slice of R.
  double working = r_bytes;
  if (partitioned) {
    working = r_bytes / 2048.0;  // 2^11 partitions (Sec. 4.3.1)
    working = std::max(working, static_cast<double>(n) * 8.0);
  }
  const double ratio = gpu.tlb_coverage > 0
                           ? working / static_cast<double>(gpu.tlb_coverage)
                           : 0;
  if (ratio > 1.0) {
    const double miss = std::min(1.0, 2.0 * (1.0 - 1.0 / ratio));
    c.translation_requests =
        static_cast<uint64_t>(std::llround(lines * miss));
  }

  // Result materialization in device memory.
  c.hbm_write_bytes += static_cast<uint64_t>(std::llround(
      static_cast<double>(n) * f.selectivity * kResultBytesPerMatch));

  c.warp_steps = static_cast<uint64_t>(std::llround(
      static_cast<double>(n) *
      (1.0 + LookupLines(plan.index_type, ctx.r_tuples))));
  c.kernel_launches = partitioned ? 2 * windows : 1;

  double seconds = sim::CostModel(ctx.platform).Seconds(c);
  if (partitioned) {
    seconds += static_cast<double>(windows) * gpu.stream_sync_overhead;
  }
  return seconds;
}

double ResidualModel::Correct(const PlanChoice& plan, int bucket,
                              double predicted) const {
  const auto it = ratios_.find({plan.Name(), bucket});
  if (it != ratios_.end()) return predicted * it->second.value();
  const auto pooled = bucket_ratios_.find(bucket);
  if (pooled != bucket_ratios_.end()) {
    return predicted * pooled->second.value();
  }
  return predicted;
}

bool ResidualModel::Observed(const PlanChoice& plan, int bucket) const {
  return ratios_.count({plan.Name(), bucket}) > 0;
}

void ResidualModel::Observe(const PlanChoice& plan, int bucket,
                            double predicted, double actual) {
  if (predicted <= 0 || actual <= 0) return;
  const double ratio =
      std::clamp(actual / predicted, 1.0 / 32.0, 32.0);
  // Unseeded: the first observation is adopted outright (see the class
  // comment), later ones blend at alpha.
  auto [it, inserted] =
      ratios_.try_emplace(std::make_pair(plan.Name(), bucket),
                          util::Ewma(alpha_));
  it->second.Observe(ratio);
  auto [pooled, pooled_inserted] =
      bucket_ratios_.try_emplace(bucket, util::Ewma(alpha_));
  pooled->second.Observe(ratio);
  ++observations_;
}

}  // namespace gpujoin::plan
