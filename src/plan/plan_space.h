#ifndef GPUJOIN_PLAN_PLAN_SPACE_H_
#define GPUJOIN_PLAN_PLAN_SPACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/inlj.h"
#include "index/index.h"
#include "util/status.h"

namespace gpujoin::plan {

// How a routed caller picks plans:
//  * kStatic   — one fixed PlanChoice for every batch (the pre-planner
//    behaviour; the A/B baseline).
//  * kAdaptive — per-batch argmin over the corrected cost predictions,
//    with epsilon-greedy exploration (the planner proper).
//  * kOracle   — run every candidate on each batch and charge the
//    cheapest: the hindsight lower bound the regret figures divide by.
enum class PlannerMode { kStatic, kAdaptive, kOracle };

const char* PlannerModeName(PlannerMode mode);
Result<PlannerMode> ParsePlannerMode(std::string_view name);

// One executable plan for a probe batch: which index structure (or the
// hash-join baseline) and which partitioning treatment. This is the unit
// the router ranks and the executors run.
struct PlanChoice {
  enum class Kind { kInlj, kHashJoin };

  Kind kind = Kind::kInlj;
  index::IndexType index_type = index::IndexType::kRadixSpline;
  core::InljConfig::PartitionMode mode =
      core::InljConfig::PartitionMode::kWindowed;
  // Tumbling sub-window capacity in probe tuples; consulted only when
  // mode == kWindowed.
  uint64_t window_tuples = uint64_t{1} << 22;

  // Stable human-readable key, e.g. "radix_spline/windowed/131072",
  // "btree/none", "hash_join". Used as the residual-model key and in the
  // planner metrics section.
  std::string Name() const;

  bool operator==(const PlanChoice& o) const;
};

// The candidate space the router enumerates.
struct PlanSpaceConfig {
  std::vector<index::IndexType> indexes = {
      index::IndexType::kBinarySearch,
      index::IndexType::kBTree,
      index::IndexType::kHarmonia,
      index::IndexType::kRadixSpline,
  };
  // Window-size ladder for kWindowed candidates, in probe tuples.
  std::vector<uint64_t> window_ladder = {
      uint64_t{1} << 15,
      uint64_t{1} << 17,
      uint64_t{1} << 19,
  };
  bool include_unpartitioned = true;  // kNone candidates
  bool include_full = true;           // kFull candidates
  bool include_hash_join = true;
  // Apply the dominance rules below. The oracle's measurement pass
  // disables pruning so every static {index, mode, window} choice stays
  // comparable across phases.
  bool prune = true;
};

// Workload facts the dominance rules consult. Zeros disable the
// corresponding rule.
struct PruneContext {
  uint64_t r_bytes = 0;
  uint64_t tlb_coverage = 0;
  // Typical batch size in probe tuples (the micro-batcher's size
  // trigger); bounds the effective window size.
  uint64_t batch_tuples = 0;
};

// Enumerates the candidate plans for `config`, applying the dominance
// rules when config.prune (see plan_space.cc for the rules and their
// grounding in the paper's figures). Order is deterministic: indexes in
// config order, modes kNone < kFull < kWindowed, windows ladder order,
// hash join last.
std::vector<PlanChoice> EnumeratePlans(const PlanSpaceConfig& config,
                                       const PruneContext& context);

// Parses a PlanChoice::Name() back into a choice ("hash_join",
// "<index>/<mode>", "<index>/windowed/<tuples>").
Result<PlanChoice> ParsePlanChoice(std::string_view name);

}  // namespace gpujoin::plan

#endif  // GPUJOIN_PLAN_PLAN_SPACE_H_
