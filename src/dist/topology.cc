#include "dist/topology.h"

namespace gpujoin::dist {

namespace {

Link MakeLink(std::string name, const sim::InterconnectSpec& spec,
              bool shared) {
  Link link;
  link.name = std::move(name);
  link.seq_bandwidth = spec.seq_bandwidth;
  link.random_bandwidth = spec.random_bandwidth;
  link.latency = spec.latency;
  link.shared = shared;
  return link;
}

}  // namespace

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kNvLink2:
      return "nvlink2";
    case TopologyKind::kPciE4:
      return "pcie4";
    case TopologyKind::kNvSwitch:
      return "nvswitch";
  }
  return "unknown";
}

Result<Topology> Topology::Create(TopologyKind kind, int num_devices) {
  switch (kind) {
    case TopologyKind::kNvLink2:
    case TopologyKind::kNvSwitch:
      return FromSpec(kind, num_devices, sim::NvLink2());
    case TopologyKind::kPciE4:
      return FromSpec(kind, num_devices, sim::PciE4());
  }
  return Status::InvalidArgument("unknown topology kind");
}

Result<Topology> Topology::FromSpec(TopologyKind kind, int num_devices,
                                    const sim::InterconnectSpec& spec) {
  if (num_devices < 1) {
    return Status::InvalidArgument("topology needs at least one device");
  }
  Topology topo;
  topo.kind_ = kind;
  topo.num_devices_ = num_devices;
  topo.host_link_of_.resize(num_devices);

  const std::string prefix = TopologyKindName(kind);
  if (kind == TopologyKind::kPciE4) {
    // One root complex: every device's host traffic shares this link.
    topo.links_.push_back(MakeLink(prefix + ".host", spec, /*shared=*/true));
    for (int d = 0; d < num_devices; ++d) topo.host_link_of_[d] = 0;
  } else {
    for (int d = 0; d < num_devices; ++d) {
      topo.host_link_of_[d] = static_cast<int>(topo.links_.size());
      topo.links_.push_back(MakeLink(
          prefix + ".host" + std::to_string(d), spec, /*shared=*/false));
    }
  }
  if (kind == TopologyKind::kNvSwitch) {
    topo.peer_link_of_.resize(num_devices);
    for (int d = 0; d < num_devices; ++d) {
      topo.peer_link_of_[d] = static_cast<int>(topo.links_.size());
      topo.links_.push_back(MakeLink(
          prefix + ".port" + std::to_string(d), spec, /*shared=*/false));
    }
  }
  return topo;
}

double Topology::PeerSeconds(int from, int to, uint64_t bytes) const {
  if (from == to || bytes == 0) return 0;
  const double b = static_cast<double>(bytes);
  switch (kind_) {
    case TopologyKind::kNvSwitch: {
      // One switch hop at full NVLink rate.
      const Link& port = links_[peer_link_of_[from]];
      return b / port.seq_bandwidth + port.latency;
    }
    case TopologyKind::kNvLink2: {
      // Through host memory: out on one brick, in on the other.
      const Link& out = links_[host_link_of_[from]];
      const Link& in = links_[host_link_of_[to]];
      return b / out.seq_bandwidth + b / in.seq_bandwidth + out.latency +
             in.latency;
    }
    case TopologyKind::kPciE4: {
      // The shared link carries the payload twice (up, then down).
      const Link& host = links_[host_link_of_[from]];
      return 2 * (b / host.seq_bandwidth + host.latency);
    }
  }
  return 0;
}

std::vector<int> Topology::PeerLinks(int from, int to) const {
  if (from == to) return {};
  switch (kind_) {
    case TopologyKind::kNvSwitch:
      return {peer_link_of_[from], peer_link_of_[to]};
    case TopologyKind::kNvLink2:
      return {host_link_of_[from], host_link_of_[to]};
    case TopologyKind::kPciE4:
      return {host_link_of_[from]};
  }
  return {};
}

}  // namespace gpujoin::dist
