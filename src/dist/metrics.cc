#include "dist/metrics.h"

#include "obs/emitter.h"
#include "obs/json.h"

namespace gpujoin::dist {

std::string ShardsJson(const ShardedRunResult& result) {
  obs::JsonWriter w;
  w.BeginArray();
  for (const ShardStats& s : result.shards) {
    w.BeginObject();
    w.Key("shard").Int(s.shard);
    w.Key("r_tuples").Uint(s.r_tuples);
    w.Key("tuples_routed").Uint(s.tuples_routed);
    w.Key("tuples_stolen_out").Uint(s.tuples_stolen_out);
    w.Key("tuples_stolen_in").Uint(s.tuples_stolen_in);
    w.Key("steals_in").Uint(s.steals_in);
    w.Key("windows").Uint(s.windows);
    w.Key("matches").Uint(s.matches);
    w.Key("busy_seconds").Double(s.busy_seconds);
    w.Key("counters");
    obs::WriteCounterSet(w, s.counters);
    if (!s.phase_spans.empty()) {
      w.Key("phases");
      obs::WritePhaseSpans(w, s.phase_spans);
    }
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

std::string LinksJson(const ShardedRunResult& result) {
  obs::JsonWriter w;
  w.BeginArray();
  for (const LinkStats& l : result.links) {
    w.BeginObject();
    w.Key("name").String(l.name);
    w.Key("bytes").Uint(l.bytes);
    w.Key("utilization").Double(l.utilization);
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

}  // namespace gpujoin::dist
