#ifndef GPUJOIN_DIST_TOPOLOGY_H_
#define GPUJOIN_DIST_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/specs.h"
#include "util/check.h"
#include "util/status.h"

namespace gpujoin::dist {

// How the simulated devices of a sharded run are wired together. The
// paper evaluates one GPU behind one interconnect; scale-out multiplies
// that picture, and what changes between machines is (a) whether the
// host link is per-device or shared and (b) how peers reach each other.
enum class TopologyKind {
  // V100 + NVLink 2.0 (paper Sec. 3.2): every GPU has its own NVLink
  // bricks to CPU memory (POWER9 style), peers talk through the host
  // (two hops).
  kNvLink2,
  // A100 + PCI-e 4.0 (Fig. 9): all devices hang off one root complex;
  // the host link is shared and contended, peer traffic crosses it twice.
  kPciE4,
  // DGX-style NVSwitch fabric: dedicated host links plus an all-to-all
  // switch, so peer transfers take one uncontended hop at NVLink rate.
  kNvSwitch,
};

const char* TopologyKindName(TopologyKind kind);

// One physical link of the topology. Bandwidths/latency come straight
// from the sim::InterconnectSpec the preset was built from.
struct Link {
  std::string name;
  double seq_bandwidth = 0;     // bytes/s, streaming transfers
  double random_bandwidth = 0;  // bytes/s, cacheline gathers
  double latency = 0;           // seconds per hop
  bool shared = false;          // true when several devices contend on it
};

// Interconnect topology for `num_devices` simulated GPUs: which link each
// device uses to reach CPU memory (where R and the probe stream live),
// and what a peer-to-peer transfer between two devices costs. Links are
// identified by index into links() so the scheduler can account bytes
// and contention per physical link.
class Topology {
 public:
  static Result<Topology> Create(TopologyKind kind, int num_devices);
  // As Create, but with an explicit interconnect spec (tests).
  static Result<Topology> FromSpec(TopologyKind kind, int num_devices,
                                   const sim::InterconnectSpec& spec);

  TopologyKind kind() const { return kind_; }
  int num_devices() const { return num_devices_; }
  const std::vector<Link>& links() const { return links_; }

  // Link the device's host traffic (probe keys, index reads over the
  // interconnect) crosses. Shared topologies return the same id for
  // every device. An out-of-range device id is a programming error on
  // the scheduler side, not recoverable input, so it CHECKs (with the
  // offending value named) instead of returning a Status.
  int host_link(int device) const {
    GPUJOIN_CHECK(device >= 0 && device < num_devices_)
        << "host_link: device must be in [0, " << num_devices_
        << "), got " << device;
    return host_link_of_[static_cast<size_t>(device)];
  }

  // Number of devices whose host traffic contends on `link` when all of
  // `active` are transferring at once (1 when the link is dedicated).
  int HostSharers(int link, int active_devices) const {
    GPUJOIN_CHECK(link >= 0 && link < static_cast<int>(links_.size()))
        << "HostSharers: link must be in [0, " << links_.size()
        << "), got " << link;
    return links_[static_cast<size_t>(link)].shared ? active_devices : 1;
  }

  // Simulated seconds to stream `bytes` from device `from` to device
  // `to` (work-stealing handoffs, result merges). Dedicated-link
  // topologies pay per-hop latency; the PCI-e path crosses the shared
  // host link twice.
  double PeerSeconds(int from, int to, uint64_t bytes) const;

  // Links charged by a peer transfer, for utilization accounting.
  std::vector<int> PeerLinks(int from, int to) const;

 private:
  Topology() = default;

  TopologyKind kind_ = TopologyKind::kNvLink2;
  int num_devices_ = 0;
  std::vector<Link> links_;
  std::vector<int> host_link_of_;   // device -> link index
  std::vector<int> peer_link_of_;   // device -> switch port (kNvSwitch)
};

}  // namespace gpujoin::dist

#endif  // GPUJOIN_DIST_TOPOLOGY_H_
