#include "dist/shard_scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/index_factory.h"
#include "core/join_kernel.h"
#include "sim/phase.h"
#include "util/bit_util.h"

namespace gpujoin::dist {

namespace {

uint64_t ScaleStat(uint64_t v, double f) {
  return static_cast<uint64_t>(std::llround(static_cast<double>(v) * f));
}

uint64_t HostBytes(const sim::CounterSet& c) {
  return c.host_random_read_bytes + c.host_seq_read_bytes +
         c.host_write_bytes;
}

// Bytes one stolen probe tuple drags across the fabric: the key on the
// way out, the matched position on the way back.
constexpr uint64_t kStealBytesPerTuple =
    sizeof(workload::Key) + sizeof(uint64_t);

}  // namespace

Result<std::unique_ptr<ShardScheduler>> ShardScheduler::Create(
    const core::ExperimentConfig& cfg, const ShardConfig& dcfg) {
  if (cfg.inlj.mode != core::InljConfig::PartitionMode::kWindowed) {
    return Status::InvalidArgument(
        "the sharded engine runs the windowed INLJ; set "
        "inlj.mode = kWindowed");
  }
  if (dcfg.planner.mode == plan::PlannerMode::kOracle) {
    return Status::InvalidArgument(
        "the sharded engine supports planner = static | adaptive; use "
        "the single-device plan::PlannedBackend for oracle runs");
  }
  Status fst = dcfg.failover.device_faults.Validate(dcfg.num_shards);
  if (!fst.ok()) return fst;
  if (!(dcfg.failover.heartbeat_timeout >= 0) ||
      !std::isfinite(dcfg.failover.heartbeat_timeout)) {
    return Status::InvalidArgument(
        "failover.heartbeat_timeout must be finite and >= 0");
  }
  if (!(dcfg.failover.recovery_penalty >= 1) ||
      !std::isfinite(dcfg.failover.recovery_penalty)) {
    return Status::InvalidArgument(
        "failover.recovery_penalty must be finite and >= 1");
  }
  if (dcfg.failover.enabled() && dcfg.failover.reexec_chunk_budget == 0) {
    return Status::InvalidArgument(
        "failover.reexec_chunk_budget must be >= 1 when device faults "
        "are enabled");
  }
  Result<Topology> topo = Topology::Create(dcfg.topology, dcfg.num_shards);
  if (!topo.ok()) return topo.status();
  std::unique_ptr<ShardScheduler> engine(
      new ShardScheduler(cfg, dcfg, *std::move(topo)));
  Status st = engine->Build();
  if (!st.ok()) return st;
  return engine;
}

Status ShardScheduler::Build() {
  mem::AddressSpace::Options options;
  options.host_page_size = cfg_.host_page_size;

  // Coordinator-side workload: the full R (procedural, read by the
  // router and by shard slices) and the probe sample, generated exactly
  // as core::Experiment does so a sharded run answers the same query.
  base_space_ = std::make_unique<mem::AddressSpace>(options);
  if (cfg_.jittered_keys) {
    base_r_ = std::make_unique<workload::JitteredKeyColumn>(
        base_space_.get(), cfg_.r_tuples, /*stride=*/16, cfg_.seed);
  } else {
    base_r_ = std::make_unique<workload::DenseKeyColumn>(base_space_.get(),
                                                         cfg_.r_tuples);
  }

  workload::ProbeConfig probe_config;
  probe_config.full_size = cfg_.s_tuples;
  probe_config.sample_size = cfg_.s_sample;
  probe_config.zipf_exponent = cfg_.zipf_exponent;
  probe_config.seed = cfg_.seed;
  // kAuto resolves to *thinned* here, unlike the single-device windowed
  // path: a range-restricted sample spans 1/scale of R's key domain, so
  // routing it by key would collapse the whole stream onto one or two
  // shards — the opposite of what the full uniform workload does. The
  // thinned sample draws over all of R and preserves the cross-shard
  // spread; the explicit kRangeRestricted override is still honored for
  // single-shard fidelity studies.
  probe_config.scheme =
      cfg_.sample_scheme ==
              core::ExperimentConfig::SampleSchemeOverride::kRangeRestricted
          ? workload::SampleScheme::kRangeRestricted
          : workload::SampleScheme::kThinned;
  s_ = workload::MakeProbeRelation(base_space_.get(), *base_r_, probe_config);

  // Cluster mode restricts the engine to rows [r_begin, r_end) of R: the
  // planner and every shard slice view the restricted column, while the
  // probe sample above stays the full one (identical on every node; the
  // cluster router only feeds this engine rows whose keys fall in the
  // slice). Positions are slice-relative throughout.
  if (dcfg_.r_begin != 0 || dcfg_.r_end != 0) {
    if (!(dcfg_.r_begin < dcfg_.r_end && dcfg_.r_end <= cfg_.r_tuples)) {
      return Status::InvalidArgument(
          "r restriction must satisfy r_begin < r_end <= r_tuples");
    }
    restricted_r_ = std::make_unique<ShardKeyColumn>(
        base_space_.get(), *base_r_, dcfg_.r_begin,
        dcfg_.r_end - dcfg_.r_begin);
  }
  const workload::KeyColumn& plan_r =
      restricted_r_ != nullptr ? *restricted_r_ : *base_r_;

  Result<ShardPlan> plan = ShardPlanner::Plan(plan_r, dcfg_.num_shards);
  if (!plan.ok()) return plan.status();
  plan_ = *std::move(plan);

  // The window grid. Per device the formulas are the batch pipeline's
  // (core/inlj.cc) — every device has a window capacity of w_full_
  // tuples, sized down for multiple shards only so the aggregate
  // full-scale window never exceeds |S| (the single-device pipeline
  // clamps the same way). One global window is num_shards devices
  // filling their windows at once; with one shard everything below
  // reduces to the batch grid exactly.
  const uint64_t shards = dcfg_.num_shards;
  const double scale = s_.scale();
  const uint64_t sample = s_.sample_size();
  w_full_ = std::min(cfg_.inlj.window_tuples,
                     bits::CeilDiv(cfg_.s_tuples, shards));
  w_dev_ = std::min(w_full_, sample);
  if (s_.scheme == workload::SampleScheme::kRangeRestricted) {
    w_dev_ = std::clamp<uint64_t>(
        static_cast<uint64_t>(
            std::llround(static_cast<double>(w_full_) / scale)),
        32, sample);
  }
  // A simulated global window must fit in the sample; shrink the device
  // window so all shards' shares stay full-density.
  w_dev_ = std::max<uint64_t>(1, std::min(w_dev_, sample / shards));
  window_scale_ =
      static_cast<double>(w_full_) / static_cast<double>(w_dev_);
  stride_ = shards * w_dev_;
  n_sim_ = bits::CeilDiv(sample, stride_);
  n_full_ = bits::CeilDiv(cfg_.s_tuples, shards * w_full_);

  for (int i = 0; i < dcfg_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>(options);
    // Mirror core::Experiment::Build's construction order so the shard's
    // address layout matches a single-device experiment's (the N=1
    // bit-identity guarantee rests on this).
    shard->gpu = std::make_unique<sim::Gpu>(&shard->space, cfg_.platform);
    if (cfg_.fault.enabled()) {
      shard->fault = std::make_unique<sim::FaultInjector>(cfg_.fault);
      shard->gpu->memory().SetFaultInjector(shard->fault.get());
    }
    shard->r = std::make_unique<ShardKeyColumn>(
        &shard->space, plan_r, plan_.pos_begin[i], plan_.shard_r_tuples(i));
    shard->index = core::IndexFactory::Build(
        &shard->space, shard->r.get(), cfg_.index_type,
        {cfg_.btree, cfg_.harmonia, cfg_.radix_spline});
    // Probe buffer the router fills; capacity = the whole sample (any
    // single shard could own every key of a window).
    shard->s.keys = mem::SimArray<workload::Key>(
        &shard->space, s_.sample_size(), mem::MemKind::kHost, "S.keys");
    shard->s.full_size = cfg_.s_tuples;
    shard->s.scheme = s_.scheme;
    shard->out.shard = i;
    shard->out.r_tuples = plan_.shard_r_tuples(i);
    shard->rate = SeededRateEstimator();
    shards_.push_back(std::move(shard));
  }

  if (dcfg_.planner.mode == plan::PlannerMode::kAdaptive) {
    planner_ = std::make_unique<plan::Planner>(dcfg_.planner);
    for (int i = 0; i < dcfg_.num_shards; ++i) {
      extractors_.emplace_back(
          plan_.shard_r_tuples(i) * 8, cfg_.platform.gpu.tlb_coverage,
          dcfg_.planner.seed + static_cast<uint64_t>(i) * 0x9e3779b9ULL);
    }
  }

  if (dcfg_.failover.enabled()) {
    fault_timeline_ = std::make_unique<sim::DeviceFaultTimeline>(
        dcfg_.failover.device_faults, dcfg_.num_shards);
    dead_.assign(dcfg_.num_shards, 0);
    failover_target_.assign(dcfg_.num_shards, -1);
    failover_record_.assign(dcfg_.num_shards, -1);
  }

  const int threads =
      dcfg_.threads > 0
          ? dcfg_.threads
          : std::min(dcfg_.num_shards, util::ThreadPool::HardwareConcurrency());
  pool_ = std::make_unique<util::ThreadPool>(threads);
  return Status::Ok();
}

Status ShardScheduler::CreateJoiners() {
  for (auto& shard : shards_) {
    Result<core::WindowJoiner> joiner = core::WindowJoiner::Create(
        *shard->gpu, *shard->index, shard->s, cfg_.inlj, s_.sample_size());
    if (!joiner.ok()) return joiner.status();
    shard->joiner =
        std::make_unique<core::WindowJoiner>(*std::move(joiner));
  }
  return Status::Ok();
}

Status ShardScheduler::ResetShardsForRun() {
  for (auto& shard : shards_) {
    shard->gpu->memory().ClearHardwareState();
    if (shard->fault != nullptr) shard->fault->Reset();
    if (shard->timeline != nullptr) shard->timeline->Reset();
    shard->cursor = 0;
    shard->row_map.clear();
    shard->rate = SeededRateEstimator();
    shard->chunks_run = 0;
    shard->part_sum = sim::CounterSet{};
    shard->join_sum = sim::CounterSet{};
    shard->stats = core::WindowStats{};
    ShardStats fresh;
    fresh.shard = shard->out.shard;
    fresh.r_tuples = shard->out.r_tuples;
    shard->out = fresh;
  }
  if (fault_timeline_ != nullptr) {
    // Repeated runs replay the same fault schedule from t = 0.
    clock_ = 0;
    std::fill(dead_.begin(), dead_.end(), 0);
    std::fill(failover_target_.begin(), failover_target_.end(), -1);
    std::fill(failover_record_.begin(), failover_record_.end(), -1);
    reexec_chunks_ = 0;
    robustness_ = obs::RobustnessStats{};
  }
  if (planner_ != nullptr) {
    // Repeated RunJoin calls must route identically: the planner and the
    // extractors restart from their seeds.
    planner_ = std::make_unique<plan::Planner>(dcfg_.planner);
    extractors_.clear();
    for (int i = 0; i < dcfg_.num_shards; ++i) {
      extractors_.emplace_back(
          plan_.shard_r_tuples(i) * 8, cfg_.platform.gpu.tlb_coverage,
          dcfg_.planner.seed + static_cast<uint64_t>(i) * 0x9e3779b9ULL);
    }
  }
  return Status::Ok();
}

void ShardScheduler::EnableObservability() {
  for (auto& shard : shards_) {
    if (shard->timeline == nullptr) {
      shard->timeline = std::make_unique<obs::PhaseTimeline>(
          &shard->gpu->memory(), &shard->gpu->cost_model());
      shard->timeline->AttachTo(&shard->gpu->memory());
    }
  }
}

std::vector<ShardScheduler::SliceRef> ShardScheduler::RouteSlice(
    uint64_t begin, uint64_t count, bool serving) {
  const int n = num_shards();
  const workload::Key* keys = s_.keys.data().data();

  std::vector<uint64_t> cnt(n, 0);
  if (n == 1) {
    cnt[0] = count;
  } else {
    for (uint64_t i = begin; i < begin + count; ++i) {
      ++cnt[plan_.OwnerOf(keys[i])];
    }
  }

  std::vector<SliceRef> slices(n);
  for (int i = 0; i < n; ++i) {
    Shard& shard = *shards_[i];
    // The serving path reuses the buffers forever: wrap to the front
    // when the tail can't hold this slice (RunWindow needs a contiguous
    // range; a slice never exceeds the capacity).
    if (serving && shard.cursor + cnt[i] > shard.s.sample_size()) {
      shard.cursor = 0;
    }
    slices[i] = {shard.cursor, cnt[i]};
  }

  std::vector<uint64_t> write_at(n);
  for (int i = 0; i < n; ++i) write_at[i] = slices[i].start;
  for (uint64_t i = begin; i < begin + count; ++i) {
    const int owner = n == 1 ? 0 : plan_.OwnerOf(keys[i]);
    Shard& shard = *shards_[owner];
    shard.s.keys[write_at[owner]++] = keys[i];
    if (!serving) shard.row_map.push_back(i);
  }
  for (int i = 0; i < n; ++i) {
    shards_[i]->cursor = slices[i].start + cnt[i];
    shards_[i]->out.tuples_routed += cnt[i];
  }
  return slices;
}

std::vector<std::vector<ShardScheduler::Chunk>> ShardScheduler::PlanChunks(
    const std::vector<SliceRef>& slices, uint64_t* steal_events) {
  const int n = num_shards();
  std::vector<std::vector<Chunk>> stolen(n);
  std::vector<uint64_t> remaining(n);
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    remaining[i] = slices[i].count;
    total += slices[i].count;
  }

  const auto is_dead = [this](int i) {
    return fault_timeline_ != nullptr && dead_[static_cast<size_t>(i)] != 0;
  };

  if (dcfg_.steal.enabled && n > 1 && total > 0) {
    // Estimated per-tuple rates: the smoothed observation once a shard
    // has run (the EWMA amortizes per-window fixed costs, so a shard
    // serializing extra windows reports a proportionally higher load).
    // The estimator is seeded with the sync-overhead lower bound and
    // floors at it during warm-up (see SeededRateEstimator), so no
    // fallback plumbing is needed here.
    std::vector<double> rate(n);
    std::vector<double> load(n);
    for (int i = 0; i < n; ++i) {
      rate[i] = shards_[i]->rate.value();
      load[i] = static_cast<double>(remaining[i]) * rate[i];
    }
    uint64_t bucket = dcfg_.steal.bucket_tuples;
    if (bucket == 0) bucket = std::max<uint64_t>(256, w_dev_ / 2);
    // Greedy rebalance, bounded: peel buckets off the most loaded
    // shard's tail onto the least loaded one while it shortens the
    // window's critical path.
    for (int iter = 0; iter < 8 * n; ++iter) {
      // Dead shards neither volunteer as thieves nor get stolen from:
      // their whole slice fails over below, as one unit, to the
      // designated survivor.
      int victim = -1;
      int thief = -1;
      double mean = 0;
      int alive = 0;
      for (int i = 0; i < n; ++i) {
        if (is_dead(i)) continue;
        if (victim < 0 || load[i] > load[victim]) victim = i;
        if (thief < 0 || load[i] < load[thief]) thief = i;
        mean += load[i];
        ++alive;
      }
      if (alive < 2) break;
      mean /= alive;
      if (victim == thief || remaining[victim] == 0 ||
          load[victim] <= dcfg_.steal.trigger * mean) {
        break;
      }
      const uint64_t g = std::min(bucket, remaining[victim]);
      const double handoff =
          topo_.PeerSeconds(victim, thief, g * kStealBytesPerTuple);
      const double cost = static_cast<double>(g) * rate[victim] *
                              dcfg_.steal.remote_penalty +
                          handoff;
      // Not worth it when the thief would become the new bottleneck.
      if (load[thief] + cost >= load[victim]) break;
      remaining[victim] -= g;
      load[victim] -= static_cast<double>(g) * rate[victim];
      load[thief] += cost;
      stolen[victim].push_back(
          {victim, thief, slices[victim].start + remaining[victim], g});
      ++(*steal_events);
    }
  }

  // Emit execution chunks, splitting anything larger than the device
  // window capacity into serialized device windows (each pays its own
  // launch and sync — the cost that makes routed-count skew hurt).
  std::vector<std::vector<Chunk>> chunks(n);
  auto emit = [this, &chunks](const Chunk& c) {
    for (uint64_t off = 0; off < c.count; off += w_dev_) {
      Chunk piece = c;
      piece.start = c.start + off;
      piece.count = std::min(w_dev_, c.count - off);
      chunks[c.owner].push_back(piece);
    }
  };
  for (int i = 0; i < n; ++i) {
    if (is_dead(i)) {
      // The dead shard's key range fails over whole: its routed tuples
      // execute against its (host-resident) partition but are charged to
      // the failover target at the recovery penalty.
      if (slices[i].count > 0) {
        Chunk c{i, failover_target_[static_cast<size_t>(i)],
                slices[i].start, slices[i].count};
        c.failover = true;
        emit(c);
      }
      continue;
    }
    if (remaining[i] > 0) emit({i, i, slices[i].start, remaining[i]});
    for (const Chunk& c : stolen[i]) emit(c);
  }
  return chunks;
}

void ShardScheduler::RoutePlans(std::vector<std::vector<Chunk>>* chunks) {
  if (planner_ == nullptr) return;
  // The candidate space per chunk: {kNone, kFull, windowed ladder} over
  // the owner's fixed index. No hash join — shards own index slices, not
  // hash tables.
  plan::PlanSpaceConfig space;
  space.indexes = {cfg_.index_type};
  space.include_hash_join = false;
  for (auto& shard_chunks : *chunks) {
    for (Chunk& chunk : shard_chunks) {
      // Never route failed-over work: the planner must not steer a dead
      // shard's engine, and recovery-penalty-charged chunks would feed
      // corrupted residuals back into the router.
      if (chunk.failover) continue;
      Shard& owner = *shards_[chunk.owner];
      chunk.features = extractors_[chunk.owner].Extract(
          owner.s.keys.data().data() + chunk.start, chunk.count);
      plan::PruneContext prune;
      prune.r_bytes = plan_.shard_r_tuples(chunk.owner) * 8;
      prune.tlb_coverage = cfg_.platform.gpu.tlb_coverage;
      prune.batch_tuples = chunk.count;
      const std::vector<plan::PlanChoice> candidates =
          plan::EnumeratePlans(space, prune);
      if (candidates.empty()) continue;  // prune left nothing: stay static
      const plan::RoutingDecision decision = planner_->Decide(
          PlanContextFor(chunk.owner), candidates, chunk.features);
      chunk.choice = decision.chosen;
      chunk.routed = true;
    }
  }
}

Result<core::WindowRun> ShardScheduler::RunChunkOnShard(
    Shard& shard, const Chunk& chunk, uint64_t ordinal,
    std::vector<core::JoinMatch>* collect) {
  if (!chunk.routed ||
      chunk.choice.mode == core::InljConfig::PartitionMode::kFull) {
    // The static pipeline's path: one fully partitioned window.
    return shard.joiner->RunWindow(chunk.start, chunk.count, ordinal,
                                   collect);
  }

  if (chunk.choice.mode == core::InljConfig::PartitionMode::kNone) {
    // Unpartitioned probe straight off the shard's probe buffer into the
    // joiner's result region. Same isolation policy as RunWindow: the
    // previous window's cache state must not leak in.
    shard.gpu->memory().FlushCaches();
    core::WindowRun run;
    {
      sim::WindowScope window(shard.gpu->memory().phase_sink(), ordinal);
      run.join = core::internal::RunJoinKernel(
          *shard.gpu, *shard.index, shard.s.keys.data().data() + chunk.start,
          nullptr, chunk.count, shard.s.keys.addr_of(chunk.start),
          shard.joiner->result_base(), cfg_.inlj.probe_filter_selectivity,
          &run.matches, /*row_id_base=*/chunk.start, collect);
    }
    Status st = shard.gpu->memory().fault_status();
    if (!st.ok()) return st;
    run.join_seconds = shard.gpu->cost_model().Seconds(run.join.counters);
    return run;
  }

  // kWindowed: serialize sub-windows of the routed size through the
  // shard's joiner and merge them into one WindowRun.
  const uint64_t w =
      std::clamp<uint64_t>(chunk.choice.window_tuples, 32, chunk.count);
  core::WindowRun total;
  for (uint64_t off = 0; off < chunk.count; off += w) {
    const uint64_t n = std::min(w, chunk.count - off);
    Result<core::WindowRun> run =
        shard.joiner->RunWindow(chunk.start + off, n, ordinal, collect);
    if (!run.ok()) return run.status();
    total.partition.Merge(run->partition);
    total.join.Merge(run->join);
    total.partition_seconds += run->partition_seconds;
    total.join_seconds += run->join_seconds;
    total.matches += run->matches;
    total.stats += run->stats;
  }
  return total;
}

Result<double> ShardScheduler::ExecuteWindow(
    const std::vector<std::vector<Chunk>>& chunks, uint64_t ordinal,
    util::ThreadPool* pool,
    std::vector<std::vector<core::JoinMatch>>* collect_shards,
    std::vector<uint64_t>* host_bytes_by_link,
    std::vector<uint64_t>* window_matches) {
  const int n = num_shards();
  std::vector<std::vector<ChunkResult>> results(n);
  std::vector<Status> statuses(n);

  // One task per shard that owns work; a task touches only its own
  // shard's device, joiner and match buffer, so tasks are independent
  // and results do not depend on the thread count.
  for (int i = 0; i < n; ++i) {
    if (chunks[i].empty()) continue;
    pool->Submit([this, i, ordinal, &chunks, &results, &statuses,
                  collect_shards] {
      Shard& shard = *shards_[i];
      for (const Chunk& chunk : chunks[i]) {
        Result<core::WindowRun> run = RunChunkOnShard(
            shard, chunk, ordinal,
            collect_shards != nullptr ? &(*collect_shards)[i] : nullptr);
        if (!run.ok()) {
          statuses[i] = run.status();
          return;
        }
        ChunkResult cr;
        cr.chunk = chunk;
        cr.seconds = run->seconds();
        cr.part = run->partition;
        cr.join = run->join;
        cr.matches = run->matches;
        cr.stats = run->stats;
        results[i].push_back(std::move(cr));
      }
    });
  }
  Status pool_status = pool->Wait();
  if (!pool_status.ok()) return pool_status;
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  // Fold in shard order on the calling thread: charge stolen chunks to
  // their thief (remote penalty + fabric handoff), then apply shared-link
  // contention on top of each shard's transfer time.
  std::vector<sim::CounterSet> window_counters(n);
  std::vector<double> own_seconds(n, 0);
  std::vector<double> charged_seconds(n, 0);
  std::vector<uint64_t> own_tuples(n, 0);
  for (int v = 0; v < n; ++v) {
    Shard& shard = *shards_[v];
    shard.chunks_run += results[v].size();
    for (const ChunkResult& cr : results[v]) {
      if (planner_ != nullptr && cr.chunk.routed) {
        planner_->Observe(PlanContextFor(v), cr.chunk.choice,
                          cr.chunk.features, cr.seconds);
        extractors_[v].ObserveMatches(cr.chunk.count, cr.matches);
      }
      window_counters[v] += cr.part.counters;
      window_counters[v] += cr.join.counters;
      shard.part_sum += cr.part.counters;
      shard.join_sum += cr.join.counters;
      shard.stats += cr.stats;
      shard.out.matches += cr.matches;
      if (window_matches != nullptr) (*window_matches)[v] += cr.matches;
      if (cr.chunk.thief == v) {
        own_seconds[v] += cr.seconds;
        own_tuples[v] += cr.chunk.count;
      } else {
        const int thief = cr.chunk.thief;
        const uint64_t bytes = cr.chunk.count * kStealBytesPerTuple;
        const double penalty = cr.chunk.failover
                                   ? dcfg_.failover.recovery_penalty
                                   : dcfg_.steal.remote_penalty;
        charged_seconds[thief] +=
            cr.seconds * penalty + topo_.PeerSeconds(v, thief, bytes);
        for (int link : topo_.PeerLinks(v, thief)) {
          (*host_bytes_by_link)[link] += bytes;
        }
        if (cr.chunk.failover) {
          const int rec = failover_record_[static_cast<size_t>(v)];
          if (rec >= 0) {
            robustness_.failovers[static_cast<size_t>(rec)]
                .reassigned_tuples += cr.chunk.count;
          }
        } else {
          shard.out.tuples_stolen_out += cr.chunk.count;
          shards_[thief]->out.tuples_stolen_in += cr.chunk.count;
          ++shards_[thief]->out.steals_in;
        }
      }
    }
  }

  std::vector<double> times(n);
  int active = 0;
  for (int i = 0; i < n; ++i) {
    times[i] = own_seconds[i] + charged_seconds[i];
    if (times[i] > 0) ++active;
  }
  double wall = 0;
  for (int i = 0; i < n; ++i) {
    if (times[i] > 0) {
      const int sharers =
          topo_.HostSharers(topo_.host_link(i), active);
      if (sharers > 1) {
        // The shared link serializes the concurrent shards' transfers:
        // each extra sharer adds one transfer-component's worth of wait.
        times[i] += static_cast<double>(sharers - 1) *
                    shards_[i]->gpu->cost_model()
                        .Breakdown(window_counters[i])
                        .transfer;
      }
      if (fault_timeline_ != nullptr) {
        // Transient slow-shard / link-down episodes stretch the shard's
        // busy interval on the simulated clock.
        const double delay =
            fault_timeline_->DelaySeconds(i, clock_, times[i]);
        times[i] += delay;
        robustness_.slow_delay_seconds += delay;
      }
      ++shards_[i]->out.windows;
    }
    (*host_bytes_by_link)[topo_.host_link(i)] +=
        HostBytes(window_counters[i]);
    shards_[i]->out.busy_seconds += times[i];
    wall = std::max(wall, times[i]);

    if (own_tuples[i] > 0) {
      shards_[i]->rate.Observe(own_seconds[i] /
                               static_cast<double>(own_tuples[i]));
    }
  }
  if (fault_timeline_ != nullptr) {
    return SettleWindowDeaths(results, times, wall);
  }
  return wall;
}

int ShardScheduler::NextAlive(int shard) const {
  const int n = num_shards();
  for (int step = 1; step < n; ++step) {
    const int candidate = (shard + step) % n;
    if (dead_[static_cast<size_t>(candidate)] == 0) return candidate;
  }
  return -1;
}

Status ShardScheduler::DeclareDead(
    int shard, const sim::DeviceFaultTimeline::Episode& ep,
    double detected_at) {
  dead_[static_cast<size_t>(shard)] = 1;
  const int target = NextAlive(shard);
  if (target < 0) {
    return Status::FailedPrecondition(
        "every shard is dead; no failover target left for shard " +
        std::to_string(shard));
  }
  failover_target_[static_cast<size_t>(shard)] = target;
  obs::FailoverRecord record;
  record.dead_shard = shard;
  record.fault_class = sim::DeviceFaultClassName(ep.cls);
  record.detected_at_seconds = detected_at;
  failover_record_[static_cast<size_t>(shard)] =
      static_cast<int>(robustness_.failovers.size());
  robustness_.failovers.push_back(std::move(record));
  robustness_.detection_seconds += dcfg_.failover.heartbeat_timeout;
  return Status::Ok();
}

Result<double> ShardScheduler::CheckHealth(double now) {
  const int n = num_shards();
  // Mark every newly-terminal shard first, so two shards dying in the
  // same gap cannot become each other's failover target.
  std::vector<std::pair<int, sim::DeviceFaultTimeline::Episode>> dying;
  for (int i = 0; i < n; ++i) {
    if (dead_[static_cast<size_t>(i)] != 0) continue;
    std::optional<sim::DeviceFaultTimeline::Episode> ep =
        fault_timeline_->TerminalAt(i, now);
    if (ep.has_value()) {
      dead_[static_cast<size_t>(i)] = 1;
      dying.emplace_back(i, *ep);
    }
  }
  double stall = 0;
  for (const auto& [shard, ep] : dying) {
    const double detected_at = ep.begin + dcfg_.failover.heartbeat_timeout;
    Status st = DeclareDead(shard, ep, detected_at);
    if (!st.ok()) return st;
    // The coordinator stalls until the heartbeat timeout fires (zero
    // when the fault began long enough ago that it already has).
    stall = std::max(stall, detected_at - now);
  }
  return stall > 0 ? stall : 0;
}

Result<double> ShardScheduler::SettleWindowDeaths(
    const std::vector<std::vector<ChunkResult>>& results,
    const std::vector<double>& times, double wall) {
  const int n = num_shards();
  std::vector<std::pair<int, sim::DeviceFaultTimeline::Episode>> dying;
  for (int i = 0; i < n; ++i) {
    if (dead_[static_cast<size_t>(i)] != 0 || times[i] <= 0) continue;
    std::optional<sim::DeviceFaultTimeline::Episode> ep =
        fault_timeline_->TerminalIn(i, clock_, clock_ + times[i]);
    if (ep.has_value()) {
      dead_[static_cast<size_t>(i)] = 1;
      dying.emplace_back(i, *ep);
    }
  }
  if (dying.empty()) return wall;

  robustness_.reexec_windows += 1;
  for (const auto& [shard, ep] : dying) {
    const double detected_at = ep.begin + dcfg_.failover.heartbeat_timeout;
    Status st = DeclareDead(shard, ep, detected_at);
    if (!st.ok()) return st;
    const int target = failover_target_[static_cast<size_t>(shard)];
    const int rec = failover_record_[static_cast<size_t>(shard)];

    // Every chunk that touched the dying device this window was in
    // flight when it died: chunks executed against its structures
    // (owner == shard, its own work and buckets stolen from it) and
    // chunks its SMs were running remotely (thief == shard). They are
    // re-executed on the failover target — charged as simulated time at
    // the recovery penalty plus the fabric handoff, against the bounded
    // budget. The deterministic simulator already produced their matches
    // exactly once, so re-execution duplicates nothing and drops
    // nothing; only time is charged again.
    double reexec_seconds = 0;
    uint64_t chunks_redone = 0;
    for (int v = 0; v < n; ++v) {
      for (const ChunkResult& cr : results[v]) {
        if (cr.chunk.owner != shard && cr.chunk.thief != shard) continue;
        if (++reexec_chunks_ > dcfg_.failover.reexec_chunk_budget) {
          return Status::ResourceExhausted(
              "failover re-execution budget exhausted (" +
              std::to_string(dcfg_.failover.reexec_chunk_budget) +
              " chunks); raise failover.reexec_chunk_budget");
        }
        ++chunks_redone;
        reexec_seconds +=
            cr.seconds * dcfg_.failover.recovery_penalty +
            topo_.PeerSeconds(shard, target,
                              cr.chunk.count * kStealBytesPerTuple);
      }
    }
    obs::FailoverRecord& record =
        robustness_.failovers[static_cast<size_t>(rec)];
    record.reexec_chunks += chunks_redone;
    record.reexec_seconds += reexec_seconds;
    shards_[target]->out.busy_seconds += reexec_seconds;
    // The window now ends when the redone work does: fault begin, the
    // heartbeat timeout, then the re-execution on the target.
    wall = std::max(wall, (ep.begin - clock_) +
                              dcfg_.failover.heartbeat_timeout +
                              reexec_seconds);
  }
  return wall;
}

double ShardScheduler::MergeSeconds(
    const std::vector<uint64_t>& result_bytes) const {
  // Shards stream their match runs to the coordinator (device 0).
  // Dedicated links drain in parallel (slowest shard gates the merge);
  // a shared host link serializes them.
  const bool shared = topo_.links()[topo_.host_link(0)].shared;
  double merge = 0;
  for (int i = 1; i < num_shards(); ++i) {
    const double t = topo_.PeerSeconds(i, 0, result_bytes[i]);
    merge = shared ? merge + t : std::max(merge, t);
  }
  return merge;
}

Result<ShardedRunResult> ShardScheduler::RunJoin(
    std::vector<core::JoinMatch>* collect) {
  Status st = ResetShardsForRun();
  if (!st.ok()) return st;
  st = CreateJoiners();
  if (!st.ok()) return st;

  const int n = num_shards();
  const double scale = s_.scale();
  const uint64_t sample = s_.sample_size();

  ShardedRunResult out;
  std::vector<uint64_t> link_bytes(topo_.links().size(), 0);
  double makespan_sim = 0;

  for (uint64_t w = 0; w < n_sim_; ++w) {
    if (fault_timeline_ != nullptr) {
      // Window-boundary health check: shards whose terminal fault began
      // before this window are declared dead now and their key ranges
      // fail over before any chunk is planned.
      Result<double> stall = CheckHealth(clock_);
      if (!stall.ok()) return stall.status();
      makespan_sim += *stall;
      clock_ += *stall;
    }

    const uint64_t begin = w * stride_;
    const uint64_t count = std::min(stride_, sample - begin);
    std::vector<SliceRef> slices =
        RouteSlice(begin, count, /*serving=*/false);
    std::vector<std::vector<Chunk>> chunks =
        PlanChunks(slices, &out.steal_events);
    RoutePlans(&chunks);

    std::vector<std::vector<core::JoinMatch>> window_collect;
    if (collect != nullptr) window_collect.resize(n);
    Result<double> wall = ExecuteWindow(
        chunks, w, pool_.get(),
        collect != nullptr ? &window_collect : nullptr, &link_bytes,
        nullptr);
    if (!wall.ok()) return wall.status();
    makespan_sim += *wall;
    clock_ += *wall;

    if (collect != nullptr) {
      // Deterministic cross-shard merge: shard order within the window,
      // generation order within a shard. Local rows/positions map back
      // through the shard's routing table and R offset.
      for (int i = 0; i < n; ++i) {
        const Shard& shard = *shards_[i];
        for (const core::JoinMatch& m : window_collect[i]) {
          collect->push_back(
              {shard.row_map[m.probe_row],
               plan_.pos_begin[i] + m.position});
        }
      }
    }
  }

  // Per-shard counter extrapolation, replicating the single-device
  // windowed path field for field (core/inlj.cc). The only
  // generalization: a shard that serialized several device windows per
  // global window keeps that many kernel launches per window.
  const double to_one_window =
      window_scale_ / static_cast<double>(n_sim_);
  const double window_factor =
      static_cast<double>(n_full_) / static_cast<double>(n_sim_);
  uint64_t matches_total = 0;
  core::WindowStats stats_total;
  std::vector<uint64_t> result_bytes(n, 0);
  for (int i = 0; i < n; ++i) {
    Shard& shard = *shards_[i];
    const uint64_t launches = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               static_cast<double>(shard.chunks_run) /
               static_cast<double>(n_sim_))));
    sim::CounterSet part_avg = shard.part_sum.Scaled(to_one_window);
    sim::CounterSet join_avg = shard.join_sum.Scaled(to_one_window);
    part_avg.kernel_launches = launches;
    join_avg.kernel_launches = launches;
    sim::CounterSet shard_counters =
        part_avg.Scaled(static_cast<double>(n_full_));
    shard_counters += join_avg.Scaled(static_cast<double>(n_full_));
    shard_counters.kernel_launches = 2 * launches * n_full_;
    shard.out.counters = shard_counters;
    out.run.counters += shard_counters;

    matches_total += shard.out.matches;
    stats_total += shard.stats;
    result_bytes[i] =
        ScaleStat(shard.out.matches, scale) * 16;  // 16 B per match
    if (shard.timeline != nullptr) {
      shard.out.phase_spans = shard.timeline->Spans();
    }
    if (shard.joiner->result_on_host()) {
      out.run.result_buffer_on_host = true;
    }
    out.shards.push_back(shard.out);
  }

  const double extrap = window_scale_ * window_factor;
  out.sim_makespan = makespan_sim;
  if (fault_timeline_ != nullptr) out.robustness = robustness_;
  out.merge_seconds = MergeSeconds(result_bytes);
  out.run.label = "dist_inlj_" + std::string(shards_[0]->index->name()) +
                  "_x" + std::to_string(n);
  out.run.probe_tuples = s_.full_size;
  out.run.seconds = makespan_sim * extrap + out.merge_seconds;
  out.run.result_tuples = ScaleStat(matches_total, scale);
  out.run.spilled_tuples =
      ScaleStat(stats_total.spilled_tuples, window_scale_ * window_factor);
  out.run.spill_buckets =
      ScaleStat(stats_total.spill_buckets, window_scale_ * window_factor);
  out.run.degraded_windows =
      ScaleStat(stats_total.degraded_windows, window_factor);
  out.run.fallback_windows =
      ScaleStat(stats_total.fallback_windows, window_factor);
  out.run.AddStage("shards/windows", makespan_sim * extrap);
  out.run.AddStage("merge", out.merge_seconds);

  for (size_t l = 0; l < topo_.links().size(); ++l) {
    LinkStats ls;
    ls.name = topo_.links()[l].name;
    ls.bytes = ScaleStat(link_bytes[l], extrap);
    if (out.run.seconds > 0) {
      ls.utilization = static_cast<double>(ls.bytes) /
                       (topo_.links()[l].seq_bandwidth * out.run.seconds);
    }
    out.links.push_back(std::move(ls));
  }
  return out;
}

Status ShardScheduler::BeginBatchWindows() {
  Status st = ResetShardsForRun();
  if (!st.ok()) return st;
  return CreateJoiners();
}

Result<ShardScheduler::RowBatchResult> ShardScheduler::ExecuteRowBatch(
    const uint64_t* rows, uint64_t count, uint64_t ordinal,
    std::vector<core::JoinMatch>* collect) {
  if (count == 0) return RowBatchResult{};
  const uint64_t sample = s_.sample_size();
  for (uint64_t i = 0; i < count; ++i) {
    if (rows[i] >= sample) {
      return Status::InvalidArgument(
          "row set exceeds the probe sample (row " +
          std::to_string(rows[i]) + " >= " + std::to_string(sample) + ")");
    }
  }
  if (shards_[0]->joiner == nullptr) {
    Status st = CreateJoiners();
    if (!st.ok()) return st;
  }

  const int n = num_shards();
  double stall = 0;
  if (fault_timeline_ != nullptr) {
    Result<double> s = CheckHealth(clock_);
    if (!s.ok()) return s.status();
    stall = *s;
    clock_ += stall;
  }

  // Route the row set into the shards' probe buffers from the front:
  // each batch window overwrites the last one's keys, and the per-call
  // row map keeps local buffer indices mapping back to global rows.
  // Capacity is the whole sample, so any row set fits.
  const workload::Key* keys = s_.keys.data().data();
  std::vector<uint64_t> cnt(n, 0);
  if (n == 1) {
    cnt[0] = count;
  } else {
    for (uint64_t i = 0; i < count; ++i) {
      ++cnt[plan_.OwnerOf(keys[rows[i]])];
    }
  }
  std::vector<SliceRef> slices(n);
  std::vector<uint64_t> write_at(n, 0);
  for (int i = 0; i < n; ++i) {
    slices[i] = {0, cnt[i]};
    shards_[i]->row_map.clear();
  }
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t row = rows[i];
    const int owner = n == 1 ? 0 : plan_.OwnerOf(keys[row]);
    Shard& shard = *shards_[owner];
    shard.s.keys[write_at[owner]++] = keys[row];
    shard.row_map.push_back(row);
  }
  for (int i = 0; i < n; ++i) {
    shards_[i]->cursor = cnt[i];
    shards_[i]->out.tuples_routed += cnt[i];
  }

  RowBatchResult out;
  std::vector<std::vector<Chunk>> chunks =
      PlanChunks(slices, &out.steal_events);
  RoutePlans(&chunks);

  std::vector<std::vector<core::JoinMatch>> window_collect;
  if (collect != nullptr) window_collect.resize(n);
  std::vector<uint64_t> link_bytes(topo_.links().size(), 0);
  std::vector<uint64_t> window_matches(n, 0);
  Result<double> wall = ExecuteWindow(
      chunks, ordinal, pool_.get(),
      collect != nullptr ? &window_collect : nullptr, &link_bytes,
      &window_matches);
  if (!wall.ok()) return wall.status();
  if (fault_timeline_ != nullptr) clock_ += *wall;

  if (collect != nullptr) {
    // Shard order, generation order within a shard — the same
    // deterministic merge RunJoin uses, mapped to global rows.
    for (int i = 0; i < n; ++i) {
      const Shard& shard = *shards_[i];
      for (const core::JoinMatch& m : window_collect[i]) {
        collect->push_back(
            {shard.row_map[m.probe_row], plan_.pos_begin[i] + m.position});
      }
    }
  }
  for (uint64_t m : window_matches) out.matches += m;
  out.seconds = stall + *wall;
  return out;
}

sim::CounterSet ShardScheduler::sample_counters() const {
  sim::CounterSet sum;
  for (const auto& shard : shards_) {
    sum += shard->part_sum;
    sum += shard->join_sum;
  }
  return sum;
}

std::vector<sim::PhaseSpan> ShardScheduler::ShardPhaseSpans(
    int shard) const {
  GPUJOIN_CHECK(shard >= 0 && shard < num_shards())
      << "ShardPhaseSpans: shard must be in [0, " << num_shards()
      << "), got " << shard;
  const auto& timeline = shards_[static_cast<size_t>(shard)]->timeline;
  if (timeline == nullptr) return {};
  return timeline->Spans();
}

Result<double> ShardScheduler::ServiceSlice(uint64_t begin, uint64_t count,
                                            uint64_t ordinal) {
  if (count == 0) {
    return Status::InvalidArgument("cannot serve an empty slice");
  }
  if (begin + count > s_.sample_size()) {
    return Status::InvalidArgument("slice exceeds the probe sample");
  }
  if (shards_[0]->joiner == nullptr) {
    Status st = CreateJoiners();
    if (!st.ok()) return st;
  }

  const int n = num_shards();
  double detection_stall = 0;
  if (fault_timeline_ != nullptr) {
    Result<double> stall = CheckHealth(clock_);
    if (!stall.ok()) return stall.status();
    detection_stall = *stall;
    clock_ += detection_stall;
  }
  std::vector<SliceRef> slices = RouteSlice(begin, count, /*serving=*/true);
  uint64_t steal_events = 0;
  std::vector<std::vector<Chunk>> chunks = PlanChunks(slices, &steal_events);
  RoutePlans(&chunks);

  std::vector<uint64_t> link_bytes(topo_.links().size(), 0);
  std::vector<uint64_t> slice_matches(n, 0);
  Result<double> wall = ExecuteWindow(chunks, ordinal, pool_.get(),
                                      nullptr, &link_bytes, &slice_matches);
  if (!wall.ok()) return wall.status();
  if (fault_timeline_ != nullptr) clock_ += *wall;

  // Serving works at sample scale (like the single-device server): the
  // batch's results merge at the coordinator before the response goes
  // out.
  std::vector<uint64_t> result_bytes(n, 0);
  for (int i = 0; i < n; ++i) result_bytes[i] = slice_matches[i] * 16;
  return detection_stall + *wall + MergeSeconds(result_bytes);
}

}  // namespace gpujoin::dist
