#ifndef GPUJOIN_DIST_METRICS_H_
#define GPUJOIN_DIST_METRICS_H_

#include <string>

#include "dist/shard_scheduler.h"

namespace gpujoin::dist {

// JSON section builders for sharded runs, spliced into a bench record
// via obs::RecordBuilder::AddSection. scripts/validate_metrics.py
// validates both sections (field presence, unique shard ids).

// The per-shard breakdown as a JSON array: routing, stealing, busy time,
// extrapolated counters, and the shard's phase timeline when observed.
std::string ShardsJson(const ShardedRunResult& result);

// The per-link traffic as a JSON array: extrapolated bytes moved and
// the link's utilization over the run.
std::string LinksJson(const ShardedRunResult& result);

}  // namespace gpujoin::dist

#endif  // GPUJOIN_DIST_METRICS_H_
