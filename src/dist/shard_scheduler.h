#ifndef GPUJOIN_DIST_SHARD_SCHEDULER_H_
#define GPUJOIN_DIST_SHARD_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/match.h"
#include "core/window_join.h"
#include "dist/shard_planner.h"
#include "dist/topology.h"
#include "obs/phase_timeline.h"
#include "obs/robustness.h"
#include "plan/features.h"
#include "plan/plan_space.h"
#include "plan/router.h"
#include "serve/server.h"
#include "sim/fault.h"
#include "sim/gpu.h"
#include "sim/run_result.h"
#include "util/ewma.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "workload/relation.h"

namespace gpujoin::dist {

// When Zipf skew concentrates a window's probe tuples on one shard, idle
// shards steal buckets from the loaded shard's tail. A stolen bucket is
// still *executed against the victim's structures* (its index owns those
// R keys), but its time is charged to the thief's device timeline at a
// remote-probe penalty plus the interconnect handoff — the thief's SMs
// probing a peer-owned partition over the fabric.
struct StealPolicy {
  bool enabled = true;
  // A shard becomes a victim when its estimated window time exceeds
  // `trigger` times the mean across shards.
  double trigger = 1.25;
  // Steal granularity in probe tuples; 0 picks half a device window,
  // min 256. A stolen bucket runs as its own window on the victim's
  // structures, like a spill-chain bucket of the recovery ladder.
  uint64_t bucket_tuples = 0;
  // Remote execution runs this much slower than local (uncoalesced
  // peer-to-peer probes).
  double remote_penalty = 1.5;
};

// Failure detection and key-range failover. The scheduler evaluates the
// seeded device-fault timeline at window boundaries: a shard with a
// terminal fault (crash, stuck, forever link-down) is declared dead one
// heartbeat timeout after the fault begins, its key range's work moves to
// a surviving shard (deterministic ring successor), and any window chunks
// that were in flight on the dying device are re-executed on the new
// owner — charged as simulated time at `recovery_penalty` plus the fabric
// handoff, against a bounded re-execution budget. The dead shard's R
// partition stays reachable (it lives in pinned host memory per the
// paper's out-of-core design), which is what lets a survivor probe it
// remotely; matches are produced exactly once, so the merged match set is
// identical to the fault-free run (DESIGN.md §13).
struct FailoverPolicy {
  // The device-level fault schedule (empty = no faults, and every
  // scheduler path stays bit-identical to a fault-free build).
  sim::DeviceFaultConfig device_faults;
  // Simulated (sample-scale) seconds without progress before a shard is
  // declared dead. Charged as coordinator stall on detection.
  double heartbeat_timeout = 1e-4;
  // Re-executed / failed-over work runs this much slower than local
  // (the survivor probes the dead shard's partition over the fabric;
  // >= the steal remote_penalty since there is no warm cache to reuse).
  double recovery_penalty = 2.0;
  // Re-executed chunks allowed per run before the engine gives up with
  // ResourceExhausted (a fault storm must not retry forever).
  uint64_t reexec_chunk_budget = 1024;

  bool enabled() const { return device_faults.enabled(); }
};

struct ShardConfig {
  int num_shards = 1;
  TopologyKind topology = TopologyKind::kNvLink2;
  StealPolicy steal;
  FailoverPolicy failover;
  // Simulation worker threads; 0 = min(num_shards, hardware).
  int threads = 0;
  // Per-chunk {partition mode, window} routing over each shard's fixed
  // index (src/plan). kStatic keeps the pre-planner windowed pipeline
  // untouched (bit-identical); kAdaptive routes every device chunk
  // through a shared plan::Planner, with decisions and feedback on the
  // coordinator thread. kOracle is rejected here — replaying every
  // candidate would re-run chunks on shared shard state; use the
  // single-device plan::PlannedBackend for oracle measurements.
  plan::PlannerConfig planner{.mode = plan::PlannerMode::kStatic};
  // Cluster hook: restricts this engine to rows [r_begin, r_end) of the
  // base R column (0, 0 = the full R; anything else must satisfy
  // r_begin < r_end <= r_tuples). The shard planner then splits only
  // the restricted slice across the shards, which is how a cluster
  // node's GPUs all stay busy on probes drawn from the node's key
  // range. Probes routed in must fall inside the slice's key range;
  // match positions come back slice-relative (the cluster layer adds
  // the node's R offset).
  uint64_t r_begin = 0;
  uint64_t r_end = 0;
};

// Per-shard outcome of a sharded run. Counters are extrapolated to the
// full workload exactly like sim::RunResult's; tuple/steal counts are at
// simulated-sample scale (they describe the simulated windows).
struct ShardStats {
  int shard = 0;
  uint64_t r_tuples = 0;        // owned slice of R
  uint64_t tuples_routed = 0;   // probe tuples routed to this shard
  uint64_t tuples_stolen_out = 0;  // routed here but charged to a thief
  uint64_t tuples_stolen_in = 0;   // stolen from peers, charged here
  uint64_t steals_in = 0;          // buckets this shard stole
  uint64_t windows = 0;            // windows in which this shard had work
  uint64_t matches = 0;            // sample-scale matches
  double busy_seconds = 0;  // simulated device-busy time (sample scale)
  sim::CounterSet counters;
  // Per-shard profile when observability is enabled (sample scale).
  std::vector<sim::PhaseSpan> phase_spans;
};

// Traffic over one topology link, extrapolated to the full workload.
struct LinkStats {
  std::string name;
  uint64_t bytes = 0;
  // bytes / (seq_bandwidth * makespan) — how loaded the link was.
  double utilization = 0;
};

// Cross-shard merge of a sharded run: the aggregate RunResult (counters
// summed over shards, makespan = sum over windows of the slowest shard,
// plus the result merge) next to the per-shard and per-link breakdowns.
struct ShardedRunResult {
  sim::RunResult run;
  std::vector<ShardStats> shards;
  std::vector<LinkStats> links;
  uint64_t steal_events = 0;    // buckets rebalanced across the run
  double merge_seconds = 0;     // result concatenation at the coordinator
  // Simulated sample-scale makespan (before extrapolation); the chaos
  // bench places --fail-at as a fraction of the fault-free run's value.
  double sim_makespan = 0;
  // Failover/re-execution activity (empty on a fault-free run).
  obs::RobustnessStats robustness;

  double tuples_per_second() const {
    return run.seconds > 0
               ? static_cast<double>(run.probe_tuples) / run.seconds
               : 0;
  }
};

// The sharded multi-device execution engine: owns one simulated device
// (AddressSpace + Gpu + TLB + index slice) per shard as laid out by
// ShardPlanner, routes every probe window's tuples to their owning
// shards, runs the shards concurrently on a util::ThreadPool (each
// advancing its own simulated clock), rebalances skewed windows by work
// stealing, and merges matches/counters deterministically.
//
// Determinism: routing and steal planning happen on the calling thread
// before a window is dispatched; worker tasks touch only their own
// shard's structures; and all folding happens in shard order after the
// window barrier — results are bit-identical for any thread count. With
// num_shards == 1 the window grid, RunWindow calls and counter
// extrapolation reproduce core::IndexNestedLoopJoin's windowed path
// exactly (regression-tested bit-identical).
class ShardScheduler final : public serve::WindowBackend {
 public:
  // Builds the shards for `cfg` (same workload/index/fault parameters as
  // a single-device core::Experiment; cfg.inlj.mode must be kWindowed).
  static Result<std::unique_ptr<ShardScheduler>> Create(
      const core::ExperimentConfig& cfg, const ShardConfig& dcfg);

  // Runs the full probe relation as the batch pipeline does (window grid
  // over the sample, extrapolated to full scale). A non-null `collect`
  // receives every sample-scale match with *global* probe rows,
  // concatenated in shard order within each window.
  Result<ShardedRunResult> RunJoin(
      std::vector<core::JoinMatch>* collect = nullptr);

  // serve::WindowBackend: fans the slice out to the owning shards and
  // returns the slowest shard's service time plus the merge.
  uint64_t sample_size() const override { return s_.sample_size(); }
  Result<double> ServiceSlice(uint64_t begin, uint64_t count,
                              uint64_t ordinal) override;

  // ------------------------------------------------------------------
  // Cluster hooks (src/cluster). The cluster tier drives one engine per
  // node: it routes each global window's probe rows to their owning
  // node by leading radix bits and hands the node engine an explicit
  // row set to execute as one batch window. Nothing here is charged to
  // the network — the cluster layer prices handoffs and merges through
  // its own ClusterTopology on top of the returned node-local wall.

  // Outcome of one ExecuteRowBatch window on this engine.
  struct RowBatchResult {
    double seconds = 0;       // node-local window wall (sample scale)
    uint64_t matches = 0;     // sample-scale matches this window
    uint64_t steal_events = 0;  // intra-node buckets rebalanced
  };

  // Prepares the engine for a sequence of ExecuteRowBatch windows:
  // resets the run ledgers and (re)builds the joiners, exactly like the
  // head of RunJoin. Call once per cluster batch run.
  Status BeginBatchWindows();

  // Executes `count` explicit global sample rows as one batch window:
  // routes them to their owning shards, plans chunks (work stealing and
  // device-fault failover active), executes on the worker pool, and
  // appends every match to `collect` (optional) in shard order with
  // *global* probe rows and positions. Joiners are created lazily so
  // the serving path can call this without BeginBatchWindows.
  Result<RowBatchResult> ExecuteRowBatch(
      const uint64_t* rows, uint64_t count, uint64_t ordinal,
      std::vector<core::JoinMatch>* collect);

  // Sample-scale counter sum over all shards since the last reset —
  // the cluster layer extrapolates these with its own window grid.
  sim::CounterSet sample_counters() const;

  // The shard's phase spans so far (empty without EnableObservability);
  // the cluster layer splices them into its per-node timelines.
  std::vector<sim::PhaseSpan> ShardPhaseSpans(int shard) const;

  // Attaches a PhaseTimeline to every shard's device (idempotent);
  // subsequent runs fill ShardStats::phase_spans.
  void EnableObservability();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  // Failover activity so far (serving path; RunJoin snapshots it into
  // ShardedRunResult::robustness). Empty without device faults.
  const obs::RobustnessStats& robustness() const { return robustness_; }
  bool shard_dead(int shard) const {
    return fault_timeline_ != nullptr &&
           dead_[static_cast<size_t>(shard)] != 0;
  }
  const ShardPlan& plan() const { return plan_; }
  const Topology& topology() const { return topo_; }
  const workload::ProbeRelation& s() const { return s_; }
  const core::ExperimentConfig& config() const { return cfg_; }
  // The coordinator-side R column the shards slice — what an HTAP ingest
  // coordinator builds its per-shard hybrid indexes over (the write path
  // must see the same keys the routed reads are served from).
  const workload::KeyColumn& base_r() const { return *base_r_; }

 private:
  // One simulated device: its own address space (so the TLB-coverage
  // cliff is per shard), the owned slice of R, the index over it, and a
  // probe buffer the router fills.
  struct Shard {
    explicit Shard(const mem::AddressSpace::Options& options)
        : space(options) {}

    mem::AddressSpace space;
    std::unique_ptr<sim::Gpu> gpu;
    std::unique_ptr<sim::FaultInjector> fault;
    std::unique_ptr<ShardKeyColumn> r;
    std::unique_ptr<index::Index> index;
    workload::ProbeRelation s;       // routed probe tuples (local rows)
    std::vector<uint64_t> row_map;   // local row -> global probe row
    uint64_t cursor = 0;             // fill position in s.keys
    std::unique_ptr<core::WindowJoiner> joiner;
    std::unique_ptr<obs::PhaseTimeline> timeline;

    // Steal planning state: smoothed seconds per probe tuple, seeded
    // with the per-window sync-overhead lower bound so the very first
    // window already rebalances on sane estimates (util::Ewma's
    // cold-start fix; re-seeded by ResetShardsForRun).
    util::Ewma rate;
    // RunWindow calls executed on this device this run (device windows;
    // a loaded shard serializes several per global window).
    uint64_t chunks_run = 0;

    // Run ledgers (reset by RunJoin).
    sim::CounterSet part_sum;
    sim::CounterSet join_sum;
    core::WindowStats stats;
    ShardStats out;
  };

  // One RunWindow call planned for a window: rows
  // [start, start + count) of `owner`'s probe buffer, executed on the
  // owner's device, charged to `thief`'s timeline (thief == owner for
  // the shard's own chunk).
  struct Chunk {
    int owner = 0;
    int thief = 0;
    uint64_t start = 0;
    uint64_t count = 0;
    // Failed-over work: `owner` is dead and `thief` is its failover
    // target. Charged at the recovery penalty, not the steal penalty,
    // and excluded from steal accounting and planner feedback.
    bool failover = false;
    // Filled by RoutePlans when the adaptive planner is on: how the
    // owner's device executes this chunk, and the features the decision
    // saw (echoed back with the observed time after the window barrier).
    bool routed = false;
    plan::PlanChoice choice;
    plan::BatchFeatures features;
  };

  struct ChunkResult {
    Chunk chunk;
    double seconds = 0;
    sim::KernelRun part{"partition", {}};
    sim::KernelRun join{"join", {}};
    uint64_t matches = 0;
    core::WindowStats stats;
  };

  // Per-shard slice of one routed window in that shard's probe buffer.
  struct SliceRef {
    uint64_t start = 0;
    uint64_t count = 0;
  };

  ShardScheduler(const core::ExperimentConfig& cfg, const ShardConfig& dcfg,
                 Topology topo)
      : cfg_(cfg), dcfg_(dcfg), topo_(std::move(topo)) {}

  Status Build();
  Status ResetShardsForRun();
  Status CreateJoiners();

  // The steal planner's per-tuple rate estimator, seeded with the
  // uniform lower bound from the per-window sync overhead: before any
  // observation every shard reports the floor (enough to rebalance
  // routed-count skew in the very first window), and during warm-up an
  // anomalous first window cannot drag the estimate below it.
  util::Ewma SeededRateEstimator() const {
    return util::Ewma(0.5,
                      cfg_.platform.gpu.stream_sync_overhead /
                          static_cast<double>(w_dev_),
                      /*warmup=*/2);
  }

  // Routes s_[begin, begin+count) into the shards' probe buffers.
  // `serving` wraps each shard's cursor cyclically (the serving path
  // reuses the buffers forever); the batch path records row maps for
  // match remapping instead.
  std::vector<SliceRef> RouteSlice(uint64_t begin, uint64_t count,
                                   bool serving);

  // Plans this window's chunks (work stealing when enabled); returns
  // per-victim chunk lists in execution order.
  std::vector<std::vector<Chunk>> PlanChunks(
      const std::vector<SliceRef>& slices, uint64_t* steal_events);

  // Adaptive mode only: routes every planned chunk through the shared
  // planner on the calling thread (shard order, then chunk order — the
  // RNG stream is deterministic for any thread count). No-op when the
  // planner is off.
  void RoutePlans(std::vector<std::vector<Chunk>>* chunks);

  // The analytic context the planner prices shard `i`'s chunks with.
  plan::PlanContext PlanContextFor(int i) const {
    plan::PlanContext ctx;
    ctx.platform = cfg_.platform;
    ctx.r_tuples = plan_.shard_r_tuples(i);
    return ctx;
  }

  // Executes one chunk on its owner's device under chunk.choice
  // (kFull == the static pipeline's single RunWindow call).
  Result<core::WindowRun> RunChunkOnShard(
      Shard& shard, const Chunk& chunk, uint64_t ordinal,
      std::vector<core::JoinMatch>* collect);

  // Runs the planned chunks concurrently (one task per shard that owns
  // work) and folds charged per-shard times, contention and link bytes.
  // Returns the window's wall time (max over shards). `collect_shards`
  // receives per-shard matches when non-null.
  // `window_matches` (optional) receives per-shard match counts for the
  // serving path's merge accounting.
  Result<double> ExecuteWindow(
      const std::vector<std::vector<Chunk>>& chunks, uint64_t ordinal,
      util::ThreadPool* pool,
      std::vector<std::vector<core::JoinMatch>>* collect_shards,
      std::vector<uint64_t>* host_bytes_by_link,
      std::vector<uint64_t>* window_matches);

  double MergeSeconds(const std::vector<uint64_t>& result_bytes) const;

  // ------------------------------------------------------------------
  // Health model (no-ops without a device-fault timeline).

  // First alive shard after `shard` in ring order; -1 when every shard
  // is dead.
  int NextAlive(int shard) const;

  // Declares a shard dead (records the failover, picks the target).
  // `detected_at` is the simulated time the heartbeat timeout fired.
  Status DeclareDead(int shard, const sim::DeviceFaultTimeline::Episode& ep,
                     double detected_at);

  // Pre-window health check at simulated time `now`: declares shards
  // whose terminal fault began at or before `now` and returns the
  // coordinator stall (heartbeat timeouts still running out at `now`).
  Result<double> CheckHealth(double now);

  // Post-window death handling: shards whose terminal fault began while
  // they were busy in [clock_, clock_ + times[i]) die mid-window; every
  // chunk that touched the dying device is re-executed on the failover
  // target (charged, not re-run — the simulator already produced the
  // matches deterministically). Returns the window wall including
  // detection and re-execution.
  Result<double> SettleWindowDeaths(
      const std::vector<std::vector<ChunkResult>>& results,
      const std::vector<double>& times, double wall);

  core::ExperimentConfig cfg_;
  ShardConfig dcfg_;
  Topology topo_;
  ShardPlan plan_;

  // The window grid (fixed per engine, derived in Build): every device
  // has a window capacity of `w_full_` probe tuples (`w_dev_` simulated),
  // so one *global* window strides num_shards * w_dev_ tuples of the
  // sample. A shard routed more than w_dev_ tuples in a global window
  // serializes extra device windows — the scale-out skew penalty. With
  // one shard this degenerates to exactly the batch pipeline's grid.
  uint64_t w_full_ = 0;         // device window, full scale
  uint64_t w_dev_ = 0;          // device window, simulated scale
  uint64_t stride_ = 0;         // global window stride over the sample
  uint64_t n_sim_ = 0;          // simulated global windows
  uint64_t n_full_ = 0;         // full-scale global windows
  double window_scale_ = 1;     // w_full_ / w_dev_

  // The coordinator-side base workload: R (procedural, shared read-only
  // by the router) and the probe sample the windows slice.
  std::unique_ptr<mem::AddressSpace> base_space_;
  std::unique_ptr<workload::KeyColumn> base_r_;
  // Non-null iff dcfg_.{r_begin, r_end} restrict the engine to a slice
  // of R (cluster mode); the shard planner and shard slices then view
  // this column instead of base_r_.
  std::unique_ptr<ShardKeyColumn> restricted_r_;
  workload::ProbeRelation s_;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Device-fault state (timeline null when failover.device_faults is
  // empty — the guard that keeps fault-free runs bit-identical).
  std::unique_ptr<sim::DeviceFaultTimeline> fault_timeline_;
  double clock_ = 0;                  // simulated sample-scale run clock
  std::vector<char> dead_;            // per-shard: declared dead
  std::vector<int> failover_target_;  // per-shard: new owner when dead
  std::vector<int> failover_record_;  // per-shard: index into robustness_
  uint64_t reexec_chunks_ = 0;        // against the re-execution budget
  obs::RobustnessStats robustness_;

  // Adaptive routing state (null / empty in kStatic mode). One planner
  // is shared across shards — plan names don't encode the shard, but the
  // feature bucket's R/TLB coordinate separates shards of different R
  // slices. Extractors are per shard (each owns its reservoir RNG and
  // selectivity estimate).
  std::unique_ptr<plan::Planner> planner_;
  std::vector<plan::FeatureExtractor> extractors_;

  // Persistent simulation workers (the serving path dispatches thousands
  // of slices; per-slice pools would dominate the wall clock).
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace gpujoin::dist

#endif  // GPUJOIN_DIST_SHARD_SCHEDULER_H_
