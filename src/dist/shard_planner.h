#ifndef GPUJOIN_DIST_SHARD_PLANNER_H_
#define GPUJOIN_DIST_SHARD_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address_space.h"
#include "util/status.h"
#include "workload/key_column.h"

namespace gpujoin::dist {

// How R's key domain is split across devices: by *leading radix bits*,
// the same key-space geometry the windowed partitioner uses for its
// buckets (partition/radix_partitioner.h), so a shard owns a contiguous
// run of radix cells — and therefore a contiguous slice of the sorted R.
//
// The domain is cut into 2^cell_bits equal key ranges ("cells") and
// cells are dealt to shards contiguously, `cell * num_shards >> cell_bits`
// style, which keeps the split balanced (within one cell) for
// non-power-of-two shard counts too.
struct ShardPlan {
  int num_shards = 1;
  workload::Key min_key = 0;
  int shift = 0;       // key -> cell: (key - min_key) >> shift
  int cell_bits = 0;   // 2^cell_bits cells over the domain
  // Per shard, the first owned cell; cells_begin[num_shards] == 2^bits.
  std::vector<uint64_t> cells_begin;
  // Per shard, the first owned position in R; pos_begin[num_shards] ==
  // r.size(). Positions are what the shards' key-column slices use.
  std::vector<uint64_t> pos_begin;

  // Owning shard of a probe key (monotone in the key).
  int OwnerOf(workload::Key key) const {
    uint64_t cell =
        static_cast<uint64_t>(key - min_key) >> static_cast<uint64_t>(shift);
    const uint64_t cells = uint64_t{1} << cell_bits;
    if (cell >= cells) cell = cells - 1;
    // cells_begin is sorted; shards are few, so a linear scan is fine
    // for planning, but routing is hot — use the precomputed map.
    return owner_of_cell[cell];
  }

  uint64_t shard_r_tuples(int shard) const {
    return pos_begin[shard + 1] - pos_begin[shard];
  }

  // cell -> shard, materialized at plan time (2^cell_bits entries).
  std::vector<int> owner_of_cell;
};

// Splits R by leading radix bits into `num_shards` contiguous slices.
class ShardPlanner {
 public:
  // `num_shards` in [1, 64]. Fails when R has fewer keys than shards.
  static Result<ShardPlan> Plan(const workload::KeyColumn& r,
                                int num_shards);
};

// Read-only view of rows [begin, begin + size) of a base column, backed
// by its own reservation in the *shard's* address space — the shard's
// device sees its slice of R at local addresses, with its own
// MemoryModel/TLB, which is what makes the paper's 32 GiB TLB-coverage
// cliff a per-shard property.
class ShardKeyColumn : public workload::KeyColumn {
 public:
  ShardKeyColumn(mem::AddressSpace* space, const workload::KeyColumn& base,
                 uint64_t begin, uint64_t size)
      : region_(space->Reserve(size * sizeof(workload::Key),
                               mem::MemKind::kHost,
                               "R." + base.name() + "_keys")),
        base_(&base),
        begin_(begin),
        size_(size) {}

  uint64_t size() const override { return size_; }
  workload::Key key_at(uint64_t i) const override {
    return base_->key_at(begin_ + i);
  }
  mem::VirtAddr addr_of(uint64_t i) const override {
    return region_.base + i * sizeof(workload::Key);
  }
  std::string name() const override { return base_->name(); }

 private:
  mem::Region region_;
  const workload::KeyColumn* base_;
  uint64_t begin_;
  uint64_t size_;
};

}  // namespace gpujoin::dist

#endif  // GPUJOIN_DIST_SHARD_PLANNER_H_
