#include "dist/shard_planner.h"

#include <algorithm>
#include <string>

namespace gpujoin::dist {

namespace {

int BitWidth(uint64_t v) {
  int bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

}  // namespace

Result<ShardPlan> ShardPlanner::Plan(const workload::KeyColumn& r,
                                     int num_shards) {
  if (num_shards < 1 || num_shards > 64) {
    return Status::InvalidArgument("num_shards must be in [1, 64], got " +
                                   std::to_string(num_shards));
  }
  if (r.size() < static_cast<uint64_t>(num_shards)) {
    return Status::InvalidArgument(
        "R has fewer keys than shards (" + std::to_string(r.size()) + " < " +
        std::to_string(num_shards) + ")");
  }

  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.min_key = r.min_key();

  // 8x more cells than shards keeps the dealt ranges within 12.5% of
  // equal for non-power-of-two shard counts; clamp to the domain width
  // so tiny key domains still produce a valid (coarser) split.
  const uint64_t span =
      static_cast<uint64_t>(r.max_key()) - static_cast<uint64_t>(plan.min_key);
  const int span_bits = BitWidth(span);
  plan.cell_bits = std::min(span_bits, BitWidth(
      static_cast<uint64_t>(num_shards - 1)) + 3);
  if (plan.cell_bits < 1) plan.cell_bits = 1;
  plan.shift = span_bits > plan.cell_bits ? span_bits - plan.cell_bits : 0;

  const uint64_t cells = uint64_t{1} << plan.cell_bits;
  plan.owner_of_cell.resize(cells);
  for (uint64_t c = 0; c < cells; ++c) {
    plan.owner_of_cell[c] = static_cast<int>(
        c * static_cast<uint64_t>(num_shards) / cells);
  }

  plan.cells_begin.resize(num_shards + 1);
  plan.pos_begin.resize(num_shards + 1);
  plan.cells_begin[0] = 0;
  plan.pos_begin[0] = 0;
  for (int s = 1; s < num_shards; ++s) {
    // First cell whose owner is >= s: ceil(s * cells / num_shards).
    const uint64_t c =
        (static_cast<uint64_t>(s) * cells +
         static_cast<uint64_t>(num_shards) - 1) /
        static_cast<uint64_t>(num_shards);
    plan.cells_begin[s] = c;
    const workload::Key boundary = static_cast<workload::Key>(
        static_cast<uint64_t>(plan.min_key) + (c << plan.shift));
    plan.pos_begin[s] = r.LowerBound(boundary);
  }
  plan.cells_begin[num_shards] = cells;
  plan.pos_begin[num_shards] = r.size();

  for (int s = 0; s < num_shards; ++s) {
    if (plan.pos_begin[s + 1] <= plan.pos_begin[s]) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " would own an empty slice of R; use fewer shards for this "
          "key domain");
    }
  }
  return plan;
}

}  // namespace gpujoin::dist
