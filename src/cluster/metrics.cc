#include "cluster/metrics.h"

#include "obs/emitter.h"
#include "obs/json.h"

namespace gpujoin::cluster {

std::string NodesJson(const ClusterRunResult& result) {
  obs::JsonWriter w;
  w.BeginArray();
  for (const NodeStats& n : result.nodes) {
    w.BeginObject();
    w.Key("node").Int(n.node);
    w.Key("origin").Bool(n.origin);
    w.Key("alive").Bool(n.alive);
    w.Key("drained").Bool(n.drained);
    w.Key("shards").Int(n.shards);
    w.Key("r_tuples").Uint(n.r_tuples);
    w.Key("tuples_routed").Uint(n.tuples_routed);
    w.Key("tuples_rerouted").Uint(n.tuples_rerouted);
    w.Key("matches").Uint(n.matches);
    w.Key("steal_events").Uint(n.steal_events);
    w.Key("busy_seconds").Double(n.busy_seconds);
    if (!n.phase_spans.empty()) {
      w.Key("phases");
      obs::WritePhaseSpans(w, n.phase_spans);
    }
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

std::string NetworkLinksJson(const ClusterRunResult& result) {
  obs::JsonWriter w;
  w.BeginArray();
  for (const NetworkLinkStats& l : result.network) {
    w.BeginObject();
    w.Key("name").String(l.name);
    w.Key("bytes").Uint(l.bytes);
    w.Key("utilization").Double(l.utilization);
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

}  // namespace gpujoin::cluster
