#ifndef GPUJOIN_CLUSTER_CLUSTER_SCHEDULER_H_
#define GPUJOIN_CLUSTER_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_topology.h"
#include "cluster/node_planner.h"
#include "core/experiment.h"
#include "core/match.h"
#include "dist/shard_scheduler.h"
#include "mem/address_space.h"
#include "obs/robustness.h"
#include "serve/server.h"
#include "sim/fault.h"
#include "sim/run_result.h"
#include "util/status.h"
#include "workload/key_column.h"

namespace gpujoin::cluster {

// Node-level failure detection and key-range rerouting: the cluster
// analogue of dist::FailoverPolicy, with the fault timeline keyed by
// *node* instead of shard. A node with a terminal fault is declared
// dead one heartbeat timeout after the fault begins; the radix cells it
// was charged with are dealt to the survivors, which from then on probe
// the dead node's R slice remotely (it stays reachable in its host
// memory, the same out-of-core argument dist::FailoverPolicy makes) at
// the recovery penalty plus per-probe fetch traffic over the network.
// Matches are produced exactly once either way, so the merged match set
// is identical to the fault-free run (DESIGN.md §16).
struct NodeFailoverPolicy {
  // The node-level fault schedule (shard ids are node ids; empty = no
  // node faults, and the scheduler never consults the timeline).
  sim::DeviceFaultConfig node_faults;
  // Simulated (sample-scale) seconds without progress before a node is
  // declared dead. Charged as coordinator stall on detection.
  double heartbeat_timeout = 1e-4;
  // Rerouted probes of un-migrated cells run this much slower than
  // local (the survivor probes a remote R slice over the network).
  double recovery_penalty = 2.0;

  bool enabled() const { return node_faults.enabled(); }
};

// One elastic-membership change, applied at the first window boundary
// whose simulated (sample-scale) clock has reached `at_seconds`.
struct MembershipEvent {
  enum class Kind {
    // Attach a fresh node (new uplink, empty until rebalanced). The
    // joiner takes over an equal share of radix cells; only those
    // cells' R tuples move, over the network.
    kAddNode,
    // Remove `node` from service: its charged cells (and their data)
    // move to the remaining nodes, then it stops taking work.
    kDrainNode,
  };
  Kind kind = Kind::kAddNode;
  int node = -1;          // kDrainNode target; ignored for kAddNode
  double at_seconds = 0;  // sample-scale cluster clock
};

struct ClusterConfig {
  // Origin nodes: machines that hold an R slice and an engine from the
  // start. In [1, 64]; nodes added by membership events on top.
  int num_nodes = 1;
  int gpus_per_node = 1;
  NetworkKind network = NetworkKind::kInfiniBand;
  dist::TopologyKind node_topology = dist::TopologyKind::kNvLink2;
  // Intra-node work stealing (dist's policy, applied inside each node).
  dist::StealPolicy steal;
  // Per-chunk plan routing inside each node engine (dist's semantics).
  plan::PlannerConfig planner{.mode = plan::PlannerMode::kStatic};
  NodeFailoverPolicy failover;
  std::vector<MembershipEvent> membership;
  // Simulation worker threads per node engine; 0 = auto (dist rule).
  int threads = 0;
};

// Per-node outcome of a cluster run. Tuple/match counts are at
// simulated-sample scale (they describe the simulated windows), like
// dist::ShardStats.
struct NodeStats {
  int node = 0;
  bool origin = true;    // holds an R slice + engine from the start
  bool alive = true;
  bool drained = false;
  int shards = 0;        // GPUs contributed (0 once drained)
  uint64_t r_tuples = 0;       // R tuples charged here at run end
  uint64_t tuples_routed = 0;  // probe rows charged here
  uint64_t tuples_rerouted = 0;  // of those, executed on a foreign origin
  uint64_t matches = 0;
  uint64_t steal_events = 0;   // intra-node buckets rebalanced
  double busy_seconds = 0;     // charged node time (sample scale)
  // Concatenated per-GPU profile when observability is enabled
  // (origin nodes only; sample scale).
  std::vector<sim::PhaseSpan> phase_spans;
};

// Traffic over one network-tier link, full-workload scale (window
// traffic extrapolated, migrations charged as-is).
using NetworkLinkStats = dist::LinkStats;

struct ClusterRunResult {
  sim::RunResult run;
  std::vector<NodeStats> nodes;
  std::vector<NetworkLinkStats> network;
  uint64_t steal_events = 0;     // intra-node, summed over nodes
  double merge_seconds = 0;      // result merge over the network
  // Elastic-membership activity (zero without events).
  uint64_t rebalance_events = 0;
  uint64_t moved_r_tuples = 0;   // R tuples shipped by rebalances
  double migration_seconds = 0;  // network time of those shipments
  // Simulated sample-scale makespan (before extrapolation); the bench
  // places --fail-at and membership events as fractions of it.
  double sim_makespan = 0;
  // Node-failover activity (empty on a fault-free run).
  obs::RobustnessStats robustness;

  double tuples_per_second() const {
    return run.seconds > 0
               ? static_cast<double>(run.probe_tuples) / run.seconds
               : 0;
  }
};

// The multi-node execution engine: one dist::ShardScheduler per origin
// node, each restricted to the node's slice of R (two-level radix plan,
// node by leading bits then shard inside the node), driven window by
// window through dist's ExecuteRowBatch hook. The cluster layer owns
// everything that crosses the network tier: probe handoff from the
// ingress node, rerouted-probe fetches after a node death, R-slice
// migrations on membership changes, and the final result merge.
//
// The load-bearing invariant (DESIGN.md §16): execution location is
// fixed by the *initial* plan — a probe row always runs on its origin
// node's structures — while membership and failure only change which
// node the time and traffic are charged to. Every probe row is executed
// exactly once on the same structures in every configuration, so the
// match set is identical across node deaths, drains and joins, and with
// one node (no events, no node faults) the scheduler delegates to its
// single engine wholesale and is bit-identical to dist.
//
// Determinism: grouping and charging happen on the calling thread;
// node engines are internally deterministic for any thread count; and
// all folding is in (origin, charge) order after each window — results
// are bit-identical for any ClusterConfig::threads.
class ClusterScheduler final : public serve::WindowBackend {
 public:
  static Result<std::unique_ptr<ClusterScheduler>> Create(
      const core::ExperimentConfig& cfg, const ClusterConfig& ccfg);

  // Runs the full probe relation (window grid over the sample,
  // extrapolated to full scale). A non-null `collect` receives every
  // sample-scale match with global probe rows and global R positions,
  // concatenated deterministically.
  Result<ClusterRunResult> RunJoin(
      std::vector<core::JoinMatch>* collect = nullptr);

  // serve::WindowBackend: routes the slice's rows by node, charges the
  // network handoff and per-slice merge, and returns the slowest
  // node's time. Membership events and node faults apply at slice
  // boundaries on the serving clock.
  uint64_t sample_size() const override;
  Result<double> ServiceSlice(uint64_t begin, uint64_t count,
                              uint64_t ordinal) override;
  Result<double> ServiceSliceCollect(
      uint64_t begin, uint64_t count, uint64_t ordinal,
      std::vector<core::JoinMatch>* collect) override;

  // Attaches phase timelines to every origin node's devices
  // (idempotent); subsequent runs fill NodeStats::phase_spans.
  void EnableObservability();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int gpus_per_node() const { return ccfg_.gpus_per_node; }
  const ClusterTopology& topology() const { return topo_; }
  const NodePlan& plan() const { return plan_; }
  const obs::RobustnessStats& robustness() const { return robustness_; }

 private:
  struct Node {
    int id = 0;
    bool origin = true;
    bool alive = true;
    bool drained = false;
    // Origin nodes only; joiners are charge targets whose work runs on
    // the origin structures (see the class comment).
    std::unique_ptr<dist::ShardScheduler> engine;
    int failover_record = -1;  // index into robustness_.failovers
    NodeStats out;
  };

  // One per-window execution group: rows that share an origin node o
  // (whose structures run them) and a charge class.
  struct Group {
    int origin = 0;
    int charge = 0;
    // True when the rows' cells are charged off-origin without having
    // been migrated (node-death reroute): recovery penalty + per-probe
    // fetch traffic apply.
    bool fetch = false;
    std::vector<uint64_t> rows;
  };

  ClusterScheduler(const core::ExperimentConfig& cfg,
                   const ClusterConfig& ccfg, ClusterTopology topo)
      : cfg_(cfg), ccfg_(ccfg), topo_(std::move(topo)) {}

  Status Build();
  // Restores initial membership/charge/fault/ledger state and resets
  // the node engines (head of RunJoin; the serving path initializes
  // lazily through EnsureServing).
  Status ResetForRun();
  Status EnsureServing();

  // First alive, un-drained node in id order (the probe stream's entry
  // point); -1 when none remains.
  int IngressNode() const;
  int origin_of_cell(uint64_t cell) const {
    return plan_.base.owner_of_cell[cell];
  }

  // Groups rows[0..count) by (origin, charge, fetch), in that order.
  std::vector<Group> GroupRows(const uint64_t* rows, uint64_t count) const;

  // Executes one window's groups, charges network handoff/fetch and
  // contention, and returns the window wall (max over charge nodes).
  // Appends matches (global rows/positions) to `collect` when non-null.
  // A non-null `slice_merge_seconds` additionally charges each group's
  // result return to the ingress (the serving path's per-slice merge;
  // the batch path merges once at the end of the run instead).
  Result<double> ExecuteGroups(const std::vector<Group>& groups,
                               uint64_t ordinal,
                               std::vector<core::JoinMatch>* collect,
                               double* slice_merge_seconds);

  // Applies membership events scheduled at or before `now`.
  Status ApplyMembership(double now);
  // Declares nodes whose terminal fault began at or before `now` dead
  // and reroutes their cells; returns the detection stall.
  Result<double> CheckNodeHealth(double now);

  // Reassigns every cell charged to `node` to the surviving targets,
  // balanced and deterministic. `migrate` ships the data (drain/join
  // rebalancing); a death reroute leaves the data where it is.
  Status ReassignCells(int node, bool migrate);
  // Moves an equal share of cells onto joiner `node` (kAddNode).
  Status RebalanceOnto(int node);
  // Ships cell `c`'s R slice to `dst` and re-charges the cell.
  void MoveCell(uint64_t cell, int dst);

  // Nodes currently accepting charges, in id order.
  std::vector<int> ChargeTargets() const;

  // Seconds to stream `bytes` from node `from` to `to`, with shared-link
  // contention for `active` concurrent senders (dist's
  // "(sharers - 1) * transfer" rule), charging the path's links in
  // `ledger`.
  double NetCharge(int from, int to, uint64_t bytes, int active,
                   std::vector<uint64_t>* ledger);

  double MergeSecondsNet(const std::vector<uint64_t>& result_bytes,
                         int ingress);

  core::ExperimentConfig cfg_;
  ClusterConfig ccfg_;
  ClusterTopology topo_;
  NodePlan plan_;

  // With one origin node, no membership events and no node faults the
  // cluster is exactly its single engine (bit-identity guarantee).
  bool delegate_ = false;

  // Cluster-side copy of R for node planning and migration accounting
  // (the engines each hold their own, as dist does).
  std::unique_ptr<mem::AddressSpace> space_;
  std::unique_ptr<workload::KeyColumn> r_;

  // The cluster window grid, dist's formulas with
  // total GPUs = origin nodes * gpus_per_node as the shard count.
  uint64_t w_full_ = 0;
  uint64_t w_dev_ = 0;
  uint64_t stride_ = 0;
  uint64_t n_sim_ = 0;
  uint64_t n_full_ = 0;
  double window_scale_ = 1;

  std::vector<std::unique_ptr<Node>> nodes_;

  // Elastic charge state: cell -> charged node, and whether the cell's
  // R slice now lives with its charge (migrated) or still at its
  // origin (death reroutes fetch remotely).
  std::vector<int> charge_of_cell_;
  std::vector<char> cell_migrated_;
  size_t membership_next_ = 0;  // cursor into sorted membership events

  std::unique_ptr<sim::DeviceFaultTimeline> fault_timeline_;
  double clock_ = 0;  // simulated sample-scale cluster clock

  // Run ledgers.
  std::vector<uint64_t> window_link_bytes_;  // extrapolated at the end
  std::vector<uint64_t> event_link_bytes_;   // migrations/merge, as-is
  uint64_t rebalance_events_ = 0;
  uint64_t moved_r_tuples_ = 0;
  double migration_seconds_ = 0;
  obs::RobustnessStats robustness_;

  bool observability_ = false;
  bool serving_ready_ = false;
};

}  // namespace gpujoin::cluster

#endif  // GPUJOIN_CLUSTER_CLUSTER_SCHEDULER_H_
