#ifndef GPUJOIN_CLUSTER_NODE_PLANNER_H_
#define GPUJOIN_CLUSTER_NODE_PLANNER_H_

#include <cstdint>
#include <vector>

#include "dist/shard_planner.h"
#include "util/status.h"
#include "workload/key_column.h"

namespace gpujoin::cluster {

// The top level of the two-level plan: R's key domain is cut by leading
// radix bits into nodes exactly the way dist::ShardPlanner cuts it into
// shards — the cluster reuses that geometry wholesale, one level up.
// Every node then re-plans *its own slice* across its GPUs with the
// same planner (dist::ShardScheduler with an R restriction), so a key's
// home is found by two radix lookups: node by the leading bits, shard
// by the node-local plan.
//
// On top of the base plan the node level keeps per-*cell* R positions:
// cells are the granularity of elastic membership (a rebalance moves
// whole cells, and only the cells whose charge actually changed).
struct NodePlan {
  dist::ShardPlan base;  // "shards" here are nodes
  // Per cell, the first R position; cell_pos[cells()] == r.size().
  // What migration byte accounting is computed from.
  std::vector<uint64_t> cell_pos;

  int num_nodes() const { return base.num_shards; }
  uint64_t cells() const { return uint64_t{1} << base.cell_bits; }

  // Cell of a probe key (monotone in the key, clamped to the domain).
  uint64_t CellOf(workload::Key key) const {
    uint64_t cell = static_cast<uint64_t>(key - base.min_key) >>
                    static_cast<uint64_t>(base.shift);
    const uint64_t n = cells();
    return cell >= n ? n - 1 : cell;
  }

  // Node whose R slice holds the key under the *initial* plan (the
  // origin node; elastic charge reassignment lives in the scheduler).
  int OriginOf(workload::Key key) const { return base.OwnerOf(key); }

  uint64_t node_r_begin(int node) const { return base.pos_begin[node]; }
  uint64_t node_r_end(int node) const { return base.pos_begin[node + 1]; }
  uint64_t node_r_tuples(int node) const {
    return base.shard_r_tuples(node);
  }
  uint64_t cell_r_tuples(uint64_t cell) const {
    return cell_pos[cell + 1] - cell_pos[cell];
  }
};

class NodePlanner {
 public:
  // `num_nodes` in [1, 64] (dist::ShardPlanner's bound). Fails when R
  // has fewer keys than nodes.
  static Result<NodePlan> Plan(const workload::KeyColumn& r, int num_nodes);
};

}  // namespace gpujoin::cluster

#endif  // GPUJOIN_CLUSTER_NODE_PLANNER_H_
