#ifndef GPUJOIN_CLUSTER_CLUSTER_TOPOLOGY_H_
#define GPUJOIN_CLUSTER_CLUSTER_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dist/topology.h"
#include "sim/specs.h"
#include "util/check.h"
#include "util/status.h"

namespace gpujoin::cluster {

// The network tier above the per-node GPU fabrics. The paper's fast
// interconnects live *inside* one machine; the moment the index
// outgrows a node, probes and results cross a network whose bandwidth
// and latency are one to three orders of magnitude worse than NVLink.
// The cluster planner exists to respect that asymmetry, and this class
// is where the asymmetry is priced.
enum class NetworkKind {
  // HDR InfiniBand through a non-blocking switch: every node has a
  // dedicated ~23 GB/s uplink and node-to-node traffic takes the
  // sender's uplink then the receiver's, with no shared bottleneck.
  kInfiniBand,
  // 25 GbE through an oversubscribed top-of-rack switch: per-node
  // uplinks feed one shared backplane segment that every transfer
  // crosses — concurrent senders contend on it.
  kEthernet,
};

const char* NetworkKindName(NetworkKind kind);
Result<NetworkKind> ParseNetworkKind(const std::string& name);

// Two-level interconnect topology: `num_nodes` machines, each with its
// own dist::Topology GPU fabric (the in-node tier the ShardScheduler
// prices), joined by a network tier of per-node uplinks (plus a shared
// backplane for Ethernet). Network links are identified by index into
// links() so the scheduler can account bytes and contention per link,
// exactly as dist::Topology does for the in-node fabric.
class ClusterTopology {
 public:
  static Result<ClusterTopology> Create(NetworkKind network, int num_nodes,
                                        dist::TopologyKind node_fabric,
                                        int gpus_per_node);
  // As Create, but with an explicit network spec and sharing mode
  // (tests; `shared_switch` inserts the contended backplane segment).
  static Result<ClusterTopology> FromSpec(NetworkKind network, int num_nodes,
                                          dist::TopologyKind node_fabric,
                                          int gpus_per_node,
                                          const sim::InterconnectSpec& spec,
                                          bool shared_switch);

  NetworkKind network() const { return network_; }
  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  dist::TopologyKind node_fabric_kind() const { return fabric_kind_; }
  // Network-tier links only (the in-node links live in the fabrics).
  const std::vector<dist::Link>& links() const { return links_; }

  // The GPU fabric inside `node`. Out-of-range node ids are programming
  // errors on the scheduler side, so these accessors CHECK with the
  // offending value named (dist::Topology::host_link convention).
  const dist::Topology& node_fabric(int node) const {
    GPUJOIN_CHECK(node >= 0 && node < num_nodes_)
        << "node_fabric: node must be in [0, " << num_nodes_ << "), got "
        << node;
    return fabrics_[static_cast<size_t>(node)];
  }

  // The node's uplink into the switch, as an index into links().
  int uplink(int node) const {
    GPUJOIN_CHECK(node >= 0 && node < num_nodes_)
        << "uplink: node must be in [0, " << num_nodes_ << "), got " << node;
    return uplink_of_[static_cast<size_t>(node)];
  }

  // Number of nodes contending on `link` when all of `active_nodes` are
  // transferring at once (1 when the link is dedicated).
  int Sharers(int link, int active_nodes) const {
    GPUJOIN_CHECK(link >= 0 && link < static_cast<int>(links_.size()))
        << "Sharers: link must be in [0, " << links_.size() << "), got "
        << link;
    return links_[static_cast<size_t>(link)].shared ? active_nodes : 1;
  }

  // Simulated seconds to stream `bytes` from node `from` to node `to`
  // (probe handoffs, migrations, result merges). InfiniBand pays the
  // sender's and receiver's uplinks; Ethernet additionally crosses the
  // shared backplane segment.
  double NodeSeconds(int from, int to, uint64_t bytes) const;

  // Links charged by a node-to-node transfer, for utilization
  // accounting.
  std::vector<int> NodePathLinks(int from, int to) const;

  // Elastic membership: attaches one more node (uplink + fabric) and
  // returns its id. The scheduler calls this when an AddNode event
  // fires; existing link ids stay valid.
  Result<int> AddNode();

 private:
  ClusterTopology() = default;

  NetworkKind network_ = NetworkKind::kInfiniBand;
  sim::InterconnectSpec spec_;
  dist::TopologyKind fabric_kind_ = dist::TopologyKind::kNvLink2;
  int num_nodes_ = 0;
  int gpus_per_node_ = 0;
  bool shared_switch_ = false;
  int backplane_link_ = -1;         // links() index, -1 when dedicated
  std::vector<dist::Link> links_;
  std::vector<int> uplink_of_;      // node -> links() index
  std::vector<dist::Topology> fabrics_;
};

}  // namespace gpujoin::cluster

#endif  // GPUJOIN_CLUSTER_CLUSTER_TOPOLOGY_H_
