#include "cluster/cluster_scheduler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <utility>

#include "util/bit_util.h"

namespace gpujoin::cluster {

namespace {

uint64_t ScaleStat(uint64_t v, double f) {
  return static_cast<uint64_t>(std::llround(static_cast<double>(v) * f));
}

// Bytes one probe row drags over the network when handed from the
// ingress to its charge node: just the key (results return in the
// merge).
constexpr uint64_t kHandoffBytesPerTuple = sizeof(workload::Key);

// Bytes one rerouted probe of an un-migrated cell fetches from the
// origin's R slice: the key looked up plus the matched position coming
// back (dist's steal-handoff constant, one network tier up).
constexpr uint64_t kFetchBytesPerTuple =
    sizeof(workload::Key) + sizeof(uint64_t);

// Bytes one migrated R tuple ships during an elastic rebalance: key
// plus row id, the same 16 B/tuple the result merge prices.
constexpr uint64_t kMigrateBytesPerTuple =
    sizeof(workload::Key) + sizeof(uint64_t);

// Result tuples are (probe row, position) pairs, as everywhere else.
constexpr uint64_t kResultBytesPerMatch = 16;

}  // namespace

Result<std::unique_ptr<ClusterScheduler>> ClusterScheduler::Create(
    const core::ExperimentConfig& cfg, const ClusterConfig& ccfg) {
  if (cfg.inlj.mode != core::InljConfig::PartitionMode::kWindowed) {
    return Status::InvalidArgument(
        "the cluster engine runs the windowed INLJ; set "
        "inlj.mode = kWindowed");
  }
  if (ccfg.num_nodes < 1 || ccfg.num_nodes > 64) {
    return Status::InvalidArgument("num_nodes must be in [1, 64]");
  }
  if (ccfg.gpus_per_node < 1) {
    return Status::InvalidArgument("gpus_per_node must be >= 1");
  }
  if (ccfg.num_nodes > 1 &&
      cfg.sample_scheme ==
          core::ExperimentConfig::SampleSchemeOverride::kRangeRestricted) {
    return Status::InvalidArgument(
        "a range-restricted sample spans a fraction of the key domain "
        "and cannot be routed across nodes; use kAuto or kThinned");
  }
  if (!(ccfg.failover.heartbeat_timeout >= 0) ||
      !std::isfinite(ccfg.failover.heartbeat_timeout)) {
    return Status::InvalidArgument(
        "failover.heartbeat_timeout must be finite and >= 0");
  }
  if (!(ccfg.failover.recovery_penalty >= 1) ||
      !std::isfinite(ccfg.failover.recovery_penalty)) {
    return Status::InvalidArgument(
        "failover.recovery_penalty must be finite and >= 1");
  }
  int adds = 0;
  for (const MembershipEvent& ev : ccfg.membership) {
    if (!(ev.at_seconds >= 0) || !std::isfinite(ev.at_seconds)) {
      return Status::InvalidArgument(
          "membership.at_seconds must be finite and >= 0");
    }
    if (ev.kind == MembershipEvent::Kind::kAddNode) {
      ++adds;
    } else if (ev.node < 0) {
      return Status::InvalidArgument(
          "membership.node must be >= 0 for kDrainNode");
    }
  }
  if (ccfg.num_nodes + adds > 64) {
    return Status::InvalidArgument(
        "num_nodes plus added nodes must stay within 64");
  }
  // The fault timeline is keyed by node id over every node that can
  // ever exist, including joiners.
  Status fst = ccfg.failover.node_faults.Validate(ccfg.num_nodes + adds);
  if (!fst.ok()) return fst;

  Result<ClusterTopology> topo = ClusterTopology::Create(
      ccfg.network, ccfg.num_nodes, ccfg.node_topology, ccfg.gpus_per_node);
  if (!topo.ok()) return topo.status();
  std::unique_ptr<ClusterScheduler> engine(
      new ClusterScheduler(cfg, ccfg, *std::move(topo)));
  Status st = engine->Build();
  if (!st.ok()) return st;
  return engine;
}

Status ClusterScheduler::Build() {
  // Cluster-side R for node planning and migration byte accounting; the
  // engines each generate their own identical copy, as dist's
  // coordinator does.
  mem::AddressSpace::Options options;
  options.host_page_size = cfg_.host_page_size;
  space_ = std::make_unique<mem::AddressSpace>(options);
  if (cfg_.jittered_keys) {
    r_ = std::make_unique<workload::JitteredKeyColumn>(
        space_.get(), cfg_.r_tuples, /*stride=*/16, cfg_.seed);
  } else {
    r_ = std::make_unique<workload::DenseKeyColumn>(space_.get(),
                                                    cfg_.r_tuples);
  }

  Result<NodePlan> plan = NodePlanner::Plan(*r_, ccfg_.num_nodes);
  if (!plan.ok()) return plan.status();
  plan_ = *std::move(plan);

  delegate_ = ccfg_.num_nodes == 1 && ccfg_.membership.empty() &&
              !ccfg_.failover.enabled();

  for (int n = 0; n < ccfg_.num_nodes; ++n) {
    dist::ShardConfig dcfg;
    dcfg.num_shards = ccfg_.gpus_per_node;
    dcfg.topology = ccfg_.node_topology;
    dcfg.steal = ccfg_.steal;
    dcfg.planner = ccfg_.planner;
    if (dcfg.planner.mode == plan::PlannerMode::kAdaptive) {
      // Independent decision streams per node.
      dcfg.planner.seed += static_cast<uint64_t>(n) * 0x9e3779b9ULL;
    }
    dcfg.threads = ccfg_.threads;
    if (ccfg_.num_nodes > 1) {
      // Each node's engine plans only its R slice across its GPUs —
      // the second level of the two-level plan. With one node the
      // engine stays unrestricted, which is what makes delegation
      // bit-identical to dist.
      dcfg.r_begin = plan_.node_r_begin(n);
      dcfg.r_end = plan_.node_r_end(n);
    }
    Result<std::unique_ptr<dist::ShardScheduler>> engine =
        dist::ShardScheduler::Create(cfg_, dcfg);
    if (!engine.ok()) return engine.status();
    auto node = std::make_unique<Node>();
    node->id = n;
    node->origin = true;
    node->engine = std::move(*engine);
    nodes_.push_back(std::move(node));
  }

  // The cluster window grid: dist's formulas with every GPU in the
  // cluster as one shard, so a given (nodes * gpus) budget sees the
  // same global stride whether it is packed into one machine or eight.
  const uint64_t total_shards =
      static_cast<uint64_t>(ccfg_.num_nodes) *
      static_cast<uint64_t>(ccfg_.gpus_per_node);
  const uint64_t sample = nodes_[0]->engine->s().sample_size();
  w_full_ = std::min(cfg_.inlj.window_tuples,
                     bits::CeilDiv(cfg_.s_tuples, total_shards));
  w_dev_ = std::min(w_full_, sample);
  w_dev_ = std::max<uint64_t>(1, std::min(w_dev_, sample / total_shards));
  window_scale_ =
      static_cast<double>(w_full_) / static_cast<double>(w_dev_);
  stride_ = total_shards * w_dev_;
  n_sim_ = bits::CeilDiv(sample, stride_);
  n_full_ = bits::CeilDiv(cfg_.s_tuples, total_shards * w_full_);

  if (ccfg_.failover.enabled()) {
    int adds = 0;
    for (const MembershipEvent& ev : ccfg_.membership) {
      if (ev.kind == MembershipEvent::Kind::kAddNode) ++adds;
    }
    fault_timeline_ = std::make_unique<sim::DeviceFaultTimeline>(
        ccfg_.failover.node_faults, ccfg_.num_nodes + adds);
  }

  // Events apply in time order; ties keep config order.
  std::stable_sort(ccfg_.membership.begin(), ccfg_.membership.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });

  return ResetForRun();
}

Status ClusterScheduler::ResetForRun() {
  // Joiners (and their uplinks) exist only within a run: restore the
  // configured membership so repeated runs replay the same schedule.
  if (num_nodes() > ccfg_.num_nodes) {
    nodes_.resize(static_cast<size_t>(ccfg_.num_nodes));
    Result<ClusterTopology> topo = ClusterTopology::Create(
        ccfg_.network, ccfg_.num_nodes, ccfg_.node_topology,
        ccfg_.gpus_per_node);
    if (!topo.ok()) return topo.status();
    topo_ = *std::move(topo);
  }
  for (auto& node : nodes_) {
    node->alive = true;
    node->drained = false;
    node->failover_record = -1;
    node->out = NodeStats{};
    node->out.node = node->id;
    node->out.origin = node->origin;
    if (node->engine != nullptr) {
      Status st = node->engine->BeginBatchWindows();
      if (!st.ok()) return st;
    }
  }
  charge_of_cell_ = plan_.base.owner_of_cell;
  cell_migrated_.assign(plan_.cells(), 0);
  membership_next_ = 0;
  clock_ = 0;
  window_link_bytes_.assign(topo_.links().size(), 0);
  event_link_bytes_.assign(topo_.links().size(), 0);
  rebalance_events_ = 0;
  moved_r_tuples_ = 0;
  migration_seconds_ = 0;
  robustness_ = obs::RobustnessStats{};
  return Status::Ok();
}

Status ClusterScheduler::EnsureServing() {
  if (serving_ready_) return Status::Ok();
  Status st = ResetForRun();
  if (!st.ok()) return st;
  serving_ready_ = true;
  return Status::Ok();
}

void ClusterScheduler::EnableObservability() {
  observability_ = true;
  for (auto& node : nodes_) {
    if (node->engine != nullptr) node->engine->EnableObservability();
  }
}

uint64_t ClusterScheduler::sample_size() const {
  return nodes_.front()->engine->sample_size();
}

int ClusterScheduler::IngressNode() const {
  for (const auto& node : nodes_) {
    if (node->alive && !node->drained) return node->id;
  }
  return -1;
}

std::vector<int> ClusterScheduler::ChargeTargets() const {
  std::vector<int> targets;
  for (const auto& node : nodes_) {
    if (node->alive && !node->drained) targets.push_back(node->id);
  }
  return targets;
}

double ClusterScheduler::NetCharge(int from, int to, uint64_t bytes,
                                   int active,
                                   std::vector<uint64_t>* ledger) {
  if (from == to || bytes == 0) return 0;
  double seconds = topo_.NodeSeconds(from, to, bytes);
  for (int l : topo_.NodePathLinks(from, to)) {
    (*ledger)[static_cast<size_t>(l)] += bytes;
    const int sharers = topo_.Sharers(l, active);
    if (sharers > 1) {
      seconds += (sharers - 1) * (static_cast<double>(bytes) /
                                  topo_.links()[static_cast<size_t>(l)]
                                      .seq_bandwidth);
    }
  }
  return seconds;
}

void ClusterScheduler::MoveCell(uint64_t cell, int dst) {
  // Data ships from wherever the slice currently lives: its charge if
  // a previous rebalance migrated it, its origin otherwise.
  const int src = cell_migrated_[cell] != 0
                      ? charge_of_cell_[cell]
                      : origin_of_cell(cell);
  const uint64_t tuples = plan_.cell_r_tuples(cell);
  migration_seconds_ += NetCharge(src, dst, tuples * kMigrateBytesPerTuple,
                                  /*active=*/1, &event_link_bytes_);
  moved_r_tuples_ += tuples;
  charge_of_cell_[cell] = dst;
  cell_migrated_[cell] = 1;
}

Status ClusterScheduler::ReassignCells(int node, bool migrate) {
  std::vector<int> targets = ChargeTargets();
  if (targets.empty()) {
    return Status::FailedPrecondition(
        "no serviceable node left to take over node " +
        std::to_string(node) + "'s key range");
  }
  // Deal each orphaned cell to the least-loaded target (ties to the
  // lowest id) — balanced and deterministic.
  std::vector<uint64_t> count(nodes_.size(), 0);
  for (uint64_t c = 0; c < plan_.cells(); ++c) {
    if (charge_of_cell_[c] != node) {
      ++count[static_cast<size_t>(charge_of_cell_[c])];
    }
  }
  for (uint64_t c = 0; c < plan_.cells(); ++c) {
    if (charge_of_cell_[c] != node) continue;
    int dst = targets[0];
    for (int t : targets) {
      if (count[static_cast<size_t>(t)] < count[static_cast<size_t>(dst)]) {
        dst = t;
      }
    }
    if (migrate) {
      MoveCell(c, dst);
    } else {
      // Death reroute: the data stays put; survivors fetch remotely.
      charge_of_cell_[c] = dst;
      cell_migrated_[c] = 0;
    }
    ++count[static_cast<size_t>(dst)];
  }
  return Status::Ok();
}

Status ClusterScheduler::RebalanceOnto(int node) {
  const uint64_t share = plan_.cells() / ChargeTargets().size();
  std::vector<uint64_t> count(nodes_.size(), 0);
  for (uint64_t c = 0; c < plan_.cells(); ++c) {
    ++count[static_cast<size_t>(charge_of_cell_[c])];
  }
  // Take cells from the most-loaded nodes until the joiner holds an
  // equal share; each donor gives up its highest cells first, so the
  // moved key ranges are contiguous tails and everything untouched
  // stays exactly where it was (incremental rebalancing).
  while (count[static_cast<size_t>(node)] < share) {
    int donor = -1;
    for (const auto& cand : nodes_) {
      if (cand->id == node) continue;
      if (donor < 0 || count[static_cast<size_t>(cand->id)] >
                           count[static_cast<size_t>(donor)]) {
        donor = cand->id;
      }
    }
    if (donor < 0 || count[static_cast<size_t>(donor)] <= share) break;
    uint64_t victim = plan_.cells();
    for (uint64_t c = plan_.cells(); c-- > 0;) {
      if (charge_of_cell_[c] == donor) {
        victim = c;
        break;
      }
    }
    if (victim == plan_.cells()) break;
    MoveCell(victim, node);
    --count[static_cast<size_t>(donor)];
    ++count[static_cast<size_t>(node)];
  }
  return Status::Ok();
}

Status ClusterScheduler::ApplyMembership(double now) {
  while (membership_next_ < ccfg_.membership.size() &&
         ccfg_.membership[membership_next_].at_seconds <= now) {
    const MembershipEvent& ev = ccfg_.membership[membership_next_++];
    if (ev.kind == MembershipEvent::Kind::kAddNode) {
      Result<int> id = topo_.AddNode();
      if (!id.ok()) return id.status();
      window_link_bytes_.resize(topo_.links().size(), 0);
      event_link_bytes_.resize(topo_.links().size(), 0);
      auto node = std::make_unique<Node>();
      node->id = *id;
      node->origin = false;
      node->out.node = *id;
      node->out.origin = false;
      nodes_.push_back(std::move(node));
      Status st = RebalanceOnto(*id);
      if (!st.ok()) return st;
    } else {
      if (ev.node >= num_nodes()) {
        return Status::InvalidArgument(
            "membership drains unknown node " + std::to_string(ev.node));
      }
      Node& node = *nodes_[static_cast<size_t>(ev.node)];
      if (!node.alive || node.drained) {
        return Status::InvalidArgument(
            "membership drains node " + std::to_string(ev.node) +
            " which is already out of service");
      }
      node.drained = true;
      Status st = ReassignCells(ev.node, /*migrate=*/true);
      if (!st.ok()) return st;
    }
    ++rebalance_events_;
  }
  return Status::Ok();
}

Result<double> ClusterScheduler::CheckNodeHealth(double now) {
  if (fault_timeline_ == nullptr) return 0.0;
  double stall = 0;
  for (auto& node : nodes_) {
    if (!node->alive) continue;
    std::optional<sim::DeviceFaultTimeline::Episode> ep =
        fault_timeline_->TerminalAt(node->id, now);
    if (!ep.has_value()) continue;
    node->alive = false;
    const double detected_at =
        ep->begin + ccfg_.failover.heartbeat_timeout;
    const double wait = std::max(0.0, detected_at - now);
    stall = std::max(stall, wait);
    robustness_.detection_seconds += wait;

    obs::FailoverRecord record;
    record.dead_shard = node->id;
    record.fault_class = sim::DeviceFaultClassName(ep->cls);
    record.detected_at_seconds = detected_at;
    // Probe rows whose key range just moved: scan the sample once (the
    // same quantity dist accumulates per routed window).
    const workload::ProbeRelation& s = nodes_[0]->engine->s();
    const workload::Key* keys = s.keys.data().data();
    for (uint64_t i = 0; i < s.sample_size(); ++i) {
      if (charge_of_cell_[plan_.CellOf(keys[i])] == node->id) {
        ++record.reassigned_tuples;
      }
    }
    node->failover_record =
        static_cast<int>(robustness_.failovers.size());
    robustness_.failovers.push_back(std::move(record));

    Status st = ReassignCells(node->id, /*migrate=*/false);
    if (!st.ok()) return st;
  }
  return stall;
}

std::vector<ClusterScheduler::Group> ClusterScheduler::GroupRows(
    const uint64_t* rows, uint64_t count) const {
  const workload::Key* keys =
      nodes_[0]->engine->s().keys.data().data();
  std::map<std::tuple<int, int, bool>, size_t> index;
  std::vector<Group> groups;
  for (uint64_t i = 0; i < count; ++i) {
    const workload::Key key = keys[rows[i]];
    const uint64_t cell = plan_.CellOf(key);
    const int origin = origin_of_cell(cell);
    const int charge = charge_of_cell_[cell];
    const bool fetch = charge != origin && cell_migrated_[cell] == 0;
    const auto k = std::make_tuple(origin, charge, fetch);
    auto it = index.find(k);
    if (it == index.end()) {
      it = index.emplace(k, groups.size()).first;
      Group g;
      g.origin = origin;
      g.charge = charge;
      g.fetch = fetch;
      groups.push_back(std::move(g));
    }
    groups[it->second].rows.push_back(rows[i]);
  }
  std::sort(groups.begin(), groups.end(),
            [](const Group& a, const Group& b) {
              return std::tie(a.origin, a.charge, a.fetch) <
                     std::tie(b.origin, b.charge, b.fetch);
            });
  return groups;
}

Result<double> ClusterScheduler::ExecuteGroups(
    const std::vector<Group>& groups, uint64_t ordinal,
    std::vector<core::JoinMatch>* collect, double* slice_merge_seconds) {
  const int ingress = IngressNode();
  if (ingress < 0) {
    return Status::FailedPrecondition("every node of the cluster is dead");
  }
  // Concurrent network senders this window, for shared-switch
  // contention.
  int active = 0;
  for (const Group& g : groups) {
    if (g.charge != ingress || g.fetch) ++active;
  }

  const bool restricted = ccfg_.num_nodes > 1;
  std::vector<double> time(nodes_.size(), 0);
  std::vector<core::JoinMatch> tmp;
  for (const Group& g : groups) {
    Node& origin = *nodes_[static_cast<size_t>(g.origin)];
    Node& charge = *nodes_[static_cast<size_t>(g.charge)];
    tmp.clear();
    Result<dist::ShardScheduler::RowBatchResult> res =
        origin.engine->ExecuteRowBatch(g.rows.data(), g.rows.size(),
                                       ordinal,
                                       collect != nullptr ? &tmp : nullptr);
    if (!res.ok()) return res.status();

    double t = res->seconds;
    if (g.fetch) t *= ccfg_.failover.recovery_penalty;
    // Probe handoff from the ingress (where the stream enters the
    // cluster) to the charge node.
    t += NetCharge(ingress, g.charge,
                   g.rows.size() * kHandoffBytesPerTuple, active,
                   &window_link_bytes_);
    // Rerouted probes of an un-migrated cell read the origin's R slice
    // over the network, key out and position back.
    if (g.fetch) {
      t += NetCharge(g.origin, g.charge,
                     g.rows.size() * kFetchBytesPerTuple, active,
                     &window_link_bytes_);
    }
    time[static_cast<size_t>(g.charge)] += t;

    charge.out.tuples_routed += g.rows.size();
    if (g.charge != g.origin) charge.out.tuples_rerouted += g.rows.size();
    charge.out.matches += res->matches;
    charge.out.busy_seconds += t;
    charge.out.steal_events += res->steal_events;
    if (g.fetch && !origin.alive && origin.failover_record >= 0) {
      robustness_.failovers[static_cast<size_t>(origin.failover_record)]
          .reexec_chunks += 1;
    }
    if (slice_merge_seconds != nullptr) {
      *slice_merge_seconds +=
          NetCharge(g.charge, ingress, res->matches * kResultBytesPerMatch,
                    /*active=*/1, &window_link_bytes_);
    }
    if (collect != nullptr) {
      const uint64_t off =
          restricted ? plan_.node_r_begin(g.origin) : 0;
      for (const core::JoinMatch& m : tmp) {
        collect->push_back({m.probe_row, m.position + off});
      }
    }
  }

  if (fault_timeline_ != nullptr) {
    // Transient node-level slow/link episodes stretch the charged time.
    for (auto& node : nodes_) {
      double& t = time[static_cast<size_t>(node->id)];
      if (t <= 0) continue;
      const double delay =
          fault_timeline_->DelaySeconds(node->id, clock_, t);
      t += delay;
      robustness_.slow_delay_seconds += delay;
    }
  }
  double wall = 0;
  for (double t : time) wall = std::max(wall, t);
  return wall;
}

double ClusterScheduler::MergeSecondsNet(
    const std::vector<uint64_t>& result_bytes, int ingress) {
  // Every node streams its result run to the ingress: a shared switch
  // serializes the streams, dedicated uplinks overlap (dist's
  // MergeSeconds, one tier up).
  double sum = 0;
  double mx = 0;
  bool shared = false;
  for (size_t n = 0; n < result_bytes.size(); ++n) {
    if (result_bytes[n] == 0 || static_cast<int>(n) == ingress) continue;
    const double t = NetCharge(static_cast<int>(n), ingress,
                               result_bytes[n], /*active=*/1,
                               &event_link_bytes_);
    sum += t;
    mx = std::max(mx, t);
    for (int l : topo_.NodePathLinks(static_cast<int>(n), ingress)) {
      if (topo_.links()[static_cast<size_t>(l)].shared) shared = true;
    }
  }
  return shared ? sum : mx;
}

Result<ClusterRunResult> ClusterScheduler::RunJoin(
    std::vector<core::JoinMatch>* collect) {
  if (delegate_) {
    Node& node = *nodes_[0];
    Result<dist::ShardedRunResult> inner = node.engine->RunJoin(collect);
    if (!inner.ok()) return inner.status();
    ClusterRunResult out;
    out.run = inner->run;
    out.steal_events = inner->steal_events;
    out.merge_seconds = inner->merge_seconds;
    out.sim_makespan = inner->sim_makespan;
    out.robustness = inner->robustness;
    NodeStats ns;
    ns.node = node.id;
    ns.origin = true;
    ns.shards = ccfg_.gpus_per_node;
    ns.r_tuples = cfg_.r_tuples;
    for (const dist::ShardStats& s : inner->shards) {
      ns.tuples_routed += s.tuples_routed;
      ns.matches += s.matches;
      ns.busy_seconds += s.busy_seconds;
      ns.phase_spans.insert(ns.phase_spans.end(), s.phase_spans.begin(),
                            s.phase_spans.end());
    }
    ns.steal_events = inner->steal_events;
    out.nodes.push_back(std::move(ns));
    for (const dist::Link& link : topo_.links()) {
      NetworkLinkStats ls;
      ls.name = link.name;
      out.network.push_back(std::move(ls));
    }
    return out;
  }

  Status st = ResetForRun();
  if (!st.ok()) return st;
  serving_ready_ = false;

  const workload::ProbeRelation& s = nodes_[0]->engine->s();
  const uint64_t sample = s.sample_size();
  const double scale = s.scale();

  double makespan = 0;
  std::vector<uint64_t> rows;
  rows.reserve(stride_);
  for (uint64_t w = 0; w < n_sim_; ++w) {
    Status ms = ApplyMembership(clock_);
    if (!ms.ok()) return ms;
    Result<double> stall = CheckNodeHealth(clock_);
    if (!stall.ok()) return stall.status();
    makespan += *stall;
    clock_ += *stall;

    const uint64_t begin = w * stride_;
    const uint64_t count = std::min(stride_, sample - begin);
    rows.clear();
    for (uint64_t i = 0; i < count; ++i) rows.push_back(begin + i);
    std::vector<Group> groups = GroupRows(rows.data(), count);
    Result<double> wall =
        ExecuteGroups(groups, w, collect, /*slice_merge_seconds=*/nullptr);
    if (!wall.ok()) return wall.status();
    makespan += *wall;
    clock_ += *wall;
  }

  ClusterRunResult out;
  out.sim_makespan = makespan;
  out.rebalance_events = rebalance_events_;
  out.moved_r_tuples = moved_r_tuples_;
  out.migration_seconds = migration_seconds_;
  if (fault_timeline_ != nullptr || !robustness_.failovers.empty()) {
    out.robustness = robustness_;
  }

  uint64_t matches_total = 0;
  std::vector<uint64_t> result_bytes(nodes_.size(), 0);
  for (auto& node : nodes_) {
    matches_total += node->out.matches;
    result_bytes[static_cast<size_t>(node->id)] =
        ScaleStat(node->out.matches, scale) * kResultBytesPerMatch;
  }
  const int ingress = IngressNode();
  out.merge_seconds =
      ingress >= 0 ? MergeSecondsNet(result_bytes, ingress) : 0;

  const double window_factor = static_cast<double>(n_full_) /
                               static_cast<double>(n_sim_);
  const double extrap = window_scale_ * window_factor;

  out.run.label =
      "cluster_inlj_" + std::string(NetworkKindName(ccfg_.network)) + "_x" +
      std::to_string(ccfg_.num_nodes) + "n" +
      std::to_string(ccfg_.gpus_per_node) + "g";
  out.run.probe_tuples = s.full_size;
  out.run.result_tuples = ScaleStat(matches_total, scale);
  out.run.seconds =
      makespan * extrap + out.merge_seconds + migration_seconds_;
  sim::CounterSet counters;
  for (const auto& node : nodes_) {
    if (node->engine != nullptr) counters += node->engine->sample_counters();
  }
  out.run.counters = counters.Scaled(extrap);
  out.run.AddStage("nodes/windows", makespan * extrap);
  out.run.AddStage("network_merge", out.merge_seconds);
  if (migration_seconds_ > 0) {
    out.run.AddStage("rebalance", migration_seconds_);
  }

  for (auto& node : nodes_) {
    NodeStats ns = node->out;
    ns.alive = node->alive;
    ns.drained = node->drained;
    ns.shards = node->drained ? 0 : ccfg_.gpus_per_node;
    ns.steal_events = node->out.steal_events;
    uint64_t r_tuples = 0;
    for (uint64_t c = 0; c < plan_.cells(); ++c) {
      if (charge_of_cell_[c] == node->id) {
        r_tuples += plan_.cell_r_tuples(c);
      }
    }
    ns.r_tuples = r_tuples;
    if (observability_ && node->engine != nullptr) {
      for (int i = 0; i < ccfg_.gpus_per_node; ++i) {
        std::vector<sim::PhaseSpan> spans =
            node->engine->ShardPhaseSpans(i);
        ns.phase_spans.insert(ns.phase_spans.end(), spans.begin(),
                              spans.end());
      }
    }
    out.steal_events += ns.steal_events;
    out.nodes.push_back(std::move(ns));
  }

  for (size_t l = 0; l < topo_.links().size(); ++l) {
    NetworkLinkStats ls;
    ls.name = topo_.links()[l].name;
    ls.bytes = ScaleStat(window_link_bytes_[l], extrap) +
               event_link_bytes_[l];
    if (out.run.seconds > 0) {
      ls.utilization =
          static_cast<double>(ls.bytes) /
          (topo_.links()[l].seq_bandwidth * out.run.seconds);
    }
    out.network.push_back(std::move(ls));
  }
  return out;
}

Result<double> ClusterScheduler::ServiceSlice(uint64_t begin, uint64_t count,
                                              uint64_t ordinal) {
  return ServiceSliceCollect(begin, count, ordinal, nullptr);
}

Result<double> ClusterScheduler::ServiceSliceCollect(
    uint64_t begin, uint64_t count, uint64_t ordinal,
    std::vector<core::JoinMatch>* collect) {
  if (delegate_) {
    return nodes_[0]->engine->ServiceSliceCollect(begin, count, ordinal,
                                                  collect);
  }
  if (count == 0) {
    return Status::InvalidArgument("cannot serve an empty slice");
  }
  const uint64_t sample = sample_size();
  if (begin >= sample || begin + count > sample) {
    return Status::InvalidArgument(
        "slice [" + std::to_string(begin) + ", " +
        std::to_string(begin + count) + ") exceeds the probe sample (" +
        std::to_string(sample) + " tuples)");
  }
  Status st = EnsureServing();
  if (!st.ok()) return st;
  st = ApplyMembership(clock_);
  if (!st.ok()) return st;
  Result<double> stall = CheckNodeHealth(clock_);
  if (!stall.ok()) return stall.status();

  std::vector<uint64_t> rows(count);
  for (uint64_t i = 0; i < count; ++i) rows[i] = begin + i;
  std::vector<Group> groups = GroupRows(rows.data(), count);
  double merge = 0;
  Result<double> wall = ExecuteGroups(groups, ordinal, collect, &merge);
  if (!wall.ok()) return wall.status();

  const double seconds = *stall + *wall + merge;
  clock_ += seconds;
  return seconds;
}

}  // namespace gpujoin::cluster
