#include "cluster/node_planner.h"

namespace gpujoin::cluster {

Result<NodePlan> NodePlanner::Plan(const workload::KeyColumn& r,
                                   int num_nodes) {
  Result<dist::ShardPlan> base = dist::ShardPlanner::Plan(r, num_nodes);
  if (!base.ok()) return base.status();

  NodePlan plan;
  plan.base = *std::move(base);

  // Per-cell R positions, the same LowerBound construction the base
  // planner uses for shard boundaries — at most 2^9 cells for 64 nodes,
  // so the binary searches are negligible.
  const uint64_t cells = plan.cells();
  plan.cell_pos.resize(cells + 1);
  plan.cell_pos[0] = 0;
  plan.cell_pos[cells] = r.size();
  for (uint64_t c = 1; c < cells; ++c) {
    const workload::Key boundary = static_cast<workload::Key>(
        plan.base.min_key + (c << static_cast<uint64_t>(plan.base.shift)));
    plan.cell_pos[c] = r.LowerBound(boundary);
  }
  return plan;
}

}  // namespace gpujoin::cluster
