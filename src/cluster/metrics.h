#ifndef GPUJOIN_CLUSTER_METRICS_H_
#define GPUJOIN_CLUSTER_METRICS_H_

#include <string>

#include "cluster/cluster_scheduler.h"

namespace gpujoin::cluster {

// JSON section builders for cluster runs, spliced into a bench record
// via obs::RecordBuilder::AddSection. scripts/validate_metrics.py
// validates both sections (field presence, unique node ids, shard
// counts summing to params.total_shards, utilization in [0, 1]).

// The per-node breakdown as a JSON array: membership state, routing,
// rerouting, busy time, and the node's phase timeline when observed.
std::string NodesJson(const ClusterRunResult& result);

// The network-tier traffic as a JSON array: bytes moved per link
// (window traffic extrapolated, migrations as-is) and utilization.
std::string NetworkLinksJson(const ClusterRunResult& result);

}  // namespace gpujoin::cluster

#endif  // GPUJOIN_CLUSTER_METRICS_H_
