#include "cluster/cluster_topology.h"

namespace gpujoin::cluster {

namespace {

dist::Link MakeLink(std::string name, const sim::InterconnectSpec& spec,
                    bool shared) {
  dist::Link link;
  link.name = std::move(name);
  link.seq_bandwidth = spec.seq_bandwidth;
  link.random_bandwidth = spec.random_bandwidth;
  link.latency = spec.latency;
  link.shared = shared;
  return link;
}

}  // namespace

const char* NetworkKindName(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kInfiniBand:
      return "infiniband";
    case NetworkKind::kEthernet:
      return "ethernet";
  }
  return "unknown";
}

Result<NetworkKind> ParseNetworkKind(const std::string& name) {
  if (name == "infiniband" || name == "ib") return NetworkKind::kInfiniBand;
  if (name == "ethernet" || name == "eth") return NetworkKind::kEthernet;
  return Status::InvalidArgument("unknown network kind '" + name +
                                 "' (want infiniband | ethernet)");
}

Result<ClusterTopology> ClusterTopology::Create(NetworkKind network,
                                                int num_nodes,
                                                dist::TopologyKind node_fabric,
                                                int gpus_per_node) {
  switch (network) {
    case NetworkKind::kInfiniBand:
      return FromSpec(network, num_nodes, node_fabric, gpus_per_node,
                      sim::InfiniBandHdr200(), /*shared_switch=*/false);
    case NetworkKind::kEthernet:
      return FromSpec(network, num_nodes, node_fabric, gpus_per_node,
                      sim::Ethernet25G(), /*shared_switch=*/true);
  }
  return Status::InvalidArgument("unknown network kind");
}

Result<ClusterTopology> ClusterTopology::FromSpec(
    NetworkKind network, int num_nodes, dist::TopologyKind node_fabric,
    int gpus_per_node, const sim::InterconnectSpec& spec,
    bool shared_switch) {
  if (num_nodes < 1 || num_nodes > 64) {
    return Status::InvalidArgument("num_nodes must be in [1, 64]");
  }
  ClusterTopology topo;
  topo.network_ = network;
  topo.spec_ = spec;
  topo.fabric_kind_ = node_fabric;
  topo.gpus_per_node_ = gpus_per_node;
  topo.shared_switch_ = shared_switch;

  const std::string prefix = NetworkKindName(network);
  if (shared_switch) {
    topo.backplane_link_ = 0;
    topo.links_.push_back(
        MakeLink(prefix + ".switch", spec, /*shared=*/true));
  }
  for (int n = 0; n < num_nodes; ++n) {
    Result<int> added = topo.AddNode();
    if (!added.ok()) return added.status();
  }
  return topo;
}

Result<int> ClusterTopology::AddNode() {
  Result<dist::Topology> fabric =
      dist::Topology::Create(fabric_kind_, gpus_per_node_);
  if (!fabric.ok()) return fabric.status();
  const int node = num_nodes_;
  uplink_of_.push_back(static_cast<int>(links_.size()));
  links_.push_back(MakeLink(
      std::string(NetworkKindName(network_)) + ".node" + std::to_string(node),
      spec_, /*shared=*/false));
  fabrics_.push_back(*std::move(fabric));
  ++num_nodes_;
  return node;
}

double ClusterTopology::NodeSeconds(int from, int to, uint64_t bytes) const {
  GPUJOIN_CHECK(from >= 0 && from < num_nodes_)
      << "NodeSeconds: from must be in [0, " << num_nodes_ << "), got "
      << from;
  GPUJOIN_CHECK(to >= 0 && to < num_nodes_)
      << "NodeSeconds: to must be in [0, " << num_nodes_ << "), got " << to;
  if (from == to || bytes == 0) return 0;
  const double b = static_cast<double>(bytes);
  const dist::Link& out = links_[static_cast<size_t>(uplink_of_[from])];
  const dist::Link& in = links_[static_cast<size_t>(uplink_of_[to])];
  double seconds =
      b / out.seq_bandwidth + out.latency + b / in.seq_bandwidth + in.latency;
  if (backplane_link_ >= 0) {
    const dist::Link& bp = links_[static_cast<size_t>(backplane_link_)];
    seconds += b / bp.seq_bandwidth + bp.latency;
  }
  return seconds;
}

std::vector<int> ClusterTopology::NodePathLinks(int from, int to) const {
  GPUJOIN_CHECK(from >= 0 && from < num_nodes_)
      << "NodePathLinks: from must be in [0, " << num_nodes_ << "), got "
      << from;
  GPUJOIN_CHECK(to >= 0 && to < num_nodes_)
      << "NodePathLinks: to must be in [0, " << num_nodes_ << "), got " << to;
  if (from == to) return {};
  std::vector<int> path = {uplink_of_[from]};
  if (backplane_link_ >= 0) path.push_back(backplane_link_);
  path.push_back(uplink_of_[to]);
  return path;
}

}  // namespace gpujoin::cluster
