#ifndef GPUJOIN_UTIL_UNITS_H_
#define GPUJOIN_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace gpujoin {

inline constexpr uint64_t kKiB = uint64_t{1} << 10;
inline constexpr uint64_t kMiB = uint64_t{1} << 20;
inline constexpr uint64_t kGiB = uint64_t{1} << 30;

// Formats a byte count with a binary suffix, e.g. "1.5 GiB".
std::string FormatBytes(double bytes);

// Formats a plain quantity with SI suffix, e.g. "67.1M".
std::string FormatCount(double count);

// Formats seconds adaptively, e.g. "3.2 ms".
std::string FormatSeconds(double seconds);

}  // namespace gpujoin

#endif  // GPUJOIN_UTIL_UNITS_H_
