#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

namespace gpujoin::util {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  return first_error_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    bool skip;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      // After a failure the remaining queue is drained, not run: the
      // sweep's result slots would be partially filled anyway, and
      // skipping gets the caller its error promptly.
      skip = !first_error_.ok();
    }
    if (!skip) {
      try {
        task();
      } catch (const std::exception& e) {
        std::unique_lock<std::mutex> lock(mu_);
        if (first_error_.ok()) {
          first_error_ =
              Status::Internal(std::string("task failed: ") + e.what());
        }
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        if (first_error_.ok()) {
          first_error_ = Status::Internal("task failed: unknown exception");
        }
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace gpujoin::util
