#ifndef GPUJOIN_UTIL_TABLE_PRINTER_H_
#define GPUJOIN_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace gpujoin {

// Collects rows of string cells and prints them as an aligned text table
// (for the bench binaries that regenerate the paper's figures) or as CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds one row. Missing trailing cells print as empty.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);

  // Aligned human-readable table.
  void Print(std::FILE* out = stdout) const;

  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  void PrintCsv(std::FILE* out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpujoin

#endif  // GPUJOIN_UTIL_TABLE_PRINTER_H_
