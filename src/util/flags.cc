#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace gpujoin {

void Flags::DefineInt64(const std::string& name, int64_t default_value,
                        const std::string& help) {
  FlagDef def;
  def.type = Type::kInt64;
  def.help = help;
  def.int_value = default_value;
  defs_[name] = std::move(def);
}

void Flags::DefineDouble(const std::string& name, double default_value,
                         const std::string& help) {
  FlagDef def;
  def.type = Type::kDouble;
  def.help = help;
  def.double_value = default_value;
  defs_[name] = std::move(def);
}

void Flags::DefineInt64(const std::string& name, int64_t default_value,
                        const std::string& help, int64_t min, int64_t max) {
  GPUJOIN_CHECK(min <= default_value && default_value <= max)
      << "flag --" << name << " default out of range";
  DefineInt64(name, default_value, help);
  FlagDef& def = defs_[name];
  def.has_bounds = true;
  def.int_min = min;
  def.int_max = max;
}

void Flags::DefineDouble(const std::string& name, double default_value,
                         const std::string& help, double min, double max) {
  GPUJOIN_CHECK(min <= default_value && default_value <= max)
      << "flag --" << name << " default out of range";
  DefineDouble(name, default_value, help);
  FlagDef& def = defs_[name];
  def.has_bounds = true;
  def.double_min = min;
  def.double_max = max;
}

void Flags::DefineString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  FlagDef def;
  def.type = Type::kString;
  def.help = help;
  def.string_value = default_value;
  defs_[name] = std::move(def);
}

void Flags::DefineBool(const std::string& name, bool default_value,
                       const std::string& help) {
  FlagDef def;
  def.type = Type::kBool;
  def.help = help;
  def.bool_value = default_value;
  defs_[name] = std::move(def);
}

Status Flags::SetFromString(FlagDef& def, const std::string& name,
                            const std::string& value) {
  char* end = nullptr;
  switch (def.type) {
    case Type::kInt64: {
      errno = 0;
      long long v = std::strtoll(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name + "=" + value +
                                       " overflows int64");
      }
      if (def.has_bounds && (v < def.int_min || v > def.int_max)) {
        return Status::InvalidArgument(
            "flag --" + name + "=" + value + " out of range [" +
            std::to_string(def.int_min) + ", " + std::to_string(def.int_max) +
            "]");
      }
      def.int_value = v;
      return Status::Ok();
    }
    case Type::kDouble: {
      errno = 0;
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name + "=" + value +
                                       " is out of double range");
      }
      if (def.has_bounds && !(v >= def.double_min && v <= def.double_max)) {
        return Status::InvalidArgument(
            "flag --" + name + "=" + value + " out of range [" +
            std::to_string(def.double_min) + ", " +
            std::to_string(def.double_max) + "]");
      }
      def.double_value = v;
      return Status::Ok();
    }
    case Type::kString:
      def.string_value = value;
      return Status::Ok();
    case Type::kBool: {
      if (value == "true" || value == "1") {
        def.bool_value = true;
      } else if (value == "false" || value == "0") {
        def.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable");
}

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp(argv[0]);
      return Status::NotFound("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected argument '" + arg + "'");
    }
    std::string name;
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      auto it = defs_.find(name);
      if (it != defs_.end() && it->second.type == Type::kBool) {
        value = "true";  // "--flag" toggles booleans on
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name + " missing value");
        }
        value = argv[++i];
      }
    }
    auto it = defs_.find(name);
    if (it == defs_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    Status s = SetFromString(it->second, name, value);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

int64_t Flags::GetInt64(const std::string& name) const {
  auto it = defs_.find(name);
  GPUJOIN_CHECK(it != defs_.end() && it->second.type == Type::kInt64) << name;
  return it->second.int_value;
}

double Flags::GetDouble(const std::string& name) const {
  auto it = defs_.find(name);
  GPUJOIN_CHECK(it != defs_.end() && it->second.type == Type::kDouble) << name;
  return it->second.double_value;
}

const std::string& Flags::GetString(const std::string& name) const {
  auto it = defs_.find(name);
  GPUJOIN_CHECK(it != defs_.end() && it->second.type == Type::kString) << name;
  return it->second.string_value;
}

bool Flags::GetBool(const std::string& name) const {
  auto it = defs_.find(name);
  GPUJOIN_CHECK(it != defs_.end() && it->second.type == Type::kBool) << name;
  return it->second.bool_value;
}

void Flags::PrintHelp(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program.c_str());
  for (const auto& [name, def] : defs_) {
    std::string default_str;
    switch (def.type) {
      case Type::kInt64:
        default_str = std::to_string(def.int_value);
        break;
      case Type::kDouble:
        default_str = std::to_string(def.double_value);
        break;
      case Type::kString:
        default_str = def.string_value;
        break;
      case Type::kBool:
        default_str = def.bool_value ? "true" : "false";
        break;
    }
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 def.help.c_str(), default_str.c_str());
  }
}

}  // namespace gpujoin
