#ifndef GPUJOIN_UTIL_CHECK_H_
#define GPUJOIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gpujoin::internal_check {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

// Stream-style message collector for CHECK(...) << "context".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace gpujoin::internal_check

// CHECK aborts the process when the condition is false. Used for invariants
// and programming errors; recoverable errors use Status instead.
#define GPUJOIN_CHECK(cond)                                            \
  while (!(cond))                                                      \
  ::gpujoin::internal_check::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define GPUJOIN_CHECK_OK(status_expr)                                       \
  do {                                                                      \
    const auto& gpujoin_check_status = (status_expr);                       \
    GPUJOIN_CHECK(gpujoin_check_status.ok()) << gpujoin_check_status.ToString(); \
  } while (0)

#ifdef NDEBUG
#define GPUJOIN_DCHECK(cond) \
  while (false) ::gpujoin::internal_check::CheckMessageBuilder("", 0, "")
#else
#define GPUJOIN_DCHECK(cond) GPUJOIN_CHECK(cond)
#endif

#endif  // GPUJOIN_UTIL_CHECK_H_
