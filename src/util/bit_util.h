#ifndef GPUJOIN_UTIL_BIT_UTIL_H_
#define GPUJOIN_UTIL_BIT_UTIL_H_

#include <bit>
#include <cstdint>

#include "util/check.h"

namespace gpujoin::bits {

// True iff v is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Floor of log2(v). Precondition: v > 0.
constexpr int Log2Floor(uint64_t v) { return 63 - std::countl_zero(v); }

// Ceiling of log2(v). Precondition: v > 0.
constexpr int Log2Ceil(uint64_t v) {
  return IsPowerOfTwo(v) ? Log2Floor(v) : Log2Floor(v) + 1;
}

// Smallest power of two >= v. Precondition: v > 0 and result representable.
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  return uint64_t{1} << Log2Ceil(v);
}

// Rounds v up to the next multiple of `multiple` (a power of two).
constexpr uint64_t RoundUpPow2(uint64_t v, uint64_t multiple) {
  return (v + multiple - 1) & ~(multiple - 1);
}

// Rounds v down to a multiple of `multiple` (a power of two).
constexpr uint64_t RoundDownPow2(uint64_t v, uint64_t multiple) {
  return v & ~(multiple - 1);
}

// Ceil division for non-negative integers.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Extracts `count` bits of `value` starting at bit `lo` (LSB = bit 0).
constexpr uint64_t ExtractBits(uint64_t value, int lo, int count) {
  if (count <= 0) return 0;
  if (count >= 64) return value >> lo;
  return (value >> lo) & ((uint64_t{1} << count) - 1);
}

}  // namespace gpujoin::bits

#endif  // GPUJOIN_UTIL_BIT_UTIL_H_
