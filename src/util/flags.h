#ifndef GPUJOIN_UTIL_FLAGS_H_
#define GPUJOIN_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace gpujoin {

// Minimal --key=value command-line parser for the bench and example
// binaries. Unknown flags are rejected so typos surface immediately.
class Flags {
 public:
  // Registers a flag with a default value and help text. Must be called
  // before Parse.
  void DefineInt64(const std::string& name, int64_t default_value,
                   const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  // Bounded variants: Parse rejects values outside [min, max] with
  // InvalidArgument naming the flag. The default must itself be in range.
  void DefineInt64(const std::string& name, int64_t default_value,
                   const std::string& help, int64_t min, int64_t max);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help, double min, double max);
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  // Parses argv; accepts "--name=value" and "--name value" forms.
  // "--help" prints usage and returns a NotFound status the caller should
  // treat as "exit 0".
  Status Parse(int argc, char** argv);

  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  void PrintHelp(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool };
  struct FlagDef {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0;
    std::string string_value;
    bool bool_value = false;
    bool has_bounds = false;
    int64_t int_min = 0;
    int64_t int_max = 0;
    double double_min = 0;
    double double_max = 0;
  };

  Status SetFromString(FlagDef& def, const std::string& name,
                       const std::string& value);

  std::map<std::string, FlagDef> defs_;
};

}  // namespace gpujoin

#endif  // GPUJOIN_UTIL_FLAGS_H_
