#ifndef GPUJOIN_UTIL_STATUS_H_
#define GPUJOIN_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace gpujoin {

// Error codes for fallible operations. The library avoids exceptions;
// configuration and validation errors are reported through Status /
// Result<T>, while programming errors abort via CHECK (see check.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kNotFound,
  kUnimplemented,
  kInternal,
};

// A lightweight status object carrying a code and a human-readable message.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

const char* StatusCodeName(StatusCode code);

// Result<T> holds either a value or an error Status. Modeled after
// absl::StatusOr but self-contained.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  // Precondition: ok(). CHECK-fails with the error status otherwise (a
  // bare std::get would throw bad_variant_access and lose the message).
  T& value() & {
    GPUJOIN_CHECK(ok()) << "Result::value() on " << status().ToString();
    return std::get<T>(repr_);
  }
  const T& value() const& {
    GPUJOIN_CHECK(ok()) << "Result::value() on " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    GPUJOIN_CHECK(ok()) << "Result::value() on " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace gpujoin

#endif  // GPUJOIN_UTIL_STATUS_H_
