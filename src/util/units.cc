#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace gpujoin {

namespace {

std::string FormatWithSuffix(double value, const char* const* suffixes,
                             int num_suffixes, double base) {
  int idx = 0;
  double v = value;
  while (std::fabs(v) >= base && idx + 1 < num_suffixes) {
    v /= base;
    ++idx;
  }
  char buf[64];
  if (v == 0 || std::fabs(v) >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, suffixes[idx]);
  } else if (std::fabs(v) >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffixes[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(double bytes) {
  static const char* const kSuffixes[] = {"B",   "KiB", "MiB",
                                          "GiB", "TiB", "PiB"};
  return FormatWithSuffix(bytes, kSuffixes, 6, 1024.0);
}

std::string FormatCount(double count) {
  static const char* const kSuffixes[] = {"", "K", "M", "G", "T"};
  return FormatWithSuffix(count, kSuffixes, 5, 1000.0);
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace gpujoin
