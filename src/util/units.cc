#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace gpujoin {

namespace {

// Unit selection is sign-preserving: the magnitude picks the suffix and
// the precision, and the sign rides along. An exact zero never invents a
// suffix ("0 B", not "0.0 ns"), and an empty suffix leaves no trailing
// space ("999", not "999 ").
std::string FormatWithSuffix(double value, const char* const* suffixes,
                             int num_suffixes, double base) {
  int idx = 0;
  double v = value;
  while (std::fabs(v) >= base && idx + 1 < num_suffixes) {
    v /= base;
    ++idx;
  }
  const char* suffix = suffixes[idx];
  const char* sep = suffix[0] == '\0' ? "" : " ";
  char buf[64];
  if (v == 0 || std::fabs(v) >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f%s%s", v, sep, suffix);
  } else if (std::fabs(v) >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1f%s%s", v, sep, suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s%s", v, sep, suffix);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(double bytes) {
  static const char* const kSuffixes[] = {"B",   "KiB", "MiB",
                                          "GiB", "TiB", "PiB"};
  return FormatWithSuffix(bytes, kSuffixes, 6, 1024.0);
}

std::string FormatCount(double count) {
  static const char* const kSuffixes[] = {"", "K", "M", "G", "T"};
  return FormatWithSuffix(count, kSuffixes, 5, 1000.0);
}

std::string FormatSeconds(double seconds) {
  // The magnitude selects the unit so negative durations (deltas between
  // two runs) read as "-2.000 s", not "-2000000000.0 ns".
  const double mag = std::fabs(seconds);
  char buf[64];
  if (seconds == 0) {
    return "0 s";
  } else if (mag >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (mag >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (mag >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace gpujoin
