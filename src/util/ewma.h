#ifndef GPUJOIN_UTIL_EWMA_H_
#define GPUJOIN_UTIL_EWMA_H_

#include <cstdint>

namespace gpujoin::util {

// Exponentially weighted moving average with an optional seed prior.
//
// Two construction modes:
//  * Unseeded — the classic cold-start estimator: value() is 0 until the
//    first observation, which is adopted outright; later observations
//    blend at `alpha`. This reproduces the original work-stealing
//    estimator in dist::ShardScheduler.
//  * Seeded — value() starts at `prior` and every observation (including
//    the first) blends at `alpha`. Until `warmup` observations have
//    arrived the prior also acts as a floor: value() never reports below
//    it, so one anomalous early sample (a cold first window, a fault
//    backoff) cannot collapse a freshly reset estimate. After warm-up the
//    observations own the estimate entirely.
//
// The seeded mode is the cold-start fix for the scheduler's steal
// planner (the prior is the per-window sync-overhead lower bound) and is
// what the query planner's residual model uses (prior 1.0 — "trust the
// analytic prediction until corrected").
class Ewma {
 public:
  explicit Ewma(double alpha = 0.5) : alpha_(alpha) {}

  Ewma(double alpha, double prior, uint64_t warmup = 4)
      : alpha_(alpha),
        prior_(prior),
        value_(prior),
        seeded_(true),
        warmup_(warmup) {}

  void Observe(double x) {
    value_ = observations_ == 0 && !seeded_
                 ? x
                 : alpha_ * x + (1 - alpha_) * value_;
    ++observations_;
  }

  double value() const {
    if (seeded_ && observations_ < warmup_ && value_ < prior_) {
      return prior_;
    }
    return value_;
  }

  // Has the estimate seen enough observations to stand on its own?
  // (Unseeded: one; seeded: the warm-up count.)
  bool warmed_up() const {
    return observations_ >= (seeded_ ? warmup_ : 1);
  }

  uint64_t observations() const { return observations_; }
  double alpha() const { return alpha_; }

  // Back to the initial state (seeded estimators return to their prior).
  void Reset() {
    value_ = seeded_ ? prior_ : 0;
    observations_ = 0;
  }

 private:
  double alpha_;
  double prior_ = 0;
  double value_ = 0;
  bool seeded_ = false;
  uint64_t warmup_ = 0;
  uint64_t observations_ = 0;
};

}  // namespace gpujoin::util

#endif  // GPUJOIN_UTIL_EWMA_H_
