#ifndef GPUJOIN_UTIL_RNG_H_
#define GPUJOIN_UTIL_RNG_H_

#include <cstdint>

namespace gpujoin {

// SplitMix64: used to seed Xoshiro and as a cheap stateless hash.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
// Deterministic across platforms; all experiments seed explicitly so runs
// are reproducible.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x = SplitMix64(x);
      s = x;
    }
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). Uses Lemire's multiply-shift reduction;
  // the modulo bias is negligible for our bound sizes (< 2^40).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace gpujoin

#endif  // GPUJOIN_UTIL_RNG_H_
