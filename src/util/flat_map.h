#ifndef GPUJOIN_UTIL_FLAT_MAP_H_
#define GPUJOIN_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::util {

// Open-addressing hash map from uint64_t keys to a small trivially
// copyable value. Power-of-two capacity, linear probing, backward-shift
// deletion (no tombstones), Fibonacci hashing. Built for the simulator's
// per-transaction hot path, where std::unordered_map's node allocations
// and pointer chasing dominate the profile.
//
// The key ~0 is reserved as the empty sentinel (the simulator already
// uses it as its "no page" marker, so no real page number collides).
template <typename V>
class FlatMap64 {
 public:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  explicit FlatMap64(size_t min_capacity = 16) {
    Rehash(bits::NextPowerOfTwo(
        min_capacity < 8 ? uint64_t{8} : uint64_t{min_capacity}));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  // Returns the value for `key`, or nullptr if absent.
  V* Find(uint64_t key) {
    size_t i = IndexOf(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  const V* Find(uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  // Returns the value for `key`, inserting a value-initialized one if
  // absent. The reference is invalidated by any later insert or erase.
  V& operator[](uint64_t key) {
    GPUJOIN_DCHECK(key != kEmptyKey);
    size_t i = IndexOf(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == kEmptyKey) {
        if (size_ + 1 > max_load_) {
          Rehash(slots_.size() * 2);
          return (*this)[key];
        }
        s.key = key;
        s.value = V{};
        ++size_;
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  // Removes `key` if present; returns whether it was. Backward-shift
  // deletion keeps probe chains contiguous without tombstones.
  bool Erase(uint64_t key) {
    size_t i = IndexOf(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == kEmptyKey) return false;
      if (s.key == key) break;
      i = (i + 1) & mask_;
    }
    size_t hole = i;
    size_t next = (hole + 1) & mask_;
    while (slots_[next].key != kEmptyKey) {
      // An entry may only move back if its home slot precedes the hole
      // (cyclically); otherwise it belongs after the hole and stays.
      const size_t home = IndexOf(slots_[next].key);
      if (((next - home) & mask_) >= ((next - hole) & mask_)) {
        slots_[hole] = slots_[next];
        hole = next;
      }
      next = (next + 1) & mask_;
    }
    slots_[hole].key = kEmptyKey;
    --size_;
    return true;
  }

  // Drops every entry; keeps the capacity.
  void Clear() {
    for (Slot& s : slots_) s.key = kEmptyKey;
    size_ = 0;
  }

  // Grows the table so `n` entries fit without rehashing.
  void Reserve(size_t n) {
    const uint64_t needed = bits::NextPowerOfTwo(
        n < 4 ? uint64_t{8} : uint64_t{n} + (uint64_t{n} >> 1));
    if (needed > slots_.size()) Rehash(needed);
  }

 private:
  struct Slot {
    uint64_t key = kEmptyKey;
    V value{};
  };

  size_t IndexOf(uint64_t key) const {
    // Fibonacci hashing: multiply spreads consecutive page numbers (the
    // common key pattern) across the table.
    return static_cast<size_t>((key * uint64_t{0x9E3779B97F4A7C15}) >>
                               shift_);
  }

  void Rehash(uint64_t new_capacity) {
    GPUJOIN_CHECK(bits::IsPowerOfTwo(new_capacity));
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(static_cast<size_t>(new_capacity), Slot{});
    mask_ = new_capacity - 1;
    shift_ = 64 - bits::Log2Floor(new_capacity);
    max_load_ = static_cast<size_t>(new_capacity -
                                    (new_capacity >> 2));  // 0.75
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kEmptyKey) (*this)[s.key] = s.value;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  int shift_ = 64;
  size_t max_load_ = 0;
  size_t size_ = 0;
};

}  // namespace gpujoin::util

#endif  // GPUJOIN_UTIL_FLAT_MAP_H_
