#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace gpujoin {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), cell.c_str(),
                   c + 1 < widths.size() ? "  " : "");
    }
    std::fprintf(out, "\n");
  };

  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total > 2 ? total - 2 : total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, "%s%s", cell.c_str(),
                   c + 1 < header_.size() ? "," : "");
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace gpujoin
