#ifndef GPUJOIN_UTIL_THREAD_POOL_H_
#define GPUJOIN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace gpujoin::util {

// Fixed-size thread pool with one shared FIFO queue and no work
// stealing: tasks start in submission order, which keeps sweep runs easy
// to reason about (any worker may execute any task, so tasks must not
// depend on thread identity). Destruction waits for every submitted task
// to finish.
//
// Failure model: a task that throws does NOT terminate the process. The
// first exception is captured as an error Status (later ones are
// dropped), tasks still queued at that point are drained without
// running, and Wait() surfaces the error to the caller.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  // Enqueues a task. Never blocks (the queue is unbounded). Tasks
  // submitted after a failure are drained without running.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished (or was
  // drained), then returns OK or the first task failure.
  Status Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // The number of concurrent hardware threads, with a fallback of 1 when
  // the runtime cannot tell.
  static int HardwareConcurrency();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  // Queued + currently running tasks.
  int in_flight_ = 0;
  bool stop_ = false;
  // First task failure; once set, remaining queued tasks are skipped.
  Status first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace gpujoin::util

#endif  // GPUJOIN_UTIL_THREAD_POOL_H_
