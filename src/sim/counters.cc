#include "sim/counters.h"

#include <cmath>
#include <sstream>

#include "util/units.h"

namespace gpujoin::sim {

namespace {
uint64_t ScaleCounter(uint64_t v, double f) {
  return static_cast<uint64_t>(std::llround(static_cast<double>(v) * f));
}

// Saturating subtraction: counter deltas are meant to be taken between a
// later and an earlier snapshot of the same monotone counters, where
// lhs >= rhs always holds and the clamp never fires. When callers compare
// counters of two *different* runs (Fig. 4/6 style deltas), a field can
// legitimately be smaller on the left; raw unsigned subtraction then
// wraps to ~2^64 and poisons every derived metric. Clamp at zero instead.
uint64_t SubClamped(uint64_t a, uint64_t b) { return a >= b ? a - b : 0; }
}  // namespace

CounterSet& CounterSet::operator+=(const CounterSet& o) {
  host_random_read_bytes += o.host_random_read_bytes;
  host_seq_read_bytes += o.host_seq_read_bytes;
  host_write_bytes += o.host_write_bytes;
  translation_requests += o.translation_requests;
  tlb_hits += o.tlb_hits;
  hbm_read_bytes += o.hbm_read_bytes;
  hbm_write_bytes += o.hbm_write_bytes;
  l1_hits += o.l1_hits;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  warp_steps += o.warp_steps;
  memory_transactions += o.memory_transactions;
  kernel_launches += o.kernel_launches;
  serial_dependent_loads += o.serial_dependent_loads;
  faults_injected += o.faults_injected;
  translation_timeouts += o.translation_timeouts;
  remote_read_errors += o.remote_read_errors;
  degradation_episodes += o.degradation_episodes;
  alloc_faults += o.alloc_faults;
  fault_retries += o.fault_retries;
  fault_backoff_nanos += o.fault_backoff_nanos;
  degraded_host_bytes += o.degraded_host_bytes;
  return *this;
}

CounterSet CounterSet::operator-(const CounterSet& o) const {
  CounterSet r;
  r.host_random_read_bytes =
      SubClamped(host_random_read_bytes, o.host_random_read_bytes);
  r.host_seq_read_bytes =
      SubClamped(host_seq_read_bytes, o.host_seq_read_bytes);
  r.host_write_bytes = SubClamped(host_write_bytes, o.host_write_bytes);
  r.translation_requests =
      SubClamped(translation_requests, o.translation_requests);
  r.tlb_hits = SubClamped(tlb_hits, o.tlb_hits);
  r.hbm_read_bytes = SubClamped(hbm_read_bytes, o.hbm_read_bytes);
  r.hbm_write_bytes = SubClamped(hbm_write_bytes, o.hbm_write_bytes);
  r.l1_hits = SubClamped(l1_hits, o.l1_hits);
  r.l2_hits = SubClamped(l2_hits, o.l2_hits);
  r.l2_misses = SubClamped(l2_misses, o.l2_misses);
  r.warp_steps = SubClamped(warp_steps, o.warp_steps);
  r.memory_transactions =
      SubClamped(memory_transactions, o.memory_transactions);
  r.kernel_launches = SubClamped(kernel_launches, o.kernel_launches);
  r.serial_dependent_loads =
      SubClamped(serial_dependent_loads, o.serial_dependent_loads);
  r.faults_injected = SubClamped(faults_injected, o.faults_injected);
  r.translation_timeouts =
      SubClamped(translation_timeouts, o.translation_timeouts);
  r.remote_read_errors =
      SubClamped(remote_read_errors, o.remote_read_errors);
  r.degradation_episodes =
      SubClamped(degradation_episodes, o.degradation_episodes);
  r.alloc_faults = SubClamped(alloc_faults, o.alloc_faults);
  r.fault_retries = SubClamped(fault_retries, o.fault_retries);
  r.fault_backoff_nanos =
      SubClamped(fault_backoff_nanos, o.fault_backoff_nanos);
  r.degraded_host_bytes =
      SubClamped(degraded_host_bytes, o.degraded_host_bytes);
  return r;
}

CounterSet CounterSet::Scaled(double f) const {
  CounterSet r;
  r.host_random_read_bytes = ScaleCounter(host_random_read_bytes, f);
  r.host_seq_read_bytes = ScaleCounter(host_seq_read_bytes, f);
  r.host_write_bytes = ScaleCounter(host_write_bytes, f);
  r.translation_requests = ScaleCounter(translation_requests, f);
  r.tlb_hits = ScaleCounter(tlb_hits, f);
  r.hbm_read_bytes = ScaleCounter(hbm_read_bytes, f);
  r.hbm_write_bytes = ScaleCounter(hbm_write_bytes, f);
  r.l1_hits = ScaleCounter(l1_hits, f);
  r.l2_hits = ScaleCounter(l2_hits, f);
  r.l2_misses = ScaleCounter(l2_misses, f);
  r.warp_steps = ScaleCounter(warp_steps, f);
  r.memory_transactions = ScaleCounter(memory_transactions, f);
  // Launches are per-kernel fixed costs, not per-tuple work: keep as-is.
  r.kernel_launches = kernel_launches;
  r.serial_dependent_loads = ScaleCounter(serial_dependent_loads, f);
  r.faults_injected = ScaleCounter(faults_injected, f);
  r.translation_timeouts = ScaleCounter(translation_timeouts, f);
  r.remote_read_errors = ScaleCounter(remote_read_errors, f);
  r.degradation_episodes = ScaleCounter(degradation_episodes, f);
  r.alloc_faults = ScaleCounter(alloc_faults, f);
  r.fault_retries = ScaleCounter(fault_retries, f);
  r.fault_backoff_nanos = ScaleCounter(fault_backoff_nanos, f);
  r.degraded_host_bytes = ScaleCounter(degraded_host_bytes, f);
  return r;
}

std::string CounterSet::ToString() const {
  std::ostringstream os;
  os << "host_rd_random=" << FormatBytes(host_random_read_bytes)
     << " host_rd_seq=" << FormatBytes(host_seq_read_bytes)
     << " host_wr=" << FormatBytes(host_write_bytes)
     << " translations=" << FormatCount(translation_requests)
     << " hbm_rd=" << FormatBytes(hbm_read_bytes)
     << " hbm_wr=" << FormatBytes(hbm_write_bytes)
     << " l1_hits=" << FormatCount(l1_hits)
     << " l2_hits=" << FormatCount(l2_hits)
     << " l2_misses=" << FormatCount(l2_misses)
     << " warp_steps=" << FormatCount(warp_steps)
     << " launches=" << kernel_launches;
  // Robustness counters are appended only when faults were injected, so
  // fault-free output (goldens, interference tests) is unchanged.
  if (faults_injected > 0) {
    os << " faults=" << FormatCount(faults_injected)
       << " (timeouts=" << FormatCount(translation_timeouts)
       << ", read_errors=" << FormatCount(remote_read_errors)
       << ", degradation_episodes=" << FormatCount(degradation_episodes)
       << ", alloc_faults=" << FormatCount(alloc_faults)
       << ") retries=" << FormatCount(fault_retries)
       << " backoff_ns=" << FormatCount(fault_backoff_nanos)
       << " degraded=" << FormatBytes(degraded_host_bytes);
  }
  return os.str();
}

}  // namespace gpujoin::sim
