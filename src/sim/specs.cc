#include "sim/specs.h"

namespace gpujoin::sim {

namespace {
constexpr double kGB = 1e9;  // interconnect vendors quote decimal GB/s
}

// ---------------------------------------------------------------------------
// Interconnects (Table 1). `seq_bandwidth` / `random_bandwidth` are the
// achievable rates used by the cost model; they are calibrated against the
// measurements in Lutz et al. [29, 30] and the anchor throughputs the paper
// reports (see DESIGN.md Sec. 5 and EXPERIMENTS.md).
// ---------------------------------------------------------------------------

InterconnectSpec NvLink2() {
  InterconnectSpec ic;
  ic.name = "NVLink 2.0";
  ic.peak_bandwidth = 75 * kGB;
  ic.seq_bandwidth = 63 * kGB;     // measured scan rate (Lutz et al.)
  // Achievable rate for data-dependent cacheline gathers; calibrated so
  // the partitioned-INLJ anchors of Sec. 4.3.1 (0.6 / 0.7 / 1.0 Q/s for
  // B+tree / binary search / Harmonia at 111 GiB) are met.
  ic.random_bandwidth = 35 * kGB;
  ic.latency = 1.5e-6;
  ic.translation_latency = 3e-6;   // POWER9 IOMMU round trip
  ic.translation_concurrency = 96;
  return ic;
}

InterconnectSpec PciE4() {
  InterconnectSpec ic;
  ic.name = "PCI-e 4.0";
  ic.peak_bandwidth = 32 * kGB;
  ic.seq_bandwidth = 28 * kGB;
  // Fine-grained gathers suffer on PCI-e (TLP overhead, fewer outstanding
  // reads); this is why the INLJ-vs-hash-join crossover moves right in
  // Fig. 9.
  ic.random_bandwidth = 16 * kGB;
  ic.latency = 2.5e-6;
  ic.translation_latency = 3e-6;
  ic.translation_concurrency = 96;
  return ic;
}

InterconnectSpec PciE5() {
  InterconnectSpec ic = PciE4();
  ic.name = "PCI-e 5.0";
  ic.peak_bandwidth = 64 * kGB;
  ic.seq_bandwidth = 56 * kGB;
  ic.random_bandwidth = 30 * kGB;
  return ic;
}

InterconnectSpec InfinityFabric3() {
  InterconnectSpec ic;
  ic.name = "Infinity Fabric 3";
  ic.peak_bandwidth = 72 * kGB;
  ic.seq_bandwidth = 60 * kGB;
  ic.random_bandwidth = 45 * kGB;
  ic.latency = 1.8e-6;
  return ic;
}

InterconnectSpec NvLinkC2C() {
  InterconnectSpec ic;
  ic.name = "NVLink C2C";
  ic.peak_bandwidth = 450 * kGB;
  ic.seq_bandwidth = 380 * kGB;
  ic.random_bandwidth = 280 * kGB;
  ic.latency = 0.7e-6;
  ic.translation_latency = 0.8e-6;  // on-package ATS
  ic.translation_concurrency = 256;
  return ic;
}

InterconnectSpec InfiniBandHdr200() {
  InterconnectSpec ic;
  ic.name = "InfiniBand HDR 200";
  // One HDR port: 200 Gb/s signalling, ~24 GB/s of goodput per
  // direction after encoding/transport overhead — PCI-e-4.0-class
  // bandwidth, but a microsecond-scale switch traversal on top.
  ic.peak_bandwidth = 25 * kGB;
  ic.seq_bandwidth = 23 * kGB;
  // RDMA gathers amortize poorly across the switch (completion
  // round-trips); well below the PCI-e gather rate.
  ic.random_bandwidth = 8 * kGB;
  ic.latency = 2e-6;
  // No device-side address translation crosses the network: remote
  // access is explicit (RDMA), so the ATS fields keep their defaults
  // and the cluster tier never charges them.
  return ic;
}

InterconnectSpec Ethernet25G() {
  InterconnectSpec ic;
  ic.name = "Ethernet 25G";
  // 25 GbE through an oversubscribed top-of-rack switch: ~1/8 of the
  // PCI-e 4.0 host link, and a 10 us store-and-forward traversal.
  ic.peak_bandwidth = 3.125 * kGB;
  ic.seq_bandwidth = 2.9 * kGB;
  ic.random_bandwidth = 1 * kGB;
  ic.latency = 1e-5;
  return ic;
}

// ---------------------------------------------------------------------------
// GPUs. `l1_size` is an aggregate proxy for the per-SM L1s visible to the
// sequentialized warp executor (see sim/gpu.h); `warp_step_throughput` is a
// coarse compute proxy and rarely binds.
// ---------------------------------------------------------------------------

GpuSpec TeslaV100() {
  GpuSpec gpu;
  gpu.name = "Tesla V100-SXM2";
  gpu.num_sms = 80;
  gpu.clock_hz = 1.38e9;
  gpu.l1_size = 8 * kMiB;   // 80 SMs x 128 KiB, aggregate proxy (clamped)
  gpu.l2_size = 6 * kMiB;
  gpu.cacheline_bytes = 128;
  gpu.hbm_bandwidth = 900 * kGB;
  gpu.hbm_capacity = 32 * kGiB;
  gpu.tlb_coverage = 32 * kGiB;  // Lutz et al. [30]
  gpu.warp_step_throughput = 3.0e10;
  gpu.kernel_launch_overhead = 8e-6;
  return gpu;
}

GpuSpec A100() {
  GpuSpec gpu;
  gpu.name = "A100-PCIE";
  gpu.num_sms = 108;
  gpu.clock_hz = 1.41e9;
  gpu.l1_size = 16 * kMiB;  // 108 SMs x 192 KiB, aggregate proxy
  gpu.l2_size = 32 * kMiB;  // 40 MiB on hardware; nearest power of two
  gpu.cacheline_bytes = 128;
  gpu.hbm_bandwidth = 1555 * kGB;
  gpu.hbm_capacity = 40 * kGiB;
  gpu.tlb_coverage = 32 * kGiB;
  gpu.warp_step_throughput = 4.2e10;
  gpu.kernel_launch_overhead = 8e-6;
  return gpu;
}

GpuSpec GH200Gpu() {
  GpuSpec gpu;
  gpu.name = "GH200 (H100)";
  gpu.num_sms = 132;
  gpu.clock_hz = 1.83e9;
  gpu.l1_size = 32 * kMiB;
  gpu.l2_size = 64 * kMiB;  // 50 MiB on hardware; nearest power of two
  gpu.cacheline_bytes = 128;
  gpu.hbm_bandwidth = 3350 * kGB;
  gpu.hbm_capacity = 96 * kGiB;
  gpu.tlb_coverage = 512 * kGiB;  // assumption: C2C ATS covers far more
  gpu.warp_step_throughput = 8.0e10;
  gpu.kernel_launch_overhead = 6e-6;
  return gpu;
}

PlatformSpec V100NvLink2() {
  return PlatformSpec{"POWER9 + V100 / NVLink 2.0", TeslaV100(), NvLink2()};
}

PlatformSpec A100PciE4() {
  return PlatformSpec{"x86 + A100 / PCI-e 4.0", A100(), PciE4()};
}

PlatformSpec GH200C2C() {
  return PlatformSpec{"GH200 / NVLink C2C", GH200Gpu(), NvLinkC2C()};
}

}  // namespace gpujoin::sim
