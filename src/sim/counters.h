#ifndef GPUJOIN_SIM_COUNTERS_H_
#define GPUJOIN_SIM_COUNTERS_H_

#include <cstdint>
#include <string>

namespace gpujoin::sim {

// Hardware event counters accumulated by the memory model while a kernel
// executes. These play the role of the POWER9 / nvprof performance
// counters used in the paper (e.g. Fig. 4 counts translation requests).
//
// All byte counters are cacheline-granular: a 8 B load that misses the
// caches still moves one full line, exactly as on the real interconnect.
struct CounterSet {
  // Interconnect (GPU <-> CPU memory) traffic.
  uint64_t host_random_read_bytes = 0;  // gathers (data-dependent accesses)
  uint64_t host_seq_read_bytes = 0;     // streaming reads (table scans)
  uint64_t host_write_bytes = 0;        // spills / result writes to host

  // GPU address translation requests sent to the CPU IOMMU (TLB misses on
  // memory-bound host accesses).
  uint64_t translation_requests = 0;
  uint64_t tlb_hits = 0;

  // GPU device memory traffic.
  uint64_t hbm_read_bytes = 0;
  uint64_t hbm_write_bytes = 0;

  // Cache events (line granularity).
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t l2_misses = 0;

  // Execution proxies.
  uint64_t warp_steps = 0;        // simulated warp instructions
  uint64_t memory_transactions = 0;  // coalesced line transactions
  uint64_t kernel_launches = 0;

  // Serial dependent-load chains (e.g. walking a bucket chain end to end
  // inside one thread); charged latency-bound, not bandwidth-bound.
  uint64_t serial_dependent_loads = 0;

  // Robustness: injected faults and the recovery work they caused (see
  // sim/fault.h). All zero unless a FaultInjector is attached, so
  // fault-free runs are bit-identical with or without this machinery.
  uint64_t faults_injected = 0;
  uint64_t translation_timeouts = 0;
  uint64_t remote_read_errors = 0;
  uint64_t degradation_episodes = 0;
  uint64_t alloc_faults = 0;
  uint64_t fault_retries = 0;
  // Simulated exponential-backoff wait; the cost model adds it to time.
  uint64_t fault_backoff_nanos = 0;
  // Host bytes moved while the link was in a degradation episode; the
  // cost model charges the bandwidth shortfall on these bytes.
  uint64_t degraded_host_bytes = 0;

  uint64_t host_read_bytes() const {
    return host_random_read_bytes + host_seq_read_bytes;
  }
  uint64_t interconnect_bytes() const {
    return host_read_bytes() + host_write_bytes;
  }
  uint64_t hbm_bytes() const { return hbm_read_bytes + hbm_write_bytes; }

  CounterSet& operator+=(const CounterSet& o);

  // Per-field *saturating* difference. Snapshot deltas (later - earlier of
  // the same monotone counters) are exact; comparing two unrelated runs
  // clamps each field at zero instead of wrapping past 2^64.
  CounterSet operator-(const CounterSet& o) const;

  // Field-wise equality (used by the observer bit-identity regression
  // tests: attaching tracing must never change a counter).
  bool operator==(const CounterSet& o) const = default;

  // Scales every counter by `factor` (used to extrapolate a sampled run to
  // the full workload size). Rounds to nearest.
  CounterSet Scaled(double factor) const;

  std::string ToString() const;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_COUNTERS_H_
