#ifndef GPUJOIN_SIM_COST_MODEL_H_
#define GPUJOIN_SIM_COST_MODEL_H_

#include <string>

#include "sim/counters.h"
#include "sim/specs.h"

namespace gpujoin::sim {

// Per-kernel time broken down by bound resource. The paper's workloads are
// bandwidth- or translation-bound; compute is a coarse proxy.
struct TimeBreakdown {
  double transfer = 0;     // interconnect traffic
  double translation = 0;  // address translation requests
  double hbm = 0;          // device memory traffic
  double compute = 0;      // warp instruction throughput
  double serial = 0;       // dependent-load chains (latency-bound)
  double launch = 0;       // kernel launch overhead
  double fault = 0;        // retry backoff + degraded-bandwidth shortfall

  // GPU kernels overlap transfer, translation and compute across the many
  // resident warps, so a kernel is as slow as its most contended resource,
  // plus fixed launch costs. Fault recovery (backoff waits, degraded-link
  // episodes) stalls the pipeline and does not overlap: it adds on top.
  double total() const {
    double t = transfer;
    if (translation > t) t = translation;
    if (hbm > t) t = hbm;
    if (compute > t) t = compute;
    if (serial > t) t = serial;
    return t + launch + fault;
  }

  std::string ToString() const;
};

// Converts hardware counters into simulated seconds for a given platform.
class CostModel {
 public:
  explicit CostModel(const PlatformSpec& platform) : platform_(platform) {}

  TimeBreakdown Breakdown(const CounterSet& counters) const;

  double Seconds(const CounterSet& counters) const {
    return Breakdown(counters).total();
  }

  // CPU-side streaming pass (the HTAP background merge): sequential reads
  // plus sequential writes over the interconnect-attached host memory.
  double HostStreamSeconds(uint64_t read_bytes, uint64_t write_bytes) const;

  // Per-batch surcharge of `lookups` pointer-chasing probes of
  // `depth_lines` dependent cachelines each (the delta/overlay consults
  // stacked on the static probe): bandwidth-bound at scale with a
  // dependent-load latency floor for small batches.
  double HostLookupSeconds(uint64_t lookups, uint32_t depth_lines) const;

  // Charge for serving one request from the hot-key result cache
  // (serve::ResultCache): one pointer-chasing directory probe of
  // `probe_depth_lines` dependent lines plus streaming the memoized
  // `result_bytes` out of host memory. This is what makes the hit-rate
  // vs reserved-bytes tradeoff real — a hit is cheap but not free, so an
  // over-large cache full of cold entries buys nothing.
  double CacheServeSeconds(uint64_t result_bytes,
                           uint32_t probe_depth_lines) const;

  // Charge for installing a memoized result: the directory probe plus
  // writing `result_bytes` back to the host-resident cache region.
  double CacheInstallSeconds(uint64_t result_bytes,
                             uint32_t probe_depth_lines) const;

  const PlatformSpec& platform() const { return platform_; }

 private:
  PlatformSpec platform_;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_COST_MODEL_H_
