#ifndef GPUJOIN_SIM_PHASE_H_
#define GPUJOIN_SIM_PHASE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/counters.h"

namespace gpujoin::sim {

// One aggregated simulated-time span of a pipeline stage, produced by an
// attached obs::PhaseTimeline. Spans with the same (name, window) are
// accumulated: the join kernel opens "probe.lookup" once per warp, but
// the timeline reports one span per stage per window.
//
// Spans are recorded at *simulated-sample* scale (the counters the stage
// actually accumulated while simulating), not extrapolated to the full
// workload — they are a profile of where simulated time goes, parallel
// to the extrapolated RunResult totals.
struct PhaseSpan {
  // No tumbling window (unpartitioned / fully-partitioned pipelines, or
  // stages outside the window loop).
  static constexpr int64_t kNoWindow = -1;

  std::string name;
  int64_t window = kNoWindow;  // tumbling-window ordinal, or kNoWindow
  CounterSet delta;            // counters accumulated inside the span
  double seconds = 0;          // cost-model time of `delta` (0 if no model)
  uint64_t enter_count = 0;    // how many begin/end pairs were aggregated
  // Traffic seen through the AccessObserver fan-out while the span was
  // open (line transactions and bulk stream bytes).
  uint64_t observed_transactions = 0;
  uint64_t observed_stream_bytes = 0;
};

// Receiver for pipeline stage marks. The simulated kernels bracket their
// stages (partition histogram, scatter, index probe, materialize, each
// tumbling window) with Begin/End calls; a MemoryModel forwards them to
// the attached sink, so profiling costs one branch per mark when
// detached and never touches the CounterSet either way.
class PhaseSink {
 public:
  virtual ~PhaseSink() = default;

  // Begin/End nest like a stack; End closes the innermost open phase.
  virtual void BeginPhase(std::string_view name) = 0;
  virtual void EndPhase() = 0;

  // Brackets one tumbling window of the windowed INLJ. Phases opened
  // inside are attributed to this window ordinal; the window itself is
  // recorded as an aggregate "window" span.
  virtual void BeginWindow(uint64_t ordinal) = 0;
  virtual void EndWindow() = 0;
};

// RAII phase mark, null-safe: `PhaseScope s(memory.phase_sink(), "x");`
// is a no-op when no sink is attached.
class PhaseScope {
 public:
  PhaseScope(PhaseSink* sink, std::string_view name) : sink_(sink) {
    if (sink_ != nullptr) sink_->BeginPhase(name);
  }
  ~PhaseScope() {
    if (sink_ != nullptr) sink_->EndPhase();
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseSink* sink_;
};

// RAII tumbling-window mark, null-safe like PhaseScope.
class WindowScope {
 public:
  WindowScope(PhaseSink* sink, uint64_t ordinal) : sink_(sink) {
    if (sink_ != nullptr) sink_->BeginWindow(ordinal);
  }
  ~WindowScope() {
    if (sink_ != nullptr) sink_->EndWindow();
  }

  WindowScope(const WindowScope&) = delete;
  WindowScope& operator=(const WindowScope&) = delete;

 private:
  PhaseSink* sink_;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_PHASE_H_
