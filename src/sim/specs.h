#ifndef GPUJOIN_SIM_SPECS_H_
#define GPUJOIN_SIM_SPECS_H_

#include <cstdint>
#include <string>

#include "util/units.h"

namespace gpujoin::sim {

// Interconnect model parameters (paper Table 1 + Lutz et al. [29, 30]).
//
// Peak receive bandwidth is the marketing number from Table 1;
// `seq_bandwidth` is the achievable rate for streaming (coalesced) reads
// and `random_bandwidth` the achievable rate for cacheline-granular
// gathers, which is where fast interconnects differ most from PCI-e.
struct InterconnectSpec {
  std::string name;
  double peak_bandwidth = 0;    // bytes/s, Table 1 "receive bandwidth"
  double seq_bandwidth = 0;     // bytes/s achievable on streaming reads
  double random_bandwidth = 0;  // bytes/s achievable on 128 B gathers
  double latency = 0;           // seconds, one cacheline round trip

  // Address translation service: a GPU TLB miss issues a translation
  // request to the CPU IOMMU (~3 us on POWER9 + NVLink 2.0, Lutz et al.).
  double translation_latency = 3e-6;  // seconds per request
  // Maximum concurrently outstanding translation requests; translation
  // throughput = concurrency / latency.
  double translation_concurrency = 96;

  double translation_throughput() const {
    return translation_concurrency / translation_latency;
  }

  // Fraction of the nominal bandwidth the link delivers during an injected
  // degradation episode (link retraining / lane downgrade; sim/fault.h).
  // Only consulted for bytes flagged degraded by a FaultInjector.
  double degraded_bandwidth_factor = 0.25;
};

// GPU device model parameters.
struct GpuSpec {
  std::string name;
  int num_sms = 0;
  double clock_hz = 0;

  // Memory hierarchy.
  uint64_t l1_size = 0;        // simulated unified L1 working set
  uint64_t l2_size = 0;        // shared L2
  uint32_t cacheline_bytes = 128;  // remote fetch granularity over NVLink
  int l1_ways = 8;
  int l2_ways = 16;
  double hbm_bandwidth = 0;    // bytes/s device memory bandwidth
  uint64_t hbm_capacity = 0;   // bytes of device memory
  // Latency of one load in a serially dependent chain (cache miss to HBM
  // including queueing); bounds pathological pointer chases (Fig. 8's
  // degenerate hash-join probe chains).
  double dependent_load_latency = 5e-7;

  // GPU last-level TLB: total address range it can cover. The paper's
  // V100 covers 32 GiB (Lutz et al. [30]); the number of entries follows
  // from the host page size (sim keeps coverage constant across page
  // sizes, matching the paper's observation that 2 MiB and 1 GiB pages
  // perform approximately equally).
  uint64_t tlb_coverage = 32 * kGiB;
  int tlb_ways = 8;
  // TLB interference: the simulator executes warps sequentially, but on
  // hardware ~10s of warps share the last-level TLB, so a page a warp
  // touched is churned out between its own steps whenever the recent page
  // working set exceeds the TLB range. This models the number of
  // co-resident warps generating that churn (0 disables interference).
  int tlb_co_resident_warps = 64;

  // Compute proxy: how many simulated warp-steps the device retires per
  // second when a kernel is compute-bound. One simulated warp-step stands
  // for the handful of real instructions between two memory operations.
  double warp_step_throughput = 0;

  // Fixed cost to launch one kernel (driver + scheduling).
  double kernel_launch_overhead = 8e-6;
  // Per-window stream synchronization cost in the windowed pipeline
  // (event wait + scheduling between the partition and join streams).
  double stream_sync_overhead = 25e-6;
};

// A full platform: GPU + interconnect to CPU memory.
struct PlatformSpec {
  std::string name;
  GpuSpec gpu;
  InterconnectSpec interconnect;
};

// Named presets. Values follow the paper's hardware (Table 1, Sec. 3.2 and
// 5.2.3) and the measurements in Lutz et al.; they are simulation
// parameters, not claims about exact hardware behaviour.
InterconnectSpec NvLink2();
InterconnectSpec PciE4();
InterconnectSpec PciE5();
InterconnectSpec InfinityFabric3();
InterconnectSpec NvLinkC2C();

// Network-tier interconnects (cluster scale-out, DESIGN.md §16): what a
// node's uplink to the cluster switch delivers. Orders of magnitude
// worse than the in-node fabrics above in latency, and (for Ethernet)
// in bandwidth too — which is exactly the asymmetry the two-level
// cluster planner exists to respect.
InterconnectSpec InfiniBandHdr200();
InterconnectSpec Ethernet25G();

GpuSpec TeslaV100();
GpuSpec A100();
GpuSpec GH200Gpu();

// The paper's main platform: V100 + NVLink 2.0 (Sec. 3.2).
PlatformSpec V100NvLink2();
// The comparison platform of Fig. 9: A100 + PCI-e 4.0.
PlatformSpec A100PciE4();
// Forward-looking platform from Table 1: GH200 + NVLink C2C.
PlatformSpec GH200C2C();

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_SPECS_H_
