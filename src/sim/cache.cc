#include "sim/cache.h"

#include <algorithm>

namespace gpujoin::sim {

Cache::Cache(uint64_t size_bytes, uint32_t line_bytes, int ways)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), ways_(ways) {
  GPUJOIN_CHECK(bits::IsPowerOfTwo(line_bytes)) << line_bytes;
  GPUJOIN_CHECK(ways > 0);
  const uint64_t num_lines = size_bytes / line_bytes;
  GPUJOIN_CHECK(num_lines > 0);
  if (static_cast<uint64_t>(ways_) > num_lines) {
    ways_ = static_cast<int>(num_lines);
  }
  // Indexing needs a power-of-two set count; capacities that are not
  // (sets * ways) exact (e.g. the V100's 6 MiB L2) fold the remainder
  // into the associativity so the modeled capacity stays faithful.
  num_sets_ = uint64_t{1} << bits::Log2Floor(num_lines / ways_);
  ways_ = static_cast<int>(num_lines / num_sets_);
  set_mask_ = num_sets_ - 1;
  const size_t slots = num_sets_ * ways_;
  tags_.assign(slots, kInvalidTag);
  last_use_.assign(slots, 0);
  touches_.assign(slots, 0);
}

void Cache::Clear() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(last_use_.begin(), last_use_.end(), 0);
  std::fill(touches_.begin(), touches_.end(), 0);
  tick_ = 0;
  mru_slot_ = 0;
}

void Cache::FlushCold(uint64_t min_touches) {
  for (size_t slot = 0; slot < tags_.size(); ++slot) {
    if (touches_[slot] < min_touches) {
      tags_[slot] = kInvalidTag;
      last_use_[slot] = 0;
    }
    touches_[slot] = 0;
  }
}

}  // namespace gpujoin::sim

