#include "sim/cache.h"

namespace gpujoin::sim {

Cache::Cache(uint64_t size_bytes, uint32_t line_bytes, int ways)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), ways_(ways) {
  GPUJOIN_CHECK(bits::IsPowerOfTwo(line_bytes)) << line_bytes;
  GPUJOIN_CHECK(ways > 0);
  const uint64_t num_lines = size_bytes / line_bytes;
  GPUJOIN_CHECK(num_lines > 0);
  if (static_cast<uint64_t>(ways_) > num_lines) {
    ways_ = static_cast<int>(num_lines);
  }
  // Indexing needs a power-of-two set count; capacities that are not
  // (sets * ways) exact (e.g. the V100's 6 MiB L2) fold the remainder
  // into the associativity so the modeled capacity stays faithful.
  num_sets_ = uint64_t{1} << bits::Log2Floor(num_lines / ways_);
  ways_ = static_cast<int>(num_lines / num_sets_);
  set_mask_ = num_sets_ - 1;
  ways_storage_.assign(num_sets_ * ways_, Way{});
}

bool Cache::Access(uint64_t line_id) {
  const uint64_t set = line_id & set_mask_;
  Way* base = &ways_storage_[set * ways_];
  ++tick_;
  int lru = 0;
  uint64_t lru_use = ~uint64_t{0};
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == line_id) {
      base[w].last_use = tick_;
      ++base[w].touches;
      return true;
    }
    if (base[w].last_use < lru_use) {
      lru_use = base[w].last_use;
      lru = w;
    }
  }
  base[lru].tag = line_id;
  base[lru].last_use = tick_;
  base[lru].touches = 1;
  return false;
}

bool Cache::Contains(uint64_t line_id) const {
  const uint64_t set = line_id & set_mask_;
  const Way* base = &ways_storage_[set * ways_];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == line_id) return true;
  }
  return false;
}

void Cache::Clear() {
  ways_storage_.assign(ways_storage_.size(), Way{});
  tick_ = 0;
}

void Cache::FlushCold(uint64_t min_touches) {
  for (Way& way : ways_storage_) {
    if (way.touches < min_touches) {
      way = Way{};
    } else {
      way.touches = 0;
    }
  }
}

}  // namespace gpujoin::sim
