#ifndef GPUJOIN_SIM_TLB_H_
#define GPUJOIN_SIM_TLB_H_

#include <cstdint>
#include <vector>

#include "sim/cache.h"
#include "util/bit_util.h"

namespace gpujoin::sim {

// Model of the GPU's last-level TLB for host memory accesses.
//
// On the paper's V100, the GPU can translate addresses within a 32 GiB
// range before it must issue address translation requests to the CPU's
// IOMMU, each costing ~3 us (Lutz et al. [30]). We model the TLB as a
// set-associative translation cache whose entry count is derived from the
// covered range and the host page size:
//
//     entries = coverage / page_size.
//
// This keeps the coverage constant across page sizes, matching the paper's
// observation (Sec. 3.2) that 2 MiB and 1 GiB huge pages perform
// approximately equally. With the default 1 GiB pages, the V100 model has
// 32 entries.
class Tlb {
 public:
  // `ways` is clamped to the entry count (small TLBs are fully
  // associative).
  Tlb(uint64_t coverage_bytes, uint64_t page_size, int ways);

  Tlb(const Tlb&) = delete;
  Tlb& operator=(const Tlb&) = delete;

  // Looks up the translation for virtual page `vpn`. Returns true on hit.
  // On miss the translation is installed (the caller charges the
  // translation-request cost).
  bool Access(uint64_t vpn) { return cache_.Access(vpn); }

  // Re-touches the entry the previous Access() hit or installed (see
  // Cache::TouchMru); used by the same-page lookup fast path.
  void TouchMru() { cache_.TouchMru(); }

  void Clear() { cache_.Clear(); }

  uint64_t entries() const { return entries_; }
  uint64_t page_size() const { return page_size_; }
  uint64_t coverage_bytes() const { return entries_ * page_size_; }

 private:
  uint64_t page_size_;
  uint64_t entries_;
  // Reuse the cache machinery: "line id" = virtual page number. The Cache
  // ctor needs power-of-two geometry; entries are rounded accordingly.
  Cache cache_;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_TLB_H_
